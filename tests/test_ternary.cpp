#include <gtest/gtest.h>

#include "sim/vectors.hpp"
#include "ternary/trit.hpp"
#include "ternary/truth_table.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

const Trit kAll[] = {kT0, kT1, kTX};

/// Reference semantics: the exact ternary extension of a binary function —
/// evaluate under every completion of X inputs and join.
template <typename F>
Trit completion_semantics(F f, std::initializer_list<Trit> in) {
  std::vector<Trit> v(in);
  std::vector<unsigned> x_pos;
  for (unsigned i = 0; i < v.size(); ++i) {
    if (v[i] == kTX) x_pos.push_back(i);
  }
  bool saw0 = false, saw1 = false;
  for (std::uint64_t c = 0; c < pow2(static_cast<unsigned>(x_pos.size()));
       ++c) {
    std::vector<bool> bits(v.size());
    for (unsigned i = 0; i < v.size(); ++i) bits[i] = v[i] == kT1;
    for (unsigned j = 0; j < x_pos.size(); ++j) {
      bits[x_pos[j]] = get_bit(c, j);
    }
    (f(bits) ? saw1 : saw0) = true;
  }
  if (saw0 && saw1) return kTX;
  return to_trit(saw1);
}

TEST(Trit, NotMatchesCompletions) {
  for (Trit a : kAll) {
    EXPECT_EQ(not3(a), completion_semantics(
                           [](const std::vector<bool>& b) { return !b[0]; },
                           {a}));
  }
}

TEST(Trit, And3MatchesCompletions) {
  for (Trit a : kAll) {
    for (Trit b : kAll) {
      EXPECT_EQ(and3(a, b),
                completion_semantics(
                    [](const std::vector<bool>& v) { return v[0] && v[1]; },
                    {a, b}))
          << to_char(a) << " AND " << to_char(b);
    }
  }
}

TEST(Trit, Or3MatchesCompletions) {
  for (Trit a : kAll) {
    for (Trit b : kAll) {
      EXPECT_EQ(or3(a, b),
                completion_semantics(
                    [](const std::vector<bool>& v) { return v[0] || v[1]; },
                    {a, b}));
    }
  }
}

TEST(Trit, Xor3MatchesCompletions) {
  for (Trit a : kAll) {
    for (Trit b : kAll) {
      EXPECT_EQ(xor3(a, b),
                completion_semantics(
                    [](const std::vector<bool>& v) { return v[0] != v[1]; },
                    {a, b}));
    }
  }
}

TEST(Trit, Mux3MatchesCompletions) {
  for (Trit s : kAll) {
    for (Trit a : kAll) {
      for (Trit b : kAll) {
        EXPECT_EQ(mux3(s, a, b),
                  completion_semantics(
                      [](const std::vector<bool>& v) {
                        return v[0] ? v[2] : v[1];
                      },
                      {s, a, b}))
            << to_char(s) << "?" << to_char(b) << ":" << to_char(a);
      }
    }
  }
}

TEST(Trit, LocalPropagationSignature) {
  // The paper's definition of a CLS: 0 * X = 0 but 1 * X = X.
  EXPECT_EQ(and3(kT0, kTX), kT0);
  EXPECT_EQ(and3(kT1, kTX), kTX);
  EXPECT_EQ(or3(kT1, kTX), kT1);
  EXPECT_EQ(or3(kT0, kTX), kTX);
  // The CLS loses complement correlation: X AND NOT X is X, not 0.
  EXPECT_EQ(and3(kTX, not3(kTX)), kTX);
}

TEST(Trit, DerivedGates) {
  EXPECT_EQ(nand3(kT1, kT1), kT0);
  EXPECT_EQ(nor3(kT0, kT0), kT1);
  EXPECT_EQ(xnor3(kT1, kT1), kT1);
  EXPECT_EQ(nand3(kT0, kTX), kT1);
  EXPECT_EQ(nor3(kT1, kTX), kT0);
  EXPECT_EQ(xnor3(kTX, kT0), kTX);
}

TEST(Trit, Formatting) {
  EXPECT_EQ(to_char(kT0), '0');
  EXPECT_EQ(to_char(kT1), '1');
  EXPECT_EQ(to_char(kTX), 'X');
  EXPECT_EQ(to_string(std::vector<Trit>{kT0, kTX, kT1}), "0X1");
  EXPECT_EQ(trits_from_string("1xX0"),
            (std::vector<Trit>{kT1, kTX, kTX, kT0}));
  EXPECT_THROW(trit_from_char('2'), ParseError);
}

TEST(Trit, SequenceToString) {
  std::vector<std::vector<Trit>> seq{{kT0}, {kTX}, {kT1}};
  EXPECT_EQ(sequence_to_string(seq), "0.X.1");
}

TEST(Trit, Predicates) {
  EXPECT_TRUE(is_definite(kT0));
  EXPECT_FALSE(is_definite(kTX));
  EXPECT_TRUE(refines(kTX, kT1));
  EXPECT_TRUE(refines(kT1, kT1));
  EXPECT_FALSE(refines(kT0, kT1));
  EXPECT_EQ(to_bool(kT1), true);
  EXPECT_THROW(to_bool(kTX), InvalidArgument);
}

// ---------------------------------------------------------------------------
// TruthTable
// ---------------------------------------------------------------------------

TEST(TruthTable, AndGateRows) {
  const TruthTable t = TruthTable::and_gate(3);
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(t.eval_row(x), x == 7 ? 1u : 0u);
  }
}

TEST(TruthTable, XorGateParity) {
  const TruthTable t = TruthTable::xor_gate(4);
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_EQ(t.eval_bit(x, 0), popcount64(x) % 2 == 1);
  }
}

TEST(TruthTable, NamedGatesAgreeWithPrimitives) {
  const auto to3 = [](bool a, bool b, Trit (*op)(Trit, Trit)) {
    return op(to_trit(a), to_trit(b));
  };
  const TruthTable nand2 = TruthTable::nand_gate(2);
  const TruthTable nor2 = TruthTable::nor_gate(2);
  const TruthTable xnor2 = TruthTable::xnor_gate(2);
  for (std::uint64_t x = 0; x < 4; ++x) {
    const bool a = get_bit(x, 0), b = get_bit(x, 1);
    EXPECT_EQ(to_trit(nand2.eval_bit(x, 0)), to3(a, b, nand3));
    EXPECT_EQ(to_trit(nor2.eval_bit(x, 0)), to3(a, b, nor3));
    EXPECT_EQ(to_trit(xnor2.eval_bit(x, 0)), to3(a, b, xnor3));
  }
}

TEST(TruthTable, MuxSemantics) {
  const TruthTable t = TruthTable::mux();
  for (std::uint64_t x = 0; x < 8; ++x) {
    const bool s = get_bit(x, 0), a = get_bit(x, 1), b = get_bit(x, 2);
    EXPECT_EQ(t.eval_bit(x, 0), s ? b : a);
  }
}

TEST(TruthTable, JuncCopiesInput) {
  const TruthTable t = TruthTable::junc(3);
  EXPECT_EQ(t.eval_row(0), 0u);
  EXPECT_EQ(t.eval_row(1), 7u);
}

TEST(TruthTable, JustifiabilityOfLibrary) {
  EXPECT_FALSE(TruthTable::const0().is_justifiable());
  EXPECT_FALSE(TruthTable::const1().is_justifiable());
  EXPECT_TRUE(TruthTable::buf().is_justifiable());
  EXPECT_TRUE(TruthTable::inv().is_justifiable());
  EXPECT_TRUE(TruthTable::and_gate(2).is_justifiable());
  EXPECT_TRUE(TruthTable::mux().is_justifiable());
  EXPECT_TRUE(TruthTable::junc(1).is_justifiable());
  EXPECT_FALSE(TruthTable::junc(2).is_justifiable());
  EXPECT_FALSE(TruthTable::junc(5).is_justifiable());
  // Half adder can never produce sum = carry = 1.
  EXPECT_FALSE(TruthTable::half_adder().is_justifiable());
  // Full adder reaches all four (sum, cout) combinations.
  EXPECT_TRUE(TruthTable::full_adder().is_justifiable());
  EXPECT_FALSE(TruthTable::demux2().is_justifiable());
}

TEST(TruthTable, ReachableOutputVectors) {
  const auto r = TruthTable::half_adder().reachable_output_vectors();
  EXPECT_TRUE(r[0b00]);
  EXPECT_TRUE(r[0b01]);
  EXPECT_TRUE(r[0b10]);
  EXPECT_FALSE(r[0b11]);
}

TEST(TruthTable, PigeonholeNonJustifiable) {
  // More outputs than inputs can never be surjective.
  TruthTable t(1, 2);
  EXPECT_FALSE(t.is_justifiable());
}

TEST(TruthTable, TernaryEvalAndGate) {
  const TruthTable t = TruthTable::and_gate(2);
  EXPECT_EQ(t.eval_ternary({kT0, kTX})[0], kT0);
  EXPECT_EQ(t.eval_ternary({kT1, kTX})[0], kTX);
  EXPECT_EQ(t.eval_ternary({kT1, kT1})[0], kT1);
}

TEST(TruthTable, TernaryEvalMultiOutput) {
  const TruthTable ha = TruthTable::half_adder();
  // a = 1, b = X: sum = !b -> X; carry = b -> X.
  const auto out = ha.eval_ternary({kT1, kTX});
  EXPECT_EQ(out[0], kTX);
  EXPECT_EQ(out[1], kTX);
  // a = 0, b = X: sum = b -> X; carry = 0 definite.
  const auto out2 = ha.eval_ternary({kT0, kTX});
  EXPECT_EQ(out2[0], kTX);
  EXPECT_EQ(out2[1], kT0);
}

TEST(TruthTable, TernaryEvalIsExactPerCell) {
  // Exhaustive cross-check against completion semantics for random tables.
  Rng rng(100);
  for (int trial = 0; trial < 20; ++trial) {
    const TruthTable t = TruthTable::random(3, 2, rng);
    for (std::uint64_t code = 0; code < 27; ++code) {
      const Trits in = unpack_trits(code, 3);
      const Trits got = t.eval_ternary(in);
      for (unsigned j = 0; j < 2; ++j) {
        bool saw0 = false, saw1 = false;
        for (std::uint64_t x = 0; x < 8; ++x) {
          bool compatible = true;
          for (unsigned i = 0; i < 3; ++i) {
            if (in[i] != kTX && (in[i] == kT1) != get_bit(x, i)) {
              compatible = false;
              break;
            }
          }
          if (!compatible) continue;
          (t.eval_bit(x, j) ? saw1 : saw0) = true;
        }
        const Trit expect = (saw0 && saw1) ? kTX : to_trit(saw1);
        EXPECT_EQ(got[j], expect);
      }
    }
  }
}

TEST(TruthTable, PreservesAllX) {
  EXPECT_TRUE(TruthTable::and_gate(2).preserves_all_x());
  EXPECT_TRUE(TruthTable::xor_gate(3).preserves_all_x());
  EXPECT_TRUE(TruthTable::junc(4).preserves_all_x());
  EXPECT_FALSE(TruthTable::const0().preserves_all_x());
  EXPECT_FALSE(TruthTable::const1().preserves_all_x());
  // A table with a constant output column does not preserve all-X.
  TruthTable t(2, 1, {1, 1, 1, 1});
  EXPECT_FALSE(t.preserves_all_x());
}

TEST(TruthTable, RowMutation) {
  TruthTable t(2, 2);
  t.set_row(3, 0b11);
  EXPECT_EQ(t.eval_row(3), 3u);
  EXPECT_TRUE(t.eval_bit(3, 1));
  EXPECT_THROW(t.set_row(4, 0), InvalidArgument);
  EXPECT_THROW(t.eval_bit(0, 2), InvalidArgument);
}

TEST(TruthTable, ConstructorValidation) {
  EXPECT_THROW(TruthTable(17, 1), InvalidArgument);
  EXPECT_THROW(TruthTable(1, 0), InvalidArgument);
  EXPECT_THROW(TruthTable(2, 1, {0, 1}), InvalidArgument);  // wrong row count
}

TEST(TruthTable, EqualityIsFunctional) {
  EXPECT_EQ(TruthTable::and_gate(2), TruthTable::and_gate(2));
  EXPECT_FALSE(TruthTable::and_gate(2) == TruthTable::or_gate(2));
}

TEST(TruthTable, ArityMismatchTernaryEvalThrows) {
  EXPECT_THROW(TruthTable::and_gate(2).eval_ternary({kT0}), InvalidArgument);
}

TEST(TruthTable, ToStringListsRows) {
  const std::string s = TruthTable::buf().to_string();
  EXPECT_NE(s.find("0 | 0"), std::string::npos);
  EXPECT_NE(s.find("1 | 1"), std::string::npos);
}

}  // namespace
}  // namespace rtv
