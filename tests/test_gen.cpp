#include <gtest/gtest.h>

#include "gen/datapath.hpp"
#include "gen/random_circuits.hpp"
#include "gen/shift.hpp"
#include "sim/binary_sim.hpp"
#include "test_helpers.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

TEST(Gen, ShiftRegisterDelaysInput) {
  const Netlist n = shift_register(4);
  BinarySimulator sim(n);
  sim.set_state(bits_from_string("0000"));
  const BitsSeq outs = sim.run(bits_seq_from_string("1.0.1.1.0.0.0.0"));
  // Output is the input delayed 4 cycles.
  EXPECT_EQ(sequence_to_string(outs), "0.0.0.0.1.0.1.1");
}

TEST(Gen, LfsrMatchesReference) {
  // 3-bit LFSR, taps {0, 2}: feedback = si ^ r0 ^ r2 shifted in.
  const Netlist n = lfsr(3, {0, 2});
  BinarySimulator sim(n);
  sim.set_state(bits_from_string("100"));
  std::uint8_t r0 = 1, r1 = 0, r2 = 0;
  for (int t = 0; t < 20; ++t) {
    const Bits out = sim.step(bits_from_string("0"));
    EXPECT_EQ(out[0], r2) << "t=" << t;
    const std::uint8_t fb = 0 ^ r0 ^ r2;
    r2 = r1;
    r1 = r0;
    r0 = fb;
  }
}

TEST(Gen, TwistedRingCycles) {
  const Netlist n = twisted_ring(2);
  BinarySimulator sim(n);
  sim.set_state(bits_from_string("00"));
  // With constant-0 input: r0' = !r1, shifts: states cycle with period 4.
  Bits s0 = sim.state();
  BitsSeq zeros(4, bits_from_string("0"));
  sim.run(zeros);
  EXPECT_EQ(sim.state(), s0);
}

TEST(Gen, PipelinedAdderComputesSum) {
  const unsigned bits = 4;
  for (unsigned stages : {1u, 2u, 4u}) {
    const Netlist n = pipelined_adder(bits, stages);
    BinarySimulator sim(n);
    // Latency = number of register stages on any PI->PO path; determine by
    // streaming one vector and waiting for the result.
    Rng rng(5);
    for (int trial = 0; trial < 10; ++trial) {
      const std::uint64_t a = rng.below(1 << bits);
      const std::uint64_t b = rng.below(1 << bits);
      Bits in(2 * bits);
      for (unsigned i = 0; i < bits; ++i) {
        in[i] = get_bit(a, i);
        in[bits + i] = get_bit(b, i);
      }
      // Flush the pipeline by holding the inputs for enough cycles.
      Bits out;
      for (unsigned t = 0; t < stages + 2; ++t) out = sim.step(in);
      std::uint64_t sum = 0;
      for (unsigned i = 0; i <= bits; ++i) {
        if (out[i]) sum |= (1ULL << i);
      }
      EXPECT_EQ(sum, a + b) << "stages=" << stages;
    }
  }
}

TEST(Gen, PipelinedMultiplierComputesProduct) {
  const unsigned bits = 3;
  for (unsigned rows_per_stage : {1u, 2u, 3u}) {
    const Netlist n = pipelined_multiplier(bits, rows_per_stage);
    BinarySimulator sim(n);
    Rng rng(6);
    for (int trial = 0; trial < 8; ++trial) {
      const std::uint64_t a = rng.below(1 << bits);
      const std::uint64_t b = rng.below(1 << bits);
      Bits in(2 * bits);
      for (unsigned i = 0; i < bits; ++i) {
        in[i] = get_bit(a, i);
        in[bits + i] = get_bit(b, i);
      }
      Bits out;
      for (unsigned t = 0; t < bits + 3; ++t) out = sim.step(in);
      std::uint64_t product = 0;
      for (unsigned i = 0; i < 2 * bits; ++i) {
        if (out[i]) product |= (1ULL << i);
      }
      EXPECT_EQ(product, a * b)
          << a << "*" << b << " rows_per_stage=" << rows_per_stage;
      EXPECT_EQ(out[2 * bits], 0) << "cout must be 0";
    }
  }
}

TEST(Gen, MultiplierIsPipelinedDeeper) {
  const Netlist flat = pipelined_multiplier(4, 4);
  const Netlist deep = pipelined_multiplier(4, 1);
  EXPECT_GT(deep.num_latches(), flat.num_latches());
}

TEST(Gen, ControllerDatapathResetBehaviour) {
  const Netlist n = controller_datapath(4);
  BinarySimulator sim(n);
  // Random power-up; assert reset for one cycle with data 0, then the
  // accumulator clears on the next clock edge and 'valid' rises.
  Bits state(sim.num_latches());
  Rng rng(8);
  for (auto& v : state) v = rng.coin();
  sim.set_state(state);
  Bits in(sim.num_inputs(), 0);
  in[0] = 1;  // rst
  sim.step(in);
  // After reset: acc bits are all 0 (latches 1..4), phase = 0.
  in[0] = 0;
  const Bits out1 = sim.step(in);  // cycle after reset
  EXPECT_EQ(out1[1], 0);           // accumulator cleared -> reduction is 0
  EXPECT_EQ(out1[0], 0);           // valid = phase latched during reset = 0
  // Feed data: acc accumulates (xor) it.
  in[1] = 1;
  const Bits out2 = sim.step(in);
  EXPECT_EQ(out2[0], 1);  // valid rises one cycle after reset deasserts
  in[1] = 0;
  const Bits out3 = sim.step(in);
  EXPECT_EQ(out3[1], 1);  // bit0 of acc is now 1 -> reduction 1
  EXPECT_EQ(out3[0], 1);
}

TEST(Gen, GeneratorsAreJunctionNormal) {
  Rng rng(77);
  RandomCircuitOptions opt;
  EXPECT_TRUE(shift_register(5).is_junction_normal());
  EXPECT_TRUE(lfsr(5, {0, 3}).is_junction_normal());
  EXPECT_TRUE(twisted_ring(3).is_junction_normal());
  EXPECT_TRUE(pipelined_adder(4, 2).is_junction_normal());
  EXPECT_TRUE(pipelined_multiplier(3, 1).is_junction_normal());
  EXPECT_TRUE(controller_datapath(3).is_junction_normal());
  EXPECT_TRUE(random_netlist(opt, rng).is_junction_normal());
}

TEST(Gen, RandomNetlistDeterministicForSeed) {
  RandomCircuitOptions opt;
  opt.table_probability = 0.2;
  Rng a(123), b(123);
  const Netlist na = random_netlist(opt, a);
  const Netlist nb = random_netlist(opt, b);
  EXPECT_EQ(na.num_slots(), nb.num_slots());
  EXPECT_EQ(na.num_latches(), nb.num_latches());
  EXPECT_EQ(na.summary(), nb.summary());
}

TEST(Gen, RandomNetlistRespectsOptions) {
  Rng rng(55);
  RandomCircuitOptions opt;
  opt.num_inputs = 5;
  opt.num_outputs = 4;
  opt.num_gates = 30;
  opt.num_latches = 7;
  opt.latch_after_gate_probability = 0.0;
  const Netlist n = random_netlist(opt, rng);
  EXPECT_EQ(n.primary_inputs().size(), 5u);
  EXPECT_GE(n.primary_outputs().size(), 4u);  // plus dangling caps
  EXPECT_EQ(n.num_latches(), 7u);
}

TEST(Gen, RandomNetlistWithTablesValid) {
  Rng rng(66);
  RandomCircuitOptions opt;
  opt.table_probability = 1.0;
  opt.num_gates = 20;
  const Netlist n = random_netlist(opt, rng);
  std::size_t tables = 0;
  for (const NodeId id : n.live_nodes()) {
    if (n.kind(id) == CellKind::kTable) ++tables;
  }
  EXPECT_EQ(tables, 20u);
}

TEST(Gen, PipelineBuilderBalancesDepths) {
  Netlist n;
  PipelineBuilder pb(n);
  auto a = pb.input("a");
  auto b = pb.delay(pb.input("b"), 2);
  auto g = pb.gate(CellKind::kAnd, {a, b});
  EXPECT_EQ(g.depth, 2u);
  pb.output("o", g);
  n.junctionize();
  n.check_valid(true);
  // a must have been padded with 2 latches.
  EXPECT_EQ(n.num_latches(), 4u);
}

TEST(Gen, PipelineBuilderRejectsDepthReduction) {
  Netlist n;
  PipelineBuilder pb(n);
  auto a = pb.delay(pb.input("a"), 1);
  EXPECT_THROW(pb.pad_to(a, 0), InvalidArgument);
}

TEST(Gen, ArgumentValidation) {
  EXPECT_THROW(shift_register(0), InvalidArgument);
  EXPECT_THROW(lfsr(3, {}), InvalidArgument);
  EXPECT_THROW(lfsr(3, {7}), InvalidArgument);
  EXPECT_THROW(pipelined_adder(4, 9), InvalidArgument);
  EXPECT_THROW(pipelined_multiplier(1, 1), InvalidArgument);
  EXPECT_THROW(controller_datapath(0), InvalidArgument);
}

}  // namespace
}  // namespace rtv
