// Cross-cutting property suites (parameterized sweeps over seeds/shapes):
//  * CLS monotonicity in the information order (more definite inputs can
//    only make outputs more definite) — the semantic backbone of Section 5;
//  * CLS conservativeness w.r.t. the exact simulator;
//  * simulator/STG/parallel-simulator agreement;
//  * .rnl round-trip fidelity on random designs.

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/random_circuits.hpp"
#include "io/rnl_format.hpp"
#include "sim/binary_sim.hpp"
#include "sim/cls_sim.hpp"
#include "sim/exact_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "stg/stg.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

struct Shape {
  std::uint64_t seed;
  unsigned gates;
  unsigned latches;
  double tables;
};

Netlist make(const Shape& shape) {
  Rng rng(shape.seed);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_outputs = 3;
  opt.num_gates = shape.gates;
  opt.num_latches = shape.latches;
  opt.table_probability = shape.tables;
  opt.latch_after_gate_probability = 0.15;
  return random_netlist(opt, rng);
}

class CircuitProperty : public ::testing::TestWithParam<Shape> {};

/// Pointwise information refinement: X entries of `coarse` may be anything
/// in `fine`; definite entries must match.
bool refines_vec(const Trits& coarse, const Trits& fine) {
  if (coarse.size() != fine.size()) return false;
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    if (!refines(coarse[i], fine[i])) return false;
  }
  return true;
}

TEST_P(CircuitProperty, ClsIsMonotoneInInformationOrder) {
  const Netlist n = make(GetParam());
  Rng rng(GetParam().seed ^ 0x5555);
  ClsSimulator sim(n);
  for (int trial = 0; trial < 30; ++trial) {
    // Random ternary state/input, plus a refinement replacing some Xs by
    // definite values.
    Trits state(n.latches().size());
    Trits input(n.primary_inputs().size());
    for (auto& t : state) t = static_cast<Trit>(rng.below(3));
    for (auto& t : input) t = static_cast<Trit>(rng.below(3));
    Trits state_f = state, input_f = input;
    for (auto& t : state_f) {
      if (t == kTX && rng.coin()) t = to_trit(rng.coin());
    }
    for (auto& t : input_f) {
      if (t == kTX && rng.coin()) t = to_trit(rng.coin());
    }
    Trits out, next, out_f, next_f;
    sim.eval(state, input, out, next);
    sim.eval(state_f, input_f, out_f, next_f);
    EXPECT_TRUE(refines_vec(out, out_f));
    EXPECT_TRUE(refines_vec(next, next_f));
  }
}

TEST_P(CircuitProperty, ClsIsConservativeWrtExact) {
  const Netlist n = make(GetParam());
  if (n.num_latches() > 16) GTEST_SKIP() << "exact-sim capacity";
  Rng rng(GetParam().seed ^ 0xaaaa);
  ClsSimulator cls(n);
  ExactTernarySimulator exact(n);
  for (int t = 0; t < 16; ++t) {
    Bits in(n.primary_inputs().size());
    for (auto& v : in) v = rng.coin();
    const Trits c = cls.step(in);
    const Trits e = exact.step(in);
    EXPECT_TRUE(refines_vec(c, e)) << "cycle " << t;
  }
}

TEST_P(CircuitProperty, BinaryParallelAndStgAgree) {
  const Netlist n = make(GetParam());
  if (n.num_latches() > 10) GTEST_SKIP() << "STG capacity";
  const Stg stg = Stg::extract(n);
  BinarySimulator sim(n);
  ParallelBinarySimulator psim(n, 8);
  Rng rng(GetParam().seed ^ 0x1234);
  std::uint32_t stg_state =
      static_cast<std::uint32_t>(rng.below(stg.num_states()));
  sim.set_state(unpack_bits(stg_state, static_cast<unsigned>(n.num_latches())));
  for (unsigned l = 0; l < psim.num_latches(); ++l) {
    for (unsigned lane = 0; lane < 8; ++lane) {
      psim.set_state_bit(l, lane, get_bit(stg_state, l));
    }
  }
  for (int t = 0; t < 16; ++t) {
    Bits in(n.primary_inputs().size());
    for (auto& v : in) v = rng.coin();
    const std::uint64_t symbol = pack_bits(in);
    const std::uint64_t expected_out = stg.output(stg_state, symbol);
    stg_state = stg.next_state(stg_state, symbol);
    const Bits out = sim.step(in);
    psim.step_broadcast(in);
    EXPECT_EQ(pack_bits(out), expected_out);
    for (unsigned o = 0; o < psim.num_outputs(); ++o) {
      EXPECT_EQ(psim.output_bit(o, 3), out[o] != 0);
    }
  }
}

TEST_P(CircuitProperty, RnlRoundTripPreservesBehaviour) {
  const Netlist n = make(GetParam());
  const Netlist parsed = read_rnl(write_rnl(n));
  BinarySimulator a(n), b(parsed);
  Rng rng(GetParam().seed ^ 0x9999);
  Bits state(n.num_latches());
  for (auto& v : state) v = rng.coin();
  a.set_state(state);
  b.set_state(state);
  for (int t = 0; t < 16; ++t) {
    Bits in(n.primary_inputs().size());
    for (auto& v : in) v = rng.coin();
    EXPECT_EQ(a.step(in), b.step(in));
  }
}

TEST_P(CircuitProperty, DelayedDesignChainIsMonotone) {
  const Netlist n = make(GetParam());
  if (n.num_latches() > 10) GTEST_SKIP() << "STG capacity";
  const Stg stg = Stg::extract(n);
  std::size_t prev = stg.num_states() + 1;
  for (unsigned k = 0; k <= 4; ++k) {
    const auto keep = states_after_delay(stg, k);
    const std::size_t count =
        static_cast<std::size_t>(std::count(keep.begin(), keep.end(), true));
    EXPECT_LE(count, prev);
    EXPECT_GE(count, 1u);
    prev = count;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CircuitProperty,
    ::testing::Values(Shape{101, 10, 2, 0.0}, Shape{102, 20, 3, 0.0},
                      Shape{103, 30, 4, 0.0}, Shape{104, 15, 3, 0.3},
                      Shape{105, 25, 4, 0.5}, Shape{106, 40, 5, 0.2},
                      Shape{107, 12, 2, 1.0}, Shape{108, 50, 5, 0.1},
                      Shape{109, 18, 3, 0.4}, Shape{110, 35, 4, 0.0}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace rtv
