// Backend cross-check suite: the explicit, BDD, and SAT engines (and the
// portfolio racing the last two) must tell the same story on the same
// query — equivalent retimed pairs stay equivalent under every backend,
// inequivalent pairs yield a definitive verdict with a *replayable*
// counterexample from every backend, and a fault-injected budget trip
// degrades any backend to an honestly-labeled bounded/exhausted report
// without poisoning the portfolio.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/safety.hpp"
#include "core/verify.hpp"
#include "gen/random_circuits.hpp"
#include "retime/graph.hpp"
#include "test_helpers.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::inverter_pipeline;
using testing::toggle_circuit;

constexpr EquivalenceBackend kAllBackends[] = {
    EquivalenceBackend::kExplicit,
    EquivalenceBackend::kBdd,
    EquivalenceBackend::kSat,
    EquivalenceBackend::kPortfolio,
};

/// inverter_pipeline with the NOT replaced by a BUF — CLS-distinguishable
/// from cycle 2 on, so every backend must find a counterexample.
Netlist buffer_pipeline() {
  Netlist n;
  const NodeId in = n.add_input("in");
  const NodeId out = n.add_output("out");
  const NodeId l0 = n.add_latch("L0");
  const NodeId l1 = n.add_latch("L1");
  const NodeId b = n.add_gate(CellKind::kBuf, 0, "b");
  n.connect(in, l0);
  n.connect(l0, b);
  n.connect(b, l1);
  n.connect(PortRef(l1, 0), PinRef(out, 0));
  n.check_valid(true);
  return n;
}

std::vector<int> random_legal_lag(const RetimeGraph& g, Rng& rng,
                                  int attempts = 40) {
  std::vector<int> lag(g.num_vertices(), 0);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    std::vector<int> probe = lag;
    const std::uint32_t v =
        2 + static_cast<std::uint32_t>(rng.below(g.num_vertices() - 2));
    probe[v] += rng.coin() ? 1 : -1;
    if (g.legal_retiming(probe)) lag = probe;
  }
  return lag;
}

ClsEquivalenceResult run_backend(EquivalenceBackend backend, const Netlist& a,
                                 const Netlist& b,
                                 ResourceBudget* budget = nullptr,
                                 bool allow_static_proof = true) {
  VerifyOptions opt;
  opt.backend = backend;
  opt.allow_static_proof = allow_static_proof;
  return verify_cls_equivalence(a, b, opt, budget);
}

TEST(BackendCrosscheck, AllBackendsAgreeOnRandomRetimedPairs) {
  // Corollary 5.3 instances: every backend must report the retimed design
  // CLS-equivalent to the original — any counterexample anywhere is a bug
  // in that engine (the dispatcher would even reject it as non-replaying).
  Rng rng(909);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 4;
  opt.num_gates = 14;
  opt.latch_after_gate_probability = 0.3;
  for (int trial = 0; trial < 6; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const RetimeGraph g = RetimeGraph::from_netlist(n);
    const std::vector<int> lag = random_legal_lag(g, rng);
    SequencedRetiming seq;
    analyze_lag_retiming(n, g, lag, &seq);
    for (const EquivalenceBackend backend : kAllBackends) {
      SCOPED_TRACE(std::string("trial ") + std::to_string(trial) +
                   " backend " + to_string(backend));
      const ClsEquivalenceResult r = run_backend(backend, n, seq.retimed);
      EXPECT_TRUE(r.equivalent) << r.summary();
      EXPECT_FALSE(r.counterexample.has_value());
      // Without a budget nothing can run out: the verdict is a completed
      // proof or a completed bounded analysis (k-induction need not close
      // on arbitrary pairs, so kBounded is acceptable for SAT).
      EXPECT_NE(r.verdict, Verdict::kExhausted) << r.summary();
      EXPECT_FALSE(r.decided_reason.empty());
    }
  }
}

TEST(BackendCrosscheck, AllBackendsProveIdenticalDesignsEquivalent) {
  const Netlist n = toggle_circuit();
  for (const EquivalenceBackend backend : kAllBackends) {
    SCOPED_TRACE(to_string(backend));
    const ClsEquivalenceResult r = run_backend(backend, n, n);
    EXPECT_TRUE(r.equivalent) << r.summary();
    EXPECT_EQ(r.verdict, Verdict::kProven) << r.summary();
    EXPECT_TRUE(r.exhaustive);
  }
}

TEST(BackendCrosscheck, AllBackendsFindReplayableCounterexamples) {
  const Netlist a = inverter_pipeline();
  const Netlist b = buffer_pipeline();
  for (const EquivalenceBackend backend : kAllBackends) {
    SCOPED_TRACE(to_string(backend));
    const ClsEquivalenceResult r = run_backend(backend, a, b);
    EXPECT_FALSE(r.equivalent) << r.summary();
    EXPECT_EQ(r.verdict, Verdict::kProven)
        << "a counterexample is definitive: " << r.summary();
    ASSERT_TRUE(r.counterexample.has_value());
    // Every backend's witness must replay on the concrete CLS simulators.
    EXPECT_FALSE(cls_outputs_match(a, b, *r.counterexample));
  }
}

TEST(BackendCrosscheck, PortfolioStampsTheDecidingEngine) {
  const Netlist n = toggle_circuit();
  VerifyOptions opt;
  opt.backend = EquivalenceBackend::kPortfolio;
  // This test exists to exercise the race machinery; keep the static
  // fixpoint proof from short-circuiting it.
  opt.allow_static_proof = false;
  const ClsEquivalenceResult r = verify_cls_equivalence(n, n, opt);
  EXPECT_TRUE(r.equivalent);
  EXPECT_EQ(r.verdict, Verdict::kProven);
  EXPECT_TRUE(r.decided_by == EquivalenceBackend::kBdd ||
              r.decided_by == EquivalenceBackend::kSat)
      << to_string(r.decided_by);
  EXPECT_NE(r.decided_reason.find("portfolio"), std::string::npos)
      << r.decided_reason;
}

/// Shared well-formedness bar for fault-injected runs on an *equivalent*
/// pair: whatever tripped, the report must never claim inequivalence, never
/// carry a counterexample, and must label exhaustion honestly.
void expect_degraded_honestly(const ClsEquivalenceResult& r,
                              std::uint64_t trip) {
  SCOPED_TRACE("injection at checkpoint " + std::to_string(trip));
  EXPECT_TRUE(r.equivalent) << r.summary();
  EXPECT_FALSE(r.counterexample.has_value());
  EXPECT_EQ(r.exhaustive, r.verdict == Verdict::kProven);
  EXPECT_TRUE(r.verdict == Verdict::kProven ||
              r.verdict == Verdict::kBounded ||
              r.verdict == Verdict::kExhausted);
  EXPECT_FALSE(r.decided_reason.empty());
}

TEST(BackendCrosscheckFaultSweep, SatDegradesToBoundedOrExhausted) {
  // Retimed (hence equivalent) pair, SAT backend, budget attached. Census
  // first, then trip every single checkpoint the run passes.
  const Netlist a = inverter_pipeline();
  Rng rng(5);
  const RetimeGraph g = RetimeGraph::from_netlist(a);
  SequencedRetiming seq;
  analyze_lag_retiming(a, g, random_legal_lag(g, rng), &seq);
  const Netlist& b = seq.retimed;

  fault_inject::arm(std::uint64_t{1} << 62);
  {
    ResourceBudget budget((ResourceLimits()));
    const ClsEquivalenceResult r =
        run_backend(EquivalenceBackend::kSat, a, b, &budget);
    EXPECT_TRUE(r.equivalent) << r.summary();
  }
  const std::uint64_t total = fault_inject::checkpoints_passed();
  fault_inject::disarm();
  ASSERT_GT(total, 0u) << "SAT run passed no checkpoints; sweep is vacuous";

  for (std::uint64_t n = 1; n <= total; ++n) {
    fault_inject::arm(n);
    ResourceBudget budget((ResourceLimits()));
    ClsEquivalenceResult r;
    ASSERT_NO_THROW(r = run_backend(EquivalenceBackend::kSat, a, b, &budget))
        << "injection at checkpoint " << n;
    fault_inject::disarm();
    expect_degraded_honestly(r, n);
  }
}

TEST(BackendCrosscheckFaultSweep, PortfolioIsNotPoisonedByTrippedEngines) {
  // A fault tripping inside one (or both) portfolio engines must never
  // crash the race, produce a verdict disagreement, or surface a bogus
  // counterexample; the merged report stays honest. Static proof off: the
  // sweep must reach the engines, not a fixpoint short-circuit.
  const Netlist n = toggle_circuit();

  fault_inject::arm(std::uint64_t{1} << 62);
  {
    ResourceBudget budget((ResourceLimits()));
    const ClsEquivalenceResult r = run_backend(
        EquivalenceBackend::kPortfolio, n, n, &budget, /*allow_static=*/false);
    EXPECT_TRUE(r.equivalent) << r.summary();
  }
  const std::uint64_t total = fault_inject::checkpoints_passed();
  fault_inject::disarm();
  ASSERT_GT(total, 0u);

  for (std::uint64_t trip = 1; trip <= total; ++trip) {
    fault_inject::arm(trip);
    ResourceBudget budget((ResourceLimits()));
    ClsEquivalenceResult r;
    ASSERT_NO_THROW(r = run_backend(EquivalenceBackend::kPortfolio, n, n,
                                    &budget, /*allow_static=*/false))
        << "injection at checkpoint " << trip;
    fault_inject::disarm();
    expect_degraded_honestly(r, trip);
  }
}

}  // namespace
}  // namespace rtv
