// BDD package and symbolic-analysis tests, including the flagship
// integration: a retimed design with its initial state transported through
// the move sequence is PROVEN output-equivalent by symbolic reachability on
// the miter.

#include <gtest/gtest.h>

#include <cmath>

#include "bdd/bdd.hpp"
#include "bdd/equivalence.hpp"
#include "bdd/symbolic.hpp"
#include "core/cls_reset.hpp"
#include "gen/iscas.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "gen/shift.hpp"
#include "retime/initial_state.hpp"
#include "sim/exact_sim.hpp"
#include "retime/moves.hpp"
#include "stg/stg.hpp"
#include "test_helpers.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using Ref = BddManager::Ref;

TEST(Bdd, TerminalsAndVars) {
  BddManager m(3);
  EXPECT_NE(m.var(0), m.var(1));
  EXPECT_EQ(m.bdd_not(BddManager::kTrue), BddManager::kFalse);
  EXPECT_EQ(m.bdd_not(m.bdd_not(m.var(2))), m.var(2));
  EXPECT_THROW(m.var(3), InvalidArgument);
}

TEST(Bdd, HashConsingCanonicity) {
  BddManager m(4);
  // Same function built two ways is the same node: (a & b) | (a & c)
  // vs a & (b | c).
  const Ref lhs = m.bdd_or(m.bdd_and(m.var(0), m.var(1)),
                           m.bdd_and(m.var(0), m.var(2)));
  const Ref rhs = m.bdd_and(m.var(0), m.bdd_or(m.var(1), m.var(2)));
  EXPECT_EQ(lhs, rhs);
}

TEST(Bdd, DeMorgan) {
  BddManager m(2);
  EXPECT_EQ(m.bdd_not(m.bdd_and(m.var(0), m.var(1))),
            m.bdd_or(m.bdd_not(m.var(0)), m.bdd_not(m.var(1))));
}

TEST(Bdd, EvaluateAgainstTruthTables) {
  // Random 4-var functions: build the BDD from minterms and compare
  // evaluation on every assignment.
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    BddManager m(4);
    std::uint16_t table = static_cast<std::uint16_t>(rng.next());
    Ref f = BddManager::kFalse;
    for (unsigned x = 0; x < 16; ++x) {
      if (!get_bit(table, x)) continue;
      Ref cube = BddManager::kTrue;
      for (unsigned v = 0; v < 4; ++v) {
        cube = m.bdd_and(cube, get_bit(x, v) ? m.var(v) : m.nvar(v));
      }
      f = m.bdd_or(f, cube);
    }
    for (unsigned x = 0; x < 16; ++x) {
      std::vector<bool> assign(4);
      for (unsigned v = 0; v < 4; ++v) assign[v] = get_bit(x, v);
      EXPECT_EQ(m.evaluate(f, assign), get_bit(table, x));
    }
    EXPECT_DOUBLE_EQ(m.count_sat(f), popcount64(table));
  }
}

TEST(Bdd, IteMatchesDefinition) {
  BddManager m(3);
  const Ref f = m.var(0), g = m.var(1), h = m.var(2);
  const Ref via_ite = m.ite(f, g, h);
  const Ref expanded = m.bdd_or(m.bdd_and(f, g), m.bdd_and(m.bdd_not(f), h));
  EXPECT_EQ(via_ite, expanded);
}

TEST(Bdd, ExistsSemantics) {
  BddManager m(3);
  // exists b. (a & b) = a; exists a. (a & !a) stays false.
  EXPECT_EQ(m.exists(m.bdd_and(m.var(0), m.var(1)), {1}), m.var(0));
  EXPECT_EQ(m.exists(m.bdd_and(m.var(0), m.nvar(0)), {0}),
            BddManager::kFalse);
  // exists over a variable outside the support is a no-op.
  const Ref f = m.bdd_xor(m.var(0), m.var(1));
  EXPECT_EQ(m.exists(f, {2}), f);
}

TEST(Bdd, RenameMonotone) {
  BddManager m(4);
  const Ref f = m.bdd_and(m.var(1), m.var(3));
  std::vector<unsigned> map{0, 0, 2, 2};  // 1 -> 0, 3 -> 2
  EXPECT_EQ(m.rename(f, map), m.bdd_and(m.var(0), m.var(2)));
}

TEST(Bdd, RenameRejectsCollision) {
  BddManager m(4);
  const Ref f = m.bdd_and(m.var(0), m.var(1));
  std::vector<unsigned> map{1, 1, 2, 3};  // 0 -> 1 collides with 1 -> 1
  EXPECT_THROW(m.rename(f, map), InvalidArgument);
}

TEST(Bdd, SupportAndSize) {
  BddManager m(5);
  const Ref f = m.bdd_xor(m.var(1), m.var(4));
  EXPECT_EQ(m.support(f), (std::vector<unsigned>{1, 4}));
  EXPECT_GE(m.size(f), 3u);
  EXPECT_TRUE(m.support(BddManager::kTrue).empty());
}

TEST(Bdd, PickModelSatisfies) {
  BddManager m(4);
  const Ref f = m.bdd_and(m.bdd_xor(m.var(0), m.var(2)), m.var(3));
  const auto model = m.pick_model(f);
  EXPECT_TRUE(m.evaluate(f, model));
  EXPECT_THROW(m.pick_model(BddManager::kFalse), InvalidArgument);
}

TEST(Bdd, NodeLimitGuard) {
  BddManager m(16, /*node_limit=*/64);
  Ref parity = BddManager::kFalse;
  EXPECT_THROW(
      {
        for (unsigned v = 0; v < 16; ++v) {
          parity = m.bdd_xor(parity, m.var(v));
          // XOR chains are linear, but the variable count times chain
          // construction overflows a 64-node arena quickly.
        }
        // Force blowup with a product of sums if parity alone fit.
        Ref blow = BddManager::kTrue;
        for (unsigned v = 0; v + 1 < 16; ++v) {
          blow = m.bdd_and(blow, m.bdd_or(m.var(v), m.var(v + 1)));
        }
      },
      CapacityError);
}

TEST(Symbolic, NextFunctionsMatchTruthTables) {
  const Netlist n = testing::toggle_circuit();
  SymbolicMachine sm(n);
  // next t = t XOR in.
  BddManager& m = sm.manager();
  EXPECT_EQ(sm.next_function(0),
            m.bdd_xor(m.var(sm.state_var(0)), m.var(sm.input_var(0))));
  // output = t.
  EXPECT_EQ(sm.output_function(0), m.var(sm.state_var(0)));
}

TEST(Symbolic, ImageOfToggle) {
  const Netlist n = testing::toggle_circuit();
  SymbolicMachine sm(n);
  // Image of {t = 0} under any input = {0, 1} (input free).
  const Ref img = sm.image(sm.state_cube(Bits{0}));
  EXPECT_EQ(img, BddManager::kTrue);
  EXPECT_DOUBLE_EQ(sm.count_states(img), 2.0);
}

TEST(Symbolic, DelayedStatesMatchExplicitStg) {
  Rng rng(21);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 2;
  opt.num_gates = 14;
  opt.num_latches = 4;
  opt.latch_after_gate_probability = 0.2;
  for (int trial = 0; trial < 6; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    if (n.num_latches() > 9) continue;
    const Stg stg = Stg::extract(n);
    SymbolicMachine sm(n);
    for (unsigned k = 0; k <= 3; ++k) {
      const auto explicit_set = states_after_delay(stg, k);
      const double explicit_count =
          static_cast<double>(std::count(explicit_set.begin(),
                                         explicit_set.end(), true));
      const Ref symbolic_set = sm.states_after_delay(k);
      EXPECT_DOUBLE_EQ(sm.count_states(symbolic_set), explicit_count)
          << "trial " << trial << " k=" << k;
      // Membership spot check.
      for (std::uint64_t s = 0; s < stg.num_states(); ++s) {
        std::vector<bool> assign(sm.manager().num_vars(), false);
        for (unsigned i = 0; i < n.num_latches(); ++i) {
          assign[sm.state_var(i)] = get_bit(s, i);
        }
        EXPECT_EQ(sm.manager().evaluate(symbolic_set, assign),
                  static_cast<bool>(explicit_set[s]));
      }
    }
  }
}

TEST(Symbolic, S27ReachabilityFromZeroState) {
  const Netlist n = iscas_s27();
  SymbolicMachine sm(n);
  const Ref reach = sm.reachable(sm.state_cube(Bits{0, 0, 0}));
  const double count = sm.count_states(reach);
  EXPECT_GE(count, 1.0);
  EXPECT_LE(count, 8.0);
  // Cross-check with the explicit STG.
  const Stg stg = Stg::extract(n);
  std::vector<bool> seen(stg.num_states(), false);
  std::vector<std::uint32_t> stack{0};
  seen[0] = true;
  double explicit_count = 1;
  while (!stack.empty()) {
    const std::uint32_t s = stack.back();
    stack.pop_back();
    for (std::uint64_t a = 0; a < stg.num_inputs(); ++a) {
      const std::uint32_t t = stg.next_state(s, a);
      if (!seen[t]) {
        seen[t] = true;
        ++explicit_count;
        stack.push_back(t);
      }
    }
  }
  EXPECT_DOUBLE_EQ(count, explicit_count);
}

TEST(Symbolic, MiterEquivalenceOnFigure1) {
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  // Agreeing joint start states are equivalent...
  EXPECT_TRUE(symbolically_equivalent_from(d, Bits{0}, c, Bits{0, 0}));
  EXPECT_TRUE(symbolically_equivalent_from(d, Bits{1}, c, Bits{1, 1}));
  // ...the Section-2 counterexample state is not equivalent to anything.
  EXPECT_FALSE(symbolically_equivalent_from(d, Bits{0}, c, Bits{1, 0}));
  EXPECT_FALSE(symbolically_equivalent_from(d, Bits{1}, c, Bits{1, 0}));
}

TEST(Symbolic, TransportedInitialStatesProvedEquivalent) {
  // The flagship integration: transport a random initial state through a
  // random applicable move sequence, then PROVE output equivalence by
  // symbolic reachability on the miter.
  Rng rng(31337);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 2;
  opt.num_gates = 16;
  opt.num_latches = 4;
  opt.latch_after_gate_probability = 0.25;
  int proved = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const Netlist original = random_netlist(opt, rng);
    Netlist work = original;
    Bits state(original.num_latches());
    for (auto& v : state) v = rng.coin();
    const Bits initial = state;
    int applied = 0;
    for (int step = 0; step < 6; ++step) {
      const auto moves = enabled_moves(work);
      if (moves.empty()) break;
      if (apply_move_with_state(work, moves[rng.index(moves.size())],
                                state)) {
        ++applied;
      }
    }
    if (applied == 0) continue;
    EXPECT_TRUE(symbolically_equivalent_from(original, initial,
                                             work.compacted(), state))
        << "trial " << trial;
    ++proved;
  }
  EXPECT_GT(proved, 0);
}

TEST(Bdd, ComposeMatchesSubstitution) {
  BddManager m(4);
  // f = (a xor b) & c; substitute a := c | d, b := 0.
  const Ref f = m.bdd_and(m.bdd_xor(m.var(0), m.var(1)), m.var(2));
  std::vector<Ref> sub{m.bdd_or(m.var(2), m.var(3)), BddManager::kFalse,
                       m.var(2), m.var(3)};
  const Ref got = m.compose(f, sub);
  const Ref expect = m.bdd_and(
      m.bdd_xor(m.bdd_or(m.var(2), m.var(3)), BddManager::kFalse), m.var(2));
  EXPECT_EQ(got, expect);
}

TEST(Bdd, ForallSemantics) {
  BddManager m(2);
  // forall b. (a | b) = a; forall b. (a & b) = false... = a & forall b. b.
  EXPECT_EQ(m.forall(m.bdd_or(m.var(0), m.var(1)), {1}), m.var(0));
  EXPECT_EQ(m.forall(m.bdd_and(m.var(0), m.var(1)), {1}), BddManager::kFalse);
}

TEST(SymbolicExact, MatchesExplicitOnTable1) {
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  SymbolicExactSimulator sd(d), sc(c);
  const BitsSeq in = bits_seq_from_string("0.1.1.1");
  EXPECT_EQ(sequence_to_string(sd.run(in)), "0.0.1.0");
  EXPECT_EQ(sequence_to_string(sc.run(in)), "0.X.X.X");
}

TEST(SymbolicExact, MatchesExplicitOnRandomCircuits) {
  Rng rng(606);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 3;
  opt.num_gates = 16;
  opt.num_latches = 5;
  opt.latch_after_gate_probability = 0.2;
  for (int trial = 0; trial < 6; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    if (n.num_latches() > 12) continue;
    ExactTernarySimulator explicit_sim(n);
    SymbolicExactSimulator symbolic_sim(n);
    for (int t = 0; t < 10; ++t) {
      Bits in(n.primary_inputs().size());
      for (auto& v : in) v = rng.coin();
      EXPECT_EQ(explicit_sim.step(in), symbolic_sim.step(in))
          << "trial " << trial << " cycle " << t;
    }
    EXPECT_EQ(explicit_sim.state_abstraction(),
              symbolic_sim.state_abstraction());
  }
}

TEST(SymbolicExact, ScalesPastExplicitCap) {
  // 24 latches: 16M power-up states — explicit enumeration is over the
  // default cap, the symbolic simulator handles it directly.
  const Netlist n = lfsr(24, {0, 3, 5, 23});
  SymbolicExactSimulator sim(n);
  // An LFSR never synchronizes: outputs stay X on constant-0 input.
  const TritsSeq outs = sim.run(BitsSeq(8, Bits{0}));
  for (const Trits& o : outs) EXPECT_EQ(o[0], kTX);
  // But a definite serial drive makes outputs definite after 24 cycles...
  // (only if the feedback taps are flushed; spot-check partial progress).
  SymbolicExactSimulator sim2(n);
  sim2.reset_from_ternary([&] {
    Trits s(24, kT0);
    s[7] = kTX;  // one unknown latch
    return s;
  }());
  const Trits early = sim2.step(Bits{0});
  EXPECT_EQ(early[0], kT0);  // output reads latch 23: definite
}

TEST(SymbolicExact, ResetFromTernary) {
  const Netlist n = testing::toggle_circuit();
  SymbolicExactSimulator sim(n);
  sim.reset_from_ternary(trits_from_string("1"));
  EXPECT_EQ(sim.step(bits_from_string("0"))[0], kT1);
}

TEST(SymbolicImplies, Figure1Relations) {
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  // C ⋢ D (the Section-2 violation), D ⊑ C (every D state has a C twin).
  SymbolicImplication cd(c, d);
  EXPECT_FALSE(cd.implies());
  EXPECT_EQ(cd.min_delay_for_implication(8), 1);  // Thm 4.5 with k = 1
  SymbolicImplication dc(d, c);
  EXPECT_TRUE(dc.implies());
  EXPECT_EQ(dc.min_delay_for_implication(8), 0);
}

TEST(SymbolicImplies, SelfImplicationAlwaysHolds) {
  for (const Netlist& n : {figure1_original(), iscas_s27()}) {
    SymbolicImplication self(n, n);
    EXPECT_TRUE(self.implies());
  }
}

TEST(SymbolicImplies, MatchesExplicitStgOnRandomCircuits) {
  Rng rng(808);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 2;
  opt.num_gates = 12;
  opt.num_latches = 3;
  opt.latch_after_gate_probability = 0.25;
  int compared = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const Netlist a = random_netlist(opt, rng);
    Netlist b = a;
    // Random retiming by moves: relation outcomes vary per trial.
    for (int step = 0; step < 4; ++step) {
      const auto moves = enabled_moves(b);
      if (moves.empty()) break;
      apply_move(b, moves[rng.index(moves.size())]);
    }
    if (a.num_latches() > 8 || b.num_latches() > 8) continue;
    const Stg sa = Stg::extract(a);
    const Stg sb = Stg::extract(b);
    SymbolicImplication sym(b, a);
    EXPECT_EQ(sym.implies(), implies(sb, sa)) << "trial " << trial;
    EXPECT_EQ(sym.min_delay_for_implication(10),
              min_delay_for_implication(sb, sa, 10))
        << "trial " << trial;
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

TEST(SymbolicImplies, DelayBoundOnLapCircuit) {
  // The k-lap loop construction: symbolic min delay equals the lap count.
  Netlist n;
  const NodeId o = n.add_output("o");
  const NodeId inv = n.add_gate(CellKind::kNot, 0, "inv");
  const NodeId j = n.add_junc(2, "J");
  const NodeId latch = n.add_latch("L");
  n.connect(PortRef(j, 0), PinRef(inv, 0));
  n.connect(PortRef(inv, 0), PinRef(latch, 0));
  n.connect(PortRef(latch, 0), PinRef(j, 0));
  n.connect(PortRef(j, 1), PinRef(o, 0));
  n.check_valid(true);
  Netlist retimed = n;
  apply_move(retimed, {j, MoveDirection::kForward});
  apply_move(retimed, {inv, MoveDirection::kForward});
  apply_move(retimed, {j, MoveDirection::kForward});
  SymbolicImplication sym(retimed.compacted(), n);
  EXPECT_FALSE(sym.implies());
  EXPECT_EQ(sym.min_delay_for_implication(8), 2);
}

TEST(ClsReset, FigureCircuitsHaveNoClsReset) {
  // Section 5: input 0 really resets D but the CLS never sees it — and by
  // Cor 5.3's last sentence, the same must hold for the retimed C.
  const auto d = find_cls_reset_sequence(figure1_original());
  const auto c = find_cls_reset_sequence(figure1_retimed());
  EXPECT_FALSE(d.has_value());
  EXPECT_FALSE(c.has_value());
}

TEST(ClsReset, ResettableDesignFound) {
  // A latch with a synchronous reset modeled by gates IS CLS-resettable:
  // v = NOT(r) AND d gives a definite 0 when r = 1 even with X data.
  Netlist n;
  const NodeId r = n.add_input("r");
  const NodeId d = n.add_input("d");
  const NodeId o = n.add_output("o");
  const NodeId inv = n.add_gate(CellKind::kNot, 0, "inv");
  const NodeId g = n.add_gate(CellKind::kAnd, 2, "g");
  const NodeId latch = n.add_latch("q");
  n.connect(r, inv);
  n.connect(inv, g, 0);
  n.connect(d, g, 1);
  n.connect(g, latch);
  n.connect(PortRef(latch, 0), PinRef(o, 0));
  n.check_valid(true);
  const auto seq = find_cls_reset_sequence(n);
  ASSERT_TRUE(seq.has_value());
  EXPECT_EQ(seq->size(), 1u);
  EXPECT_TRUE(cls_resets(n, *seq));
}

TEST(ClsReset, PreservedUnderRetiming) {
  // Corollary 5.3, final sentence, as a property sweep: a sequence CLS-
  // resets the original iff it CLS-resets the retimed design. We check the
  // forward direction on found sequences in both directions.
  Rng rng(515);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 2;
  opt.num_gates = 12;
  opt.num_latches = 3;
  opt.latch_after_gate_probability = 0.25;
  int exercised = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    Netlist retimed = n;
    int applied = 0;
    for (int step = 0; step < 5; ++step) {
      const auto moves = enabled_moves(retimed);
      if (moves.empty()) break;
      apply_move(retimed, moves[rng.index(moves.size())]);
      ++applied;
    }
    if (applied == 0) continue;
    const ClsResetSearch search{.max_length = 6, .max_states = 20000};
    const auto seq_a = find_cls_reset_sequence(n, search);
    const auto seq_b = find_cls_reset_sequence(retimed, search);
    if (seq_a) {
      EXPECT_TRUE(cls_resets(retimed, *seq_a)) << "trial " << trial;
      ++exercised;
    }
    if (seq_b) {
      EXPECT_TRUE(cls_resets(n, *seq_b)) << "trial " << trial;
      ++exercised;
    }
    // Existence must agree in both directions.
    EXPECT_EQ(seq_a.has_value(), seq_b.has_value()) << "trial " << trial;
  }
  EXPECT_GT(exercised, 0);
}

}  // namespace
}  // namespace rtv
