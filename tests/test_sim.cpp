#include <gtest/gtest.h>

#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "sim/binary_sim.hpp"
#include "sim/cls_sim.hpp"
#include "sim/exact_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "test_helpers.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::and2_circuit;
using testing::toggle_circuit;

TEST(Vectors, BitsRoundTrip) {
  EXPECT_EQ(to_string(bits_from_string("0110")), "0110");
  EXPECT_THROW(bits_from_string("012"), ParseError);
  EXPECT_EQ(sequence_to_string(bits_seq_from_string("01.10")), "01.10");
}

TEST(Vectors, PackUnpackBits) {
  const Bits b = bits_from_string("1011");
  EXPECT_EQ(pack_bits(b), 0b1101u);  // LSB-first packing
  EXPECT_EQ(unpack_bits(0b1101, 4), b);
}

TEST(Vectors, PackUnpackTrits) {
  const Trits t = trits_from_string("0X1");
  const std::uint64_t code = pack_trits(t);
  EXPECT_EQ(unpack_trits(code, 3), t);
}

TEST(Vectors, LowerToBits) {
  Bits out;
  EXPECT_TRUE(try_lower_to_bits(trits_from_string("01"), out));
  EXPECT_EQ(out, bits_from_string("01"));
  EXPECT_FALSE(try_lower_to_bits(trits_from_string("0X"), out));
}

TEST(BinarySim, CombinationalAnd) {
  const Netlist n = and2_circuit();
  BinarySimulator sim(n);
  EXPECT_EQ(sim.step(bits_from_string("11")), bits_from_string("1"));
  EXPECT_EQ(sim.step(bits_from_string("10")), bits_from_string("0"));
  EXPECT_EQ(sim.step(bits_from_string("01")), bits_from_string("0"));
  EXPECT_EQ(sim.step(bits_from_string("00")), bits_from_string("0"));
}

TEST(BinarySim, ToggleBehaviour) {
  const Netlist n = toggle_circuit();
  BinarySimulator sim(n);
  sim.set_state(bits_from_string("0"));
  // out = t (pre-clock), next t = t XOR in.
  const BitsSeq outs = sim.run(bits_seq_from_string("1.1.1.0"));
  EXPECT_EQ(sequence_to_string(outs), "0.1.0.1");
  EXPECT_EQ(sim.state(), bits_from_string("1"));
}

TEST(BinarySim, EvalDoesNotMutateState) {
  const Netlist n = toggle_circuit();
  BinarySimulator sim(n);
  sim.set_state(bits_from_string("1"));
  Bits out, next;
  sim.eval(bits_from_string("0"), bits_from_string("1"), out, next);
  EXPECT_EQ(out, bits_from_string("0"));
  EXPECT_EQ(next, bits_from_string("1"));
  EXPECT_EQ(sim.state(), bits_from_string("1"));
}

TEST(BinarySim, EvalPackedMatchesUnpacked) {
  Rng rng(21);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_latches = 4;
  opt.num_gates = 25;
  const Netlist n = random_netlist(opt, rng);
  BinarySimulator sim(n);
  const unsigned L = sim.num_latches();
  const unsigned I = sim.num_inputs();
  for (std::uint64_t s = 0; s < pow2(L); ++s) {
    for (std::uint64_t a = 0; a < pow2(I); ++a) {
      Bits out, next;
      sim.eval(unpack_bits(s, L), unpack_bits(a, I), out, next);
      std::uint64_t po = 0, pn = 0;
      sim.eval_packed(s, a, po, pn);
      EXPECT_EQ(po, pack_bits(out));
      EXPECT_EQ(pn, pack_bits(next));
    }
  }
}

TEST(BinarySim, InputSizeMismatchThrows) {
  const Netlist n = and2_circuit();
  BinarySimulator sim(n);
  EXPECT_THROW(sim.step(bits_from_string("1")), InvalidArgument);
}

TEST(BinarySim, AllGateKindsEvaluate) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId s = n.add_input("s");
  std::vector<NodeId> gates;
  const auto bin = [&](CellKind k, const char* name) {
    const NodeId g = n.add_gate(k, 2, name);
    n.connect(a, g, 0);
    n.connect(b, g, 1);
    gates.push_back(g);
  };
  bin(CellKind::kAnd, "and");
  bin(CellKind::kOr, "or");
  bin(CellKind::kNand, "nand");
  bin(CellKind::kNor, "nor");
  bin(CellKind::kXor, "xor");
  bin(CellKind::kXnor, "xnor");
  const NodeId mux = n.add_gate(CellKind::kMux, 0, "mux");
  n.connect(s, mux, 0);
  n.connect(a, mux, 1);
  n.connect(b, mux, 2);
  gates.push_back(mux);
  const NodeId inv = n.add_gate(CellKind::kNot, 0, "not");
  n.connect(a, inv, 0);
  gates.push_back(inv);
  const NodeId c1 = n.add_const(true, "c1");
  gates.push_back(c1);
  for (const NodeId g : gates) {
    const NodeId po = n.add_output("o_" + n.name(g));
    n.connect(PortRef(g, 0), PinRef(po, 0));
  }
  n.junctionize();
  n.check_valid(true);

  BinarySimulator sim(n);
  for (std::uint64_t x = 0; x < 8; ++x) {
    const bool av = get_bit(x, 0), bv = get_bit(x, 1), sv = get_bit(x, 2);
    Bits in{static_cast<std::uint8_t>(av), static_cast<std::uint8_t>(bv),
            static_cast<std::uint8_t>(sv)};
    const Bits out = sim.step(in);
    ASSERT_EQ(out.size(), 9u);
    EXPECT_EQ(out[0], av && bv);
    EXPECT_EQ(out[1], av || bv);
    EXPECT_EQ(out[2], !(av && bv));
    EXPECT_EQ(out[3], !(av || bv));
    EXPECT_EQ(out[4], av != bv);
    EXPECT_EQ(out[5], av == bv);
    EXPECT_EQ(out[6], sv ? bv : av);
    EXPECT_EQ(out[7], !av);
    EXPECT_EQ(out[8], 1);
  }
}

TEST(ClsSim, StartsAllX) {
  const Netlist n = toggle_circuit();
  ClsSimulator sim(n);
  EXPECT_FALSE(sim.is_fully_initialized());
  EXPECT_EQ(sim.state(), trits_from_string("X"));
}

TEST(ClsSim, DefiniteInputsOnDefiniteStateMatchBinary) {
  Rng rng(33);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_latches = 3;
  opt.num_gates = 30;
  for (int trial = 0; trial < 5; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    BinarySimulator bsim(n);
    ClsSimulator tsim(n);
    Bits state(bsim.num_latches());
    for (auto& v : state) v = rng.coin();
    bsim.set_state(state);
    tsim.set_state(to_trits(state));
    for (int step = 0; step < 20; ++step) {
      Bits in(bsim.num_inputs());
      for (auto& v : in) v = rng.coin();
      EXPECT_EQ(to_trits(bsim.step(in)), tsim.step(in));
    }
  }
}

TEST(ClsSim, LosesComplementCorrelation) {
  // The paper's Section 5 observation on design D: input 0 really resets
  // the latch, but the CLS keeps it at X forever.
  const Netlist d = figure1_original();
  ClsSimulator sim(d);
  sim.step(bits_from_string("0"));
  EXPECT_FALSE(sim.is_fully_initialized());
  EXPECT_EQ(sim.state(), trits_from_string("X"));
}

TEST(ClsSim, ConservativeWrtExact) {
  // Property: whenever the CLS says 0 or 1, the exact simulator agrees.
  Rng rng(55);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 4;
  opt.num_gates = 20;
  for (int trial = 0; trial < 10; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    ClsSimulator cls(n);
    ExactTernarySimulator exact(n);
    for (int step = 0; step < 12; ++step) {
      Bits in(cls.num_inputs());
      for (auto& v : in) v = rng.coin();
      const Trits c = cls.step(in);
      const Trits e = exact.step(in);
      ASSERT_EQ(c.size(), e.size());
      for (std::size_t i = 0; i < c.size(); ++i) {
        if (is_definite(c[i])) {
          EXPECT_EQ(c[i], e[i]) << "CLS must be conservative";
        }
      }
    }
  }
}

TEST(ClsSim, TableCellsPropagateLocally) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const TableId t = n.add_table(TruthTable::half_adder());
  const NodeId ha = n.add_table_cell(t, "ha");
  const NodeId latch = n.add_latch("L");
  const NodeId o1 = n.add_output("sum");
  const NodeId o2 = n.add_output("carry");
  n.connect(a, ha, 0);
  n.connect(PortRef(latch, 0), PinRef(ha, 1));
  n.connect(PortRef(ha, 0), PinRef(o1, 0));
  n.connect(PortRef(ha, 1), PinRef(latch, 0));  // carry feeds the latch...
  n.connect(PortRef(ha, 1), PinRef(o2, 0));     // ...and is observable
  n.junctionize();
  n.check_valid(true);

  ClsSimulator sim(n);
  // Latch X, input 0: sum = X, carry = 0 (definite despite the X operand).
  const Trits out = sim.step(bits_from_string("0"));
  EXPECT_EQ(out[0], kTX);
  EXPECT_EQ(out[1], kT0);
}

TEST(ExactSim, TracksStateSet) {
  const Netlist n = toggle_circuit();
  ExactTernarySimulator sim(n);
  EXPECT_EQ(sim.current_states().size(), 2u);
  // out = t: from {0,1} the output is X.
  const Trits out = sim.step(bits_from_string("0"));
  EXPECT_EQ(out[0], kTX);
}

TEST(ExactSim, ResetFromTernary) {
  const Netlist n = toggle_circuit();
  ExactTernarySimulator sim(n);
  sim.reset_from_ternary(trits_from_string("1"));
  EXPECT_EQ(sim.current_states(), std::vector<std::uint64_t>{1});
  EXPECT_EQ(sim.step(bits_from_string("0"))[0], kT1);
}

TEST(ExactSim, StateAbstraction) {
  const Netlist n = testing::inverter_pipeline();
  ExactTernarySimulator sim(n);
  EXPECT_EQ(sim.state_abstraction(), trits_from_string("XX"));
  sim.reset_from_states({0b01});
  EXPECT_EQ(sim.state_abstraction(), trits_from_string("10"));
  sim.reset_from_states({0b01, 0b11});
  EXPECT_EQ(sim.state_abstraction(), trits_from_string("1X"));
}

TEST(ExactSim, RefinesClsOnRandomCircuits) {
  // Exact never reports X where the structure forces a definite value;
  // formally: exact(t) is a refinement of cls(t) pointwise.
  Rng rng(77);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 5;
  opt.num_gates = 25;
  for (int trial = 0; trial < 8; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    ClsSimulator cls(n);
    ExactTernarySimulator exact(n);
    for (int step = 0; step < 10; ++step) {
      Bits in(cls.num_inputs());
      for (auto& v : in) v = rng.coin();
      const Trits c = cls.step(in);
      const Trits e = exact.step(in);
      for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_TRUE(refines(c[i], e[i]));
      }
    }
  }
}

TEST(ExactSim, CapacityGuard) {
  Netlist n;
  const NodeId in = n.add_input("i");
  PortRef prev(in, 0);
  for (int i = 0; i < 25; ++i) {
    const NodeId l = n.add_latch();
    n.connect(prev, PinRef(l, 0));
    prev = PortRef(l, 0);
  }
  const NodeId o = n.add_output("o");
  n.connect(prev, PinRef(o, 0));
  EXPECT_THROW(ExactTernarySimulator(n, /*state_cap=*/1 << 10),
               InvalidArgument);
}

TEST(ParallelSim, MatchesSerialAcrossLanes) {
  Rng rng(88);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_latches = 6;
  opt.num_gates = 40;
  opt.table_probability = 0.3;
  const Netlist n = random_netlist(opt, rng);

  const unsigned lanes = 100;
  ParallelBinarySimulator psim(n, lanes);
  std::vector<BinarySimulator> serial;
  std::vector<Bits> states(lanes);
  for (unsigned lane = 0; lane < lanes; ++lane) {
    states[lane].resize(psim.num_latches());
    for (auto& v : states[lane]) v = rng.coin();
    for (unsigned l = 0; l < psim.num_latches(); ++l) {
      psim.set_state_bit(l, lane, states[lane][l] != 0);
    }
    serial.emplace_back(n);
    serial.back().set_state(states[lane]);
  }
  for (int step = 0; step < 8; ++step) {
    Bits in(psim.num_inputs());
    for (auto& v : in) v = rng.coin();
    psim.step_broadcast(in);
    for (unsigned lane = 0; lane < lanes; ++lane) {
      const Bits expected = serial[lane].step(in);
      for (unsigned o = 0; o < psim.num_outputs(); ++o) {
        EXPECT_EQ(psim.output_bit(o, lane), expected[o] != 0);
      }
      EXPECT_EQ(psim.state_lane(lane), serial[lane].state());
    }
  }
}

TEST(ParallelSim, PackedInputsPerLane) {
  const Netlist n = and2_circuit();
  ParallelBinarySimulator sim(n, 4);
  // Lane l gets inputs (a, b) = bits of l.
  std::vector<std::uint64_t> packed(2, 0);
  for (unsigned lane = 0; lane < 4; ++lane) {
    if (get_bit(lane, 0)) packed[0] |= 1ULL << lane;
    if (get_bit(lane, 1)) packed[1] |= 1ULL << lane;
  }
  sim.step_packed(packed);
  EXPECT_FALSE(sim.output_bit(0, 0));
  EXPECT_FALSE(sim.output_bit(0, 1));
  EXPECT_FALSE(sim.output_bit(0, 2));
  EXPECT_TRUE(sim.output_bit(0, 3));
}

TEST(ParallelSim, BroadcastState) {
  const Netlist n = toggle_circuit();
  ParallelBinarySimulator sim(n, 70);  // spans two words
  sim.set_state_broadcast(bits_from_string("1"));
  sim.step_broadcast(bits_from_string("0"));
  for (unsigned lane = 0; lane < 70; ++lane) {
    EXPECT_TRUE(sim.output_bit(0, lane));
  }
}

}  // namespace
}  // namespace rtv
