#include <gtest/gtest.h>

#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "retime/apply.hpp"
#include "retime/graph.hpp"
#include "retime/moves.hpp"
#include "retime/sequencer.hpp"
#include "stg/stg.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::inverter_pipeline;

TEST(Moves, ForwardAcrossInverter) {
  Netlist n = inverter_pipeline();
  const NodeId inv = n.find_by_name("inv");
  const RetimingMove fwd{inv, MoveDirection::kForward};
  ASSERT_TRUE(can_apply(n, fwd));
  const MoveClass cls = apply_move(n, fwd);
  EXPECT_TRUE(cls.justifiable);
  EXPECT_TRUE(cls.preserves_safe_replacement());
  EXPECT_EQ(n.num_latches(), 2u);  // 1 removed at input, 1 added per output
  n.check_valid(true);
  // The inverter's input now comes straight from the PI.
  EXPECT_EQ(n.kind(n.driver(PinRef(inv, 0)).node), CellKind::kInput);
}

TEST(Moves, BackwardAcrossInverter) {
  Netlist n = inverter_pipeline();
  const NodeId inv = n.find_by_name("inv");
  const RetimingMove bwd{inv, MoveDirection::kBackward};
  ASSERT_TRUE(can_apply(n, bwd));
  apply_move(n, bwd);
  n.check_valid(true);
  EXPECT_EQ(n.num_latches(), 2u);
  // Now 2 latches between PI and inverter, none after.
  const PortRef d1 = n.driver(PinRef(inv, 0));
  EXPECT_EQ(n.kind(d1.node), CellKind::kLatch);
  EXPECT_EQ(n.kind(n.driver(PinRef(d1.node, 0)).node), CellKind::kLatch);
}

TEST(Moves, ForwardThenBackwardRestoresLatchCount) {
  Netlist n = inverter_pipeline();
  const NodeId inv = n.find_by_name("inv");
  apply_move(n, {inv, MoveDirection::kForward});
  apply_move(n, {inv, MoveDirection::kBackward});
  EXPECT_EQ(n.num_latches(), 2u);
  n.check_valid(true);
  // Behaviour identical to the original.
  const Stg a = Stg::extract(n);
  const Stg b = Stg::extract(inverter_pipeline());
  EXPECT_TRUE(implies(a, b));
  EXPECT_TRUE(implies(b, a));
}

TEST(Moves, NotEnabledWithoutLatches) {
  Netlist n = testing::and2_circuit();
  const NodeId g = n.find_by_name("g");
  EXPECT_FALSE(can_apply(n, {g, MoveDirection::kForward}));
  EXPECT_FALSE(can_apply(n, {g, MoveDirection::kBackward}));
  EXPECT_THROW(apply_move(n, {g, MoveDirection::kForward}), InvalidArgument);
}

TEST(Moves, ForwardNeedsLatchOnEveryInput) {
  // Two-input gate with a latch on only one input: not enabled.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId o = n.add_output("o");
  const NodeId l = n.add_latch("L");
  const NodeId g = n.add_gate(CellKind::kAnd, 2, "g");
  n.connect(a, l);
  n.connect(l, g, 0);
  n.connect(b, g, 1);
  n.connect(PortRef(g, 0), PinRef(o, 0));
  n.check_valid(true);
  EXPECT_FALSE(can_apply(n, {g, MoveDirection::kForward}));
}

TEST(Moves, CannotMoveNonCombinational) {
  Netlist n = inverter_pipeline();
  EXPECT_FALSE(can_apply(n, {n.find_by_name("L0"), MoveDirection::kForward}));
  EXPECT_FALSE(
      can_apply(n, {n.primary_inputs()[0], MoveDirection::kForward}));
  EXPECT_FALSE(can_apply(n, {NodeId(), MoveDirection::kForward}));
  EXPECT_FALSE(can_apply(n, {NodeId(9999), MoveDirection::kForward}));
}

TEST(Moves, ClassificationOfJunctionMoves) {
  Netlist d = figure1_original();
  const NodeId j1 = d.find_by_name("J1");
  const MoveClass fwd = classify_move(d, {j1, MoveDirection::kForward});
  EXPECT_FALSE(fwd.justifiable);
  EXPECT_FALSE(fwd.preserves_safe_replacement());
  const MoveClass bwd = classify_move(d, {j1, MoveDirection::kBackward});
  EXPECT_FALSE(bwd.justifiable);
  EXPECT_TRUE(bwd.preserves_safe_replacement());  // backward is always safe
}

TEST(Moves, EnabledMovesOnFigure1) {
  const Netlist d = figure1_original();
  const auto moves = enabled_moves(d);
  // Forward across J1 (latch feeds it) must be enabled.
  bool fwd_j1 = false;
  for (const auto& m : moves) {
    if (m.element == d.find_by_name("J1") &&
        m.direction == MoveDirection::kForward) {
      fwd_j1 = true;
    }
  }
  EXPECT_TRUE(fwd_j1);
}

TEST(Moves, SelfLoopGateMove) {
  // gate output feeds its own input through a latch: forward move keeps
  // the netlist valid and the latch count stable.
  Netlist n;
  const NodeId o = n.add_output("o");
  const NodeId l = n.add_latch("L");
  const NodeId j = n.add_junc(2, "J");
  const NodeId g = n.add_gate(CellKind::kNot, 0, "g");
  n.connect(PortRef(g, 0), PinRef(j, 0));
  n.connect(PortRef(j, 0), PinRef(l, 0));
  n.connect(PortRef(l, 0), PinRef(g, 0));
  n.connect(PortRef(j, 1), PinRef(o, 0));
  n.check_valid(true);
  ASSERT_TRUE(can_apply(n, {g, MoveDirection::kForward}));
  apply_move(n, {g, MoveDirection::kForward});
  n.check_valid(true);
  EXPECT_EQ(n.num_latches(), 1u);
}

TEST(Moves, ForwardAcrossConstMintsLatch) {
  // A constant has no inputs: the forward move is vacuously enabled and
  // adds a latch on the output (a classic LS oddity, still legal).
  Netlist n;
  const NodeId c = n.add_const(true, "c");
  const NodeId o = n.add_output("o");
  n.connect(PortRef(c, 0), PinRef(o, 0));
  ASSERT_TRUE(can_apply(n, {c, MoveDirection::kForward}));
  const MoveClass cls = apply_move(n, {c, MoveDirection::kForward});
  EXPECT_FALSE(cls.justifiable);  // constants are non-justifiable
  EXPECT_EQ(n.num_latches(), 1u);
  n.check_valid(true);
}

TEST(Moves, StatsSummary) {
  MoveSequenceStats stats;
  stats.total_moves = 5;
  stats.forward_moves = 3;
  stats.backward_moves = 2;
  stats.forward_across_non_justifiable = 1;
  stats.max_forward_per_non_justifiable = 1;
  EXPECT_FALSE(stats.preserves_safe_replacement());
  EXPECT_NE(stats.summary().find("k = 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sequencer
// ---------------------------------------------------------------------------

TEST(Sequencer, RealizesSimpleLag) {
  const Netlist n = inverter_pipeline();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  std::vector<int> lag(g.num_vertices(), 0);
  lag[g.vertex_of(n.find_by_name("inv"))] = -1;  // one forward move
  const SequencedRetiming seq = sequence_retiming(n, g, lag);
  EXPECT_EQ(seq.stats.total_moves, 1u);
  EXPECT_EQ(seq.stats.forward_moves, 1u);
  EXPECT_TRUE(seq.stats.preserves_safe_replacement());
  seq.retimed.check_valid(true);
  EXPECT_EQ(seq.retimed.num_latches(), 2u);
}

TEST(Sequencer, MatchesApplyRetimingWeights) {
  // The move-by-move realization and the direct weight rebuild must agree
  // on every edge weight.
  Rng rng(11);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_latches = 5;
  opt.num_gates = 25;
  for (int trial = 0; trial < 10; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const RetimeGraph g = RetimeGraph::from_netlist(n);
    // Random legal lag: clamp a random proposal by probing legality.
    std::vector<int> lag(g.num_vertices(), 0);
    for (int attempt = 0; attempt < 50; ++attempt) {
      std::vector<int> probe = lag;
      const std::uint32_t v =
          2 + static_cast<std::uint32_t>(rng.below(g.num_vertices() - 2));
      probe[v] += rng.coin() ? 1 : -1;
      if (g.legal_retiming(probe)) lag = probe;
    }
    const SequencedRetiming seq = sequence_retiming(n, g, lag);
    seq.retimed.check_valid(true);
    const Netlist direct = apply_retiming(n, g, lag);
    direct.check_valid(true);
    EXPECT_EQ(seq.retimed.num_latches(), direct.num_latches());
    // Edge-weight multiset comparison through fresh graphs.
    const auto weights = [](const Netlist& x) {
      const RetimeGraph gx = RetimeGraph::from_netlist(x);
      std::vector<int> w;
      for (const auto& e : gx.edges()) w.push_back(e.weight);
      std::sort(w.begin(), w.end());
      return w;
    };
    EXPECT_EQ(weights(seq.retimed), weights(direct));
  }
}

TEST(Sequencer, CountsForwardMovesAcrossNonJustifiable) {
  Netlist d = figure1_original();
  const RetimeGraph g = RetimeGraph::from_netlist(d);
  std::vector<int> lag(g.num_vertices(), 0);
  lag[g.vertex_of(d.find_by_name("J1"))] = -1;
  const SequencedRetiming seq = sequence_retiming(d, g, lag);
  EXPECT_EQ(seq.stats.forward_across_non_justifiable, 1u);
  EXPECT_EQ(seq.stats.max_forward_per_non_justifiable, 1u);
  EXPECT_FALSE(seq.stats.preserves_safe_replacement());
}

TEST(Sequencer, ZeroLagIsNoOp) {
  const Netlist n = inverter_pipeline();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const SequencedRetiming seq =
      sequence_retiming(n, g, std::vector<int>(g.num_vertices(), 0));
  EXPECT_EQ(seq.stats.total_moves, 0u);
  EXPECT_EQ(seq.retimed.num_latches(), n.num_latches());
}

TEST(Sequencer, RejectsIllegalLag) {
  const Netlist n = inverter_pipeline();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  std::vector<int> lag(g.num_vertices(), 0);
  lag[g.vertex_of(n.find_by_name("inv"))] = 5;
  EXPECT_THROW(sequence_retiming(n, g, lag), InvalidArgument);
}

TEST(Sequencer, DeepLagNeedsOrderedMoves) {
  // A chain gate1 -> gate2 with all latches at the input: moving both
  // forward requires gate1 first; the sequencer must schedule it.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId o = n.add_output("o");
  const NodeId l1 = n.add_latch("L1");
  const NodeId g1 = n.add_gate(CellKind::kNot, 0, "g1");
  const NodeId g2 = n.add_gate(CellKind::kBuf, 0, "g2");
  n.connect(a, l1);
  n.connect(l1, g1);
  n.connect(g1, g2);
  n.connect(PortRef(g2, 0), PinRef(o, 0));
  n.check_valid(true);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  std::vector<int> lag(g.num_vertices(), 0);
  lag[g.vertex_of(g1)] = -1;
  lag[g.vertex_of(g2)] = -1;
  ASSERT_TRUE(g.legal_retiming(lag));
  const SequencedRetiming seq = sequence_retiming(n, g, lag);
  EXPECT_EQ(seq.stats.total_moves, 2u);
  ASSERT_EQ(seq.moves.size(), 2u);
  EXPECT_EQ(seq.moves[0].element, g1);
  EXPECT_EQ(seq.moves[1].element, g2);
  seq.retimed.check_valid(true);
  // Latch ends up after g2.
  EXPECT_EQ(seq.retimed.kind(seq.retimed.driver(
      PinRef(seq.retimed.primary_outputs()[0], 0)).node),
      CellKind::kLatch);
}

TEST(ApplyRetiming, PreservesCombinationalStructure) {
  const Netlist n = figure1_original();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  std::vector<int> lag(g.num_vertices(), 0);
  lag[g.vertex_of(n.find_by_name("J1"))] = -1;
  const Netlist r = apply_retiming(n, g, lag);
  r.check_valid(true);
  EXPECT_EQ(r.num_gates(), n.num_gates());
  EXPECT_EQ(r.num_latches(), 2u);
  // STG equivalent to the hand-built C.
  const Stg rs = Stg::extract(r);
  const Stg cs = Stg::extract(figure1_retimed());
  EXPECT_TRUE(implies(rs, cs));
  EXPECT_TRUE(implies(cs, rs));
}

TEST(ApplyRetiming, RejectsIllegalLag) {
  const Netlist n = inverter_pipeline();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  std::vector<int> lag(g.num_vertices(), 0);
  lag[2] = -5;
  EXPECT_THROW(apply_retiming(n, g, lag), InvalidArgument);
}

}  // namespace
}  // namespace rtv
