// Tests for the sequential test-pattern generator and its interaction with
// retiming (the Theorem 4.6 workflow end to end).

#include <gtest/gtest.h>

#include "core/safety.hpp"
#include "fault/tpg.hpp"
#include "gen/datapath.hpp"
#include "gen/iscas.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/shift.hpp"
#include "retime/graph.hpp"
#include "retime/min_area.hpp"
#include "test_helpers.hpp"

namespace rtv {
namespace {

TEST(Tpg, FullCoverageOnCombinationalCone) {
  const Netlist n = testing::and2_circuit();
  const TestSet set = generate_tests(n);
  EXPECT_DOUBLE_EQ(set.coverage, 1.0);
  EXPECT_GE(set.tests.size(), 2u);  // need at least 11 and one 0-side vector
  // Every detected fault names a real test.
  for (std::size_t i = 0; i < set.faults.size(); ++i) {
    ASSERT_TRUE(set.detected[i]);
    ASSERT_GE(set.detected_by[i], 0);
    EXPECT_TRUE(test_detects(n, set.faults[i],
                             set.tests[static_cast<std::size_t>(
                                 set.detected_by[i])]));
  }
}

TEST(Tpg, ShiftRegisterNeedsFlushLengthTests) {
  const Netlist n = shift_register(3);
  const TestSet set = generate_tests(n);
  EXPECT_DOUBLE_EQ(set.coverage, 1.0) << set.summary();
  for (const BitsSeq& t : set.tests) {
    EXPECT_GE(t.size(), 4u);  // must flush 3 latches + observe
  }
}

TEST(Tpg, PipelinedAdderHighCoverage) {
  const Netlist n = pipelined_adder(2, 2);
  const TestSet set = generate_tests(n);
  EXPECT_GT(set.coverage, 0.6) << set.summary();
  EXPECT_FALSE(set.tests.empty());
}

TEST(Tpg, S27Coverage) {
  const TestSet set = generate_tests(iscas_s27());
  // Definite detection under unknown power-up is hard — only ~27% of s27's
  // faults have tests whose fault-free/faulty responses are definite and
  // complementary from EVERY power-up state (longer candidates do not help;
  // the ceiling is structural). This is the paper's Section-2 theme from
  // the DFT side: without reset, the X-dominated responses veto detection.
  EXPECT_GT(set.coverage, 0.2) << set.summary();
  EXPECT_LT(set.coverage, 0.6) << "coverage ceiling moved: " << set.summary();
}

TEST(Tpg, DeterministicForSeed) {
  const Netlist n = pipelined_adder(2, 2);
  const TestSet a = generate_tests(n);
  const TestSet b = generate_tests(n);
  EXPECT_EQ(a.tests.size(), b.tests.size());
  EXPECT_EQ(a.num_detected, b.num_detected);
}

TEST(Tpg, GradeMatchesGeneration) {
  const Netlist n = pipelined_adder(2, 2);
  const TestSet set = generate_tests(n);
  const TestSet regraded = grade_tests(n, set.faults, set.tests, 0);
  EXPECT_EQ(regraded.num_detected, set.num_detected);
}

TEST(Tpg, Theorem46EndToEnd) {
  // Generate tests on D; retime min-area; grade the same tests on C and on
  // C^k. Coverage on C^k must not drop below coverage on D (Thm 4.6).
  const Netlist d = pipelined_adder(2, 2);
  const TestSet on_d = generate_tests(d);
  ASSERT_GT(on_d.num_detected, 0u);

  const RetimeGraph g = RetimeGraph::from_netlist(d);
  SequencedRetiming seq;
  analyze_lag_retiming(d, g, min_area_retime(g).lag, &seq);
  const unsigned k = static_cast<unsigned>(seq.stats.forward_moves);

  const TestSet on_ck = grade_tests(seq.retimed, on_d.faults, on_d.tests, k);
  for (std::size_t i = 0; i < on_d.faults.size(); ++i) {
    if (!on_d.detected[i]) continue;
    if (seq.retimed.sinks(on_d.faults[i].site).empty()) continue;
    EXPECT_TRUE(on_ck.detected[i])
        << "Thm 4.6 violated for " << describe(d, on_d.faults[i]);
  }
}

TEST(Tpg, Figure1FaultTestSetBreaksOnC) {
  // Micro version of Section 2.2 via the generator: tests generated for D
  // can lose coverage on C without warm-up, never with it.
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  const TestSet on_d = generate_tests(d);
  const TestSet on_c = grade_tests(c, on_d.faults, on_d.tests, 0);
  const TestSet on_c1 = grade_tests(c, on_d.faults, on_d.tests, 1);
  EXPECT_LE(on_c.num_detected, on_d.num_detected);
  for (std::size_t i = 0; i < on_d.faults.size(); ++i) {
    if (on_d.detected[i]) {
      EXPECT_TRUE(on_c1.detected[i])
          << describe(d, on_d.faults[i]) << " lost even with warm-up";
    }
  }
}

TEST(Tpg, SummaryFormat) {
  const TestSet set = generate_tests(testing::and2_circuit());
  EXPECT_NE(set.summary().find("100%"), std::string::npos);
}

}  // namespace
}  // namespace rtv
