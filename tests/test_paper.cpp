// Executable reproduction of the paper's examples: Table 1, Figures 1-4,
// and the Section 2/5 narrative claims. These tests pin the reconstruction
// of the (lost) figures to the normative artifacts in the text.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/cls_equiv.hpp"
#include "core/test_preserve.hpp"
#include "fault/test_eval.hpp"
#include "gen/paper_circuits.hpp"
#include "retime/graph.hpp"
#include "retime/moves.hpp"
#include "sim/binary_sim.hpp"
#include "sim/cls_sim.hpp"
#include "sim/exact_sim.hpp"
#include "stg/stg.hpp"

namespace rtv {
namespace {

const BitsSeq kTable1Input = bits_seq_from_string("0.1.1.1");

TEST(Figure1, ShapesMatchThePaper) {
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  EXPECT_EQ(d.num_latches(), 1u);
  EXPECT_EQ(c.num_latches(), 2u);
  EXPECT_EQ(d.primary_inputs().size(), 1u);
  EXPECT_EQ(d.primary_outputs().size(), 1u);
  EXPECT_EQ(d.num_gates(), c.num_gates());  // retiming only moves latches
}

TEST(Table1, DesignDOutputsFromEveryPowerUpState) {
  const Netlist d = figure1_original();
  for (const std::string start : {"0", "1"}) {
    BinarySimulator sim(d);
    sim.set_state(bits_from_string(start));
    EXPECT_EQ(sequence_to_string(sim.run(kTable1Input)), "0.0.1.0")
        << "power-up state " << start;
  }
}

TEST(Table1, DesignCOutputsFromEveryPowerUpState) {
  const Netlist c = figure1_retimed();
  const struct {
    const char* state;  // (l1, l2) in latch creation order L1, L2
    const char* expected;
  } kRows[] = {
      {"00", "0.0.1.0"},
      {"11", "0.0.1.0"},
      {"01", "0.0.1.0"},
      {"10", "0.1.0.1"},  // the behaviour D cannot exhibit
  };
  for (const auto& row : kRows) {
    BinarySimulator sim(c);
    sim.set_state(bits_from_string(row.state));
    EXPECT_EQ(sequence_to_string(sim.run(kTable1Input)), row.expected)
        << "power-up state " << row.state;
  }
}

TEST(Table1, PowerfulSimulatorSeparatesDandC) {
  // The paper's "sufficiently powerful simulator": D yields 0.0.1.0,
  // C yields 0.X.X.X on the same input sequence.
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  ExactTernarySimulator sd(d), sc(c);
  EXPECT_EQ(sequence_to_string(sd.run(kTable1Input)), "0.0.1.0");
  EXPECT_EQ(sequence_to_string(sc.run(kTable1Input)), "0.X.X.X");
}

TEST(Figure2, InputZeroInitializesDButNotC) {
  const Stg d = Stg::extract(figure1_original());
  const Stg c = Stg::extract(figure1_retimed());
  EXPECT_TRUE(initializes(d, {0}));
  EXPECT_FALSE(initializes(c, {0}));
}

TEST(Figure2, DesignDHasTwoStatesReachingStateZeroOnZero) {
  const Stg d = Stg::extract(figure1_original());
  ASSERT_EQ(d.num_states(), 2u);
  EXPECT_EQ(d.next_state(0, 0), 0u);
  EXPECT_EQ(d.next_state(1, 0), 0u);
}

TEST(Figure2, CHasNoLengthOneInitializingSequenceButALongerOne) {
  const Stg c = Stg::extract(figure1_retimed());
  std::vector<std::uint64_t> seq;
  ASSERT_TRUE(find_initializing_sequence(c, 8, &seq));
  EXPECT_GT(seq.size(), 1u);
  EXPECT_TRUE(initializes(c, seq));
}

TEST(Figure2, DelayedCOneCycleIsEquivalentToD) {
  // Section 3.4: "The delayed design C^1 consists of states 11 and 00 only
  // and thus C^1 is equivalent to the design D."
  const Stg d = Stg::extract(figure1_original());
  const Stg c = Stg::extract(figure1_retimed());
  const std::vector<bool> after1 = states_after_delay(c, 1);
  std::size_t survivors = 0;
  for (const bool b : after1) survivors += b;
  EXPECT_EQ(survivors, 2u);
  EXPECT_TRUE(after1[0b00]);
  EXPECT_TRUE(after1[0b11]);
  const Stg c1 = delayed_design(c, 1);
  EXPECT_TRUE(implies(c1, d));
  EXPECT_TRUE(implies(d, c1));  // full equivalence, both directions
}

TEST(Section2, RetimingViolatesSafeReplacement) {
  const Stg d = Stg::extract(figure1_original());
  const Stg c = Stg::extract(figure1_retimed());
  EXPECT_FALSE(safe_replacement(c, d));
  EXPECT_FALSE(implies(c, d));
  // D is trivially replaceable by itself.
  EXPECT_TRUE(safe_replacement(d, d));
  SafeReplacementViolation witness;
  ASSERT_TRUE(find_safe_replacement_violation(c, d, &witness));
  EXPECT_EQ(witness.c_start, 0b01u);  // packed (l1, l2) = (1, 0)
  EXPECT_FALSE(witness.inputs.empty());
}

TEST(Section2, MinDelayForImplicationIsOne) {
  const Stg d = Stg::extract(figure1_original());
  const Stg c = Stg::extract(figure1_retimed());
  EXPECT_EQ(min_delay_for_implication(c, d, 4), 1);
  EXPECT_EQ(min_delay_for_safe_replacement(c, d, 4), 1);
}

TEST(Figure3, TestZeroOneDetectsFaultInD) {
  const Netlist d = figure1_original();
  const Fault fault = fault_on(d, kFigure3FaultGate, 0, true);
  const BitsSeq test = bits_seq_from_string("0.1");
  // Fault-free D: 0.0 from every power-up state; faulty D: 0.1.
  EXPECT_EQ(sequence_to_string(exact_response(d, test)), "0.0");
  EXPECT_EQ(sequence_to_string(exact_response(inject_fault(d, fault), test)),
            "0.1");
  EXPECT_TRUE(test_detects(d, fault, test));
}

TEST(Figure3, SameTestFailsOnRetimedC) {
  const Netlist c = figure1_retimed();
  const Fault fault = fault_on(c, kFigure3FaultGate, 0, true);
  const BitsSeq test = bits_seq_from_string("0.1");
  // Fault-free C may answer 0.0 or 0.1 depending on power-up; the faulty C
  // answers 0.1 — so the test no longer distinguishes them.
  EXPECT_EQ(sequence_to_string(exact_response(c, test)), "0.X");
  EXPECT_EQ(sequence_to_string(exact_response(inject_fault(c, fault), test)),
            "0.1");
  EXPECT_FALSE(test_detects(c, fault, test));
}

TEST(Figure3, FaultFreeCBehaviourDependsOnPowerUp) {
  const Netlist c = figure1_retimed();
  const BitsSeq test = bits_seq_from_string("0.1");
  BinarySimulator good(c);
  good.set_state(bits_from_string("10"));
  EXPECT_EQ(sequence_to_string(good.run(test)), "0.1");
  BinarySimulator good2(c);
  good2.set_state(bits_from_string("00"));
  EXPECT_EQ(sequence_to_string(good2.run(test)), "0.0");
}

TEST(Figure3, DelayedTestsDetectInC) {
  // Theorem 4.6 in action: prepend one arbitrary cycle; both 0.0.1 and
  // 1.0.1 detect the fault in C, distinguishing on the 3rd clock cycle.
  const Netlist c = figure1_retimed();
  const Fault fault = fault_on(c, kFigure3FaultGate, 0, true);
  for (const char* t : {"0.0.1", "1.0.1"}) {
    const BitsSeq test = bits_seq_from_string(t);
    EXPECT_TRUE(test_detects(c, fault, test)) << t;
    const TritsSeq good = exact_response(c, test);
    const TritsSeq bad = exact_response(inject_fault(c, fault), test);
    // Distinguished exactly at the 3rd cycle.
    EXPECT_EQ(good[2][0], kT0) << t;
    EXPECT_EQ(bad[2][0], kT1) << t;
  }
}

TEST(Figure3, TheoremCheckerAgrees) {
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  const Fault fault = fault_on(d, kFigure3FaultGate, 0, true);
  const auto r = check_test_preservation(d, c, fault,
                                         bits_seq_from_string("0.1"), 1);
  EXPECT_TRUE(r.detects_in_original);
  EXPECT_FALSE(r.detects_in_retimed);
  EXPECT_TRUE(r.detects_in_retimed_delayed);
  EXPECT_TRUE(r.theorem_holds());
}

TEST(Figure4, BothDesignsMapToTheSameRetimingGraph) {
  // The Leiserson–Saxe model cannot tell D from C apart structurally:
  // identical vertex sets and edge connectivity; only the single weight on
  // the retimed junction's edges differs — and Section 3.1's point is that
  // the *graph* cannot express which side of the junction the latch is on.
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  const RetimeGraph gd = RetimeGraph::from_netlist(d);
  const RetimeGraph gc = RetimeGraph::from_netlist(c);
  EXPECT_EQ(gd.num_vertices(), gc.num_vertices());
  EXPECT_EQ(gd.num_edges(), gc.num_edges());

  // Compare edge multisets by (from-name, to-name).
  const auto signature = [](const RetimeGraph& g, const Netlist& n) {
    std::vector<std::string> sig;
    for (const auto& e : g.edges()) {
      const auto vname = [&](std::uint32_t v) {
        return v <= RetimeGraph::kHostSink ? std::string("host")
                                           : n.name(g.vertex_origin(v));
      };
      sig.push_back(vname(e.from) + "->" + vname(e.to));
    }
    std::sort(sig.begin(), sig.end());
    return sig;
  };
  EXPECT_EQ(signature(gd, d), signature(gc, c));
}

TEST(Section5, ClsCannotDistinguishDFromC) {
  // Corollary 5.3 on the paper's own pair: CLS outputs agree on EVERY
  // ternary input sequence (exhaustive pair-reachability proof).
  const auto result =
      check_cls_equivalence(figure1_original(), figure1_retimed());
  EXPECT_TRUE(result.equivalent);
  EXPECT_TRUE(result.exhaustive);
}

TEST(Section5, ClsOutputMatchesOnTable1Input) {
  // On 0.1.1.1 the CLS reports 0.X.X.X for both designs — for D that is
  // strictly more conservative than reality (0.0.1.0), for C it is exact.
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  ClsSimulator sd(d), sc(c);
  EXPECT_EQ(sequence_to_string(sd.run(kTable1Input)), "0.X.X.X");
  EXPECT_EQ(sequence_to_string(sc.run(kTable1Input)), "0.X.X.X");
}

TEST(Section5, AllCellsPreserveAllXAssumptionHolds) {
  EXPECT_TRUE(figure1_original().all_cells_preserve_all_x());
  EXPECT_TRUE(figure1_retimed().all_cells_preserve_all_x());
}

TEST(Figure1, ForwardMoveAcrossJ1TurnsDIntoC) {
  // Applying the atomic move on D's junction J1 must produce a netlist
  // whose STG is equivalent to C's (checked via mutual implication).
  Netlist d = figure1_original();
  const RetimingMove move{d.find_by_name("J1"), MoveDirection::kForward};
  ASSERT_TRUE(can_apply(d, move));
  const MoveClass cls = apply_move(d, move);
  EXPECT_EQ(cls.direction, MoveDirection::kForward);
  EXPECT_FALSE(cls.justifiable);
  EXPECT_FALSE(cls.preserves_safe_replacement());
  EXPECT_EQ(d.num_latches(), 2u);

  const Stg moved = Stg::extract(d);
  const Stg c = Stg::extract(figure1_retimed());
  EXPECT_TRUE(implies(moved, c));
  EXPECT_TRUE(implies(c, moved));
}

TEST(Figure1, BackwardMoveAcrossJ1TurnsCBackIntoD) {
  Netlist c = figure1_retimed();
  const RetimingMove move{c.find_by_name("J1"), MoveDirection::kBackward};
  ASSERT_TRUE(can_apply(c, move));
  const MoveClass cls = apply_move(c, move);
  EXPECT_TRUE(cls.preserves_safe_replacement());  // backward is always safe
  EXPECT_EQ(c.num_latches(), 1u);
  const Stg moved = Stg::extract(c);
  const Stg d = Stg::extract(figure1_original());
  EXPECT_TRUE(implies(moved, d));
  EXPECT_TRUE(implies(d, moved));
}

TEST(Pixley, BothDesignsAreEssentiallyResettable) {
  // SHE sanity: each design's minimized STG has a single terminal SCC
  // (their steady-state behaviours coincide).
  EXPECT_TRUE(essentially_resettable(Stg::extract(figure1_original())));
  EXPECT_TRUE(essentially_resettable(Stg::extract(figure1_retimed())));
}

}  // namespace
}  // namespace rtv
