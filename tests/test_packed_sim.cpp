// Packed ternary engine: word-level trit algebra against the scalar trit
// functions, and the 64-lane simulator against ClsSimulator/BinarySimulator
// lane-for-lane on hundreds of random netlists (including all-X power-up,
// table cells, junctions, ragged batches, and >64-lane tail masking).

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "gen/random_circuits.hpp"
#include "gen/shift.hpp"
#include "sim/binary_sim.hpp"
#include "sim/cls_sim.hpp"
#include "sim/packed_sim.hpp"
#include "sim/packed_vectors.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

constexpr Trit kTrits[] = {Trit::kZero, Trit::kOne, Trit::kX};

Trits random_trits(std::size_t n, Rng& rng) {
  Trits v(n);
  for (Trit& t : v) t = static_cast<Trit>(rng.below(3));
  return v;
}

Bits random_bits(std::size_t n, Rng& rng) {
  Bits v(n);
  for (auto& b : v) b = rng.coin();
  return v;
}

RandomCircuitOptions small_options(Rng& rng, bool tables) {
  RandomCircuitOptions opt;
  opt.num_inputs = 1 + static_cast<unsigned>(rng.below(4));
  opt.num_outputs = 1 + static_cast<unsigned>(rng.below(3));
  opt.num_gates = 4 + static_cast<unsigned>(rng.below(24));
  opt.num_latches = static_cast<unsigned>(rng.below(6));
  opt.table_probability = tables ? 0.4 : 0.0;
  return opt;
}

// ---------------------------------------------------------------------------
// TritWord algebra: every lane of the word ops must equal the scalar trit
// functions, for every input combination.
// ---------------------------------------------------------------------------

TEST(PackedVectors, UnaryAndBinaryOpsMatchScalarTritFunctions) {
  // Lanes 0..8 enumerate all 9 (a, b) trit pairs at once.
  TritWord wa{}, wb{};
  unsigned lane = 0;
  for (const Trit a : kTrits) {
    for (const Trit b : kTrits) {
      wa = set_trit(wa, lane, a);
      wb = set_trit(wb, lane, b);
      ++lane;
    }
  }
  const TritWord wand = and_w(wa, wb);
  const TritWord wor = or_w(wa, wb);
  const TritWord wxor = xor_w(wa, wb);
  const TritWord wnot = not_w(wa);
  lane = 0;
  for (const Trit a : kTrits) {
    for (const Trit b : kTrits) {
      EXPECT_EQ(get_trit(wand, lane), and3(a, b)) << lane;
      EXPECT_EQ(get_trit(wor, lane), or3(a, b)) << lane;
      EXPECT_EQ(get_trit(wxor, lane), xor3(a, b)) << lane;
      EXPECT_EQ(get_trit(wnot, lane), not3(a)) << lane;
      ++lane;
    }
  }
}

TEST(PackedVectors, MuxMatchesScalarTernaryMux) {
  // Lanes 0..26 enumerate all 27 (s, a, b) trit triples at once.
  TritWord ws{}, wa{}, wb{};
  unsigned lane = 0;
  for (const Trit s : kTrits) {
    for (const Trit a : kTrits) {
      for (const Trit b : kTrits) {
        ws = set_trit(ws, lane, s);
        wa = set_trit(wa, lane, a);
        wb = set_trit(wb, lane, b);
        ++lane;
      }
    }
  }
  const TritWord wmux = mux_w(ws, wa, wb);
  lane = 0;
  for (const Trit s : kTrits) {
    for (const Trit a : kTrits) {
      for (const Trit b : kTrits) {
        EXPECT_EQ(get_trit(wmux, lane), mux3(s, a, b)) << lane;
        ++lane;
      }
    }
  }
}

TEST(PackedVectors, OpsPreserveCanonicalEncoding) {
  // ones & unk must stay 0 through every op, for every input pair.
  for (const Trit a : kTrits) {
    for (const Trit b : kTrits) {
      const TritWord wa = trit_word_fill(a);
      const TritWord wb = trit_word_fill(b);
      for (const TritWord r : {not_w(wa), and_w(wa, wb), or_w(wa, wb),
                               xor_w(wa, wb), mux_w(wa, wb, wa)}) {
        EXPECT_EQ(r.ones & r.unk, 0u);
      }
    }
  }
}

TEST(PackedVectors, PackedTritsSetGetAndBroadcast) {
  Rng rng(11);
  PackedTrits p(3, 70);  // two words, partial tail
  EXPECT_EQ(p.words(), 2u);
  std::vector<Trits> want(70);
  for (unsigned lane = 0; lane < 70; ++lane) {
    want[lane] = random_trits(3, rng);
    p.set_lane(lane, want[lane]);
  }
  for (unsigned lane = 0; lane < 70; ++lane) {
    EXPECT_EQ(p.lane(lane), want[lane]) << lane;
  }
  for (unsigned i = 0; i < 3; ++i) p.broadcast(i, Trit::kX);
  for (unsigned lane = 0; lane < 70; ++lane) {
    for (unsigned i = 0; i < 3; ++i) EXPECT_EQ(p.get(i, lane), Trit::kX);
  }
}

// ---------------------------------------------------------------------------
// Simulator cross-checks against the scalar engines.
// ---------------------------------------------------------------------------

TEST(PackedSim, BroadcastStepMatchesScalarClsOnRandomNetlists) {
  Rng rng(401);
  for (unsigned round = 0; round < 40; ++round) {
    const Netlist n = random_netlist(small_options(rng, round % 2 == 1), rng);
    ClsSimulator scalar(n);
    PackedTernarySimulator packed(n, 5);
    for (unsigned cycle = 0; cycle < 6; ++cycle) {
      const Trits state = random_trits(scalar.num_latches(), rng);
      scalar.set_state(state);
      packed.set_state_broadcast(state);
      const Trits in = random_trits(scalar.num_inputs(), rng);
      const Trits want = scalar.step(in);
      packed.step_broadcast(in);
      for (unsigned lane = 0; lane < packed.lanes(); ++lane) {
        for (unsigned o = 0; o < packed.num_outputs(); ++o) {
          EXPECT_EQ(packed.output_trit(o, lane), want[o]);
        }
        EXPECT_EQ(packed.state_lane(lane), scalar.state());
      }
    }
  }
}

TEST(PackedSim, PerLaneStatesAndInputsStayIndependent) {
  // Each lane gets its own random state and input; every lane must agree
  // with an independent scalar transition-function query.
  Rng rng(402);
  for (unsigned round = 0; round < 30; ++round) {
    const Netlist n = random_netlist(small_options(rng, round % 3 == 0), rng);
    ClsSimulator scalar(n);
    const unsigned lanes = 1 + static_cast<unsigned>(rng.below(7));
    PackedTernarySimulator packed(n, lanes);
    std::vector<Trits> states(lanes), inputs(lanes);
    PackedTrits packed_in(packed.num_inputs(), lanes);
    for (unsigned lane = 0; lane < lanes; ++lane) {
      states[lane] = random_trits(packed.num_latches(), rng);
      inputs[lane] = random_trits(packed.num_inputs(), rng);
      for (unsigned l = 0; l < packed.num_latches(); ++l) {
        packed.set_state_trit(l, lane, states[lane][l]);
      }
      packed_in.set_lane(lane, inputs[lane]);
    }
    packed.step_packed(packed_in);
    for (unsigned lane = 0; lane < lanes; ++lane) {
      Trits want_out, want_next;
      scalar.eval(states[lane], inputs[lane], want_out, want_next);
      for (unsigned o = 0; o < packed.num_outputs(); ++o) {
        EXPECT_EQ(packed.output_trit(o, lane), want_out[o]);
      }
      EXPECT_EQ(packed.state_lane(lane), want_next);
    }
  }
}

TEST(PackedSim, BatchRunMatchesScalarClsFromAllX) {
  // The headline equivalence: packed_cls_run lane i == ClsSimulator::run on
  // sequence i, from all-X power-up, over many random netlists (half with
  // table cells) and ragged sequence lengths.
  Rng rng(403);
  for (unsigned round = 0; round < 120; ++round) {
    const Netlist n = random_netlist(small_options(rng, round % 2 == 0), rng);
    const unsigned width = static_cast<unsigned>(n.primary_inputs().size());
    const unsigned lanes = 1 + static_cast<unsigned>(rng.below(9));
    std::vector<TritsSeq> tests(lanes);
    for (TritsSeq& seq : tests) {
      const unsigned len = static_cast<unsigned>(rng.below(8));
      for (unsigned t = 0; t < len; ++t) {
        seq.push_back(random_trits(width, rng));
      }
    }
    const std::vector<TritsSeq> got = packed_cls_run(n, tests);
    ASSERT_EQ(got.size(), tests.size());
    for (unsigned lane = 0; lane < lanes; ++lane) {
      ClsSimulator scalar(n);
      EXPECT_EQ(got[lane], scalar.run(tests[lane])) << "lane " << lane;
    }
  }
}

TEST(PackedSim, BatchRunMatchesScalarBeyondOneWord) {
  // 130 lanes = two full words plus a partial tail word.
  Rng rng(404);
  const Netlist n = random_netlist(small_options(rng, true), rng);
  const unsigned width = static_cast<unsigned>(n.primary_inputs().size());
  std::vector<TritsSeq> tests(130);
  for (TritsSeq& seq : tests) {
    for (unsigned t = 0; t < 5; ++t) seq.push_back(random_trits(width, rng));
  }
  const std::vector<TritsSeq> got = packed_cls_run(n, tests);
  for (unsigned lane = 0; lane < tests.size(); ++lane) {
    ClsSimulator scalar(n);
    EXPECT_EQ(got[lane], scalar.run(tests[lane])) << "lane " << lane;
  }
}

TEST(PackedSim, PackedResponsesAgreesWithMaterializedSequences) {
  Rng rng(405);
  const Netlist n = random_netlist(small_options(rng, true), rng);
  const unsigned width = static_cast<unsigned>(n.primary_inputs().size());
  std::vector<TritsSeq> tests(7);
  for (unsigned lane = 0; lane < tests.size(); ++lane) {
    for (unsigned t = 0; t < lane; ++t) {
      tests[lane].push_back(random_trits(width, rng));
    }
  }
  const PackedResponses flat = packed_cls_responses(n, tests);
  ASSERT_EQ(flat.num_lanes(), tests.size());
  EXPECT_EQ(flat.num_outputs(), n.primary_outputs().size());
  for (unsigned lane = 0; lane < flat.num_lanes(); ++lane) {
    ASSERT_EQ(flat.length(lane), tests[lane].size());
    const TritsSeq seq = flat.sequence(lane);
    ClsSimulator scalar(n);
    EXPECT_EQ(seq, scalar.run(tests[lane]));
    for (std::size_t t = 0; t < seq.size(); ++t) {
      for (unsigned o = 0; o < flat.num_outputs(); ++o) {
        EXPECT_EQ(flat.at(lane, t, o), seq[t][o]);
        EXPECT_EQ(flat.lane_data(lane)[t * flat.num_outputs() + o], seq[t][o]);
      }
    }
  }
}

TEST(PackedSim, BinaryRunBatchMatchesScalarBinarySimulator) {
  Rng rng(406);
  for (unsigned round = 0; round < 40; ++round) {
    const Netlist n = random_netlist(small_options(rng, false), rng);
    const unsigned width = static_cast<unsigned>(n.primary_inputs().size());
    const Bits state = random_bits(n.latches().size(), rng);
    const unsigned lanes = 1 + static_cast<unsigned>(rng.below(6));
    std::vector<BitsSeq> tests(lanes);
    for (BitsSeq& seq : tests) {
      const unsigned len = static_cast<unsigned>(rng.below(7));
      for (unsigned t = 0; t < len; ++t) {
        seq.push_back(random_bits(width, rng));
      }
    }
    const std::vector<BitsSeq> got = BinarySimulator::run_batch(n, state, tests);
    ASSERT_EQ(got.size(), tests.size());
    for (unsigned lane = 0; lane < lanes; ++lane) {
      BinarySimulator scalar(n);
      scalar.set_state(state);
      EXPECT_EQ(got[lane], scalar.run(tests[lane])) << "lane " << lane;
    }
  }
}

TEST(PackedSim, AllXPowerUpFlushesThroughShiftRegister) {
  // Definite inputs push the power-up Xs out of a shift register one stage
  // per cycle: the output stays X for exactly `depth` cycles.
  const unsigned depth = 8;
  const Netlist n = shift_register(depth);
  PackedTernarySimulator sim(n, 64);
  for (unsigned cycle = 0; cycle < 2 * depth; ++cycle) {
    sim.step_broadcast(Trits{to_trit(cycle % 2 == 0)});
    for (unsigned lane = 0; lane < 64; lane += 21) {
      const Trit got = sim.output_trit(0, lane);
      if (cycle < depth) {
        EXPECT_EQ(got, Trit::kX) << "cycle " << cycle;
      } else {
        EXPECT_EQ(got, to_trit((cycle - depth) % 2 == 0)) << "cycle " << cycle;
      }
    }
  }
}

TEST(PackedSim, ClsFaultSimulateMatchesScalarClsDetection) {
  Rng rng(407);
  for (unsigned round = 0; round < 12; ++round) {
    const Netlist n = random_netlist(small_options(rng, round % 4 == 0), rng);
    const unsigned width = static_cast<unsigned>(n.primary_inputs().size());
    std::vector<Fault> faults = enumerate_faults(n);
    if (faults.size() > 12) faults.resize(12);
    std::vector<BitsSeq> tests(5);
    for (BitsSeq& seq : tests) {
      for (unsigned t = 0; t < 4; ++t) seq.push_back(random_bits(width, rng));
    }
    const FaultSimResult got = cls_fault_simulate(n, faults, tests);
    ASSERT_EQ(got.detected.size(), faults.size());
    std::size_t want_detected = 0;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      bool want = false;
      for (const BitsSeq& test : tests) {
        if (cls_test_detects(n, faults[i], test)) {
          want = true;
          break;
        }
      }
      EXPECT_EQ(got.detected[i], want) << "fault " << i;
      want_detected += want;
    }
    EXPECT_EQ(got.num_detected, want_detected);
  }
}

TEST(PackedSim, FaultSimulateRoutesToClsMode) {
  Rng rng(408);
  const Netlist n = testing::toggle_circuit();
  const std::vector<Fault> faults = enumerate_faults(n);
  std::vector<BitsSeq> tests(2);
  for (BitsSeq& seq : tests) {
    for (unsigned t = 0; t < 6; ++t) seq.push_back(random_bits(1, rng));
  }
  FaultSimOptions options;
  options.mode = FaultSimMode::kCls;
  const FaultSimResult via_options = fault_simulate(n, faults, tests, options);
  const FaultSimResult direct = cls_fault_simulate(n, faults, tests);
  EXPECT_EQ(via_options.detected, direct.detected);
  EXPECT_EQ(via_options.num_detected, direct.num_detected);
}

TEST(PackedSim, ClsRunBatchStaticEntryMatchesScalar) {
  Rng rng(409);
  const Netlist n = testing::toggle_circuit();
  std::vector<TritsSeq> tests(3);
  for (TritsSeq& seq : tests) {
    for (unsigned t = 0; t < 5; ++t) seq.push_back(random_trits(1, rng));
  }
  const std::vector<TritsSeq> got = ClsSimulator::run_batch(n, tests);
  for (unsigned lane = 0; lane < tests.size(); ++lane) {
    ClsSimulator scalar(n);
    EXPECT_EQ(got[lane], scalar.run(tests[lane]));
  }
}

}  // namespace
}  // namespace rtv
