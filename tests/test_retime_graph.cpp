#include <gtest/gtest.h>

#include "gen/datapath.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/shift.hpp"
#include "retime/graph.hpp"
#include "retime/wd.hpp"
#include "test_helpers.hpp"

namespace rtv {
namespace {

using testing::inverter_pipeline;
using testing::toggle_circuit;

TEST(RetimeGraph, ShiftRegisterShape) {
  // in -> L -> L -> L -> out: no combinational vertices, one host->host
  // edge of weight 3.
  const Netlist n = shift_register(3);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  EXPECT_EQ(g.num_vertices(), 2u);  // just the two host sides
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge(0).from, RetimeGraph::kHostSource);
  EXPECT_EQ(g.edge(0).to, RetimeGraph::kHostSink);
  EXPECT_EQ(g.edge(0).weight, 3);
  EXPECT_EQ(g.total_weight(), 3);
  g.check_valid();
}

TEST(RetimeGraph, InverterPipeline) {
  const Netlist n = inverter_pipeline();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  EXPECT_EQ(g.num_vertices(), 3u);  // hosts + inverter
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.total_weight(), 2);
  // Unit delay model: inverter has delay 1.
  const std::uint32_t inv = g.vertex_of(n.find_by_name("inv"));
  EXPECT_EQ(g.delay(inv), 1);
  EXPECT_EQ(g.clock_period(), 1);
}

TEST(RetimeGraph, ToggleHasSelfLoopThroughLatch) {
  const Netlist n = toggle_circuit();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  g.check_valid();
  // The xor -> junction -> xor cycle carries the latch.
  bool found_cycle_edge = false;
  for (const auto& e : g.edges()) {
    if (e.from >= 2 && e.to >= 2 && e.weight == 1) found_cycle_edge = true;
  }
  EXPECT_TRUE(found_cycle_edge);
}

TEST(RetimeGraph, DelayModels) {
  Netlist n;
  const NodeId inv = n.add_gate(CellKind::kNot, 0);
  const NodeId buf = n.add_gate(CellKind::kBuf, 0);
  const NodeId j = n.add_junc(2);
  const NodeId c = n.add_const(false);
  EXPECT_EQ(vertex_delay(n, inv, DelayModel::kUnit), 1);
  EXPECT_EQ(vertex_delay(n, buf, DelayModel::kUnit), 0);
  EXPECT_EQ(vertex_delay(n, j, DelayModel::kUnit), 0);
  EXPECT_EQ(vertex_delay(n, c, DelayModel::kUnit), 0);
  EXPECT_EQ(vertex_delay(n, inv, DelayModel::kZero), 0);
}

TEST(RetimeGraph, ClockPeriodOfUnpipelinedAdder) {
  // A ripple adder with 1 stage: period grows with bit width.
  const RetimeGraph g4 =
      RetimeGraph::from_netlist(pipelined_adder(4, 1));
  const RetimeGraph g8 =
      RetimeGraph::from_netlist(pipelined_adder(8, 1));
  EXPECT_GT(g8.clock_period(), g4.clock_period());
}

TEST(RetimeGraph, PipeliningReducesClockPeriod) {
  const RetimeGraph flat = RetimeGraph::from_netlist(pipelined_adder(8, 1));
  const RetimeGraph piped = RetimeGraph::from_netlist(pipelined_adder(8, 4));
  EXPECT_LT(piped.clock_period(), flat.clock_period());
  EXPECT_GT(piped.total_weight(), flat.total_weight());
}

TEST(RetimeGraph, LegalRetimingChecks) {
  const Netlist n = inverter_pipeline();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const std::uint32_t inv = g.vertex_of(n.find_by_name("inv"));
  std::vector<int> lag(g.num_vertices(), 0);
  EXPECT_TRUE(g.legal_retiming(lag));
  lag[inv] = 1;  // move the output latch back across the inverter
  EXPECT_TRUE(g.legal_retiming(lag));
  lag[inv] = 2;  // would need 2 latches after the input wire: only 1 there
  EXPECT_FALSE(g.legal_retiming(lag));
  lag[inv] = -1;
  EXPECT_TRUE(g.legal_retiming(lag));
  lag[inv] = -2;
  EXPECT_FALSE(g.legal_retiming(lag));
}

TEST(RetimeGraph, RetimedWeightsAndTotals) {
  const Netlist n = inverter_pipeline();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const std::uint32_t inv = g.vertex_of(n.find_by_name("inv"));
  std::vector<int> lag(g.num_vertices(), 0);
  lag[inv] = 1;
  // Register count is preserved for a 1-in/1-out vertex.
  EXPECT_EQ(g.retimed_total_weight(lag), g.total_weight());
}

TEST(RetimeGraph, HostLagMustBeZero) {
  const RetimeGraph g = RetimeGraph::from_netlist(inverter_pipeline());
  std::vector<int> lag(g.num_vertices(), 0);
  lag[RetimeGraph::kHostSource] = 1;
  EXPECT_FALSE(g.legal_retiming(lag));
}

TEST(RetimeGraph, DegreeImbalanceSumsToZero) {
  const RetimeGraph g =
      RetimeGraph::from_netlist(pipelined_multiplier(3, 2));
  int sum = 0;
  for (const int a : g.degree_imbalance()) sum += a;
  EXPECT_EQ(sum, 0);
}

TEST(RetimeGraph, CombinationalPathThroughHostIsAcyclic) {
  // and2: PI -> gate -> PO with no latch anywhere; the split host keeps the
  // zero-weight subgraph acyclic.
  const RetimeGraph g = RetimeGraph::from_netlist(testing::and2_circuit());
  EXPECT_EQ(g.clock_period(), 1);
  g.check_valid();
}

TEST(Wd, InverterPipeline) {
  const Netlist n = inverter_pipeline();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const WdMatrices wd = compute_wd(g);
  const std::uint32_t inv = g.vertex_of(n.find_by_name("inv"));
  // host_src -> inv: 1 latch; inv -> host_snk: 1 latch.
  EXPECT_EQ(wd.W(RetimeGraph::kHostSource, inv), 1);
  EXPECT_EQ(wd.W(inv, RetimeGraph::kHostSink), 1);
  EXPECT_EQ(wd.W(RetimeGraph::kHostSource, RetimeGraph::kHostSink), 2);
  EXPECT_EQ(wd.D(RetimeGraph::kHostSource, inv), 1);  // 0 + 1
  // Diagonal: W = 0, D = d(v).
  EXPECT_EQ(wd.W(inv, inv), 0);
  EXPECT_EQ(wd.D(inv, inv), 1);
}

TEST(Wd, UnreachablePairs) {
  const RetimeGraph g = RetimeGraph::from_netlist(inverter_pipeline());
  const WdMatrices wd = compute_wd(g);
  // Nothing flows back from the host sink.
  EXPECT_FALSE(wd.reachable(RetimeGraph::kHostSink, RetimeGraph::kHostSource));
}

TEST(Wd, CandidatePeriodsSortedUnique) {
  const RetimeGraph g = RetimeGraph::from_netlist(pipelined_adder(4, 2));
  const auto candidates = compute_wd(g).candidate_periods();
  EXPECT_FALSE(candidates.empty());
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LT(candidates[i - 1], candidates[i]);
  }
}

TEST(Wd, MinRegisterPathIsChosen) {
  // Two parallel paths u -> v: weight 0 with small delay, weight 1 with
  // large delay. W must pick 0 and D the delay of that path.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId o = n.add_output("o");
  const NodeId j = n.add_junc(2, "split");
  const NodeId g1 = n.add_gate(CellKind::kNot, 0, "fast");
  const NodeId g2 = n.add_gate(CellKind::kNot, 0, "slow");
  const NodeId l = n.add_latch("L");
  const NodeId merge = n.add_gate(CellKind::kAnd, 2, "merge");
  n.connect(a, j);
  n.connect(PortRef(j, 0), PinRef(g1, 0));
  n.connect(PortRef(j, 1), PinRef(g2, 0));
  n.connect(g2, l);
  n.connect(PortRef(g1, 0), PinRef(merge, 0));
  n.connect(PortRef(l, 0), PinRef(merge, 1));
  n.connect(PortRef(merge, 0), PinRef(o, 0));
  n.check_valid(true);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const WdMatrices wd = compute_wd(g);
  const std::uint32_t split = g.vertex_of(n.find_by_name("split"));
  const std::uint32_t m = g.vertex_of(n.find_by_name("merge"));
  EXPECT_EQ(wd.W(split, m), 0);
  EXPECT_EQ(wd.D(split, m), 2);  // split(0) + fast(1) + merge(1)
}

TEST(Wd, CapacityGuard) {
  const RetimeGraph g = RetimeGraph::from_netlist(inverter_pipeline());
  EXPECT_THROW(compute_wd(g, /*vertex_cap=*/1), CapacityError);
}

TEST(RetimeGraph, SummaryFormat) {
  const std::string s =
      RetimeGraph::from_netlist(inverter_pipeline()).summary();
  EXPECT_NE(s.find("vertices"), std::string::npos);
  EXPECT_NE(s.find("registers"), std::string::npos);
}

TEST(RetimeGraph, Figure1GraphPeriod) {
  const RetimeGraph g = RetimeGraph::from_netlist(figure1_original());
  // Longest zero-weight path: x -> JX -> OR1 -> AND1 (-> latch). Gates
  // have unit delay, junctions zero: OR1 + AND1 = 2; output path
  // JX->AND_o = 1... the period is 2.
  EXPECT_EQ(g.clock_period(), 2);
}

}  // namespace
}  // namespace rtv
