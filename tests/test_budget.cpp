// Resource governance (util/budget.hpp): the budget primitive itself, and
// the degradation contract of every governed entry point — a blown budget
// yields an honestly-labeled partial result (never a crash, never a result
// masquerading as a proof).

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "bdd/symbolic.hpp"
#include "core/cls_equiv.hpp"
#include "core/flow.hpp"
#include "core/validator.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "retime/graph.hpp"
#include "stg/stg.hpp"
#include "test_helpers.hpp"
#include "util/budget.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::and2_circuit;
using testing::inverter_pipeline;
using testing::toggle_circuit;

// ---- ResourceBudget primitive ---------------------------------------------

TEST(ResourceBudget, UnlimitedBudgetNeverBlows) {
  ResourceBudget b;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(b.checkpoint("test/site"));
  EXPECT_TRUE(b.ok());
  EXPECT_FALSE(b.exhausted());
  const ResourceUsage u = b.usage();
  EXPECT_EQ(u.steps, 1000u);
  EXPECT_FALSE(u.exhausted);
  EXPECT_FALSE(u.blown.has_value());
}

TEST(ResourceBudget, StepQuotaBlowsAndFailsFast) {
  ResourceLimits limits;
  limits.step_quota = 2;
  ResourceBudget b(limits);
  EXPECT_TRUE(b.checkpoint("test/one"));
  EXPECT_TRUE(b.checkpoint("test/two"));
  EXPECT_FALSE(b.checkpoint("test/three"));
  EXPECT_TRUE(b.exhausted());
  ASSERT_TRUE(b.blown().has_value());
  EXPECT_EQ(*b.blown(), ResourceKind::kSteps);
  // Every later probe fails fast, whatever the site.
  EXPECT_FALSE(b.checkpoint("test/other"));
  const ResourceUsage u = b.usage();
  EXPECT_TRUE(u.exhausted);
  EXPECT_EQ(u.blown, ResourceKind::kSteps);
  EXPECT_NE(u.summary().find("EXHAUSTED"), std::string::npos);
}

TEST(ResourceBudget, CheckpointOrThrowThrowsResourceExhausted) {
  ResourceLimits limits;
  limits.step_quota = 1;
  ResourceBudget b(limits);
  b.checkpoint_or_throw("test/ok");
  try {
    b.checkpoint_or_throw("test/blow");
    FAIL() << "expected ResourceExhausted";
  } catch (const ResourceExhausted& e) {
    EXPECT_EQ(e.kind(), ResourceKind::kSteps);
  }
}

TEST(ResourceBudget, DeadlineBlowsAsWallClock) {
  ResourceLimits limits;
  limits.time_budget_ms = 1;
  ResourceBudget b(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(b.checkpoint("test/late"));
  ASSERT_TRUE(b.blown().has_value());
  EXPECT_EQ(*b.blown(), ResourceKind::kWallClock);
  EXPECT_GE(b.usage().wall_ms, 1.0);
}

TEST(ResourceBudget, CancellationTokenFiresNextCheckpoint) {
  CancellationToken cancel;
  ResourceBudget b(ResourceLimits{}, cancel);
  EXPECT_TRUE(b.checkpoint("test/before"));
  cancel.request_cancel();
  EXPECT_FALSE(b.checkpoint("test/after"));
  EXPECT_EQ(*b.blown(), ResourceKind::kCancelled);
}

TEST(ResourceBudget, CancellationTokenCopiesShareOneFlag) {
  CancellationToken original;
  CancellationToken copy = original;
  copy.request_cancel();
  EXPECT_TRUE(original.cancelled());
}

TEST(ResourceBudget, PairLimitBlowsAsStatePairs) {
  ResourceLimits limits;
  limits.pair_limit = 10;
  ResourceBudget b(limits);
  EXPECT_TRUE(b.note_pairs(5));
  EXPECT_TRUE(b.note_pairs(10));  // at the cap is still within budget
  EXPECT_FALSE(b.note_pairs(11));
  EXPECT_EQ(*b.blown(), ResourceKind::kStatePairs);
  EXPECT_EQ(b.usage().state_pairs, 11u);
}

TEST(ResourceBudget, MarkExhaustedFirstReasonWins) {
  ResourceBudget b;
  b.mark_exhausted(ResourceKind::kBddNodes);
  b.mark_exhausted(ResourceKind::kSteps);
  EXPECT_EQ(*b.blown(), ResourceKind::kBddNodes);
  EXPECT_FALSE(b.checkpoint("test/after-mark"));
}

TEST(ResourceBudget, DefaultNodeLimitIsTheSharedConstant) {
  EXPECT_EQ(ResourceLimits{}.bdd_node_limit, kDefaultBddNodeLimit);
  EXPECT_EQ(kDefaultBddNodeLimit, std::size_t{1} << 22);
}

TEST(ResourceBudget, VerdictAndKindNames) {
  EXPECT_STREQ(to_string(Verdict::kProven), "proven");
  EXPECT_STREQ(to_string(Verdict::kBounded), "bounded");
  EXPECT_STREQ(to_string(Verdict::kExhausted), "exhausted");
  EXPECT_STREQ(to_string(ResourceKind::kWallClock), "wall-clock deadline");
  EXPECT_STREQ(to_string(ResourceKind::kInjected), "fault injection");
}

// ---- Fault-injection harness ----------------------------------------------

TEST(FaultInject, TripsTheArmedCheckpointAndRecordsSites) {
  fault_inject::arm(3);
  ResourceBudget b;
  EXPECT_TRUE(b.checkpoint("inject/a"));
  EXPECT_TRUE(b.checkpoint("inject/b"));
  EXPECT_FALSE(b.checkpoint("inject/c"));  // third checkpoint trips
  EXPECT_EQ(*b.blown(), ResourceKind::kInjected);
  EXPECT_EQ(fault_inject::checkpoints_passed(), 3u);
  const auto sites = fault_inject::sites_seen();
  ASSERT_EQ(sites.size(), 3u);
  EXPECT_EQ(sites[0], "inject/a");
  EXPECT_EQ(sites[2], "inject/c");
  fault_inject::disarm();
  EXPECT_FALSE(fault_inject::enabled());
  // A fresh budget is unaffected once disarmed.
  ResourceBudget c;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(c.checkpoint("inject/after"));
}

// ---- Governed entry points -------------------------------------------------

/// in -> latch t -> out, so definite inputs become definite outputs one
/// cycle later (CLS-distinguishable designs, multiple reachable pairs).
Netlist follower_circuit(bool invert) {
  Netlist n;
  const NodeId in = n.add_input("in");
  const NodeId out = n.add_output("out");
  const NodeId t = n.add_latch("t");
  n.connect(PortRef(in, 0), PinRef(t, 0));
  if (invert) {
    const NodeId inv = n.add_gate(CellKind::kNot, 0, "inv");
    n.connect(t, inv);
    n.connect(PortRef(inv, 0), PinRef(out, 0));
  } else {
    n.connect(PortRef(t, 0), PinRef(out, 0));
  }
  n.junctionize();
  n.check_valid(true);
  return n;
}

TEST(BudgetedCls, ProvenWithoutLimitsKeepsInvariant) {
  const Netlist n = toggle_circuit();
  ResourceBudget budget;  // unlimited, but records usage
  const ClsEquivalenceResult r = check_cls_equivalence(n, n, {}, &budget);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_EQ(r.verdict, Verdict::kProven);
  EXPECT_FALSE(r.usage.exhausted);
  EXPECT_GT(r.usage.steps, 0u);
}

TEST(BudgetedCls, StepQuotaYieldsExhaustedPartialReport) {
  // The pipeline's pair BFS needs several pair dequeues (definite values
  // flow in from the input), so a one-step quota blows mid-search.
  const Netlist n = inverter_pipeline();
  ResourceLimits limits;
  limits.step_quota = 1;
  ResourceBudget budget(limits);
  const ClsEquivalenceResult r = check_cls_equivalence(n, n, {}, &budget);
  EXPECT_EQ(r.verdict, Verdict::kExhausted);
  EXPECT_FALSE(r.exhaustive);
  // "No difference observed" — an exhausted report may claim equivalence
  // seen so far but never inequivalence, and never a proof.
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.usage.exhausted);
  EXPECT_NE(r.summary().find("budget exhausted"), std::string::npos);
}

TEST(BudgetedCls, MaxPairsFallsBackToBoundedMidSearch) {
  // inverter_pipeline has > 1 reachable CLS state pair (definite values
  // flow in from the input), so max_pairs = 1 trips mid-BFS.
  const Netlist n = inverter_pipeline();
  ClsEquivOptions opt;
  opt.max_pairs = 1;
  opt.random_sequences = 16;
  opt.random_length = 8;
  const ClsEquivalenceResult r = check_cls_equivalence(n, n, opt);
  EXPECT_TRUE(r.equivalent);
  EXPECT_FALSE(r.exhaustive);  // bounded evidence, not a theorem
  EXPECT_EQ(r.verdict, Verdict::kBounded);
  EXPECT_NE(r.summary().find("bounded"), std::string::npos);
}

TEST(BudgetedCls, BoundedFallbackStillFindsCounterexamples) {
  // follower vs inverted follower differ definitively one cycle after any
  // definite input; max_pairs = 1 forces the bounded path to find it.
  const Netlist a = follower_circuit(false);
  const Netlist b = follower_circuit(true);
  ClsEquivOptions opt;
  opt.max_pairs = 1;
  opt.random_sequences = 32;
  opt.random_length = 8;
  const ClsEquivalenceResult r = check_cls_equivalence(a, b, opt);
  EXPECT_FALSE(r.equivalent);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_FALSE(cls_outputs_match(a, b, *r.counterexample));
  // A counterexample is definitive even in bounded mode, but the verdict
  // stays honest about how it was found.
  EXPECT_EQ(r.verdict, Verdict::kBounded);
  EXPECT_FALSE(r.exhaustive);
}

TEST(BudgetedCls, BudgetPairCapIsExhaustionNotFallback) {
  // The *budget's* pair cap is a resource limit: blowing it marks the whole
  // budget exhausted, so falling back to bounded mode (which would share
  // the dead budget) must not happen.
  const Netlist n = inverter_pipeline();
  ResourceLimits limits;
  limits.pair_limit = 1;
  ResourceBudget budget(limits);
  const ClsEquivalenceResult r = check_cls_equivalence(n, n, {}, &budget);
  EXPECT_EQ(r.verdict, Verdict::kExhausted);
  EXPECT_FALSE(r.exhaustive);
  EXPECT_TRUE(r.equivalent);
  EXPECT_EQ(*budget.blown(), ResourceKind::kStatePairs);
}

TEST(BudgetedStg, ExtractionThrowsResourceExhausted) {
  const Netlist n = toggle_circuit();
  ResourceLimits limits;
  limits.step_quota = 1;
  ResourceBudget budget(limits);
  EXPECT_THROW(Stg::extract(n, kDefaultStgEntryCap, &budget),
               ResourceExhausted);
}

TEST(BudgetedStg, UngovernedExtractionStillWorks) {
  const Stg stg = Stg::extract(toggle_circuit());
  EXPECT_EQ(stg.num_states(), 2u);
  EXPECT_EQ(stg.num_inputs(), 2u);
}

TEST(BudgetedBdd, SymbolicMachineThrowsWhenBudgetBlown) {
  ResourceLimits limits;
  limits.step_quota = 1;
  ResourceBudget budget(limits);
  budget.checkpoint("test/consume");  // quota used up before construction
  EXPECT_THROW(
      {
        SymbolicMachine machine(inverter_pipeline(), kDefaultBddNodeLimit,
                                &budget);
        machine.reachable(machine.state_cube(Bits{0, 0}));
      },
      ResourceExhausted);
}

TEST(BudgetedValidate, ExhaustedBudgetSkipsStgAndLabelsVerdict) {
  const Netlist n = toggle_circuit();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  ValidationOptions opt;
  opt.budget.step_quota = 1;
  const RetimingValidation v =
      validate_retiming(n, g, std::vector<int>(g.num_vertices(), 0), opt);
  EXPECT_EQ(v.verdict, Verdict::kExhausted);
  EXPECT_TRUE(v.usage.exhausted);
  EXPECT_FALSE(v.stg_checked);
  EXPECT_TRUE(v.stg_budget_exhausted);
  EXPECT_NE(v.summary().find("exhausted"), std::string::npos);
}

TEST(BudgetedValidate, UnlimitedBudgetStaysProven) {
  const Netlist n = toggle_circuit();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const RetimingValidation v =
      validate_retiming(n, g, std::vector<int>(g.num_vertices(), 0), {});
  EXPECT_TRUE(v.theorems_hold);
  EXPECT_TRUE(v.cls.equivalent);
  EXPECT_EQ(v.verdict, Verdict::kProven);
  EXPECT_FALSE(v.usage.exhausted);
}

TEST(BudgetedValidate, CancellationDegradesTheValidation) {
  const Netlist n = toggle_circuit();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  ValidationOptions opt;
  opt.cancel.request_cancel();  // cancelled before it even starts
  const RetimingValidation v =
      validate_retiming(n, g, std::vector<int>(g.num_vertices(), 0), opt);
  EXPECT_EQ(v.verdict, Verdict::kExhausted);
  EXPECT_EQ(v.usage.blown, ResourceKind::kCancelled);
}

TEST(BudgetedFlow, ExhaustedGateIsNeverAccepted) {
  FlowOptions opt;
  opt.budget.step_quota = 1;
  const FlowReport r = run_synthesis_flow(toggle_circuit(), opt);
  EXPECT_EQ(r.verdict, Verdict::kExhausted);
  EXPECT_FALSE(r.accepted());
  EXPECT_NE(r.summary().find("UNDECIDED"), std::string::npos);
  EXPECT_EQ(r.summary().find("ACCEPTED"), std::string::npos);
}

TEST(BudgetedFlow, UnlimitedFlowStillAccepts) {
  const FlowReport r = run_synthesis_flow(toggle_circuit(), {});
  EXPECT_TRUE(r.accepted());
  EXPECT_NE(r.verdict, Verdict::kExhausted);
  EXPECT_NE(r.summary().find("ACCEPTED"), std::string::npos);
}

TEST(BudgetedFaultSim, StepQuotaLeavesFaultsSkipped) {
  const Netlist n = toggle_circuit();
  const std::vector<Fault> faults = collapse_faults(n);
  ASSERT_FALSE(faults.empty());
  std::vector<BitsSeq> tests;
  Rng rng(7);
  for (int s = 0; s < 8; ++s) {
    BitsSeq seq;
    for (int t = 0; t < 4; ++t) seq.push_back(Bits{rng.coin()});
    tests.push_back(seq);
  }
  FaultSimOptions opt;
  opt.mode = FaultSimMode::kExact;
  opt.threads = 1;
  opt.budget.step_quota = 1;
  const FaultSimResult r = fault_simulate(n, faults, tests, opt);
  EXPECT_FALSE(r.complete);
  EXPECT_GT(r.faults_skipped, 0u);
  EXPECT_TRUE(r.usage.exhausted);
  // Undecided faults count as undetected, so coverage is a lower bound.
  EXPECT_LE(r.num_detected + r.faults_skipped, faults.size());

  // The same run without a budget completes.
  FaultSimOptions unlimited;
  unlimited.mode = FaultSimMode::kExact;
  unlimited.threads = 1;
  const FaultSimResult full = fault_simulate(n, faults, tests, unlimited);
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.faults_skipped, 0u);
  EXPECT_GE(full.num_detected, r.num_detected);
}

TEST(BudgetedFaultSim, CancellationStopsTheEngine) {
  const Netlist n = toggle_circuit();
  const std::vector<Fault> faults = collapse_faults(n);
  std::vector<BitsSeq> tests{BitsSeq{Bits{1}, Bits{0}, Bits{1}}};
  FaultSimOptions opt;
  opt.mode = FaultSimMode::kCls;
  opt.threads = 2;
  opt.cancel.request_cancel();
  const FaultSimResult r = fault_simulate(n, faults, tests, opt);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.faults_skipped, faults.size());
  EXPECT_EQ(r.usage.blown, ResourceKind::kCancelled);
}

TEST(BudgetedCls, CombinationalDesignsUnaffectedByGenerousBudget) {
  // Sanity: a governed run with room to spare matches the ungoverned one.
  const Netlist a = and2_circuit();
  ResourceLimits limits;
  limits.step_quota = 1u << 20;
  ResourceBudget budget(limits);
  const ClsEquivalenceResult governed = check_cls_equivalence(a, a, {}, &budget);
  const ClsEquivalenceResult plain = check_cls_equivalence(a, a);
  EXPECT_EQ(governed.equivalent, plain.equivalent);
  EXPECT_EQ(governed.exhaustive, plain.exhaustive);
  EXPECT_EQ(governed.verdict, plain.verdict);
}

}  // namespace
}  // namespace rtv
