// Tests for the synthesis-flow driver (core/flow) and the trim_dangling
// pass supporting it.

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "gen/datapath.hpp"
#include "gen/iscas.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "sim/binary_sim.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

TEST(TrimDangling, RemovesFullyDanglingNode) {
  Netlist n = testing::and2_circuit();
  const NodeId g = n.add_gate(CellKind::kOr, 2, "dangle");
  n.connect(n.primary_inputs()[0], g, 0);
  n.connect(n.primary_inputs()[1], g, 1);
  n.junctionize();
  EXPECT_GE(n.trim_dangling(), 1u);
  EXPECT_FALSE(n.find_by_name("dangle").valid());
  n.compacted().check_valid(true);
}

TEST(TrimDangling, ShrinksJunction) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId o1 = n.add_output("o1");
  const NodeId o2 = n.add_output("o2");
  const NodeId j = n.add_junc(3, "j");
  n.connect(a, j);
  n.connect(PortRef(j, 0), PinRef(o1, 0));
  n.connect(PortRef(j, 2), PinRef(o2, 0));
  // Branch 1 dangles: the junction shrinks to width 2.
  EXPECT_EQ(n.trim_dangling(), 1u);
  const Netlist c = n.compacted();
  c.check_valid(true);
  const NodeId j2 = c.find_by_name("j");
  ASSERT_TRUE(j2.valid());
  EXPECT_EQ(c.num_ports(j2), 2u);
}

TEST(TrimDangling, DissolvesWidthOneJunction) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId o = n.add_output("o");
  const NodeId j = n.add_junc(2, "j");
  n.connect(a, j);
  n.connect(PortRef(j, 1), PinRef(o, 0));
  EXPECT_EQ(n.trim_dangling(), 1u);
  EXPECT_EQ(n.driver(PinRef(o, 0)), PortRef(a, 0));
}

TEST(TrimDangling, CascadesThroughChains) {
  // dead gate <- dead latch: both disappear once the head port dangles.
  Netlist n = testing::and2_circuit();
  const NodeId g = n.add_gate(CellKind::kNot, 0, "g");
  const NodeId l = n.add_latch("l");
  n.connect(n.primary_inputs()[0], g, 0);
  n.connect(g, l);
  n.junctionize();
  EXPECT_GE(n.trim_dangling(), 2u);
  EXPECT_EQ(n.num_latches(), 0u);
  n.compacted().check_valid(true);
}

TEST(TrimDangling, KeepsFullyConnectedDesignsIntact) {
  Netlist n = figure1_original();
  EXPECT_EQ(n.trim_dangling(), 0u);
}

TEST(Flow, MinAreaOnPipelineAccepted) {
  const Netlist n = pipelined_adder(3, 2);
  FlowOptions opt;
  opt.objective = FlowOptions::Objective::kMinArea;
  opt.verify.explicit_opts.max_branching = 1;  // bounded CLS check
  const FlowReport r = run_synthesis_flow(n, opt);
  EXPECT_TRUE(r.accepted()) << r.summary();
  EXPECT_LE(r.registers_after, r.registers_before);
  r.optimized.check_valid(true);
}

TEST(Flow, MinPeriodOnPipelineAccepted) {
  const Netlist n = pipelined_adder(3, 3);
  FlowOptions opt;
  opt.objective = FlowOptions::Objective::kMinPeriod;
  opt.verify.explicit_opts.max_branching = 1;  // bounded CLS check: pipelines explode the BFS
  const FlowReport r = run_synthesis_flow(n, opt);
  EXPECT_TRUE(r.accepted()) << r.summary();
  EXPECT_LE(r.period_after, r.period_before);
}

TEST(Flow, MinAreaAtMinPeriodMeetsBothGoals) {
  const Netlist n = pipelined_adder(3, 2);
  FlowOptions fastest;
  fastest.objective = FlowOptions::Objective::kMinPeriod;
  fastest.verify.explicit_opts.max_branching = 1;  // bounded CLS check
  const FlowReport fast = run_synthesis_flow(n, fastest);

  FlowOptions both;
  both.objective = FlowOptions::Objective::kMinAreaAtMinPeriod;
  both.verify.explicit_opts.max_branching = 1;
  const FlowReport r = run_synthesis_flow(n, both);
  EXPECT_TRUE(r.accepted()) << r.summary();
  EXPECT_EQ(r.period_after, fast.period_after);
  EXPECT_LE(r.registers_after, fast.registers_after);
}

TEST(Flow, CleanupOnlyFlow) {
  Netlist n = testing::toggle_circuit();
  // Inject a constant-fed cone that cleanup should erase.
  const NodeId c = n.add_const(false, "zero");
  const NodeId g = n.add_gate(CellKind::kAnd, 2, "gz");
  const NodeId po = n.add_output("dead_po");
  n.connect(c, g, 0);
  n.connect(n.primary_inputs()[0], g, 1);
  n.connect(PortRef(g, 0), PinRef(po, 0));
  n.junctionize();
  FlowOptions opt;
  opt.objective = FlowOptions::Objective::kNone;
  const FlowReport r = run_synthesis_flow(n, opt);
  EXPECT_TRUE(r.accepted()) << r.summary();
  EXPECT_LT(r.gates_after, r.gates_before + 1);  // AND gate gone
  // dead_po still exists and is constant 0.
  BinarySimulator sim(r.optimized);
  sim.set_state(Bits(r.optimized.num_latches(), 0));
  const Bits out = sim.step(Bits(r.optimized.primary_inputs().size(), 1));
  EXPECT_EQ(out[1], 0);
}

TEST(Flow, S27WithRedundancyRemoval) {
  FlowOptions opt;
  opt.objective = FlowOptions::Objective::kMinArea;
  opt.redundancy_removal = true;
  const FlowReport r = run_synthesis_flow(iscas_s27(), opt);
  EXPECT_TRUE(r.accepted()) << r.summary();
  r.optimized.check_valid(true);
}

TEST(Flow, RandomCircuitsAlwaysAccepted) {
  Rng rng(515253);
  RandomCircuitOptions gen;
  gen.num_inputs = 3;
  gen.num_outputs = 3;
  gen.num_gates = 20;
  gen.num_latches = 4;
  gen.latch_after_gate_probability = 0.3;
  for (int trial = 0; trial < 6; ++trial) {
    const Netlist n = random_netlist(gen, rng);
    for (const auto objective :
         {FlowOptions::Objective::kMinArea, FlowOptions::Objective::kMinPeriod,
          FlowOptions::Objective::kMinAreaAtMinPeriod}) {
      FlowOptions opt;
      opt.objective = objective;
      const FlowReport r = run_synthesis_flow(n, opt);
      EXPECT_TRUE(r.accepted())
          << "trial " << trial << "\n" << r.summary();
      r.optimized.check_valid(true);
    }
  }
}

TEST(Flow, SummaryMentionsVerdict) {
  const FlowReport r = run_synthesis_flow(figure1_original());
  EXPECT_NE(r.summary().find("ACCEPTED"), std::string::npos);
}

}  // namespace
}  // namespace rtv
