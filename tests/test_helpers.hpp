#pragma once
// Shared builders and assertion helpers for the test suite.

#include <string>

#include "netlist/netlist.hpp"
#include "sim/vectors.hpp"

namespace rtv::testing {

/// A 1-latch toggle: latch t, next = t XOR in, out = t.
/// (Junction-normal after junctionize; used as a tiny sequential fixture.)
inline Netlist toggle_circuit() {
  Netlist n;
  const NodeId in = n.add_input("in");
  const NodeId out = n.add_output("out");
  const NodeId t = n.add_latch("t");
  const NodeId x = n.add_gate(CellKind::kXor, 2, "x");
  n.connect(PortRef(t, 0), PinRef(x, 0));
  n.connect(PortRef(in, 0), PinRef(x, 1));
  n.connect(PortRef(x, 0), PinRef(t, 0));
  n.connect(PortRef(t, 0), PinRef(out, 0));
  n.junctionize();
  n.check_valid(true);
  return n;
}

/// Pure combinational: out = a AND b.
inline Netlist and2_circuit() {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId o = n.add_output("o");
  const NodeId g = n.add_gate(CellKind::kAnd, 2, "g");
  n.connect(a, g, 0);
  n.connect(b, g, 1);
  n.connect(PortRef(g, 0), PinRef(o, 0));
  n.check_valid(true);
  return n;
}

/// Two-latch pipeline: in -> L0 -> NOT -> L1 -> out. Retimable both ways.
inline Netlist inverter_pipeline() {
  Netlist n;
  const NodeId in = n.add_input("in");
  const NodeId out = n.add_output("out");
  const NodeId l0 = n.add_latch("L0");
  const NodeId l1 = n.add_latch("L1");
  const NodeId inv = n.add_gate(CellKind::kNot, 0, "inv");
  n.connect(in, l0);
  n.connect(l0, inv);
  n.connect(inv, l1);
  n.connect(PortRef(l1, 0), PinRef(out, 0));
  n.check_valid(true);
  return n;
}

}  // namespace rtv::testing
