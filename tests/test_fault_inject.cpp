// Fault-injection sweep (util/fault_inject.hpp): arm the harness to trip
// budget exhaustion at the N-th checkpoint, for every N reachable in a full
// validate + flow + faultsim workload, and assert a well-formed, honestly
// labeled partial report at every single trip point. Run under ASan/UBSan
// in CI, this is the executable proof that no exhaustion path crashes,
// leaks, or masquerades as a proof.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "core/flow.hpp"
#include "core/validator.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "retime/graph.hpp"
#include "retime/min_area.hpp"
#include "test_helpers.hpp"
#include "util/budget.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::inverter_pipeline;
using testing::toggle_circuit;

/// Every governed entry point in one deterministic workload. Small CLS
/// options keep a single run fast enough to repeat once per checkpoint.
struct WorkloadReport {
  RetimingValidation validation;
  FlowReport flow;
  FaultSimResult faultsim;
  std::size_t faultsim_faults = 0;
  /// BDD reclamation under budget: did a trip mid-collection or mid-sift
  /// leave the table sound and protected roots semantically intact?
  bool bdd_exhausted = false;
  bool bdd_invariants_ok = false;
  bool bdd_kept_ok = false;
  BddManager::EngineStats bdd_stats;
};

WorkloadReport run_workload() {
  WorkloadReport w;

  // validate: a real min-area retiming of the two-latch pipeline, with the
  // exact STG phase in range.
  {
    const Netlist n = inverter_pipeline();
    const RetimeGraph g = RetimeGraph::from_netlist(n);
    ValidationOptions opt;
    opt.verify.explicit_opts.random_sequences = 4;
    opt.verify.explicit_opts.random_length = 4;
    w.validation = validate_retiming(n, g, min_area_retime(g).lag, opt);
  }

  // flow: cleanup + retiming + redundancy removal + the CLS gate.
  {
    FlowOptions opt;
    opt.redundancy_removal = true;
    opt.verify.explicit_opts.random_sequences = 4;
    opt.verify.explicit_opts.random_length = 4;
    w.flow = run_synthesis_flow(toggle_circuit(), opt);
  }

  // faultsim: exact mode, single worker so the checkpoint schedule is
  // deterministic and the sweep hits the same trip points every run.
  {
    const Netlist n = toggle_circuit();
    const std::vector<Fault> faults = collapse_faults(n);
    w.faultsim_faults = faults.size();
    std::vector<BitsSeq> tests;
    Rng rng(11);
    for (int s = 0; s < 4; ++s) {
      BitsSeq seq;
      for (int t = 0; t < 4; ++t) {
        seq.push_back(Bits{static_cast<std::uint8_t>(rng.coin())});
      }
      tests.push_back(seq);
    }
    FaultSimOptions opt;
    opt.mode = FaultSimMode::kExact;
    opt.threads = 1;
    w.faultsim = fault_simulate(n, faults, tests, opt);
  }

  // bdd: reclamation + sifting under budget. Cube churn with a small arena
  // crosses the automatic GC and reorder triggers; the explicit calls at
  // the end pin the "bdd/gc" and "bdd/reorder" sites into the census even
  // when a trip cuts the churn short. Whatever happens, the unique table
  // must stay structurally sound and the protected round-0 function must
  // keep its denotation — a budget trip at a collection or sift boundary
  // is allowed to abandon work, never to corrupt survivors.
  {
    constexpr unsigned kVars = 14;
    ResourceBudget budget;  // unlimited, but still drives fault injection
    BddManager m(kVars, /*node_limit=*/std::size_t{1} << 14);
    m.set_budget(&budget);
    m.set_gc_enabled(true);
    ReorderOptions ro;
    ro.mode = ReorderMode::kOnPressure;
    ro.trigger_nodes = 1024;
    m.set_reorder_options(ro);
    Rng rng(23);
    BddHandle kept;
    std::vector<std::vector<bool>> samples;
    std::vector<bool> expected;
    try {
      for (int round = 0; round < 10; ++round) {
        BddHandle f = m.protect(BddManager::kFalse);
        for (int c = 0; c < 12; ++c) {
          BddHandle cube = m.protect(BddManager::kTrue);
          for (int j = 0; j < 6; ++j) {
            const unsigned v = static_cast<unsigned>(rng.index(kVars));
            const BddManager::Ref lit = rng.coin() ? m.var(v) : m.nvar(v);
            cube.reset(&m, m.bdd_and(lit, cube.get()));
          }
          f.reset(&m, m.bdd_or(f.get(), cube.get()));
        }
        if (round == 0) {
          kept = f;
          for (int s = 0; s < 32; ++s) {
            std::vector<bool> assignment(kVars);
            for (unsigned v = 0; v < kVars; ++v) assignment[v] = rng.coin();
            expected.push_back(m.evaluate(kept.get(), assignment));
            samples.push_back(std::move(assignment));
          }
        }
      }
      m.collect_garbage();
      m.reorder();
    } catch (const ResourceExhausted&) {
      w.bdd_exhausted = true;
    }
    w.bdd_stats = m.stats();
    w.bdd_invariants_ok = true;
    try {
      m.check_invariants();
    } catch (const InternalError&) {
      w.bdd_invariants_ok = false;
    }
    w.bdd_kept_ok = true;
    for (std::size_t s = 0; s < samples.size(); ++s) {
      if (m.evaluate(kept.get(), samples[s]) != expected[s]) {
        w.bdd_kept_ok = false;
      }
    }
  }
  return w;
}

/// The well-formedness contract every (possibly degraded) report must obey.
void expect_well_formed(const WorkloadReport& w, std::uint64_t trip_point) {
  SCOPED_TRACE("injection at checkpoint " + std::to_string(trip_point));

  // -- validation ------------------------------------------------------
  const RetimingValidation& v = w.validation;
  // Exhaustion anywhere must label the whole validation; a degraded run
  // must never report the top verdict as proven.
  if (v.usage.exhausted) {
    EXPECT_EQ(v.verdict, Verdict::kExhausted);
  } else {
    EXPECT_NE(v.verdict, Verdict::kExhausted);
  }
  // The CLS sub-result's own ladder: exhaustive iff proven; an exhausted
  // partial report never claims inequivalence or carries a counterexample.
  EXPECT_EQ(v.cls.exhaustive, v.cls.verdict == Verdict::kProven);
  if (v.cls.verdict == Verdict::kExhausted) {
    EXPECT_TRUE(v.cls.equivalent);
    EXPECT_FALSE(v.cls.counterexample.has_value());
  }
  // These designs are genuine retimings: a counterexample would be a bug
  // (or corruption on an exhaustion path), not a legitimate finding.
  EXPECT_TRUE(v.cls.equivalent);
  EXPECT_TRUE(v.theorems_hold);
  // The STG phase commits atomically: checked and budget-exhausted are
  // mutually exclusive, and exact flags are only set when checked.
  EXPECT_FALSE(v.stg_checked && v.stg_budget_exhausted);
  if (v.stg_budget_exhausted) {
    EXPECT_EQ(v.verdict, Verdict::kExhausted);
  }
  // (When stg_checked, theorems_hold above already cross-checks the exact
  // relations against the static bounds — C ⊑ D itself need not hold for a
  // genuine retiming, only C^n ⊑ D within the delay bound.)
  // The summary must render whatever the degradation state.
  const std::string vs = v.summary();
  EXPECT_NE(vs.find("verdict:"), std::string::npos);
  if (v.verdict == Verdict::kExhausted) {
    EXPECT_NE(vs.find("exhausted"), std::string::npos);
    EXPECT_EQ(vs.find("verdict:  proven"), std::string::npos);
  }

  // -- flow ------------------------------------------------------------
  const FlowReport& f = w.flow;
  if (f.usage.exhausted) {
    EXPECT_EQ(f.verdict, Verdict::kExhausted);
    EXPECT_FALSE(f.accepted());
  }
  EXPECT_EQ(f.cls.exhaustive, f.cls.verdict == Verdict::kProven);
  const std::string fs = f.summary();
  if (f.verdict == Verdict::kExhausted) {
    EXPECT_NE(fs.find("UNDECIDED"), std::string::npos);
    EXPECT_EQ(fs.find("ACCEPTED"), std::string::npos);
  } else {
    EXPECT_TRUE(f.accepted());
    EXPECT_NE(fs.find("ACCEPTED"), std::string::npos);
  }
  // The flow's output design must be structurally sound even when the
  // pipeline was cut short anywhere.
  EXPECT_NO_THROW(f.optimized.check_valid(true));

  // -- faultsim --------------------------------------------------------
  const FaultSimResult& r = w.faultsim;
  EXPECT_EQ(r.complete, r.faults_skipped == 0);
  EXPECT_EQ(r.detected.size(), w.faultsim_faults);
  EXPECT_EQ(r.detecting_test.size(), w.faultsim_faults);
  EXPECT_LE(r.num_detected + r.faults_skipped, w.faultsim_faults);
  if (!r.complete) {
    EXPECT_TRUE(r.usage.exhausted);
  }
  // Every published detection must carry a witness test index.
  std::size_t detected = 0;
  for (std::size_t i = 0; i < r.detected.size(); ++i) {
    if (r.detected[i]) {
      ++detected;
      EXPECT_GE(r.detecting_test[i], 0);
    } else {
      EXPECT_EQ(r.detecting_test[i], -1);
    }
  }
  EXPECT_EQ(detected, r.num_detected);

  // -- bdd -------------------------------------------------------------
  // A trip at a "bdd/gc" or "bdd/reorder" (or "bdd/alloc") checkpoint may
  // abandon the collection or sift, but never at the price of table
  // integrity or a protected root's semantics.
  EXPECT_TRUE(w.bdd_invariants_ok)
      << "budget trip corrupted the BDD unique table";
  EXPECT_TRUE(w.bdd_kept_ok)
      << "budget trip changed a protected function's denotation";
}

TEST(FaultInjectSweep, CensusCoversTheRequiredInjectionSurface) {
  // Arm far beyond reach so nothing trips; the harness then just counts.
  fault_inject::arm(std::uint64_t{1} << 62);
  const WorkloadReport w = run_workload();
  const std::uint64_t total = fault_inject::checkpoints_passed();
  const std::vector<std::string> sites = fault_inject::sites_seen();
  fault_inject::disarm();

  // Untripped, the workload must succeed outright — and the BDD phase must
  // have actually collected and sifted, or the sweep would never exercise
  // the maintenance checkpoints it exists to trip.
  EXPECT_EQ(w.validation.verdict, Verdict::kProven);
  EXPECT_TRUE(w.flow.accepted());
  EXPECT_TRUE(w.faultsim.complete);
  EXPECT_FALSE(w.bdd_exhausted);
  EXPECT_GE(w.bdd_stats.gc_runs, 1u);
  EXPECT_GE(w.bdd_stats.reorder_runs, 1u);

  // The acceptance bar: the full run exposes at least 30 injection points,
  // across several distinct subsystems.
  EXPECT_GE(total, 30u);
  EXPECT_GE(sites.size(), 8u);
  std::size_t cls_sites = 0, stg_sites = 0, flow_sites = 0, fault_sites = 0;
  bool saw_bdd_gc = false, saw_bdd_reorder = false;
  for (const std::string& s : sites) {
    cls_sites += s.rfind("cls/", 0) == 0;
    stg_sites += s.rfind("stg/", 0) == 0;
    flow_sites += s.rfind("flow/", 0) == 0;
    fault_sites += s.rfind("fault/", 0) == 0;
    saw_bdd_gc |= s == "bdd/gc";
    saw_bdd_reorder |= s == "bdd/reorder";
  }
  EXPECT_GT(cls_sites, 0u) << "no CLS checkpoints seen";
  EXPECT_GT(stg_sites, 0u) << "no STG checkpoints seen";
  EXPECT_GT(flow_sites, 0u) << "no flow checkpoints seen";
  EXPECT_GT(fault_sites, 0u) << "no fault-engine checkpoints seen";
  EXPECT_TRUE(saw_bdd_gc) << "no BDD collection checkpoint seen";
  EXPECT_TRUE(saw_bdd_reorder) << "no BDD sifting checkpoint seen";
}

TEST(FaultInjectSweep, EveryInjectionPointDegradesGracefully) {
  // Census pass: how many checkpoints does one full workload hit?
  fault_inject::arm(std::uint64_t{1} << 62);
  run_workload();
  const std::uint64_t total = fault_inject::checkpoints_passed();
  ASSERT_GE(total, 30u);

  // The sweep proper: trip every single checkpoint once. Each run is a
  // fresh process state as far as budgets are concerned (every entry point
  // owns its budget), so trips cannot leak across iterations.
  for (std::uint64_t n = 1; n <= total; ++n) {
    fault_inject::arm(n);
    const WorkloadReport w = run_workload();
    expect_well_formed(w, n);
    if (HasFatalFailure()) break;
  }
  fault_inject::disarm();
}

}  // namespace
}  // namespace rtv
