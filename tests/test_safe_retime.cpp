// Tests for safe-replacement-constrained retiming (min_area_retime_safe)
// — the paper's Section-1 recommendation ("if we limit the retiming
// transformations, then retiming satisfies the condition of
// safe-replacement") turned into an optimizer mode.

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/safety.hpp"
#include "core/validator.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "retime/min_area.hpp"
#include "stg/stg.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

TEST(SafeRetime, NeverWorseNeverUnsafe) {
  Rng rng(9090);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 2;
  opt.num_gates = 18;
  opt.num_latches = 5;
  opt.latch_after_gate_probability = 0.35;
  for (int trial = 0; trial < 8; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const RetimeGraph g = RetimeGraph::from_netlist(n);
    const MinAreaResult free_form = min_area_retime(g);
    const MinAreaResult safe = min_area_retime_safe(g, n);
    // Constrained optimum is sandwiched between original and free optimum.
    EXPECT_LE(safe.registers_after, safe.registers_before);
    EXPECT_GE(safe.registers_after, free_form.registers_after);
    EXPECT_TRUE(g.legal_retiming(safe.lag));
    // Non-justifiable elements never have negative lag.
    for (std::uint32_t v = 2; v < g.num_vertices(); ++v) {
      if (!n.is_justifiable(g.vertex_origin(v))) {
        EXPECT_GE(safe.lag[v], 0) << n.name(g.vertex_origin(v));
      }
    }
    // The realized move sequence contains no unsafe move.
    SequencedRetiming seq;
    const SafetyReport report = analyze_lag_retiming(n, g, safe.lag, &seq);
    EXPECT_TRUE(report.safe_replacement_guaranteed) << report.summary();
  }
}

TEST(SafeRetime, ExactStgConfirmsSafeReplacement) {
  Rng rng(4321);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 2;
  opt.num_gates = 12;
  opt.num_latches = 3;
  opt.latch_after_gate_probability = 0.3;
  int checked = 0;
  for (int trial = 0; trial < 8 && checked < 4; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const RetimeGraph g = RetimeGraph::from_netlist(n);
    const MinAreaResult safe = min_area_retime_safe(g, n);
    const RetimingValidation v = validate_retiming(n, g, safe.lag);
    EXPECT_TRUE(v.safety.safe_replacement_guaranteed);
    EXPECT_TRUE(v.cls.equivalent);
    if (!v.stg_checked) continue;
    EXPECT_TRUE(v.implication) << v.summary();        // Cor 4.4
    EXPECT_TRUE(v.safe_replacement) << v.summary();   // Prop 3.1
    EXPECT_EQ(v.min_delay_implication, 0);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(SafeRetime, Figure1SafeModeRefusesTheRogueMove) {
  // On Figure-1's D the only register win requires the forward junction
  // move; safe mode must keep the latch where it is (or move it backward).
  const Netlist d = figure1_original();
  const RetimeGraph g = RetimeGraph::from_netlist(d);
  const MinAreaResult safe = min_area_retime_safe(g, d);
  EXPECT_EQ(safe.registers_after, safe.registers_before);
  EXPECT_GE(safe.lag[g.vertex_of(d.find_by_name("J1"))], 0);
}

TEST(SafeRetime, FlowSafeModeProducesDropInReplacement) {
  Rng rng(777222);
  RandomCircuitOptions gen;
  gen.num_inputs = 2;
  gen.num_outputs = 2;
  gen.num_gates = 14;
  gen.num_latches = 4;
  gen.latch_after_gate_probability = 0.3;
  const Netlist n = random_netlist(gen, rng);

  FlowOptions opt;
  opt.objective = FlowOptions::Objective::kMinArea;
  opt.safe_replacement_only = true;
  // Cleanup passes (const-prop/sweep) can alter transient power-up
  // behaviour on their own; isolate the retiming for this check.
  opt.constant_propagation = false;
  opt.sweep_unobservable = false;
  const FlowReport r = run_synthesis_flow(n, opt);
  EXPECT_TRUE(r.accepted()) << r.summary();
  EXPECT_TRUE(r.safety.safe_replacement_guaranteed) << r.summary();
  // Exact STG: the optimized design is a true drop-in replacement.
  if (n.num_latches() <= 8 && r.optimized.num_latches() <= 8) {
    const Stg before = Stg::extract(n);
    const Stg after = Stg::extract(r.optimized);
    EXPECT_TRUE(safe_replacement(after, before));
  }
}

}  // namespace
}  // namespace rtv
