#include <gtest/gtest.h>

#include <vector>

#include "fault/engine.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "fault/test_eval.hpp"
#include "gen/random_circuits.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::and2_circuit;

std::vector<BitsSeq> random_tests(const Netlist& n, std::size_t count,
                                  std::size_t cycles, Rng& rng) {
  std::vector<BitsSeq> tests(count);
  for (auto& test : tests) {
    for (std::size_t t = 0; t < cycles; ++t) {
      Bits in(n.primary_inputs().size());
      for (auto& v : in) v = rng.coin();
      test.push_back(in);
    }
  }
  return tests;
}

/// The detection fields that must be invariant across threads / dropping.
void expect_same_detection(const FaultSimResult& a, const FaultSimResult& b) {
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.detecting_test, b.detecting_test);
  EXPECT_EQ(a.num_detected, b.num_detected);
  EXPECT_DOUBLE_EQ(a.coverage, b.coverage);
}

TEST(FaultEngine, ClsMatchesReferenceBaseline) {
  Rng rng(811);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_latches = 3;
  opt.num_gates = 18;
  for (int trial = 0; trial < 4; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const auto faults = collapse_faults(n);
    const auto tests = random_tests(n, 24, 6, rng);
    const FaultSimResult base = cls_fault_simulate(n, faults, tests);
    FaultSimOptions options;
    options.mode = FaultSimMode::kCls;
    options.threads = 2;
    const FaultSimResult r = fault_simulate(n, faults, tests, options);
    // The witness rules differ (baseline: first test in test order; engine:
    // earliest cycle within the earliest word), so compare the detected
    // sets and validate each engine witness independently.
    EXPECT_EQ(r.detected, base.detected);
    EXPECT_EQ(r.num_detected, base.num_detected);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (!r.detected[i]) {
        EXPECT_EQ(r.detecting_test[i], -1);
        continue;
      }
      const int w = r.detecting_test[i];
      ASSERT_GE(w, 0);
      ASSERT_LT(static_cast<std::size_t>(w), tests.size());
      EXPECT_TRUE(cls_test_detects(n, faults[i], tests[w]))
          << describe(n, faults[i]) << " witness " << w;
    }
  }
}

TEST(FaultEngine, ClsMultiWordTestSet) {
  // More than 64 tests forces the per-fault chunk loop (and its early
  // exits) through multiple packed words.
  Rng rng(913);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_latches = 2;
  opt.num_gates = 14;
  const Netlist n = random_netlist(opt, rng);
  const auto faults = collapse_faults(n);
  const auto tests = random_tests(n, 100, 5, rng);
  const FaultSimResult base = cls_fault_simulate(n, faults, tests);
  FaultSimOptions options;
  options.mode = FaultSimMode::kCls;
  const FaultSimResult r = fault_simulate(n, faults, tests, options);
  EXPECT_EQ(r.detected, base.detected);
  EXPECT_EQ(r.num_detected, base.num_detected);
}

TEST(FaultEngine, ExactMatchesPerTestLoop) {
  Rng rng(277);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 3;
  opt.num_gates = 12;
  for (int trial = 0; trial < 3; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const auto faults = collapse_faults(n);
    const auto tests = random_tests(n, 12, 5, rng);
    FaultSimOptions options;
    options.mode = FaultSimMode::kExact;
    options.threads = 2;
    const FaultSimResult r = fault_simulate(n, faults, tests, options);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      int first = -1;
      for (std::size_t ti = 0; ti < tests.size(); ++ti) {
        if (test_detects(n, faults[i], tests[ti])) {
          first = static_cast<int>(ti);
          break;
        }
      }
      EXPECT_EQ(r.detected[i], first >= 0) << describe(n, faults[i]);
      EXPECT_EQ(r.detecting_test[i], first) << describe(n, faults[i]);
    }
  }
}

TEST(FaultEngine, ModesBracketExactDetection) {
  // Paper-backed ordering on any workload: CLS detection implies exact
  // detection, and exact detection implies sampled detection (a sample of
  // power-up states can only make definite disagreement easier).
  Rng rng(644);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_latches = 3;
  opt.num_gates = 16;
  const Netlist n = random_netlist(opt, rng);
  const auto faults = collapse_faults(n);
  const auto tests = random_tests(n, 16, 6, rng);
  FaultSimOptions options;
  options.mode = FaultSimMode::kCls;
  const FaultSimResult cls = fault_simulate(n, faults, tests, options);
  options.mode = FaultSimMode::kExact;
  const FaultSimResult exact = fault_simulate(n, faults, tests, options);
  options.mode = FaultSimMode::kSampled;
  options.sample_lanes = 128;
  const FaultSimResult sampled = fault_simulate(n, faults, tests, options);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (cls.detected[i]) {
      EXPECT_TRUE(exact.detected[i]) << describe(n, faults[i]);
    }
    if (exact.detected[i]) {
      EXPECT_TRUE(sampled.detected[i]) << describe(n, faults[i]);
    }
  }
  EXPECT_LE(cls.num_detected, exact.num_detected);
  EXPECT_LE(exact.num_detected, sampled.num_detected);
}

TEST(FaultEngine, DeterministicAcrossThreadsAndDropping) {
  Rng rng(555);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_latches = 3;
  opt.num_gates = 16;
  const Netlist n = random_netlist(opt, rng);
  const auto faults = collapse_faults(n);
  const auto tests = random_tests(n, 20, 5, rng);
  for (const FaultSimMode mode :
       {FaultSimMode::kExact, FaultSimMode::kSampled, FaultSimMode::kCls}) {
    FaultSimOptions baseline_options;
    baseline_options.mode = mode;
    baseline_options.threads = 1;
    baseline_options.drop_detected = false;
    baseline_options.sample_lanes = 64;
    const FaultSimResult baseline =
        fault_simulate(n, faults, tests, baseline_options);
    for (const unsigned threads : {1u, 2u, 8u}) {
      for (const bool drop : {false, true}) {
        FaultSimOptions options = baseline_options;
        options.threads = threads;
        options.drop_detected = drop;
        const FaultSimResult r = fault_simulate(n, faults, tests, options);
        SCOPED_TRACE(std::string(to_string(mode)) + " threads=" +
                     std::to_string(threads) + " drop=" + std::to_string(drop));
        expect_same_detection(baseline, r);
      }
    }
  }
}

TEST(FaultEngine, DuplicateFaultsShareOneVerdict) {
  const Netlist n = and2_circuit();
  const Fault f = fault_on(n, "g", 0, true);
  const std::vector<Fault> faults = {f, f, f, f};
  const std::vector<BitsSeq> tests = {bits_seq_from_string("11"),
                                      bits_seq_from_string("00")};
  FaultSimOptions options;
  options.mode = FaultSimMode::kExact;
  options.threads = 1;  // serial: later duplicates must hit the table
  const FaultSimResult r = fault_simulate(n, faults, tests, options);
  EXPECT_EQ(r.num_detected, 4u);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_TRUE(r.detected[i]);
    EXPECT_EQ(r.detecting_test[i], 1);  // "00" is the detecting vector
  }
  EXPECT_EQ(r.faults_dropped, 3u);
  options.drop_detected = false;
  const FaultSimResult nodrop = fault_simulate(n, faults, tests, options);
  expect_same_detection(r, nodrop);
  EXPECT_EQ(nodrop.faults_dropped, 0u);
}

TEST(FaultEngine, EarlyExitSkipsLaterTests) {
  const Netlist n = and2_circuit();
  const auto faults = enumerate_faults(n);
  const std::vector<BitsSeq> tests = {
      bits_seq_from_string("00"), bits_seq_from_string("01"),
      bits_seq_from_string("10"), bits_seq_from_string("11")};
  FaultSimOptions options;
  options.mode = FaultSimMode::kExact;
  const FaultSimResult r = fault_simulate(n, faults, tests, options);
  EXPECT_EQ(r.num_detected, faults.size());
  // Every fault is caught by an early test, so far fewer than
  // faults x tests evaluations run.
  EXPECT_LT(r.tests_run, faults.size() * tests.size());
  EXPECT_GT(r.tests_run, 0u);
  EXPECT_GE(r.wall_seconds, 0.0);
}

TEST(FaultEngine, EmptyTestsAndEmptyFaults) {
  const Netlist n = and2_circuit();
  const auto faults = enumerate_faults(n);
  for (const FaultSimMode mode :
       {FaultSimMode::kExact, FaultSimMode::kSampled, FaultSimMode::kCls}) {
    FaultSimOptions options;
    options.mode = mode;
    const FaultSimResult no_tests = fault_simulate(n, faults, {}, options);
    EXPECT_EQ(no_tests.num_detected, 0u);
    EXPECT_EQ(no_tests.detecting_test,
              std::vector<int>(faults.size(), -1));
    const FaultSimResult no_faults = fault_simulate(
        n, {}, {bits_seq_from_string("11")}, options);
    EXPECT_EQ(no_faults.num_detected, 0u);
    EXPECT_TRUE(no_faults.detected.empty());
    EXPECT_DOUBLE_EQ(no_faults.coverage, 0.0);
  }
}

TEST(FaultEngine, EngineReusableAcrossFaultLists) {
  const Netlist n = and2_circuit();
  const auto faults = enumerate_faults(n);
  const std::vector<BitsSeq> tests = {
      bits_seq_from_string("00"), bits_seq_from_string("01"),
      bits_seq_from_string("10"), bits_seq_from_string("11")};
  FaultSimOptions options;
  options.mode = FaultSimMode::kExact;
  FaultSimEngine engine(n, tests, options);
  EXPECT_EQ(engine.num_tests(), tests.size());
  const FaultSimResult all = engine.run(faults);
  EXPECT_EQ(all.num_detected, faults.size());
  const FaultSimResult one = engine.run({faults.front()});
  EXPECT_EQ(one.num_detected, 1u);
  EXPECT_EQ(one.detecting_test[0], all.detecting_test[0]);
}

TEST(FaultEngine, ModeStringsRoundTrip) {
  for (const FaultSimMode mode :
       {FaultSimMode::kExact, FaultSimMode::kSampled, FaultSimMode::kCls}) {
    const auto parsed = fault_sim_mode_from_string(to_string(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(fault_sim_mode_from_string("bogus").has_value());
}

}  // namespace
}  // namespace rtv
