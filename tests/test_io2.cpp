// Tests for the second IO wave: BLIF interop, VCD traces, the s27
// benchmark circuit, the sequential miter, and the hardened JSON codec
// (adversarial-input limits, canonical serializer).

#include <gtest/gtest.h>

#include <fstream>

#include "io/json.hpp"

#include "core/cls_equiv.hpp"
#include "netlist/miter.hpp"
#include "gen/iscas.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "io/blif.hpp"
#include "io/rnl_format.hpp"
#include "io/vcd.hpp"
#include "sim/binary_sim.hpp"
#include "sim/exact_sim.hpp"
#include "stg/stg.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::toggle_circuit;

void expect_behaviour_equal(const Netlist& a, const Netlist& b,
                            std::uint64_t seed) {
  ASSERT_EQ(a.num_latches(), b.num_latches());
  ASSERT_EQ(a.primary_inputs().size(), b.primary_inputs().size());
  ASSERT_EQ(a.primary_outputs().size(), b.primary_outputs().size());
  BinarySimulator sa(a), sb(b);
  Rng rng(seed);
  Bits state(a.num_latches());
  for (auto& v : state) v = rng.coin();
  sa.set_state(state);
  sb.set_state(state);
  for (int t = 0; t < 20; ++t) {
    Bits in(a.primary_inputs().size());
    for (auto& v : in) v = rng.coin();
    ASSERT_EQ(sa.step(in), sb.step(in)) << "cycle " << t;
  }
}

TEST(Blif, ParseMinimalModel) {
  const BlifDesign d = read_blif(
      ".model tiny\n"
      ".inputs a b\n"
      ".outputs y\n"
      ".names a b y\n"
      "11 1\n"
      ".end\n");
  EXPECT_EQ(d.model_name, "tiny");
  BinarySimulator sim(d.netlist);
  EXPECT_EQ(sim.step(bits_from_string("11")), bits_from_string("1"));
  EXPECT_EQ(sim.step(bits_from_string("01")), bits_from_string("0"));
}

TEST(Blif, DontCareCubesExpand) {
  const BlifDesign d = read_blif(
      ".model dc\n.inputs a b c\n.outputs y\n"
      ".names a b c y\n"
      "1-- 1\n"
      "-11 1\n"
      ".end\n");
  BinarySimulator sim(d.netlist);
  // y = a | (b & c)
  EXPECT_EQ(sim.step(bits_from_string("100"))[0], 1);
  EXPECT_EQ(sim.step(bits_from_string("011"))[0], 1);
  EXPECT_EQ(sim.step(bits_from_string("010"))[0], 0);
  EXPECT_EQ(sim.step(bits_from_string("000"))[0], 0);
}

TEST(Blif, OffsetCover) {
  const BlifDesign d = read_blif(
      ".model off\n.inputs a\n.outputs y\n"
      ".names a y\n"
      "1 0\n"  // off-set: y = 0 when a = 1, default 1 elsewhere
      ".end\n");
  BinarySimulator sim(d.netlist);
  EXPECT_EQ(sim.step(bits_from_string("1"))[0], 0);
  EXPECT_EQ(sim.step(bits_from_string("0"))[0], 1);
}

TEST(Blif, ConstantNames) {
  const BlifDesign d = read_blif(
      ".model k\n.inputs a\n.outputs y z w\n"
      ".names one\n1\n"
      ".names zero\n"
      ".names a one y\n11 1\n"
      ".names a zero z\n11 1\n"
      ".names w\n1\n"
      ".end\n");
  BinarySimulator sim(d.netlist);
  const Bits out = sim.step(bits_from_string("1"));
  EXPECT_EQ(out[0], 1);  // a & 1
  EXPECT_EQ(out[1], 0);  // a & 0
  EXPECT_EQ(out[2], 1);  // constant one
}

TEST(Blif, LatchWithInitValue) {
  const BlifDesign d = read_blif(
      ".model seq\n.inputs a\n.outputs y\n"
      ".latch a q 1\n"
      ".names q y\n1 1\n"
      ".end\n");
  EXPECT_EQ(d.netlist.num_latches(), 1u);
  const NodeId latch = d.netlist.latches()[0];
  ASSERT_TRUE(d.latch_init.count(latch.value));
  EXPECT_EQ(d.latch_init.at(latch.value), std::optional<bool>(true));
}

TEST(Blif, LatchUnknownInit) {
  const BlifDesign d = read_blif(
      ".model seq\n.inputs a\n.outputs y\n"
      ".latch a q 3\n"
      ".names q y\n1 1\n"
      ".end\n");
  EXPECT_EQ(d.latch_init.at(d.netlist.latches()[0].value), std::nullopt);
}

TEST(Blif, ContinuationLines) {
  const BlifDesign d = read_blif(
      ".model cont\n.inputs \\\na b\n.outputs y\n"
      ".names a b y\n11 1\n.end\n");
  EXPECT_EQ(d.netlist.primary_inputs().size(), 2u);
}

TEST(Blif, Errors) {
  EXPECT_THROW(read_blif(""), ParseError);
  EXPECT_THROW(read_blif(".inputs a\n"), ParseError);  // no .model
  EXPECT_THROW(read_blif(".model m\n.exdc\n"), ParseError);
  EXPECT_THROW(read_blif(".model m\n.inputs a\n.outputs y\n"
                         ".names a y\n11 1\n"),  // cube width
               ParseError);
  EXPECT_THROW(read_blif(".model m\n.inputs a\n.outputs y\n"
                         ".names a y\n1 1\n0 0\n"),  // mixed cover
               ParseError);
  EXPECT_THROW(read_blif(".model m\n.outputs y\n"),  // y undriven
               ParseError);
}

TEST(Blif, RoundTripPaperCircuit) {
  const Netlist d = figure1_original();
  const BlifDesign back = read_blif(write_blif(d, "figure1"));
  expect_behaviour_equal(d, back.netlist, 7);
  // And behaviourally the STGs agree.
  const Stg a = Stg::extract(d);
  const Stg b = Stg::extract(back.netlist);
  EXPECT_TRUE(implies(a, b));
  EXPECT_TRUE(implies(b, a));
}

TEST(Blif, RoundTripRandomCircuits) {
  Rng rng(88);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_outputs = 2;
  opt.num_gates = 18;
  opt.num_latches = 3;
  opt.table_probability = 0.3;
  for (int trial = 0; trial < 5; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const BlifDesign back = read_blif(write_blif(n));
    expect_behaviour_equal(n, back.netlist, 100 + trial);
  }
}

TEST(Iscas, S27Shape) {
  const Netlist n = iscas_s27();
  EXPECT_EQ(n.primary_inputs().size(), 4u);
  EXPECT_EQ(n.primary_outputs().size(), 1u);
  EXPECT_EQ(n.num_latches(), 3u);
}

TEST(Iscas, S27MatchesGateEquations) {
  const Netlist n = iscas_s27();
  BinarySimulator sim(n);
  // Reference model of the s27 equations.
  Rng rng(5);
  std::uint8_t g5 = 0, g6 = 0, g7 = 0;
  sim.set_state({g5, g6, g7});
  for (int t = 0; t < 64; ++t) {
    const std::uint8_t i0 = rng.coin(), i1 = rng.coin(), i2 = rng.coin(),
                       i3 = rng.coin();
    const std::uint8_t g14 = !i0;
    const std::uint8_t g8 = g14 && g6;
    const std::uint8_t g12 = !(i1 || g7);
    const std::uint8_t g15 = g12 || g8;
    const std::uint8_t g16 = i3 || g8;
    const std::uint8_t g9 = !(g16 && g15);
    const std::uint8_t g11 = !(g5 || g9);
    const std::uint8_t g10 = !(g14 || g11);
    const std::uint8_t g13 = !(i2 && g12);
    const std::uint8_t g17 = !g11;
    const Bits out = sim.step({i0, i1, i2, i3});
    ASSERT_EQ(out[0], g17) << "cycle " << t;
    g5 = g10;
    g6 = g11;
    g7 = g13;
    ASSERT_EQ(sim.state(), (Bits{g5, g6, g7}));
  }
}

TEST(Iscas, S27SurvivesBlifRoundTrip) {
  const Netlist n = iscas_s27();
  const BlifDesign back = read_blif(write_blif(n, "s27"));
  expect_behaviour_equal(n, back.netlist, 27);
}

TEST(Miter, EquivalentDesignsNeverRaiseNeq) {
  const Netlist a = toggle_circuit();
  const Miter m = build_miter(a, a);
  EXPECT_EQ(m.a_latches, 1u);
  EXPECT_EQ(m.b_latches, 1u);
  // From equal joint states, neq stays 0 on any input.
  BinarySimulator sim(m.netlist);
  Rng rng(9);
  for (const std::uint8_t v : {0, 1}) {
    sim.set_state({v, v});
    for (int t = 0; t < 10; ++t) {
      Bits in(1);
      in[0] = rng.coin();
      EXPECT_EQ(sim.step(in)[0], 0);
    }
  }
}

TEST(Miter, DetectsTheFigure1Difference) {
  // Miter of D and C: from the joint state (D=0, C=(1,0)) the miter output
  // must raise on the Table-1 input sequence.
  const Miter m = build_miter(figure1_original(), figure1_retimed());
  BinarySimulator sim(m.netlist);
  sim.set_state({0, 1, 0});
  const BitsSeq in = bits_seq_from_string("0.1.1.1");
  const BitsSeq out = sim.run(in);
  bool raised = false;
  for (const Bits& o : out) raised |= o[0] != 0;
  EXPECT_TRUE(raised);
  // Whereas from agreeing steady states it never raises.
  BinarySimulator sim2(m.netlist);
  sim2.set_state({0, 0, 0});
  for (const Bits& o : sim2.run(in)) EXPECT_EQ(o[0], 0);
}

TEST(Miter, ExactSimShowsDefiniteDisagreementPossibility) {
  const Miter m = build_miter(figure1_original(), figure1_retimed());
  ExactTernarySimulator sim(m.netlist);
  // Over all joint power-up states, neq is X at cycle 2 of 0.1.1.1 (some
  // joint states disagree, others agree).
  const TritsSeq out = sim.run(bits_seq_from_string("0.1.1.1"));
  EXPECT_EQ(out[1][0], kTX);
}

TEST(Miter, InterfaceMismatchRejected) {
  EXPECT_THROW(build_miter(toggle_circuit(), testing::and2_circuit()),
               InvalidArgument);
}

TEST(Vcd, BinaryTraceStructure) {
  const std::string vcd = simulate_to_vcd(
      toggle_circuit(), bits_from_string("0"), bits_seq_from_string("1.1.0"));
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
  EXPECT_NE(vcd.find("pi_in"), std::string::npos);
  EXPECT_NE(vcd.find("po_out"), std::string::npos);
  EXPECT_NE(vcd.find("q_t"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#30"), std::string::npos);
}

TEST(Vcd, ClsTraceContainsUnknowns) {
  const std::string vcd = cls_simulate_to_vcd(
      figure1_original(), to_trits(bits_seq_from_string("0.1.1.1")));
  EXPECT_NE(vcd.find('x'), std::string::npos);
}

TEST(Vcd, ClsTraceIdenticalAcrossRetiming) {
  // Section 5 on a waveform: the CLS VCD of D and C differ only in the
  // latch channel names, not in any PI/PO value line.
  const auto strip_latches = [](std::string vcd) {
    // Drop $var lines for latches and value lines of their ids (latch ids
    // come after PI and PO ids; with 1 PI and 1 PO those are ids 0 and 1,
    // i.e. '!' and '"'). Keep only value lines for '!' and '"'.
    std::istringstream is(vcd);
    std::string line, kept;
    while (std::getline(is, line)) {
      if (line.rfind("$var", 0) == 0 && line.find(" q_") != std::string::npos) {
        continue;
      }
      if (!line.empty() && (line[0] == '0' || line[0] == '1' || line[0] == 'x')) {
        const char id = line[1];
        if (id != '!' && id != '"') continue;  // latch channels
      }
      kept += line + "\n";
    }
    return kept;
  };
  const TritsSeq inputs = to_trits(bits_seq_from_string("0.1.1.1"));
  const std::string vd = strip_latches(cls_simulate_to_vcd(figure1_original(), inputs));
  const std::string vc = strip_latches(cls_simulate_to_vcd(figure1_retimed(), inputs));
  EXPECT_EQ(vd, vc);
}

// ---------------------------------------------------------------------------
// JSON hardening: the serve daemon feeds parse_json frames from arbitrary
// clients, so adversarial shapes must be rejected with ParseError — never a
// stack overflow or an unbounded allocation.

TEST(JsonLimits, DeepNestingIsRejectedNotOverflowed) {
  // 100k unclosed arrays would overflow the recursive-descent stack if
  // depth were unchecked; the cap turns it into a clean ParseError.
  const std::string deep(100000, '[');
  EXPECT_THROW(parse_json(deep), ParseError);

  JsonLimits tight;
  tight.max_depth = 4;
  EXPECT_THROW(parse_json("[[[[[1]]]]]", tight), ParseError);
  EXPECT_NO_THROW(parse_json("[[[[1]]]]", tight));
  // Objects count toward the same depth as arrays.
  EXPECT_THROW(parse_json(R"({"a":{"b":{"c":{"d":{"e":1}}}}})", tight),
               ParseError);
  EXPECT_NO_THROW(parse_json(R"({"a":[{"b":[1]}]})", tight));
}

TEST(JsonLimits, DefaultDepthAcceptsRealisticDocuments) {
  std::string nested;
  for (int i = 0; i < 200; ++i) nested += "[";
  nested += "1";
  for (int i = 0; i < 200; ++i) nested += "]";
  EXPECT_NO_THROW(parse_json(nested));  // default cap is 256
}

TEST(JsonLimits, ByteCapRejectsOversizedDocumentsUpFront) {
  JsonLimits limits;
  limits.max_bytes = 16;
  EXPECT_THROW(parse_json(std::string(17, ' ') + "1", limits), ParseError);
  EXPECT_NO_THROW(parse_json("{\"a\":1}", limits));
  limits.max_bytes = 0;  // 0 = unlimited
  EXPECT_NO_THROW(parse_json(std::string(1024, ' ') + "true", limits));
}

TEST(JsonWrite, CompactSerializerIsAFixedPoint) {
  const std::string text =
      R"({"s":"a\"b\\c\nd","n":-12.5,"i":9007199254740992,"neg":-3,)"
      R"("frac":0.1,"t":true,"f":false,"z":null,"arr":[1,[2,{"k":[]}]],)"
      R"("empty":{},"u":"é"})";
  const std::string once = write_json(parse_json(text));
  const std::string twice = write_json(parse_json(once));
  EXPECT_EQ(once, twice);
  // Integers within the double-exact window print without an exponent or
  // fraction, so ids and counters stay grep-able on the wire.
  EXPECT_NE(once.find("\"i\":9007199254740992"), std::string::npos);
  EXPECT_NE(once.find("\"neg\":-3"), std::string::npos);
}

TEST(JsonWrite, PreservesMemberOrderAndEscapes) {
  JsonValue::Object object;
  object.emplace_back("b", JsonValue(true));
  object.emplace_back("a", JsonValue(std::string("x\"\n\t")));
  const std::string out = write_json(JsonValue(std::move(object)));
  EXPECT_EQ(out, "{\"b\":true,\"a\":\"x\\\"\\n\\t\"}");
}

TEST(Vcd, SaveToFile) {
  const std::string path = ::testing::TempDir() + "/rtv_trace.vcd";
  save_vcd(simulate_to_vcd(toggle_circuit(), bits_from_string("0"),
                           bits_seq_from_string("1.0")),
           path);
  std::ifstream f(path);
  EXPECT_TRUE(f.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtv
