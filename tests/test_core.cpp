#include <gtest/gtest.h>

#include "core/cls_equiv.hpp"
#include "core/safety.hpp"
#include "core/test_preserve.hpp"
#include "core/validator.hpp"
#include "gen/datapath.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "retime/min_area.hpp"
#include "retime/min_period.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::inverter_pipeline;

Netlist small_pipeline_a() { return pipelined_adder(2, 2); }
Netlist small_pipeline_b() { return pipelined_adder(3, 2); }

/// Random-walk toward a random legal lag assignment.
std::vector<int> random_legal_lag(const RetimeGraph& g, Rng& rng,
                                  int attempts = 30) {
  std::vector<int> lag(g.num_vertices(), 0);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    std::vector<int> probe = lag;
    const std::uint32_t v =
        2 + static_cast<std::uint32_t>(rng.below(g.num_vertices() - 2));
    probe[v] += rng.coin() ? 1 : -1;
    if (g.legal_retiming(probe)) lag = probe;
  }
  return lag;
}

TEST(ClsEquiv, IdenticalDesignsAreEquivalent) {
  const Netlist n = inverter_pipeline();
  const auto r = check_cls_equivalence(n, n);
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_FALSE(r.counterexample.has_value());
}

TEST(ClsEquiv, DetectsFunctionalDifference) {
  // inverter pipeline vs buffer pipeline: differ once the X flushes out.
  Netlist buf_version;
  {
    Netlist& n = buf_version;
    const NodeId in = n.add_input("in");
    const NodeId out = n.add_output("out");
    const NodeId l0 = n.add_latch("L0");
    const NodeId l1 = n.add_latch("L1");
    const NodeId b = n.add_gate(CellKind::kBuf, 0, "b");
    n.connect(in, l0);
    n.connect(l0, b);
    n.connect(b, l1);
    n.connect(PortRef(l1, 0), PinRef(out, 0));
  }
  const auto r = check_cls_equivalence(inverter_pipeline(), buf_version);
  EXPECT_FALSE(r.equivalent);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_FALSE(cls_outputs_match(inverter_pipeline(), buf_version,
                                 *r.counterexample));
  EXPECT_NE(r.summary().find("DISTINGUISHABLE"), std::string::npos);
}

TEST(ClsEquiv, BoundedModeOnWideInputs) {
  // 13 inputs exceeds the exhaustive branching cap -> bounded check.
  Netlist a;
  std::vector<NodeId> ins;
  for (int i = 0; i < 13; ++i) {
    ins.push_back(a.add_input("i" + std::to_string(i)));
  }
  const NodeId g = a.add_gate(CellKind::kAnd, 13, "g");
  for (int i = 0; i < 13; ++i) a.connect(ins[i], g, i);
  const NodeId o = a.add_output("o");
  a.connect(PortRef(g, 0), PinRef(o, 0));
  const auto r = check_cls_equivalence(a, a);
  EXPECT_TRUE(r.equivalent);
  EXPECT_FALSE(r.exhaustive);
}

TEST(ClsEquiv, MismatchedInterfacesRejected) {
  EXPECT_THROW(
      check_cls_equivalence(inverter_pipeline(), testing::and2_circuit()),
      InvalidArgument);
}

TEST(ClsEquiv, RetimedRandomCircuitsAlwaysEquivalent) {
  // Corollary 5.3 as a property test: random circuit, random legal
  // retiming, CLS equivalence must hold.
  Rng rng(909);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 4;
  opt.num_gates = 14;
  opt.latch_after_gate_probability = 0.3;
  for (int trial = 0; trial < 8; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const RetimeGraph g = RetimeGraph::from_netlist(n);
    const std::vector<int> lag = random_legal_lag(g, rng, 40);
    SequencedRetiming seq;
    analyze_lag_retiming(n, g, lag, &seq);
    const auto r = check_cls_equivalence(n, seq.retimed);
    EXPECT_TRUE(r.equivalent) << "trial " << trial << ": " << r.summary();
  }
}

TEST(Safety, SafeMoveSequenceReport) {
  Netlist n = inverter_pipeline();
  const std::vector<RetimingMove> moves{
      {n.find_by_name("inv"), MoveDirection::kForward},
      {n.find_by_name("inv"), MoveDirection::kBackward}};
  Netlist retimed;
  const SafetyReport r = analyze_move_sequence(n, moves, &retimed);
  EXPECT_TRUE(r.safe_replacement_guaranteed);
  EXPECT_EQ(r.delay_bound, 0u);
  EXPECT_EQ(r.stats.total_moves, 2u);
  EXPECT_EQ(retimed.num_latches(), 2u);
}

TEST(Safety, UnsafeMoveSequenceReport) {
  Netlist d = figure1_original();
  const std::vector<RetimingMove> moves{
      {d.find_by_name("J1"), MoveDirection::kForward}};
  const SafetyReport r = analyze_move_sequence(d, moves, nullptr);
  EXPECT_FALSE(r.safe_replacement_guaranteed);
  EXPECT_EQ(r.delay_bound, 1u);
  EXPECT_NE(r.summary().find("C^1"), std::string::npos);
}

TEST(Safety, RepeatedUnsafeMovesRaiseTheBound) {
  // Loop latch -> junction -> inverter -> latch with an observation
  // branch: driving the latch around the loop twice gives the junction two
  // forward moves, so the Thm 4.5 bound k is 2 (each lap also deposits a
  // latch on the observation branch, as lag(J) = -2 predicts).
  Netlist n;
  const NodeId o = n.add_output("o");
  const NodeId inv = n.add_gate(CellKind::kNot, 0, "inv");
  const NodeId j = n.add_junc(2, "J");
  const NodeId latch = n.add_latch("L");
  n.connect(PortRef(j, 0), PinRef(inv, 0));
  n.connect(PortRef(inv, 0), PinRef(latch, 0));
  n.connect(PortRef(latch, 0), PinRef(j, 0));
  n.connect(PortRef(j, 1), PinRef(o, 0));
  n.check_valid(true);

  const std::vector<RetimingMove> moves{{j, MoveDirection::kForward},
                                        {inv, MoveDirection::kForward},
                                        {j, MoveDirection::kForward}};
  Netlist retimed;
  const SafetyReport r = analyze_move_sequence(n, moves, &retimed);
  EXPECT_EQ(r.delay_bound, 2u);
  EXPECT_EQ(r.stats.forward_across_non_justifiable, 2u);
  EXPECT_FALSE(r.safe_replacement_guaranteed);
  retimed.check_valid(true);
  EXPECT_EQ(retimed.num_latches(), 3u);  // loop 1 + branch 2
}

TEST(Validator, SafeRetimingValidates) {
  const Netlist n = inverter_pipeline();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  std::vector<int> lag(g.num_vertices(), 0);
  lag[g.vertex_of(n.find_by_name("inv"))] = 1;
  const RetimingValidation v = validate_retiming(n, g, lag);
  EXPECT_TRUE(v.safety.safe_replacement_guaranteed);
  EXPECT_TRUE(v.cls.equivalent);
  ASSERT_TRUE(v.stg_checked);
  EXPECT_TRUE(v.implication);
  EXPECT_TRUE(v.safe_replacement);
  EXPECT_EQ(v.min_delay_implication, 0);
  EXPECT_TRUE(v.theorems_hold);
}

TEST(Validator, UnsafeRetimingStillSatisfiesTheorems) {
  const Netlist d = figure1_original();
  const RetimeGraph g = RetimeGraph::from_netlist(d);
  std::vector<int> lag(g.num_vertices(), 0);
  lag[g.vertex_of(d.find_by_name("J1"))] = -1;
  const RetimingValidation v = validate_retiming(d, g, lag);
  EXPECT_FALSE(v.safety.safe_replacement_guaranteed);
  EXPECT_EQ(v.safety.delay_bound, 1u);
  EXPECT_TRUE(v.cls.equivalent);  // Cor 5.3
  ASSERT_TRUE(v.stg_checked);
  EXPECT_FALSE(v.implication);       // Section 2.1
  EXPECT_FALSE(v.safe_replacement);  // Section 2.1
  EXPECT_EQ(v.min_delay_implication, 1);
  EXPECT_TRUE(v.theorems_hold);
  EXPECT_NE(v.summary().find("⋢"), std::string::npos);
}

TEST(Validator, RandomRetimingsNeverFalsifyThePaper) {
  Rng rng(2468);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 4;
  opt.num_gates = 12;
  opt.latch_after_gate_probability = 0.35;
  int validated = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const RetimeGraph g = RetimeGraph::from_netlist(n);
    const RetimingValidation v =
        validate_retiming(n, g, random_legal_lag(g, rng));
    EXPECT_TRUE(v.theorems_hold) << "trial " << trial << "\n" << v.summary();
    if (v.stg_checked) ++validated;
  }
  EXPECT_GT(validated, 0);
}

TEST(Validator, MinAreaRetimingValidates) {
  Rng rng(1357);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 5;
  opt.num_gates = 14;
  opt.latch_after_gate_probability = 0.3;
  const Netlist n = random_netlist(opt, rng);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const MinAreaResult area = min_area_retime(g);
  const RetimingValidation v = validate_retiming(n, g, area.lag);
  EXPECT_TRUE(v.theorems_hold) << v.summary();
  EXPECT_TRUE(v.cls.equivalent);
}

TEST(Validator, MinPeriodRetimingValidates) {
  Rng rng(7531);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 4;
  opt.num_gates = 12;
  opt.latch_after_gate_probability = 0.4;
  const Netlist n = random_netlist(opt, rng);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const RetimingSolution sol = min_period_retime_opt(g);
  const RetimingValidation v = validate_retiming(n, g, sol.lag);
  EXPECT_TRUE(v.theorems_hold) << v.summary();
  EXPECT_TRUE(v.cls.equivalent);
}

TEST(TestPreserve, RequiresCombinationalFaultSite) {
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  const Fault on_latch{PortRef(d.find_by_name("L"), 0), true};
  EXPECT_THROW(check_test_preservation(d, c, on_latch,
                                       bits_seq_from_string("0.1"), 1),
               InvalidArgument);
}

TEST(TestPreserve, SummaryStates) {
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  const Fault f = fault_on(d, kFigure3FaultGate, 0, true);
  const auto r =
      check_test_preservation(d, c, f, bits_seq_from_string("0.1"), 1);
  const std::string s = r.summary();
  EXPECT_NE(s.find("original: detected"), std::string::npos);
  EXPECT_NE(s.find("retimed: missed"), std::string::npos);
  EXPECT_NE(s.find("holds"), std::string::npos);
}

TEST(TestPreserve, RandomizedTheorem46) {
  // Pipelined datapaths (feed-forward, so constant tests flush them to
  // definite outputs), random retimings, faults on every combinational
  // cell: whenever a test detects the fault in D, it must detect it in
  // C^k with k = total forward moves (Thm 4.6).
  Rng rng(8642);
  int exercised = 0;
  for (const Netlist& n : {small_pipeline_a(), small_pipeline_b()}) {
    const RetimeGraph g = RetimeGraph::from_netlist(n);
    SequencedRetiming seq;
    analyze_lag_retiming(n, g, random_legal_lag(g, rng, 40), &seq);
    if (seq.retimed.num_latches() > 18) continue;  // exact-sim capacity
    const unsigned k = static_cast<unsigned>(seq.stats.forward_moves);
    const auto faults = collapse_faults(n);
    for (std::size_t i = 0; i < faults.size(); i += 5) {
      if (!is_combinational(n.kind(faults[i].site.node))) continue;
      if (seq.retimed.sinks(faults[i].site).empty()) continue;
      // Constant random input held for 8 cycles flushes the pipeline.
      BitsSeq test;
      Bits in(n.primary_inputs().size());
      for (auto& bit : in) bit = rng.coin();
      for (int t = 0; t < 8; ++t) test.push_back(in);
      const auto r =
          check_test_preservation(n, seq.retimed, faults[i], test, k);
      EXPECT_TRUE(r.theorem_holds())
          << " fault " << describe(n, faults[i]) << " " << r.summary();
      if (r.detects_in_original) ++exercised;
    }
  }
  EXPECT_GT(exercised, 0);
}

}  // namespace
}  // namespace rtv
