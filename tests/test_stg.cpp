#include <gtest/gtest.h>

#include <algorithm>

#include "gen/random_circuits.hpp"
#include "gen/shift.hpp"
#include "sim/binary_sim.hpp"
#include "stg/stg.hpp"
#include "test_helpers.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::toggle_circuit;

/// 2-state machine: a resettable toggle. input 0 -> state 0; input 1
/// toggles. Output = state.
Stg toggle_stg() {
  // next[state][input], out[state][input]
  return Stg(2, 2, 1, {0, 1, 0, 0}, {0, 0, 1, 1});
}

/// toggle_stg with every state duplicated (4 states).
Stg toggle_stg_duplicated() {
  std::vector<std::uint32_t> next;
  std::vector<std::uint64_t> out;
  const Stg base = toggle_stg();
  for (std::uint64_t s = 0; s < 4; ++s) {
    for (std::uint64_t a = 0; a < 2; ++a) {
      next.push_back(base.next_state(s % 2, a) + (s >= 2 ? 2 : 0));
      out.push_back(base.output(s % 2, a));
    }
  }
  return Stg(4, 2, 1, std::move(next), std::move(out));
}

TEST(Stg, ConstructorValidation) {
  EXPECT_THROW(Stg(2, 2, 1, {0, 0, 0}, {0, 0, 0}), InvalidArgument);
  EXPECT_THROW(Stg(2, 2, 1, {0, 0, 0, 5}, {0, 0, 0, 0}), InvalidArgument);
  EXPECT_THROW(Stg(0, 2, 1, {}, {}), InvalidArgument);
}

TEST(Stg, ExtractToggleCircuit) {
  const Stg s = Stg::extract(toggle_circuit());
  ASSERT_EQ(s.num_states(), 2u);
  ASSERT_EQ(s.num_inputs(), 2u);
  // out = state; next = state XOR in.
  EXPECT_EQ(s.output(0, 0), 0u);
  EXPECT_EQ(s.output(1, 1), 1u);
  EXPECT_EQ(s.next_state(0, 1), 1u);
  EXPECT_EQ(s.next_state(1, 1), 0u);
  EXPECT_EQ(s.next_state(1, 0), 1u);
}

TEST(Stg, ExtractMatchesSimulator) {
  Rng rng(42);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 3;
  opt.num_gates = 15;
  const Netlist n = random_netlist(opt, rng);
  const Stg s = Stg::extract(n);
  BinarySimulator sim(n);
  for (std::uint64_t st = 0; st < s.num_states(); ++st) {
    for (std::uint64_t a = 0; a < s.num_inputs(); ++a) {
      std::uint64_t out = 0, next = 0;
      sim.eval_packed(st, a, out, next);
      EXPECT_EQ(s.output(st, a), out);
      EXPECT_EQ(s.next_state(st, a), next);
    }
  }
}

TEST(Stg, ExtractCapacity) {
  Netlist n = shift_register(30);
  EXPECT_THROW(Stg::extract(n, /*entry_cap=*/1 << 10), CapacityError);
}

TEST(Stg, RunProducesOutputTrace) {
  const Stg s = toggle_stg();
  std::uint32_t state = 0;
  const auto outs = s.run(state, {1, 1, 0});
  EXPECT_EQ(outs, (std::vector<std::uint64_t>{0, 1, 0}));
  EXPECT_EQ(state, 0u);
}

TEST(Stg, DisjointUnionOffsets) {
  const Stg u = Stg::disjoint_union(toggle_stg(), toggle_stg());
  EXPECT_EQ(u.num_states(), 4u);
  EXPECT_EQ(u.next_state(2, 1), 3u);
  EXPECT_EQ(u.output(3, 0), 1u);
}

TEST(Stg, RestrictRejectsNonClosedSet) {
  const Stg s = toggle_stg();
  std::vector<bool> keep{false, true};  // state 1 --0--> 0 leaves the set
  EXPECT_THROW(s.restrict(keep), InvalidArgument);
}

TEST(Stg, RestrictRemaps) {
  const Stg s = toggle_stg_duplicated();
  std::vector<bool> keep{false, false, true, true};
  std::vector<std::uint32_t> map;
  const Stg r = s.restrict(keep, &map);
  EXPECT_EQ(r.num_states(), 2u);
  EXPECT_EQ(map[2], 0u);
  EXPECT_EQ(map[3], 1u);
  EXPECT_EQ(r.output(1, 0), 1u);
}

TEST(Minimize, CollapsesDuplicatedStates) {
  const auto cls = equivalence_classes(toggle_stg_duplicated());
  EXPECT_EQ(num_classes(cls), 2u);
  EXPECT_EQ(cls[0], cls[2]);
  EXPECT_EQ(cls[1], cls[3]);
  EXPECT_NE(cls[0], cls[1]);
}

TEST(Minimize, QuotientPreservesBehaviour) {
  const Stg big = toggle_stg_duplicated();
  const Stg q = quotient(big, equivalence_classes(big));
  EXPECT_EQ(q.num_states(), 2u);
  EXPECT_TRUE(implies(q, big));
  EXPECT_TRUE(implies(big, q));
}

TEST(Minimize, DistinguishesByLaterOutputs) {
  // States 0 and 3 have equal output rows but their successors diverge a
  // step later, so they must split.
  std::vector<std::uint32_t> next{1, 2, 2, 4, 5, 5};
  std::vector<std::uint64_t> out{0, 0, 1, 0, 0, 0};
  const Stg s(6, 1, 1, next, out);
  const auto cls = equivalence_classes(s);
  EXPECT_NE(cls[0], cls[3]);
  EXPECT_NE(cls[1], cls[4]);
}

TEST(Minimize, AlreadyMinimalStable) {
  EXPECT_EQ(num_classes(equivalence_classes(toggle_stg())), 2u);
}

TEST(Scc, SingleComponentRing) {
  const Stg s(3, 1, 1, {1, 2, 0}, {0, 0, 0});
  const SccResult r = strongly_connected_components(s);
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_TRUE(r.is_terminal[0]);
}

TEST(Scc, TransientPlusSink) {
  const Stg s(2, 1, 1, {1, 1}, {0, 0});
  const SccResult r = strongly_connected_components(s);
  EXPECT_EQ(r.num_components, 2u);
  EXPECT_NE(r.component_of[0], r.component_of[1]);
  EXPECT_TRUE(r.is_terminal[r.component_of[1]]);
  EXPECT_FALSE(r.is_terminal[r.component_of[0]]);
}

TEST(Scc, TwoTerminalComponents) {
  const Stg s(4, 1, 1, {1, 1, 3, 3}, {0, 0, 0, 1});
  const SccResult r = strongly_connected_components(s);
  std::uint32_t terminals = 0;
  for (const bool t : r.is_terminal) terminals += t;
  EXPECT_EQ(terminals, 2u);
}

TEST(Scc, EssentialResettability) {
  // Distinct-output sinks -> not essentially resettable.
  EXPECT_FALSE(essentially_resettable(Stg(4, 1, 1, {1, 1, 3, 3}, {0, 0, 0, 1})));
  // Same-output sinks collapse under minimization -> resettable.
  EXPECT_TRUE(essentially_resettable(Stg(4, 1, 1, {1, 1, 3, 3}, {0, 0, 0, 0})));
  EXPECT_TRUE(essentially_resettable(toggle_stg()));
}

TEST(Replaceability, ImpliesIsReflexive) {
  const Stg s = toggle_stg();
  EXPECT_TRUE(implies(s, s));
}

TEST(Replaceability, ImpliesBetweenEquivalentMachines) {
  const Stg big = toggle_stg_duplicated();
  const Stg small = toggle_stg();
  EXPECT_TRUE(implies(small, big));
  EXPECT_TRUE(implies(big, small));
}

TEST(Replaceability, ImpliesFailsOnNewBehaviour) {
  const Stg d(1, 1, 1, {0}, {0});
  const Stg c(2, 1, 1, {1, 1}, {1, 0});  // state 0 outputs a 1 once
  EXPECT_FALSE(implies(c, d));
  EXPECT_TRUE(implies(d, c));  // D's state matches C's state 1
}

TEST(Replaceability, SafeReplacementWeakerThanImplies) {
  // [PSAB94]: C ≼ D can hold where C ⊑ D fails — the matching D state may
  // depend on the input sequence.
  //   D: state A outputs the input; state B outputs its complement.
  const Stg d(2, 2, 1, {0, 0, 1, 1}, {0, 1, 1, 0});
  //   C adds a state s outputting 0 on either input, then moving to the
  //   D-state that would have produced that 0 (A on input 0, B on input 1).
  const Stg c(3, 2, 1, {0, 0, 1, 1, 0, 1}, {0, 1, 1, 0, 0, 0});
  EXPECT_FALSE(implies(c, d));  // s is equivalent to neither A nor B
  EXPECT_TRUE(safe_replacement(c, d));
}

TEST(Replaceability, ImpliesImpliesSafeReplacement) {
  // Prop 3.1 on random machines: C ⊑ D => C ≼ D.
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const unsigned ns = 2 + static_cast<unsigned>(rng.below(4));
    std::vector<std::uint32_t> next;
    std::vector<std::uint64_t> out;
    for (unsigned i = 0; i < ns * 2; ++i) {
      next.push_back(static_cast<std::uint32_t>(rng.below(ns)));
      out.push_back(rng.below(2));
    }
    const Stg d(ns, 2, 1, next, out);
    const Stg c = quotient(d, equivalence_classes(d));
    EXPECT_TRUE(implies(c, d));
    EXPECT_TRUE(safe_replacement(c, d));
  }
}

TEST(Replaceability, ViolationWitnessReplays) {
  const Stg d(1, 1, 1, {0}, {0});
  const Stg c(2, 1, 1, {1, 1}, {1, 0});
  SafeReplacementViolation w;
  ASSERT_TRUE(find_safe_replacement_violation(c, d, &w));
  EXPECT_EQ(w.c_start, 0u);
  // Replay: no D state matches C's outputs on the witness inputs.
  std::uint32_t cs = w.c_start;
  const auto c_out = c.run(cs, w.inputs);
  bool any_match = false;
  for (std::uint64_t s0 = 0; s0 < d.num_states(); ++s0) {
    std::uint32_t ds = static_cast<std::uint32_t>(s0);
    if (d.run(ds, w.inputs) == c_out) any_match = true;
  }
  EXPECT_FALSE(any_match);
}

TEST(Replaceability, IncompatibleMachinesRejected) {
  const Stg a(1, 1, 1, {0}, {0});
  const Stg b(1, 2, 1, {0, 0}, {0, 0});
  EXPECT_THROW(implies(a, b), InvalidArgument);
  EXPECT_THROW(safe_replacement(a, b), InvalidArgument);
}

TEST(Delayed, FullSetAtZeroCycles) {
  const auto keep = states_after_delay(toggle_stg(), 0);
  EXPECT_EQ(std::count(keep.begin(), keep.end(), true), 2);
}

TEST(Delayed, TransientsDisappear) {
  const Stg s(2, 1, 1, {1, 1}, {0, 0});
  const auto keep = states_after_delay(s, 1);
  EXPECT_FALSE(keep[0]);
  EXPECT_TRUE(keep[1]);
  EXPECT_EQ(delayed_design(s, 1).num_states(), 1u);
}

TEST(Delayed, FixpointStopsEarly) {
  const Stg s(2, 1, 1, {1, 1}, {0, 0});
  EXPECT_EQ(delayed_design(s, 1000).num_states(), 1u);
}

TEST(Delayed, MinDelayZeroWhenEquivalent) {
  const Stg s = toggle_stg();
  EXPECT_EQ(min_delay_for_implication(s, s, 4), 0);
  EXPECT_EQ(min_delay_for_safe_replacement(s, s, 4), 0);
}

TEST(Delayed, MinDelayUnreachableReturnsMinusOne) {
  const Stg d(1, 1, 1, {0}, {0});
  const Stg c(1, 1, 1, {0}, {1});  // permanently different output
  EXPECT_EQ(min_delay_for_implication(c, d, 5), -1);
}

TEST(InitSeq, ToggleIsInitializedByZero) {
  EXPECT_TRUE(initializes(toggle_stg(), {0}));
  EXPECT_FALSE(initializes(toggle_stg(), {1}));
  EXPECT_TRUE(initializes(toggle_stg(), {1, 0}));
}

TEST(InitSeq, FindsShortestSequence) {
  std::vector<std::uint64_t> seq;
  ASSERT_TRUE(find_initializing_sequence(toggle_stg(), 4, &seq));
  EXPECT_EQ(seq, (std::vector<std::uint64_t>{0}));
}

TEST(InitSeq, ShiftRegisterNeedsLengthCycles) {
  const Stg s = Stg::extract(shift_register(3));
  std::vector<std::uint64_t> seq;
  ASSERT_TRUE(find_initializing_sequence(s, 8, &seq));
  EXPECT_EQ(seq.size(), 3u);  // must flush the whole pipeline
  EXPECT_FALSE(find_initializing_sequence(s, 2, &seq));
}

TEST(InitSeq, UnsynchronizableMachine) {
  // A free-running toggle with a useless input can never be synchronized.
  const Stg s(2, 1, 1, {1, 0}, {0, 1});
  EXPECT_FALSE(find_initializing_sequence(s, 10, nullptr));
}

TEST(Stg, ToStringMentionsTransitions) {
  const std::string str = toggle_stg().to_string();
  EXPECT_NE(str.find("2 states"), std::string::npos);
  EXPECT_NE(str.find("s0"), std::string::npos);
}

}  // namespace
}  // namespace rtv
