// The serve subsystem: wire codec, content-addressed design cache, and the
// Server's concurrent job semantics — determinism under parallel clients,
// per-job budget isolation (one degraded job never corrupts a neighbour),
// cache eviction correctness under a tiny byte cap, and graceful shutdown.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "io/json.hpp"
#include "io/rnl_format.hpp"
#include "serve/design_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "test_helpers.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rtv {
namespace {

using serve::DesignCache;
using serve::ErrorCode;
using serve::JobRequest;
using serve::JobType;
using serve::Server;
using serve::ServeOptions;

std::string toggle_text() { return write_rnl(testing::toggle_circuit()); }

/// Builds a request frame; design/options are spliced in pre-rendered.
std::string frame(const std::string& id, const std::string& type,
                  const std::string& extra = "") {
  std::string f = "{\"rtv_serve\":1,\"id\":\"" + id + "\",\"type\":\"" +
                  type + "\"";
  if (!extra.empty()) f += "," + extra;
  f += "}";
  return f;
}

std::string design_field(const std::string& rnl) {
  return "\"design\":\"" + json_escape(rnl) + "\"";
}

JsonValue parse_response(const std::string& line) {
  JsonValue doc = parse_json(line);
  EXPECT_EQ(serve::validate_response(doc), "") << line;
  return doc;
}

bool response_ok(const JsonValue& doc) {
  return doc.find("ok") != nullptr && doc.find("ok")->as_bool();
}

std::string error_code(const JsonValue& doc) {
  const JsonValue* error = doc.find("error");
  return error == nullptr ? "" : error->find("code")->as_string();
}

std::string verdict_of(const JsonValue& doc) {
  return doc.find("stats")->find("verdict")->as_string();
}

// ---------------------------------------------------------------------------
// Protocol codec

TEST(ServeProtocol, RejectsMalformedFrames) {
  const auto expect_bad = [](const std::string& text) {
    try {
      serve::parse_request(parse_json(text));
      FAIL() << "accepted: " << text;
    } catch (const serve::ProtocolError& e) {
      EXPECT_EQ(e.code(), ErrorCode::kBadRequest) << text;
    }
  };
  expect_bad("[1,2]");                                  // not an object
  expect_bad("{\"id\":\"a\",\"type\":\"lint\"}");       // missing version
  expect_bad("{\"rtv_serve\":99,\"id\":\"a\",\"type\":\"lint\"}");  // wrong
  expect_bad(frame("", "lint", design_field("x")));     // empty id
  expect_bad(frame("a", "frobnicate"));                 // unknown type
  expect_bad(frame("a", "lint"));                       // missing design
  expect_bad(frame("a", "lint",
                   "\"design\":\"x\",\"design_id\":\"y\""));  // both
  expect_bad(frame("a", "lint",
                   design_field("x") + ",\"design_b\":\"y\""));  // stray b
  expect_bad(frame("a", "stats", design_field("x")));   // design on stats
  expect_bad(frame("a", "cls-equivalence", design_field("x")));  // no b
  expect_bad(frame("a", "lint",
                   design_field("x") + ",\"budget\":{\"time_ms\":-1}"));
  expect_bad(frame("a", "lint", design_field("x") + ",\"options\":3"));
}

TEST(ServeProtocol, ParsesACompleteRequest) {
  const JobRequest r = serve::parse_request(parse_json(frame(
      "job-1", "faultsim",
      design_field("rnl 1\n") +
          ",\"budget\":{\"time_ms\":250,\"step_quota\":10}," +
          "\"options\":{\"tests\":4}")));
  EXPECT_EQ(r.id, "job-1");
  EXPECT_EQ(r.type, JobType::kFaultSim);
  ASSERT_TRUE(r.design_text.has_value());
  ASSERT_TRUE(r.budget.has_value());
  EXPECT_EQ(r.budget->time_ms, 250u);
  EXPECT_EQ(r.budget->step_quota, 10u);
  ASSERT_TRUE(r.options.is_object());
}

TEST(ServeProtocol, RenderedFramesValidate) {
  serve::JobStatsWire stats;
  stats.verdict = "proven";
  stats.governed = true;
  const std::string ok = serve::render_response(
      "a", JobType::kValidate, "0123456789abcdef",
      JsonValue(JsonValue::Object{}), stats);
  EXPECT_EQ(serve::validate_response(parse_json(ok)), "");
  const std::string err =
      serve::render_error("", ErrorCode::kParseError, "bad design");
  EXPECT_EQ(serve::validate_response(parse_json(err)), "");
  // And the validator actually rejects: wrong verdict label.
  EXPECT_NE(serve::validate_response(parse_json(
                "{\"rtv_serve\":3,\"id\":\"a\",\"ok\":true,"
                "\"type\":\"lint\",\"result\":{},\"stats\":{"
                "\"queue_ms\":0,\"run_ms\":0,\"cache_hit\":false,"
                "\"verdict\":\"perhaps\"}}")),
            "");
}

// ---------------------------------------------------------------------------
// Design cache

TEST(DesignCache, ContentAddressingDeduplicatesSpellings) {
  DesignCache cache(std::size_t{1} << 20);
  bool hit = true;
  const auto a = cache.intern(toggle_text(), &hit);
  EXPECT_FALSE(hit);
  // Same text again: alias fast-path, no parse.
  const auto b = cache.intern(toggle_text(), &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.get(), b.get());
  // Different spelling (comment + blank line), same canonical design: one
  // entry, one id — but the parse had to run, so not a cache hit.
  const auto c = cache.intern("# a comment\n\n" + toggle_text(), &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(a.get(), c.get());
  EXPECT_EQ(cache.stats().entries, 1u);
  // find() by the content id works and counts a hit.
  EXPECT_EQ(cache.find(a->design_id()).get(), a.get());
  EXPECT_EQ(cache.find("no-such-id"), nullptr);
}

TEST(DesignCache, EvictsLruUnderByteCapAndStaysCorrect) {
  Rng rng(7);
  std::vector<std::string> designs;
  for (int i = 0; i < 12; ++i) {
    RandomCircuitOptions opt;
    opt.num_gates = 12 + i;  // distinct designs
    designs.push_back(write_rnl(random_netlist(opt, rng)));
  }
  // Cap sized for only a couple of residents (entry sizes are an estimate,
  // so measure one instead of hard-coding).
  const std::size_t one_entry =
      DesignCache(std::size_t{1} << 20).intern(designs[0])->bytes();
  DesignCache cache(one_entry * 5 / 2);
  std::vector<std::string> ids;
  for (const std::string& text : designs) {
    const auto entry = cache.intern(text);
    // The entry handed out is always usable, evicted or not.
    EXPECT_EQ(DesignCache::content_hash(entry->canonical_text()),
              entry->design_id());
    ids.push_back(entry->design_id());
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, stats.byte_cap);
  // Early ids were evicted; re-interning the text rebuilds the SAME id
  // (content addressing), so a client never sees a stale mapping.
  EXPECT_EQ(cache.find(ids.front()), nullptr);
  EXPECT_EQ(cache.intern(designs.front())->design_id(), ids.front());
}

TEST(DesignCache, ZeroCapDisablesRetention) {
  DesignCache cache(0);
  const auto entry = cache.intern(toggle_text());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.find(entry->design_id()), nullptr);
  bool hit = true;
  cache.intern(toggle_text(), &hit);
  EXPECT_FALSE(hit);  // nothing retained, the parse re-ran
}

// ---------------------------------------------------------------------------
// Server job semantics (synchronous handle_line path)

ServeOptions small_server_options() {
  ServeOptions options;
  options.threads = 2;
  return options;
}

TEST(Server, EveryJobTypeAnswersOverTheSameEntryPoint) {
  Server server(small_server_options());
  const std::string design = design_field(toggle_text());

  const JsonValue lint =
      parse_response(server.handle_line(frame("l", "lint", design)));
  EXPECT_TRUE(response_ok(lint));
  // toggle's latch can never leave X, so semantic lint flags RTV301 — the
  // report is structurally sound but not clean.
  EXPECT_FALSE(lint.find("result")->find("clean")->as_bool());
  EXPECT_EQ(lint.find("result")->find("errors")->as_number(), 0.0);
  EXPECT_EQ(verdict_of(lint), "none");
  const std::string design_id = lint.find("design_id")->as_string();

  // Reuse by design_id: cache hit, identical result.
  const JsonValue lint2 = parse_response(server.handle_line(
      frame("l2", "lint", "\"design_id\":\"" + design_id + "\"")));
  EXPECT_TRUE(response_ok(lint2));
  EXPECT_TRUE(lint2.find("stats")->find("cache_hit")->as_bool());

  const JsonValue validate =
      parse_response(server.handle_line(frame("v", "validate", design)));
  EXPECT_TRUE(response_ok(validate));
  EXPECT_EQ(verdict_of(validate), "proven");
  EXPECT_TRUE(validate.find("result")->find("theorems_hold")->as_bool());

  const JsonValue faultsim = parse_response(server.handle_line(frame(
      "f", "faultsim", design + ",\"options\":{\"tests\":8,\"cycles\":8}")));
  EXPECT_TRUE(response_ok(faultsim));
  EXPECT_EQ(verdict_of(faultsim), "bounded");
  EXPECT_TRUE(faultsim.find("result")->find("complete")->as_bool());

  const JsonValue equiv = parse_response(server.handle_line(frame(
      "e", "cls-equivalence",
      design_field(write_rnl(figure1_original())) + ",\"design_b\":\"" +
          json_escape(write_rnl(figure1_retimed())) + "\"")));
  EXPECT_TRUE(response_ok(equiv));
  EXPECT_TRUE(equiv.find("result")->find("equivalent")->as_bool());
  EXPECT_EQ(verdict_of(equiv), "proven");

  const JsonValue sim = parse_response(server.handle_line(frame(
      "s", "simulate", design + ",\"options\":{\"inputs\":\"1.1.0\"}")));
  EXPECT_TRUE(response_ok(sim));
  EXPECT_EQ(sim.find("result")->find("responses")->as_array().size(), 1u);

  const JsonValue stats =
      parse_response(server.handle_line(frame("st", "stats")));
  EXPECT_TRUE(response_ok(stats));
  EXPECT_GE(stats.find("result")->find("jobs_done")->as_number(), 6.0);
}

TEST(Server, SemanticLintAndStaticProofRoundTripOverTheWire) {
  Server server(small_server_options());
  const std::string design = design_field(toggle_text());

  // Semantic lint: the RTV301 finding and the fixpoint statistics travel
  // the wire intact.
  const JsonValue lint =
      parse_response(server.handle_line(frame("sl", "lint", design)));
  ASSERT_TRUE(response_ok(lint));
  const JsonValue* result = lint.find("result");
  EXPECT_FALSE(result->find("clean")->as_bool());
  EXPECT_EQ(result->find("warnings")->as_number(), 1.0);
  const auto& diags = result->find("diagnostics")->as_array();
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].find("code")->as_string(), "RTV301");
  EXPECT_EQ(diags[0].find("severity")->as_string(), "warning");
  EXPECT_EQ(diags[0].find("node")->as_string(), "t");
  const JsonValue* dataflow = result->find("dataflow");
  ASSERT_NE(dataflow, nullptr);
  EXPECT_GT(dataflow->find("ports")->as_number(), 0.0);
  EXPECT_GT(dataflow->find("iterations")->as_number(), 0.0);
  EXPECT_GT(dataflow->find("updates")->as_number(), 0.0);
  EXPECT_EQ(dataflow->find("table_fallbacks")->as_number(), 0.0);

  // semantic:false restores the structural-only verdict — and no
  // dataflow key, since the fixpoint never ran.
  const JsonValue off = parse_response(server.handle_line(
      frame("sl-off", "lint", design + ",\"options\":{\"semantic\":false}")));
  ASSERT_TRUE(response_ok(off));
  EXPECT_TRUE(off.find("result")->find("clean")->as_bool());
  EXPECT_EQ(off.find("result")->find("dataflow"), nullptr);

  // The static fixpoint proof decides toggle-vs-toggle with no engine run.
  const JsonValue equiv = parse_response(server.handle_line(
      frame("se", "cls-equivalence",
            design + ",\"design_b\":\"" + json_escape(toggle_text()) + "\"")));
  ASSERT_TRUE(response_ok(equiv));
  EXPECT_TRUE(equiv.find("result")->find("equivalent")->as_bool());
  EXPECT_EQ(equiv.find("result")->find("decided_by")->as_string(), "static");
  EXPECT_EQ(verdict_of(equiv), "proven");

  // The explicit static backend answers honestly when it cannot decide.
  const std::string pipeline = write_rnl(testing::inverter_pipeline());
  const JsonValue und = parse_response(server.handle_line(frame(
      "su", "cls-equivalence",
      design_field(pipeline) + ",\"design_b\":\"" + json_escape(pipeline) +
          "\",\"options\":{\"backend\":\"static\"}")));
  ASSERT_TRUE(response_ok(und));
  EXPECT_FALSE(und.find("result")->find("equivalent")->as_bool());
  EXPECT_EQ(und.find("result")->find("decided_by")->as_string(), "static");
  EXPECT_EQ(verdict_of(und), "exhausted");
}

TEST(Server, ClsEquivalenceBackendSelectionRoundTrips) {
  Server server(small_server_options());
  const std::string pair =
      design_field(write_rnl(figure1_original())) + ",\"design_b\":\"" +
      json_escape(write_rnl(figure1_retimed())) + "\"";
  for (const std::string backend : {"explicit", "bdd", "sat", "portfolio"}) {
    const JsonValue r = parse_response(server.handle_line(
        frame("be-" + backend, "cls-equivalence",
              pair + ",\"options\":{\"backend\":\"" + backend + "\"}")));
    EXPECT_TRUE(response_ok(r)) << backend;
    const JsonValue* result = r.find("result");
    EXPECT_TRUE(result->find("equivalent")->as_bool()) << backend;
    const std::string decided = result->find("decided_by")->as_string();
    if (backend == "portfolio") {
      // The race winner is timing-dependent but must be a real engine, and
      // the reason must say the portfolio decided.
      EXPECT_TRUE(decided == "bdd" || decided == "sat") << decided;
      EXPECT_NE(
          result->find("decided_reason")->as_string().find("portfolio"),
          std::string::npos);
    } else {
      EXPECT_EQ(decided, backend);
      EXPECT_FALSE(result->find("decided_reason")->as_string().empty());
    }
  }

  // An unknown backend gets the standard bad-request envelope, same as any
  // other unknown option value.
  const JsonValue bad = parse_response(server.handle_line(
      frame("be-bad", "cls-equivalence",
            pair + ",\"options\":{\"backend\":\"quantum\"}")));
  EXPECT_FALSE(response_ok(bad));
  EXPECT_EQ(error_code(bad), "bad_request");
}

TEST(Server, ErrorEnvelopesCarryTheDocumentedCodes) {
  Server server(small_server_options());
  // Not JSON at all.
  EXPECT_EQ(error_code(parse_response(server.handle_line("not json"))),
            "bad_request");
  // A design that does not parse.
  EXPECT_EQ(error_code(parse_response(server.handle_line(
                frame("p", "lint", design_field("rnl 1\nnode ?? what\n"))))),
            "parse_error");
  // Unknown design id.
  EXPECT_EQ(error_code(parse_response(server.handle_line(frame(
                "n", "lint", "\"design_id\":\"ffffffffffffffff\"")))),
            "design_not_found");
  // Unknown option key.
  EXPECT_EQ(error_code(parse_response(server.handle_line(
                frame("o", "lint",
                      design_field(toggle_text()) +
                          ",\"options\":{\"max_kay\":3}")))),
            "bad_request");
  // Precondition violation inside a handler (wrong input width).
  EXPECT_EQ(error_code(parse_response(server.handle_line(
                frame("w", "simulate",
                      design_field(toggle_text()) +
                          ",\"options\":{\"inputs\":\"101.010\"}")))),
            "invalid_argument");
}

// ---------------------------------------------------------------------------
// Concurrency semantics

TEST(Server, ParallelMixedClientsGetDeterministicVerdicts) {
  // Serial reference on a single-threaded server...
  ServeOptions serial;
  serial.threads = 1;
  Server reference(serial);
  const std::string design = design_field(toggle_text());
  const auto requests = [&](const std::string& tag) {
    std::vector<std::string> r;
    r.push_back(frame(tag + "-l", "lint", design));
    r.push_back(frame(tag + "-v", "validate", design));
    r.push_back(frame(tag + "-f", "faultsim",
                      design + ",\"options\":{\"tests\":8,\"cycles\":8,"
                               "\"seed\":3}"));
    r.push_back(frame(tag + "-s", "simulate",
                      design + ",\"options\":{\"inputs\":\"1.0.1.1\"}"));
    return r;
  };
  std::vector<std::string> expected;
  for (const std::string& req : requests("x")) {
    const JsonValue doc = parse_response(reference.handle_line(req));
    ASSERT_TRUE(response_ok(doc)) << req;
    expected.push_back(write_json(*doc.find("result")));
  }

  // ...must match every client's results on a parallel server, with all
  // clients hammering it at once.
  ServeOptions parallel;
  parallel.threads = 4;
  parallel.max_inflight = 8;
  Server server(parallel);
  constexpr int kClients = 8;
  std::vector<std::vector<std::string>> results(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (const std::string& req : requests("c" + std::to_string(c))) {
        const JsonValue doc = parse_json(server.handle_line(req));
        results[c].push_back(
            doc.find("result") != nullptr ? write_json(*doc.find("result"))
                                          : doc.find("error")->as_object()
                                                .front()
                                                .second.as_string());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(results[c], expected) << "client " << c;
  }
  // The fleet shared one cache entry for the design.
  EXPECT_EQ(server.stats().cache.entries, 1u);
}

TEST(Server, BudgetTrippedJobDegradesWhileNeighboursComplete) {
  ServeOptions options;
  options.threads = 4;
  Server server(options);
  const std::string design = design_field(toggle_text());

  // One job with a 1-step quota must degrade; unbudgeted twins must not.
  std::vector<std::string> responses(5);
  std::vector<std::thread> clients;
  for (int i = 0; i < 5; ++i) {
    clients.emplace_back([&, i] {
      const std::string extra =
          i == 0 ? design + ",\"budget\":{\"step_quota\":1}" : design;
      responses[i] = server.handle_line(
          frame("b" + std::to_string(i), "validate", extra));
    });
  }
  for (std::thread& t : clients) t.join();

  const JsonValue tripped = parse_response(responses[0]);
  ASSERT_TRUE(response_ok(tripped));
  EXPECT_EQ(verdict_of(tripped), "exhausted");
  const JsonValue* usage = tripped.find("stats")->find("usage");
  ASSERT_NE(usage, nullptr);
  EXPECT_TRUE(usage->find("exhausted")->as_bool());
  EXPECT_TRUE(usage->find("blown")->is_string());
  for (int i = 1; i < 5; ++i) {
    const JsonValue doc = parse_response(responses[i]);
    ASSERT_TRUE(response_ok(doc)) << responses[i];
    EXPECT_EQ(verdict_of(doc), "proven") << responses[i];
    EXPECT_TRUE(doc.find("result")->find("theorems_hold")->as_bool());
  }
}

TEST(Server, InjectedFaultYieldsLabeledDegradedResponse) {
  // The robustness harness through the service path: trip the first
  // handler checkpoint, the job reports exhausted+injected instead of
  // crashing. The admission path owns checkpoints 1 ("serve.admit") and 2
  // ("serve.start"), so the first budget checkpoint is the third.
  Server server(small_server_options());
  fault_inject::arm(3);
  const std::string response = server.handle_line(
      frame("inj", "validate", design_field(toggle_text())));
  fault_inject::disarm();
  const JsonValue doc = parse_response(response);
  ASSERT_TRUE(response_ok(doc));
  EXPECT_EQ(verdict_of(doc), "exhausted");
  EXPECT_EQ(doc.find("stats")->find("usage")->find("blown")->as_string(),
            "fault injection");
}

TEST(Server, CounterInvariantHoldsAndRejectionsAreNotAccepted) {
  // Every frame lands in exactly one bucket. Admitted jobs satisfy
  // accepted == done + failed at quiescence; frames refused at the door
  // (malformed, shed) count only as rejected and never inflate accepted.
  Server server(small_server_options());
  const std::string design = design_field(toggle_text());

  // Two successes, one admitted failure (handler precondition violation).
  EXPECT_TRUE(response_ok(
      parse_response(server.handle_line(frame("ok1", "lint", design)))));
  EXPECT_TRUE(response_ok(
      parse_response(server.handle_line(frame("ok2", "validate", design)))));
  EXPECT_EQ(error_code(parse_response(server.handle_line(
                frame("bad-arg", "simulate",
                      design + ",\"options\":{\"inputs\":\"101.010\"}")))),
            "invalid_argument");

  // Never admitted: a malformed frame and a synthetic admission shed.
  EXPECT_EQ(error_code(parse_response(server.handle_line("not json"))),
            "bad_request");
  fault_inject::arm(1);  // checkpoint 1 is "serve.admit"
  const JsonValue shed =
      parse_response(server.handle_line(frame("shed", "lint", design)));
  fault_inject::disarm();
  EXPECT_EQ(error_code(shed), "overloaded");
  ASSERT_NE(shed.find("error")->find("retry_after_ms"), nullptr);

  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.jobs_accepted, 3u);
  EXPECT_EQ(stats.jobs_done, 2u);
  EXPECT_EQ(stats.jobs_failed, 1u);
  EXPECT_EQ(stats.jobs_rejected, 2u);
  EXPECT_EQ(stats.jobs_shed, 1u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.jobs_accepted, stats.jobs_done + stats.jobs_failed);
}

TEST(Server, TinyCacheEvictsButNeverCorruptsResults) {
  ServeOptions options;
  options.threads = 2;
  {
    // A couple of residents at most: measure one entry rather than
    // hard-coding the size estimate.
    RandomCircuitOptions gen;
    gen.num_gates = 10;
    Rng fresh(100);
    options.cache_bytes =
        DesignCache(std::size_t{1} << 20)
            .intern(write_rnl(random_netlist(gen, fresh)))
            ->bytes() *
        5 / 2;
  }
  Server server(options);
  Rng rng(11);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 8; ++i) {
      RandomCircuitOptions gen;
      gen.num_gates = 10 + i;
      Rng fresh(100 + i);  // same designs in both rounds
      const std::string text = write_rnl(random_netlist(gen, fresh));
      const JsonValue doc = parse_response(server.handle_line(
          frame("r" + std::to_string(round) + "-" + std::to_string(i),
                "lint", design_field(text))));
      ASSERT_TRUE(response_ok(doc));
      // Content addressing survives eviction: the id is a pure function
      // of the design, not of cache state.
      EXPECT_EQ(doc.find("design_id")->as_string(),
                DesignCache::content_hash(text));
    }
  }
  const auto stats = server.stats();
  EXPECT_GT(stats.cache.evictions, 0u);
  EXPECT_LE(stats.cache.bytes, stats.cache.byte_cap);
  (void)rng;
}

TEST(Server, StreamModeDrainsOnShutdown) {
  std::istringstream in(
      frame("1", "lint", design_field(toggle_text())) + "\n" +
      frame("2", "simulate", design_field(toggle_text()) +
                                 ",\"options\":{\"inputs\":\"1.1\"}") +
      "\n" + frame("3", "shutdown") + "\n" +
      frame("4", "lint", design_field(toggle_text())) + "\n");
  std::ostringstream out;
  ServeOptions options;
  options.threads = 2;
  Server server(options);
  server.serve_stream(in, out);
  EXPECT_TRUE(server.shutting_down());

  // Every request read before shutdown got exactly one response; the
  // post-shutdown line was never read.
  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> ids;
  while (std::getline(lines, line)) {
    const JsonValue doc = parse_response(line);
    ids.push_back(doc.find("id")->as_string());
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::string>{"1", "2", "3"}));
}

// ---------------------------------------------------------------------------
// ThreadPool task mode (the pool extension the server runs on)

TEST(ThreadPoolTasks, SubmitRunsEverythingAcrossWorkers) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  std::mutex m;
  std::condition_variable cv;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      if (done.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lk(m);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lk(m);
  ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(30),
                          [&] { return done.load() == kTasks; }));
}

TEST(ThreadPoolTasks, TasksAndParallelForCoexist) {
  ThreadPool pool(4);
  std::atomic<int> task_done{0};
  std::atomic<long> sum{0};
  pool.submit([&] { task_done.fetch_add(1); });
  pool.parallel_for(1000, 64, [&](std::size_t b, std::size_t e) {
    long local = 0;
    for (std::size_t i = b; i < e; ++i) local += static_cast<long>(i);
    sum.fetch_add(local);
  });
  pool.submit([&] { task_done.fetch_add(1); });
  // parallel_for's own correctness is the main assertion; tasks drain at
  // the workers' next idle transition.
  EXPECT_EQ(sum.load(), 499500L);
  for (int spins = 0; task_done.load() != 2 && spins < 1000; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(task_done.load(), 2);
}

TEST(ThreadPoolTasks, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace rtv
