#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "gen/datapath.hpp"
#include "gen/random_circuits.hpp"
#include "retime/apply.hpp"
#include "retime/graph.hpp"
#include "retime/mcmf.hpp"
#include "retime/min_area.hpp"
#include "retime/min_period.hpp"
#include "retime/wd.hpp"
#include "stg/stg.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::inverter_pipeline;

/// Brute force over lag vectors in [-bound, bound]^(V-2): returns the best
/// (min) value of `objective` over legal retimings, or nullopt.
std::optional<std::int64_t> brute_force_best(
    const RetimeGraph& g, int bound,
    const std::function<std::optional<std::int64_t>(const std::vector<int>&)>&
        objective) {
  const std::uint32_t free_vertices = g.num_vertices() - 2;
  if (free_vertices > 6) return std::nullopt;  // keep the search tiny
  std::vector<int> lag(g.num_vertices(), 0);
  std::optional<std::int64_t> best;
  const std::uint64_t radix = 2 * bound + 1;
  std::uint64_t total = 1;
  for (std::uint32_t i = 0; i < free_vertices; ++i) total *= radix;
  for (std::uint64_t code = 0; code < total; ++code) {
    std::uint64_t c = code;
    for (std::uint32_t i = 0; i < free_vertices; ++i) {
      lag[2 + i] = static_cast<int>(c % radix) - bound;
      c /= radix;
    }
    if (!g.legal_retiming(lag)) continue;
    const auto value = objective(lag);
    if (value && (!best || *value < *best)) best = value;
  }
  return best;
}

RetimeGraph small_random_graph(Rng& rng, Netlist& keep_alive) {
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 1;
  opt.num_gates = 4;
  opt.num_latches = 3;
  opt.max_fanin = 2;
  keep_alive = random_netlist(opt, rng);
  return RetimeGraph::from_netlist(keep_alive);
}

TEST(MinPeriod, InverterPipelineIsAlreadyOptimal) {
  const RetimeGraph g = RetimeGraph::from_netlist(inverter_pipeline());
  const RetimingSolution opt = min_period_retime_opt(g);
  const RetimingSolution feas = min_period_retime_feas(g);
  EXPECT_EQ(opt.period, 1);
  EXPECT_EQ(feas.period, 1);
}

TEST(MinPeriod, RetimingFixesUnbalancedChain) {
  // PI -> g1 -> g2 -> g3 -> L -> PO: period 3; retiming can spread the
  // single latch to achieve period... the latch can move to any cut, best
  // split is 2 (delay ceil(3/2)).
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId o = n.add_output("o");
  NodeId prev = a;
  for (int i = 0; i < 3; ++i) {
    const NodeId g = n.add_gate(CellKind::kNot, 0, "g" + std::to_string(i));
    n.connect(prev, g);
    prev = g;
  }
  const NodeId l = n.add_latch("L");
  n.connect(prev, l);
  n.connect(PortRef(l, 0), PinRef(o, 0));
  n.check_valid(true);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  EXPECT_EQ(g.clock_period(), 3);
  const RetimingSolution opt = min_period_retime_opt(g);
  EXPECT_EQ(opt.period, 2);
  EXPECT_TRUE(g.legal_retiming(opt.lag));
  const RetimingSolution feas = min_period_retime_feas(g);
  EXPECT_EQ(feas.period, 2);
}

TEST(MinPeriod, OptAndFeasAgreeOnRandomCircuits) {
  Rng rng(123);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_latches = 6;
  opt.num_gates = 30;
  opt.latch_after_gate_probability = 0.4;
  for (int trial = 0; trial < 15; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const RetimeGraph g = RetimeGraph::from_netlist(n);
    const RetimingSolution a = min_period_retime_opt(g);
    const RetimingSolution b = min_period_retime_feas(g);
    EXPECT_EQ(a.period, b.period) << "trial " << trial;
    EXPECT_LE(a.period, g.clock_period());
    EXPECT_TRUE(g.legal_retiming(a.lag));
    EXPECT_TRUE(g.legal_retiming(b.lag));
    EXPECT_EQ(g.clock_period(a.lag), a.period);
  }
}

TEST(MinPeriod, MatchesBruteForceOnTinyCircuits) {
  Rng rng(321);
  for (int trial = 0; trial < 10; ++trial) {
    Netlist n;
    const RetimeGraph g = small_random_graph(rng, n);
    const auto best = brute_force_best(
        g, 2, [&](const std::vector<int>& lag) -> std::optional<std::int64_t> {
          return g.clock_period(lag);
        });
    if (!best) continue;
    const RetimingSolution opt = min_period_retime_opt(g);
    EXPECT_EQ(opt.period, *best) << "trial " << trial;
  }
}

TEST(MinPeriod, InfeasiblePeriodReturnsNullopt) {
  const RetimeGraph g = RetimeGraph::from_netlist(inverter_pipeline());
  const WdMatrices wd = compute_wd(g);
  EXPECT_FALSE(feasible_retiming_opt(g, wd, 0).has_value());
  EXPECT_FALSE(feasible_retiming_feas(g, 0).has_value());
}

TEST(MinPeriod, PipelinedAdderReachesBalancedPeriod) {
  // An 8-bit adder with 4 register boundaries: retiming should reach a
  // strictly smaller period than the as-built circuit.
  const Netlist n = pipelined_adder(8, 4);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const RetimingSolution opt = min_period_retime_feas(g);
  EXPECT_LE(opt.period, g.clock_period());
  EXPECT_GE(opt.period, 1);
}

TEST(Mcmf, SimplePath) {
  MinCostFlow f(3);
  const auto a1 = f.add_arc(0, 1, 5, 2);
  const auto a2 = f.add_arc(1, 2, 3, 1);
  const auto r = f.solve(0, 2, 10);
  EXPECT_EQ(r.flow, 3);
  EXPECT_EQ(r.cost, 9);
  EXPECT_EQ(f.flow_on(a1), 3);
  EXPECT_EQ(f.flow_on(a2), 3);
}

TEST(Mcmf, PrefersCheaperPath) {
  MinCostFlow f(4);
  f.add_arc(0, 1, 1, 10);
  f.add_arc(0, 2, 1, 1);
  f.add_arc(1, 3, 1, 0);
  f.add_arc(2, 3, 1, 0);
  const auto r = f.solve(0, 3, 1);
  EXPECT_EQ(r.flow, 1);
  EXPECT_EQ(r.cost, 1);
}

TEST(Mcmf, NegativeCostsViaBellmanFord) {
  MinCostFlow f(3);
  f.add_arc(0, 1, 2, -5);
  f.add_arc(1, 2, 2, 3);
  const auto r = f.solve(0, 2, 2);
  EXPECT_EQ(r.flow, 2);
  EXPECT_EQ(r.cost, -4);
}

TEST(Mcmf, DisconnectedReturnsPartialFlow) {
  MinCostFlow f(4);
  f.add_arc(0, 1, 1, 1);
  const auto r = f.solve(0, 3, 5);
  EXPECT_EQ(r.flow, 0);
}

TEST(MinArea, InverterPipelineKeepsRegisterCount) {
  // Every vertex is 1-in/1-out: retiming cannot reduce registers.
  const RetimeGraph g = RetimeGraph::from_netlist(inverter_pipeline());
  const MinAreaResult r = min_area_retime(g);
  EXPECT_EQ(r.registers_before, 2);
  EXPECT_EQ(r.registers_after, 2);
  EXPECT_TRUE(g.legal_retiming(r.lag));
}

TEST(MinArea, SharesLatchesAcrossJoin) {
  // Two parallel input wires each with a latch joining at an AND: a
  // backward move... no: forward move across AND replaces 2 latches by 1.
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId o = n.add_output("o");
  const NodeId la = n.add_latch("La");
  const NodeId lb = n.add_latch("Lb");
  const NodeId g = n.add_gate(CellKind::kAnd, 2, "g");
  n.connect(a, la);
  n.connect(b, lb);
  n.connect(la, g, 0);
  n.connect(lb, g, 1);
  n.connect(PortRef(g, 0), PinRef(o, 0));
  n.check_valid(true);
  const RetimeGraph rg = RetimeGraph::from_netlist(n);
  const MinAreaResult r = min_area_retime(rg);
  EXPECT_EQ(r.registers_before, 2);
  EXPECT_EQ(r.registers_after, 1);
  // Apply and verify structurally.
  const Netlist retimed = apply_retiming(n, rg, r.lag);
  EXPECT_EQ(retimed.num_latches(), 1u);
  retimed.check_valid(true);
}

TEST(MinArea, MatchesBruteForceOnTinyCircuits) {
  Rng rng(555);
  for (int trial = 0; trial < 10; ++trial) {
    Netlist n;
    const RetimeGraph g = small_random_graph(rng, n);
    const auto best = brute_force_best(
        g, 2, [&](const std::vector<int>& lag) -> std::optional<std::int64_t> {
          return g.retimed_total_weight(lag);
        });
    if (!best) continue;
    const MinAreaResult r = min_area_retime(g);
    // Brute force is bounded to |lag| <= 2, so it can only over-estimate.
    EXPECT_LE(r.registers_after, *best) << "trial " << trial;
    EXPECT_TRUE(g.legal_retiming(r.lag));
    EXPECT_EQ(g.retimed_total_weight(r.lag), r.registers_after);
  }
}

TEST(MinArea, NeverIncreasesRegistersUnconstrained) {
  Rng rng(777);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_latches = 8;
  opt.num_gates = 40;
  opt.latch_after_gate_probability = 0.35;
  for (int trial = 0; trial < 10; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const RetimeGraph g = RetimeGraph::from_netlist(n);
    const MinAreaResult r = min_area_retime(g);
    EXPECT_LE(r.registers_after, r.registers_before);
    EXPECT_TRUE(g.legal_retiming(r.lag));
  }
}

TEST(MinAreaWithPeriod, RespectsPeriodConstraint) {
  Rng rng(999);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 6;
  opt.num_gates = 25;
  opt.latch_after_gate_probability = 0.4;
  for (int trial = 0; trial < 8; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const RetimeGraph g = RetimeGraph::from_netlist(n);
    const int target = min_period_retime_opt(g).period;
    const auto r = min_area_retime_with_period(g, target);
    ASSERT_TRUE(r.has_value()) << "optimal period must be feasible";
    EXPECT_LE(g.clock_period(r->lag), target);
    // The unconstrained optimum can only be <= the constrained one.
    EXPECT_LE(min_area_retime(g).registers_after, r->registers_after);
  }
}

TEST(MinAreaWithPeriod, InfeasiblePeriodReturnsNullopt) {
  const RetimeGraph g = RetimeGraph::from_netlist(inverter_pipeline());
  EXPECT_FALSE(min_area_retime_with_period(g, 0).has_value());
}

TEST(MinAreaWithPeriod, MatchesBruteForce) {
  Rng rng(1234);
  for (int trial = 0; trial < 8; ++trial) {
    Netlist n;
    const RetimeGraph g = small_random_graph(rng, n);
    const int target = min_period_retime_opt(g).period;
    const auto best = brute_force_best(
        g, 2, [&](const std::vector<int>& lag) -> std::optional<std::int64_t> {
          if (g.clock_period(lag) > target) return std::nullopt;
          return g.retimed_total_weight(lag);
        });
    const auto r = min_area_retime_with_period(g, target);
    ASSERT_TRUE(r.has_value());
    if (best) {
      EXPECT_LE(r->registers_after, *best) << "trial " << trial;
    }
  }
}

TEST(RetimedBehaviour, MinAreaPreservesDelayedBehaviour) {
  // Behavioural regression: after min-area retiming, C^n ⊑ D for some
  // small n (Cor 4.3) on STG-sized circuits.
  Rng rng(4242);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 4;
  opt.num_gates = 12;
  opt.latch_after_gate_probability = 0.3;
  int checked = 0;
  for (int trial = 0; trial < 12 && checked < 6; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    if (n.num_latches() > 7) continue;
    const RetimeGraph g = RetimeGraph::from_netlist(n);
    const MinAreaResult r = min_area_retime(g);
    const Netlist retimed = apply_retiming(n, g, r.lag);
    if (retimed.num_latches() > 10) continue;
    const Stg d = Stg::extract(n);
    const Stg c = Stg::extract(retimed);
    EXPECT_GE(min_delay_for_implication(c, d, 16), 0) << "trial " << trial;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace rtv
