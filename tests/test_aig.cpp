// AIG substrate tests: structural-hashing and constant-folding invariants,
// the netlist -> AIG compiler cross-checked cycle-by-cycle against
// BinarySimulator, and the dual-rail CLS encoding cross-checked against
// ClsSimulator (the encoding is only useful if it is *exactly* the CLS).

#include <gtest/gtest.h>

#include <vector>

#include "aig/aig.hpp"
#include "aig/cls_encode.hpp"
#include "aig/compile.hpp"
#include "gen/random_circuits.hpp"
#include "sim/binary_sim.hpp"
#include "sim/cls_sim.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::and2_circuit;
using testing::toggle_circuit;

// ---- raw AIG invariants ----------------------------------------------------

TEST(Aig, StrashSharesRepeatedAnds) {
  Aig aig;
  const Aig::Lit a = aig.add_input();
  const Aig::Lit b = aig.add_input();
  const Aig::Lit ab = aig.land(a, b);
  EXPECT_EQ(aig.land(a, b), ab);
  EXPECT_EQ(aig.land(b, a), ab) << "strash key must be fanin-order canonical";
  EXPECT_EQ(aig.num_ands(), 1u);
}

TEST(Aig, ConstantAndIdempotenceFolding) {
  Aig aig;
  const Aig::Lit a = aig.add_input();
  EXPECT_EQ(aig.land(a, Aig::kTrue), a);
  EXPECT_EQ(aig.land(Aig::kTrue, a), a);
  EXPECT_EQ(aig.land(a, Aig::kFalse), Aig::kFalse);
  EXPECT_EQ(aig.land(a, a), a);
  EXPECT_EQ(aig.land(a, Aig::lit_not(a)), Aig::kFalse);
  EXPECT_EQ(aig.num_ands(), 0u) << "all of those must fold, not allocate";
}

TEST(Aig, XorFolding) {
  Aig aig;
  const Aig::Lit a = aig.add_input();
  EXPECT_EQ(aig.lxor(a, a), Aig::kFalse);
  EXPECT_EQ(aig.lxor(a, Aig::kFalse), a);
  EXPECT_EQ(aig.lxor(a, Aig::kTrue), Aig::lit_not(a));
  EXPECT_EQ(aig.num_ands(), 0u);
}

TEST(Aig, FaninVarsPrecedeAnds) {
  // The unroller evaluates variables in index order; that is only a
  // topological order if every AND's fanins have smaller variable indices.
  Rng rng(7);
  RandomCircuitOptions opt;
  opt.num_gates = 24;
  opt.table_probability = 0.3;
  const Netlist n = random_netlist(opt, rng);
  const Aig aig = aig_from_netlist(n, Bits(n.latches().size(), 0));
  for (Aig::Var v = 0; v < aig.num_vars(); ++v) {
    if (!aig.is_and(v)) continue;
    EXPECT_LT(Aig::lit_var(aig.fanin0(v)), v);
    EXPECT_LT(Aig::lit_var(aig.fanin1(v)), v);
  }
}

// ---- reference AIG interpreter --------------------------------------------

/// Direct cycle-accurate interpreter over the AIG: evaluates variables in
/// increasing index order (valid per FaninVarsPrecedeAnds), then clocks
/// every latch with its next-state literal.
class AigEval {
 public:
  explicit AigEval(const Aig& aig) : aig_(aig), values_(aig.num_vars(), 0) {
    for (std::size_t i = 0; i < aig_.num_latches(); ++i) {
      state_.push_back(aig_.latch_init(i) ? 1 : 0);
    }
  }

  const Bits& state() const { return state_; }

  Bits step(const Bits& inputs) {
    for (std::size_t i = 0; i < aig_.num_inputs(); ++i) {
      values_[aig_.input_var(i)] = inputs.at(i);
    }
    for (std::size_t i = 0; i < aig_.num_latches(); ++i) {
      values_[aig_.latch_var(i)] = state_[i];
    }
    for (Aig::Var v = 0; v < aig_.num_vars(); ++v) {
      if (!aig_.is_and(v)) continue;
      values_[v] = lit_value(aig_.fanin0(v)) && lit_value(aig_.fanin1(v));
    }
    Bits outputs;
    for (std::size_t o = 0; o < aig_.num_outputs(); ++o) {
      outputs.push_back(lit_value(aig_.output(o)) ? 1 : 0);
    }
    Bits next;
    for (std::size_t i = 0; i < aig_.num_latches(); ++i) {
      next.push_back(lit_value(aig_.latch_next(i)) ? 1 : 0);
    }
    state_ = next;
    return outputs;
  }

 private:
  bool lit_value(Aig::Lit l) const {
    return (values_[Aig::lit_var(l)] != 0) != Aig::lit_negated(l);
  }

  const Aig& aig_;
  std::vector<std::uint8_t> values_;
  Bits state_;
};

// ---- netlist -> AIG compiler ----------------------------------------------

TEST(AigCompile, MatchesBinarySimulatorOnRandomNetlists) {
  Rng rng(1234);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_outputs = 2;
  opt.num_gates = 18;
  opt.num_latches = 4;
  opt.table_probability = 0.3;  // exercise the minterm expansion path
  for (int trial = 0; trial < 8; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const Netlist n = random_netlist(opt, rng);
    Bits init;
    for (std::size_t i = 0; i < n.latches().size(); ++i) {
      init.push_back(static_cast<std::uint8_t>(rng.coin()));
    }
    const Aig aig = aig_from_netlist(n, init);
    AigEval eval(aig);
    BinarySimulator sim(n);
    sim.set_state(init);
    EXPECT_EQ(eval.state(), init);
    for (int cycle = 0; cycle < 12; ++cycle) {
      Bits in;
      for (std::size_t i = 0; i < n.primary_inputs().size(); ++i) {
        in.push_back(static_cast<std::uint8_t>(rng.coin()));
      }
      EXPECT_EQ(eval.step(in), sim.step(in)) << "cycle " << cycle;
      EXPECT_EQ(eval.state(), sim.state()) << "cycle " << cycle;
    }
  }
}

TEST(AigCompile, ToggleStructure) {
  const Netlist n = toggle_circuit();
  const Aig aig = aig_from_netlist(n, Bits{0});
  EXPECT_EQ(aig.num_inputs(), 1u);
  EXPECT_EQ(aig.num_latches(), 1u);
  EXPECT_EQ(aig.num_outputs(), 1u);
  EXPECT_FALSE(aig.latch_init(0));
}

// ---- dual-rail CLS encoding -----------------------------------------------

TEST(ClsEncode, RailLayoutDoublesTheInterface) {
  const Netlist n = toggle_circuit();
  const ClsEncoding enc = cls_encode(n);
  EXPECT_EQ(enc.original_inputs, 1u);
  EXPECT_EQ(enc.original_outputs, 1u);
  EXPECT_EQ(enc.original_latches, 1u);
  EXPECT_EQ(enc.netlist.primary_inputs().size(), 2u);
  EXPECT_EQ(enc.netlist.primary_outputs().size(), 2u);
  EXPECT_EQ(enc.netlist.latches().size(), 2u);
  EXPECT_EQ(enc.all_x_state(), (Bits{0, 1}));  // (d, u) = (0, 1) per latch
}

TEST(ClsEncode, TritCodecRoundTrips) {
  const Trits trits{kT0, kT1, kTX};
  EXPECT_EQ(encode_trits(trits), (Bits{0, 0, 1, 0, 0, 1}));
  EXPECT_EQ(decode_trits(encode_trits(trits)), trits);
  // The spare (1,1) pattern decodes as X, matching the masked semantics.
  EXPECT_EQ(decode_trits(Bits{1, 1}), (Trits{kTX}));
}

TEST(ClsEncode, MatchesClsSimulatorOnRandomNetlists) {
  Rng rng(4321);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_outputs = 2;
  opt.num_gates = 18;
  opt.num_latches = 4;
  opt.table_probability = 0.3;  // exercise the per-minterm ternary extension
  for (int trial = 0; trial < 8; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const Netlist n = random_netlist(opt, rng);
    const ClsEncoding enc = cls_encode(n);
    enc.netlist.check_valid(false);
    BinarySimulator enc_sim(enc.netlist);
    enc_sim.set_state(enc.all_x_state());
    ClsSimulator cls(n);
    for (int cycle = 0; cycle < 12; ++cycle) {
      Trits in;
      for (std::size_t i = 0; i < n.primary_inputs().size(); ++i) {
        const auto r = rng.below(3);
        in.push_back(r == 0 ? kT0 : (r == 1 ? kT1 : kTX));
      }
      const Trits expected = cls.step(in);
      const Trits got = decode_trits(enc_sim.step(encode_trits(in)));
      EXPECT_EQ(got, expected) << "cycle " << cycle;
    }
  }
}

TEST(ClsEncode, SpareInputPatternBehavesLikeX) {
  // and2: feeding a = (d,u) = (1,1) must act exactly like a = X, because
  // the d rail is masked with !u at the boundary.
  const Netlist n = and2_circuit();
  const ClsEncoding enc = cls_encode(n);
  BinarySimulator sim(enc.netlist);
  sim.set_state({});
  // a = spare (1,1), b = 1  ->  X AND 1 = X = (0,1).
  EXPECT_EQ(sim.step(Bits{1, 1, 1, 0}), (Bits{0, 1}));
  // a = spare (1,1), b = 0  ->  X AND 0 = 0 = (0,0).
  EXPECT_EQ(sim.step(Bits{1, 1, 0, 0}), (Bits{0, 0}));
}

}  // namespace
}  // namespace rtv
