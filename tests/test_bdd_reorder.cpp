// Garbage collection + dynamic variable reordering suite for the BDD
// engine. The properties that matter:
//   * Semantics are order-independent: any function built before a sift
//     evaluates identically after it, under every assignment.
//   * Canonicity survives collection and reordering: rebuilding a function
//     after GC/reorder yields the SAME Ref as the remapped handle.
//   * Protected roots (BddHandle) survive collection; unprotected garbage
//     is actually reclaimed; peak live stays bounded under churn.
//   * Sifting genuinely reduces order-sensitive functions (the disjoint
//     quadratic form that is exponential under the wrong interleaving), and
//     on-pressure mode rescues workloads that exhaust a fixed-order table.
//   * SymbolicMachine keeps its partitioned == monolithic bit-identity with
//     GC + reordering on, and its state-variable pair groups stay adjacent
//     through every sift.

#include <gtest/gtest.h>

#include <algorithm>

#include "bdd/bdd.hpp"
#include "bdd/symbolic.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "test_helpers.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using Ref = BddManager::Ref;

/// The disjoint quadratic form OR_i (x_i ∧ x_{i+n}) over 2n variables:
/// linear-sized when the order interleaves each pair, exponential (~2^n
/// nodes) when the operands sit in two separated halves — the canonical
/// reordering workload.
Ref quadratic_form(BddManager& m, unsigned n) {
  BddHandle acc = m.protect(BddManager::kFalse);
  for (unsigned i = 0; i < n; ++i) {
    const Ref pair = m.bdd_and(m.var(i), m.var(i + n));
    acc.reset(&m, m.bdd_or(acc.get(), pair));
  }
  return acc.get();
}

/// Exhaustive semantic fingerprint of f over `vars` variables (vars <= 16).
std::vector<bool> truth_table(const BddManager& m, Ref f, unsigned vars) {
  std::vector<bool> tt;
  tt.reserve(std::size_t{1} << vars);
  std::vector<bool> assignment(m.num_vars(), false);
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << vars); ++x) {
    for (unsigned v = 0; v < vars; ++v) {
      assignment[v] = ((x >> v) & 1) != 0;
    }
    tt.push_back(m.evaluate(f, assignment));
  }
  return tt;
}

Netlist random_circuit(Rng& rng, unsigned latches, unsigned gates) {
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 2;
  opt.num_gates = gates;
  opt.num_latches = latches;
  opt.latch_after_gate_probability = 0.15;
  return random_netlist(opt, rng);
}

TEST(BddGc, CollectReclaimsGarbageAndKeepsProtectedRoots) {
  BddManager m(8);
  m.set_gc_enabled(true);
  Rng rng(7);

  // A protected function and a pile of unprotected garbage.
  const BddHandle kept = m.protect(quadratic_form(m, 4));
  const std::vector<bool> before = truth_table(m, kept.get(), 8);
  for (int i = 0; i < 200; ++i) {
    std::vector<Ref> ops;
    for (int j = 0; j < 4; ++j) {
      ops.push_back(rng.coin() ? m.var(static_cast<unsigned>(rng.index(8)))
                               : m.nvar(static_cast<unsigned>(rng.index(8))));
    }
    (void)m.bdd_xor_many(std::move(ops));
  }

  const std::size_t allocated = m.num_nodes();
  const std::size_t reclaimed = m.collect_garbage();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(m.num_nodes(), allocated - reclaimed);
  EXPECT_EQ(truth_table(m, kept.get(), 8), before);
  EXPECT_GE(m.stats().gc_runs, 1u);
  EXPECT_EQ(m.stats().nodes_reclaimed, reclaimed);

  // Canonicity after compaction: rebuilding the function finds the
  // remapped nodes, it does not duplicate them.
  EXPECT_EQ(quadratic_form(m, 4), kept.get());
}

TEST(BddGc, HandlesRemapCopyAndMoveAcrossCollections) {
  BddManager m(6);
  m.set_gc_enabled(true);
  BddHandle a = m.protect(m.bdd_and(m.var(0), m.var(3)));
  BddHandle copy = a;              // protects again
  const BddHandle moved = std::move(a);  // transfers the slot
  EXPECT_FALSE(a.engaged());       // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(moved.engaged());

  for (int i = 0; i < 100; ++i) {
    (void)m.bdd_xor(m.var(1), m.var(static_cast<unsigned>(i % 6)));
  }
  m.collect_garbage();
  EXPECT_EQ(copy.get(), moved.get());
  std::vector<bool> assignment(6, true);
  EXPECT_TRUE(m.evaluate(copy.get(), assignment));
  assignment[3] = false;
  EXPECT_FALSE(m.evaluate(copy.get(), assignment));

  // Re-assigning a handle releases the old root and protects the new one.
  copy.reset(&m, m.var(5));
  EXPECT_EQ(copy.get(), m.var(5));
}

TEST(BddGc, ChurnStaysBoundedWithAutomaticCollection) {
  // Heavy create-and-drop churn: automatic GC must keep the arena bounded
  // far below what append-only allocation would need. Each round builds a
  // distinct union-of-random-cubes function (hundreds of fresh nodes that
  // share almost nothing across rounds), so raw allocation crosses the
  // pressure trigger (node_limit / 2) again and again while the live set
  // stays tiny. Everything that survives a round rides in a BddHandle — a
  // collection can fire at any operator entry.
  constexpr unsigned kVars = 20;
  BddManager m(kVars, /*node_limit=*/1u << 16);
  m.set_gc_enabled(true);
  Rng rng(11);
  BddHandle kept;  // round 0's function, checked at the end
  std::vector<std::vector<bool>> samples;
  std::vector<bool> expected;
  for (int round = 0; round < 60; ++round) {
    BddHandle f = m.protect(BddManager::kFalse);
    for (int c = 0; c < 24; ++c) {
      BddHandle cube = m.protect(BddManager::kTrue);
      for (int j = 0; j < 7; ++j) {
        const unsigned v = static_cast<unsigned>(rng.index(kVars));
        const Ref lit = rng.coin() ? m.var(v) : m.nvar(v);
        cube.reset(&m, m.bdd_and(lit, cube.get()));
      }
      f.reset(&m, m.bdd_or(f.get(), cube.get()));
    }
    if (round == 0) {
      kept = f;
      for (int s = 0; s < 64; ++s) {
        std::vector<bool> assignment(kVars);
        for (unsigned v = 0; v < kVars; ++v) assignment[v] = rng.coin();
        expected.push_back(m.evaluate(kept.get(), assignment));
        samples.push_back(std::move(assignment));
      }
    }
    m.check_invariants();
  }
  const BddManager::EngineStats stats = m.stats();
  EXPECT_GE(stats.gc_runs, 1u);
  EXPECT_GT(stats.nodes_reclaimed, 0u);
  EXPECT_LE(stats.peak_live_nodes, stats.peak_nodes);
  // Most of what the churn allocated was collected again: the surviving
  // arena is a small fraction of everything ever built.
  EXPECT_GT(stats.nodes_reclaimed, static_cast<std::uint64_t>(m.num_nodes()));
  // The protected round-0 function survived every collection semantically
  // intact.
  for (std::size_t s = 0; s < samples.size(); ++s) {
    EXPECT_EQ(m.evaluate(kept.get(), samples[s]), expected[s]);
  }
}

TEST(BddReorder, SiftingShrinksTheQuadraticFormAndPreservesSemantics) {
  const unsigned n = 7;  // 14 vars: separated order ~2^7 nodes
  BddManager m(2 * n);
  m.set_gc_enabled(true);
  const BddHandle f = m.protect(quadratic_form(m, n));
  const std::vector<bool> before = truth_table(m, f.get(), 2 * n);
  const std::size_t size_before = m.size(f.get());

  m.reorder();

  EXPECT_GE(m.stats().reorder_runs, 1u);
  const std::size_t size_after = m.size(f.get());
  EXPECT_LT(size_after * 4, size_before)
      << "sifting should shrink the separated quadratic form by >=4x";
  EXPECT_EQ(truth_table(m, f.get(), 2 * n), before);

  // The order actually changed and level_of/variable_order agree.
  const std::vector<unsigned> order = m.variable_order();
  ASSERT_EQ(order.size(), 2 * n);
  for (unsigned level = 0; level < order.size(); ++level) {
    EXPECT_EQ(m.level_of(order[level]), level);
  }

  // Canonicity under the new order: rebuilding finds the same root.
  EXPECT_EQ(quadratic_form(m, n), f.get());
}

TEST(BddReorder, ExplicitReorderIsIdempotentOnAnOptimalOrder) {
  BddManager m(10);
  m.set_gc_enabled(true);
  const BddHandle f = m.protect(quadratic_form(m, 5));
  m.reorder();
  const std::size_t first = m.size(f.get());
  const std::vector<unsigned> order = m.variable_order();
  m.reorder();
  EXPECT_EQ(m.size(f.get()), first);
  EXPECT_EQ(m.variable_order(), order);
}

TEST(BddReorder, OnPressureRescuesAWorkloadThatExhaustsAFixedOrder) {
  const unsigned n = 10;  // separated order needs ~2^10 nodes; sifted ~3n
  const std::size_t tight_limit = 640;

  // Fixed order: the build must blow the node cap.
  {
    BddManager fixed(2 * n, tight_limit);
    EXPECT_THROW((void)quadratic_form(fixed, n), CapacityError);
  }

  // Same cap, reordering on pressure: the build completes and is correct.
  BddManager m(2 * n, tight_limit);
  m.set_gc_enabled(true);
  ReorderOptions opts;
  opts.mode = ReorderMode::kOnPressure;
  opts.trigger_nodes = 256;
  m.set_reorder_options(opts);
  const BddHandle f = m.protect(quadratic_form(m, n));
  EXPECT_GE(m.stats().reorder_runs, 1u);
  EXPECT_LT(m.size(f.get()), 128u);

  // Spot-check semantics on random assignments (2^20 is too many for the
  // exhaustive fingerprint).
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<bool> assignment(2 * n);
    for (auto&& bit : assignment) bit = rng.coin();
    bool expected = false;
    for (unsigned i = 0; i < n; ++i) {
      expected = expected || (assignment[i] && assignment[i + n]);
    }
    EXPECT_EQ(m.evaluate(f.get(), assignment), expected);
  }
}

TEST(BddReorder, CubesQuantificationAndRenameSurviveReordering) {
  BddManager m(8);
  m.set_gc_enabled(true);
  const BddHandle f = m.protect(quadratic_form(m, 4));
  m.reorder();

  // make_cube must stay canonical under the sifted order.
  const Ref cube = m.make_cube({0, 2, 5});
  EXPECT_EQ(cube, m.make_cube({5, 0, 2, 0}));

  // exists over the sifted order == semantic or-of-cofactors.
  const BddHandle exist = m.protect(m.exists(f.get(), {0, 4}));
  std::vector<bool> assignment(8, false);
  for (std::uint64_t x = 0; x < 256; ++x) {
    for (unsigned v = 0; v < 8; ++v) assignment[v] = ((x >> v) & 1) != 0;
    bool any = false;
    for (int a = 0; a < 2 && !any; ++a) {
      for (int b = 0; b < 2 && !any; ++b) {
        std::vector<bool> probe = assignment;
        probe[0] = a != 0;
        probe[4] = b != 0;
        any = m.evaluate(f.get(), probe);
      }
    }
    EXPECT_EQ(m.evaluate(exist.get(), assignment), any);
  }
}

TEST(BddReorder, GroupedPairsStayAdjacentThroughSifting) {
  // Machine-style grouping: pin (0,1), (2,3), (4,5) then build a function
  // that wants a very different order and sift.
  BddManager m(12);
  m.set_gc_enabled(true);
  for (unsigned v = 0; v < 6; v += 2) m.group_adjacent(v, 2);

  BddHandle acc = m.protect(BddManager::kFalse);
  for (unsigned i = 0; i < 6; ++i) {
    const Ref pair = m.bdd_and(m.var(i), m.var(i + 6));
    acc.reset(&m, m.bdd_or(acc.get(), pair));
  }
  const std::vector<bool> before = truth_table(m, acc.get(), 12);
  m.reorder();
  EXPECT_EQ(truth_table(m, acc.get(), 12), before);
  for (unsigned v = 0; v < 6; v += 2) {
    const unsigned l0 = m.level_of(v);
    const unsigned l1 = m.level_of(v + 1);
    EXPECT_EQ(l0 + 1, l1) << "group (" << v << "," << v + 1
                          << ") split by sifting";
  }
}

TEST(SymbolicReorder, PartitionedMatchesMonolithicWithGcAndReordering) {
  Rng rng(97);
  ReorderOptions opts;
  opts.mode = ReorderMode::kOnPressure;
  opts.trigger_nodes = 512;  // small enough to actually fire on 6-latch
                             // random circuits
  for (int trial = 0; trial < 8; ++trial) {
    const Netlist n = random_circuit(rng, 6, 24);
    SymbolicMachine sm(n, kDefaultBddNodeLimit, nullptr,
                       kDefaultClusterNodeCap, opts, /*gc_enabled=*/true);
    BddManager& m = sm.manager();
    Bits state(sm.num_latches());
    for (auto& v : state) v = rng.coin();
    const BddHandle init = m.protect(sm.state_cube(state));
    const BddHandle part = m.protect(sm.reachable(init.get()));
    const BddHandle mono = m.protect(sm.reachable_monolithic(init.get()));
    EXPECT_EQ(part.get(), mono.get())
        << "partitioned and monolithic reachability diverged with "
           "reordering enabled";
  }
}

TEST(SymbolicReorder, ReachableStateCountMatchesDefaultEngine) {
  Rng rng(1234);
  for (int trial = 0; trial < 5; ++trial) {
    const Netlist n = random_circuit(rng, 6, 20);
    SymbolicMachine plain(n);
    Bits state(plain.num_latches());
    for (auto& v : state) v = rng.coin();

    const double expected =
        plain.count_states(plain.reachable(plain.state_cube(state)));

    ReorderOptions opts;
    opts.mode = ReorderMode::kOnPressure;
    opts.trigger_nodes = 256;
    SymbolicMachine tuned(n, kDefaultBddNodeLimit, nullptr,
                          kDefaultClusterNodeCap, opts, /*gc_enabled=*/true);
    BddManager& m = tuned.manager();
    const BddHandle reach =
        m.protect(tuned.reachable(tuned.state_cube(state)));
    EXPECT_EQ(tuned.count_states(reach.get()), expected);

    // State pairs stay grouped inside the machine too.
    for (unsigned i = 0; i < tuned.num_latches(); ++i) {
      const unsigned ls = m.level_of(tuned.state_var(i));
      const unsigned ln = m.level_of(tuned.next_var(i));
      EXPECT_EQ(ls + 1, ln);
    }
  }
}

TEST(SymbolicReorder, SymbolicExactSimulatorAgreesOnPaperCircuit) {
  // End-to-end sanity on a known design: figure 1 with the simulator,
  // default vs GC'd manager behavior must agree (the simulator constructs
  // its machine with defaults; this guards the handle-based refactor).
  const Netlist n = figure1_original();
  SymbolicExactSimulator sim(n);
  sim.reset_all_powerup();
  Rng rng(5);
  for (int cycle = 0; cycle < 12; ++cycle) {
    Bits in(sim.num_inputs());
    for (auto& v : in) v = rng.coin();
    const Trits out = sim.step(in);
    EXPECT_EQ(out.size(), sim.num_outputs());
  }
}

}  // namespace
}  // namespace rtv
