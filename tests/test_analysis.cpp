// Tests for the static-analysis subsystem: structural lint diagnostics,
// the plan analyzer (paper Section 4 replayed without mutating the
// design), the JSON plan/report formats, and the JSON parser itself.

#include <algorithm>
#include <gtest/gtest.h>

#include "analysis/lint.hpp"
#include "core/flow.hpp"
#include "core/safety.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "io/json.hpp"
#include "io/rnl_format.hpp"
#include "retime/graph.hpp"
#include "retime/min_area.hpp"
#include "retime/min_period.hpp"
#include "retime/sequencer.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::and2_circuit;
using testing::inverter_pipeline;
using testing::toggle_circuit;

std::size_t count_code(const DiagnosticReport& report, DiagCode code) {
  return static_cast<std::size_t>(std::count_if(
      report.diagnostics().begin(), report.diagnostics().end(),
      [&](const Diagnostic& d) { return d.code == code; }));
}

// ---- structural lint -------------------------------------------------------

TEST(StructuralLint, CleanCircuitsProduceEmptyReports) {
  for (const Netlist& n : {inverter_pipeline(), and2_circuit()}) {
    const LintResult result = run_lint(n);
    EXPECT_TRUE(result.clean()) << render_text(result);
  }
}

TEST(StructuralLint, StuckAtXLatchesAreFlaggedOnlyBySemanticLint) {
  // toggle and Figure 1 are structurally sound, but their latches can never
  // leave the all-X power-up state: semantic lint warns RTV301; turning the
  // semantic stage off restores the purely structural (clean) verdict.
  for (const Netlist& n : {toggle_circuit(), figure1_original()}) {
    const LintResult result = run_lint(n);
    EXPECT_FALSE(result.clean()) << render_text(result);
    EXPECT_FALSE(result.has_errors()) << render_text(result);
    EXPECT_GE(count_code(result.diagnostics, DiagCode::kLatchNeverInitializes),
              1u);
    ASSERT_TRUE(result.dataflow_stats.has_value());
    EXPECT_GT(result.dataflow_stats->num_ports, 0u);

    LintOptions structural_only;
    structural_only.semantic = false;
    const LintResult off = run_lint(n, structural_only);
    EXPECT_TRUE(off.clean()) << render_text(off);
    EXPECT_FALSE(off.dataflow_stats.has_value());
  }
}

TEST(StructuralLint, AccumulatesEveryViolationNotJustTheFirst) {
  // Two separate defects: an unconnected AND pin and a dangling NOT.
  Netlist n;
  const NodeId in = n.add_input("in");
  const NodeId out = n.add_output("out");
  const NodeId a = n.add_gate(CellKind::kAnd, 2, "a");
  n.add_gate(CellKind::kNot, 0, "b");  // nothing connected at all
  n.connect(PortRef(in, 0), PinRef(a, 0));
  n.connect(PortRef(a, 0), PinRef(out, 0));

  const auto violations = n.structural_violations();
  EXPECT_GE(violations.size(), 2u);  // a.1 and b.0 both unconnected

  const LintResult result = run_lint(n);
  EXPECT_GE(count_code(result.diagnostics, DiagCode::kUnconnectedPin), 2u);
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kDanglingPort), 1u);
  EXPECT_TRUE(result.has_errors());
}

TEST(StructuralLint, CheckValidStillThrowsOnFirstViolation) {
  Netlist n;
  const NodeId a = n.add_gate(CellKind::kAnd, 2, "a");
  (void)a;
  EXPECT_THROW(n.check_valid(), InvalidArgument);
}

TEST(StructuralLint, ConnectRefusesASecondDriverSoRtv102IsDefenseInDepth) {
  // The public API cannot create a multi-driven pin (connect refuses), so
  // RTV102 only fires on corrupted in-memory structures; what we can pin
  // down here is the guard itself.
  Netlist n;
  const NodeId i0 = n.add_input("i0");
  const NodeId i1 = n.add_input("i1");
  const NodeId out = n.add_output("out");
  n.connect(PortRef(i0, 0), PinRef(out, 0));
  EXPECT_THROW(n.connect(PortRef(i1, 0), PinRef(out, 0)), InvalidArgument);
  EXPECT_TRUE(run_lint(n).clean());
}

TEST(StructuralLint, CombinationalCycleIsReported) {
  Netlist n;
  const NodeId in = n.add_input("in");
  const NodeId out = n.add_output("out");
  const NodeId a = n.add_gate(CellKind::kAnd, 2, "a");
  const NodeId b = n.add_gate(CellKind::kAnd, 2, "b");
  n.connect(PortRef(in, 0), PinRef(a, 0));
  n.connect(PortRef(b, 0), PinRef(a, 1));
  n.connect(PortRef(a, 0), PinRef(b, 0));
  n.connect(PortRef(a, 0), PinRef(b, 1));
  n.connect(PortRef(b, 0), PinRef(out, 0));

  const LintResult result = run_lint(n);
  EXPECT_GE(count_code(result.diagnostics, DiagCode::kCombinationalCycle), 1u);
  // The same netlist is also not junction-normal (a.0 and b.0 fan out).
  EXPECT_GE(count_code(result.diagnostics, DiagCode::kImplicitFanout), 1u);
}

TEST(StructuralLint, ImplicitFanoutSeverityFollowsOptions) {
  Netlist n;  // un-junctionized toggle: latch port fans out twice
  const NodeId in = n.add_input("in");
  const NodeId out = n.add_output("out");
  const NodeId t = n.add_latch("t");
  const NodeId x = n.add_gate(CellKind::kXor, 2, "x");
  n.connect(PortRef(t, 0), PinRef(x, 0));
  n.connect(PortRef(in, 0), PinRef(x, 1));
  n.connect(PortRef(x, 0), PinRef(t, 0));
  n.connect(PortRef(t, 0), PinRef(out, 0));

  const LintResult lax = run_lint(n);
  EXPECT_FALSE(lax.has_errors());
  EXPECT_EQ(count_code(lax.diagnostics, DiagCode::kImplicitFanout), 1u);

  LintOptions strict;
  strict.require_junction_normal = true;
  EXPECT_TRUE(run_lint(n, strict).has_errors());
}

TEST(StructuralLint, UnreachableCellWarnsAndCanBeDisabled) {
  Netlist n = and2_circuit();
  const NodeId orphan = n.add_gate(CellKind::kNot, 0, "orphan");
  n.connect(PortRef(n.find_by_name("a"), 0), PinRef(orphan, 0));
  // orphan's port dangles AND it cannot reach a primary output.
  const LintResult result = run_lint(n);
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kUnreachableCell), 1u);
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kDanglingPort), 1u);

  LintOptions quiet;
  quiet.warn_unreachable = false;
  EXPECT_EQ(count_code(run_lint(n, quiet).diagnostics,
                       DiagCode::kUnreachableCell),
            0u);
}

// ---- plan analysis ---------------------------------------------------------

TEST(PlanAnalysis, Figure1ForwardAcrossJ1IsTheOneUnsafeMove) {
  const Netlist d = figure1_original();
  const std::vector<RetimingMove> plan{
      {d.find_by_name("J1"), MoveDirection::kForward}};

  const LintResult result = run_lint(d, plan);
  ASSERT_TRUE(result.plan.has_value());
  EXPECT_TRUE(result.plan->analyzable);
  EXPECT_TRUE(result.plan->feasible);
  EXPECT_EQ(result.plan->k(), 1u);
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kUnsafeForwardMove), 1u);
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kSettleCertificate), 1u);
  EXPECT_FALSE(result.has_errors());
}

TEST(PlanAnalysis, Figure2BackwardAcrossJ1IsClean) {
  const Netlist c = figure1_retimed();
  const std::vector<RetimingMove> plan{
      {c.find_by_name("J1"), MoveDirection::kBackward}};

  const LintResult result = run_lint(c, plan);
  ASSERT_TRUE(result.plan.has_value());
  EXPECT_TRUE(result.plan->feasible);
  EXPECT_EQ(result.plan->k(), 0u);
  EXPECT_TRUE(result.plan->stats.preserves_safe_replacement());
  // The plan itself raises nothing; the only diagnostics are the semantic
  // RTV301s on Figure 1's stuck-at-X latches.
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kUnsafeForwardMove), 0u);
  EXPECT_EQ(result.diagnostics.size(),
            count_code(result.diagnostics, DiagCode::kLatchNeverInitializes))
      << render_text(result);
}

TEST(PlanAnalysis, JustifiableForwardMoveIsClean) {
  // NOT is justifiable: forward across it preserves safe replacement.
  const Netlist n = inverter_pipeline();
  const std::vector<RetimingMove> plan{
      {n.find_by_name("inv"), MoveDirection::kForward}};
  const LintResult result = run_lint(n, plan);
  ASSERT_TRUE(result.plan.has_value());
  EXPECT_TRUE(result.plan->feasible);
  EXPECT_EQ(result.plan->k(), 0u);
  EXPECT_TRUE(result.clean()) << render_text(result);
}

TEST(PlanAnalysis, DisabledMoveIsReportedNotApplied) {
  const Netlist n = toggle_circuit();
  // x has no latch on its 'in' pin: a forward move is not enabled.
  const std::vector<RetimingMove> plan{
      {n.find_by_name("x"), MoveDirection::kForward}};
  const LintResult result = run_lint(n, plan);
  ASSERT_TRUE(result.plan.has_value());
  EXPECT_TRUE(result.plan->analyzable);
  EXPECT_FALSE(result.plan->feasible);
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kMoveNotEnabled), 1u);
  EXPECT_TRUE(result.has_errors());
}

TEST(PlanAnalysis, BadElementsAreReported) {
  const Netlist n = toggle_circuit();
  const std::vector<RetimingMove> plan{
      {NodeId(), MoveDirection::kForward},                   // invalid id
      {n.find_by_name("t"), MoveDirection::kForward},        // a latch
  };
  const LintResult result = run_lint(n, plan);
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kBadPlanElement), 2u);
  EXPECT_FALSE(result.plan->feasible);
}

TEST(PlanAnalysis, MaxKBoundViolationIsAnError) {
  const Netlist d = figure1_original();
  const std::vector<RetimingMove> plan{
      {d.find_by_name("J1"), MoveDirection::kForward}};
  LintOptions opt;
  opt.max_k = 0;
  const LintResult result = run_lint(d, plan, opt);
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kDelayBoundExceeded), 1u);
  EXPECT_TRUE(result.has_errors());

  opt.max_k = 1;
  EXPECT_FALSE(run_lint(d, plan, opt).has_errors());
}

TEST(PlanAnalysis, NonJunctionNormalNetlistIsNotAnalyzable) {
  Netlist n;  // un-junctionized: latch port fans out twice
  const NodeId in = n.add_input("in");
  const NodeId out = n.add_output("out");
  const NodeId t = n.add_latch("t");
  const NodeId x = n.add_gate(CellKind::kXor, 2, "x");
  n.connect(PortRef(t, 0), PinRef(x, 0));
  n.connect(PortRef(in, 0), PinRef(x, 1));
  n.connect(PortRef(x, 0), PinRef(t, 0));
  n.connect(PortRef(t, 0), PinRef(out, 0));

  const std::vector<RetimingMove> plan{{x, MoveDirection::kForward}};
  const LintResult result = run_lint(n, plan);
  ASSERT_TRUE(result.plan.has_value());
  EXPECT_FALSE(result.plan->analyzable);
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kPlanNotAnalyzable), 1u);
}

// The acceptance criterion: the static analyzer must agree, move for move,
// with actually applying the sequence — while the input netlist stays
// byte-identical.
TEST(PlanAnalysis, AgreesWithAppliedSequenceOnRandomCircuits) {
  for (const std::uint64_t seed : {11u, 23u, 37u, 51u, 64u, 77u}) {
    Rng rng(seed);
    RandomCircuitOptions opt;
    opt.num_gates = 24;
    opt.num_latches = 6;
    opt.table_probability = 0.3;  // non-justifiable cells in the mix
    Netlist n = random_netlist(opt, rng);
    n.trim_dangling();
    n = n.compacted();

    const RetimeGraph g = RetimeGraph::from_netlist(n);
    const std::vector<int> lag = (seed % 2 == 0)
                                     ? min_area_retime(g).lag
                                     : min_period_retime_feas(g).lag;
    const SequencedRetiming seq = sequence_retiming(n, g, lag);
    if (seq.moves.empty()) continue;

    const std::string before = write_rnl(n);
    const PlanAnalysis plan = analyze_plan(n, seq.moves);
    EXPECT_EQ(write_rnl(n), before) << "analyze_plan mutated the netlist";

    ASSERT_TRUE(plan.analyzable) << plan.precondition_error;
    EXPECT_TRUE(plan.feasible);
    EXPECT_EQ(plan.stats, seq.stats) << "seed " << seed;
    ASSERT_EQ(plan.moves.size(), seq.moves.size());
    for (std::size_t i = 0; i < seq.moves.size(); ++i) {
      EXPECT_TRUE(plan.moves[i].enabled) << "move " << i;
      EXPECT_EQ(plan.moves[i].cls.justifiable, seq.classes[i].justifiable);
      EXPECT_EQ(plan.moves[i].cls.direction, seq.classes[i].direction);
    }
  }
}

TEST(Safety, SequencerReportIsStaticallyVerified) {
  const Netlist n = toggle_circuit();
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const SafetyReport report =
      analyze_lag_retiming(n, g, min_area_retime(g).lag);
  EXPECT_TRUE(report.statically_verified);
}

TEST(Safety, MoveSequenceReportIsStaticallyVerified) {
  const Netlist d = figure1_original();
  const std::vector<RetimingMove> plan{
      {d.find_by_name("J1"), MoveDirection::kForward}};
  const SafetyReport report = analyze_move_sequence(d, plan);
  EXPECT_TRUE(report.statically_verified);
  EXPECT_EQ(report.delay_bound, 1u);
}

// ---- flow precondition -----------------------------------------------------

TEST(FlowLint, BrokenInputIsRejectedUpFront) {
  Netlist n;
  n.add_input("in");
  n.add_gate(CellKind::kAnd, 2, "a");  // unconnected pins
  EXPECT_THROW(run_synthesis_flow(n), InvalidArgument);
}

TEST(FlowLint, CleanInputStillFlows) {
  const FlowReport r = run_synthesis_flow(toggle_circuit());
  EXPECT_TRUE(r.accepted());
}

// ---- plan JSON -------------------------------------------------------------

TEST(PlanJson, RoundTripsThroughText) {
  const Netlist d = figure1_original();
  const std::vector<RetimingMove> plan{
      {d.find_by_name("J1"), MoveDirection::kForward},
      {d.find_by_name("AND1"), MoveDirection::kBackward}};
  const RetimingPlan parsed = plan_from_json(plan_to_json(d, plan), d);
  EXPECT_EQ(parsed.moves, plan);
}

TEST(PlanJson, ResolvesByNameOrNode) {
  const Netlist d = figure1_original();
  const NodeId j1 = d.find_by_name("J1");
  const RetimingPlan by_name = plan_from_json(
      R"({"moves": [{"element": "J1", "direction": "forward"}]})", d);
  const RetimingPlan by_node = plan_from_json(
      R"({"moves": [{"node": )" + std::to_string(j1.value) +
          R"(, "direction": "forward"}]})",
      d);
  ASSERT_EQ(by_name.moves.size(), 1u);
  EXPECT_EQ(by_name.moves, by_node.moves);
  EXPECT_EQ(by_name.moves[0].element, j1);
}

TEST(PlanJson, RejectsMalformedPlans) {
  const Netlist d = figure1_original();
  EXPECT_THROW(plan_from_json("[]", d), ParseError);
  EXPECT_THROW(plan_from_json(R"({"moves": [{}]})", d), ParseError);
  EXPECT_THROW(plan_from_json(
                   R"({"moves": [{"element": "nope", "direction": "forward"}]})",
                   d),
               ParseError);
  EXPECT_THROW(plan_from_json(
                   R"({"moves": [{"element": "J1", "direction": "sideways"}]})",
                   d),
               ParseError);
}

// ---- JSON report shape -----------------------------------------------------

TEST(LintJson, ReportParsesAndHasTheDocumentedShape) {
  const Netlist d = figure1_original();
  const std::vector<RetimingMove> plan{
      {d.find_by_name("J1"), MoveDirection::kForward}};
  const LintResult result = run_lint(d, plan);
  const JsonValue doc = parse_json(render_json(result));

  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("rtv_lint_version")->as_number(), 1.0);

  // RTV201 (unsafe forward) + RTV301 (stuck-at-X latch) warnings; RTV205
  // (delay bound) + RTV305 (move statically certified: junctions preserve
  // all-X) notes. Canonical order sorts by code.
  const JsonValue* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("errors")->as_number(), 0.0);
  EXPECT_EQ(summary->find("warnings")->as_number(), 2.0);
  EXPECT_EQ(summary->find("notes")->as_number(), 2.0);
  EXPECT_FALSE(summary->find("clean")->as_bool());

  const JsonValue* dataflow = doc.find("dataflow");
  ASSERT_NE(dataflow, nullptr);
  EXPECT_GT(dataflow->find("ports")->as_number(), 0.0);

  const JsonValue* diags = doc.find("diagnostics");
  ASSERT_NE(diags, nullptr);
  ASSERT_EQ(diags->as_array().size(), 4u);
  const JsonValue& unsafe = diags->as_array()[0];
  EXPECT_EQ(unsafe.find("code")->as_string(), "RTV201");
  EXPECT_EQ(unsafe.find("severity")->as_string(), "warning");
  EXPECT_EQ(unsafe.find("name")->as_string(), "J1");
  EXPECT_EQ(unsafe.find("move")->as_number(), 0.0);
  EXPECT_EQ(diags->as_array()[1].find("code")->as_string(), "RTV205");
  EXPECT_EQ(diags->as_array()[2].find("code")->as_string(), "RTV301");
  const JsonValue& certified = diags->as_array()[3];
  EXPECT_EQ(certified.find("code")->as_string(), "RTV305");
  EXPECT_EQ(certified.find("severity")->as_string(), "note");
  EXPECT_EQ(certified.find("name")->as_string(), "J1");
  EXPECT_EQ(certified.find("move")->as_number(), 0.0);

  const JsonValue* p = doc.find("plan");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->find("analyzable")->as_bool());
  EXPECT_TRUE(p->find("feasible")->as_bool());
  EXPECT_EQ(p->find("moves")->as_number(), 1.0);
  EXPECT_EQ(p->find("forward_moves")->as_number(), 1.0);
  EXPECT_EQ(p->find("backward_moves")->as_number(), 0.0);
  EXPECT_EQ(p->find("forward_across_non_justifiable")->as_number(), 1.0);
  EXPECT_EQ(p->find("k")->as_number(), 1.0);
  EXPECT_FALSE(p->find("safe_replacement")->as_bool());
  EXPECT_FALSE(p->find("certificate")->as_string().empty());
}

TEST(LintJson, CleanReportIsCleanAndPlanless) {
  const JsonValue doc =
      parse_json(render_json(run_lint(inverter_pipeline())));
  EXPECT_TRUE(doc.find("summary")->find("clean")->as_bool());
  EXPECT_TRUE(doc.find("diagnostics")->as_array().empty());
  EXPECT_EQ(doc.find("plan"), nullptr);
}

// ---- JSON parser -----------------------------------------------------------

TEST(Json, ParsesScalarsAndNesting) {
  const JsonValue v = parse_json(
      R"({"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"})");
  EXPECT_EQ(v.find("a")->as_array()[0].as_number(), 1.0);
  EXPECT_EQ(v.find("a")->as_array()[1].as_number(), 2.5);
  EXPECT_EQ(v.find("a")->as_array()[2].as_number(), -300.0);
  EXPECT_TRUE(v.find("b")->find("c")->as_bool());
  EXPECT_TRUE(v.find("b")->find("d")->is_null());
  EXPECT_EQ(v.find("e")->as_string(), "x\ny");
}

TEST(Json, ParsesUnicodeEscapes) {
  // U+2291 SQUARE IMAGE OF OR EQUAL TO, the paper's ⊑.
  EXPECT_EQ(parse_json(R"("\u2291")").as_string(), "\xE2\x8A\x91");
  // Surrogate pair: U+1F600 GRINNING FACE.
  EXPECT_EQ(parse_json(R"("\uD83D\uDE00")").as_string(), "\xF0\x9F\x98\x80");
  // Lone surrogates are malformed.
  EXPECT_THROW(parse_json(R"("\uD83D")"), ParseError);
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\" 1}", "01", "1 2",
                          "\"unterminated", "{\"a\": }", "nul", "+1"}) {
    EXPECT_THROW(parse_json(bad), ParseError) << bad;
  }
}

TEST(Json, EscapeRoundTripsThroughParser) {
  const std::string nasty = "a\"b\\c\nd\te\x01 ⊑";
  EXPECT_EQ(parse_json("\"" + json_escape(nasty) + "\"").as_string(), nasty);
}

}  // namespace
}  // namespace rtv
