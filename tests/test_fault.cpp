#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "fault/test_eval.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "gen/shift.hpp"
#include "sim/binary_sim.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::and2_circuit;
using testing::toggle_circuit;

TEST(Fault, EnumerateCoversAllDrivenPorts) {
  const Netlist n = and2_circuit();
  const auto faults = enumerate_faults(n);
  // Ports with sinks: a, b, g = 3 ports x 2 polarities.
  EXPECT_EQ(faults.size(), 6u);
}

TEST(Fault, EnumerateSkipsDanglingPorts) {
  Netlist n;
  const NodeId a = n.add_input("a");
  (void)a;  // drives nothing
  EXPECT_TRUE(enumerate_faults(n).empty());
}

TEST(Fault, CollapseDropsBufferFaults) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId buf = n.add_gate(CellKind::kBuf, 0, "b");
  const NodeId o = n.add_output("o");
  n.connect(a, buf);
  n.connect(PortRef(buf, 0), PinRef(o, 0));
  const auto all = enumerate_faults(n);
  const auto kept = collapse_faults(n);
  EXPECT_EQ(all.size(), 4u);
  EXPECT_EQ(kept.size(), 2u);  // only the PI port survives
  for (const auto& f : kept) {
    EXPECT_NE(n.kind(f.site.node), CellKind::kBuf);
  }
}

TEST(Fault, DescribeFormat) {
  const Netlist n = and2_circuit();
  const Fault f = fault_on(n, "g", 0, true);
  EXPECT_EQ(describe(n, f), "g.0 s-a-1");
  EXPECT_EQ(describe(n, Fault{f.site, false}), "g.0 s-a-0");
}

TEST(Fault, FaultOnUnknownNameThrows) {
  const Netlist n = and2_circuit();
  EXPECT_THROW(fault_on(n, "zz", 0, true), InvalidArgument);
}

TEST(Fault, InjectStuckAtChangesFunction) {
  const Netlist n = and2_circuit();
  const Netlist sa1 = inject_fault(n, fault_on(n, "a", 0, true));
  BinarySimulator sim(sa1);
  // With input a stuck at 1: out = b.
  EXPECT_EQ(sim.step(bits_from_string("00")), bits_from_string("0"));
  EXPECT_EQ(sim.step(bits_from_string("01")), bits_from_string("1"));
}

TEST(Fault, InjectKeepsOriginalIntact) {
  const Netlist n = and2_circuit();
  const Netlist faulty = inject_fault(n, fault_on(n, "g", 0, false));
  BinarySimulator good(n), bad(faulty);
  EXPECT_EQ(good.step(bits_from_string("11")), bits_from_string("1"));
  EXPECT_EQ(bad.step(bits_from_string("11")), bits_from_string("0"));
}

TEST(TestEval, ResponsesDistinguishRules) {
  EXPECT_TRUE(responses_distinguish({{kT0}}, {{kT1}}));
  EXPECT_FALSE(responses_distinguish({{kT0}}, {{kT0}}));
  EXPECT_FALSE(responses_distinguish({{kTX}}, {{kT1}}));
  EXPECT_FALSE(responses_distinguish({{kT0}}, {{kTX}}));
  EXPECT_TRUE(responses_distinguish({{kTX}, {kT1}}, {{kTX}, {kT0}}));
  EXPECT_THROW(responses_distinguish({{kT0}}, {}), InvalidArgument);
}

TEST(TestEval, CombinationalFaultDetected) {
  const Netlist n = and2_circuit();
  const Fault f = fault_on(n, "g", 0, true);
  EXPECT_TRUE(test_detects(n, f, bits_seq_from_string("00")));
  EXPECT_FALSE(test_detects(n, f, bits_seq_from_string("11")));
}

TEST(TestEval, SequentialFaultNeedsPropagation) {
  // Toggle circuit: fault s-a-0 on the xor output freezes the latch at 0.
  const Netlist n = toggle_circuit();
  const Fault f = fault_on(n, "x", 0, false);
  // One cycle cannot detect (output reads the unknown power-up latch).
  EXPECT_FALSE(test_detects(n, f, bits_seq_from_string("1")));
  // Two cycles: good design outputs X then X? From {0,1}: after in=1 the
  // latch is definite complement... good: t2 out = s0^1 -> X. Use three:
  // in = 1,0,0 -> good latch after t1 = !s0 (X), t2 = !s0 ... still X.
  // Initialize first: in=... the toggle has no synchronizing input, so
  // definite detection needs the CLS-resettable structure — verify the
  // fault IS detected via a longer test with in=1 at t2:
  // faulty latch always 0 => outputs 0 forever; good outputs toggle: from
  // any s0, out(t3) with inputs (1,1,1): s0, s0^1, s0 — never definite.
  // Conclusion: this fault is undetectable under unknown power-up.
  EXPECT_FALSE(test_detects(n, f, bits_seq_from_string("1.1.1.0.1")));
}

TEST(TestEval, ShiftRegisterStuckAtDetectable) {
  const Netlist n = shift_register(2);
  const Fault f = fault_on(n, "si", 0, true);  // input net stuck at 1
  // Drive 0; after 2 cycles the good design emits 0, faulty emits 1.
  EXPECT_TRUE(test_detects(n, f, bits_seq_from_string("0.0.0")));
  EXPECT_FALSE(test_detects(n, f, bits_seq_from_string("1.1.1")));
}

TEST(TestEval, ClsDetectionImpliesExactDetection) {
  Rng rng(202);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 4;
  opt.num_gates = 15;
  int checked = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const auto faults = collapse_faults(n);
    for (std::size_t i = 0; i < faults.size() && i < 10; ++i) {
      BitsSeq test;
      for (int t = 0; t < 6; ++t) {
        Bits in(n.primary_inputs().size());
        for (auto& v : in) v = rng.coin();
        test.push_back(in);
      }
      if (cls_test_detects(n, faults[i], test)) {
        EXPECT_TRUE(test_detects(n, faults[i], test))
            << describe(n, faults[i]);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(TestEval, DelayedResponseShrinksStateSet) {
  // Figure-1 C: exact response after 1 warm-up cycle equals D's behaviour.
  const Netlist c = figure1_retimed();
  const BitsSeq test = bits_seq_from_string("0.1.1.1");
  EXPECT_EQ(sequence_to_string(exact_response(c, test)), "0.X.X.X");
  EXPECT_EQ(sequence_to_string(exact_response_delayed(c, test, 1)),
            "0.0.1.0");
}

TEST(FaultSim, ExactCoverage) {
  const Netlist n = and2_circuit();
  const std::vector<Fault> faults = enumerate_faults(n);
  const std::vector<BitsSeq> tests = {
      bits_seq_from_string("00"), bits_seq_from_string("01"),
      bits_seq_from_string("10"), bits_seq_from_string("11")};
  const FaultSimResult r = fault_simulate(n, faults, tests);
  // Every stuck-at fault in a 2-input AND cone is detectable by the 4
  // exhaustive vectors.
  EXPECT_EQ(r.num_detected, faults.size());
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
}

TEST(FaultSim, NoTestsNoCoverage) {
  const Netlist n = and2_circuit();
  const FaultSimResult r = fault_simulate(n, enumerate_faults(n), {});
  EXPECT_EQ(r.num_detected, 0u);
}

TEST(FaultSim, SampledAgreesWithExactOnCombinational) {
  // On a combinational cone the sampled detector must agree exactly
  // (power-up state is irrelevant).
  const Netlist n = and2_circuit();
  Rng rng(31);
  for (const Fault& f : enumerate_faults(n)) {
    for (const char* t : {"00", "01", "10", "11"}) {
      const BitsSeq test = bits_seq_from_string(t);
      EXPECT_EQ(test_detects(n, f, test),
                sampled_test_detects(n, f, test, 64, rng))
          << describe(n, f) << " on " << t;
    }
  }
}

TEST(FaultSim, SampledNeverUnderdetectsExact) {
  // Sampling power-up states can only make detection EASIER (fewer states
  // to disagree), so exact detection implies sampled detection.
  Rng rng(64);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 3;
  opt.num_gates = 12;
  for (int trial = 0; trial < 5; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const auto faults = collapse_faults(n);
    for (std::size_t i = 0; i < faults.size() && i < 8; ++i) {
      BitsSeq test;
      for (int t = 0; t < 5; ++t) {
        Bits in(n.primary_inputs().size());
        for (auto& v : in) v = rng.coin();
        test.push_back(in);
      }
      if (test_detects(n, faults[i], test)) {
        Rng srng(trial * 100 + i);
        EXPECT_TRUE(sampled_test_detects(n, faults[i], test, 256, srng));
      }
    }
  }
}

TEST(FaultSim, Figure3CoverageDropsUnderRetiming) {
  // Quantified Section 2.2: the 0.1 test detects the AND1 s-a-1 fault in D
  // but not in C; coverage of the same 1-test set drops.
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  const std::vector<BitsSeq> tests = {bits_seq_from_string("0.1")};
  const Fault fd = fault_on(d, kFigure3FaultGate, 0, true);
  const Fault fc = fault_on(c, kFigure3FaultGate, 0, true);
  const FaultSimResult rd = fault_simulate(d, {fd}, tests);
  const FaultSimResult rc = fault_simulate(c, {fc}, tests);
  EXPECT_EQ(rd.num_detected, 1u);
  EXPECT_EQ(rc.num_detected, 0u);
}

}  // namespace
}  // namespace rtv
