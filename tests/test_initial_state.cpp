// Tests for carrying initial states through retimings (retime/initial_state,
// the [TB93]-flavoured extension).

#include <gtest/gtest.h>

#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "retime/initial_state.hpp"
#include "sim/binary_sim.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::inverter_pipeline;

/// Runs both designs from their respective states on random inputs and
/// expects identical outputs (the defining property of a correctly
/// transported initial state).
void expect_equivalent_from(const Netlist& a, const Bits& sa,
                            const Netlist& b, const Bits& sb,
                            std::uint64_t seed) {
  BinarySimulator sima(a), simb(b);
  sima.set_state(sa);
  simb.set_state(sb);
  Rng rng(seed);
  for (int t = 0; t < 24; ++t) {
    Bits in(a.primary_inputs().size());
    for (auto& v : in) v = rng.coin();
    ASSERT_EQ(sima.step(in), simb.step(in)) << "cycle " << t;
  }
}

TEST(InitialState, ForwardMoveComputesNewState) {
  // Figure 1: D in state s retimes to C; the two branch latches both get
  // JUNC(s) = (s, s).
  for (const char* s0 : {"0", "1"}) {
    Netlist d = figure1_original();
    Bits state = bits_from_string(s0);
    const auto cls = apply_move_with_state(
        d, {d.find_by_name("J1"), MoveDirection::kForward}, state);
    ASSERT_TRUE(cls.has_value());
    EXPECT_FALSE(cls->justifiable);
    ASSERT_EQ(state.size(), 2u);
    EXPECT_EQ(state[0], state[1]);
    EXPECT_EQ(state[0], bits_from_string(s0)[0]);
    expect_equivalent_from(figure1_original(), bits_from_string(s0), d,
                           state, 42);
  }
}

TEST(InitialState, BackwardJunctionMoveJustifiesAgreeingLatches) {
  // C in state (v, v) justifies to D in state v.
  for (const char* s0 : {"00", "11"}) {
    Netlist c = figure1_retimed();
    Bits state = bits_from_string(s0);
    const auto cls = apply_move_with_state(
        c, {c.find_by_name("J1"), MoveDirection::kBackward}, state);
    ASSERT_TRUE(cls.has_value());
    ASSERT_EQ(state.size(), 1u);
    EXPECT_EQ(state[0], bits_from_string(s0)[0]);
    expect_equivalent_from(figure1_retimed(), bits_from_string(s0), c, state,
                           43);
  }
}

TEST(InitialState, BackwardJunctionMoveFailsOnDisagreeingLatches) {
  // C in state (1, 0): no input to JUNC can produce it — the exact states
  // retiming manufactured in Section 2.1 cannot be justified away.
  for (const char* s0 : {"10", "01"}) {
    Netlist c = figure1_retimed();
    const Netlist before = c;
    Bits state = bits_from_string(s0);
    const auto cls = apply_move_with_state(
        c, {c.find_by_name("J1"), MoveDirection::kBackward}, state);
    EXPECT_FALSE(cls.has_value());
    // Netlist and state untouched on failure.
    EXPECT_EQ(state, bits_from_string(s0));
    EXPECT_EQ(c.num_latches(), 2u);
  }
}

TEST(InitialState, BackwardAcrossInverterInverts) {
  Netlist n = inverter_pipeline();
  Bits state = bits_from_string("10");  // L0 = 1, L1 = 0
  const auto cls = apply_move_with_state(
      n, {n.find_by_name("inv"), MoveDirection::kBackward}, state);
  ASSERT_TRUE(cls.has_value());
  expect_equivalent_from(inverter_pipeline(), bits_from_string("10"), n,
                         state, 44);
}

TEST(InitialState, ForwardAcrossInverterInverts) {
  Netlist n = inverter_pipeline();
  Bits state = bits_from_string("10");
  const auto cls = apply_move_with_state(
      n, {n.find_by_name("inv"), MoveDirection::kForward}, state);
  ASSERT_TRUE(cls.has_value());
  // The latch moves across the inverter: its value flips.
  expect_equivalent_from(inverter_pipeline(), bits_from_string("10"), n,
                         state, 45);
}

TEST(InitialState, SequenceTransport) {
  Netlist n = inverter_pipeline();
  const std::vector<RetimingMove> moves{
      {n.find_by_name("inv"), MoveDirection::kForward},
      {n.find_by_name("inv"), MoveDirection::kBackward},
      {n.find_by_name("inv"), MoveDirection::kBackward}};
  Netlist work = n;
  const auto state =
      retime_initial_state(work, moves, bits_from_string("01"));
  ASSERT_TRUE(state.has_value());
  expect_equivalent_from(n, bits_from_string("01"), work, *state, 46);
}

TEST(InitialState, RandomizedTransportPreservesBehaviour) {
  // Property: any applicable move sequence with transported state keeps
  // the two designs output-equivalent from their respective states.
  Rng rng(777);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 2;
  opt.num_gates = 14;
  opt.num_latches = 4;
  opt.latch_after_gate_probability = 0.3;
  int transported = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Netlist original = random_netlist(opt, rng);
    Netlist work = original;
    Bits state(original.num_latches());
    for (auto& v : state) v = rng.coin();
    const Bits initial = state;
    int applied = 0;
    for (int step = 0; step < 8; ++step) {
      const auto moves = enabled_moves(work);
      if (moves.empty()) break;
      const RetimingMove m = moves[rng.index(moves.size())];
      if (apply_move_with_state(work, m, state)) ++applied;
    }
    if (applied == 0) continue;
    ++transported;
    expect_equivalent_from(original, initial, work, state, 1000 + trial);
  }
  EXPECT_GT(transported, 0);
}

TEST(InitialState, StateSizeMismatchRejected) {
  Netlist n = inverter_pipeline();
  Bits wrong(1, 0);
  EXPECT_THROW(apply_move_with_state(
                   n, {n.find_by_name("inv"), MoveDirection::kForward}, wrong),
               InvalidArgument);
}

TEST(Justify, TruthTableJustification) {
  const TruthTable junc = TruthTable::junc(2);
  EXPECT_EQ(junc.justify(0b00), std::optional<std::uint64_t>{0});
  EXPECT_EQ(junc.justify(0b11), std::optional<std::uint64_t>{1});
  EXPECT_FALSE(junc.justify(0b01).has_value());
  EXPECT_FALSE(junc.justify(0b10).has_value());
  const TruthTable fa = TruthTable::full_adder();
  for (std::uint64_t y = 0; y < 4; ++y) {
    const auto x = fa.justify(y);
    ASSERT_TRUE(x.has_value());
    EXPECT_EQ(fa.eval_row(*x), y);
  }
}

}  // namespace
}  // namespace rtv
