// Overload resilience of the serve subsystem: admission control and load
// shedding, deadline propagation with in-queue expiry, the stuck-job
// watchdog (kill, quarantine, recovery), slow-reader write timeouts, and a
// chaos client throwing malformed traffic and floods at a real socket.
// Everything here drives the same Server the production CLI runs; the
// chaos_* simulate handlers are gated behind ServeOptions::chaos_hooks and
// give the tests deterministic slot occupancy.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/paper_circuits.hpp"
#include "io/json.hpp"
#include "io/rnl_format.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "test_helpers.hpp"
#include "util/fault_inject.hpp"

namespace rtv {
namespace {

using serve::ErrorCode;
using serve::Server;
using serve::ServeOptions;
using serve::ServeStats;
using Clock = std::chrono::steady_clock;

std::string toggle_text() { return write_rnl(testing::toggle_circuit()); }

std::string frame(const std::string& id, const std::string& type,
                  const std::string& extra = "") {
  std::string f = "{\"rtv_serve\":1,\"id\":\"" + id + "\",\"type\":\"" +
                  type + "\"";
  if (!extra.empty()) f += "," + extra;
  f += "}";
  return f;
}

std::string design_field(const std::string& rnl) {
  return "\"design\":\"" + json_escape(rnl) + "\"";
}

JsonValue parse_response(const std::string& line) {
  JsonValue doc = parse_json(line);
  EXPECT_EQ(serve::validate_response(doc), "") << line;
  return doc;
}

bool response_ok(const JsonValue& doc) {
  return doc.find("ok") != nullptr && doc.find("ok")->as_bool();
}

std::string error_code(const JsonValue& doc) {
  const JsonValue* error = doc.find("error");
  return error == nullptr ? "" : error->find("code")->as_string();
}

/// A slot-occupying simulate job: spins for `ms` holding its slot.
/// Cooperative spins poll their CancellationToken; uncooperative ones
/// emulate a wedged backend that ignores it.
std::string spin_frame(const std::string& id, std::uint64_t ms,
                       bool cooperative, std::uint64_t deadline_ms = 0) {
  std::ostringstream os;
  os << "{\"rtv_serve\":1,\"id\":\"" << id << "\",\"type\":\"simulate\","
     << design_field(toggle_text()) << ",\"options\":{\""
     << (cooperative ? "chaos_spin_cooperative_ms" : "chaos_spin_ms")
     << "\":" << ms << "}";
  if (deadline_ms != 0) os << ",\"deadline_ms\":" << deadline_ms;
  os << "}";
  return os.str();
}

ServeOptions chaos_server_options() {
  ServeOptions options;
  options.threads = 4;
  options.max_inflight = 1;
  options.admission_queue = 1;
  options.chaos_hooks = true;
  return options;
}

/// Polls `predicate` on the server's stats until it holds or `budget_ms`
/// elapses; returns whether it held.
bool wait_for(const Server& server, std::uint64_t budget_ms,
              bool (*predicate)(const ServeStats&)) {
  const auto until = Clock::now() + std::chrono::milliseconds(budget_ms);
  while (Clock::now() < until) {
    if (predicate(server.stats())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate(server.stats());
}

// ---------------------------------------------------------------------------
// Admission control + load shedding

TEST(ServeOverload, ShedsWithRetryAfterWhenSlotAndQueueAreFull) {
  Server server(chaos_server_options());  // 1 slot, queue depth 1
  std::string slot_response;
  std::string queue_response;
  std::thread slot([&] {
    slot_response = server.handle_line(spin_frame("slot", 400, true));
  });
  ASSERT_TRUE(wait_for(server, 2000,
                       [](const ServeStats& s) { return s.inflight == 1; }));
  std::thread queued([&] {
    queue_response = server.handle_line(spin_frame("queued", 1, true));
  });
  ASSERT_TRUE(wait_for(server, 2000,
                       [](const ServeStats& s) { return s.queued == 1; }));

  // Slot busy, queue full: the next job is shed immediately — no blocking
  // — with the overloaded envelope and a positive backoff hint.
  const auto start = Clock::now();
  const JsonValue shed = parse_response(server.handle_line(
      frame("shed", "lint", design_field(toggle_text()))));
  const double shed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  EXPECT_FALSE(response_ok(shed));
  EXPECT_EQ(error_code(shed), "overloaded");
  const JsonValue* retry = shed.find("error")->find("retry_after_ms");
  ASSERT_NE(retry, nullptr);
  EXPECT_GE(retry->as_number(), 1.0);
  EXPECT_EQ(shed.find("error")->find("expired_in_queue"), nullptr);
  EXPECT_LT(shed_ms, 300.0);  // shed, not queued behind the 400ms spinner

  slot.join();
  queued.join();
  EXPECT_TRUE(response_ok(parse_response(slot_response)));
  EXPECT_TRUE(response_ok(parse_response(queue_response)));

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.jobs_shed, 1u);
  EXPECT_EQ(stats.jobs_rejected, 1u);
  EXPECT_EQ(stats.jobs_accepted, 2u);
  EXPECT_EQ(stats.jobs_done, 2u);
  EXPECT_EQ(stats.jobs_accepted, stats.jobs_done + stats.jobs_failed);
}

TEST(ServeOverload, HealthAnswersInlineWhileSaturated) {
  Server server(chaos_server_options());
  std::string slot_response;
  std::string queue_response;
  std::thread slot([&] {
    slot_response = server.handle_line(spin_frame("slot", 400, true));
  });
  ASSERT_TRUE(wait_for(server, 2000,
                       [](const ServeStats& s) { return s.inflight == 1; }));
  std::thread queued([&] {
    queue_response = server.handle_line(spin_frame("queued", 1, true));
  });
  ASSERT_TRUE(wait_for(server, 2000,
                       [](const ServeStats& s) { return s.queued == 1; }));

  // health bypasses the admission queue entirely: answered inline, fast,
  // and honest about the saturation.
  const auto start = Clock::now();
  const JsonValue health =
      parse_response(server.handle_line(frame("h", "health")));
  const double health_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  ASSERT_TRUE(response_ok(health));
  EXPECT_LT(health_ms, 300.0);
  const JsonValue* result = health.find("result");
  EXPECT_EQ(result->find("status")->as_string(), "overloaded");
  EXPECT_EQ(result->find("inflight")->as_number(), 1.0);
  EXPECT_EQ(result->find("queued")->as_number(), 1.0);
  EXPECT_EQ(result->find("quarantined")->as_number(), 0.0);
  EXPECT_EQ(result->find("max_inflight")->as_number(), 1.0);
  EXPECT_EQ(result->find("admission_queue")->as_number(), 1.0);

  slot.join();
  queued.join();
  const JsonValue idle =
      parse_response(server.handle_line(frame("h2", "health")));
  EXPECT_EQ(idle.find("result")->find("status")->as_string(), "ok");
}

// ---------------------------------------------------------------------------
// Deadline propagation + queue expiry

TEST(ServeOverload, DeadlineExpiredInQueueIsRejectedWithoutRunning) {
  Server server(chaos_server_options());
  std::string slot_response;
  std::thread slot([&] {
    // Uncooperative, no deadline: holds the only slot for 300ms.
    slot_response = server.handle_line(spin_frame("slot", 300, false));
  });
  ASSERT_TRUE(wait_for(server, 2000,
                       [](const ServeStats& s) { return s.inflight == 1; }));

  // 40ms deadline against a 300ms occupant: the job must die in the queue
  // and be rejected without its handler ever running.
  const JsonValue expired = parse_response(server.handle_line(
      spin_frame("doomed", 5000, true, /*deadline_ms=*/40)));
  EXPECT_FALSE(response_ok(expired));
  EXPECT_EQ(error_code(expired), "overloaded");
  const JsonValue* flag = expired.find("error")->find("expired_in_queue");
  ASSERT_NE(flag, nullptr);
  EXPECT_TRUE(flag->as_bool());
  ASSERT_NE(expired.find("error")->find("retry_after_ms"), nullptr);

  slot.join();
  EXPECT_TRUE(response_ok(parse_response(slot_response)));
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.jobs_expired, 1u);
  EXPECT_EQ(stats.jobs_accepted, 2u);
  EXPECT_EQ(stats.jobs_done, 1u);
  EXPECT_EQ(stats.jobs_failed, 1u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.queued, 0u);
}

// ---------------------------------------------------------------------------
// Watchdog: cooperative cancellation and wedged-job quarantine

TEST(ServeOverload, WatchdogCancelsACooperativeJobAtItsDeadline) {
  Server server(chaos_server_options());
  // Asks for 5 seconds of spin but promises a 60ms deadline; the watchdog
  // fires its token and the cooperative handler yields early.
  const JsonValue doc = parse_response(server.handle_line(
      spin_frame("coop", 5000, true, /*deadline_ms=*/60)));
  ASSERT_TRUE(response_ok(doc));
  const JsonValue* result = doc.find("result");
  EXPECT_TRUE(result->find("cancelled")->as_bool());
  EXPECT_LT(result->find("spun_ms")->as_number(), 2500.0);
  const ServeStats stats = server.stats();
  EXPECT_GE(stats.watchdog_kills, 1u);
  EXPECT_EQ(stats.watchdog_wedged, 0u);
  EXPECT_EQ(stats.quarantined, 0u);
}

TEST(ServeOverload, WatchdogQuarantinesAWedgedJobAndCapacityRecovers) {
  ServeOptions options = chaos_server_options();
  options.watchdog_grace = 1;  // wedged one deadline-span past the kill
  Server server(options);

  // The wedge: ignores its token and spins 800ms against a 50ms deadline.
  // Kill fires at ~50ms, quarantine at ~100ms (grace 1 x 50ms span).
  std::string wedged_response;
  std::thread wedged([&] {
    wedged_response = server.handle_line(
        spin_frame("wedged", 800, false, /*deadline_ms=*/50));
  });
  ASSERT_TRUE(wait_for(server, 4000, [](const ServeStats& s) {
    return s.quarantined == 1;
  }));
  {
    const ServeStats stats = server.stats();
    EXPECT_GE(stats.watchdog_kills, 1u);
    EXPECT_EQ(stats.watchdog_wedged, 1u);
    EXPECT_EQ(stats.inflight, 0u);  // the slot was written off, not leaked
  }

  // Usable capacity is back while the zombie still spins: a fresh job
  // starts and completes on the freed slot.
  const JsonValue fresh = parse_response(server.handle_line(
      frame("fresh", "lint", design_field(toggle_text()))));
  EXPECT_TRUE(response_ok(fresh));

  // When the zombie finally yields it still answers its client, and the
  // quarantine is lifted — degraded was temporary, not permanent.
  wedged.join();
  EXPECT_TRUE(response_ok(parse_response(wedged_response)));
  ASSERT_TRUE(wait_for(server, 2000, [](const ServeStats& s) {
    return s.quarantined == 0;
  }));
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.watchdog_wedged, 1u);
  EXPECT_EQ(stats.jobs_accepted, stats.jobs_done + stats.jobs_failed);
}

// ---------------------------------------------------------------------------
// Synthetic faults over the admission checkpoints

TEST(ServeOverload, FaultInjectionSweepsTheAdmissionPath) {
  Server server(chaos_server_options());
  const std::string request =
      frame("f", "lint", design_field(toggle_text()));

  // Checkpoint 1, "serve.admit": synthetic shed.
  fault_inject::arm(1);
  const JsonValue shed = parse_response(server.handle_line(request));
  fault_inject::disarm();
  EXPECT_EQ(error_code(shed), "overloaded");
  ASSERT_NE(shed.find("error")->find("retry_after_ms"), nullptr);

  // Checkpoint 2, "serve.start": synthetic in-queue expiry.
  fault_inject::arm(2);
  const JsonValue expired = parse_response(server.handle_line(request));
  fault_inject::disarm();
  EXPECT_EQ(error_code(expired), "overloaded");
  const JsonValue* flag = expired.find("error")->find("expired_in_queue");
  ASSERT_NE(flag, nullptr);
  EXPECT_TRUE(flag->as_bool());

  // Disarmed, the same request sails through — the server survived both.
  EXPECT_TRUE(response_ok(parse_response(server.handle_line(request))));
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.jobs_shed, 1u);
  EXPECT_EQ(stats.jobs_expired, 1u);
  EXPECT_EQ(stats.jobs_accepted, stats.jobs_done + stats.jobs_failed);
}

// ---------------------------------------------------------------------------
// Chaos over a real socket

std::string unique_socket_path(const char* tag) {
  const char* tmp = std::getenv("TMPDIR");
  std::ostringstream os;
  os << ((tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp")
     << "/rtv-overload-" << tag << "-" << ::getpid() << ".sock";
  return os.str();
}

/// Minimal blocking NDJSON client over a Unix-domain socket.
class LineClient {
 public:
  explicit LineClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    EXPECT_LT(socket_path.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    int rc = -1;
    for (int attempt = 0; attempt < 200; ++attempt) {
      rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
      if (rc == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(rc, 0) << std::strerror(errno);
  }

  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Sends raw bytes — no framing, so chaos payloads go out verbatim.
  void send_raw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }


  void send_line(const std::string& line) { send_raw(line + "\n"); }

  /// Like send_line, but a peer hang-up (EPIPE/ECONNRESET) is reported as
  /// false instead of a test failure — the slow-reader test *wants* the
  /// server to sever the connection while the flood is still going out.
  bool try_send_line(const std::string& line) {
    const std::string wire = line + "\n";
    std::size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads one response line; fails the test if the peer hangs up first.
  std::string recv_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      EXPECT_GT(n, 0) << "connection closed before a full line arrived";
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Runs serve_socket on a background thread; shut_down() drains and joins.
class SocketServer {
 public:
  SocketServer(const ServeOptions& options, const char* tag)
      : server_(options), path_(unique_socket_path(tag)) {
    thread_ = std::thread([this] { server_.serve_socket(path_); });
  }

  ~SocketServer() {
    if (thread_.joinable()) shut_down();
  }

  void shut_down() {
    LineClient client(path_);
    client.send_line(frame("bye", "shutdown"));
    client.recv_line();
    thread_.join();
  }

  Server& server() { return server_; }
  const std::string& path() const { return path_; }

 private:
  Server server_;
  std::string path_;
  std::thread thread_;
};

TEST(ServeOverload, ChaosFramesNeverKillTheServer) {
  ServeOptions options = chaos_server_options();
  options.max_request_bytes = 4096;
  SocketServer harness(options, "chaos");

  {  // Garbage bytes, then a valid frame on the same connection.
    LineClient client(harness.path());
    client.send_line("\x01\x02\xff{{{not json");
    EXPECT_EQ(error_code(parse_response(client.recv_line())),
              "bad_request");
    client.send_line(frame("after-garbage", "health"));
    EXPECT_TRUE(response_ok(parse_response(client.recv_line())));
  }
  {  // Half a frame, then the client vanishes mid-line.
    LineClient client(harness.path());
    client.send_raw("{\"rtv_serve\":1,\"id\":\"half");
  }
  {  // An oversized frame is rejected, not buffered forever.
    LineClient client(harness.path());
    client.send_line("{\"pad\":\"" + std::string(8192, 'x') + "\"}");
    EXPECT_EQ(error_code(parse_response(client.recv_line())),
              "bad_request");
  }
  {  // A client that sends a real job and disconnects before the answer.
    LineClient client(harness.path());
    client.send_line(spin_frame("abandoned", 50, true));
  }

  // After all of that the server still does real work.
  LineClient client(harness.path());
  client.send_line(frame("still-alive", "lint",
                         design_field(toggle_text())));
  const JsonValue doc = parse_response(client.recv_line());
  EXPECT_TRUE(response_ok(doc));
  harness.shut_down();
}

TEST(ServeOverload, FloodAtFourTimesCapacityAnswersEveryFrameOnce) {
  ServeOptions options;
  options.threads = 4;
  options.max_inflight = 2;
  options.admission_queue = 2;
  options.chaos_hooks = true;
  SocketServer harness(options, "flood");

  // 4 clients x 16 jobs against 2 slots + 2 queue places: far beyond
  // capacity. Every id must come back exactly once, as success or as an
  // overloaded rejection — never silently dropped, never duplicated.
  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 16;
  std::vector<std::map<std::string, std::string>> outcomes(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      LineClient client(harness.path());
      for (int j = 0; j < kJobsPerClient; ++j) {
        const std::string id =
            "c" + std::to_string(c) + "-" + std::to_string(j);
        client.send_line(spin_frame(id, 3, true));
      }
      for (int j = 0; j < kJobsPerClient; ++j) {
        const JsonValue doc = parse_response(client.recv_line());
        const std::string id = doc.find("id")->as_string();
        const std::string outcome =
            response_ok(doc) ? "ok" : error_code(doc);
        EXPECT_EQ(outcomes[c].count(id), 0u) << "duplicate response " << id;
        outcomes[c][id] = outcome;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  std::uint64_t ok_count = 0;
  std::uint64_t shed_count = 0;
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(outcomes[c].size(), static_cast<std::size_t>(kJobsPerClient))
        << "client " << c;
    for (const auto& [id, outcome] : outcomes[c]) {
      if (outcome == "ok") {
        ++ok_count;
      } else {
        EXPECT_EQ(outcome, "overloaded") << id;
        ++shed_count;
      }
    }
  }
  EXPECT_GT(ok_count, 0u);

  // A response is written before its slot is released, so the last job can
  // still be winding down when its client reads the answer: wait for true
  // quiescence before asserting the counter invariant.
  ASSERT_TRUE(wait_for(harness.server(), 2000, [](const ServeStats& s) {
    return s.inflight == 0 && s.queued == 0;
  }));
  const ServeStats stats = harness.server().stats();
  EXPECT_EQ(stats.jobs_done, ok_count);
  EXPECT_EQ(stats.jobs_shed + stats.jobs_expired, shed_count);
  EXPECT_EQ(stats.jobs_accepted, stats.jobs_done + stats.jobs_failed);
  harness.shut_down();
}

// ---------------------------------------------------------------------------
// Slow-reader backpressure (satellite: a stalled client must not wedge
// the pool past the write timeout)

TEST(ServeOverload, SlowReaderIsSeveredAndHealthyClientsKeepFlowing) {
  ServeOptions options;
  options.threads = 2;
  options.max_inflight = 2;
  options.admission_queue = 64;
  options.write_timeout_ms = 150;
  SocketServer harness(options, "slowreader");

  // The slow reader: pours in lint jobs and never reads a byte back.
  // Responses pile up until the socket buffer fills; the next write times
  // out after 150ms and the connection is severed instead of wedging the
  // writer forever.
  LineClient slow(harness.path());
  const std::string design = design_field(toggle_text());
  for (int j = 0; j < 3000; ++j) {
    // The server is expected to sever us mid-flood; a broken pipe here is
    // the severance arriving, not an error.
    if (!slow.try_send_line(
            frame("slow-" + std::to_string(j), "lint", design))) {
      break;
    }
  }

  const auto until = Clock::now() + std::chrono::seconds(20);
  while (Clock::now() < until &&
         harness.server().stats().write_timeouts == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(harness.server().stats().write_timeouts, 1u);

  // A healthy client on its own connection gets answers throughout — each
  // frame answered promptly, and an overloaded rejection (the flood's
  // backlog is real load) obeyed as the protocol intends: back off and
  // retry until the shed jobs drain and the lint goes through.
  LineClient healthy(harness.path());
  bool served = false;
  for (int attempt = 0; attempt < 200 && !served; ++attempt) {
    const auto start = Clock::now();
    healthy.send_line(
        frame("healthy-" + std::to_string(attempt), "lint", design));
    const JsonValue doc = parse_response(healthy.recv_line());
    const double answer_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    EXPECT_LT(answer_ms, 5000.0);  // never wedged behind the dead writer
    if (response_ok(doc)) {
      served = true;
    } else {
      ASSERT_EQ(error_code(doc), "overloaded");
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  EXPECT_TRUE(served);
  harness.shut_down();
}

}  // namespace
}  // namespace rtv
