// CI check that the examples in the documentation stay real: every fenced
// ```rnl code block in docs/*.md must parse, pass check_valid, and
// round-trip through write_rnl/read_rnl to a fixed point; every ```json
// block must round-trip through the io/json codec, and serve wire-protocol
// frames must satisfy the real request parser / response validator.
// RTV_DOCS_DIR is injected by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "io/rnl_format.hpp"
#include "serve/protocol.hpp"

namespace rtv {
namespace {

struct DocExample {
  std::string file;
  std::size_t line = 0;  ///< line of the opening fence
  std::string text;
};

std::string read_file(const std::filesystem::path& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return buffer.str();
}

/// Extracts every fenced block with the given tag from one markdown file.
void extract_blocks(const std::filesystem::path& path, const std::string& tag,
                    std::vector<DocExample>* out) {
  const std::string fence = "```" + tag;
  std::istringstream is(read_file(path));
  std::string line;
  std::size_t line_no = 0;
  bool in_block = false;
  DocExample current;
  while (std::getline(is, line)) {
    ++line_no;
    if (!in_block) {
      if (line.rfind(fence, 0) == 0) {
        in_block = true;
        current = DocExample{path.filename().string(), line_no, ""};
      }
    } else if (line.rfind("```", 0) == 0) {
      in_block = false;
      out->push_back(std::move(current));
    } else {
      current.text += line;
      current.text += '\n';
    }
  }
  EXPECT_FALSE(in_block) << path << ": unterminated ```" << tag << " fence";
}

void extract_rnl_blocks(const std::filesystem::path& path,
                        std::vector<DocExample>* out) {
  extract_blocks(path, "rnl", out);
}

std::vector<DocExample> all_doc_examples() {
  std::vector<DocExample> examples;
  for (const auto& entry :
       std::filesystem::directory_iterator(RTV_DOCS_DIR)) {
    if (entry.path().extension() == ".md") {
      extract_rnl_blocks(entry.path(), &examples);
    }
  }
  return examples;
}

TEST(DocsExamples, RnlBlocksArePresent) {
  // formats.md carries at least the toggle and the half-adder example; if
  // this shrinks, blocks lost their ```rnl tag and escaped CI coverage.
  EXPECT_GE(all_doc_examples().size(), 2u);
}

TEST(DocsExamples, EveryRnlBlockParsesAndRoundTrips) {
  for (const DocExample& example : all_doc_examples()) {
    SCOPED_TRACE(example.file + " fence at line " +
                 std::to_string(example.line));
    Netlist first;
    ASSERT_NO_THROW(first = read_rnl(example.text)) << example.text;
    ASSERT_NO_THROW(first.check_valid(true));
    // write_rnl(read_rnl(x)) must be a fixed point of the serializer.
    const std::string canonical = write_rnl(first);
    Netlist second;
    ASSERT_NO_THROW(second = read_rnl(canonical)) << canonical;
    EXPECT_EQ(write_rnl(second), canonical);
    // The round trip preserves the interface shape.
    EXPECT_EQ(second.primary_inputs().size(), first.primary_inputs().size());
    EXPECT_EQ(second.primary_outputs().size(), first.primary_outputs().size());
    EXPECT_EQ(second.latches().size(), first.latches().size());
  }
}

// ---------------------------------------------------------------------------
// docs/serve.md: every ```json block must round-trip through the real codec,
// and every wire frame must satisfy the real protocol schema — request
// frames ("rtv_serve" present, no "ok") go through parse_request, response
// frames ("ok" present) through validate_response. The published protocol
// reference IS a test vector set.

std::vector<DocExample> all_json_examples() {
  std::vector<DocExample> examples;
  for (const auto& entry :
       std::filesystem::directory_iterator(RTV_DOCS_DIR)) {
    if (entry.path().extension() == ".md") {
      extract_blocks(entry.path(), "json", &examples);
    }
  }
  return examples;
}

TEST(DocsExamples, JsonBlocksArePresent) {
  // serve.md documents every job type with at least a request + response
  // pair; shrinking below this means blocks lost their ```json tag and
  // escaped CI coverage.
  EXPECT_GE(all_json_examples().size(), 16u);
}

TEST(DocsExamples, EveryJsonBlockRoundTripsThroughCodec) {
  for (const DocExample& example : all_json_examples()) {
    SCOPED_TRACE(example.file + " fence at line " +
                 std::to_string(example.line));
    JsonValue parsed;
    ASSERT_NO_THROW(parsed = parse_json(example.text)) << example.text;
    // write_json(parse_json(x)) must be a fixed point of the serializer.
    const std::string canonical = write_json(parsed);
    JsonValue reparsed;
    ASSERT_NO_THROW(reparsed = parse_json(canonical)) << canonical;
    EXPECT_EQ(write_json(reparsed), canonical);
  }
}

TEST(DocsExamples, EveryWireFrameExampleSatisfiesTheProtocol) {
  std::size_t requests = 0;
  std::size_t responses = 0;
  for (const DocExample& example : all_json_examples()) {
    SCOPED_TRACE(example.file + " fence at line " +
                 std::to_string(example.line));
    const JsonValue doc = parse_json(example.text);
    if (!doc.is_object() || doc.find("rtv_serve") == nullptr) {
      continue;  // a fragment (e.g. the budget object), not a frame
    }
    if (doc.find("ok") != nullptr) {
      EXPECT_EQ(serve::validate_response(doc), "") << example.text;
      ++responses;
    } else {
      EXPECT_NO_THROW(serve::parse_request(doc)) << example.text;
      ++requests;
    }
  }
  // One request + response pair per job type, at minimum.
  EXPECT_GE(requests, 7u);
  EXPECT_GE(responses, 7u);
}

}  // namespace
}  // namespace rtv
