// CDCL solver tests (brute-force cross-checks, assumptions, conflict
// limits) and SAT CLS-equivalence engine tests on known design pairs.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/cls_equiv.hpp"
#include "sat/equiv.hpp"
#include "sat/solver.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using sat::Solver;
using testing::inverter_pipeline;
using testing::toggle_circuit;

/// inverter_pipeline with the NOT replaced by a BUF: CLS-distinguishable
/// once the X has flushed through both latches (cycle 2 onward).
Netlist buffer_pipeline() {
  Netlist n;
  const NodeId in = n.add_input("in");
  const NodeId out = n.add_output("out");
  const NodeId l0 = n.add_latch("L0");
  const NodeId l1 = n.add_latch("L1");
  const NodeId b = n.add_gate(CellKind::kBuf, 0, "b");
  n.connect(in, l0);
  n.connect(l0, b);
  n.connect(b, l1);
  n.connect(PortRef(l1, 0), PinRef(out, 0));
  n.check_valid(true);
  return n;
}

// ---- Solver ---------------------------------------------------------------

TEST(SatSolver, TrivialSatWithForcedModel) {
  Solver s;
  const sat::Var x = s.new_var();
  const sat::Var y = s.new_var();
  s.add_clause({sat::mk_lit(x), sat::mk_lit(y)});
  s.add_clause({sat::mk_lit(x, true)});
  ASSERT_EQ(s.solve(), Solver::Result::kSat);
  EXPECT_FALSE(s.model_value(x));
  EXPECT_TRUE(s.model_value(y));
}

TEST(SatSolver, ContradictionIsUnsat) {
  Solver s;
  const sat::Var x = s.new_var();
  s.add_clause({sat::mk_lit(x)});
  s.add_clause({sat::mk_lit(x, true)});
  EXPECT_EQ(s.solve(), Solver::Result::kUnsat);
  EXPECT_FALSE(s.okay());
}

TEST(SatSolver, AssumptionsAreRemovable) {
  Solver s;
  const sat::Var x = s.new_var();
  const sat::Var y = s.new_var();
  s.add_clause({sat::mk_lit(x), sat::mk_lit(y)});
  EXPECT_EQ(s.solve({sat::mk_lit(x, true), sat::mk_lit(y, true)}),
            Solver::Result::kUnsat);
  // The solver must remain usable: the assumptions were not clauses.
  ASSERT_EQ(s.solve({sat::mk_lit(x, true)}), Solver::Result::kSat);
  EXPECT_TRUE(s.model_value(y));
  EXPECT_EQ(s.solve(), Solver::Result::kSat);
}

TEST(SatSolver, MatchesBruteForceOnRandomCnf) {
  Rng rng(2024);
  for (int instance = 0; instance < 60; ++instance) {
    SCOPED_TRACE("instance " + std::to_string(instance));
    const unsigned nv = 3 + static_cast<unsigned>(rng.below(6));  // <= 8 vars
    const unsigned nc = 2 + static_cast<unsigned>(rng.below(20));
    std::vector<std::vector<sat::Lit>> clauses;
    Solver s;
    for (unsigned v = 0; v < nv; ++v) s.new_var();
    for (unsigned c = 0; c < nc; ++c) {
      std::vector<sat::Lit> clause;
      const unsigned width = 1 + static_cast<unsigned>(rng.below(3));
      for (unsigned l = 0; l < width; ++l) {
        const auto v = static_cast<sat::Var>(rng.below(nv));
        clause.push_back(sat::mk_lit(v, rng.coin()));
      }
      clauses.push_back(clause);
      s.add_clause(clause);
    }
    // Brute force over all assignments of the original clause set.
    const auto satisfies = [&](std::uint64_t assignment,
                               const std::vector<sat::Lit>& clause) {
      for (const sat::Lit l : clause) {
        const bool value = ((assignment >> sat::var_of(l)) & 1u) != 0;
        if (value != sat::sign_of(l)) return true;
      }
      return false;
    };
    bool brute_sat = false;
    for (std::uint64_t a = 0; a < (std::uint64_t{1} << nv) && !brute_sat;
         ++a) {
      bool all = true;
      for (const auto& clause : clauses) {
        if (!satisfies(a, clause)) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }
    const Solver::Result r = s.solve();
    EXPECT_EQ(r, brute_sat ? Solver::Result::kSat : Solver::Result::kUnsat);
    if (r == Solver::Result::kSat) {
      // The model must satisfy every original clause, not just be "sat".
      std::uint64_t model = 0;
      for (unsigned v = 0; v < nv; ++v) {
        if (s.model_value(v)) model |= std::uint64_t{1} << v;
      }
      for (const auto& clause : clauses) EXPECT_TRUE(satisfies(model, clause));
    }
  }
}

/// Pigeonhole principle PHP(pigeons, holes): unsatisfiable when
/// pigeons > holes, and never decidable by unit propagation alone.
sat::Var php(Solver& s, std::vector<std::vector<sat::Var>>& p,
                unsigned pigeons, unsigned holes) {
  p.assign(pigeons, {});
  for (unsigned i = 0; i < pigeons; ++i) {
    for (unsigned j = 0; j < holes; ++j) p[i].push_back(s.new_var());
  }
  for (unsigned i = 0; i < pigeons; ++i) {
    std::vector<sat::Lit> clause;
    for (unsigned j = 0; j < holes; ++j) clause.push_back(sat::mk_lit(p[i][j]));
    s.add_clause(clause);
  }
  for (unsigned j = 0; j < holes; ++j) {
    for (unsigned i = 0; i < pigeons; ++i) {
      for (unsigned k = i + 1; k < pigeons; ++k) {
        s.add_clause({sat::mk_lit(p[i][j], true), sat::mk_lit(p[k][j], true)});
      }
    }
  }
  return 0;
}

TEST(SatSolver, PigeonholeIsUnsat) {
  Solver s;
  std::vector<std::vector<sat::Var>> p;
  php(s, p, 5, 4);
  EXPECT_EQ(s.solve(), Solver::Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(SatSolver, ConflictLimitReturnsUnknown) {
  Solver s;
  std::vector<std::vector<sat::Var>> p;
  php(s, p, 5, 4);
  // One conflict cannot refute the pigeonhole principle; the solver must
  // give up honestly rather than guess.
  EXPECT_EQ(s.solve({}, nullptr, 1), Solver::Result::kUnknown);
  // And the truncated attempt must not have poisoned the instance.
  EXPECT_EQ(s.solve(), Solver::Result::kUnsat);
}

// ---- SAT CLS-equivalence engine -------------------------------------------

TEST(SatClsEquiv, InductionClosesToggleSelfEquivalence) {
  const Netlist n = toggle_circuit();
  const SatClsOutcome r = sat_cls_equivalence(n, n);
  EXPECT_TRUE(r.equivalent);
  EXPECT_EQ(r.verdict, Verdict::kProven);
  EXPECT_FALSE(r.counterexample.has_value());
  EXPECT_GT(r.induction_depth, 0u);
  EXPECT_FALSE(r.note.empty());
}

TEST(SatClsEquiv, FindsDefinitiveCounterexample) {
  const Netlist a = inverter_pipeline();
  const Netlist b = buffer_pipeline();
  const SatClsOutcome r = sat_cls_equivalence(a, b);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.verdict, Verdict::kProven) << "a counterexample is definitive";
  ASSERT_TRUE(r.counterexample.has_value());
  // The witness must actually distinguish the two CLS machines.
  EXPECT_FALSE(cls_outputs_match(a, b, *r.counterexample));
}

TEST(SatClsEquiv, DepthCapDegradesToBounded) {
  // The pipelines differ only from cycle 2 on; a depth-1 BMC with induction
  // disabled must come back bounded-equivalent, never "proven".
  const Netlist a = inverter_pipeline();
  const Netlist b = buffer_pipeline();
  SatEquivOptions opt;
  opt.max_depth = 1;
  opt.max_induction_depth = 0;
  const SatClsOutcome r = sat_cls_equivalence(a, b, opt);
  EXPECT_TRUE(r.equivalent);
  EXPECT_EQ(r.verdict, Verdict::kBounded);
  EXPECT_FALSE(r.counterexample.has_value());
  EXPECT_EQ(r.depth_reached, 1u);
}

TEST(SatClsEquiv, RejectsInterfaceMismatch) {
  EXPECT_THROW(sat_cls_equivalence(toggle_circuit(), testing::and2_circuit()),
               InvalidArgument);
}

}  // namespace
}  // namespace rtv
