#include <gtest/gtest.h>

#include <set>

#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

TEST(Error, CheckMacroThrowsInternalError) {
  EXPECT_THROW(RTV_CHECK(1 == 2), InternalError);
}

TEST(Error, CheckMacroPassesOnTrue) {
  EXPECT_NO_THROW(RTV_CHECK(1 == 1));
}

TEST(Error, CheckMsgIncludesMessage) {
  try {
    RTV_CHECK_MSG(false, "the-detail");
    FAIL() << "should have thrown";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("the-detail"), std::string::npos);
  }
}

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_THROW(RTV_REQUIRE(false, "bad arg"), InvalidArgument);
}

TEST(Error, HierarchyRootsAtError) {
  EXPECT_THROW(
      { throw ParseError("x"); }, Error);
  EXPECT_THROW(
      { throw CapacityError("x"); }, Error);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), InvalidArgument);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeRejectsInverted) {
  Rng rng(9);
  EXPECT_THROW(rng.range(3, 2), InvalidArgument);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, IndexEmptyThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

TEST(Bits, WordsForBits) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(64), 1u);
  EXPECT_EQ(words_for_bits(65), 2u);
  EXPECT_EQ(words_for_bits(128), 2u);
}

TEST(Bits, GetSetBit) {
  std::uint64_t w = 0;
  w = set_bit(w, 5, true);
  EXPECT_TRUE(get_bit(w, 5));
  EXPECT_FALSE(get_bit(w, 4));
  w = set_bit(w, 5, false);
  EXPECT_EQ(w, 0u);
}

TEST(Bits, Pow2) {
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(10), 1024u);
  EXPECT_EQ(pow2(63), 1ULL << 63);
  EXPECT_THROW(pow2(64), InvalidArgument);
}

TEST(Bits, Pow3) {
  EXPECT_EQ(pow3(0), 1u);
  EXPECT_EQ(pow3(3), 27u);
  EXPECT_EQ(pow3(40), 12157665459056928801ULL);
  EXPECT_THROW(pow3(41), InvalidArgument);
}

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(3), 7u);
  EXPECT_EQ(low_mask(64), ~0ULL);
  EXPECT_THROW(low_mask(65), InvalidArgument);
}

TEST(Bits, Popcount) {
  EXPECT_EQ(popcount64(0), 0);
  EXPECT_EQ(popcount64(0xff), 8);
  EXPECT_EQ(popcount64(~0ULL), 64);
}

TEST(SplitMix, Deterministic) {
  std::uint64_t s1 = 99, s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace rtv
