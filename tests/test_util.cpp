#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rtv {
namespace {

TEST(Error, CheckMacroThrowsInternalError) {
  EXPECT_THROW(RTV_CHECK(1 == 2), InternalError);
}

TEST(Error, CheckMacroPassesOnTrue) {
  EXPECT_NO_THROW(RTV_CHECK(1 == 1));
}

TEST(Error, CheckMsgIncludesMessage) {
  try {
    RTV_CHECK_MSG(false, "the-detail");
    FAIL() << "should have thrown";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("the-detail"), std::string::npos);
  }
}

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_THROW(RTV_REQUIRE(false, "bad arg"), InvalidArgument);
}

TEST(Error, HierarchyRootsAtError) {
  EXPECT_THROW(
      { throw ParseError("x"); }, Error);
  EXPECT_THROW(
      { throw CapacityError("x"); }, Error);
}

TEST(Bits, Pow3SaturatingExactSmallValues) {
  EXPECT_EQ(pow3_saturating(0), 1u);
  EXPECT_EQ(pow3_saturating(1), 3u);
  EXPECT_EQ(pow3_saturating(4), 81u);
}

TEST(Bits, Pow3SaturatingLargestExactPower) {
  std::uint64_t expected = 1;
  for (int i = 0; i < 40; ++i) expected *= 3;
  EXPECT_EQ(pow3_saturating(40), expected);
}

TEST(Bits, Pow3SaturatingClampsBeyond40) {
  // 3^41 overflows 64 bits; the clamp guarantees a wide design can never
  // wrap around and masquerade as a small branching factor (which would
  // silently flip the CLS checker into exhaustive mode).
  EXPECT_EQ(pow3_saturating(41), ~std::uint64_t{0});
  EXPECT_EQ(pow3_saturating(64), ~std::uint64_t{0});
  EXPECT_EQ(pow3_saturating(4096), ~std::uint64_t{0});
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), InvalidArgument);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeRejectsInverted) {
  Rng rng(9);
  EXPECT_THROW(rng.range(3, 2), InvalidArgument);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, IndexEmptyThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

TEST(Bits, WordsForBits) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(64), 1u);
  EXPECT_EQ(words_for_bits(65), 2u);
  EXPECT_EQ(words_for_bits(128), 2u);
}

TEST(Bits, GetSetBit) {
  std::uint64_t w = 0;
  w = set_bit(w, 5, true);
  EXPECT_TRUE(get_bit(w, 5));
  EXPECT_FALSE(get_bit(w, 4));
  w = set_bit(w, 5, false);
  EXPECT_EQ(w, 0u);
}

TEST(Bits, Pow2) {
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(10), 1024u);
  EXPECT_EQ(pow2(63), 1ULL << 63);
  EXPECT_THROW(pow2(64), InvalidArgument);
}

TEST(Bits, Pow3) {
  EXPECT_EQ(pow3(0), 1u);
  EXPECT_EQ(pow3(3), 27u);
  EXPECT_EQ(pow3(40), 12157665459056928801ULL);
  EXPECT_THROW(pow3(41), InvalidArgument);
}

TEST(Bits, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(3), 7u);
  EXPECT_EQ(low_mask(64), ~0ULL);
  EXPECT_THROW(low_mask(65), InvalidArgument);
}

TEST(Bits, Popcount) {
  EXPECT_EQ(popcount64(0), 0);
  EXPECT_EQ(popcount64(0xff), 8);
  EXPECT_EQ(popcount64(~0ULL), 64);
}

TEST(SplitMix, Deterministic) {
  std::uint64_t s1 = 99, s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(7), 7u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    constexpr std::size_t kTotal = 1000;
    std::vector<std::atomic<int>> hits(kTotal);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(kTotal, 7, [&](std::size_t begin, std::size_t end) {
      EXPECT_LE(end - begin, 7u);
      for (std::size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < kTotal; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, GrainEdgeCases) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  const auto count = [&](std::size_t begin, std::size_t end) {
    sum.fetch_add(end - begin, std::memory_order_relaxed);
  };
  pool.parallel_for(0, 4, count);  // empty range: body never runs
  EXPECT_EQ(sum.load(), 0u);
  pool.parallel_for(3, 100, count);  // grain larger than total: one chunk
  EXPECT_EQ(sum.load(), 3u);
  pool.parallel_for(5, 1, count);  // grain 1: one chunk per index
  EXPECT_EQ(sum.load(), 8u);
}

TEST(ThreadPool, RethrowsBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(64, 1,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a throwing job and runs the next one normally.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 2, [&](std::size_t begin, std::size_t end) {
    sum.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 10u);
}

TEST(ThreadPool, StressTinyAlternatingJobs) {
  // Regression test for a job-setup race: a worker that slept through an
  // entire job could wake during the next job's setup and, if chunks were
  // published before the new body was installed, run them through the
  // previous job's dangling body and underflow the chunk count (deadlock).
  // Thousands of tiny back-to-back jobs with more workers than chunks
  // maximize stale wakeups; run with RTV_SANITIZE=thread for full effect.
  ThreadPool pool(8);
  std::size_t expected = 0;
  std::atomic<std::size_t> sum{0};
  for (int job = 0; job < 4000; ++job) {
    // Alternate body identities so a stale body_ dereference cannot
    // accidentally do the right thing.
    const std::size_t weight = 1 + job % 2;
    const std::size_t total = 1 + job % 3;
    pool.parallel_for(total, 1, [&, weight](std::size_t begin,
                                            std::size_t end) {
      sum.fetch_add(weight * (end - begin), std::memory_order_relaxed);
    });
    expected += weight * total;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  for (int job = 0; job < 50; ++job) {
    pool.parallel_for(17, 4, [&](std::size_t begin, std::size_t end) {
      sum.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50u * 17u);
}

}  // namespace
}  // namespace rtv
