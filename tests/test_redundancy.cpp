// Tests for CLS-preserving redundancy removal (core/redundancy) and the
// supporting sweep_unobservable pass and control-pin latch sugar.

#include <gtest/gtest.h>

#include "core/redundancy.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "netlist/sugar.hpp"
#include "sim/binary_sim.hpp"
#include "sim/cls_sim.hpp"
#include "stg/stg.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

TEST(Sweep, RemovesDanglingCone) {
  Netlist n = testing::and2_circuit();
  // Add an unobservable cone: gate + latch reading the inputs.
  const NodeId g = n.add_gate(CellKind::kOr, 2, "dead_or");
  const NodeId l = n.add_latch("dead_latch");
  n.connect(n.primary_inputs()[0], g, 0);
  n.connect(n.primary_inputs()[1], g, 1);
  n.connect(g, l);
  n.junctionize();
  const std::size_t removed = n.sweep_unobservable();
  EXPECT_GE(removed, 2u);
  EXPECT_FALSE(n.find_by_name("dead_or").valid());
  EXPECT_EQ(n.num_latches(), 0u);
  n.compacted().check_valid();
}

TEST(Sweep, KeepsEverythingObservable) {
  Netlist n = figure1_original();
  EXPECT_EQ(n.sweep_unobservable(), 0u);
  n.check_valid(true);
}

TEST(Sweep, KeepsPrimaryInputs) {
  Netlist n;
  n.add_input("unused");
  const NodeId o = n.add_output("o");
  const NodeId c = n.add_const(true, "c");
  n.connect(PortRef(c, 0), PinRef(o, 0));
  EXPECT_EQ(n.sweep_unobservable(), 0u);
  EXPECT_EQ(n.primary_inputs().size(), 1u);
}

TEST(Sweep, RemovesChainedDeadLogic) {
  // dead chain: in -> g1 -> g2 -> latch (nothing reaches a PO).
  Netlist n;
  const NodeId in = n.add_input("in");
  const NodeId o = n.add_output("o");
  const NodeId keep = n.add_gate(CellKind::kBuf, 0, "keep");
  n.connect(in, keep);
  n.connect(PortRef(keep, 0), PinRef(o, 0));
  const NodeId g1 = n.add_gate(CellKind::kNot, 0, "g1");
  const NodeId g2 = n.add_gate(CellKind::kNot, 0, "g2");
  const NodeId l = n.add_latch("l");
  n.connect(in, g1);  // implicit fanout from the PI
  n.connect(g1, g2);
  n.connect(g2, l);
  n.junctionize();
  EXPECT_GE(n.sweep_unobservable(), 3u);
  EXPECT_TRUE(n.find_by_name("keep").valid());
}

TEST(Redundancy, DetectsClassicClsRedundantNet) {
  // Design D's AND1 output stuck-at-0: binary simulation can tell (v is 1
  // when s=0, x=1), but can a CLS from all-X? v s-a-0 freezes the latch at
  // 0 -> output o = x AND 0-or-s... CLS on the fault-free design keeps the
  // latch X forever (Section 5), so outputs stay X where the faulty design
  // answers definite 0 -> X vs 0 does NOT distinguish. The fault is
  // CLS-redundant even though it is very much real.
  const Netlist d = figure1_original();
  const Fault f = fault_on(d, kFigure3FaultGate, 0, false);
  const Netlist faulty = inject_fault(d, f);
  const auto r = check_cls_equivalence(d, faulty);
  // Validate directionally: fault-free CLS output refines to X where the
  // faulty one may answer 0; equality means redundant.
  const auto redundant = cls_redundant_faults(d);
  const bool found = std::find(redundant.begin(), redundant.end(), f) !=
                     redundant.end();
  EXPECT_EQ(found, r.equivalent && r.exhaustive);
  // And the stuck-at-1 fault is NOT CLS-redundant (Figure 3's tests see it).
  const Fault f1 = fault_on(d, kFigure3FaultGate, 0, true);
  EXPECT_EQ(std::count(redundant.begin(), redundant.end(), f1), 0);
}

TEST(Redundancy, RemovalPreservesClsBehaviour) {
  const Netlist d = figure1_original();
  const RedundancyRemovalResult r = remove_cls_redundancies(d);
  // The safety net inside remove_cls_redundancies already asserts CLS
  // equivalence; double-check from here with a fresh comparison.
  const auto verdict = check_cls_equivalence(d, r.optimized);
  EXPECT_TRUE(verdict.equivalent);
  EXPECT_EQ(r.gates_before, d.num_gates());
  r.optimized.check_valid();
}

TEST(Redundancy, NoFalseRemovalOnIrredundantDesign) {
  // A shift register has no CLS-redundant fault: every net definitely
  // propagates definite values to the output.
  Netlist n;
  const NodeId in = n.add_input("in");
  const NodeId o = n.add_output("o");
  const NodeId inv = n.add_gate(CellKind::kNot, 0, "inv");
  const NodeId l = n.add_latch("L");
  n.connect(in, inv);
  n.connect(inv, l);
  n.connect(PortRef(l, 0), PinRef(o, 0));
  EXPECT_TRUE(cls_redundant_faults(n).empty());
  const auto r = remove_cls_redundancies(n);
  EXPECT_EQ(r.faults_tied, 0u);
  EXPECT_EQ(r.gates_after, r.gates_before);
}

TEST(Redundancy, RandomCircuitsRemainClsEquivalent) {
  Rng rng(606);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 2;
  opt.num_gates = 10;
  opt.num_latches = 2;
  opt.latch_after_gate_probability = 0.2;
  for (int trial = 0; trial < 4; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const auto r = remove_cls_redundancies(n);
    // Constant cells introduced by tying can linger when the freed cone
    // stays observable elsewhere; the count may not shrink, but it can
    // never grow beyond one constant per tied fault.
    EXPECT_LE(r.gates_after, r.gates_before + r.faults_tied);
    r.optimized.check_valid();
  }
}

TEST(ConstProp, DominantValues) {
  Netlist n;
  const NodeId x = n.add_input("x");
  const NodeId o1 = n.add_output("o_and0");
  const NodeId o2 = n.add_output("o_or1");
  const NodeId c0 = n.add_const(false, "c0");
  const NodeId c1 = n.add_const(true, "c1");
  const NodeId g1 = n.add_gate(CellKind::kAnd, 2, "and0");
  const NodeId g2 = n.add_gate(CellKind::kOr, 2, "or1");
  n.connect(x, g1, 0);
  n.connect(c0, g1, 1);
  n.connect(x, g2, 0);
  n.connect(c1, g2, 1);
  n.connect(PortRef(g1, 0), PinRef(o1, 0));
  n.connect(PortRef(g2, 0), PinRef(o2, 0));
  n.junctionize();
  EXPECT_GE(n.propagate_constants(), 2u);
  n.sweep_unobservable();
  const Netlist c = n.compacted();
  c.check_valid(true);
  // Both outputs now come straight from constants.
  BinarySimulator sim(c);
  const Bits out = sim.step(bits_from_string("1"));
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
  EXPECT_FALSE(c.find_by_name("and0").valid());
  EXPECT_FALSE(c.find_by_name("or1").valid());
}

TEST(ConstProp, NeutralElementForwards) {
  Netlist n;
  const NodeId x = n.add_input("x");
  const NodeId o = n.add_output("o");
  const NodeId c1 = n.add_const(true, "c1");
  const NodeId g = n.add_gate(CellKind::kAnd, 2, "g");
  n.connect(x, g, 0);
  n.connect(c1, g, 1);
  n.connect(PortRef(g, 0), PinRef(o, 0));
  EXPECT_EQ(n.propagate_constants(), 1u);
  EXPECT_EQ(n.driver(PinRef(o, 0)), PortRef(x, 0));
}

TEST(ConstProp, MuxWithConstantSelect) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const NodeId o = n.add_output("o");
  const NodeId c1 = n.add_const(true, "sel");
  const NodeId m = n.add_gate(CellKind::kMux, 0, "m");
  n.connect(c1, m, 0);
  n.connect(a, m, 1);
  n.connect(b, m, 2);
  n.connect(PortRef(m, 0), PinRef(o, 0));
  EXPECT_EQ(n.propagate_constants(), 1u);
  EXPECT_EQ(n.driver(PinRef(o, 0)), PortRef(b, 0));  // select=1 -> b
}

TEST(ConstProp, EvaluatesFullyConstantCone) {
  Netlist n;
  const NodeId o = n.add_output("o");
  const NodeId c0 = n.add_const(false, "c0");
  const NodeId inv = n.add_gate(CellKind::kNot, 0, "inv");
  const NodeId x = n.add_gate(CellKind::kXor, 2, "x");
  const NodeId c1 = n.add_const(true, "c1");
  n.connect(c0, inv);
  n.connect(PortRef(inv, 0), PinRef(x, 0));
  n.connect(c1, x, 1);
  n.connect(PortRef(x, 0), PinRef(o, 0));
  EXPECT_GE(n.propagate_constants(), 2u);
  // XOR(NOT(0), 1) = XOR(1, 1) = 0.
  BinarySimulator sim(n);
  EXPECT_EQ(sim.step({})[0], 0);
}

TEST(ConstProp, PreservesBehaviourOnRandomCircuits) {
  Rng rng(404);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_outputs = 3;
  opt.num_gates = 25;
  opt.num_latches = 4;
  for (int trial = 0; trial < 6; ++trial) {
    Netlist n = random_netlist(opt, rng);
    // Tie a random PI-driven net to a constant to seed propagation.
    const auto faults = enumerate_faults(n);
    const Fault f = faults[rng.index(faults.size())];
    Netlist tied = inject_fault(n, f);
    Netlist propagated = tied;
    propagated.propagate_constants();
    propagated.check_valid(true);
    ASSERT_EQ(propagated.num_latches(), tied.num_latches());
    BinarySimulator a(tied), b(propagated);
    Bits state(a.num_latches());
    for (auto& v : state) v = rng.coin();
    a.set_state(state);
    b.set_state(state);
    for (int t = 0; t < 12; ++t) {
      Bits in(a.num_inputs());
      for (auto& v : in) v = rng.coin();
      ASSERT_EQ(a.step(in), b.step(in)) << "trial " << trial;
    }
  }
}

TEST(Sugar, SyncResetLatchBehaviour) {
  Netlist n;
  const NodeId r = n.add_input("r");
  const NodeId d = n.add_input("d");
  const NodeId o = n.add_output("o");
  const NodeId latch =
      add_latch_with_sync_reset(n, PortRef(r, 0), PortRef(d, 0), "q");
  n.connect(PortRef(latch, 0), PinRef(o, 0));
  n.junctionize();
  n.check_valid(true);
  BinarySimulator sim(n);
  sim.set_state(bits_from_string("1"));
  // (r, d): reset wins.
  EXPECT_EQ(sim.step(bits_from_string("10"))[0], 1);  // outputs old Q
  EXPECT_EQ(sim.state(), bits_from_string("0"));      // reset applied
  sim.step(bits_from_string("01"));                   // load 1
  EXPECT_EQ(sim.state(), bits_from_string("1"));
  sim.step(bits_from_string("11"));                   // reset beats data
  EXPECT_EQ(sim.state(), bits_from_string("0"));
}

TEST(Sugar, SyncSetLatchBehaviour) {
  Netlist n;
  const NodeId s = n.add_input("s");
  const NodeId d = n.add_input("d");
  const NodeId o = n.add_output("o");
  const NodeId latch =
      add_latch_with_sync_set(n, PortRef(s, 0), PortRef(d, 0), "q");
  n.connect(PortRef(latch, 0), PinRef(o, 0));
  n.junctionize();
  n.check_valid(true);
  BinarySimulator sim(n);
  sim.set_state(bits_from_string("0"));
  sim.step(bits_from_string("10"));  // set
  EXPECT_EQ(sim.state(), bits_from_string("1"));
  sim.step(bits_from_string("00"));  // load 0
  EXPECT_EQ(sim.state(), bits_from_string("0"));
}

TEST(Sugar, EnableLatchHolds) {
  Netlist n;
  const NodeId e = n.add_input("e");
  const NodeId d = n.add_input("d");
  const NodeId o = n.add_output("o");
  const NodeId latch =
      add_latch_with_enable(n, PortRef(e, 0), PortRef(d, 0), "q");
  n.connect(PortRef(latch, 0), PinRef(o, 0));
  n.junctionize();
  n.check_valid(true);
  BinarySimulator sim(n);
  sim.set_state(bits_from_string("1"));
  sim.step(bits_from_string("00"));  // disabled: hold
  EXPECT_EQ(sim.state(), bits_from_string("1"));
  sim.step(bits_from_string("10"));  // enabled: load 0
  EXPECT_EQ(sim.state(), bits_from_string("0"));
  sim.step(bits_from_string("01"));  // disabled: hold despite d=1
  EXPECT_EQ(sim.state(), bits_from_string("0"));
}

TEST(Sugar, ResetLatchMatchesPaperModel) {
  // The gate model must make reset-latch designs STG-identical to an ideal
  // resettable latch: after asserting reset, state is 0 from anywhere.
  Netlist n;
  const NodeId r = n.add_input("r");
  const NodeId d = n.add_input("d");
  const NodeId o = n.add_output("o");
  const NodeId latch =
      add_latch_with_sync_reset(n, PortRef(r, 0), PortRef(d, 0), "q");
  n.connect(PortRef(latch, 0), PinRef(o, 0));
  n.junctionize();
  const Stg stg = Stg::extract(n);
  // Input symbols are packed (r, d): r is bit 0. Asserting r from any
  // state lands specifically in state 0, data notwithstanding.
  for (const std::uint64_t symbol : {0b01u, 0b11u}) {
    for (std::uint64_t s = 0; s < stg.num_states(); ++s) {
      EXPECT_EQ(stg.next_state(s, symbol), 0u);
    }
    EXPECT_TRUE(initializes(stg, {symbol}));
  }
}

}  // namespace
}  // namespace rtv
