// Tests for the ternary dataflow fixpoint engine (analysis/dataflow.hpp):
// lattice helpers, soundness against exhaustive ternary reachability and
// the symbolic machine, the RTV3xx semantic lint passes that read the
// fixpoint, static retiming-safety certification (RTV305) against real
// engine runs, the static equivalence fast path, and the deterministic
// rendering contract of the lint report.

#include <algorithm>
#include <gtest/gtest.h>
#include <set>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/lint.hpp"
#include "bdd/symbolic.hpp"
#include "core/safety.hpp"
#include "core/verify.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "retime/graph.hpp"
#include "retime/moves.hpp"
#include "sim/cls_sim.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::inverter_pipeline;
using testing::toggle_circuit;

std::size_t count_code(const DiagnosticReport& report, DiagCode code) {
  return static_cast<std::size_t>(std::count_if(
      report.diagnostics().begin(), report.diagnostics().end(),
      [&](const Diagnostic& d) { return d.code == code; }));
}

// ---- lattice helpers -------------------------------------------------------

TEST(TritSets, HelpersAndRendering) {
  EXPECT_EQ(to_string_trit_set(kTritSetEmpty), "{}");
  EXPECT_EQ(to_string_trit_set(kTritSetTop), "{0,1,X}");
  EXPECT_EQ(to_string_trit_set(trit_set_of(Trit::kX)), "{X}");
  EXPECT_TRUE(trit_set_is_singleton(trit_set_of(Trit::kOne)));
  EXPECT_FALSE(trit_set_is_singleton(kTritSetEmpty));
  EXPECT_FALSE(trit_set_is_singleton(kTritSetTop));
  EXPECT_EQ(trit_set_singleton(trit_set_of(Trit::kZero)), Trit::kZero);
  EXPECT_EQ(trit_set_singleton(kTritSetTop), std::nullopt);
  EXPECT_TRUE(trit_set_contains(kTritSetTop, Trit::kX));
  EXPECT_FALSE(trit_set_contains(trit_set_of(Trit::kZero), Trit::kOne));
}

// ---- soundness vs exhaustive ternary reachability --------------------------

std::vector<Trits> all_input_vectors(unsigned width) {
  std::uint64_t count = 1;
  for (unsigned i = 0; i < width; ++i) count *= 3;
  std::vector<Trits> vectors;
  vectors.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t code = 0; code < count; ++code) {
    vectors.push_back(unpack_trits(code, width));
  }
  return vectors;
}

/// Exhaustive check on one circuit: BFS every ternary latch state reachable
/// from all-X under every ternary input vector and require the fixpoint set
/// of every latch port / primary output to contain every value actually
/// observed. Returns the number of (state, input) evaluations performed.
std::size_t check_soundness_exhaustively(const Netlist& n,
                                         const DataflowResult& df) {
  ClsSimulator sim(n);
  const unsigned num_latches = sim.num_latches();
  const std::vector<Trits> inputs = all_input_vectors(sim.num_inputs());
  const std::vector<NodeId>& latches = n.latches();
  const std::vector<NodeId>& outputs = n.primary_outputs();

  std::set<std::uint64_t> visited;
  std::vector<Trits> frontier{Trits(num_latches, Trit::kX)};
  visited.insert(pack_trits(frontier.front()));
  std::size_t evals = 0;
  Trits out_values, next_state;
  while (!frontier.empty()) {
    const Trits state = frontier.back();
    frontier.pop_back();
    for (unsigned i = 0; i < num_latches; ++i) {
      const TritSet set = df.set_for(PortRef(latches[i], 0));
      EXPECT_TRUE(trit_set_contains(set, state[i]))
          << "latch '" << n.name(latches[i]) << "' observed "
          << to_char(state[i]) << " outside fixpoint set "
          << to_string_trit_set(set);
    }
    for (const Trits& in : inputs) {
      sim.eval(state, in, out_values, next_state);
      ++evals;
      for (std::size_t j = 0; j < outputs.size(); ++j) {
        const TritSet set = df.output_set(outputs[j]);
        EXPECT_TRUE(trit_set_contains(set, out_values[j]))
            << "output '" << n.name(outputs[j]) << "' observed "
            << to_char(out_values[j]) << " outside fixpoint set "
            << to_string_trit_set(set);
      }
      if (visited.insert(pack_trits(next_state)).second) {
        frontier.push_back(next_state);
      }
    }
  }
  return evals;
}

TEST(DataflowSoundness, FixpointCoversExhaustiveTernaryReachability) {
  // >= 100 random circuits, kept tiny so 3^L ternary-state reachability is
  // exhaustive. Half the trials include table cells so the product
  // enumeration (and its widening cap) is part of what is being checked.
  Rng rng(4242);
  int circuits_checked = 0;
  for (int trial = 0; trial < 120; ++trial) {
    RandomCircuitOptions opt;
    opt.num_inputs = 1 + trial % 3;
    opt.num_outputs = 1 + trial % 2;
    opt.num_latches = 1 + trial % 4;
    opt.num_gates = 6 + trial % 9;
    opt.max_fanin = 3;
    opt.table_probability = (trial % 2) != 0 ? 0.3 : 0.0;
    opt.latch_after_gate_probability = 0.3;
    const Netlist n = random_netlist(opt, rng);
    SCOPED_TRACE("trial " + std::to_string(trial));
    const DataflowResult df = run_dataflow(n);
    ASSERT_GT(check_soundness_exhaustively(n, df), 0u);
    ++circuits_checked;
    if (::testing::Test::HasFailure()) break;  // one witness is enough
  }
  EXPECT_GE(circuits_checked, 100);
}

TEST(DataflowSoundness, WidenedTableCellsStaySound) {
  // A product cap of 1 forces every table cell to the ⊤-widening fallback;
  // the result must still be sound and must report the fallbacks.
  Rng rng(77);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 3;
  opt.num_gates = 10;
  opt.table_probability = 0.8;
  const Netlist n = random_netlist(opt, rng);

  DataflowOptions narrow;
  narrow.table_product_cap = 1;
  const DataflowResult df = run_dataflow(n, narrow);
  EXPECT_GT(df.stats().table_fallbacks, 0u);
  check_soundness_exhaustively(n, df);

  // The widened sets contain the precise ones.
  const DataflowResult precise = run_dataflow(n);
  EXPECT_EQ(precise.stats().table_fallbacks, 0u);
  for (const NodeId id : n.live_nodes()) {
    for (std::uint32_t p = 0; p < n.num_ports(id); ++p) {
      const TritSet wide = df.set_for(PortRef(id, p));
      const TritSet tight = precise.set_for(PortRef(id, p));
      EXPECT_EQ(wide | tight, wide)
          << n.name(id) << " port " << p << ": widened "
          << to_string_trit_set(wide) << " does not contain "
          << to_string_trit_set(tight);
    }
  }
}

// ---- soundness vs the symbolic machine -------------------------------------

/// Random circuit with constant leaves mixed in, so definite singleton
/// fixpoint sets actually occur (pure random logic almost never produces
/// them). Every unconsumed port is capped with a primary output.
Netlist random_const_heavy(Rng& rng) {
  Netlist n;
  std::vector<PortRef> pool;
  pool.emplace_back(n.add_input("x"), 0);
  pool.emplace_back(n.add_const(false, "c0"), 0);
  pool.emplace_back(n.add_const(true, "c1"), 0);
  std::vector<std::size_t> consumed(pool.size(), 0);
  auto pick = [&]() {
    const std::size_t i = static_cast<std::size_t>(rng.below(pool.size()));
    consumed[i]++;
    return pool[i];
  };
  const CellKind kinds[] = {CellKind::kAnd,  CellKind::kOr,  CellKind::kXor,
                            CellKind::kNand, CellKind::kNor, CellKind::kNot};
  for (int i = 0; i < 10; ++i) {
    const CellKind kind = kinds[rng.below(6)];
    const unsigned arity = kind == CellKind::kNot ? 1 : 2;
    const NodeId g = n.add_gate(kind, kind == CellKind::kNot ? 0 : arity,
                                "g" + std::to_string(i));
    for (unsigned pin = 0; pin < arity; ++pin) {
      n.connect(pick(), PinRef(g, pin));
    }
    pool.emplace_back(g, 0);
    consumed.push_back(0);
  }
  for (int i = 0; i < 2; ++i) {
    const NodeId latch = n.add_latch("L" + std::to_string(i));
    n.connect(pick(), PinRef(latch, 0));
    pool.emplace_back(latch, 0);
    consumed.push_back(0);
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (consumed[i] != 0) continue;
    const NodeId out = n.add_output("o" + std::to_string(i));
    n.connect(pool[i], PinRef(out, 0));
  }
  n.junctionize();
  n.check_valid(true);
  return n;
}

TEST(DataflowSoundness, DefiniteSingletonsAreConstantInTheSymbolicMachine) {
  // A definite singleton fixpoint set claims the signal is that constant on
  // every cycle of every run from *any* power-up state (binary runs refine
  // ternary ones). Over all 2^L states and inputs that is exactly "the
  // symbolic cone BDD is the constant": cross-check every claim.
  Rng rng(99);
  std::size_t definite_claims = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const Netlist n = random_const_heavy(rng);
    SCOPED_TRACE("trial " + std::to_string(trial));
    const DataflowResult df = run_dataflow(n);
    SymbolicMachine machine(n);
    const std::vector<NodeId>& outputs = n.primary_outputs();
    for (unsigned j = 0; j < outputs.size(); ++j) {
      const std::optional<Trit> v = trit_set_singleton(df.output_set(outputs[j]));
      if (!v || *v == Trit::kX) continue;
      ++definite_claims;
      EXPECT_EQ(machine.output_function(j),
                *v == Trit::kOne ? BddManager::kTrue : BddManager::kFalse)
          << "output '" << n.name(outputs[j]) << "' claimed constant";
    }
    const std::vector<NodeId>& latches = n.latches();
    for (unsigned i = 0; i < latches.size(); ++i) {
      const std::optional<Trit> v =
          trit_set_singleton(df.pin_set(PinRef(latches[i], 0)));
      if (!v || *v == Trit::kX) continue;
      ++definite_claims;
      EXPECT_EQ(machine.next_function(i),
                *v == Trit::kOne ? BddManager::kTrue : BddManager::kFalse)
          << "latch '" << n.name(latches[i]) << "' driver claimed constant";
    }
  }
  // The generator must make the cross-check non-vacuous.
  EXPECT_GE(definite_claims, 10u);
}

// ---- RTV3xx passes ---------------------------------------------------------

TEST(SemanticLint, Rtv301FlagsExactlyTheStuckLatches) {
  // toggle's latch t satisfies next = t XOR in: from X it stays X forever.
  const LintResult result = run_lint(toggle_circuit());
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kLatchNeverInitializes),
            1u);
  // inverter_pipeline's latches load definite values from the input.
  EXPECT_TRUE(run_lint(inverter_pipeline()).clean());
}

TEST(SemanticLint, Rtv302FlagsStaticallyConstantSignals) {
  Netlist n;
  const NodeId x = n.add_input("x");
  const NodeId c1 = n.add_const(true, "one");
  const NodeId c0 = n.add_const(false, "zero");
  const NodeId o1 = n.add_output("o1");
  const NodeId o2 = n.add_output("o2");
  const NodeId org = n.add_gate(CellKind::kOr, 2, "or_one");
  const NodeId andg = n.add_gate(CellKind::kAnd, 2, "and_zero");
  n.connect(PortRef(c1, 0), PinRef(org, 0));
  n.connect(PortRef(x, 0), PinRef(org, 1));
  n.connect(PortRef(c0, 0), PinRef(andg, 0));
  n.connect(PortRef(x, 0), PinRef(andg, 1));
  n.connect(PortRef(org, 0), PinRef(o1, 0));
  n.connect(PortRef(andg, 0), PinRef(o2, 0));
  n.junctionize();
  n.check_valid(true);

  const LintResult result = run_lint(n);
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kStaticConstant), 2u);
  const std::string text = render_text(result);
  EXPECT_NE(text.find("'or_one'"), std::string::npos) << text;
  EXPECT_NE(text.find("statically constant 1"), std::string::npos) << text;
  EXPECT_NE(text.find("'and_zero'"), std::string::npos) << text;
  EXPECT_NE(text.find("statically constant 0"), std::string::npos) << text;
  // The declared constants themselves are not re-reported.
  EXPECT_EQ(result.diagnostics.size(), 2u) << text;
}

TEST(SemanticLint, Rtv303GroupsDeadCellsIntoOneCone) {
  // Main path x -> inv -> out, plus a closed dead loop a <-> d that never
  // reaches the output: one cone of two cells, anchored at 'a'.
  Netlist n;
  const NodeId x = n.add_input("x");
  const NodeId o = n.add_output("o");
  const NodeId inv = n.add_gate(CellKind::kNot, 0, "inv");
  const NodeId a = n.add_gate(CellKind::kAnd, 2, "a");
  const NodeId d = n.add_latch("d");
  n.connect(PortRef(x, 0), PinRef(inv, 0));
  n.connect(PortRef(inv, 0), PinRef(o, 0));
  n.connect(PortRef(x, 0), PinRef(a, 0));
  n.connect(PortRef(a, 0), PinRef(d, 0));
  n.connect(PortRef(d, 0), PinRef(a, 1));

  const LintResult result = run_lint(n);
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kDeadLogicCone), 1u);
  const std::string text = render_text(result);
  EXPECT_NE(text.find("dead logic cone of 2 cell(s): 'a', 'd'"),
            std::string::npos)
      << text;
}

TEST(SemanticLint, Rtv304NamesTheCombinationalLoopMembers) {
  Netlist n;
  const NodeId o = n.add_output("o");
  const NodeId g1 = n.add_gate(CellKind::kNot, 0, "g1");
  const NodeId g2 = n.add_gate(CellKind::kNot, 0, "g2");
  n.connect(PortRef(g1, 0), PinRef(g2, 0));
  n.connect(PortRef(g2, 0), PinRef(g1, 0));
  n.connect(PortRef(g2, 0), PinRef(o, 0));

  const LintResult result = run_lint(n);
  // The structural combinational-cycle error still fires; RTV304 is the
  // grouped report naming the members, emitted without the fixpoint.
  EXPECT_TRUE(result.has_errors());
  EXPECT_FALSE(result.dataflow_stats.has_value());
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kCombinationalScc), 1u);
  const std::string text = render_text(result);
  EXPECT_NE(text.find("feedback group of 2 cell(s): 'g1', 'g2'"),
            std::string::npos)
      << text;
}

TEST(SemanticLint, Rtv305CertifiesTheFigure1ForwardMove) {
  // Forward across junction J1 is the paper's unsafe-class move (RTV201),
  // but junctions preserve all-X, so Theorem 5.1 certifies it statically.
  const Netlist d = figure1_original();
  const std::vector<RetimingMove> plan{
      {d.find_by_name("J1"), MoveDirection::kForward}};
  const LintResult result = run_lint(d, plan);
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kUnsafeForwardMove), 1u);
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kStaticallySafeMove), 1u);
  const std::string text = render_text(result);
  EXPECT_NE(text.find("statically certified safe"), std::string::npos) << text;
  EXPECT_NE(text.find("preserves all-X"), std::string::npos) << text;
}

TEST(SemanticLint, SafeClassPlansGetNoCertificateNoise) {
  // Backward moves preserve safe replacement by class: no RTV305 notes.
  const Netlist c = figure1_retimed();
  const std::vector<RetimingMove> plan{
      {c.find_by_name("J1"), MoveDirection::kBackward}};
  const LintResult result = run_lint(c, plan);
  EXPECT_EQ(count_code(result.diagnostics, DiagCode::kStaticallySafeMove), 0u);
}

// ---- RTV305 certificates agree with engine verification --------------------

TEST(Certification, CertifiedMovesPassEngineVerification) {
  // Every certified move, replayed at its own plan position, must be
  // confirmed equivalent by a real engine run (static proof disabled so the
  // engine actually decides).
  Rng rng(1337);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 4;
  opt.num_gates = 12;
  opt.table_probability = 0.2;
  opt.latch_after_gate_probability = 0.3;
  std::size_t certified_checked = 0;
  for (int trial = 0; trial < 8; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const Netlist n = random_netlist(opt, rng);
    const RetimeGraph g = RetimeGraph::from_netlist(n);
    std::vector<int> lag(g.num_vertices(), 0);
    for (int attempt = 0; attempt < 40; ++attempt) {
      std::vector<int> probe = lag;
      const std::uint32_t v =
          2 + static_cast<std::uint32_t>(rng.below(g.num_vertices() - 2));
      probe[v] += rng.coin() ? 1 : -1;
      if (g.legal_retiming(probe)) lag = probe;
    }
    SequencedRetiming seq;
    analyze_lag_retiming(n, g, lag, &seq);
    if (seq.moves.empty()) continue;

    const std::vector<MoveCertificate> certificates =
        certify_plan_moves(n, seq.moves);
    ASSERT_EQ(certificates.size(), seq.moves.size());
    Netlist work = n;
    for (std::size_t i = 0; i < seq.moves.size(); ++i) {
      const Netlist before = work;
      apply_move(work, seq.moves[i]);
      if (!certificates[i].certified) continue;
      VerifyOptions verify;
      verify.backend = EquivalenceBackend::kExplicit;
      verify.allow_static_proof = false;
      const ClsEquivalenceResult r =
          verify_cls_equivalence(before, work, verify);
      EXPECT_TRUE(r.equivalent)
          << "certified move " << i << " (" << certificates[i].reason
          << ") refuted by the explicit engine: " << r.summary();
      ++certified_checked;
    }
  }
  EXPECT_GE(certified_checked, 5u);
}

// ---- static equivalence fast path ------------------------------------------

TEST(StaticProof, DecidesStuckAtXDesignsBeforeAnyEngine) {
  // toggle's only output can never leave X, in both copies: the fixpoint
  // proves equivalence outright and stamps decided_by = static.
  const Netlist n = toggle_circuit();
  const ClsEquivalenceResult r = verify_cls_equivalence(n, n, VerifyOptions{});
  EXPECT_TRUE(r.equivalent);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_EQ(r.verdict, Verdict::kProven);
  EXPECT_EQ(r.decided_by, EquivalenceBackend::kStatic);
  EXPECT_NE(r.decided_reason.find("singleton"), std::string::npos)
      << r.decided_reason;

  // The engines agree with the static verdict.
  VerifyOptions engine;
  engine.allow_static_proof = false;
  const ClsEquivalenceResult e = verify_cls_equivalence(n, n, engine);
  EXPECT_TRUE(e.equivalent);
  EXPECT_NE(e.decided_by, EquivalenceBackend::kStatic);
}

TEST(StaticProof, ExplicitStaticBackendReportsInconclusiveHonestly) {
  // inverter_pipeline's output set is ⊤ (it tracks the input), so the
  // fixpoint cannot decide; the dedicated static backend must say so
  // instead of inventing a verdict.
  const Netlist n = inverter_pipeline();
  VerifyOptions opt;
  opt.backend = EquivalenceBackend::kStatic;
  const ClsEquivalenceResult r = verify_cls_equivalence(n, n, opt);
  EXPECT_FALSE(r.equivalent);
  EXPECT_FALSE(r.exhaustive);
  EXPECT_EQ(r.verdict, Verdict::kExhausted);
  EXPECT_EQ(r.decided_by, EquivalenceBackend::kStatic);
  EXPECT_NE(r.decided_reason.find("inconclusive"), std::string::npos)
      << r.decided_reason;
}

TEST(StaticProof, SafetyReportCarriesTheCertificate) {
  // The Figure 1 forward retiming has an unsafe-class move; the ternary
  // fixpoint certifies it, and the safety report says so.
  const Netlist d = figure1_original();
  const std::vector<RetimingMove> plan{
      {d.find_by_name("J1"), MoveDirection::kForward}};
  const SafetyReport report = analyze_move_sequence(d, plan);
  EXPECT_FALSE(report.safe_replacement_guaranteed);
  EXPECT_TRUE(report.cls_certified_safe);
  EXPECT_NE(report.summary().find("CLS-certified"), std::string::npos)
      << report.summary();
}

// ---- deterministic rendering -----------------------------------------------

TEST(Rendering, DiagnosticsAreSortedByCodeThenLocation) {
  // A circuit provoking diagnostics from several passes (RTV110 unreachable
  // warnings, RTV301, RTV303) plus a plan (RTV201/RTV205/RTV305): the
  // rendered order must be non-decreasing in code regardless of which pass
  // emitted first.
  Netlist n = figure1_original();
  const NodeId dead_latch = n.add_latch("dead1");
  const NodeId dead_gate = n.add_gate(CellKind::kNot, 0, "dead2");
  n.connect(PortRef(dead_latch, 0), PinRef(dead_gate, 0));
  n.connect(PortRef(dead_gate, 0), PinRef(dead_latch, 0));
  const std::vector<RetimingMove> plan{
      {n.find_by_name("J1"), MoveDirection::kForward}};

  const LintResult result = run_lint(n, plan);
  ASSERT_GE(result.diagnostics.size(), 4u);
  const std::vector<Diagnostic>& diags = result.diagnostics.diagnostics();
  for (std::size_t i = 1; i < diags.size(); ++i) {
    EXPECT_LE(static_cast<int>(diags[i - 1].code),
              static_cast<int>(diags[i].code))
        << "diagnostics out of canonical order at index " << i;
    if (diags[i - 1].code == diags[i].code) {
      EXPECT_LE(diags[i - 1].node.value, diags[i].node.value);
    }
  }
}

TEST(Rendering, TextAndJsonAreByteStableAcrossRuns) {
  Netlist n = figure1_original();
  const std::vector<RetimingMove> plan{
      {n.find_by_name("J1"), MoveDirection::kForward}};
  const LintResult first = run_lint(n, plan);
  const LintResult second = run_lint(n, plan);
  EXPECT_EQ(render_text(first), render_text(second));
  EXPECT_EQ(render_json(first), render_json(second));

  // And the documented shape of the stats line.
  const std::string text = render_text(first);
  EXPECT_NE(text.find("dataflow: "), std::string::npos) << text;
  EXPECT_NE(text.find("iteration(s)"), std::string::npos) << text;
}

}  // namespace
}  // namespace rtv
