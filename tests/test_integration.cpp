// End-to-end property sweeps tying the whole pipeline together:
// generate -> build graph -> optimize (min-period / min-area) -> sequence
// into atomic moves -> validate against the paper's theorems.

#include <gtest/gtest.h>

#include "core/validator.hpp"
#include "fault/fault_sim.hpp"
#include "gen/datapath.hpp"
#include "gen/random_circuits.hpp"
#include "gen/shift.hpp"
#include "io/rnl_format.hpp"
#include "retime/apply.hpp"
#include "retime/min_area.hpp"
#include "retime/min_period.hpp"
#include "retime/sequencer.hpp"
#include "sim/binary_sim.hpp"
#include "stg/stg.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

struct SweepCase {
  std::uint64_t seed;
  unsigned gates;
  unsigned latches;
  double table_probability;
};

class RetimingSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RetimingSweep, MinAreaEndToEnd) {
  const SweepCase& c = GetParam();
  Rng rng(c.seed);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 2;
  opt.num_gates = c.gates;
  opt.num_latches = c.latches;
  opt.table_probability = c.table_probability;
  opt.latch_after_gate_probability = 0.3;
  const Netlist n = random_netlist(opt, rng);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const MinAreaResult area = min_area_retime(g);
  EXPECT_LE(area.registers_after, area.registers_before);

  const RetimingValidation v = validate_retiming(n, g, area.lag);
  EXPECT_TRUE(v.theorems_hold) << v.summary();
  EXPECT_TRUE(v.cls.equivalent) << v.summary();
  v.retimed.check_valid(true);
  EXPECT_EQ(static_cast<std::int64_t>(v.retimed.num_latches()),
            area.registers_after);
}

TEST_P(RetimingSweep, MinPeriodEndToEnd) {
  const SweepCase& c = GetParam();
  Rng rng(c.seed ^ 0xabcdef);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 2;
  opt.num_gates = c.gates;
  opt.num_latches = c.latches;
  opt.table_probability = c.table_probability;
  opt.latch_after_gate_probability = 0.3;
  const Netlist n = random_netlist(opt, rng);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const RetimingSolution sol = min_period_retime_opt(g);
  EXPECT_LE(sol.period, g.clock_period());

  const RetimingValidation v = validate_retiming(n, g, sol.lag);
  EXPECT_TRUE(v.theorems_hold) << v.summary();
  EXPECT_TRUE(v.cls.equivalent) << v.summary();
  // The physically realized netlist has the promised period.
  EXPECT_EQ(RetimeGraph::from_netlist(v.retimed).clock_period(), sol.period);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RetimingSweep,
    ::testing::Values(SweepCase{1, 10, 3, 0.0}, SweepCase{2, 14, 4, 0.0},
                      SweepCase{3, 12, 3, 0.3}, SweepCase{4, 16, 4, 0.2},
                      SweepCase{5, 10, 2, 0.5}, SweepCase{6, 18, 4, 0.0},
                      SweepCase{7, 12, 4, 0.4}, SweepCase{8, 15, 3, 0.1}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

TEST(Integration, PipelineRetimeRoundTripBehaviour) {
  // Retimed pipelined adder still adds (after flushing), for both the
  // min-period and min-area retimings.
  const unsigned bits = 4;
  const Netlist n = pipelined_adder(bits, 2);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  for (const auto& lag :
       {min_period_retime_opt(g).lag, min_area_retime(g).lag}) {
    const Netlist r = apply_retiming(n, g, lag);
    BinarySimulator sim(r);
    Rng rng(3);
    for (int trial = 0; trial < 5; ++trial) {
      const std::uint64_t a = rng.below(1 << bits);
      const std::uint64_t b = rng.below(1 << bits);
      Bits in(2 * bits);
      for (unsigned i = 0; i < bits; ++i) {
        in[i] = (a >> i) & 1;
        in[bits + i] = (b >> i) & 1;
      }
      Bits out;
      for (int t = 0; t < 8; ++t) out = sim.step(in);
      std::uint64_t sum = 0;
      for (unsigned i = 0; i <= bits; ++i) {
        if (out[i]) sum |= (1ULL << i);
      }
      EXPECT_EQ(sum, a + b);
    }
  }
}

TEST(Integration, SerializedRetimedDesignStillValidates) {
  // rnl round-trip composes with the validator.
  Rng rng(12);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 4;
  opt.num_gates = 12;
  const Netlist n = random_netlist(opt, rng);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const MinAreaResult area = min_area_retime(g);
  const Netlist retimed = apply_retiming(n, g, area.lag);
  const Netlist n2 = read_rnl(write_rnl(n));
  const Netlist retimed2 = read_rnl(write_rnl(retimed));
  const auto cls = check_cls_equivalence(n2, retimed2);
  EXPECT_TRUE(cls.equivalent);
}

TEST(Integration, FaultCoverageNeverImprovedByUnsafeRetiming) {
  // Aggregate Section 2.2: exact fault coverage of a fixed random test set
  // on D vs the forward-junction-retimed C — coverage may only drop or
  // stay (it cannot grow, because C's behaviours superset D's makes
  // detection HARDER, never easier... empirically: assert it drops for
  // the paper circuit and never rises across random circuits).
  Rng rng(31);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 3;
  opt.num_gates = 10;
  opt.latch_after_gate_probability = 0.3;
  int compared = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    // Find an enabled forward move across a junction.
    RetimingMove unsafe{NodeId(), MoveDirection::kForward};
    for (const auto& m : enabled_moves(n)) {
      if (m.direction == MoveDirection::kForward &&
          n.kind(m.element) == CellKind::kJunc &&
          n.num_ports(m.element) >= 2) {
        unsafe = m;
        break;
      }
    }
    if (!unsafe.element.valid()) continue;
    Netlist c = n;
    apply_move(c, unsafe);

    std::vector<BitsSeq> tests;
    for (int t = 0; t < 4; ++t) {
      BitsSeq test;
      for (int step = 0; step < 5; ++step) {
        Bits in(n.primary_inputs().size());
        for (auto& v : in) v = rng.coin();
        test.push_back(in);
      }
      tests.push_back(test);
    }
    // Faults on combinational cells that exist in both designs.
    std::vector<Fault> faults;
    for (const Fault& f : collapse_faults(n)) {
      if (is_combinational(n.kind(f.site.node)) &&
          !c.sinks(f.site).empty()) {
        faults.push_back(f);
      }
    }
    if (faults.empty()) continue;
    const FaultSimResult rd = fault_simulate(n, faults, tests);
    const FaultSimResult rc = fault_simulate(c, faults, tests);
    EXPECT_LE(rc.num_detected, rd.num_detected) << "trial " << trial;
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

TEST(Integration, SequencedMinPeriodKeepsStgDelayEquivalence) {
  Rng rng(47);
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_latches = 3;
  opt.num_gates = 10;
  opt.latch_after_gate_probability = 0.4;
  int checked = 0;
  for (int trial = 0; trial < 8 && checked < 4; ++trial) {
    const Netlist n = random_netlist(opt, rng);
    const RetimeGraph g = RetimeGraph::from_netlist(n);
    const RetimingSolution sol = min_period_retime_opt(g);
    SequencedRetiming seq = sequence_retiming(n, g, sol.lag);
    if (seq.retimed.num_latches() > 9 || n.num_latches() > 9) continue;
    const Stg d = Stg::extract(n);
    const Stg c = Stg::extract(seq.retimed);
    const int min_delay = min_delay_for_implication(c, d, 20);
    ASSERT_GE(min_delay, 0) << "Cor 4.3 violated";
    EXPECT_LE(static_cast<std::size_t>(min_delay),
              std::max<std::size_t>(seq.stats.max_forward_per_non_justifiable,
                                    0))
        << "Thm 4.5 violated";
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace rtv
