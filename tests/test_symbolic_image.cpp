// Cross-check suite for the high-performance symbolic image path: the
// partitioned and-exists chain must compute BIT-IDENTICAL state sets (same
// canonical BDD node, same manager) as the retained monolithic reference
// path, on paper circuits and random netlists; the lossy operation cache
// must be correctness-neutral under forced collisions; the quantification
// schedule must cover every state/input variable exactly once.

#include <gtest/gtest.h>

#include <algorithm>

#include "bdd/bdd.hpp"
#include "bdd/symbolic.hpp"
#include "gen/iscas.hpp"
#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "gen/shift.hpp"
#include "test_helpers.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using Ref = BddManager::Ref;

std::vector<Netlist> paper_circuits() {
  std::vector<Netlist> circuits;
  circuits.push_back(figure1_original());
  circuits.push_back(figure1_retimed());
  circuits.push_back(iscas_s27());
  circuits.push_back(lfsr(12, {0, 3, 5, 11}));
  circuits.push_back(testing::toggle_circuit());
  return circuits;
}

Netlist random_circuit(Rng& rng, unsigned latches, unsigned gates) {
  RandomCircuitOptions opt;
  opt.num_inputs = 2;
  opt.num_outputs = 2;
  opt.num_gates = gates;
  opt.num_latches = latches;
  opt.latch_after_gate_probability = 0.15;
  return random_netlist(opt, rng);
}

/// A pseudo-random state set: the union of a few random state cubes.
Ref random_state_set(SymbolicMachine& sm, Rng& rng) {
  Ref set = BddManager::kFalse;
  const unsigned cubes = 1 + static_cast<unsigned>(rng.index(4));
  for (unsigned c = 0; c < cubes; ++c) {
    Bits state(sm.num_latches());
    for (auto& v : state) v = rng.coin();
    set = sm.manager().bdd_or(set, sm.state_cube(state));
  }
  return set;
}

TEST(SymbolicImage, PartitionedMatchesMonolithicOnPaperCircuits) {
  Rng rng(41);
  for (const Netlist& n : paper_circuits()) {
    SymbolicMachine sm(n);
    // Identical Refs: canonical BDDs in one manager, so set equality IS
    // node equality.
    for (int trial = 0; trial < 8; ++trial) {
      const Ref states = random_state_set(sm, rng);
      EXPECT_EQ(sm.image(states), sm.image_monolithic(states));
    }
    const Ref init = sm.state_cube(Bits(n.num_latches(), 0));
    const Ref part = sm.reachable(init);
    const Ref mono = sm.reachable_monolithic(init);
    EXPECT_EQ(part, mono);
    EXPECT_DOUBLE_EQ(sm.count_states(part), sm.count_states(mono));
  }
}

TEST(SymbolicImage, PartitionedMatchesMonolithicOnRandomNetlists) {
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    const Netlist n =
        random_circuit(rng, 3 + static_cast<unsigned>(rng.index(6)),
                       10 + static_cast<unsigned>(rng.index(20)));
    SymbolicMachine sm(n);
    for (int s = 0; s < 4; ++s) {
      const Ref states = random_state_set(sm, rng);
      EXPECT_EQ(sm.image(states), sm.image_monolithic(states))
          << "trial " << trial;
    }
    Bits init(n.num_latches());
    for (auto& v : init) v = rng.coin();
    EXPECT_EQ(sm.reachable(sm.state_cube(init)),
              sm.reachable_monolithic(sm.state_cube(init)))
        << "trial " << trial;
  }
}

TEST(SymbolicImage, DelayedDesignSetsMatchMonolithic) {
  // Thm 4.5's C^k sets: the n-fold image of ALL states through both paths.
  Rng rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    const Netlist n = random_circuit(rng, 4, 16);
    SymbolicMachine sm(n);
    Ref mono = sm.all_states();
    for (unsigned k = 0; k <= 3; ++k) {
      EXPECT_EQ(sm.states_after_delay(k), mono)
          << "trial " << trial << " k=" << k;
      const Ref next = sm.image_monolithic(mono);
      if (next == mono) break;
      mono = next;
    }
  }
}

TEST(SymbolicImage, ClusterCapExtremesAgreeAcrossManagers) {
  // Cap = 1 forces one cluster per latch (maximal early quantification);
  // a huge cap degenerates to a single cluster (= the monolithic product).
  // Different managers, so compare by count and membership.
  Rng rng(99);
  const Netlist n = random_circuit(rng, 5, 18);
  SymbolicMachine fine(n, kDefaultBddNodeLimit, nullptr, 1);
  SymbolicMachine coarse(n, kDefaultBddNodeLimit, nullptr,
                         std::size_t{1} << 30);
  EXPECT_EQ(fine.partition().size(), n.num_latches());
  EXPECT_EQ(coarse.partition().size(), 1u);
  const Ref rf = fine.reachable(fine.state_cube(Bits(n.num_latches(), 0)));
  const Ref rc =
      coarse.reachable(coarse.state_cube(Bits(n.num_latches(), 0)));
  EXPECT_DOUBLE_EQ(fine.count_states(rf), coarse.count_states(rc));
  for (std::uint64_t s = 0; s < pow2(n.num_latches()); ++s) {
    std::vector<bool> af(fine.manager().num_vars(), false);
    std::vector<bool> ac(coarse.manager().num_vars(), false);
    for (unsigned i = 0; i < n.num_latches(); ++i) {
      af[fine.state_var(i)] = get_bit(s, i);
      ac[coarse.state_var(i)] = get_bit(s, i);
    }
    EXPECT_EQ(fine.manager().evaluate(rf, af),
              coarse.manager().evaluate(rc, ac))
        << "state " << s;
  }
}

TEST(SymbolicImage, QuantificationScheduleCoversEveryVariableOnce) {
  Rng rng(123);
  for (int trial = 0; trial < 5; ++trial) {
    const Netlist n = random_circuit(rng, 4, 14);
    SymbolicMachine sm(n);
    BddManager& m = sm.manager();
    // Union of all scheduled cubes + the pre-quantified set must be exactly
    // the state+input variables, each scheduled at most once, and no
    // scheduled variable may appear in a LATER cluster's support.
    std::vector<int> times_scheduled(m.num_vars(), 0);
    const auto& clusters = sm.partition();
    for (std::size_t k = 0; k < clusters.size(); ++k) {
      for (const unsigned v : m.support(clusters[k].quantify_cube.get())) {
        ++times_scheduled[v];
        for (std::size_t later = k + 1; later < clusters.size(); ++later) {
          const auto sup = m.support(clusters[later].relation.get());
          EXPECT_FALSE(std::find(sup.begin(), sup.end(), v) != sup.end())
              << "var " << v << " scheduled at cluster " << k
              << " but alive in cluster " << later;
        }
      }
    }
    std::vector<bool> quantifiable(m.num_vars(), false);
    for (unsigned i = 0; i < sm.num_latches(); ++i) {
      quantifiable[sm.state_var(i)] = true;
    }
    for (unsigned j = 0; j < sm.num_inputs(); ++j) {
      quantifiable[sm.input_var(j)] = true;
    }
    // Variables in no cluster are pre-quantified internally; either way the
    // image of any set must have support only over current-state vars.
    const Ref img = sm.image(sm.all_states());
    for (const unsigned v : m.support(img)) {
      EXPECT_TRUE(quantifiable[v] && v % 2 == 0 && v < 2 * sm.num_latches())
          << "image support leaked var " << v;
    }
    for (unsigned v = 0; v < m.num_vars(); ++v) {
      EXPECT_LE(times_scheduled[v], 1) << "var " << v << " scheduled twice";
      if (times_scheduled[v] == 1) {
        EXPECT_TRUE(quantifiable[v]);
      }
    }
  }
}

TEST(AndExists, MatchesMaterialisedConjunction) {
  Rng rng(555);
  BddManager m(10);
  // Random function pairs and random quantifier sets: the fused recursion
  // must equal exists(and(f, g)).
  std::vector<Ref> pool;
  for (unsigned v = 0; v < 10; ++v) pool.push_back(m.var(v));
  for (int trial = 0; trial < 200; ++trial) {
    const Ref a = pool[rng.index(pool.size())];
    const Ref b = pool[rng.index(pool.size())];
    switch (rng.index(3)) {
      case 0: pool.push_back(m.bdd_and(a, m.bdd_not(b))); break;
      case 1: pool.push_back(m.bdd_or(a, b)); break;
      default: pool.push_back(m.bdd_xor(a, b)); break;
    }
    const Ref f = pool[rng.index(pool.size())];
    const Ref g = pool[rng.index(pool.size())];
    std::vector<unsigned> vars;
    for (unsigned v = 0; v < 10; ++v) {
      if (rng.coin()) vars.push_back(v);
    }
    EXPECT_EQ(m.and_exists(f, g, vars), m.exists(m.bdd_and(f, g), vars))
        << "trial " << trial;
  }
}

TEST(AndExists, TerminalAndCubeEdgeCases) {
  BddManager m(6);
  const Ref f = m.bdd_xor(m.var(0), m.var(2));
  const Ref cube = m.make_cube({0, 2});
  EXPECT_EQ(m.and_exists(BddManager::kFalse, f, cube), BddManager::kFalse);
  EXPECT_EQ(m.and_exists(f, BddManager::kFalse, cube), BddManager::kFalse);
  EXPECT_EQ(m.and_exists(BddManager::kTrue, BddManager::kTrue, cube),
            BddManager::kTrue);
  // f == g collapses to plain quantification.
  EXPECT_EQ(m.and_exists(f, f, cube), m.exists(f, {0, 2}));
  // Empty cube = plain conjunction.
  EXPECT_EQ(m.and_exists(f, m.var(1), BddManager::kTrue),
            m.bdd_and(f, m.var(1)));
  // Quantifying everything in the conjunction's support: satisfiable -> 1.
  EXPECT_EQ(m.and_exists(m.var(0), m.var(2), cube), BddManager::kTrue);
  // Contradiction stays 0 under quantification.
  EXPECT_EQ(m.and_exists(m.var(0), m.nvar(0), m.make_cube({0})),
            BddManager::kFalse);
}

TEST(OpCache, LossyCacheCorrectUnderForcedCollisions) {
  // A 2-slot pinned cache collides on nearly every lookup; every operator
  // result must still match a default-cache manager computing the same
  // functions (compared via full truth-table evaluation).
  Rng rng(777);
  BddManager tiny(8, kDefaultBddNodeLimit, /*op_cache_entries=*/2);
  BddManager roomy(8);
  ASSERT_EQ(tiny.op_cache_entries(), 2u);
  std::vector<Ref> tpool, rpool;
  for (unsigned v = 0; v < 8; ++v) {
    tpool.push_back(tiny.var(v));
    rpool.push_back(roomy.var(v));
  }
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t i = rng.index(tpool.size());
    const std::size_t j = rng.index(tpool.size());
    const std::size_t k = rng.index(tpool.size());
    tpool.push_back(tiny.ite(tpool[i], tpool[j], tpool[k]));
    rpool.push_back(roomy.ite(rpool[i], rpool[j], rpool[k]));
    if (trial % 3 == 0) {
      std::vector<unsigned> vars;
      for (unsigned v = 0; v < 8; ++v) {
        if (rng.coin()) vars.push_back(v);
      }
      tpool.push_back(tiny.and_exists(tpool[i], tpool[j], vars));
      rpool.push_back(roomy.and_exists(rpool[i], rpool[j], vars));
    }
  }
  // The tiny cache must have actually collided (overwrites observed) —
  // otherwise this test proves nothing.
  EXPECT_GT(tiny.op_cache_stats().overwrites, 0u);
  ASSERT_EQ(tpool.size(), rpool.size());
  for (std::size_t fn = 8; fn < tpool.size(); ++fn) {
    for (std::uint64_t x = 0; x < 256; ++x) {
      std::vector<bool> assign(8);
      for (unsigned v = 0; v < 8; ++v) assign[v] = get_bit(x, v);
      ASSERT_EQ(tiny.evaluate(tpool[fn], assign),
                roomy.evaluate(rpool[fn], assign))
          << "function " << fn << " assignment " << x;
    }
  }
}

TEST(OpCache, StatsObserveHitsAndLookups) {
  BddManager m(6);
  const auto before = m.op_cache_stats();
  const Ref f = m.bdd_and(m.var(0), m.var(1));
  const Ref g = m.bdd_and(m.var(0), m.var(1));  // replay: cache hit
  EXPECT_EQ(f, g);
  const auto after = m.op_cache_stats();
  EXPECT_GT(after.lookups, before.lookups);
  EXPECT_GT(after.hits, before.hits);
}

TEST(UniqueTable, CanonicityAcrossGrowth) {
  // Push the open-addressed table through several doublings, then verify
  // hash-consing still dedupes: the same function built two ways is the
  // same node.
  BddManager m(20);
  Rng rng(2024);
  Ref chain = BddManager::kFalse;
  for (int round = 0; round < 4000 && m.num_nodes() <= 20000; ++round) {
    Ref cube = BddManager::kTrue;
    for (int lit = 0; lit < 6; ++lit) {
      const unsigned v = static_cast<unsigned>(rng.index(20));
      cube = m.bdd_and(cube, rng.coin() ? m.var(v) : m.nvar(v));
    }
    chain = m.bdd_xor(chain, cube);
  }
  EXPECT_GT(m.num_nodes(), 8192u);  // at least one growth from 2^13 slots
  const Ref lhs = m.bdd_or(m.bdd_and(m.var(3), m.var(7)),
                           m.bdd_and(m.var(3), m.var(11)));
  const Ref rhs = m.bdd_and(m.var(3), m.bdd_or(m.var(7), m.var(11)));
  EXPECT_EQ(lhs, rhs);
}

TEST(Cubes, MakeCubeSortsAndDedupes) {
  BddManager m(8);
  const Ref a = m.make_cube({5, 1, 3, 1, 5});
  const Ref b = m.bdd_and(m.var(1), m.bdd_and(m.var(3), m.var(5)));
  EXPECT_EQ(a, b);
  EXPECT_EQ(m.make_cube({}), BddManager::kTrue);
  EXPECT_THROW(m.make_cube({8}), InvalidArgument);
}

TEST(Cubes, BalancedReductionsMatchFolds) {
  BddManager m(12);
  std::vector<Ref> ops;
  for (unsigned v = 0; v < 12; ++v) {
    ops.push_back(v % 3 == 0 ? m.nvar(v) : m.var(v));
  }
  Ref and_fold = BddManager::kTrue, or_fold = BddManager::kFalse,
      xor_fold = BddManager::kFalse;
  for (const Ref f : ops) {
    and_fold = m.bdd_and(and_fold, f);
    or_fold = m.bdd_or(or_fold, f);
    xor_fold = m.bdd_xor(xor_fold, f);
  }
  EXPECT_EQ(m.bdd_and_many(ops), and_fold);
  EXPECT_EQ(m.bdd_or_many(ops), or_fold);
  EXPECT_EQ(m.bdd_xor_many(ops), xor_fold);
  EXPECT_EQ(m.bdd_and_many({}), BddManager::kTrue);
  EXPECT_EQ(m.bdd_or_many({}), BddManager::kFalse);
  EXPECT_EQ(m.bdd_xor_many({}), BddManager::kFalse);
  EXPECT_EQ(m.bdd_and_many({ops[4]}), ops[4]);
}

TEST(TableCells, MintermExpansionHonoursBudgetCheckpoints) {
  // A table cell with enough pins that the 2^pins expansion crosses the
  // leaf-checkpoint cadence: a step-quota budget must abort construction
  // with ResourceExhausted (previously the whole expansion ran unbounded
  // between checkpoints).
  Netlist n;
  const unsigned pins = 12;
  TruthTable t(pins, 1);
  for (std::uint64_t x = 0; x < pow2(pins); ++x) {
    t.set_row(x, popcount64(x) & 1);  // parity: densest possible minterms
  }
  const TableId tid = n.add_table(std::move(t));
  const NodeId cell = n.add_table_cell(tid, "parity");
  std::vector<NodeId> ins;
  for (unsigned p = 0; p < pins; ++p) {
    ins.push_back(n.add_input("i" + std::to_string(p)));
    n.connect(PortRef(ins.back(), 0), PinRef(cell, p));
  }
  const NodeId latch = n.add_latch("q");
  const NodeId out = n.add_output("o");
  n.connect(PortRef(cell, 0), PinRef(latch, 0));
  n.connect(PortRef(latch, 0), PinRef(out, 0));
  n.check_valid(true);

  ResourceLimits limits;
  limits.step_quota = 4;  // a handful of checkpoints, then exhaustion
  ResourceBudget budget(limits);
  EXPECT_THROW(SymbolicMachine(n, kDefaultBddNodeLimit, &budget),
               ResourceExhausted);

  // Ungoverned, the same cell builds fine and computes parity.
  SymbolicMachine sm(n);
  BddManager& m = sm.manager();
  std::vector<Ref> inputs;
  for (unsigned p = 0; p < pins; ++p) {
    inputs.push_back(m.var(sm.input_var(p)));
  }
  EXPECT_EQ(sm.next_function(0), m.bdd_xor_many(inputs));
}

}  // namespace
}  // namespace rtv
