#include <gtest/gtest.h>

#include <cstdio>

#include "gen/paper_circuits.hpp"
#include "gen/random_circuits.hpp"
#include "io/dot_export.hpp"
#include "io/rnl_format.hpp"
#include "sim/binary_sim.hpp"
#include "stg/stg.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace rtv {
namespace {

using testing::toggle_circuit;

/// Structural + behavioural round-trip check.
void expect_round_trip(const Netlist& original) {
  const std::string text = write_rnl(original);
  const Netlist parsed = read_rnl(text);
  EXPECT_EQ(parsed.primary_inputs().size(), original.primary_inputs().size());
  EXPECT_EQ(parsed.primary_outputs().size(),
            original.primary_outputs().size());
  EXPECT_EQ(parsed.num_latches(), original.num_latches());
  EXPECT_EQ(parsed.num_gates(), original.num_gates());
  // Same text on re-serialization (canonical form is stable).
  EXPECT_EQ(write_rnl(parsed), text);
  // Same behaviour when small enough.
  if (original.num_latches() <= 8 && original.primary_inputs().size() <= 6) {
    const Stg a = Stg::extract(original);
    const Stg b = Stg::extract(parsed);
    EXPECT_TRUE(implies(a, b));
    EXPECT_TRUE(implies(b, a));
  }
}

TEST(Rnl, RoundTripToggle) { expect_round_trip(toggle_circuit()); }

TEST(Rnl, RoundTripPaperCircuits) {
  expect_round_trip(figure1_original());
  expect_round_trip(figure1_retimed());
}

TEST(Rnl, RoundTripWithTables) {
  Netlist n;
  const NodeId a = n.add_input("a");
  const NodeId b = n.add_input("b");
  const TableId t = n.add_table(TruthTable::half_adder());
  const NodeId ha = n.add_table_cell(t, "ha");
  const NodeId o1 = n.add_output("s");
  const NodeId o2 = n.add_output("c");
  n.connect(a, ha, 0);
  n.connect(b, ha, 1);
  n.connect(PortRef(ha, 0), PinRef(o1, 0));
  n.connect(PortRef(ha, 1), PinRef(o2, 0));
  n.check_valid(true);
  expect_round_trip(n);
  // Table semantics preserved exactly.
  const Netlist parsed = read_rnl(write_rnl(n));
  const NodeId cell = parsed.find_by_name("ha");
  EXPECT_EQ(parsed.cell_function(cell), TruthTable::half_adder());
}

TEST(Rnl, RoundTripRandomCircuits) {
  Rng rng(99);
  RandomCircuitOptions opt;
  opt.num_inputs = 3;
  opt.num_latches = 4;
  opt.num_gates = 20;
  opt.table_probability = 0.25;
  for (int trial = 0; trial < 5; ++trial) {
    expect_round_trip(random_netlist(opt, rng));
  }
}

TEST(Rnl, FileSaveLoad) {
  const std::string path = ::testing::TempDir() + "/rtv_roundtrip.rnl";
  save_rnl(toggle_circuit(), path);
  const Netlist loaded = load_rnl(path);
  EXPECT_EQ(loaded.num_latches(), 1u);
  std::remove(path.c_str());
}

TEST(Rnl, LoadMissingFileThrows) {
  EXPECT_THROW(load_rnl("/nonexistent/path/x.rnl"), Error);
}

TEST(Rnl, ParseErrors) {
  EXPECT_THROW(read_rnl(""), ParseError);
  EXPECT_THROW(read_rnl("node a input\n"), ParseError);  // missing header
  EXPECT_THROW(read_rnl("rnl 2\n"), ParseError);         // bad version
  EXPECT_THROW(read_rnl("rnl 1\nfrobnicate\n"), ParseError);
  EXPECT_THROW(read_rnl("rnl 1\nnode a bogus_kind\n"), ParseError);
  EXPECT_THROW(read_rnl("rnl 1\nnode a input\nnode a input\n"), ParseError);
  EXPECT_THROW(read_rnl("rnl 1\nwire a.0 b.0\n"), ParseError);
  EXPECT_THROW(read_rnl("rnl 1\nnode a input\nnode o output\nwire a.5 o.0\n"),
               ParseError);
  EXPECT_THROW(read_rnl("rnl 1\nnode g and 2\n"), ParseError);  // dangling pins
  EXPECT_THROW(read_rnl("rnl 1\nrow 00 1\n"), ParseError);  // row w/o table
}

TEST(Rnl, ParseErrorCarriesLineNumber) {
  try {
    read_rnl("rnl 1\nnode a input\nfrobnicate\n");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Rnl, CommentsAndBlankLines) {
  const Netlist n = read_rnl(
      "rnl 1\n"
      "# a comment\n"
      "\n"
      "node a input  # trailing comment\n"
      "node o output\n"
      "wire a.0 o.0\n");
  EXPECT_EQ(n.primary_inputs().size(), 1u);
}

TEST(Rnl, TableRowOrderEnforced) {
  EXPECT_THROW(read_rnl(
                   "rnl 1\n"
                   "table t 1 1\n"
                   "row 1 1\n"
                   "row 0 0\n"),
               ParseError);
}

TEST(Rnl, PreservesIoOrder) {
  Netlist n;
  n.add_input("second_created_first");
  n.add_input("then_this");
  const NodeId o = n.add_output("o");
  const NodeId g = n.add_gate(CellKind::kOr, 2, "g");
  n.connect(n.primary_inputs()[0], g, 0);
  n.connect(n.primary_inputs()[1], g, 1);
  n.connect(PortRef(g, 0), PinRef(o, 0));
  const Netlist p = read_rnl(write_rnl(n));
  EXPECT_EQ(p.name(p.primary_inputs()[0]), "second_created_first");
  EXPECT_EQ(p.name(p.primary_inputs()[1]), "then_this");
}

TEST(Dot, NetlistExportMentionsNodes) {
  const std::string dot = netlist_to_dot(figure1_original());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("AND1"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // the latch
  EXPECT_NE(dot.find("diamond"), std::string::npos);       // junctions
}

TEST(Dot, StgExportHasAllEdges) {
  const Stg s = Stg::extract(toggle_circuit());
  const std::string dot = stg_to_dot(s);
  EXPECT_NE(dot.find("s0 -> s1"), std::string::npos);
  EXPECT_NE(dot.find("s1 -> s0"), std::string::npos);
}

}  // namespace
}  // namespace rtv
