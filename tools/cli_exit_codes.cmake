# Exit-code contract tests for the rtv CLI (docs/robustness.md).
#
# Run as a ctest via `cmake -P` because ctest's PASS_REGULAR_EXPRESSION
# overrides exit-code checking — execute_process is the only way to assert
# "this invocation exits with code N" while also matching its diagnostics.
#
# Inputs (all -D):
#   RTV_BIN       path to the rtv executable
#   RTV_FIXTURES  path to tools/fixtures

if(NOT EXISTS "${RTV_BIN}")
  message(FATAL_ERROR "RTV_BIN '${RTV_BIN}' does not exist")
endif()
if(NOT IS_DIRECTORY "${RTV_FIXTURES}")
  message(FATAL_ERROR "RTV_FIXTURES '${RTV_FIXTURES}' is not a directory")
endif()

set(failures 0)

# check(<name> <expected-exit-code> <stderr-regex-or-empty> <arg>...)
function(check name expected stderr_regex)
  execute_process(
    COMMAND "${RTV_BIN}" ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    TIMEOUT 120)
  if(NOT rc STREQUAL "${expected}")
    message(SEND_ERROR
      "${name}: expected exit ${expected}, got '${rc}'\n"
      "  command: rtv ${ARGN}\n  stdout: ${out}\n  stderr: ${err}")
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    return()
  endif()
  if(NOT stderr_regex STREQUAL "" AND NOT err MATCHES "${stderr_regex}")
    message(SEND_ERROR
      "${name}: stderr does not match '${stderr_regex}'\n  stderr: ${err}")
    math(EXPR failures "${failures} + 1")
    set(failures ${failures} PARENT_SCOPE)
    return()
  endif()
  message(STATUS "${name}: exit ${rc} ok")
endfunction()

set(toggle "${RTV_FIXTURES}/toggle.rnl")
set(malformed "${RTV_FIXTURES}/malformed.rnl")

# 0: success / property holds.
check(validate_ok 0 "" validate "${toggle}" --min-area)

# 2: bad command line (unknown flag, unknown command, missing operand).
check(usage_unknown_flag 2 "unknown flag" validate "${toggle}" --bogus)
check(usage_unknown_command 2 "unknown command" frobnicate)
check(usage_no_design 2 "validate needs one design" validate)
check(usage_bad_on_exhaust 2 "--on-exhaust must be degrade or fail"
      validate "${toggle}" --min-area --on-exhaust=sometimes)

# 3: the design file exists but fails to parse.
check(parse_error 3 "parse error:" validate "${malformed}" --min-area)

# 6: the design file cannot be opened.
check(io_error 6 "io error: cannot open"
      validate "${RTV_FIXTURES}/no_such_design.rnl" --min-area)

# 7: budget exhausted under --on-exhaust=fail; the partial report still
# goes to stdout before the failure exit.
check(exhausted_fail 7 "resource budget exhausted"
      validate "${toggle}" --min-area --step-quota=1 --on-exhaust=fail)

# 1 under the default --on-exhaust=degrade: an exhausted partial report is
# never a pass, but it is not an error either.
check(exhausted_degrade 1 ""
      validate "${toggle}" --min-area --step-quota=1)

# Degraded reports must be labeled: the degrade run above prints its
# verdict line. Re-run capturing stdout to pin the label.
execute_process(
  COMMAND "${RTV_BIN}" validate "${toggle}" --min-area --step-quota=1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err TIMEOUT 120)
if(NOT out MATCHES "verdict:  exhausted")
  message(SEND_ERROR "degrade run did not label its verdict: ${out}")
  math(EXPR failures "${failures} + 1")
endif()
if(out MATCHES "verdict:  proven")
  message(SEND_ERROR "degraded run masquerades as proven: ${out}")
  math(EXPR failures "${failures} + 1")
endif()

# Budget flags work on flow and faultsim too.
check(flow_ok 0 "" flow "${toggle}" --min-area)
check(flow_exhausted_fail 7 "resource budget exhausted"
      flow "${toggle}" --min-area --step-quota=1 --on-exhaust=fail)
check(faultsim_ok 0 "" faultsim "${toggle}" --mode=cls --random=8 --cycles=4)
check(faultsim_exhausted_fail 7 "resource budget exhausted"
      faultsim "${toggle}" --mode=exact --random=8 --cycles=4
      --step-quota=1 --on-exhaust=fail)

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} exit-code check(s) failed")
endif()
message(STATUS "all CLI exit-code checks passed")
