// rtv — command-line driver for the retiming-validity library.
//
//   rtv info <design>                      summary, stats, safety census
//   rtv convert <in> <out>                 .rnl/.blif/.dot conversion
//   rtv simulate <design> --inputs SEQ[,SEQ...] [--state BITS] [--cls]
//                [--packed] [--vcd F]
//   rtv retime <design> (--min-area|--min-period|--period N) [-o OUT]
//   rtv validate <design> (--min-area|--min-period)           full check
//   rtv lint <design> [--plan F] [--json] [--max-k N] [--strict]
//   rtv audit <design>                     per-move safety classification
//   rtv redundancy <design> [-o OUT]       CLS-redundancy removal
//   rtv faultsim <design> [--mode M] ...   batch fault simulation, JSON out
//   rtv serve [--socket PATH] ...          long-running verification service
//
// Design files are read by extension: .rnl (native) or .blif.

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "bdd/equivalence.hpp"
#include "bdd/symbolic.hpp"
#include "core/cls_equiv.hpp"
#include "core/cls_reset.hpp"
#include "core/verify.hpp"
#include "core/flow.hpp"
#include "core/redundancy.hpp"
#include "core/safety.hpp"
#include "core/validator.hpp"
#include "fault/fault.hpp"
#include "serve/server.hpp"
#include "fault/fault_sim.hpp"
#include "io/blif.hpp"
#include "io/dot_export.hpp"
#include "io/json.hpp"
#include "io/rnl_format.hpp"
#include "io/vcd.hpp"
#include "retime/apply.hpp"
#include "retime/graph.hpp"
#include "retime/min_area.hpp"
#include "retime/min_period.hpp"
#include "retime/moves.hpp"
#include "sim/binary_sim.hpp"
#include "sim/cls_sim.hpp"
#include "util/budget.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rtv::cli {
namespace {

// Exit codes (documented in usage() and docs/robustness.md). Every failure
// class gets its own code so scripts can tell a malformed netlist from a
// missing file from a blown budget without scraping stderr.
enum ExitCode : int {
  kExitOk = 0,              ///< success / property holds
  kExitVerdictFalse = 1,    ///< ran fine, the checked property does not hold
  kExitUsage = 2,           ///< bad command line
  kExitParse = 3,           ///< input file failed to parse (ParseError)
  kExitInvalidArgument = 4, ///< precondition violation (InvalidArgument)
  kExitCapacity = 5,        ///< capacity limit exceeded (CapacityError)
  kExitIo = 6,              ///< file missing/unreadable/unwritable (IoError)
  kExitExhausted = 7,       ///< budget blown under --on-exhaust=fail
  kExitInternal = 70,       ///< internal invariant failed (a bug)
};

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage:\n"
               "  rtv info <design>\n"
               "  rtv convert <in> <out>           (.rnl | .blif | .dot)\n"
               "  rtv simulate <design> --inputs SEQ[,SEQ...] [--state BITS]"
               " [--cls] [--packed] [--vcd FILE]\n"
               "  rtv retime <design> (--min-area | --min-period | --period N)"
               " [-o OUT]\n"
               "  rtv validate <design> (--min-area | --min-period)\n"
               "  rtv lint <design> [--plan FILE] [--json] [--max-k N]"
               " [--strict] [--no-semantic]\n"
               "      structural diagnostics (RTV1xx), semantic ternary-\n"
               "      dataflow findings (RTV3xx, on by default; disable"
               " with\n"
               "      --no-semantic) and, with --plan, the Section-4 safety\n"
               "      verdict of a retiming-move plan (RTV2xx)\n"
               "  rtv audit <design>\n"
               "  rtv redundancy <design> [-o OUT]\n"
               "  rtv flow <design> [--min-area|--min-period|--period-then-area]"
               " [-o OUT]\n"
               "  rtv reset <design>                find a CLS reset sequence\n"
               "  rtv equiv <a> <b>                 symbolic C ⊑ D + min delay\n"
               "  rtv cls-equiv <a> <b> [--backend B] [--seed S] [--json]\n"
               "      CLS equivalence from all-X (Thm 5.1); exit 0 iff"
               " equivalent\n"
               "  rtv faultsim <design> [--mode exact|sampled|cls]"
               " [--threads N] [--no-drop]\n"
               "               [--inputs SEQ[,SEQ...] | --random N --cycles L"
               " --seed S]\n"
               "               [--sample-lanes N] [--all-faults]\n"
               "      batch stuck-at fault simulation; prints a JSON coverage"
               " summary\n"
               "      (default: cls mode, all hardware threads, collapsed"
               " faults,\n"
               "      64 random tests of 16 cycles)\n"
               "  rtv serve [--socket PATH] [--threads N] [--max-inflight N]\n"
               "            [--admission-queue N] [--default-deadline-ms N]\n"
               "            [--watchdog-grace N] [--write-timeout-ms N]\n"
               "            [--default-time-budget-ms N] [--cache-bytes N]\n"
               "      long-running verification service: newline-delimited"
               " JSON jobs\n"
               "      over a Unix socket (or stdin/stdout without --socket);\n"
               "      jobs beyond max-inflight wait in a bounded admission\n"
               "      queue (default 2x max-inflight) and are shed with an\n"
               "      'overloaded' envelope when it is full; a watchdog\n"
               "      cancels jobs at their deadline and quarantines ones\n"
               "      that ignore it; wire protocol reference in"
               " docs/serve.md\n"
               "\n"
               "equivalence backends (validate, flow, cls-equiv):\n"
               "  --backend B          explicit (default) | bdd | sat |"
               " portfolio | static\n"
               "                       (engine matrix in docs/backends.md;\n"
               "                       every backend tries the static\n"
               "                       ternary-fixpoint proof first)\n"
               "\n"
               "BDD engine (validate, flow, cls-equiv with --backend bdd or"
               " portfolio):\n"
               "  --bdd-gc MODE        on | off (default): reclaim dead"
               " nodes\n"
               "                       under allocation pressure instead of\n"
               "                       exhausting on the node cap\n"
               "  --bdd-reorder MODE   off (default) | pressure: Rudell\n"
               "                       sifting of the variable order when"
               " the\n"
               "                       unique table crosses its trigger\n"
               "\n"
               "resource governance (validate, flow, cls-equiv, faultsim):\n"
               "  --time-budget-ms N   wall-clock budget (0 = unlimited)\n"
               "  --node-limit N       BDD node cap for the budget\n"
               "  --step-quota N       checkpoint quota (deterministic"
               " budget)\n"
               "  --on-exhaust MODE    degrade (default): return a partial,\n"
               "                       honestly-labeled report; fail: exit"
               " 7\n"
               "\n"
               "exit codes: 0 ok/property holds, 1 property fails, 2 usage,\n"
               "  3 parse error, 4 invalid argument, 5 capacity exceeded,\n"
               "  6 file I/O error, 7 budget exhausted (--on-exhaust=fail),\n"
               "  70 internal error\n");
  std::exit(kExitUsage);
}

/// Strict decimal parsing for numeric options: std::atoi would wrap
/// negatives through unsigned ("--threads -1" → ~4 billion worker threads)
/// and silently turn garbage into 0, so accept only plain digits in
/// [0, max] and reject everything else with a usage error.
std::uint64_t parse_number(const char* flag, const std::string& text,
                           std::uint64_t max) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])) ||
      *end != '\0' || errno == ERANGE || v > max) {
    usage((std::string(flag) + " needs an integer in [0, " +
           std::to_string(max) + "], got '" + text + "'")
              .c_str());
  }
  return v;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Netlist load_design(const std::string& path) {
  if (ends_with(path, ".blif")) return load_blif(path).netlist;
  if (ends_with(path, ".rnl")) return load_rnl(path);
  usage("design files must end in .rnl or .blif");
}

void save_design(const Netlist& n, const std::string& path) {
  if (ends_with(path, ".blif")) {
    save_blif(n, path);
  } else if (ends_with(path, ".rnl")) {
    save_rnl(n, path);
  } else if (ends_with(path, ".dot")) {
    std::ofstream f(path);
    if (!f) throw Error("cannot open '" + path + "'");
    f << netlist_to_dot(n);
  } else {
    usage("output files must end in .rnl, .blif or .dot");
  }
  std::printf("wrote %s\n", path.c_str());
}

struct Args {
  std::vector<std::string> positional;
  std::optional<std::string> inputs, state, out, vcd, mode, plan, backend;
  std::optional<std::string> bdd_gc, bdd_reorder;
  std::optional<int> period;
  std::optional<unsigned> threads, random, cycles, sample_lanes;
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> max_k;
  // serve
  std::optional<std::string> socket;
  std::optional<unsigned> max_inflight, admission_queue, watchdog_grace;
  std::optional<std::uint64_t> default_time_budget_ms, default_deadline_ms;
  std::optional<std::uint64_t> write_timeout_ms;
  std::optional<std::size_t> cache_bytes;
  bool min_area = false, min_period = false, cls = false, packed = false;
  bool no_drop = false, all_faults = false, json = false, strict = false;
  bool semantic = true;  // lint: ternary dataflow passes (RTV3xx)
  // Resource governance (validate, flow, faultsim).
  std::optional<std::uint64_t> time_budget_ms, step_quota;
  std::optional<std::size_t> node_limit;
  bool fail_on_exhaust = false;  // --on-exhaust fail (default: degrade)
};

/// The limits a governed command should run under. Unset flags mean
/// "unlimited" except the node cap, which keeps its library default.
ResourceLimits limits_from_args(const Args& args) {
  ResourceLimits limits;
  limits.time_budget_ms = args.time_budget_ms.value_or(0);
  limits.step_quota = args.step_quota.value_or(0);
  if (args.node_limit) limits.bdd_node_limit = *args.node_limit;
  return limits;
}

/// --bdd-gc / --bdd-reorder into the BDD backend's engine options (defaults
/// preserve the legacy arena behavior: no collection, fixed order).
BddEquivOptions bdd_options_from_args(const Args& args) {
  BddEquivOptions bdd;
  if (args.bdd_gc) {
    if (*args.bdd_gc == "on") {
      bdd.gc = true;
    } else if (*args.bdd_gc != "off") {
      usage("--bdd-gc must be on or off");
    }
  }
  if (args.bdd_reorder) {
    if (*args.bdd_reorder == "pressure") {
      bdd.reorder.mode = ReorderMode::kOnPressure;
    } else if (*args.bdd_reorder != "off") {
      usage("--bdd-reorder must be off or pressure");
    }
  }
  return bdd;
}

/// --backend selection for the CLS-equivalence gate (default: explicit).
EquivalenceBackend backend_from_args(const Args& args) {
  if (!args.backend) return EquivalenceBackend::kExplicit;
  const auto backend = equivalence_backend_from_string(*args.backend);
  if (!backend) {
    usage("--backend must be explicit, bdd, sat, portfolio or static");
  }
  return *backend;
}

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string a = argv[i];
    // Accept both "--flag value" and "--flag=value".
    std::optional<std::string> inline_value;
    if (a.size() > 2 && a[0] == '-' && a[1] == '-') {
      const std::size_t eq = a.find('=');
      if (eq != std::string::npos) {
        inline_value = a.substr(eq + 1);
        a = a.substr(0, eq);
      }
    }
    const auto value = [&](const char* flag) -> std::string {
      if (inline_value) return *inline_value;
      if (i + 1 >= argc) usage((std::string(flag) + " needs a value").c_str());
      return argv[++i];
    };
    if (a == "--inputs") {
      args.inputs = value("--inputs");
    } else if (a == "--state") {
      args.state = value("--state");
    } else if (a == "-o" || a == "--out") {
      args.out = value("-o");
    } else if (a == "--vcd") {
      args.vcd = value("--vcd");
    } else if (a == "--period") {
      args.period = static_cast<int>(parse_number(
          "--period", value("--period"), std::numeric_limits<int>::max()));
    } else if (a == "--mode") {
      args.mode = value("--mode");
    } else if (a == "--plan") {
      args.plan = value("--plan");
    } else if (a == "--backend") {
      args.backend = value("--backend");
    } else if (a == "--bdd-gc") {
      args.bdd_gc = value("--bdd-gc");
    } else if (a == "--bdd-reorder") {
      args.bdd_reorder = value("--bdd-reorder");
    } else if (a == "--max-k") {
      args.max_k = static_cast<std::size_t>(parse_number(
          "--max-k", value("--max-k"), std::numeric_limits<std::size_t>::max()));
    } else if (a == "--json") {
      args.json = true;
    } else if (a == "--strict") {
      args.strict = true;
    } else if (a == "--semantic") {
      args.semantic = true;
    } else if (a == "--no-semantic") {
      args.semantic = false;
    } else if (a == "--threads") {
      // 0 means "all hardware threads"; cap explicit counts well past any
      // real machine but short of exhausting the OS thread limit.
      args.threads = static_cast<unsigned>(
          parse_number("--threads", value("--threads"), 1024));
    } else if (a == "--random") {
      args.random = static_cast<unsigned>(
          parse_number("--random", value("--random"),
                       std::numeric_limits<unsigned>::max()));
    } else if (a == "--cycles") {
      args.cycles = static_cast<unsigned>(
          parse_number("--cycles", value("--cycles"),
                       std::numeric_limits<unsigned>::max()));
    } else if (a == "--sample-lanes") {
      args.sample_lanes = static_cast<unsigned>(
          parse_number("--sample-lanes", value("--sample-lanes"),
                       std::numeric_limits<unsigned>::max()));
    } else if (a == "--seed") {
      args.seed = parse_number("--seed", value("--seed"),
                               std::numeric_limits<std::uint64_t>::max());
    } else if (a == "--no-drop") {
      args.no_drop = true;
    } else if (a == "--all-faults") {
      args.all_faults = true;
    } else if (a == "--min-area") {
      args.min_area = true;
    } else if (a == "--min-period") {
      args.min_period = true;
    } else if (a == "--cls") {
      args.cls = true;
    } else if (a == "--packed") {
      args.packed = true;
    } else if (a == "--socket") {
      args.socket = value("--socket");
    } else if (a == "--max-inflight") {
      args.max_inflight = static_cast<unsigned>(
          parse_number("--max-inflight", value("--max-inflight"), 4096));
    } else if (a == "--default-time-budget-ms") {
      args.default_time_budget_ms = parse_number(
          "--default-time-budget-ms", value("--default-time-budget-ms"),
          std::numeric_limits<std::uint64_t>::max());
    } else if (a == "--admission-queue") {
      args.admission_queue = static_cast<unsigned>(parse_number(
          "--admission-queue", value("--admission-queue"), 1u << 20));
    } else if (a == "--default-deadline-ms") {
      args.default_deadline_ms = parse_number(
          "--default-deadline-ms", value("--default-deadline-ms"),
          std::numeric_limits<std::uint64_t>::max());
    } else if (a == "--watchdog-grace") {
      args.watchdog_grace = static_cast<unsigned>(parse_number(
          "--watchdog-grace", value("--watchdog-grace"), 1u << 10));
      if (*args.watchdog_grace == 0) {
        usage("--watchdog-grace must be at least 1");
      }
    } else if (a == "--write-timeout-ms") {
      args.write_timeout_ms = parse_number(
          "--write-timeout-ms", value("--write-timeout-ms"),
          std::numeric_limits<std::uint64_t>::max());
    } else if (a == "--cache-bytes") {
      args.cache_bytes = static_cast<std::size_t>(
          parse_number("--cache-bytes", value("--cache-bytes"),
                       std::numeric_limits<std::size_t>::max()));
    } else if (a == "--time-budget-ms") {
      args.time_budget_ms =
          parse_number("--time-budget-ms", value("--time-budget-ms"),
                       std::numeric_limits<std::uint64_t>::max());
    } else if (a == "--node-limit") {
      args.node_limit = static_cast<std::size_t>(
          parse_number("--node-limit", value("--node-limit"),
                       std::numeric_limits<std::size_t>::max()));
    } else if (a == "--step-quota") {
      args.step_quota =
          parse_number("--step-quota", value("--step-quota"),
                       std::numeric_limits<std::uint64_t>::max());
    } else if (a == "--on-exhaust") {
      const std::string mode = value("--on-exhaust");
      if (mode == "fail") {
        args.fail_on_exhaust = true;
      } else if (mode == "degrade") {
        args.fail_on_exhaust = false;
      } else {
        usage("--on-exhaust must be degrade or fail");
      }
    } else if (!a.empty() && a[0] == '-') {
      usage(("unknown flag " + a).c_str());
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int cmd_info(const Args& args) {
  if (args.positional.size() != 1) usage("info needs one design");
  const Netlist n = load_design(args.positional[0]);
  std::printf("%s\n", n.summary().c_str());
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  std::printf("%s\n", g.summary().c_str());
  std::printf("junction-normal: %s, all cells preserve all-X: %s\n",
              n.is_junction_normal() ? "yes" : "no",
              n.all_cells_preserve_all_x() ? "yes" : "no");
  const auto moves = enabled_moves(n);
  std::size_t unsafe = 0;
  for (const auto& m : moves) {
    if (!classify_move(n, m).preserves_safe_replacement()) ++unsafe;
  }
  std::printf("enabled atomic moves: %zu (%zu unsafe without delay)\n",
              moves.size(), unsafe);
  return 0;
}

int cmd_convert(const Args& args) {
  if (args.positional.size() != 2) usage("convert needs <in> <out>");
  save_design(load_design(args.positional[0]), args.positional[1]);
  return 0;
}

/// Splits a comma-separated list of input sequences ("01.10,11.00").
std::vector<std::string> split_sequences(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// --packed: batch simulation through the packed ternary engine, one lane
/// per comma-separated input sequence (64 sequences per machine word).
int cmd_simulate_packed(const Netlist& n, const Args& args) {
  const std::vector<std::string> parts = split_sequences(*args.inputs);
  if (args.cls) {
    std::vector<TritsSeq> tests;
    for (const std::string& p : parts) {
      tests.push_back(trits_seq_from_string(p));
    }
    const std::vector<TritsSeq> responses = ClsSimulator::run_batch(n, tests);
    for (std::size_t i = 0; i < tests.size(); ++i) {
      std::printf("%s -> %s\n", sequence_to_string(tests[i]).c_str(),
                  sequence_to_string(responses[i]).c_str());
    }
  } else {
    std::vector<BitsSeq> tests;
    for (const std::string& p : parts) {
      tests.push_back(bits_seq_from_string(p));
    }
    Bits state(n.latches().size(), 0);
    if (args.state) state = bits_from_string(*args.state);
    const std::vector<BitsSeq> responses =
        BinarySimulator::run_batch(n, state, tests);
    for (std::size_t i = 0; i < tests.size(); ++i) {
      std::printf("%s -> %s\n", sequence_to_string(tests[i]).c_str(),
                  sequence_to_string(responses[i]).c_str());
    }
  }
  return 0;
}

int cmd_simulate(const Args& args) {
  if (args.positional.size() != 1 || !args.inputs) {
    usage("simulate needs one design and --inputs");
  }
  const Netlist n = load_design(args.positional[0]);
  if (args.packed) return cmd_simulate_packed(n, args);
  if (args.cls) {
    const TritsSeq inputs = trits_seq_from_string(*args.inputs);
    ClsSimulator sim(n);
    for (const Trits& in : inputs) {
      std::printf("%s -> %s\n", to_string(in).c_str(),
                  to_string(sim.step(in)).c_str());
    }
    if (args.vcd) {
      save_vcd(cls_simulate_to_vcd(n, inputs), *args.vcd);
      std::printf("wrote %s\n", args.vcd->c_str());
    }
  } else {
    const BitsSeq inputs = bits_seq_from_string(*args.inputs);
    Bits state(n.latches().size(), 0);
    if (args.state) state = bits_from_string(*args.state);
    BinarySimulator sim(n);
    sim.set_state(state);
    for (const Bits& in : inputs) {
      std::printf("%s -> %s\n", to_string(in).c_str(),
                  to_string(sim.step(in)).c_str());
    }
    if (args.vcd) {
      save_vcd(simulate_to_vcd(n, state, inputs), *args.vcd);
      std::printf("wrote %s\n", args.vcd->c_str());
    }
  }
  return 0;
}

std::vector<int> solve_lags(const RetimeGraph& g, const Args& args) {
  if (args.min_area) return min_area_retime(g).lag;
  if (args.min_period) return min_period_retime_feas(g).lag;
  if (args.period) {
    const auto r = min_area_retime_with_period(g, *args.period);
    if (!r) throw Error("period " + std::to_string(*args.period) +
                        " is infeasible");
    return r->lag;
  }
  usage("pick --min-area, --min-period or --period N");
}

int cmd_retime(const Args& args) {
  if (args.positional.size() != 1) usage("retime needs one design");
  const Netlist n = load_design(args.positional[0]);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  const std::vector<int> lag = solve_lags(g, args);
  SequencedRetiming seq;
  const SafetyReport safety = analyze_lag_retiming(n, g, lag, &seq);
  std::printf("before: %s\n", g.summary().c_str());
  std::printf("after:  period %d, %zu registers\n", g.clock_period(lag),
              seq.retimed.num_latches());
  std::printf("safety: %s\n", safety.summary().c_str());
  if (args.out) save_design(seq.retimed.compacted(), *args.out);
  return 0;
}

/// --on-exhaust=fail: a blown budget is an error, not a degraded report.
[[noreturn]] void exhausted_failure(const ResourceUsage& usage) {
  std::fprintf(stderr, "error: resource budget exhausted (%s)\n",
               usage.summary().c_str());
  std::exit(kExitExhausted);
}

int cmd_validate(const Args& args) {
  if (args.positional.size() != 1) usage("validate needs one design");
  const Netlist n = load_design(args.positional[0]);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  ValidationOptions opt;
  opt.verify.backend = backend_from_args(args);
  opt.verify.bdd = bdd_options_from_args(args);
  opt.budget = limits_from_args(args);
  const RetimingValidation v =
      validate_retiming(n, g, solve_lags(g, args), opt);
  std::printf("%s", v.summary().c_str());
  if (v.verdict == Verdict::kExhausted) {
    if (args.fail_on_exhaust) exhausted_failure(v.usage);
    return kExitVerdictFalse;  // a partial report is never a pass
  }
  return v.theorems_hold && v.cls.equivalent ? kExitOk : kExitVerdictFalse;
}

/// Structured static analysis: structural diagnostics, the semantic
/// ternary-dataflow passes (RTV3xx, on by default) plus, with --plan, the
/// Section-4 verdict of a retiming-move plan. Exit 0 when clean, 1 on
/// errors (or on warnings too with --strict). .rnl designs are loaded
/// without the loader's own validation so every defect is reported, not
/// just the first one check_valid would throw on.
int cmd_lint(const Args& args) {
  if (args.positional.size() != 1) usage("lint needs one design");
  const std::string& path = args.positional[0];
  const Netlist n = ends_with(path, ".rnl") ? load_rnl(path, false)
                                            : load_design(path);
  LintOptions opt;
  opt.max_k = args.max_k;
  opt.semantic = args.semantic;
  LintResult result;
  if (args.plan) {
    result = run_lint(n, load_plan(*args.plan, n).moves, opt);
  } else {
    result = run_lint(n, opt);
  }
  std::fputs((args.json ? render_json(result) : render_text(result)).c_str(),
             stdout);
  if (result.has_errors()) return 1;
  return args.strict && result.diagnostics.num_warnings() > 0 ? 1 : 0;
}

int cmd_audit(const Args& args) {
  if (args.positional.size() != 1) usage("audit needs one design");
  const Netlist n = load_design(args.positional[0]);
  for (const RetimingMove& move : enabled_moves(n)) {
    const MoveClass cls = classify_move(n, move);
    std::printf("%-20s %-8s %-10s %s\n", n.name(move.element).c_str(),
                cell_kind_name(n.kind(move.element)),
                to_string(move.direction),
                cls.preserves_safe_replacement() ? "safe (Cor 4.4)"
                                                 : "needs delay (Thm 4.5)");
  }
  return 0;
}

int cmd_redundancy(const Args& args) {
  if (args.positional.size() != 1) usage("redundancy needs one design");
  const Netlist n = load_design(args.positional[0]);
  const RedundancyRemovalResult r = remove_cls_redundancies(n);
  std::printf("tied %zu net(s), swept %zu node(s); gates %zu -> %zu\n",
              r.faults_tied, r.nodes_swept, r.gates_before, r.gates_after);
  if (args.out) save_design(r.optimized, *args.out);
  return 0;
}

int cmd_flow(const Args& args) {
  if (args.positional.size() != 1) usage("flow needs one design");
  const Netlist n = load_design(args.positional[0]);
  FlowOptions opt;
  if (args.min_period) opt.objective = FlowOptions::Objective::kMinPeriod;
  if (args.period) opt.objective = FlowOptions::Objective::kMinAreaAtMinPeriod;
  opt.verify.backend = backend_from_args(args);
  opt.verify.bdd = bdd_options_from_args(args);
  opt.budget = limits_from_args(args);
  const FlowReport r = run_synthesis_flow(n, opt);
  std::printf("%s\n", r.summary().c_str());
  if (r.verdict == Verdict::kExhausted && args.fail_on_exhaust) {
    exhausted_failure(r.usage);
  }
  if (args.out && r.accepted()) save_design(r.optimized, *args.out);
  return r.accepted() ? kExitOk : kExitVerdictFalse;
}

int cmd_reset(const Args& args) {
  if (args.positional.size() != 1) usage("reset needs one design");
  const Netlist n = load_design(args.positional[0]);
  const auto seq = find_cls_reset_sequence(n);
  if (!seq) {
    std::printf("no CLS reset sequence within the search bounds — a\n"
                "conservative three-valued simulator never sees this design\n"
                "initialized (Section 5's X-pessimism in the flesh)\n");
    return 1;
  }
  std::printf("CLS reset sequence of length %zu: %s\n", seq->size(),
              sequence_to_string(*seq).c_str());
  return 0;
}

/// Batch stuck-at fault simulation through the multi-threaded engine; the
/// summary goes to stdout as JSON so coverage runs are scriptable.
int cmd_faultsim(const Args& args) {
  if (args.positional.size() != 1) usage("faultsim needs one design");
  const Netlist n = load_design(args.positional[0]);

  FaultSimOptions opt;
  opt.mode = FaultSimMode::kCls;
  if (args.mode) {
    const auto mode = fault_sim_mode_from_string(*args.mode);
    if (!mode) usage("--mode must be exact, sampled or cls");
    opt.mode = *mode;
  }
  opt.threads = args.threads.value_or(0);  // default: all hardware threads
  opt.drop_detected = !args.no_drop;
  if (args.sample_lanes) opt.sample_lanes = *args.sample_lanes;
  if (args.seed) opt.sample_seed = *args.seed;
  opt.budget = limits_from_args(args);

  std::vector<BitsSeq> tests;
  if (args.inputs) {
    for (const std::string& part : split_sequences(*args.inputs)) {
      tests.push_back(bits_seq_from_string(part));
    }
  } else {
    const unsigned count = args.random.value_or(64);
    const unsigned cycles = args.cycles.value_or(16);
    const std::size_t width = n.primary_inputs().size();
    Rng rng(args.seed.value_or(1));
    tests.resize(count);
    for (BitsSeq& seq : tests) {
      for (unsigned t = 0; t < cycles; ++t) {
        Bits in(width);
        for (auto& v : in) v = rng.coin();
        seq.push_back(std::move(in));
      }
    }
  }

  const std::vector<Fault> faults =
      args.all_faults ? enumerate_faults(n) : collapse_faults(n);
  const FaultSimResult r = fault_simulate(n, faults, tests, opt);

  std::printf("{\n");
  std::printf("  \"design\": \"%s\",\n", args.positional[0].c_str());
  std::printf("  \"mode\": \"%s\",\n", to_string(opt.mode));
  std::printf("  \"threads\": %u,\n", ThreadPool::resolve_threads(opt.threads));
  std::printf("  \"drop_detected\": %s,\n",
              opt.drop_detected ? "true" : "false");
  std::printf("  \"faults\": %zu,\n", faults.size());
  std::printf("  \"tests\": %zu,\n", tests.size());
  std::printf("  \"detected\": %zu,\n", r.num_detected);
  std::printf("  \"coverage\": %.6g,\n", r.coverage);
  std::printf("  \"faults_dropped\": %zu,\n", r.faults_dropped);
  std::printf("  \"tests_run\": %zu,\n", r.tests_run);
  std::printf("  \"wall_seconds\": %.6g,\n", r.wall_seconds);
  std::printf("  \"complete\": %s,\n", r.complete ? "true" : "false");
  std::printf("  \"faults_skipped\": %zu,\n", r.faults_skipped);
  std::printf("  \"budget_exhausted\": %s,\n",
              r.usage.exhausted ? "true" : "false");
  std::printf("  \"budget_blown\": \"%s\",\n",
              r.usage.blown ? to_string(*r.usage.blown) : "none");
  std::printf("  \"usage_wall_ms\": %.6g,\n", r.usage.wall_ms);
  std::printf("  \"usage_steps\": %llu\n",
              static_cast<unsigned long long>(r.usage.steps));
  std::printf("}\n");
  if (!r.complete && args.fail_on_exhaust) exhausted_failure(r.usage);
  return kExitOk;
}

int cmd_serve(const Args& args) {
  if (!args.positional.empty()) {
    usage("serve takes no positional arguments (designs arrive as jobs)");
  }
  serve::ServeOptions opt;
  opt.threads = args.threads.value_or(0);
  opt.max_inflight = args.max_inflight.value_or(0);
  opt.admission_queue = args.admission_queue.value_or(0);
  opt.default_time_budget_ms = args.default_time_budget_ms.value_or(0);
  opt.default_deadline_ms = args.default_deadline_ms.value_or(0);
  if (args.watchdog_grace) opt.watchdog_grace = *args.watchdog_grace;
  if (args.write_timeout_ms) opt.write_timeout_ms = *args.write_timeout_ms;
  if (args.cache_bytes) opt.cache_bytes = *args.cache_bytes;
  serve::Server server(opt);
  if (args.socket) {
    std::fprintf(stderr, "rtv serve: listening on %s\n", args.socket->c_str());
    server.serve_socket(*args.socket);
  } else {
    // No socket: NDJSON over stdin/stdout, one response line per request
    // line. Exits on EOF or a shutdown request, after draining.
    server.serve_stream(std::cin, std::cout);
  }
  const serve::ServeStats s = server.stats();
  std::fprintf(stderr,
               "rtv serve: drained; %llu jobs accepted, %llu ok, %llu "
               "errors, %llu rejected (%llu shed), %llu watchdog kills "
               "(%llu wedged), cache %llu hits / %llu misses\n",
               static_cast<unsigned long long>(s.jobs_accepted),
               static_cast<unsigned long long>(s.jobs_done),
               static_cast<unsigned long long>(s.jobs_failed),
               static_cast<unsigned long long>(s.jobs_rejected),
               static_cast<unsigned long long>(s.jobs_shed),
               static_cast<unsigned long long>(s.watchdog_kills),
               static_cast<unsigned long long>(s.watchdog_wedged),
               static_cast<unsigned long long>(s.cache.hits),
               static_cast<unsigned long long>(s.cache.misses));
  return kExitOk;
}

/// CLS equivalence of two concrete designs (Thm 5.1) through any backend.
/// Exit 0 when equivalent, 1 when distinguishable or undecided.
int cmd_cls_equiv(const Args& args) {
  if (args.positional.size() != 2) usage("cls-equiv needs two designs");
  const Netlist a = load_design(args.positional[0]);
  const Netlist b = load_design(args.positional[1]);
  VerifyOptions opt;
  opt.backend = backend_from_args(args);
  opt.bdd = bdd_options_from_args(args);
  if (args.seed) opt.explicit_opts.seed = *args.seed;
  ResourceBudget budget(limits_from_args(args));
  const ClsEquivalenceResult r = verify_cls_equivalence(a, b, opt, &budget);
  if (args.json) {
    const ResourceUsage& u = r.usage;
    std::ostringstream os;
    os << "{\n"
       << "  \"equivalent\": " << (r.equivalent ? "true" : "false") << ",\n"
       << "  \"verdict\": \"" << to_string(r.verdict) << "\",\n"
       << "  \"exhaustive\": " << (r.exhaustive ? "true" : "false") << ",\n"
       << "  \"decided_by\": \"" << to_string(r.decided_by) << "\",\n"
       << "  \"decided_reason\": \"" << json_escape(r.decided_reason)
       << "\",\n"
       << "  \"counterexample_cycles\": "
       << (r.counterexample ? static_cast<long long>(r.counterexample->size())
                            : -1)
       << ",\n"
       << "  \"usage\": {\"wall_ms\": " << r.usage.wall_ms
       << ", \"steps\": " << u.steps
       << ", \"peak_bdd_nodes\": " << u.peak_bdd_nodes
       << ", \"state_pairs\": " << u.state_pairs
       << ", \"bdd_gc_runs\": " << u.bdd_gc_runs
       << ", \"bdd_nodes_reclaimed\": " << u.bdd_nodes_reclaimed
       << ", \"bdd_reorder_runs\": " << u.bdd_reorder_runs
       << ", \"peak_live_bdd_nodes\": " << u.peak_live_bdd_nodes
       << ", \"exhausted\": " << (u.exhausted ? "true" : "false") << "}\n"
       << "}\n";
    std::fputs(os.str().c_str(), stdout);
  } else {
    std::printf("%s\n", r.summary().c_str());
    std::printf("decided by: %s (%s)\n", to_string(r.decided_by),
                r.decided_reason.c_str());
  }
  if (r.verdict == Verdict::kExhausted) {
    if (args.fail_on_exhaust) exhausted_failure(r.usage);
    return kExitVerdictFalse;  // undecided is never a pass
  }
  return r.equivalent ? kExitOk : kExitVerdictFalse;
}

int cmd_equiv(const Args& args) {
  if (args.positional.size() != 2) usage("equiv needs two designs");
  const Netlist c = load_design(args.positional[0]);
  const Netlist d = load_design(args.positional[1]);
  SymbolicImplication sym(c, d);
  const bool holds = sym.implies();
  std::printf("%s ⊑ %s: %s\n", args.positional[0].c_str(),
              args.positional[1].c_str(), holds ? "holds" : "fails");
  if (!holds) {
    const int n = sym.min_delay_for_implication(32);
    if (n >= 0) {
      std::printf("least n with C^n ⊑ D: %d (safe after %d settle cycles)\n",
                  n, n);
    } else {
      std::printf("no delay makes C^n ⊑ D hold (not a retiming pair?)\n");
    }
  }
  return holds ? 0 : 1;
}

int run(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Args args = parse_args(argc, argv, 2);
  if (cmd == "info") return cmd_info(args);
  if (cmd == "convert") return cmd_convert(args);
  if (cmd == "simulate") return cmd_simulate(args);
  if (cmd == "retime") return cmd_retime(args);
  if (cmd == "validate") return cmd_validate(args);
  if (cmd == "lint") return cmd_lint(args);
  if (cmd == "audit") return cmd_audit(args);
  if (cmd == "redundancy") return cmd_redundancy(args);
  if (cmd == "flow") return cmd_flow(args);
  if (cmd == "reset") return cmd_reset(args);
  if (cmd == "cls-equiv") return cmd_cls_equiv(args);
  if (cmd == "equiv") return cmd_equiv(args);
  if (cmd == "faultsim") return cmd_faultsim(args);
  if (cmd == "serve") return cmd_serve(args);
  usage(("unknown command '" + cmd + "'").c_str());
}

}  // namespace
}  // namespace rtv::cli

int main(int argc, char** argv) {
  // Opt-in fault-injection harness: RTV_FAULT_INJECT=N trips budget
  // exhaustion at the N-th checkpoint (see util/fault_inject.hpp). A no-op
  // unless the variable is set.
  rtv::fault_inject::arm_from_env();
  // Most-derived classes first — every subclass gets its documented exit
  // code, the Error base is the catch-all.
  try {
    return rtv::cli::run(argc, argv);
  } catch (const rtv::InternalError& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return rtv::cli::kExitInternal;
  } catch (const rtv::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return rtv::cli::kExitParse;
  } catch (const rtv::CapacityError& e) {
    std::fprintf(stderr, "capacity error: %s\n", e.what());
    return rtv::cli::kExitCapacity;
  } catch (const rtv::IoError& e) {
    std::fprintf(stderr, "io error: %s\n", e.what());
    return rtv::cli::kExitIo;
  } catch (const rtv::InvalidArgument& e) {
    std::fprintf(stderr, "invalid argument: %s\n", e.what());
    return rtv::cli::kExitInvalidArgument;
  } catch (const rtv::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return rtv::cli::kExitVerdictFalse;
  }
}
