# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_util[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ternary[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_netlist[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_stg[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_retime_graph[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_retime_algos[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_moves[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_fault[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_fault_engine[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_core[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_paper[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_io[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_gen[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_integration[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_initial_state[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_properties[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_redundancy[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_io2[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_bdd[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_flow[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_tpg[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_safe_retime[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_packed_sim[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_docs_examples[1]_include.cmake")
