# Empty dependencies file for test_safe_retime.
# This may be replaced when dependencies are built.
