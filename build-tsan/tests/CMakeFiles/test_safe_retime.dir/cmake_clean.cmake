file(REMOVE_RECURSE
  "CMakeFiles/test_safe_retime.dir/test_safe_retime.cpp.o"
  "CMakeFiles/test_safe_retime.dir/test_safe_retime.cpp.o.d"
  "test_safe_retime"
  "test_safe_retime.pdb"
  "test_safe_retime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_safe_retime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
