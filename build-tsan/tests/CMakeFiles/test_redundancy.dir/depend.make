# Empty dependencies file for test_redundancy.
# This may be replaced when dependencies are built.
