file(REMOVE_RECURSE
  "CMakeFiles/test_redundancy.dir/test_redundancy.cpp.o"
  "CMakeFiles/test_redundancy.dir/test_redundancy.cpp.o.d"
  "test_redundancy"
  "test_redundancy.pdb"
  "test_redundancy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
