# Empty dependencies file for test_ternary.
# This may be replaced when dependencies are built.
