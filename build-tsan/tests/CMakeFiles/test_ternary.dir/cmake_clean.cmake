file(REMOVE_RECURSE
  "CMakeFiles/test_ternary.dir/test_ternary.cpp.o"
  "CMakeFiles/test_ternary.dir/test_ternary.cpp.o.d"
  "test_ternary"
  "test_ternary.pdb"
  "test_ternary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ternary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
