# Empty compiler generated dependencies file for test_initial_state.
# This may be replaced when dependencies are built.
