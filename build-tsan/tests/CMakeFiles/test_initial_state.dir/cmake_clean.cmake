file(REMOVE_RECURSE
  "CMakeFiles/test_initial_state.dir/test_initial_state.cpp.o"
  "CMakeFiles/test_initial_state.dir/test_initial_state.cpp.o.d"
  "test_initial_state"
  "test_initial_state.pdb"
  "test_initial_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_initial_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
