# Empty compiler generated dependencies file for test_io2.
# This may be replaced when dependencies are built.
