file(REMOVE_RECURSE
  "CMakeFiles/test_io2.dir/test_io2.cpp.o"
  "CMakeFiles/test_io2.dir/test_io2.cpp.o.d"
  "test_io2"
  "test_io2.pdb"
  "test_io2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
