
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_packed_sim.cpp" "tests/CMakeFiles/test_packed_sim.dir/test_packed_sim.cpp.o" "gcc" "tests/CMakeFiles/test_packed_sim.dir/test_packed_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/bdd/CMakeFiles/rtv_bdd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/rtv_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/rtv_fault.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/retime/CMakeFiles/rtv_retime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stg/CMakeFiles/rtv_stg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gen/CMakeFiles/rtv_gen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/rtv_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/rtv_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/netlist/CMakeFiles/rtv_netlist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ternary/CMakeFiles/rtv_ternary.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/rtv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
