# Empty dependencies file for test_packed_sim.
# This may be replaced when dependencies are built.
