file(REMOVE_RECURSE
  "CMakeFiles/test_packed_sim.dir/test_packed_sim.cpp.o"
  "CMakeFiles/test_packed_sim.dir/test_packed_sim.cpp.o.d"
  "test_packed_sim"
  "test_packed_sim.pdb"
  "test_packed_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packed_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
