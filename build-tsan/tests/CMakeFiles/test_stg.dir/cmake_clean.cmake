file(REMOVE_RECURSE
  "CMakeFiles/test_stg.dir/test_stg.cpp.o"
  "CMakeFiles/test_stg.dir/test_stg.cpp.o.d"
  "test_stg"
  "test_stg.pdb"
  "test_stg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
