# Empty compiler generated dependencies file for test_stg.
# This may be replaced when dependencies are built.
