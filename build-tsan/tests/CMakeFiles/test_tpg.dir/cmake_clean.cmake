file(REMOVE_RECURSE
  "CMakeFiles/test_tpg.dir/test_tpg.cpp.o"
  "CMakeFiles/test_tpg.dir/test_tpg.cpp.o.d"
  "test_tpg"
  "test_tpg.pdb"
  "test_tpg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
