# Empty compiler generated dependencies file for test_tpg.
# This may be replaced when dependencies are built.
