file(REMOVE_RECURSE
  "CMakeFiles/test_fault_engine.dir/test_fault_engine.cpp.o"
  "CMakeFiles/test_fault_engine.dir/test_fault_engine.cpp.o.d"
  "test_fault_engine"
  "test_fault_engine.pdb"
  "test_fault_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
