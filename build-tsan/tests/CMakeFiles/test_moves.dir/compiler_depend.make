# Empty compiler generated dependencies file for test_moves.
# This may be replaced when dependencies are built.
