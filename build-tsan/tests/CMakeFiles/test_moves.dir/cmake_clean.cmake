file(REMOVE_RECURSE
  "CMakeFiles/test_moves.dir/test_moves.cpp.o"
  "CMakeFiles/test_moves.dir/test_moves.cpp.o.d"
  "test_moves"
  "test_moves.pdb"
  "test_moves[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_moves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
