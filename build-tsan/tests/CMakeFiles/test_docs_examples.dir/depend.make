# Empty dependencies file for test_docs_examples.
# This may be replaced when dependencies are built.
