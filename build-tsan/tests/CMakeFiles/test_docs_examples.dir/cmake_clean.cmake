file(REMOVE_RECURSE
  "CMakeFiles/test_docs_examples.dir/test_docs_examples.cpp.o"
  "CMakeFiles/test_docs_examples.dir/test_docs_examples.cpp.o.d"
  "test_docs_examples"
  "test_docs_examples.pdb"
  "test_docs_examples[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_docs_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
