file(REMOVE_RECURSE
  "CMakeFiles/test_retime_graph.dir/test_retime_graph.cpp.o"
  "CMakeFiles/test_retime_graph.dir/test_retime_graph.cpp.o.d"
  "test_retime_graph"
  "test_retime_graph.pdb"
  "test_retime_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retime_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
