# Empty compiler generated dependencies file for test_retime_graph.
# This may be replaced when dependencies are built.
