file(REMOVE_RECURSE
  "CMakeFiles/test_retime_algos.dir/test_retime_algos.cpp.o"
  "CMakeFiles/test_retime_algos.dir/test_retime_algos.cpp.o.d"
  "test_retime_algos"
  "test_retime_algos.pdb"
  "test_retime_algos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retime_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
