# Empty compiler generated dependencies file for test_retime_algos.
# This may be replaced when dependencies are built.
