# Empty dependencies file for rtv_stg.
# This may be replaced when dependencies are built.
