file(REMOVE_RECURSE
  "librtv_stg.a"
)
