
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stg/delayed.cpp" "src/stg/CMakeFiles/rtv_stg.dir/delayed.cpp.o" "gcc" "src/stg/CMakeFiles/rtv_stg.dir/delayed.cpp.o.d"
  "/root/repo/src/stg/init_seq.cpp" "src/stg/CMakeFiles/rtv_stg.dir/init_seq.cpp.o" "gcc" "src/stg/CMakeFiles/rtv_stg.dir/init_seq.cpp.o.d"
  "/root/repo/src/stg/minimize.cpp" "src/stg/CMakeFiles/rtv_stg.dir/minimize.cpp.o" "gcc" "src/stg/CMakeFiles/rtv_stg.dir/minimize.cpp.o.d"
  "/root/repo/src/stg/replaceability.cpp" "src/stg/CMakeFiles/rtv_stg.dir/replaceability.cpp.o" "gcc" "src/stg/CMakeFiles/rtv_stg.dir/replaceability.cpp.o.d"
  "/root/repo/src/stg/scc.cpp" "src/stg/CMakeFiles/rtv_stg.dir/scc.cpp.o" "gcc" "src/stg/CMakeFiles/rtv_stg.dir/scc.cpp.o.d"
  "/root/repo/src/stg/stg.cpp" "src/stg/CMakeFiles/rtv_stg.dir/stg.cpp.o" "gcc" "src/stg/CMakeFiles/rtv_stg.dir/stg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/rtv_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/netlist/CMakeFiles/rtv_netlist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/rtv_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ternary/CMakeFiles/rtv_ternary.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
