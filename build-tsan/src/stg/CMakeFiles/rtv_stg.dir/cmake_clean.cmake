file(REMOVE_RECURSE
  "CMakeFiles/rtv_stg.dir/delayed.cpp.o"
  "CMakeFiles/rtv_stg.dir/delayed.cpp.o.d"
  "CMakeFiles/rtv_stg.dir/init_seq.cpp.o"
  "CMakeFiles/rtv_stg.dir/init_seq.cpp.o.d"
  "CMakeFiles/rtv_stg.dir/minimize.cpp.o"
  "CMakeFiles/rtv_stg.dir/minimize.cpp.o.d"
  "CMakeFiles/rtv_stg.dir/replaceability.cpp.o"
  "CMakeFiles/rtv_stg.dir/replaceability.cpp.o.d"
  "CMakeFiles/rtv_stg.dir/scc.cpp.o"
  "CMakeFiles/rtv_stg.dir/scc.cpp.o.d"
  "CMakeFiles/rtv_stg.dir/stg.cpp.o"
  "CMakeFiles/rtv_stg.dir/stg.cpp.o.d"
  "librtv_stg.a"
  "librtv_stg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtv_stg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
