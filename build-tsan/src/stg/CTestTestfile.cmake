# CMake generated Testfile for 
# Source directory: /root/repo/src/stg
# Build directory: /root/repo/build-tsan/src/stg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
