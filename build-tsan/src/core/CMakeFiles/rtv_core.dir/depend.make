# Empty dependencies file for rtv_core.
# This may be replaced when dependencies are built.
