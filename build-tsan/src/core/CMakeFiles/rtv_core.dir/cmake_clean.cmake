file(REMOVE_RECURSE
  "CMakeFiles/rtv_core.dir/cls_equiv.cpp.o"
  "CMakeFiles/rtv_core.dir/cls_equiv.cpp.o.d"
  "CMakeFiles/rtv_core.dir/cls_reset.cpp.o"
  "CMakeFiles/rtv_core.dir/cls_reset.cpp.o.d"
  "CMakeFiles/rtv_core.dir/flow.cpp.o"
  "CMakeFiles/rtv_core.dir/flow.cpp.o.d"
  "CMakeFiles/rtv_core.dir/miter.cpp.o"
  "CMakeFiles/rtv_core.dir/miter.cpp.o.d"
  "CMakeFiles/rtv_core.dir/redundancy.cpp.o"
  "CMakeFiles/rtv_core.dir/redundancy.cpp.o.d"
  "CMakeFiles/rtv_core.dir/safety.cpp.o"
  "CMakeFiles/rtv_core.dir/safety.cpp.o.d"
  "CMakeFiles/rtv_core.dir/test_preserve.cpp.o"
  "CMakeFiles/rtv_core.dir/test_preserve.cpp.o.d"
  "CMakeFiles/rtv_core.dir/validator.cpp.o"
  "CMakeFiles/rtv_core.dir/validator.cpp.o.d"
  "librtv_core.a"
  "librtv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
