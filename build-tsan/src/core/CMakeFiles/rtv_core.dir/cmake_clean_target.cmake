file(REMOVE_RECURSE
  "librtv_core.a"
)
