
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cls_equiv.cpp" "src/core/CMakeFiles/rtv_core.dir/cls_equiv.cpp.o" "gcc" "src/core/CMakeFiles/rtv_core.dir/cls_equiv.cpp.o.d"
  "/root/repo/src/core/cls_reset.cpp" "src/core/CMakeFiles/rtv_core.dir/cls_reset.cpp.o" "gcc" "src/core/CMakeFiles/rtv_core.dir/cls_reset.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "src/core/CMakeFiles/rtv_core.dir/flow.cpp.o" "gcc" "src/core/CMakeFiles/rtv_core.dir/flow.cpp.o.d"
  "/root/repo/src/core/miter.cpp" "src/core/CMakeFiles/rtv_core.dir/miter.cpp.o" "gcc" "src/core/CMakeFiles/rtv_core.dir/miter.cpp.o.d"
  "/root/repo/src/core/redundancy.cpp" "src/core/CMakeFiles/rtv_core.dir/redundancy.cpp.o" "gcc" "src/core/CMakeFiles/rtv_core.dir/redundancy.cpp.o.d"
  "/root/repo/src/core/safety.cpp" "src/core/CMakeFiles/rtv_core.dir/safety.cpp.o" "gcc" "src/core/CMakeFiles/rtv_core.dir/safety.cpp.o.d"
  "/root/repo/src/core/test_preserve.cpp" "src/core/CMakeFiles/rtv_core.dir/test_preserve.cpp.o" "gcc" "src/core/CMakeFiles/rtv_core.dir/test_preserve.cpp.o.d"
  "/root/repo/src/core/validator.cpp" "src/core/CMakeFiles/rtv_core.dir/validator.cpp.o" "gcc" "src/core/CMakeFiles/rtv_core.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/retime/CMakeFiles/rtv_retime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fault/CMakeFiles/rtv_fault.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stg/CMakeFiles/rtv_stg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/rtv_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/netlist/CMakeFiles/rtv_netlist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/rtv_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ternary/CMakeFiles/rtv_ternary.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
