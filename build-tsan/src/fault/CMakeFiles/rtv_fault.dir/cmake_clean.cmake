file(REMOVE_RECURSE
  "CMakeFiles/rtv_fault.dir/engine.cpp.o"
  "CMakeFiles/rtv_fault.dir/engine.cpp.o.d"
  "CMakeFiles/rtv_fault.dir/fault.cpp.o"
  "CMakeFiles/rtv_fault.dir/fault.cpp.o.d"
  "CMakeFiles/rtv_fault.dir/fault_sim.cpp.o"
  "CMakeFiles/rtv_fault.dir/fault_sim.cpp.o.d"
  "CMakeFiles/rtv_fault.dir/test_eval.cpp.o"
  "CMakeFiles/rtv_fault.dir/test_eval.cpp.o.d"
  "CMakeFiles/rtv_fault.dir/tpg.cpp.o"
  "CMakeFiles/rtv_fault.dir/tpg.cpp.o.d"
  "librtv_fault.a"
  "librtv_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtv_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
