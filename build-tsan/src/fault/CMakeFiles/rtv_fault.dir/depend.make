# Empty dependencies file for rtv_fault.
# This may be replaced when dependencies are built.
