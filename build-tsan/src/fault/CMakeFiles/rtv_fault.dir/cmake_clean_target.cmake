file(REMOVE_RECURSE
  "librtv_fault.a"
)
