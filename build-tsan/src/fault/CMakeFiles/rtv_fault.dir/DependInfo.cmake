
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/engine.cpp" "src/fault/CMakeFiles/rtv_fault.dir/engine.cpp.o" "gcc" "src/fault/CMakeFiles/rtv_fault.dir/engine.cpp.o.d"
  "/root/repo/src/fault/fault.cpp" "src/fault/CMakeFiles/rtv_fault.dir/fault.cpp.o" "gcc" "src/fault/CMakeFiles/rtv_fault.dir/fault.cpp.o.d"
  "/root/repo/src/fault/fault_sim.cpp" "src/fault/CMakeFiles/rtv_fault.dir/fault_sim.cpp.o" "gcc" "src/fault/CMakeFiles/rtv_fault.dir/fault_sim.cpp.o.d"
  "/root/repo/src/fault/test_eval.cpp" "src/fault/CMakeFiles/rtv_fault.dir/test_eval.cpp.o" "gcc" "src/fault/CMakeFiles/rtv_fault.dir/test_eval.cpp.o.d"
  "/root/repo/src/fault/tpg.cpp" "src/fault/CMakeFiles/rtv_fault.dir/tpg.cpp.o" "gcc" "src/fault/CMakeFiles/rtv_fault.dir/tpg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sim/CMakeFiles/rtv_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stg/CMakeFiles/rtv_stg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/netlist/CMakeFiles/rtv_netlist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/rtv_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ternary/CMakeFiles/rtv_ternary.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
