file(REMOVE_RECURSE
  "librtv_util.a"
)
