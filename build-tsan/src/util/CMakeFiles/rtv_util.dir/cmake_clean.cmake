file(REMOVE_RECURSE
  "CMakeFiles/rtv_util.dir/error.cpp.o"
  "CMakeFiles/rtv_util.dir/error.cpp.o.d"
  "CMakeFiles/rtv_util.dir/rng.cpp.o"
  "CMakeFiles/rtv_util.dir/rng.cpp.o.d"
  "CMakeFiles/rtv_util.dir/thread_pool.cpp.o"
  "CMakeFiles/rtv_util.dir/thread_pool.cpp.o.d"
  "librtv_util.a"
  "librtv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
