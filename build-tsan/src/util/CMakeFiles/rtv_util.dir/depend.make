# Empty dependencies file for rtv_util.
# This may be replaced when dependencies are built.
