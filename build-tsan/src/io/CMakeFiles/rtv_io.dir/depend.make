# Empty dependencies file for rtv_io.
# This may be replaced when dependencies are built.
