file(REMOVE_RECURSE
  "librtv_io.a"
)
