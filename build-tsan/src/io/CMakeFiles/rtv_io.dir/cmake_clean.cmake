file(REMOVE_RECURSE
  "CMakeFiles/rtv_io.dir/blif.cpp.o"
  "CMakeFiles/rtv_io.dir/blif.cpp.o.d"
  "CMakeFiles/rtv_io.dir/dot_export.cpp.o"
  "CMakeFiles/rtv_io.dir/dot_export.cpp.o.d"
  "CMakeFiles/rtv_io.dir/rnl_format.cpp.o"
  "CMakeFiles/rtv_io.dir/rnl_format.cpp.o.d"
  "CMakeFiles/rtv_io.dir/vcd.cpp.o"
  "CMakeFiles/rtv_io.dir/vcd.cpp.o.d"
  "librtv_io.a"
  "librtv_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtv_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
