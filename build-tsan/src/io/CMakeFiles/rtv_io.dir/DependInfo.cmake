
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/blif.cpp" "src/io/CMakeFiles/rtv_io.dir/blif.cpp.o" "gcc" "src/io/CMakeFiles/rtv_io.dir/blif.cpp.o.d"
  "/root/repo/src/io/dot_export.cpp" "src/io/CMakeFiles/rtv_io.dir/dot_export.cpp.o" "gcc" "src/io/CMakeFiles/rtv_io.dir/dot_export.cpp.o.d"
  "/root/repo/src/io/rnl_format.cpp" "src/io/CMakeFiles/rtv_io.dir/rnl_format.cpp.o" "gcc" "src/io/CMakeFiles/rtv_io.dir/rnl_format.cpp.o.d"
  "/root/repo/src/io/vcd.cpp" "src/io/CMakeFiles/rtv_io.dir/vcd.cpp.o" "gcc" "src/io/CMakeFiles/rtv_io.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/stg/CMakeFiles/rtv_stg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/rtv_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/netlist/CMakeFiles/rtv_netlist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/rtv_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ternary/CMakeFiles/rtv_ternary.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
