file(REMOVE_RECURSE
  "CMakeFiles/rtv_netlist.dir/cell.cpp.o"
  "CMakeFiles/rtv_netlist.dir/cell.cpp.o.d"
  "CMakeFiles/rtv_netlist.dir/netlist.cpp.o"
  "CMakeFiles/rtv_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/rtv_netlist.dir/passes.cpp.o"
  "CMakeFiles/rtv_netlist.dir/passes.cpp.o.d"
  "CMakeFiles/rtv_netlist.dir/sugar.cpp.o"
  "CMakeFiles/rtv_netlist.dir/sugar.cpp.o.d"
  "CMakeFiles/rtv_netlist.dir/topo.cpp.o"
  "CMakeFiles/rtv_netlist.dir/topo.cpp.o.d"
  "librtv_netlist.a"
  "librtv_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtv_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
