
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/cell.cpp" "src/netlist/CMakeFiles/rtv_netlist.dir/cell.cpp.o" "gcc" "src/netlist/CMakeFiles/rtv_netlist.dir/cell.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/rtv_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/rtv_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/passes.cpp" "src/netlist/CMakeFiles/rtv_netlist.dir/passes.cpp.o" "gcc" "src/netlist/CMakeFiles/rtv_netlist.dir/passes.cpp.o.d"
  "/root/repo/src/netlist/sugar.cpp" "src/netlist/CMakeFiles/rtv_netlist.dir/sugar.cpp.o" "gcc" "src/netlist/CMakeFiles/rtv_netlist.dir/sugar.cpp.o.d"
  "/root/repo/src/netlist/topo.cpp" "src/netlist/CMakeFiles/rtv_netlist.dir/topo.cpp.o" "gcc" "src/netlist/CMakeFiles/rtv_netlist.dir/topo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/ternary/CMakeFiles/rtv_ternary.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/rtv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
