# Empty dependencies file for rtv_netlist.
# This may be replaced when dependencies are built.
