file(REMOVE_RECURSE
  "librtv_netlist.a"
)
