file(REMOVE_RECURSE
  "CMakeFiles/rtv_sim.dir/binary_sim.cpp.o"
  "CMakeFiles/rtv_sim.dir/binary_sim.cpp.o.d"
  "CMakeFiles/rtv_sim.dir/cls_sim.cpp.o"
  "CMakeFiles/rtv_sim.dir/cls_sim.cpp.o.d"
  "CMakeFiles/rtv_sim.dir/exact_sim.cpp.o"
  "CMakeFiles/rtv_sim.dir/exact_sim.cpp.o.d"
  "CMakeFiles/rtv_sim.dir/packed_sim.cpp.o"
  "CMakeFiles/rtv_sim.dir/packed_sim.cpp.o.d"
  "CMakeFiles/rtv_sim.dir/packed_vectors.cpp.o"
  "CMakeFiles/rtv_sim.dir/packed_vectors.cpp.o.d"
  "CMakeFiles/rtv_sim.dir/parallel_sim.cpp.o"
  "CMakeFiles/rtv_sim.dir/parallel_sim.cpp.o.d"
  "CMakeFiles/rtv_sim.dir/port_map.cpp.o"
  "CMakeFiles/rtv_sim.dir/port_map.cpp.o.d"
  "CMakeFiles/rtv_sim.dir/vectors.cpp.o"
  "CMakeFiles/rtv_sim.dir/vectors.cpp.o.d"
  "librtv_sim.a"
  "librtv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
