# Empty dependencies file for rtv_sim.
# This may be replaced when dependencies are built.
