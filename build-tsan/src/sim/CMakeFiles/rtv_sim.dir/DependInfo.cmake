
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/binary_sim.cpp" "src/sim/CMakeFiles/rtv_sim.dir/binary_sim.cpp.o" "gcc" "src/sim/CMakeFiles/rtv_sim.dir/binary_sim.cpp.o.d"
  "/root/repo/src/sim/cls_sim.cpp" "src/sim/CMakeFiles/rtv_sim.dir/cls_sim.cpp.o" "gcc" "src/sim/CMakeFiles/rtv_sim.dir/cls_sim.cpp.o.d"
  "/root/repo/src/sim/exact_sim.cpp" "src/sim/CMakeFiles/rtv_sim.dir/exact_sim.cpp.o" "gcc" "src/sim/CMakeFiles/rtv_sim.dir/exact_sim.cpp.o.d"
  "/root/repo/src/sim/packed_sim.cpp" "src/sim/CMakeFiles/rtv_sim.dir/packed_sim.cpp.o" "gcc" "src/sim/CMakeFiles/rtv_sim.dir/packed_sim.cpp.o.d"
  "/root/repo/src/sim/packed_vectors.cpp" "src/sim/CMakeFiles/rtv_sim.dir/packed_vectors.cpp.o" "gcc" "src/sim/CMakeFiles/rtv_sim.dir/packed_vectors.cpp.o.d"
  "/root/repo/src/sim/parallel_sim.cpp" "src/sim/CMakeFiles/rtv_sim.dir/parallel_sim.cpp.o" "gcc" "src/sim/CMakeFiles/rtv_sim.dir/parallel_sim.cpp.o.d"
  "/root/repo/src/sim/port_map.cpp" "src/sim/CMakeFiles/rtv_sim.dir/port_map.cpp.o" "gcc" "src/sim/CMakeFiles/rtv_sim.dir/port_map.cpp.o.d"
  "/root/repo/src/sim/vectors.cpp" "src/sim/CMakeFiles/rtv_sim.dir/vectors.cpp.o" "gcc" "src/sim/CMakeFiles/rtv_sim.dir/vectors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/netlist/CMakeFiles/rtv_netlist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ternary/CMakeFiles/rtv_ternary.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/rtv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
