file(REMOVE_RECURSE
  "librtv_sim.a"
)
