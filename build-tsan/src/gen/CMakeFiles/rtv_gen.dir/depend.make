# Empty dependencies file for rtv_gen.
# This may be replaced when dependencies are built.
