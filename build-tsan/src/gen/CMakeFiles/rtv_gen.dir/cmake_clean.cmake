file(REMOVE_RECURSE
  "CMakeFiles/rtv_gen.dir/datapath.cpp.o"
  "CMakeFiles/rtv_gen.dir/datapath.cpp.o.d"
  "CMakeFiles/rtv_gen.dir/iscas.cpp.o"
  "CMakeFiles/rtv_gen.dir/iscas.cpp.o.d"
  "CMakeFiles/rtv_gen.dir/paper_circuits.cpp.o"
  "CMakeFiles/rtv_gen.dir/paper_circuits.cpp.o.d"
  "CMakeFiles/rtv_gen.dir/random_circuits.cpp.o"
  "CMakeFiles/rtv_gen.dir/random_circuits.cpp.o.d"
  "CMakeFiles/rtv_gen.dir/shift.cpp.o"
  "CMakeFiles/rtv_gen.dir/shift.cpp.o.d"
  "librtv_gen.a"
  "librtv_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtv_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
