
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/datapath.cpp" "src/gen/CMakeFiles/rtv_gen.dir/datapath.cpp.o" "gcc" "src/gen/CMakeFiles/rtv_gen.dir/datapath.cpp.o.d"
  "/root/repo/src/gen/iscas.cpp" "src/gen/CMakeFiles/rtv_gen.dir/iscas.cpp.o" "gcc" "src/gen/CMakeFiles/rtv_gen.dir/iscas.cpp.o.d"
  "/root/repo/src/gen/paper_circuits.cpp" "src/gen/CMakeFiles/rtv_gen.dir/paper_circuits.cpp.o" "gcc" "src/gen/CMakeFiles/rtv_gen.dir/paper_circuits.cpp.o.d"
  "/root/repo/src/gen/random_circuits.cpp" "src/gen/CMakeFiles/rtv_gen.dir/random_circuits.cpp.o" "gcc" "src/gen/CMakeFiles/rtv_gen.dir/random_circuits.cpp.o.d"
  "/root/repo/src/gen/shift.cpp" "src/gen/CMakeFiles/rtv_gen.dir/shift.cpp.o" "gcc" "src/gen/CMakeFiles/rtv_gen.dir/shift.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/netlist/CMakeFiles/rtv_netlist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/rtv_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ternary/CMakeFiles/rtv_ternary.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
