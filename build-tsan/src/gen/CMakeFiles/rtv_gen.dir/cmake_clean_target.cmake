file(REMOVE_RECURSE
  "librtv_gen.a"
)
