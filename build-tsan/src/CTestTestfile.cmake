# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("ternary")
subdirs("netlist")
subdirs("sim")
subdirs("stg")
subdirs("retime")
subdirs("fault")
subdirs("gen")
subdirs("io")
subdirs("core")
subdirs("bdd")
