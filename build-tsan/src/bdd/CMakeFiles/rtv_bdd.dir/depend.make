# Empty dependencies file for rtv_bdd.
# This may be replaced when dependencies are built.
