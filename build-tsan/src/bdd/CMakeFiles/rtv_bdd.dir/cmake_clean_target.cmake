file(REMOVE_RECURSE
  "librtv_bdd.a"
)
