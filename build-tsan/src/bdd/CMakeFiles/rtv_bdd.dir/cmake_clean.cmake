file(REMOVE_RECURSE
  "CMakeFiles/rtv_bdd.dir/bdd.cpp.o"
  "CMakeFiles/rtv_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/rtv_bdd.dir/equivalence.cpp.o"
  "CMakeFiles/rtv_bdd.dir/equivalence.cpp.o.d"
  "CMakeFiles/rtv_bdd.dir/symbolic.cpp.o"
  "CMakeFiles/rtv_bdd.dir/symbolic.cpp.o.d"
  "librtv_bdd.a"
  "librtv_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtv_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
