# Empty dependencies file for rtv_ternary.
# This may be replaced when dependencies are built.
