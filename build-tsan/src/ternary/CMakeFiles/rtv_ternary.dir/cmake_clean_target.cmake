file(REMOVE_RECURSE
  "librtv_ternary.a"
)
