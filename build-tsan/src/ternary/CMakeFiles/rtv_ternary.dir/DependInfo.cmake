
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ternary/trit.cpp" "src/ternary/CMakeFiles/rtv_ternary.dir/trit.cpp.o" "gcc" "src/ternary/CMakeFiles/rtv_ternary.dir/trit.cpp.o.d"
  "/root/repo/src/ternary/truth_table.cpp" "src/ternary/CMakeFiles/rtv_ternary.dir/truth_table.cpp.o" "gcc" "src/ternary/CMakeFiles/rtv_ternary.dir/truth_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/rtv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
