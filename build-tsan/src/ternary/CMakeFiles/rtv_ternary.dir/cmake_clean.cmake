file(REMOVE_RECURSE
  "CMakeFiles/rtv_ternary.dir/trit.cpp.o"
  "CMakeFiles/rtv_ternary.dir/trit.cpp.o.d"
  "CMakeFiles/rtv_ternary.dir/truth_table.cpp.o"
  "CMakeFiles/rtv_ternary.dir/truth_table.cpp.o.d"
  "librtv_ternary.a"
  "librtv_ternary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtv_ternary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
