file(REMOVE_RECURSE
  "librtv_retime.a"
)
