# Empty dependencies file for rtv_retime.
# This may be replaced when dependencies are built.
