file(REMOVE_RECURSE
  "CMakeFiles/rtv_retime.dir/apply.cpp.o"
  "CMakeFiles/rtv_retime.dir/apply.cpp.o.d"
  "CMakeFiles/rtv_retime.dir/graph.cpp.o"
  "CMakeFiles/rtv_retime.dir/graph.cpp.o.d"
  "CMakeFiles/rtv_retime.dir/initial_state.cpp.o"
  "CMakeFiles/rtv_retime.dir/initial_state.cpp.o.d"
  "CMakeFiles/rtv_retime.dir/mcmf.cpp.o"
  "CMakeFiles/rtv_retime.dir/mcmf.cpp.o.d"
  "CMakeFiles/rtv_retime.dir/min_area.cpp.o"
  "CMakeFiles/rtv_retime.dir/min_area.cpp.o.d"
  "CMakeFiles/rtv_retime.dir/min_period.cpp.o"
  "CMakeFiles/rtv_retime.dir/min_period.cpp.o.d"
  "CMakeFiles/rtv_retime.dir/moves.cpp.o"
  "CMakeFiles/rtv_retime.dir/moves.cpp.o.d"
  "CMakeFiles/rtv_retime.dir/sequencer.cpp.o"
  "CMakeFiles/rtv_retime.dir/sequencer.cpp.o.d"
  "CMakeFiles/rtv_retime.dir/wd.cpp.o"
  "CMakeFiles/rtv_retime.dir/wd.cpp.o.d"
  "librtv_retime.a"
  "librtv_retime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtv_retime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
