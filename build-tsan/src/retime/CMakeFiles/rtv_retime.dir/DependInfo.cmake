
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/retime/apply.cpp" "src/retime/CMakeFiles/rtv_retime.dir/apply.cpp.o" "gcc" "src/retime/CMakeFiles/rtv_retime.dir/apply.cpp.o.d"
  "/root/repo/src/retime/graph.cpp" "src/retime/CMakeFiles/rtv_retime.dir/graph.cpp.o" "gcc" "src/retime/CMakeFiles/rtv_retime.dir/graph.cpp.o.d"
  "/root/repo/src/retime/initial_state.cpp" "src/retime/CMakeFiles/rtv_retime.dir/initial_state.cpp.o" "gcc" "src/retime/CMakeFiles/rtv_retime.dir/initial_state.cpp.o.d"
  "/root/repo/src/retime/mcmf.cpp" "src/retime/CMakeFiles/rtv_retime.dir/mcmf.cpp.o" "gcc" "src/retime/CMakeFiles/rtv_retime.dir/mcmf.cpp.o.d"
  "/root/repo/src/retime/min_area.cpp" "src/retime/CMakeFiles/rtv_retime.dir/min_area.cpp.o" "gcc" "src/retime/CMakeFiles/rtv_retime.dir/min_area.cpp.o.d"
  "/root/repo/src/retime/min_period.cpp" "src/retime/CMakeFiles/rtv_retime.dir/min_period.cpp.o" "gcc" "src/retime/CMakeFiles/rtv_retime.dir/min_period.cpp.o.d"
  "/root/repo/src/retime/moves.cpp" "src/retime/CMakeFiles/rtv_retime.dir/moves.cpp.o" "gcc" "src/retime/CMakeFiles/rtv_retime.dir/moves.cpp.o.d"
  "/root/repo/src/retime/sequencer.cpp" "src/retime/CMakeFiles/rtv_retime.dir/sequencer.cpp.o" "gcc" "src/retime/CMakeFiles/rtv_retime.dir/sequencer.cpp.o.d"
  "/root/repo/src/retime/wd.cpp" "src/retime/CMakeFiles/rtv_retime.dir/wd.cpp.o" "gcc" "src/retime/CMakeFiles/rtv_retime.dir/wd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/netlist/CMakeFiles/rtv_netlist.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/rtv_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ternary/CMakeFiles/rtv_ternary.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
