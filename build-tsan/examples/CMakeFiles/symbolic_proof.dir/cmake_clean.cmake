file(REMOVE_RECURSE
  "CMakeFiles/symbolic_proof.dir/symbolic_proof.cpp.o"
  "CMakeFiles/symbolic_proof.dir/symbolic_proof.cpp.o.d"
  "symbolic_proof"
  "symbolic_proof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbolic_proof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
