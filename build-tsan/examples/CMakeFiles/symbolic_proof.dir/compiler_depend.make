# Empty compiler generated dependencies file for symbolic_proof.
# This may be replaced when dependencies are built.
