# Empty dependencies file for redundancy_removal.
# This may be replaced when dependencies are built.
