file(REMOVE_RECURSE
  "CMakeFiles/redundancy_removal.dir/redundancy_removal.cpp.o"
  "CMakeFiles/redundancy_removal.dir/redundancy_removal.cpp.o.d"
  "redundancy_removal"
  "redundancy_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redundancy_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
