file(REMOVE_RECURSE
  "CMakeFiles/pipeline_retime.dir/pipeline_retime.cpp.o"
  "CMakeFiles/pipeline_retime.dir/pipeline_retime.cpp.o.d"
  "pipeline_retime"
  "pipeline_retime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_retime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
