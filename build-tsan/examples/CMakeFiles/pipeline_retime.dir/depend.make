# Empty dependencies file for pipeline_retime.
# This may be replaced when dependencies are built.
