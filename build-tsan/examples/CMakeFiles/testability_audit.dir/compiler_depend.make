# Empty compiler generated dependencies file for testability_audit.
# This may be replaced when dependencies are built.
