file(REMOVE_RECURSE
  "CMakeFiles/testability_audit.dir/testability_audit.cpp.o"
  "CMakeFiles/testability_audit.dir/testability_audit.cpp.o.d"
  "testability_audit"
  "testability_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testability_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
