file(REMOVE_RECURSE
  "CMakeFiles/safety_audit.dir/safety_audit.cpp.o"
  "CMakeFiles/safety_audit.dir/safety_audit.cpp.o.d"
  "safety_audit"
  "safety_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safety_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
