# Empty compiler generated dependencies file for safety_audit.
# This may be replaced when dependencies are built.
