# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-tsan/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench-smoke "/root/repo/build-tsan/bench/bench_sim_throughput" "--benchmark_filter=^\$")
set_tests_properties(bench-smoke PROPERTIES  ENVIRONMENT "RTV_BENCH_SMOKE=1;RTV_BENCH_JSON=/root/repo/build-tsan/bench/BENCH_sim.json" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench-fault-smoke "/root/repo/build-tsan/bench/bench_fault_throughput" "--benchmark_filter=^\$")
set_tests_properties(bench-fault-smoke PROPERTIES  ENVIRONMENT "RTV_BENCH_SMOKE=1;RTV_BENCH_JSON=/root/repo/build-tsan/bench/BENCH_fault.json" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
