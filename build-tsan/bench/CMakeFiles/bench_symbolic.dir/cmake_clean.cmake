file(REMOVE_RECURSE
  "CMakeFiles/bench_symbolic.dir/bench_symbolic.cpp.o"
  "CMakeFiles/bench_symbolic.dir/bench_symbolic.cpp.o.d"
  "bench_symbolic"
  "bench_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
