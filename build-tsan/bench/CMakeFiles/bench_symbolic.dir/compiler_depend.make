# Empty compiler generated dependencies file for bench_symbolic.
# This may be replaced when dependencies are built.
