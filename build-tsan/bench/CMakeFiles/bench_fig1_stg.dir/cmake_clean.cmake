file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_stg.dir/bench_fig1_stg.cpp.o"
  "CMakeFiles/bench_fig1_stg.dir/bench_fig1_stg.cpp.o.d"
  "bench_fig1_stg"
  "bench_fig1_stg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_stg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
