file(REMOVE_RECURSE
  "CMakeFiles/bench_thm45_delay.dir/bench_thm45_delay.cpp.o"
  "CMakeFiles/bench_thm45_delay.dir/bench_thm45_delay.cpp.o.d"
  "bench_thm45_delay"
  "bench_thm45_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm45_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
