# Empty dependencies file for bench_thm45_delay.
# This may be replaced when dependencies are built.
