file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_graph.dir/bench_fig4_graph.cpp.o"
  "CMakeFiles/bench_fig4_graph.dir/bench_fig4_graph.cpp.o.d"
  "bench_fig4_graph"
  "bench_fig4_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
