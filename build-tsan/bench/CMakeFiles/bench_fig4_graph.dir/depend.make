# Empty dependencies file for bench_fig4_graph.
# This may be replaced when dependencies are built.
