# Empty dependencies file for bench_thm51_cls.
# This may be replaced when dependencies are built.
