file(REMOVE_RECURSE
  "CMakeFiles/bench_thm51_cls.dir/bench_thm51_cls.cpp.o"
  "CMakeFiles/bench_thm51_cls.dir/bench_thm51_cls.cpp.o.d"
  "bench_thm51_cls"
  "bench_thm51_cls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm51_cls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
