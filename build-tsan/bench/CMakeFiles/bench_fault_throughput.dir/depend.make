# Empty dependencies file for bench_fault_throughput.
# This may be replaced when dependencies are built.
