file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_throughput.dir/bench_fault_throughput.cpp.o"
  "CMakeFiles/bench_fault_throughput.dir/bench_fault_throughput.cpp.o.d"
  "bench_fault_throughput"
  "bench_fault_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
