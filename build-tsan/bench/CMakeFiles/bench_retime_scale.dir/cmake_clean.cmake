file(REMOVE_RECURSE
  "CMakeFiles/bench_retime_scale.dir/bench_retime_scale.cpp.o"
  "CMakeFiles/bench_retime_scale.dir/bench_retime_scale.cpp.o.d"
  "bench_retime_scale"
  "bench_retime_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retime_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
