file(REMOVE_RECURSE
  "CMakeFiles/bench_prop41_safety.dir/bench_prop41_safety.cpp.o"
  "CMakeFiles/bench_prop41_safety.dir/bench_prop41_safety.cpp.o.d"
  "bench_prop41_safety"
  "bench_prop41_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prop41_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
