# Empty compiler generated dependencies file for bench_prop41_safety.
# This may be replaced when dependencies are built.
