file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_moves.dir/bench_fig6_moves.cpp.o"
  "CMakeFiles/bench_fig6_moves.dir/bench_fig6_moves.cpp.o.d"
  "bench_fig6_moves"
  "bench_fig6_moves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_moves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
