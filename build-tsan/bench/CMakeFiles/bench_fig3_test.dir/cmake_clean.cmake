file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_test.dir/bench_fig3_test.cpp.o"
  "CMakeFiles/bench_fig3_test.dir/bench_fig3_test.cpp.o.d"
  "bench_fig3_test"
  "bench_fig3_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
