# Empty compiler generated dependencies file for bench_fig3_test.
# This may be replaced when dependencies are built.
