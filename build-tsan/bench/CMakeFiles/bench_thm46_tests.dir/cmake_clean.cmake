file(REMOVE_RECURSE
  "CMakeFiles/bench_thm46_tests.dir/bench_thm46_tests.cpp.o"
  "CMakeFiles/bench_thm46_tests.dir/bench_thm46_tests.cpp.o.d"
  "bench_thm46_tests"
  "bench_thm46_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm46_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
