# Empty compiler generated dependencies file for rtv.
# This may be replaced when dependencies are built.
