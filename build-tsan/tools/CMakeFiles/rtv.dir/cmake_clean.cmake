file(REMOVE_RECURSE
  "CMakeFiles/rtv.dir/rtv_cli.cpp.o"
  "CMakeFiles/rtv.dir/rtv_cli.cpp.o.d"
  "rtv"
  "rtv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
