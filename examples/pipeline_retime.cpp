// Pipeline retiming: the introduction's motivating workload — a pipelined
// multiplier datapath whose latches have no reset. Optimize it for clock
// period and for register count, then confirm the optimized design still
// multiplies.
//
//   $ ./pipeline_retime [bits] [rows_per_stage]

#include <cstdio>
#include <cstdlib>

#include "gen/datapath.hpp"
#include "retime/apply.hpp"
#include "retime/graph.hpp"
#include "retime/min_area.hpp"
#include "retime/min_period.hpp"
#include "sim/binary_sim.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

using namespace rtv;

namespace {

bool check_multiplies(const Netlist& n, unsigned bits, unsigned flush) {
  BinarySimulator sim(n);
  Rng rng(2024);
  for (int trial = 0; trial < 16; ++trial) {
    const std::uint64_t a = rng.below(1ULL << bits);
    const std::uint64_t b = rng.below(1ULL << bits);
    Bits in(2 * bits);
    for (unsigned i = 0; i < bits; ++i) {
      in[i] = get_bit(a, i);
      in[bits + i] = get_bit(b, i);
    }
    Bits out;
    for (unsigned t = 0; t < flush; ++t) out = sim.step(in);
    std::uint64_t product = 0;
    for (unsigned i = 0; i < 2 * bits; ++i) {
      if (out[i]) product |= (1ULL << i);
    }
    if (product != a * b) {
      std::printf("  MISMATCH: %llu * %llu = %llu, got %llu\n",
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(a * b),
                  static_cast<unsigned long long>(product));
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned bits = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
  const unsigned rows = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 2;

  const Netlist n = pipelined_multiplier(bits, rows);
  const RetimeGraph g = RetimeGraph::from_netlist(n);
  std::printf("workload: %u-bit pipelined multiplier, %u rows/stage\n  %s\n",
              bits, rows, g.summary().c_str());

  // Minimum clock period (matrix-free algorithm; scales to large designs).
  const RetimingSolution period = min_period_retime_feas(g);
  std::printf("\nmin-period retiming: period %d -> %d\n", g.clock_period(),
              period.period);
  const Netlist fast = apply_retiming(n, g, period.lag);
  std::printf("  registers %lld -> %zu\n",
              static_cast<long long>(g.total_weight()), fast.num_latches());
  std::printf("  still multiplies: %s\n",
              check_multiplies(fast, bits, bits + 8) ? "yes" : "NO");

  // Minimum register count.
  const MinAreaResult area = min_area_retime(g);
  std::printf("\nmin-area retiming: registers %lld -> %lld (period %d -> %d)\n",
              static_cast<long long>(area.registers_before),
              static_cast<long long>(area.registers_after), g.clock_period(),
              g.clock_period(area.lag));
  const Netlist lean = apply_retiming(n, g, area.lag);
  std::printf("  still multiplies: %s\n",
              check_multiplies(lean, bits, bits + 8) ? "yes" : "NO");

  // Minimum registers subject to the optimal period (the [SR94] objective).
  if (g.num_vertices() <= 4096) {
    const auto both = min_area_retime_with_period(g, period.period);
    if (both) {
      std::printf("\nmin-area at period %d: %lld registers\n", period.period,
                  static_cast<long long>(both->registers_after));
    }
  }
  return 0;
}
