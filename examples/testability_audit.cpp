// Testability audit: quantify what retiming does to a test set (Section
// 2.2 / Theorem 4.6) on a pipelined datapath — fault coverage before
// retiming, after retiming, and after retiming with warm-up cycles.
//
//   $ ./testability_audit

#include <cstdio>

#include "core/safety.hpp"
#include "core/test_preserve.hpp"
#include "fault/fault_sim.hpp"
#include "gen/datapath.hpp"
#include "retime/graph.hpp"
#include "retime/min_area.hpp"
#include "util/rng.hpp"

using namespace rtv;

int main() {
  const Netlist design = pipelined_adder(3, 2);
  std::printf("design under audit: %s\n", design.summary().c_str());

  // Retime for minimum area and record the move statistics (they carry the
  // Theorem 4.5/4.6 delay bound).
  const RetimeGraph g = RetimeGraph::from_netlist(design);
  const MinAreaResult area = min_area_retime(g);
  SequencedRetiming seq;
  const SafetyReport safety =
      analyze_lag_retiming(design, g, area.lag, &seq);
  std::printf("retiming: %s\n", safety.summary().c_str());
  const unsigned k = static_cast<unsigned>(seq.stats.forward_moves);

  // A small random test set: constant vectors held long enough to flush
  // the pipeline.
  Rng rng(7);
  std::vector<BitsSeq> tests;
  for (int t = 0; t < 8; ++t) {
    Bits in(design.primary_inputs().size());
    for (auto& v : in) v = rng.coin();
    tests.emplace_back(8, in);
  }

  // Faults on combinational cells present in both designs.
  std::vector<Fault> faults;
  for (const Fault& f : collapse_faults(design)) {
    if (is_combinational(design.kind(f.site.node)) &&
        !seq.retimed.sinks(f.site).empty()) {
      faults.push_back(f);
    }
  }

  std::size_t cov_d = 0, cov_c = 0, cov_ck = 0;
  std::vector<Fault> lost;
  for (const Fault& f : faults) {
    bool in_d = false, in_c = false, in_ck = false;
    for (const auto& test : tests) {
      if (!in_d && test_detects(design, f, test)) in_d = true;
      if (!in_c && test_detects(seq.retimed, f, test)) in_c = true;
      if (!in_ck && test_detects_delayed(seq.retimed, f, test, k)) {
        in_ck = true;
      }
    }
    cov_d += in_d;
    cov_c += in_c;
    cov_ck += in_ck;
    if (in_d && !in_c) lost.push_back(f);
  }

  std::printf("\nfault coverage over %zu collapsed faults, %zu tests:\n",
              faults.size(), tests.size());
  std::printf("  original design D:        %zu\n", cov_d);
  std::printf("  retimed design C:         %zu\n", cov_c);
  std::printf("  retimed after %u cycles:  %zu  (Theorem 4.6 floor: %zu)\n",
              k, cov_ck, cov_d);
  if (!lost.empty()) {
    std::printf("\nfaults whose tests retiming broke (recovered by warm-up):\n");
    for (const Fault& f : lost) {
      std::printf("  %s\n", describe(design, f).c_str());
    }
  }
  return cov_ck >= cov_d ? 0 : 1;
}
