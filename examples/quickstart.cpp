// Quickstart: build a small sequential netlist, retime it, and validate the
// retiming against the paper's results — the 60-second tour of the library.
//
//   $ ./quickstart

#include <cstdio>

#include "core/validator.hpp"
#include "gen/paper_circuits.hpp"
#include "io/dot_export.hpp"
#include "retime/graph.hpp"
#include "sim/binary_sim.hpp"
#include "sim/cls_sim.hpp"

using namespace rtv;

int main() {
  // 1. Build a netlist — here the paper's Figure-1 design D: one latch, a
  //    fanout junction, and the AND/OR/NOT cone around it. You could also
  //    assemble your own with Netlist::add_gate / add_latch / connect.
  const Netlist d = figure1_original();
  std::printf("original:  %s\n", d.summary().c_str());

  // 2. Simulate it. Latches have no reset: you pick the power-up state.
  BinarySimulator sim(d);
  sim.set_state(bits_from_string("1"));
  std::printf("simulate from state 1 on 0.1.1.1 -> %s\n",
              sequence_to_string(sim.run(bits_seq_from_string("0.1.1.1")))
                  .c_str());

  // 3. Conservative three-valued simulation (all latches start at X) — the
  //    correctness yardstick the paper analyzes.
  ClsSimulator cls(d);
  std::printf("CLS from all-X on 0.1.1.1       -> %s\n",
              sequence_to_string(cls.run(bits_seq_from_string("0.1.1.1")))
                  .c_str());

  // 4. Retime: move the latch forward across the junction J1 (lag -1).
  const RetimeGraph graph = RetimeGraph::from_netlist(d);
  std::vector<int> lag(graph.num_vertices(), 0);
  lag[graph.vertex_of(d.find_by_name("J1"))] = -1;

  // 5. Validate the retiming end to end: move classification (Section 4),
  //    CLS equivalence (Section 5), and exact STG relations (Section 2).
  const RetimingValidation v = validate_retiming(d, graph, lag);
  std::printf("retimed:   %s\n\n%s\n", v.retimed.summary().c_str(),
              v.summary().c_str());

  // 6. Export for inspection.
  std::printf("Graphviz of the retimed design:\n%s",
              netlist_to_dot(v.retimed).c_str());
  return v.theorems_hold ? 0 : 1;
}
