# lint-examples-smoke: every example netlist must stay lint-clean — zero
# errors, warnings, and notes from both the structural and the semantic
# (ternary-dataflow RTV3xx) passes, in the text and the JSON renderer.
#
# Run via `cmake -P` (tools/cli_exit_codes.cmake idiom) so the exit code of
# each rtv invocation is asserted directly.
#
# Inputs (all -D):
#   RTV_BIN       path to the rtv executable
#   RTV_EXAMPLES  path to the examples directory

if(NOT EXISTS "${RTV_BIN}")
  message(FATAL_ERROR "RTV_BIN '${RTV_BIN}' does not exist")
endif()
if(NOT IS_DIRECTORY "${RTV_EXAMPLES}")
  message(FATAL_ERROR "RTV_EXAMPLES '${RTV_EXAMPLES}' is not a directory")
endif()

file(GLOB rnl_files "${RTV_EXAMPLES}/*.rnl")
list(LENGTH rnl_files num_files)
if(num_files EQUAL 0)
  message(FATAL_ERROR "no .rnl examples found in ${RTV_EXAMPLES}")
endif()

set(failures 0)

foreach(design IN LISTS rnl_files)
  get_filename_component(name "${design}" NAME)

  # --strict: warnings (and of course errors) fail the run.
  execute_process(
    COMMAND "${RTV_BIN}" lint "${design}" --strict
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    TIMEOUT 120)
  if(NOT rc STREQUAL "0")
    message(SEND_ERROR
      "${name}: rtv lint --strict exited ${rc}\n"
      "  stdout: ${out}\n  stderr: ${err}")
    math(EXPR failures "${failures} + 1")
    continue()
  endif()
  if(NOT out MATCHES "0 error\\(s\\), 0 warning\\(s\\), 0 note\\(s\\)")
    message(SEND_ERROR "${name}: report is not clean\n  stdout: ${out}")
    math(EXPR failures "${failures} + 1")
    continue()
  endif()
  if(NOT out MATCHES "dataflow: ")
    message(SEND_ERROR
      "${name}: semantic stage did not run (no dataflow stats)\n"
      "  stdout: ${out}")
    math(EXPR failures "${failures} + 1")
    continue()
  endif()

  # The JSON renderer must agree.
  execute_process(
    COMMAND "${RTV_BIN}" lint "${design}" --json
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    TIMEOUT 120)
  if(NOT rc STREQUAL "0" OR NOT out MATCHES "\"clean\": true")
    message(SEND_ERROR "${name}: JSON report not clean (exit ${rc})\n"
      "  stdout: ${out}")
    math(EXPR failures "${failures} + 1")
    continue()
  endif()

  message(STATUS "${name}: lint clean")
endforeach()

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} example(s) failed lint")
endif()
message(STATUS "all ${num_files} example netlist(s) lint clean")
