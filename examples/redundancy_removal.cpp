// CLS-preserving redundancy removal — the optimization style the paper's
// conclusions call for: preserve only what a conservative three-valued
// simulator can observe, not full safe replaceability.
//
//   $ ./redundancy_removal [design.rnl]

#include <cstdio>

#include "core/redundancy.hpp"
#include "gen/paper_circuits.hpp"
#include "io/rnl_format.hpp"
#include "sim/cls_sim.hpp"

using namespace rtv;

int main(int argc, char** argv) {
  Netlist design =
      argc > 1 ? load_rnl(argv[1]) : figure1_original();
  std::printf("input design: %s\n", design.summary().c_str());

  // Which stuck-at faults can a CLS (all latches starting at X) never see?
  const auto redundant = cls_redundant_faults(design);
  std::printf("\nCLS-redundant faults (exhaustively proven):\n");
  for (const Fault& f : redundant) {
    std::printf("  %s\n", describe(design, f).c_str());
  }
  if (redundant.empty()) std::printf("  (none)\n");

  // Tie them off and sweep the dead logic.
  const RedundancyRemovalResult r = remove_cls_redundancies(design);
  std::printf("\nremoval: %zu net(s) tied to constants, %zu node(s) swept\n",
              r.faults_tied, r.nodes_swept);
  std::printf("gates: %zu -> %zu\n", r.gates_before, r.gates_after);
  std::printf("optimized design: %s\n", r.optimized.summary().c_str());

  // Show that the CLS cannot tell the difference on the paper's sequence.
  ClsSimulator before(design);
  ClsSimulator after(r.optimized);
  const BitsSeq stimulus = bits_seq_from_string("0.1.1.1");
  std::printf("\nCLS on 0.1.1.1: before %s, after %s\n",
              sequence_to_string(before.run(stimulus)).c_str(),
              sequence_to_string(after.run(stimulus)).c_str());
  std::printf("\n(binary simulation from specific power-up states MAY differ\n"
              "— that is exactly the bargain Section 5 formalizes)\n");
  return 0;
}
