// Safety audit: load (or generate) a design, enumerate candidate retiming
// moves, and report each one's Section-4 classification plus what a
// methodology based on conservative three-valued simulation would observe.
// Accepts an .rnl netlist path; with no argument audits a generated
// controller+datapath design.
//
//   $ ./safety_audit [design.rnl]

#include <cstdio>

#include "core/cls_equiv.hpp"
#include "gen/datapath.hpp"
#include "io/rnl_format.hpp"
#include "retime/moves.hpp"

using namespace rtv;

int main(int argc, char** argv) {
  Netlist design;
  if (argc > 1) {
    design = load_rnl(argv[1]);
    std::printf("loaded %s: %s\n", argv[1], design.summary().c_str());
  } else {
    design = controller_datapath(4);
    std::printf("generated controller+datapath: %s\n",
                design.summary().c_str());
  }
  design.junctionize();
  design.check_valid(true);

  std::printf("all cells preserve all-X (Section 5 assumption): %s\n\n",
              design.all_cells_preserve_all_x() ? "yes" : "NO");

  const auto moves = enabled_moves(design);
  std::printf("%-18s %-10s %-14s %-24s %-14s\n", "element", "kind",
              "direction", "classification", "CLS-equivalent");
  std::size_t unsafe_count = 0;
  std::size_t shown = 0;
  for (const RetimingMove& move : moves) {
    const MoveClass cls = classify_move(design, move);
    if (!cls.preserves_safe_replacement()) ++unsafe_count;
    if (shown >= 20) continue;  // keep the table readable
    ++shown;

    // Apply the single move and check CLS equivalence of the result — by
    // Corollary 5.3 this must hold for every single move.
    Netlist retimed = design;
    apply_move(retimed, move);
    const auto cls_equiv = check_cls_equivalence(design, retimed);

    std::printf("%-18s %-10s %-14s %-24s %-14s\n",
                design.name(move.element).c_str(),
                cell_kind_name(design.kind(move.element)),
                to_string(move.direction),
                cls.preserves_safe_replacement()
                    ? "safe (Cor 4.4)"
                    : "needs delay (Thm 4.5)",
                cls_equiv.equivalent ? "yes" : "NO");
  }
  if (moves.size() > shown) {
    std::printf("... (%zu more moves)\n", moves.size() - shown);
  }
  std::printf("\n%zu/%zu enabled moves are forward across non-justifiable "
              "elements\n(the only kind that can violate safe replacement)\n",
              unsafe_count, moves.size());
  return 0;
}
