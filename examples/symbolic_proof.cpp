// Symbolic proof workflow: retime a design with a known initial state,
// transport the state through the atomic moves ([TB93]-style justification)
// and PROVE output equivalence by BDD reachability on the miter — then
// contrast with the paper's Figure-1 counterexample state.
//
//   $ ./symbolic_proof

#include <cstdio>

#include "bdd/equivalence.hpp"
#include "bdd/symbolic.hpp"
#include "gen/iscas.hpp"
#include "gen/paper_circuits.hpp"
#include "retime/initial_state.hpp"
#include "retime/moves.hpp"
#include "util/rng.hpp"

using namespace rtv;

int main() {
  // Part 1: s27 with a known initial state, retimed by random moves with
  // the state transported; symbolic equivalence proof on the miter.
  const Netlist s27 = iscas_s27();
  Netlist retimed = s27;
  Bits state{0, 0, 0};
  Rng rng(7);
  int applied = 0;
  for (int step = 0; step < 8; ++step) {
    const auto moves = enabled_moves(retimed);
    if (moves.empty()) break;
    if (apply_move_with_state(retimed, moves[rng.index(moves.size())],
                              state)) {
      ++applied;
    }
  }
  std::printf("s27: applied %d atomic moves; latches %zu -> %zu\n", applied,
              s27.num_latches(), retimed.num_latches());
  std::printf("transported initial state: %s\n", to_string(state).c_str());
  const bool proven = symbolically_equivalent_from(
      s27, Bits{0, 0, 0}, retimed.compacted(), state);
  std::printf("symbolic equivalence proof: %s\n\n",
              proven ? "EQUIVALENT (exact, all input sequences)" : "FAILED");

  // Part 2: the paper's pair. Matching start states are provably
  // equivalent; the Section-2 counterexample state is provably not.
  const Netlist d = figure1_original();
  const Netlist c = figure1_retimed();
  std::printf("figure-1, D@0 vs C@(0,0): %s\n",
              symbolically_equivalent_from(d, Bits{0}, c, Bits{0, 0})
                  ? "equivalent"
                  : "NOT equivalent");
  std::printf("figure-1, D@0 vs C@(1,0): %s   <- Table 1's rogue state\n",
              symbolically_equivalent_from(d, Bits{0}, c, Bits{1, 0})
                  ? "equivalent"
                  : "NOT equivalent");

  // Part 3: symbolic state-machine implication (no initial states at all).
  SymbolicImplication sym(c, d);
  std::printf("\nsymbolic check, no init states: C ⊑ D %s; least n with "
              "C^n ⊑ D: %d\n",
              sym.implies() ? "holds" : "fails",
              sym.min_delay_for_implication(8));
  return proven ? 0 : 1;
}
