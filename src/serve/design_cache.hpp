#pragma once
// Content-addressed design cache for the serve daemon.
//
// Parsing a netlist is the cold cost every one-shot CLI invocation pays;
// a service seeing the same design across many jobs should pay it once.
// The cache interns designs under their *canonical content hash* — the
// FNV-1a-64 of write_rnl(netlist), so two textual variants of one design
// share an entry — and retains the parsed Netlist plus warm per-design
// analysis state (the RetimeGraph, built lazily on first validate) across
// requests, LRU-evicted under a byte cap.
//
// A second index keyed by the hash of the *raw request text* lets a client
// that resends identical inline text skip the parse entirely; the alias
// map is invalidated alongside the entry it points to.
//
// Thread-safe: every public member takes the internal mutex; entries are
// handed out as shared_ptr<const Entry> so a job keeps its design alive
// even if the entry is evicted mid-run.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "netlist/netlist.hpp"
#include "retime/graph.hpp"

namespace rtv::serve {

/// One interned design. Immutable after construction except the lazily
/// built graph (guarded by graph_once_).
class CachedDesign {
 public:
  CachedDesign(std::string design_id, Netlist netlist, std::string canonical);

  const std::string& design_id() const { return design_id_; }
  const Netlist& netlist() const { return netlist_; }
  const std::string& canonical_text() const { return canonical_; }

  /// Estimated retained bytes (canonical text + parsed form), the unit the
  /// cache's byte cap is enforced in.
  std::size_t bytes() const { return bytes_; }

  /// The design's Leiserson–Saxe graph, built on first use and warm for
  /// every later job on the same design. Thread-safe.
  const RetimeGraph& graph() const;

 private:
  std::string design_id_;
  Netlist netlist_;
  std::string canonical_;
  std::size_t bytes_ = 0;

  mutable std::once_flag graph_once_;
  mutable std::unique_ptr<RetimeGraph> graph_;
};

struct DesignCacheStats {
  std::uint64_t hits = 0;    ///< served without a parse
  std::uint64_t misses = 0;  ///< required a parse
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t byte_cap = 0;
};

/// The cache proper. byte_cap 0 disables retention entirely: intern()
/// still parses and returns entries, but nothing is kept and find()
/// always misses — the serve bench's cold mode.
class DesignCache {
 public:
  explicit DesignCache(std::size_t byte_cap) : byte_cap_(byte_cap) {}

  /// Parse-or-fetch inline design text. On an alias hit (same raw text
  /// seen before) or a canonical hit (different text, same design) no new
  /// entry is created. `cache_hit`, when non-null, reports whether the
  /// parse was skipped. Throws ParseError on malformed text.
  std::shared_ptr<const CachedDesign> intern(const std::string& rnl_text,
                                             bool* cache_hit = nullptr);

  /// Looks up a previously interned design by its content hash; nullptr
  /// when absent (never parses).
  std::shared_ptr<const CachedDesign> find(const std::string& design_id);

  DesignCacheStats stats() const;

  /// The canonical content hash (16 lowercase hex chars of FNV-1a-64 over
  /// write_rnl output). Exposed for tests and the bench.
  static std::string content_hash(const std::string& canonical_text);

 private:
  void insert_locked(const std::shared_ptr<const CachedDesign>& entry,
                     std::uint64_t raw_hash);
  void touch_locked(const std::string& design_id);
  void evict_locked();

  const std::size_t byte_cap_;

  mutable std::mutex mutex_;
  /// MRU-first list of resident design ids; eviction pops from the back.
  std::list<std::string> lru_;
  struct Resident {
    std::shared_ptr<const CachedDesign> design;
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, Resident> entries_;  ///< by design_id
  std::unordered_map<std::uint64_t, std::string> raw_alias_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace rtv::serve
