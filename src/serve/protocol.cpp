#include "serve/protocol.hpp"

#include <cmath>
#include <limits>

namespace rtv::serve {

namespace {

[[noreturn]] void bad_request(const std::string& what) {
  throw ProtocolError(ErrorCode::kBadRequest, what);
}

/// Reads an optional string member; rejects non-string values.
std::optional<std::string> opt_string(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr || v->is_null()) return std::nullopt;
  if (!v->is_string()) bad_request(std::string("\"") + key + "\" must be a string");
  return v->as_string();
}

/// Reads an optional non-negative integer member.
std::optional<std::uint64_t> opt_uint(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr || v->is_null()) return std::nullopt;
  if (!v->is_number()) bad_request(std::string("\"") + key + "\" must be a number");
  const double d = v->as_number();
  if (d < 0 || d != std::floor(d) || d > 9007199254740992.0) {
    bad_request(std::string("\"") + key + "\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

JsonValue::Object usage_object(const ResourceUsage& usage) {
  JsonValue::Object o;
  o.emplace_back("wall_ms", JsonValue(usage.wall_ms));
  o.emplace_back("steps", JsonValue(static_cast<double>(usage.steps)));
  o.emplace_back("peak_bdd_nodes",
                 JsonValue(static_cast<double>(usage.peak_bdd_nodes)));
  o.emplace_back("state_pairs",
                 JsonValue(static_cast<double>(usage.state_pairs)));
  o.emplace_back("bdd_gc_runs",
                 JsonValue(static_cast<double>(usage.bdd_gc_runs)));
  o.emplace_back("bdd_nodes_reclaimed",
                 JsonValue(static_cast<double>(usage.bdd_nodes_reclaimed)));
  o.emplace_back("bdd_reorder_runs",
                 JsonValue(static_cast<double>(usage.bdd_reorder_runs)));
  o.emplace_back("peak_live_bdd_nodes",
                 JsonValue(static_cast<double>(usage.peak_live_bdd_nodes)));
  o.emplace_back("exhausted", JsonValue(usage.exhausted));
  o.emplace_back("blown", usage.blown
                              ? JsonValue(std::string(to_string(*usage.blown)))
                              : JsonValue(nullptr));
  return o;
}

}  // namespace

const char* to_string(JobType type) {
  switch (type) {
    case JobType::kLint: return "lint";
    case JobType::kValidate: return "validate";
    case JobType::kFaultSim: return "faultsim";
    case JobType::kClsEquivalence: return "cls-equivalence";
    case JobType::kSimulate: return "simulate";
    case JobType::kStats: return "stats";
    case JobType::kHealth: return "health";
    case JobType::kShutdown: return "shutdown";
  }
  return "?";
}

std::optional<JobType> job_type_from_string(std::string_view name) {
  if (name == "lint") return JobType::kLint;
  if (name == "validate") return JobType::kValidate;
  if (name == "faultsim") return JobType::kFaultSim;
  if (name == "cls-equivalence") return JobType::kClsEquivalence;
  if (name == "simulate") return JobType::kSimulate;
  if (name == "stats") return JobType::kStats;
  if (name == "health") return JobType::kHealth;
  if (name == "shutdown") return JobType::kShutdown;
  return std::nullopt;
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kCapacity: return "capacity";
    case ErrorCode::kDesignNotFound: return "design_not_found";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

JobRequest parse_request(const JsonValue& document) {
  if (!document.is_object()) bad_request("request frame must be a JSON object");

  const JsonValue* version = document.find("rtv_serve");
  if (version == nullptr || !version->is_number() ||
      version->as_number() < kMinProtocolVersion ||
      version->as_number() > kProtocolVersion) {
    bad_request("\"rtv_serve\" must be present and between " +
                std::to_string(kMinProtocolVersion) + " and " +
                std::to_string(kProtocolVersion));
  }

  JobRequest request;
  const std::optional<std::string> id = opt_string(document, "id");
  if (!id || id->empty()) bad_request("\"id\" must be a non-empty string");
  request.id = *id;

  const std::optional<std::string> type = opt_string(document, "type");
  if (!type) bad_request("\"type\" must be a string");
  const std::optional<JobType> job_type = job_type_from_string(*type);
  if (!job_type) bad_request("unknown job type \"" + *type + "\"");
  request.type = *job_type;

  request.design_text = opt_string(document, "design");
  request.design_id = opt_string(document, "design_id");
  request.design_b_text = opt_string(document, "design_b");
  request.design_b_id = opt_string(document, "design_b_id");

  const bool needs_design = request.type == JobType::kLint ||
                            request.type == JobType::kValidate ||
                            request.type == JobType::kFaultSim ||
                            request.type == JobType::kClsEquivalence ||
                            request.type == JobType::kSimulate;
  const auto check_one = [](const std::optional<std::string>& text,
                            const std::optional<std::string>& ref,
                            const char* what, bool required) {
    if (text && ref) {
      bad_request(std::string(what) + " given both inline and by id");
    }
    if (required && !text && !ref) {
      bad_request(std::string(what) +
                  " required: provide \"design\" or \"design_id\"");
    }
  };
  check_one(request.design_text, request.design_id, "design", needs_design);
  check_one(request.design_b_text, request.design_b_id, "design_b",
            request.type == JobType::kClsEquivalence);
  if (request.type != JobType::kClsEquivalence &&
      (request.design_b_text || request.design_b_id)) {
    bad_request("design_b is only valid for cls-equivalence jobs");
  }
  if (!needs_design && (request.design_text || request.design_id)) {
    bad_request(std::string("a ") + to_string(request.type) +
                " request takes no design");
  }

  if (const std::optional<std::uint64_t> deadline =
          opt_uint(document, "deadline_ms")) {
    if (!needs_design) {
      bad_request(std::string("a ") + to_string(request.type) +
                  " request takes no deadline_ms");
    }
    request.deadline_ms = *deadline;
  }

  if (const JsonValue* budget = document.find("budget")) {
    if (!budget->is_null()) {
      if (!budget->is_object()) bad_request("\"budget\" must be an object");
      BudgetSpec spec;
      spec.time_ms = opt_uint(*budget, "time_ms").value_or(0);
      spec.node_limit = static_cast<std::size_t>(
          opt_uint(*budget, "node_limit").value_or(0));
      spec.step_quota = opt_uint(*budget, "step_quota").value_or(0);
      request.budget = spec;
    }
  }

  if (const JsonValue* options = document.find("options")) {
    if (!options->is_null() && !options->is_object()) {
      bad_request("\"options\" must be an object");
    }
    request.options = *options;
  }
  return request;
}

std::string render_response(const std::string& id, JobType type,
                            const std::string& design_id,
                            const JsonValue& result,
                            const JobStatsWire& stats) {
  JsonValue::Object frame;
  frame.emplace_back("rtv_serve",
                     JsonValue(static_cast<double>(kProtocolVersion)));
  frame.emplace_back("id", JsonValue(id));
  frame.emplace_back("ok", JsonValue(true));
  frame.emplace_back("type", JsonValue(std::string(to_string(type))));
  if (!design_id.empty()) {
    frame.emplace_back("design_id", JsonValue(design_id));
  }
  frame.emplace_back("result", result);

  JsonValue::Object s;
  s.emplace_back("queue_ms", JsonValue(stats.queue_ms));
  s.emplace_back("run_ms", JsonValue(stats.run_ms));
  s.emplace_back("cache_hit", JsonValue(stats.cache_hit));
  s.emplace_back("verdict", JsonValue(stats.verdict));
  if (stats.governed) {
    s.emplace_back("usage", JsonValue(usage_object(stats.usage)));
  }
  frame.emplace_back("stats", JsonValue(std::move(s)));
  return write_json(JsonValue(std::move(frame)));
}

std::string render_error(const std::string& id, ErrorCode code,
                         const std::string& message,
                         const ErrorDetail& detail) {
  JsonValue::Object frame;
  frame.emplace_back("rtv_serve",
                     JsonValue(static_cast<double>(kProtocolVersion)));
  frame.emplace_back("id",
                     id.empty() ? JsonValue(nullptr) : JsonValue(id));
  frame.emplace_back("ok", JsonValue(false));
  JsonValue::Object error;
  error.emplace_back("code", JsonValue(std::string(to_string(code))));
  error.emplace_back("message", JsonValue(message));
  if (detail.retry_after_ms) {
    error.emplace_back("retry_after_ms",
                       JsonValue(static_cast<double>(*detail.retry_after_ms)));
  }
  if (detail.expired_in_queue) {
    error.emplace_back("expired_in_queue", JsonValue(true));
  }
  frame.emplace_back("error", JsonValue(std::move(error)));
  return write_json(JsonValue(std::move(frame)));
}

ErrorCode error_code_for_exception(const std::exception& error) {
  if (const auto* p = dynamic_cast<const ProtocolError*>(&error)) {
    return p->code();
  }
  if (dynamic_cast<const ParseError*>(&error) != nullptr) {
    return ErrorCode::kParseError;
  }
  if (dynamic_cast<const CapacityError*>(&error) != nullptr) {
    return ErrorCode::kCapacity;
  }
  if (dynamic_cast<const InvalidArgument*>(&error) != nullptr) {
    return ErrorCode::kInvalidArgument;
  }
  return ErrorCode::kInternal;
}

std::string validate_response(const JsonValue& document) {
  if (!document.is_object()) return "response frame must be a JSON object";
  const JsonValue* version = document.find("rtv_serve");
  if (version == nullptr || !version->is_number() ||
      version->as_number() != kProtocolVersion) {
    return "\"rtv_serve\" must equal " + std::to_string(kProtocolVersion);
  }
  const JsonValue* id = document.find("id");
  if (id == nullptr || (!id->is_string() && !id->is_null())) {
    return "\"id\" must be a string (or null in an error envelope)";
  }
  const JsonValue* ok = document.find("ok");
  if (ok == nullptr || !ok->is_bool()) return "\"ok\" must be a boolean";

  if (!ok->as_bool()) {
    const JsonValue* error = document.find("error");
    if (error == nullptr || !error->is_object()) {
      return "error envelope needs an \"error\" object";
    }
    const JsonValue* code = error->find("code");
    if (code == nullptr || !code->is_string()) {
      return "\"error.code\" must be a string";
    }
    static const char* known[] = {"bad_request",      "parse_error",
                                  "invalid_argument", "capacity",
                                  "design_not_found", "shutting_down",
                                  "overloaded",       "internal"};
    bool found = false;
    for (const char* k : known) found |= code->as_string() == k;
    if (!found) return "unknown error code \"" + code->as_string() + "\"";
    const JsonValue* message = error->find("message");
    if (message == nullptr || !message->is_string()) {
      return "\"error.message\" must be a string";
    }
    if (const JsonValue* retry = error->find("retry_after_ms")) {
      if (!retry->is_number() || retry->as_number() < 0) {
        return "\"error.retry_after_ms\" must be a non-negative number";
      }
    }
    if (const JsonValue* expired = error->find("expired_in_queue")) {
      if (!expired->is_bool()) {
        return "\"error.expired_in_queue\" must be a boolean";
      }
    }
    return "";
  }

  const JsonValue* type = document.find("type");
  if (type == nullptr || !type->is_string() ||
      !job_type_from_string(type->as_string())) {
    return "success response needs a known \"type\"";
  }
  if (document.find("result") == nullptr) {
    return "success response needs a \"result\"";
  }
  const JsonValue* stats = document.find("stats");
  if (stats == nullptr || !stats->is_object()) {
    return "success response needs a \"stats\" object";
  }
  for (const char* key : {"queue_ms", "run_ms"}) {
    const JsonValue* v = stats->find(key);
    if (v == nullptr || !v->is_number()) {
      return std::string("\"stats.") + key + "\" must be a number";
    }
  }
  const JsonValue* cache_hit = stats->find("cache_hit");
  if (cache_hit == nullptr || !cache_hit->is_bool()) {
    return "\"stats.cache_hit\" must be a boolean";
  }
  const JsonValue* verdict = stats->find("verdict");
  if (verdict == nullptr || !verdict->is_string()) {
    return "\"stats.verdict\" must be a string";
  }
  const std::string& v = verdict->as_string();
  if (v != "proven" && v != "bounded" && v != "exhausted" && v != "none") {
    return "unknown verdict \"" + v + "\"";
  }
  if (const JsonValue* usage = stats->find("usage")) {
    if (!usage->is_object()) return "\"stats.usage\" must be an object";
    for (const char* key : {"wall_ms", "steps", "peak_bdd_nodes",
                            "state_pairs", "bdd_gc_runs",
                            "bdd_nodes_reclaimed", "bdd_reorder_runs",
                            "peak_live_bdd_nodes"}) {
      const JsonValue* u = usage->find(key);
      if (u == nullptr || !u->is_number()) {
        return std::string("\"stats.usage.") + key + "\" must be a number";
      }
    }
    const JsonValue* exhausted = usage->find("exhausted");
    if (exhausted == nullptr || !exhausted->is_bool()) {
      return "\"stats.usage.exhausted\" must be a boolean";
    }
  }
  return "";
}

}  // namespace rtv::serve
