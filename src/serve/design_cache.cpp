#include "serve/design_cache.hpp"

#include <cstdio>

#include "io/rnl_format.hpp"

namespace rtv::serve {

namespace {

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

CachedDesign::CachedDesign(std::string design_id, Netlist netlist,
                           std::string canonical)
    : design_id_(std::move(design_id)),
      netlist_(std::move(netlist)),
      canonical_(std::move(canonical)) {
  // The parsed form is the same order of magnitude as the text; 2x text
  // plus a fixed overhead is a deliberately rough but monotone estimate —
  // the cap needs relative sizes, not an allocator audit.
  bytes_ = 2 * canonical_.size() + 1024;
}

const RetimeGraph& CachedDesign::graph() const {
  std::call_once(graph_once_, [this] {
    graph_ = std::make_unique<RetimeGraph>(RetimeGraph::from_netlist(netlist_));
  });
  return *graph_;
}

std::string DesignCache::content_hash(const std::string& canonical_text) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(canonical_text)));
  return buf;
}

std::shared_ptr<const CachedDesign> DesignCache::intern(
    const std::string& rnl_text, bool* cache_hit) {
  const std::uint64_t raw_hash = fnv1a64(rnl_text);
  {
    std::lock_guard<std::mutex> lk(mutex_);
    const auto alias = raw_alias_.find(raw_hash);
    if (alias != raw_alias_.end()) {
      const auto it = entries_.find(alias->second);
      if (it != entries_.end()) {
        ++hits_;
        if (cache_hit != nullptr) *cache_hit = true;
        touch_locked(it->first);
        return it->second.design;
      }
      raw_alias_.erase(alias);  // stale: its entry was evicted
    }
  }

  // Parse outside the lock: one slow parse must not serialize the fleet.
  Netlist netlist = read_rnl(rnl_text);
  std::string canonical = write_rnl(netlist);
  std::string design_id = content_hash(canonical);

  std::lock_guard<std::mutex> lk(mutex_);
  const auto it = entries_.find(design_id);
  if (it != entries_.end()) {
    // Canonical hit under a new spelling: remember the alias, drop our
    // freshly parsed copy. Counted as a miss — the parse happened.
    ++misses_;
    if (cache_hit != nullptr) *cache_hit = false;
    raw_alias_.emplace(raw_hash, design_id);
    touch_locked(design_id);
    return it->second.design;
  }
  ++misses_;
  if (cache_hit != nullptr) *cache_hit = false;
  auto entry = std::make_shared<const CachedDesign>(
      std::move(design_id), std::move(netlist), std::move(canonical));
  insert_locked(entry, raw_hash);
  return entry;
}

std::shared_ptr<const CachedDesign> DesignCache::find(
    const std::string& design_id) {
  std::lock_guard<std::mutex> lk(mutex_);
  const auto it = entries_.find(design_id);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  touch_locked(design_id);
  return it->second.design;
}

DesignCacheStats DesignCache::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  DesignCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  s.byte_cap = byte_cap_;
  return s;
}

void DesignCache::insert_locked(
    const std::shared_ptr<const CachedDesign>& entry, std::uint64_t raw_hash) {
  if (byte_cap_ == 0 || entry->bytes() > byte_cap_) {
    // Retention disabled, or this one design alone exceeds the cap: hand
    // the entry out uncached rather than evicting the whole fleet for it.
    return;
  }
  lru_.push_front(entry->design_id());
  entries_.emplace(entry->design_id(), Resident{entry, lru_.begin()});
  raw_alias_.emplace(raw_hash, entry->design_id());
  bytes_ += entry->bytes();
  evict_locked();
}

void DesignCache::touch_locked(const std::string& design_id) {
  const auto it = entries_.find(design_id);
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
}

void DesignCache::evict_locked() {
  while (bytes_ > byte_cap_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    const auto it = entries_.find(victim);
    bytes_ -= it->second.design->bytes();
    entries_.erase(it);
    ++evictions_;
    // Alias entries pointing at the victim are pruned lazily on their
    // next lookup (intern() drops a stale alias when its entry is gone).
  }
}

}  // namespace rtv::serve
