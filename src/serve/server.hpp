#pragma once
// The `rtv serve` daemon core: a long-running verification service that
// accepts newline-delimited JSON job requests (serve/protocol.hpp) over a
// Unix-domain socket or a stdin/stdout pipe, dispatches them onto the
// work-stealing ThreadPool, and isolates every job behind its own
// ResourceBudget + CancellationToken — an exhausted job degrades to a
// labeled verdict in its own response, it never takes the process (or a
// neighbouring job) down with it.
//
// Concurrency model:
//  * one reader thread per connection parses frames and submits jobs;
//  * up to --max-inflight jobs are in flight at once — when the limit is
//    reached the reader simply stops reading, so backpressure propagates
//    to the client through the socket buffer;
//  * responses are written as jobs finish, possibly out of request order;
//    clients correlate by "id";
//  * stats/shutdown are control requests answered inline on the reader
//    thread, so they cannot be starved by a full job queue;
//  * shutdown flips a flag, stops all readers and the accept loop, lets
//    in-flight jobs drain, then the serve loop returns.
//
// Designs are interned in a content-addressed DesignCache shared by all
// connections (serve/design_cache.hpp); a response's stats.cache_hit says
// whether the job skipped the parse.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/design_cache.hpp"
#include "serve/protocol.hpp"
#include "util/thread_pool.hpp"

namespace rtv::serve {

struct ServeOptions {
  /// Job worker threads (ThreadPool size); 0 = one per hardware thread.
  /// A size-1 pool runs jobs inline on the reader thread (serial mode).
  unsigned threads = 0;
  /// Max jobs in flight (queued + running) before readers pause; 0 = the
  /// resolved pool size.
  unsigned max_inflight = 0;
  /// Wall-clock budget applied to any job whose request does not carry its
  /// own budget.time_ms; 0 = no default deadline.
  std::uint64_t default_time_budget_ms = 0;
  /// DesignCache byte cap; 0 disables retention (every job re-parses).
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// Hard cap on one request frame's size; larger frames are rejected with
  /// a bad_request envelope before JSON parsing.
  std::size_t max_request_bytes = std::size_t{32} << 20;
  /// JSON nesting depth cap for request frames (io/json JsonLimits).
  std::size_t max_json_depth = 64;
};

/// Snapshot reported by the "stats" job type and Server::stats().
struct ServeStats {
  std::uint64_t jobs_accepted = 0;
  std::uint64_t jobs_done = 0;    ///< success responses written
  std::uint64_t jobs_failed = 0;  ///< error envelopes written
  unsigned inflight = 0;
  unsigned max_inflight = 0;
  unsigned threads = 0;
  bool shutting_down = false;
  DesignCacheStats cache;
};

class Server {
 public:
  explicit Server(const ServeOptions& options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Processes one request frame synchronously and returns its response
  /// frame (no trailing newline). Thread-safe; used by tests and makes
  /// every handler reachable without a socket.
  std::string handle_line(const std::string& line);

  /// NDJSON loop over a stream pair: one request per input line, one
  /// response per output line. Returns after EOF or a shutdown request,
  /// once every in-flight job has written its response.
  void serve_stream(std::istream& in, std::ostream& out);

  /// Binds a Unix-domain stream socket at `path` (replacing any stale
  /// file), accepts connections until a shutdown request arrives, drains,
  /// unlinks the socket and returns. One reader thread per connection.
  /// Throws IoError when the socket cannot be created or bound.
  void serve_socket(const std::string& path);

  ServeStats stats() const;
  bool shutting_down() const {
    return shutting_down_.load(std::memory_order_acquire);
  }

 private:
  struct Connection;  // per-connection write ordering + drain tracking

  /// Parses one frame and either answers inline (control requests,
  /// malformed frames) or submits a job to the pool. The connection's
  /// outstanding count is raised before submit so wait_drained() cannot
  /// miss the job.
  void dispatch(const std::string& line,
                const std::shared_ptr<Connection>& conn);

  /// Runs one job on a pool thread; always returns a response frame.
  std::string run_job(const JobRequest& request, double queue_ms);

  /// Per-type handlers. Each returns the "result" object and fills the
  /// wire stats (verdict, usage, cache_hit).
  JsonValue execute(const JobRequest& request, JobStatsWire* stats,
                    std::string* design_id);
  JsonValue handle_lint(const JobRequest& request, JobStatsWire* stats,
                        std::string* design_id);
  JsonValue handle_validate(const JobRequest& request, JobStatsWire* stats,
                            std::string* design_id);
  JsonValue handle_faultsim(const JobRequest& request, JobStatsWire* stats,
                            std::string* design_id);
  JsonValue handle_cls_equivalence(const JobRequest& request,
                                   JobStatsWire* stats,
                                   std::string* design_id);
  JsonValue handle_simulate(const JobRequest& request, JobStatsWire* stats,
                            std::string* design_id);
  JsonValue stats_result() const;
  JsonValue shutdown_result();

  std::shared_ptr<const CachedDesign> resolve_design(
      const std::optional<std::string>& text,
      const std::optional<std::string>& id, bool* cache_hit);

  /// The job's resource caps: its own budget fields, with the server's
  /// default deadline filled in when the request has none.
  ResourceLimits limits_for(const JobRequest& request) const;

  void begin_shutdown();
  void serve_fd(int fd);
  void acquire_slot();
  void release_slot();

  const ServeOptions options_;
  ThreadPool pool_;
  DesignCache cache_;
  unsigned max_inflight_;

  std::atomic<bool> shutting_down_{false};
  std::atomic<std::uint64_t> jobs_accepted_{0};
  std::atomic<std::uint64_t> jobs_done_{0};
  std::atomic<std::uint64_t> jobs_failed_{0};

  mutable std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  unsigned inflight_ = 0;

  /// Listener + live connection fds, tracked so begin_shutdown() can
  /// interrupt blocked accept()/read() calls with shutdown(2).
  std::mutex fds_mutex_;
  int listen_fd_ = -1;
  std::vector<int> conn_fds_;
};

}  // namespace rtv::serve
