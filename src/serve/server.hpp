#pragma once
// The `rtv serve` daemon core: a long-running verification service that
// accepts newline-delimited JSON job requests (serve/protocol.hpp) over a
// Unix-domain socket or a stdin/stdout pipe, dispatches them onto the
// work-stealing ThreadPool, and isolates every job behind its own
// ResourceBudget + CancellationToken — an exhausted job degrades to a
// labeled verdict in its own response, it never takes the process (or a
// neighbouring job) down with it.
//
// Concurrency model:
//  * one reader thread per connection parses frames and submits jobs;
//  * up to --max-inflight jobs run at once; beyond that a bounded
//    admission queue (--admission-queue) holds jobs, and when the queue is
//    also full new jobs are shed immediately with an "overloaded" error
//    envelope carrying a retry_after_ms hint — the reader never blocks, so
//    an overloaded server stays responsive instead of stalling;
//  * a request's deadline_ms (or --default-deadline-ms) becomes an
//    absolute deadline at admission: queue wait counts against it, a job
//    whose deadline expires while queued is rejected without running, and
//    a running job is cancelled by the watchdog when its deadline passes;
//  * a watchdog thread fires each overdue job's CancellationToken; a job
//    that still hasn't yielded after the --watchdog-grace multiple of its
//    deadline span is recorded as wedged and its slot quarantined, so a
//    stuck backend degrades capacity by exactly one slot instead of
//    wedging the server;
//  * responses are written as jobs finish, possibly out of request order;
//    clients correlate by "id";
//  * stats/health/shutdown are control requests answered inline on the
//    reader thread, so they cannot be starved by a full job queue;
//  * socket writes time out after --write-timeout-ms: a client that stops
//    reading has its connection severed rather than wedging a pool thread
//    mid-write;
//  * shutdown flips a flag, stops all readers and the accept loop, lets
//    in-flight (running + queued) jobs drain, then the serve loop returns.
//
// Designs are interned in a content-addressed DesignCache shared by all
// connections (serve/design_cache.hpp); a response's stats.cache_hit says
// whether the job skipped the parse.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/design_cache.hpp"
#include "serve/protocol.hpp"
#include "util/thread_pool.hpp"

namespace rtv::serve {

struct ServeOptions {
  /// Job worker threads (ThreadPool size); 0 = one per hardware thread.
  /// A size-1 pool runs jobs inline on the reader thread (serial mode).
  unsigned threads = 0;
  /// Max jobs running at once; 0 = the resolved pool size.
  unsigned max_inflight = 0;
  /// Admission queue depth beyond the running slots; a job arriving with
  /// the queue full is shed with an "overloaded" envelope. 0 = twice the
  /// resolved max_inflight.
  unsigned admission_queue = 0;
  /// Wall-clock budget applied to any job whose request does not carry its
  /// own budget.time_ms; 0 = no default deadline.
  std::uint64_t default_time_budget_ms = 0;
  /// Deadline applied to any job whose request does not carry its own
  /// deadline_ms; 0 = no default deadline.
  std::uint64_t default_deadline_ms = 0;
  /// Watchdog grace multiple: a job cancelled at its deadline that still
  /// has not yielded after grace × its deadline span is recorded as wedged
  /// and its slot quarantined. Minimum 1.
  unsigned watchdog_grace = 4;
  /// Per-frame socket write timeout; a client that stops reading past this
  /// has its connection severed. 0 = block forever (pre-v3 behaviour).
  std::uint64_t write_timeout_ms = 10000;
  /// DesignCache byte cap; 0 disables retention (every job re-parses).
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// Hard cap on one request frame's size; larger frames are rejected with
  /// a bad_request envelope before JSON parsing.
  std::size_t max_request_bytes = std::size_t{32} << 20;
  /// JSON nesting depth cap for request frames (io/json JsonLimits).
  std::size_t max_json_depth = 64;
  /// Test-only: accept chaos_* options on simulate jobs (deterministic
  /// spin/wedge handlers the overload tests and bench drive). Never
  /// enabled by the CLI.
  bool chaos_hooks = false;
};

/// Snapshot reported by the "stats" job type and Server::stats().
///
/// Counter semantics (the quiescent invariant the tests assert):
///   jobs_accepted == jobs_done + jobs_failed + inflight + queued
/// A request that was never admitted — malformed, shed by admission
/// control, or refused while draining — counts in jobs_rejected only.
struct ServeStats {
  std::uint64_t jobs_accepted = 0;
  std::uint64_t jobs_done = 0;      ///< success responses written
  std::uint64_t jobs_failed = 0;    ///< error envelopes for admitted jobs
  std::uint64_t jobs_rejected = 0;  ///< error envelopes, never admitted
  std::uint64_t jobs_shed = 0;      ///< rejections due to a full queue
  std::uint64_t jobs_expired = 0;   ///< admitted, deadline died in queue
  std::uint64_t watchdog_kills = 0;   ///< deadline cancellations fired
  std::uint64_t watchdog_wedged = 0;  ///< kills that missed the grace window
  std::uint64_t write_timeouts = 0;   ///< connections severed mid-write
  unsigned inflight = 0;       ///< jobs running now (excludes quarantined)
  unsigned queued = 0;         ///< jobs waiting in the admission queue
  unsigned quarantined = 0;    ///< wedged slots currently written off
  unsigned max_inflight = 0;
  unsigned admission_queue = 0;  ///< queue capacity
  unsigned threads = 0;
  bool shutting_down = false;
  DesignCacheStats cache;
};

class Server {
 public:
  explicit Server(const ServeOptions& options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Processes one request frame synchronously and returns its response
  /// frame (no trailing newline). Thread-safe; used by tests and makes
  /// every handler reachable without a socket.
  std::string handle_line(const std::string& line);

  /// NDJSON loop over a stream pair: one request per input line, one
  /// response per output line. Returns after EOF or a shutdown request,
  /// once every in-flight job has written its response.
  void serve_stream(std::istream& in, std::ostream& out);

  /// Binds a Unix-domain stream socket at `path` (replacing any stale
  /// file), accepts connections until a shutdown request arrives, drains,
  /// unlinks the socket and returns. One reader thread per connection.
  /// Throws IoError when the socket cannot be created or bound.
  void serve_socket(const std::string& path);

  ServeStats stats() const;
  bool shutting_down() const {
    return shutting_down_.load(std::memory_order_acquire);
  }

 private:
  struct Connection;  // per-connection write ordering + drain tracking

  /// One admitted job, shared between the admission queue, the pool task
  /// that runs it, and the watchdog. The watchdog flags (kill_fired,
  /// quarantined, wedge_at) are guarded by admission_mutex_.
  struct Job {
    JobRequest request;
    std::shared_ptr<Connection> conn;
    std::chrono::steady_clock::time_point admitted;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::uint64_t deadline_span_ms = 0;  ///< resolved deadline_ms
    CancellationToken cancel;
    bool kill_fired = false;
    bool quarantined = false;
    std::chrono::steady_clock::time_point wedge_at{};
  };

  /// What each job's handlers get: the per-job cancellation token the
  /// watchdog fires, and the job's absolute deadline (if any).
  struct JobEnv {
    CancellationToken cancel;
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  /// Parses one frame and either answers inline (control requests,
  /// malformed frames, shed jobs) or admits a job: started immediately
  /// when a slot is free, else queued. The connection's outstanding count
  /// is raised at admission so wait_drained() cannot miss the job.
  void dispatch(const std::string& line,
                const std::shared_ptr<Connection>& conn);

  /// Runs one admitted job on a pool thread; always returns a response
  /// frame. Checks the job's deadline first: a job that expired while
  /// queued is answered with an "overloaded" envelope without running.
  std::string run_job(const Job& job);

  /// Enqueues the pool task for an already-admitted job holding a running
  /// slot. May run the job inline on a size-1 pool. Throws only before
  /// the task is queued (callers unwind the admission).
  void submit_job(const std::shared_ptr<Job>& job);

  /// Job completion: frees the slot (or clears quarantine), feeds the
  /// run-time average behind retry_after_ms, and pumps the queue.
  void finish_job(const std::shared_ptr<Job>& job, double run_ms);

  /// Moves queued jobs into freed slots (collecting expired ones) and
  /// processes them outside the admission lock.
  void pump_queue();

  /// Pops every queued job that fits a free slot into *to_start and every
  /// queued job whose deadline has passed into *to_expire. Caller holds
  /// admission_mutex_.
  void collect_runnable_locked(std::vector<std::shared_ptr<Job>>* to_start,
                               std::vector<std::shared_ptr<Job>>* to_expire);

  /// Starts/expires the jobs collect_runnable_locked() produced. Must be
  /// called without admission_mutex_ held: on a size-1 pool a started job
  /// runs inline and re-enters the admission path.
  void process_runnable(const std::vector<std::shared_ptr<Job>>& to_start,
                        const std::vector<std::shared_ptr<Job>>& to_expire);

  /// retry_after_ms hint for a shed/expired job: the run-time average
  /// scaled by queue occupancy. Caller holds admission_mutex_.
  std::uint64_t retry_hint_locked() const;

  void watchdog_main();

  /// Per-type handlers. Each returns the "result" object and fills the
  /// wire stats (verdict, usage, cache_hit).
  JsonValue execute(const JobRequest& request, const JobEnv& env,
                    JobStatsWire* stats, std::string* design_id);
  JsonValue handle_lint(const JobRequest& request, JobStatsWire* stats,
                        std::string* design_id);
  JsonValue handle_validate(const JobRequest& request, const JobEnv& env,
                            JobStatsWire* stats, std::string* design_id);
  JsonValue handle_faultsim(const JobRequest& request, const JobEnv& env,
                            JobStatsWire* stats, std::string* design_id);
  JsonValue handle_cls_equivalence(const JobRequest& request,
                                   const JobEnv& env, JobStatsWire* stats,
                                   std::string* design_id);
  JsonValue handle_simulate(const JobRequest& request, const JobEnv& env,
                            JobStatsWire* stats, std::string* design_id);
  JsonValue stats_result() const;
  JsonValue health_result() const;
  JsonValue shutdown_result();

  std::shared_ptr<const CachedDesign> resolve_design(
      const std::optional<std::string>& text,
      const std::optional<std::string>& id, bool* cache_hit);

  /// The job's resource caps: its own budget fields, with the server's
  /// default time budget filled in when the request has none, and the
  /// wall-clock budget clamped to the time remaining before `deadline` —
  /// queue wait has already been spent, so the handler only gets what is
  /// left.
  ResourceLimits limits_for(
      const JobRequest& request,
      const std::optional<std::chrono::steady_clock::time_point>& deadline)
      const;

  void begin_shutdown();
  void serve_fd(int fd);

  const ServeOptions options_;
  ThreadPool pool_;
  DesignCache cache_;
  unsigned max_inflight_;
  unsigned admission_queue_;
  unsigned watchdog_grace_;

  std::atomic<bool> shutting_down_{false};
  std::atomic<std::uint64_t> jobs_accepted_{0};
  std::atomic<std::uint64_t> jobs_done_{0};
  std::atomic<std::uint64_t> jobs_failed_{0};
  std::atomic<std::uint64_t> jobs_rejected_{0};
  std::atomic<std::uint64_t> jobs_shed_{0};
  std::atomic<std::uint64_t> jobs_expired_{0};
  std::atomic<std::uint64_t> watchdog_kills_{0};
  std::atomic<std::uint64_t> watchdog_wedged_{0};
  std::atomic<std::uint64_t> write_timeouts_{0};

  /// Admission state: running/queued jobs, the watchdog's view of both,
  /// and the run-time average behind retry_after_ms.
  mutable std::mutex admission_mutex_;
  std::condition_variable watchdog_cv_;
  unsigned running_ = 0;      ///< slots in use (quarantined slots excluded)
  unsigned quarantined_ = 0;  ///< wedged slots currently written off
  std::deque<std::shared_ptr<Job>> queue_;
  std::vector<std::shared_ptr<Job>> running_jobs_;
  double avg_run_ms_ = 0.0;  ///< EWMA over finished jobs (0 = no sample)
  bool watchdog_stop_ = false;
  std::thread watchdog_;

  /// Listener + live connection fds, tracked so begin_shutdown() can
  /// interrupt blocked accept()/read() calls with shutdown(2).
  std::mutex fds_mutex_;
  int listen_fd_ = -1;
  std::vector<int> conn_fds_;
};

}  // namespace rtv::serve
