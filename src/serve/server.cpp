#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <istream>
#include <ostream>
#include <thread>

#include "analysis/lint.hpp"
#include "core/cls_equiv.hpp"
#include "core/validator.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "retime/min_area.hpp"
#include "retime/min_period.hpp"
#include "sim/binary_sim.hpp"
#include "sim/cls_sim.hpp"
#include "sim/vectors.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"

namespace rtv::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

[[noreturn]] void bad_option(const std::string& what) {
  throw ProtocolError(ErrorCode::kBadRequest, what);
}

/// Rejects option keys a job type does not understand — a typo'd option
/// silently ignored would look like a job that ran with it.
void check_option_keys(const JsonValue& options,
                       std::initializer_list<const char*> allowed) {
  if (!options.is_object()) return;  // absent options arrive as JSON null
  for (const auto& [key, value] : options.as_object()) {
    (void)value;
    bool known = false;
    for (const char* k : allowed) known |= key == k;
    if (!known) bad_option("unknown option \"" + key + "\"");
  }
}

std::optional<std::uint64_t> option_uint(const JsonValue& options,
                                         const char* key) {
  if (!options.is_object()) return std::nullopt;
  const JsonValue* v = options.find(key);
  if (v == nullptr || v->is_null()) return std::nullopt;
  if (!v->is_number() || v->as_number() < 0 ||
      v->as_number() != static_cast<double>(
                            static_cast<std::uint64_t>(v->as_number()))) {
    bad_option(std::string("option \"") + key +
               "\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v->as_number());
}

std::optional<std::string> option_string(const JsonValue& options,
                                         const char* key) {
  if (!options.is_object()) return std::nullopt;
  const JsonValue* v = options.find(key);
  if (v == nullptr || v->is_null()) return std::nullopt;
  if (!v->is_string()) {
    bad_option(std::string("option \"") + key + "\" must be a string");
  }
  return v->as_string();
}

std::optional<bool> option_bool(const JsonValue& options, const char* key) {
  if (!options.is_object()) return std::nullopt;
  const JsonValue* v = options.find(key);
  if (v == nullptr || v->is_null()) return std::nullopt;
  if (!v->is_bool()) {
    bad_option(std::string("option \"") + key + "\" must be a boolean");
  }
  return v->as_bool();
}

std::vector<std::string> split_sequences(const std::string& list) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t end = list.find(',', begin);
    if (end == std::string::npos) {
      parts.push_back(list.substr(begin));
      break;
    }
    parts.push_back(list.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

JsonValue uint_json(std::uint64_t v) {
  return JsonValue(static_cast<double>(v));
}

/// Runs `rollback` on scope exit unless dismissed — the RAII unwind for
/// admission bookkeeping raised before pool_.submit: a throw there must
/// not leak an inflight slot or a connection's outstanding count.
class ScopeGuard {
 public:
  explicit ScopeGuard(std::function<void()> rollback)
      : rollback_(std::move(rollback)) {}
  ~ScopeGuard() {
    if (rollback_) {
      try {
        rollback_();
      } catch (...) {
      }
    }
  }
  void dismiss() { rollback_ = nullptr; }

  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;

 private:
  std::function<void()> rollback_;
};

}  // namespace

/// Serializes writes of one connection and lets its reader wait for every
/// submitted job's response before the output channel is torn down.
struct Server::Connection {
  std::function<void(const std::string&)> sink;  ///< raw frame writer

  void write(const std::string& frame) {
    std::lock_guard<std::mutex> lk(write_mutex);
    sink(frame);
  }
  void job_started() {
    std::lock_guard<std::mutex> lk(drain_mutex);
    ++outstanding;
  }
  void job_finished() {
    std::lock_guard<std::mutex> lk(drain_mutex);
    --outstanding;
    if (outstanding == 0) drain_cv.notify_all();
  }
  void wait_drained() {
    std::unique_lock<std::mutex> lk(drain_mutex);
    drain_cv.wait(lk, [&] { return outstanding == 0; });
  }

 private:
  std::mutex write_mutex;
  std::mutex drain_mutex;
  std::condition_variable drain_cv;
  unsigned outstanding = 0;
};

Server::Server(const ServeOptions& options)
    : options_(options),
      pool_(options.threads),
      cache_(options.cache_bytes),
      max_inflight_(options.max_inflight != 0 ? options.max_inflight
                                              : pool_.size()),
      admission_queue_(options.admission_queue != 0 ? options.admission_queue
                                                    : 2 * max_inflight_),
      watchdog_grace_(std::max(1u, options.watchdog_grace)) {
  watchdog_ = std::thread([this] { watchdog_main(); });
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lk(admission_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  watchdog_.join();
  // Jobs still queued in the pool hold no Server state beyond what their
  // lambdas captured by shared_ptr; callers (handle_line / serve_*) drain
  // before destruction, so no pool task outlives the members it touches.
}

std::uint64_t Server::retry_hint_locked() const {
  // Estimate how long until a freshly retried job would find a slot: the
  // recent per-job run time scaled by how many jobs are ahead of it.
  const double per_job = avg_run_ms_ > 0.0 ? avg_run_ms_ : 10.0;
  const double width = static_cast<double>(std::max(1u, max_inflight_));
  const double estimate =
      per_job * (static_cast<double>(queue_.size()) + 1.0) / width;
  return static_cast<std::uint64_t>(std::clamp(estimate, 1.0, 30000.0));
}

void Server::dispatch(const std::string& line,
                      const std::shared_ptr<Connection>& conn) {
  std::string id;
  try {
    if (options_.max_request_bytes != 0 &&
        line.size() > options_.max_request_bytes) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          "request frame exceeds max_request_bytes");
    }
    JsonLimits limits;
    limits.max_depth = options_.max_json_depth;
    limits.max_bytes = options_.max_request_bytes;
    JsonValue document;
    try {
      document = parse_json(line, limits);
    } catch (const ParseError& error) {
      // parse_error is reserved for design payloads; a frame that is not
      // JSON at all is a malformed request.
      throw ProtocolError(ErrorCode::kBadRequest,
                          std::string("frame is not valid JSON: ") +
                              error.what());
    }
    if (document.is_object()) {
      // Recover the id before schema validation so even a malformed frame
      // gets a correlatable error envelope.
      if (const JsonValue* v = document.find("id");
          v != nullptr && v->is_string()) {
        id = v->as_string();
      }
    }
    JobRequest request = parse_request(document);

    if (request.type == JobType::kStats || request.type == JobType::kHealth ||
        request.type == JobType::kShutdown) {
      // Control requests run inline on the reader thread: they must stay
      // answerable while every pool slot is busy or the queue is full.
      jobs_accepted_.fetch_add(1, std::memory_order_relaxed);
      // Counted done before the result is built so a stats snapshot sees
      // itself on both sides of the accepted == done + failed + inflight +
      // queued invariant.
      jobs_done_.fetch_add(1, std::memory_order_relaxed);
      const auto start = Clock::now();
      JsonValue result = request.type == JobType::kStats    ? stats_result()
                         : request.type == JobType::kHealth ? health_result()
                                                            : shutdown_result();
      JobStatsWire stats;
      stats.run_ms = ms_since(start);
      conn->write(render_response(request.id, request.type, "", result,
                                  stats));
      return;
    }

    if (shutting_down()) {
      throw ProtocolError(ErrorCode::kShuttingDown,
                          "server is draining; job rejected");
    }

    auto job = std::make_shared<Job>();
    job->request = std::move(request);
    job->conn = conn;
    job->admitted = Clock::now();
    const std::uint64_t span = job->request.deadline_ms != 0
                                   ? job->request.deadline_ms
                                   : options_.default_deadline_ms;
    if (span != 0) {
      job->deadline = job->admitted + std::chrono::milliseconds(span);
      job->deadline_span_ms = span;
    }

    // The outstanding count and accepted counter go up before the job is
    // visible to the queue pump: another pool thread may start *and
    // finish* a queued job the instant the admission lock drops, and
    // job_finished must never run before job_started.
    conn->job_started();
    jobs_accepted_.fetch_add(1, std::memory_order_relaxed);
    ScopeGuard admission([&] {
      jobs_accepted_.fetch_sub(1, std::memory_order_relaxed);
      conn->job_finished();
    });

    enum class Admit { kStart, kQueue, kShed };
    Admit admit = Admit::kShed;
    std::uint64_t retry = 0;
    {
      std::lock_guard<std::mutex> lk(admission_mutex_);
      // Armed fault injection trips the admission checkpoint as synthetic
      // overload: the job is shed exactly as if the queue were full.
      const bool injected = fault_inject::trip("serve.admit");
      if (!injected && running_ < max_inflight_) {
        ++running_;
        running_jobs_.push_back(job);
        admit = Admit::kStart;
      } else if (!injected && queue_.size() < admission_queue_) {
        queue_.push_back(job);
        admit = Admit::kQueue;
      } else {
        retry = retry_hint_locked();
      }
    }

    if (admit == Admit::kShed) {
      // Load shedding: reject immediately — never admitted, never run —
      // with a backoff hint instead of blocking the reader thread.
      jobs_shed_.fetch_add(1, std::memory_order_relaxed);
      jobs_rejected_.fetch_add(1, std::memory_order_relaxed);
      ErrorDetail detail;
      detail.retry_after_ms = retry;
      conn->write(render_error(job->request.id, ErrorCode::kOverloaded,
                               "admission queue full; retry after backoff",
                               detail));
      return;  // ~ScopeGuard unwinds the tentative admission
    }

    if (job->deadline) watchdog_cv_.notify_all();
    if (admit == Admit::kStart) {
      ScopeGuard slot([&] {
        {
          std::lock_guard<std::mutex> lk(admission_mutex_);
          running_jobs_.erase(std::find(running_jobs_.begin(),
                                        running_jobs_.end(), job));
          if (job->quarantined) {
            --quarantined_;
          } else {
            --running_;
          }
        }
        pump_queue();
      });
      submit_job(job);
      slot.dismiss();
    }
    admission.dismiss();
  } catch (const std::exception& error) {
    // Nothing past admission throws, so anything caught here was never
    // admitted: it counts as rejected, not accepted-then-failed.
    jobs_rejected_.fetch_add(1, std::memory_order_relaxed);
    conn->write(
        render_error(id, error_code_for_exception(error), error.what()));
  }
}

void Server::submit_job(const std::shared_ptr<Job>& job) {
  pool_.submit([this, job] {
    const auto started = Clock::now();
    const std::string response = run_job(*job);
    job->conn->write(response);
    finish_job(job, ms_since(started));
    job->conn->job_finished();
  });
}

void Server::collect_runnable_locked(
    std::vector<std::shared_ptr<Job>>* to_start,
    std::vector<std::shared_ptr<Job>>* to_expire) {
  const auto now = Clock::now();
  // Dead-on-arrival jobs must not consume a freed slot.
  for (auto it = queue_.begin(); it != queue_.end();) {
    if ((*it)->deadline && now > *(*it)->deadline) {
      to_expire->push_back(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  while (running_ < max_inflight_ && !queue_.empty()) {
    std::shared_ptr<Job> job = queue_.front();
    queue_.pop_front();
    ++running_;
    running_jobs_.push_back(job);
    to_start->push_back(job);
  }
}

void Server::process_runnable(
    const std::vector<std::shared_ptr<Job>>& to_start,
    const std::vector<std::shared_ptr<Job>>& to_expire) {
  for (const std::shared_ptr<Job>& job : to_expire) {
    jobs_expired_.fetch_add(1, std::memory_order_relaxed);
    jobs_failed_.fetch_add(1, std::memory_order_relaxed);
    ErrorDetail detail;
    detail.expired_in_queue = true;
    {
      std::lock_guard<std::mutex> lk(admission_mutex_);
      detail.retry_after_ms = retry_hint_locked();
    }
    job->conn->write(render_error(job->request.id, ErrorCode::kOverloaded,
                                  "deadline expired while the job was "
                                  "queued; it was not run",
                                  detail));
    job->conn->job_finished();
  }
  for (const std::shared_ptr<Job>& job : to_start) {
    try {
      submit_job(job);
    } catch (const std::exception& error) {
      // Admitted but failed to start: release the slot and answer with an
      // error envelope so the client is never left waiting.
      {
        std::lock_guard<std::mutex> lk(admission_mutex_);
        running_jobs_.erase(
            std::find(running_jobs_.begin(), running_jobs_.end(), job));
        if (job->quarantined) {
          --quarantined_;
        } else {
          --running_;
        }
      }
      jobs_failed_.fetch_add(1, std::memory_order_relaxed);
      job->conn->write(render_error(job->request.id,
                                    error_code_for_exception(error),
                                    error.what()));
      job->conn->job_finished();
      pump_queue();
    }
  }
}

void Server::pump_queue() {
  std::vector<std::shared_ptr<Job>> to_start;
  std::vector<std::shared_ptr<Job>> to_expire;
  {
    std::lock_guard<std::mutex> lk(admission_mutex_);
    collect_runnable_locked(&to_start, &to_expire);
  }
  // Outside the lock: on a size-1 pool submit_job runs the job inline,
  // which re-enters finish_job and the admission lock.
  process_runnable(to_start, to_expire);
}

void Server::finish_job(const std::shared_ptr<Job>& job, double run_ms) {
  std::vector<std::shared_ptr<Job>> to_start;
  std::vector<std::shared_ptr<Job>> to_expire;
  {
    std::lock_guard<std::mutex> lk(admission_mutex_);
    avg_run_ms_ = avg_run_ms_ == 0.0 ? run_ms
                                     : avg_run_ms_ * 0.8 + run_ms * 0.2;
    running_jobs_.erase(
        std::find(running_jobs_.begin(), running_jobs_.end(), job));
    if (job->quarantined) {
      // A wedged job finally yielded: its written-off slot is recovered
      // (running_ was already handed back when it was quarantined).
      --quarantined_;
    } else {
      --running_;
    }
    collect_runnable_locked(&to_start, &to_expire);
  }
  process_runnable(to_start, to_expire);
}

void Server::watchdog_main() {
  std::unique_lock<std::mutex> lk(admission_mutex_);
  while (!watchdog_stop_) {
    const auto now = Clock::now();
    auto next = Clock::time_point::max();
    bool slots_freed = false;
    for (const std::shared_ptr<Job>& job : running_jobs_) {
      if (!job->deadline || job->quarantined) continue;
      if (!job->kill_fired) {
        if (now >= *job->deadline ||
            fault_inject::trip("serve.watchdog.kill")) {
          // Deadline: fire the job's token; a cooperative backend yields
          // at its next checkpoint with an exhausted verdict.
          job->cancel.request_cancel();
          job->kill_fired = true;
          watchdog_kills_.fetch_add(1, std::memory_order_relaxed);
          const std::uint64_t span =
              std::max<std::uint64_t>(job->deadline_span_ms, 1);
          job->wedge_at = *job->deadline +
                          std::chrono::milliseconds(span * watchdog_grace_);
          next = std::min(next, job->wedge_at);
        } else {
          next = std::min(next, *job->deadline);
        }
      } else if (now >= job->wedge_at) {
        // The kill was ignored past the grace window: the job is wedged.
        // Write the slot off (quarantine) so usable capacity recovers
        // instead of shrinking forever; if the job ever yields,
        // finish_job reclaims the quarantined slot.
        job->quarantined = true;
        ++quarantined_;
        --running_;
        watchdog_wedged_.fetch_add(1, std::memory_order_relaxed);
        slots_freed = true;
      } else {
        next = std::min(next, job->wedge_at);
      }
    }
    bool queue_has_expired = false;
    for (const std::shared_ptr<Job>& job : queue_) {
      if (!job->deadline) continue;
      if (now > *job->deadline) {
        queue_has_expired = true;
      } else {
        next = std::min(next, *job->deadline);
      }
    }
    if (slots_freed || queue_has_expired) {
      std::vector<std::shared_ptr<Job>> to_start;
      std::vector<std::shared_ptr<Job>> to_expire;
      collect_runnable_locked(&to_start, &to_expire);
      lk.unlock();
      process_runnable(to_start, to_expire);
      lk.lock();
      continue;  // rescan: the world changed while unlocked
    }
    if (next == Clock::time_point::max()) {
      watchdog_cv_.wait(lk);
    } else {
      watchdog_cv_.wait_until(lk, next);
    }
  }
}

std::string Server::run_job(const Job& job) {
  JobStatsWire stats;
  stats.queue_ms = ms_since(job.admitted);
  const auto start = Clock::now();
  // Queue expiry, re-checked at the last moment before any work happens:
  // a job whose deadline passed while it waited is answered without
  // running — its client has already given up on it. An armed
  // fault-injection trip behaves as a synthetic expiry.
  if ((job.deadline && start > *job.deadline) ||
      fault_inject::trip("serve.start")) {
    jobs_expired_.fetch_add(1, std::memory_order_relaxed);
    jobs_failed_.fetch_add(1, std::memory_order_relaxed);
    ErrorDetail detail;
    detail.expired_in_queue = true;
    {
      std::lock_guard<std::mutex> lk(admission_mutex_);
      detail.retry_after_ms = retry_hint_locked();
    }
    return render_error(job.request.id, ErrorCode::kOverloaded,
                        "deadline expired while the job was queued; it was "
                        "not run",
                        detail);
  }
  try {
    JobEnv env;
    env.cancel = job.cancel;
    env.deadline = job.deadline;
    std::string design_id;
    JsonValue result = execute(job.request, env, &stats, &design_id);
    stats.run_ms = ms_since(start);
    jobs_done_.fetch_add(1, std::memory_order_relaxed);
    return render_response(job.request.id, job.request.type, design_id,
                           result, stats);
  } catch (const std::exception& error) {
    jobs_failed_.fetch_add(1, std::memory_order_relaxed);
    return render_error(job.request.id, error_code_for_exception(error),
                        error.what());
  } catch (...) {
    jobs_failed_.fetch_add(1, std::memory_order_relaxed);
    return render_error(job.request.id, ErrorCode::kInternal,
                        "unexpected non-standard exception");
  }
}

JsonValue Server::execute(const JobRequest& request, const JobEnv& env,
                          JobStatsWire* stats, std::string* design_id) {
  switch (request.type) {
    case JobType::kLint: return handle_lint(request, stats, design_id);
    case JobType::kValidate:
      return handle_validate(request, env, stats, design_id);
    case JobType::kFaultSim:
      return handle_faultsim(request, env, stats, design_id);
    case JobType::kClsEquivalence:
      return handle_cls_equivalence(request, env, stats, design_id);
    case JobType::kSimulate:
      return handle_simulate(request, env, stats, design_id);
    case JobType::kStats:
    case JobType::kHealth:
    case JobType::kShutdown: break;  // handled inline by dispatch()
  }
  throw InternalError("unreachable job type in execute()");
}

std::shared_ptr<const CachedDesign> Server::resolve_design(
    const std::optional<std::string>& text,
    const std::optional<std::string>& id, bool* cache_hit) {
  if (id) {
    auto entry = cache_.find(*id);
    if (!entry) {
      throw ProtocolError(ErrorCode::kDesignNotFound,
                          "design_id \"" + *id +
                              "\" is not (or no longer) cached; resend the "
                              "design inline");
    }
    *cache_hit = true;
    return entry;
  }
  return cache_.intern(*text, cache_hit);
}

ResourceLimits Server::limits_for(
    const JobRequest& request,
    const std::optional<std::chrono::steady_clock::time_point>& deadline)
    const {
  const BudgetSpec spec = request.budget.value_or(BudgetSpec{});
  ResourceLimits limits;
  limits.time_budget_ms =
      spec.time_ms != 0 ? spec.time_ms : options_.default_time_budget_ms;
  if (spec.node_limit != 0) limits.bdd_node_limit = spec.node_limit;
  limits.step_quota = spec.step_quota;
  if (deadline) {
    // Deadline propagation: queue wait already spent part of the client's
    // latency bound, so the handler's wall-clock budget is only what is
    // left until the absolute deadline.
    const double remaining_ms =
        std::chrono::duration<double, std::milli>(*deadline - Clock::now())
            .count();
    const auto remaining =
        static_cast<std::uint64_t>(std::max(remaining_ms, 1.0));
    if (limits.time_budget_ms == 0 || limits.time_budget_ms > remaining) {
      limits.time_budget_ms = remaining;
    }
  }
  return limits;
}

JsonValue Server::handle_lint(const JobRequest& request, JobStatsWire* stats,
                              std::string* design_id) {
  check_option_keys(request.options, {"require_junction_normal",
                                      "warn_unreachable", "max_k",
                                      "semantic"});
  const auto entry = resolve_design(request.design_text, request.design_id,
                                    &stats->cache_hit);
  *design_id = entry->design_id();

  LintOptions options;
  options.require_junction_normal =
      option_bool(request.options, "require_junction_normal").value_or(false);
  options.warn_unreachable =
      option_bool(request.options, "warn_unreachable").value_or(true);
  options.semantic =
      option_bool(request.options, "semantic").value_or(true);
  if (const auto k = option_uint(request.options, "max_k")) {
    options.max_k = static_cast<std::size_t>(*k);
  }
  const LintResult result = run_lint(entry->netlist(), options);

  JsonValue::Object out;
  out.emplace_back("clean", JsonValue(result.clean()));
  out.emplace_back("errors", uint_json(result.diagnostics.num_errors()));
  out.emplace_back("warnings", uint_json(result.diagnostics.num_warnings()));
  out.emplace_back("notes", uint_json(result.diagnostics.num_notes()));
  JsonValue::Array diagnostics;
  for (const Diagnostic& d : result.diagnostics.diagnostics()) {
    JsonValue::Object diag;
    diag.emplace_back("code", JsonValue(to_string(d.code)));
    diag.emplace_back("severity",
                      JsonValue(std::string(to_string(d.severity))));
    if (!d.node_name.empty()) {
      diag.emplace_back("node", JsonValue(d.node_name));
    }
    diag.emplace_back("message", JsonValue(d.message));
    diagnostics.emplace_back(std::move(diag));
  }
  out.emplace_back("diagnostics", JsonValue(std::move(diagnostics)));
  if (result.dataflow_stats) {
    const DataflowStats& s = *result.dataflow_stats;
    JsonValue::Object dataflow;
    dataflow.emplace_back("ports", uint_json(s.num_ports));
    dataflow.emplace_back("iterations", uint_json(s.iterations));
    dataflow.emplace_back("updates", uint_json(s.updates));
    dataflow.emplace_back("table_fallbacks", uint_json(s.table_fallbacks));
    out.emplace_back("dataflow", JsonValue(std::move(dataflow)));
  }
  return JsonValue(std::move(out));
}

JsonValue Server::handle_validate(const JobRequest& request,
                                  const JobEnv& env, JobStatsWire* stats,
                                  std::string* design_id) {
  check_option_keys(request.options,
                    {"objective", "max_branching", "random_sequences",
                     "random_length", "seed"});
  const auto entry = resolve_design(request.design_text, request.design_id,
                                    &stats->cache_hit);
  *design_id = entry->design_id();

  const std::string objective =
      option_string(request.options, "objective").value_or("min-area");
  if (objective != "min-area" && objective != "min-period") {
    bad_option("option \"objective\" must be \"min-area\" or \"min-period\"");
  }

  ValidationOptions options;
  if (const auto v = option_uint(request.options, "max_branching")) {
    options.verify.explicit_opts.max_branching = *v;
  }
  if (const auto v = option_uint(request.options, "random_sequences")) {
    options.verify.explicit_opts.random_sequences = static_cast<unsigned>(*v);
  }
  if (const auto v = option_uint(request.options, "random_length")) {
    options.verify.explicit_opts.random_length = static_cast<unsigned>(*v);
  }
  if (const auto v = option_uint(request.options, "seed")) {
    options.verify.explicit_opts.seed = *v;
  }
  options.budget = limits_for(request, env.deadline);
  // Per-job isolation: the job's own token (never shared across jobs), so
  // one cancelled/exhausted job cannot leak into a neighbour — and the
  // watchdog can cancel exactly this job at its deadline.
  options.cancel = env.cancel;

  const RetimeGraph& graph = entry->graph();
  const std::vector<int> lag = objective == "min-period"
                                   ? min_period_retime_feas(graph).lag
                                   : min_area_retime(graph).lag;
  const RetimingValidation v =
      validate_retiming(entry->netlist(), graph, lag, options);

  stats->verdict = to_string(v.verdict);
  stats->usage = v.usage;
  stats->governed = true;

  JsonValue::Object out;
  out.emplace_back("objective", JsonValue(objective));
  out.emplace_back("theorems_hold", JsonValue(v.theorems_hold));
  out.emplace_back("cls_equivalent", JsonValue(v.cls.equivalent));
  out.emplace_back("cls_exhaustive", JsonValue(v.cls.exhaustive));
  out.emplace_back("stg_checked", JsonValue(v.stg_checked));
  out.emplace_back("safe_replacement", JsonValue(v.safe_replacement));
  out.emplace_back("min_delay_implication",
                   JsonValue(static_cast<double>(v.min_delay_implication)));
  return JsonValue(std::move(out));
}

JsonValue Server::handle_faultsim(const JobRequest& request,
                                  const JobEnv& env, JobStatsWire* stats,
                                  std::string* design_id) {
  check_option_keys(request.options,
                    {"mode", "tests", "cycles", "seed", "inputs",
                     "all_faults", "drop_detected", "sample_lanes"});
  const auto entry = resolve_design(request.design_text, request.design_id,
                                    &stats->cache_hit);
  *design_id = entry->design_id();
  const Netlist& netlist = entry->netlist();

  FaultSimOptions options;
  options.mode = FaultSimMode::kCls;
  if (const auto name = option_string(request.options, "mode")) {
    const auto mode = fault_sim_mode_from_string(*name);
    if (!mode) bad_option("option \"mode\" must be exact, sampled or cls");
    options.mode = *mode;
  }
  // One engine thread per job: concurrency comes from concurrent jobs, and
  // a single job cannot occupy the whole pool.
  options.threads = 1;
  options.drop_detected =
      option_bool(request.options, "drop_detected").value_or(true);
  if (const auto v = option_uint(request.options, "sample_lanes")) {
    options.sample_lanes = static_cast<unsigned>(*v);
  }
  const std::uint64_t seed =
      option_uint(request.options, "seed").value_or(1);
  options.sample_seed = seed;
  options.budget = limits_for(request, env.deadline);
  options.cancel = env.cancel;

  std::vector<BitsSeq> tests;
  if (const auto inputs = option_string(request.options, "inputs")) {
    for (const std::string& part : split_sequences(*inputs)) {
      tests.push_back(bits_seq_from_string(part));
    }
  } else {
    const unsigned count = static_cast<unsigned>(
        option_uint(request.options, "tests").value_or(64));
    const unsigned cycles = static_cast<unsigned>(
        option_uint(request.options, "cycles").value_or(16));
    const std::size_t width = netlist.primary_inputs().size();
    Rng rng(seed);
    tests.resize(count);
    for (BitsSeq& seq : tests) {
      for (unsigned t = 0; t < cycles; ++t) {
        Bits in(width);
        for (auto& v : in) v = rng.coin();
        seq.push_back(std::move(in));
      }
    }
  }

  const bool all_faults =
      option_bool(request.options, "all_faults").value_or(false);
  const std::vector<Fault> faults =
      all_faults ? enumerate_faults(netlist) : collapse_faults(netlist);
  const FaultSimResult r = fault_simulate(netlist, faults, tests, options);

  stats->verdict = r.complete ? "bounded" : "exhausted";
  stats->usage = r.usage;
  stats->governed = true;

  JsonValue::Object out;
  out.emplace_back("mode", JsonValue(std::string(to_string(options.mode))));
  out.emplace_back("faults", uint_json(faults.size()));
  out.emplace_back("tests", uint_json(tests.size()));
  out.emplace_back("detected", uint_json(r.num_detected));
  out.emplace_back("coverage", JsonValue(r.coverage));
  out.emplace_back("complete", JsonValue(r.complete));
  out.emplace_back("faults_skipped", uint_json(r.faults_skipped));
  out.emplace_back("faults_dropped", uint_json(r.faults_dropped));
  out.emplace_back("tests_run", uint_json(r.tests_run));
  return JsonValue(std::move(out));
}

JsonValue Server::handle_cls_equivalence(const JobRequest& request,
                                         const JobEnv& env,
                                         JobStatsWire* stats,
                                         std::string* design_id) {
  check_option_keys(request.options,
                    {"backend", "max_branching", "max_pairs",
                     "random_sequences", "random_length", "seed", "bdd_gc",
                     "bdd_reorder"});
  const auto a = resolve_design(request.design_text, request.design_id,
                                &stats->cache_hit);
  *design_id = a->design_id();
  bool b_hit = false;
  const auto b =
      resolve_design(request.design_b_text, request.design_b_id, &b_hit);
  // cache_hit reports the warm path only when *both* designs skipped their
  // parse — a half-warm job still paid a parse.
  stats->cache_hit = stats->cache_hit && b_hit;

  VerifyOptions options;
  if (const auto name = option_string(request.options, "backend")) {
    const auto backend = equivalence_backend_from_string(*name);
    if (!backend) {
      bad_option("option \"backend\" must be \"explicit\", \"bdd\", "
                 "\"sat\", \"portfolio\" or \"static\"");
    }
    options.backend = *backend;
  }
  if (const auto v = option_uint(request.options, "max_branching")) {
    options.explicit_opts.max_branching = *v;
  }
  if (const auto v = option_uint(request.options, "max_pairs")) {
    options.explicit_opts.max_pairs = static_cast<std::size_t>(*v);
  }
  if (const auto v = option_uint(request.options, "random_sequences")) {
    options.explicit_opts.random_sequences = static_cast<unsigned>(*v);
  }
  if (const auto v = option_uint(request.options, "random_length")) {
    options.explicit_opts.random_length = static_cast<unsigned>(*v);
  }
  if (const auto v = option_uint(request.options, "seed")) {
    options.explicit_opts.seed = *v;
  }
  if (const auto v = option_bool(request.options, "bdd_gc")) {
    options.bdd.gc = *v;
  }
  if (const auto mode = option_string(request.options, "bdd_reorder")) {
    if (*mode == "pressure") {
      options.bdd.reorder.mode = ReorderMode::kOnPressure;
    } else if (*mode != "off") {
      bad_option("option \"bdd_reorder\" must be \"off\" or \"pressure\"");
    }
  }

  ResourceBudget budget = ResourceBudget::with_deadline(
      limits_for(request, env.deadline), env.cancel, env.deadline);
  const ClsEquivalenceResult r =
      verify_cls_equivalence(a->netlist(), b->netlist(), options, &budget);

  stats->verdict = to_string(r.verdict);
  stats->usage = r.usage;
  stats->governed = true;

  JsonValue::Object out;
  out.emplace_back("design_b_id", JsonValue(b->design_id()));
  out.emplace_back("equivalent", JsonValue(r.equivalent));
  out.emplace_back("exhaustive", JsonValue(r.exhaustive));
  out.emplace_back("pairs_explored", uint_json(r.pairs_explored));
  out.emplace_back("decided_by", JsonValue(std::string(to_string(r.decided_by))));
  out.emplace_back("decided_reason", JsonValue(r.decided_reason));
  out.emplace_back("counterexample",
                   r.counterexample
                       ? JsonValue(sequence_to_string(*r.counterexample))
                       : JsonValue(nullptr));
  return JsonValue(std::move(out));
}

JsonValue Server::handle_simulate(const JobRequest& request,
                                  const JobEnv& env, JobStatsWire* stats,
                                  std::string* design_id) {
  if (options_.chaos_hooks) {
    check_option_keys(request.options,
                      {"inputs", "mode", "state", "chaos_spin_ms",
                       "chaos_spin_cooperative_ms"});
  } else {
    check_option_keys(request.options, {"inputs", "mode", "state"});
  }
  const auto entry = resolve_design(request.design_text, request.design_id,
                                    &stats->cache_hit);
  *design_id = entry->design_id();
  const Netlist& netlist = entry->netlist();

  if (options_.chaos_hooks) {
    // Deterministic occupancy handlers for the overload tests and bench:
    // chaos_spin_ms holds a slot while *ignoring* cancellation (a wedged
    // backend); chaos_spin_cooperative_ms polls its token like a
    // well-behaved one.
    const auto spin = option_uint(request.options, "chaos_spin_ms");
    const auto coop =
        option_uint(request.options, "chaos_spin_cooperative_ms");
    if (spin && coop) {
      bad_option("chaos_spin_ms and chaos_spin_cooperative_ms are "
                 "mutually exclusive");
    }
    if (spin || coop) {
      const auto start = Clock::now();
      const auto until =
          start + std::chrono::milliseconds(spin ? *spin : *coop);
      bool cancelled = false;
      while (Clock::now() < until) {
        if (coop && env.cancel.cancelled()) {
          cancelled = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      JsonValue::Object out;
      out.emplace_back("mode", JsonValue(std::string("chaos")));
      out.emplace_back("spun_ms", JsonValue(ms_since(start)));
      out.emplace_back("cancelled", JsonValue(cancelled));
      return JsonValue(std::move(out));
    }
  }

  const auto inputs = option_string(request.options, "inputs");
  if (!inputs || inputs->empty()) {
    bad_option("simulate needs options.inputs "
               "(comma-separated '.'-delimited sequences)");
  }
  const std::string mode =
      option_string(request.options, "mode").value_or("cls");
  if (mode != "cls" && mode != "binary") {
    bad_option("option \"mode\" must be \"cls\" or \"binary\"");
  }

  JsonValue::Array responses;
  if (mode == "cls") {
    if (option_string(request.options, "state")) {
      bad_option("option \"state\" is only valid in binary mode "
                 "(CLS always powers up all-X)");
    }
    for (const std::string& part : split_sequences(*inputs)) {
      ClsSimulator sim(netlist);  // fresh all-X power-up per sequence
      responses.emplace_back(
          sequence_to_string(sim.run(trits_seq_from_string(part))));
    }
  } else {
    Bits state(netlist.latches().size(), 0);
    if (const auto s = option_string(request.options, "state")) {
      state = bits_from_string(*s);
    }
    for (const std::string& part : split_sequences(*inputs)) {
      BinarySimulator sim(netlist);
      sim.set_state(state);
      responses.emplace_back(
          sequence_to_string(sim.run(bits_seq_from_string(part))));
    }
  }

  JsonValue::Object out;
  out.emplace_back("mode", JsonValue(mode));
  out.emplace_back("responses", JsonValue(std::move(responses)));
  return JsonValue(std::move(out));
}

JsonValue Server::stats_result() const {
  const ServeStats s = stats();
  JsonValue::Object out;
  out.emplace_back("jobs_accepted", uint_json(s.jobs_accepted));
  out.emplace_back("jobs_done", uint_json(s.jobs_done));
  out.emplace_back("jobs_failed", uint_json(s.jobs_failed));
  out.emplace_back("jobs_rejected", uint_json(s.jobs_rejected));
  out.emplace_back("jobs_shed", uint_json(s.jobs_shed));
  out.emplace_back("jobs_expired", uint_json(s.jobs_expired));
  out.emplace_back("watchdog_kills", uint_json(s.watchdog_kills));
  out.emplace_back("watchdog_wedged", uint_json(s.watchdog_wedged));
  out.emplace_back("write_timeouts", uint_json(s.write_timeouts));
  out.emplace_back("inflight", uint_json(s.inflight));
  out.emplace_back("queued", uint_json(s.queued));
  out.emplace_back("quarantined", uint_json(s.quarantined));
  out.emplace_back("max_inflight", uint_json(s.max_inflight));
  out.emplace_back("admission_queue", uint_json(s.admission_queue));
  out.emplace_back("threads", uint_json(s.threads));
  out.emplace_back("shutting_down", JsonValue(s.shutting_down));
  JsonValue::Object cache;
  cache.emplace_back("hits", uint_json(s.cache.hits));
  cache.emplace_back("misses", uint_json(s.cache.misses));
  cache.emplace_back("evictions", uint_json(s.cache.evictions));
  cache.emplace_back("entries", uint_json(s.cache.entries));
  cache.emplace_back("bytes", uint_json(s.cache.bytes));
  cache.emplace_back("byte_cap", uint_json(s.cache.byte_cap));
  out.emplace_back("cache", JsonValue(std::move(cache)));
  return JsonValue(std::move(out));
}

JsonValue Server::health_result() const {
  // Answered inline on the reader thread — one cheap snapshot, no pool
  // slot, so liveness probes work even when the server is saturated.
  unsigned running = 0;
  unsigned queued = 0;
  unsigned quarantined = 0;
  bool full = false;
  {
    std::lock_guard<std::mutex> lk(admission_mutex_);
    running = running_;
    queued = static_cast<unsigned>(queue_.size());
    quarantined = quarantined_;
    full = running_ >= max_inflight_ && queue_.size() >= admission_queue_;
  }
  const char* status =
      shutting_down() ? "draining" : (full ? "overloaded" : "ok");
  JsonValue::Object out;
  out.emplace_back("status", JsonValue(std::string(status)));
  out.emplace_back("inflight", uint_json(running));
  out.emplace_back("queued", uint_json(queued));
  out.emplace_back("quarantined", uint_json(quarantined));
  out.emplace_back("max_inflight", uint_json(max_inflight_));
  out.emplace_back("admission_queue", uint_json(admission_queue_));
  return JsonValue(std::move(out));
}

JsonValue Server::shutdown_result() {
  begin_shutdown();
  unsigned inflight;
  {
    std::lock_guard<std::mutex> lk(admission_mutex_);
    inflight = running_ + static_cast<unsigned>(queue_.size());
  }
  JsonValue::Object out;
  out.emplace_back("draining", JsonValue(true));
  out.emplace_back("inflight", uint_json(inflight));
  return JsonValue(std::move(out));
}

ServeStats Server::stats() const {
  ServeStats s;
  s.jobs_accepted = jobs_accepted_.load(std::memory_order_relaxed);
  s.jobs_done = jobs_done_.load(std::memory_order_relaxed);
  s.jobs_failed = jobs_failed_.load(std::memory_order_relaxed);
  s.jobs_rejected = jobs_rejected_.load(std::memory_order_relaxed);
  s.jobs_shed = jobs_shed_.load(std::memory_order_relaxed);
  s.jobs_expired = jobs_expired_.load(std::memory_order_relaxed);
  s.watchdog_kills = watchdog_kills_.load(std::memory_order_relaxed);
  s.watchdog_wedged = watchdog_wedged_.load(std::memory_order_relaxed);
  s.write_timeouts = write_timeouts_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(admission_mutex_);
    s.inflight = running_;
    s.queued = static_cast<unsigned>(queue_.size());
    s.quarantined = quarantined_;
  }
  s.max_inflight = max_inflight_;
  s.admission_queue = admission_queue_;
  s.threads = pool_.size();
  s.shutting_down = shutting_down();
  s.cache = cache_.stats();
  return s;
}

void Server::begin_shutdown() {
  if (shutting_down_.exchange(true, std::memory_order_acq_rel)) return;
  // Interrupt the accept loop and every blocked connection read; readers
  // observe EOF, stop dispatching, and drain their in-flight jobs.
  std::lock_guard<std::mutex> lk(fds_mutex_);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
}

std::string Server::handle_line(const std::string& line) {
  auto conn = std::make_shared<Connection>();
  std::string response;
  conn->sink = [&response](const std::string& frame) { response = frame; };
  dispatch(line, conn);
  conn->wait_drained();  // synchronizes the pool thread's write
  return response;
}

void Server::serve_stream(std::istream& in, std::ostream& out) {
  auto conn = std::make_shared<Connection>();
  conn->sink = [&out](const std::string& frame) {
    out << frame << '\n';
    out.flush();
  };
  std::string line;
  while (!shutting_down() && std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    dispatch(line, conn);
  }
  conn->wait_drained();
}

void Server::serve_fd(int fd) {
  auto conn = std::make_shared<Connection>();
  // Once one frame times out the connection is written off: later frames
  // are dropped immediately instead of each burning a fresh timeout.
  auto write_dead = std::make_shared<std::atomic<bool>>(false);
  conn->sink = [this, fd, write_dead](const std::string& frame) {
    if (write_dead->load(std::memory_order_relaxed)) return;
    std::string out = frame;
    out.push_back('\n');
    const std::optional<Clock::time_point> give_up =
        options_.write_timeout_ms != 0
            ? std::optional<Clock::time_point>(
                  Clock::now() +
                  std::chrono::milliseconds(options_.write_timeout_ms))
            : std::nullopt;
    std::size_t off = 0;
    while (off < out.size()) {
      // MSG_NOSIGNAL: a client that hung up must cost us an error return,
      // not a process-wide SIGPIPE. MSG_DONTWAIT keeps the pool thread
      // off a blocking send so the write deadline below is enforceable
      // even against a reader that never drains its socket.
      const ssize_t n = ::send(fd, out.data() + off, out.size() - off,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        int wait_ms = -1;
        if (give_up) {
          const double remaining =
              std::chrono::duration<double, std::milli>(*give_up -
                                                        Clock::now())
                  .count();
          if (remaining <= 0) {
            // Slow-reader backpressure turned into a stall: sever the
            // connection instead of wedging this pool thread. The reader
            // loop observes EOF and drains normally.
            write_dead->store(true, std::memory_order_relaxed);
            write_timeouts_.fetch_add(1, std::memory_order_relaxed);
            ::shutdown(fd, SHUT_RDWR);
            return;
          }
          wait_ms = static_cast<int>(std::min(remaining, 1000.0)) + 1;
        }
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLOUT;
        ::poll(&pfd, 1, wait_ms);
        continue;
      }
      return;  // client gone; drop the rest of the frame
    }
  };

  std::string buffer;
  char chunk[4096];
  while (!shutting_down()) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, error, or shutdown(SHUT_RD)
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      dispatch(line, conn);
      if (shutting_down()) break;
    }
    if (options_.max_request_bytes != 0 &&
        buffer.size() > options_.max_request_bytes) {
      conn->write(render_error("", ErrorCode::kBadRequest,
                               "unterminated frame exceeds "
                               "max_request_bytes"));
      break;
    }
  }
  conn->wait_drained();
}

void Server::serve_socket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw InvalidArgument("socket path empty or too long: \"" + path + "\"");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw IoError(std::string("socket(): ") + std::strerror(errno));
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw IoError("bind/listen on \"" + path + "\": " + why);
  }
  {
    std::lock_guard<std::mutex> lk(fds_mutex_);
    listen_fd_ = fd;
  }

  std::vector<std::thread> readers;
  for (;;) {
    const int cfd = ::accept(fd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (graceful) or fatal accept error
    }
    if (shutting_down()) {
      ::close(cfd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(fds_mutex_);
      conn_fds_.push_back(cfd);
    }
    readers.emplace_back([this, cfd] {
      serve_fd(cfd);
      {
        std::lock_guard<std::mutex> lk(fds_mutex_);
        conn_fds_.erase(
            std::find(conn_fds_.begin(), conn_fds_.end(), cfd));
      }
      ::close(cfd);
    });
  }

  for (std::thread& t : readers) t.join();
  {
    std::lock_guard<std::mutex> lk(fds_mutex_);
    listen_fd_ = -1;
  }
  ::close(fd);
  ::unlink(path.c_str());
}

}  // namespace rtv::serve
