#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <istream>
#include <ostream>
#include <thread>

#include "analysis/lint.hpp"
#include "core/cls_equiv.hpp"
#include "core/validator.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "retime/min_area.hpp"
#include "retime/min_period.hpp"
#include "sim/binary_sim.hpp"
#include "sim/cls_sim.hpp"
#include "sim/vectors.hpp"
#include "util/rng.hpp"

namespace rtv::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

[[noreturn]] void bad_option(const std::string& what) {
  throw ProtocolError(ErrorCode::kBadRequest, what);
}

/// Rejects option keys a job type does not understand — a typo'd option
/// silently ignored would look like a job that ran with it.
void check_option_keys(const JsonValue& options,
                       std::initializer_list<const char*> allowed) {
  if (!options.is_object()) return;  // absent options arrive as JSON null
  for (const auto& [key, value] : options.as_object()) {
    (void)value;
    bool known = false;
    for (const char* k : allowed) known |= key == k;
    if (!known) bad_option("unknown option \"" + key + "\"");
  }
}

std::optional<std::uint64_t> option_uint(const JsonValue& options,
                                         const char* key) {
  if (!options.is_object()) return std::nullopt;
  const JsonValue* v = options.find(key);
  if (v == nullptr || v->is_null()) return std::nullopt;
  if (!v->is_number() || v->as_number() < 0 ||
      v->as_number() != static_cast<double>(
                            static_cast<std::uint64_t>(v->as_number()))) {
    bad_option(std::string("option \"") + key +
               "\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v->as_number());
}

std::optional<std::string> option_string(const JsonValue& options,
                                         const char* key) {
  if (!options.is_object()) return std::nullopt;
  const JsonValue* v = options.find(key);
  if (v == nullptr || v->is_null()) return std::nullopt;
  if (!v->is_string()) {
    bad_option(std::string("option \"") + key + "\" must be a string");
  }
  return v->as_string();
}

std::optional<bool> option_bool(const JsonValue& options, const char* key) {
  if (!options.is_object()) return std::nullopt;
  const JsonValue* v = options.find(key);
  if (v == nullptr || v->is_null()) return std::nullopt;
  if (!v->is_bool()) {
    bad_option(std::string("option \"") + key + "\" must be a boolean");
  }
  return v->as_bool();
}

std::vector<std::string> split_sequences(const std::string& list) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t end = list.find(',', begin);
    if (end == std::string::npos) {
      parts.push_back(list.substr(begin));
      break;
    }
    parts.push_back(list.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

JsonValue uint_json(std::uint64_t v) {
  return JsonValue(static_cast<double>(v));
}

}  // namespace

/// Serializes writes of one connection and lets its reader wait for every
/// submitted job's response before the output channel is torn down.
struct Server::Connection {
  std::function<void(const std::string&)> sink;  ///< raw frame writer

  void write(const std::string& frame) {
    std::lock_guard<std::mutex> lk(write_mutex);
    sink(frame);
  }
  void job_started() {
    std::lock_guard<std::mutex> lk(drain_mutex);
    ++outstanding;
  }
  void job_finished() {
    std::lock_guard<std::mutex> lk(drain_mutex);
    --outstanding;
    if (outstanding == 0) drain_cv.notify_all();
  }
  void wait_drained() {
    std::unique_lock<std::mutex> lk(drain_mutex);
    drain_cv.wait(lk, [&] { return outstanding == 0; });
  }

 private:
  std::mutex write_mutex;
  std::mutex drain_mutex;
  std::condition_variable drain_cv;
  unsigned outstanding = 0;
};

Server::Server(const ServeOptions& options)
    : options_(options),
      pool_(options.threads),
      cache_(options.cache_bytes),
      max_inflight_(options.max_inflight != 0 ? options.max_inflight
                                              : pool_.size()) {}

Server::~Server() {
  // Jobs still queued in the pool hold no Server state beyond what their
  // lambdas captured by shared_ptr; the pool's destructor drops queued
  // tasks and joins running ones before members are destroyed.
}

void Server::acquire_slot() {
  std::unique_lock<std::mutex> lk(inflight_mutex_);
  inflight_cv_.wait(lk, [&] { return inflight_ < max_inflight_; });
  ++inflight_;
}

void Server::release_slot() {
  std::lock_guard<std::mutex> lk(inflight_mutex_);
  --inflight_;
  inflight_cv_.notify_all();
}

void Server::dispatch(const std::string& line,
                      const std::shared_ptr<Connection>& conn) {
  std::string id;
  try {
    if (options_.max_request_bytes != 0 &&
        line.size() > options_.max_request_bytes) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          "request frame exceeds max_request_bytes");
    }
    JsonLimits limits;
    limits.max_depth = options_.max_json_depth;
    limits.max_bytes = options_.max_request_bytes;
    JsonValue document;
    try {
      document = parse_json(line, limits);
    } catch (const ParseError& error) {
      // parse_error is reserved for design payloads; a frame that is not
      // JSON at all is a malformed request.
      throw ProtocolError(ErrorCode::kBadRequest,
                          std::string("frame is not valid JSON: ") +
                              error.what());
    }
    if (document.is_object()) {
      // Recover the id before schema validation so even a malformed frame
      // gets a correlatable error envelope.
      if (const JsonValue* v = document.find("id");
          v != nullptr && v->is_string()) {
        id = v->as_string();
      }
    }
    JobRequest request = parse_request(document);

    if (request.type == JobType::kStats ||
        request.type == JobType::kShutdown) {
      // Control requests run inline on the reader thread: they must stay
      // answerable while every pool slot is busy.
      jobs_accepted_.fetch_add(1, std::memory_order_relaxed);
      const auto start = Clock::now();
      JsonValue result = request.type == JobType::kStats ? stats_result()
                                                         : shutdown_result();
      JobStatsWire stats;
      stats.run_ms = ms_since(start);
      jobs_done_.fetch_add(1, std::memory_order_relaxed);
      conn->write(render_response(request.id, request.type, "", result,
                                  stats));
      return;
    }

    if (shutting_down()) {
      throw ProtocolError(ErrorCode::kShuttingDown,
                          "server is draining; job rejected");
    }

    jobs_accepted_.fetch_add(1, std::memory_order_relaxed);
    acquire_slot();
    conn->job_started();
    auto shared = std::make_shared<JobRequest>(std::move(request));
    const auto enqueued = Clock::now();
    pool_.submit([this, shared, conn, enqueued] {
      const std::string response = run_job(*shared, ms_since(enqueued));
      conn->write(response);
      release_slot();
      conn->job_finished();
    });
  } catch (const std::exception& error) {
    jobs_failed_.fetch_add(1, std::memory_order_relaxed);
    conn->write(
        render_error(id, error_code_for_exception(error), error.what()));
  }
}

std::string Server::run_job(const JobRequest& request, double queue_ms) {
  JobStatsWire stats;
  stats.queue_ms = queue_ms;
  const auto start = Clock::now();
  try {
    std::string design_id;
    JsonValue result = execute(request, &stats, &design_id);
    stats.run_ms = ms_since(start);
    jobs_done_.fetch_add(1, std::memory_order_relaxed);
    return render_response(request.id, request.type, design_id, result,
                           stats);
  } catch (const std::exception& error) {
    jobs_failed_.fetch_add(1, std::memory_order_relaxed);
    return render_error(request.id, error_code_for_exception(error),
                        error.what());
  } catch (...) {
    jobs_failed_.fetch_add(1, std::memory_order_relaxed);
    return render_error(request.id, ErrorCode::kInternal,
                        "unexpected non-standard exception");
  }
}

JsonValue Server::execute(const JobRequest& request, JobStatsWire* stats,
                          std::string* design_id) {
  switch (request.type) {
    case JobType::kLint: return handle_lint(request, stats, design_id);
    case JobType::kValidate:
      return handle_validate(request, stats, design_id);
    case JobType::kFaultSim:
      return handle_faultsim(request, stats, design_id);
    case JobType::kClsEquivalence:
      return handle_cls_equivalence(request, stats, design_id);
    case JobType::kSimulate:
      return handle_simulate(request, stats, design_id);
    case JobType::kStats:
    case JobType::kShutdown: break;  // handled inline by dispatch()
  }
  throw InternalError("unreachable job type in execute()");
}

std::shared_ptr<const CachedDesign> Server::resolve_design(
    const std::optional<std::string>& text,
    const std::optional<std::string>& id, bool* cache_hit) {
  if (id) {
    auto entry = cache_.find(*id);
    if (!entry) {
      throw ProtocolError(ErrorCode::kDesignNotFound,
                          "design_id \"" + *id +
                              "\" is not (or no longer) cached; resend the "
                              "design inline");
    }
    *cache_hit = true;
    return entry;
  }
  return cache_.intern(*text, cache_hit);
}

ResourceLimits Server::limits_for(const JobRequest& request) const {
  const BudgetSpec spec = request.budget.value_or(BudgetSpec{});
  ResourceLimits limits;
  limits.time_budget_ms =
      spec.time_ms != 0 ? spec.time_ms : options_.default_time_budget_ms;
  if (spec.node_limit != 0) limits.bdd_node_limit = spec.node_limit;
  limits.step_quota = spec.step_quota;
  return limits;
}

JsonValue Server::handle_lint(const JobRequest& request, JobStatsWire* stats,
                              std::string* design_id) {
  check_option_keys(request.options, {"require_junction_normal",
                                      "warn_unreachable", "max_k",
                                      "semantic"});
  const auto entry = resolve_design(request.design_text, request.design_id,
                                    &stats->cache_hit);
  *design_id = entry->design_id();

  LintOptions options;
  options.require_junction_normal =
      option_bool(request.options, "require_junction_normal").value_or(false);
  options.warn_unreachable =
      option_bool(request.options, "warn_unreachable").value_or(true);
  options.semantic =
      option_bool(request.options, "semantic").value_or(true);
  if (const auto k = option_uint(request.options, "max_k")) {
    options.max_k = static_cast<std::size_t>(*k);
  }
  const LintResult result = run_lint(entry->netlist(), options);

  JsonValue::Object out;
  out.emplace_back("clean", JsonValue(result.clean()));
  out.emplace_back("errors", uint_json(result.diagnostics.num_errors()));
  out.emplace_back("warnings", uint_json(result.diagnostics.num_warnings()));
  out.emplace_back("notes", uint_json(result.diagnostics.num_notes()));
  JsonValue::Array diagnostics;
  for (const Diagnostic& d : result.diagnostics.diagnostics()) {
    JsonValue::Object diag;
    diag.emplace_back("code", JsonValue(to_string(d.code)));
    diag.emplace_back("severity",
                      JsonValue(std::string(to_string(d.severity))));
    if (!d.node_name.empty()) {
      diag.emplace_back("node", JsonValue(d.node_name));
    }
    diag.emplace_back("message", JsonValue(d.message));
    diagnostics.emplace_back(std::move(diag));
  }
  out.emplace_back("diagnostics", JsonValue(std::move(diagnostics)));
  if (result.dataflow_stats) {
    const DataflowStats& s = *result.dataflow_stats;
    JsonValue::Object dataflow;
    dataflow.emplace_back("ports", uint_json(s.num_ports));
    dataflow.emplace_back("iterations", uint_json(s.iterations));
    dataflow.emplace_back("updates", uint_json(s.updates));
    dataflow.emplace_back("table_fallbacks", uint_json(s.table_fallbacks));
    out.emplace_back("dataflow", JsonValue(std::move(dataflow)));
  }
  return JsonValue(std::move(out));
}

JsonValue Server::handle_validate(const JobRequest& request,
                                  JobStatsWire* stats,
                                  std::string* design_id) {
  check_option_keys(request.options,
                    {"objective", "max_branching", "random_sequences",
                     "random_length", "seed"});
  const auto entry = resolve_design(request.design_text, request.design_id,
                                    &stats->cache_hit);
  *design_id = entry->design_id();

  const std::string objective =
      option_string(request.options, "objective").value_or("min-area");
  if (objective != "min-area" && objective != "min-period") {
    bad_option("option \"objective\" must be \"min-area\" or \"min-period\"");
  }

  ValidationOptions options;
  if (const auto v = option_uint(request.options, "max_branching")) {
    options.verify.explicit_opts.max_branching = *v;
  }
  if (const auto v = option_uint(request.options, "random_sequences")) {
    options.verify.explicit_opts.random_sequences = static_cast<unsigned>(*v);
  }
  if (const auto v = option_uint(request.options, "random_length")) {
    options.verify.explicit_opts.random_length = static_cast<unsigned>(*v);
  }
  if (const auto v = option_uint(request.options, "seed")) {
    options.verify.explicit_opts.seed = *v;
  }
  options.budget = limits_for(request);
  // Per-job isolation: a fresh token, never shared across jobs, so one
  // cancelled/exhausted job cannot leak into a neighbour.
  options.cancel = CancellationToken();

  const RetimeGraph& graph = entry->graph();
  const std::vector<int> lag = objective == "min-period"
                                   ? min_period_retime_feas(graph).lag
                                   : min_area_retime(graph).lag;
  const RetimingValidation v =
      validate_retiming(entry->netlist(), graph, lag, options);

  stats->verdict = to_string(v.verdict);
  stats->usage = v.usage;
  stats->governed = true;

  JsonValue::Object out;
  out.emplace_back("objective", JsonValue(objective));
  out.emplace_back("theorems_hold", JsonValue(v.theorems_hold));
  out.emplace_back("cls_equivalent", JsonValue(v.cls.equivalent));
  out.emplace_back("cls_exhaustive", JsonValue(v.cls.exhaustive));
  out.emplace_back("stg_checked", JsonValue(v.stg_checked));
  out.emplace_back("safe_replacement", JsonValue(v.safe_replacement));
  out.emplace_back("min_delay_implication",
                   JsonValue(static_cast<double>(v.min_delay_implication)));
  return JsonValue(std::move(out));
}

JsonValue Server::handle_faultsim(const JobRequest& request,
                                  JobStatsWire* stats,
                                  std::string* design_id) {
  check_option_keys(request.options,
                    {"mode", "tests", "cycles", "seed", "inputs",
                     "all_faults", "drop_detected", "sample_lanes"});
  const auto entry = resolve_design(request.design_text, request.design_id,
                                    &stats->cache_hit);
  *design_id = entry->design_id();
  const Netlist& netlist = entry->netlist();

  FaultSimOptions options;
  options.mode = FaultSimMode::kCls;
  if (const auto name = option_string(request.options, "mode")) {
    const auto mode = fault_sim_mode_from_string(*name);
    if (!mode) bad_option("option \"mode\" must be exact, sampled or cls");
    options.mode = *mode;
  }
  // One engine thread per job: concurrency comes from concurrent jobs, and
  // a single job cannot occupy the whole pool.
  options.threads = 1;
  options.drop_detected =
      option_bool(request.options, "drop_detected").value_or(true);
  if (const auto v = option_uint(request.options, "sample_lanes")) {
    options.sample_lanes = static_cast<unsigned>(*v);
  }
  const std::uint64_t seed =
      option_uint(request.options, "seed").value_or(1);
  options.sample_seed = seed;
  options.budget = limits_for(request);
  options.cancel = CancellationToken();

  std::vector<BitsSeq> tests;
  if (const auto inputs = option_string(request.options, "inputs")) {
    for (const std::string& part : split_sequences(*inputs)) {
      tests.push_back(bits_seq_from_string(part));
    }
  } else {
    const unsigned count = static_cast<unsigned>(
        option_uint(request.options, "tests").value_or(64));
    const unsigned cycles = static_cast<unsigned>(
        option_uint(request.options, "cycles").value_or(16));
    const std::size_t width = netlist.primary_inputs().size();
    Rng rng(seed);
    tests.resize(count);
    for (BitsSeq& seq : tests) {
      for (unsigned t = 0; t < cycles; ++t) {
        Bits in(width);
        for (auto& v : in) v = rng.coin();
        seq.push_back(std::move(in));
      }
    }
  }

  const bool all_faults =
      option_bool(request.options, "all_faults").value_or(false);
  const std::vector<Fault> faults =
      all_faults ? enumerate_faults(netlist) : collapse_faults(netlist);
  const FaultSimResult r = fault_simulate(netlist, faults, tests, options);

  stats->verdict = r.complete ? "bounded" : "exhausted";
  stats->usage = r.usage;
  stats->governed = true;

  JsonValue::Object out;
  out.emplace_back("mode", JsonValue(std::string(to_string(options.mode))));
  out.emplace_back("faults", uint_json(faults.size()));
  out.emplace_back("tests", uint_json(tests.size()));
  out.emplace_back("detected", uint_json(r.num_detected));
  out.emplace_back("coverage", JsonValue(r.coverage));
  out.emplace_back("complete", JsonValue(r.complete));
  out.emplace_back("faults_skipped", uint_json(r.faults_skipped));
  out.emplace_back("faults_dropped", uint_json(r.faults_dropped));
  out.emplace_back("tests_run", uint_json(r.tests_run));
  return JsonValue(std::move(out));
}

JsonValue Server::handle_cls_equivalence(const JobRequest& request,
                                         JobStatsWire* stats,
                                         std::string* design_id) {
  check_option_keys(request.options,
                    {"backend", "max_branching", "max_pairs",
                     "random_sequences", "random_length", "seed"});
  const auto a = resolve_design(request.design_text, request.design_id,
                                &stats->cache_hit);
  *design_id = a->design_id();
  bool b_hit = false;
  const auto b =
      resolve_design(request.design_b_text, request.design_b_id, &b_hit);
  // cache_hit reports the warm path only when *both* designs skipped their
  // parse — a half-warm job still paid a parse.
  stats->cache_hit = stats->cache_hit && b_hit;

  VerifyOptions options;
  if (const auto name = option_string(request.options, "backend")) {
    const auto backend = equivalence_backend_from_string(*name);
    if (!backend) {
      bad_option("option \"backend\" must be \"explicit\", \"bdd\", "
                 "\"sat\", \"portfolio\" or \"static\"");
    }
    options.backend = *backend;
  }
  if (const auto v = option_uint(request.options, "max_branching")) {
    options.explicit_opts.max_branching = *v;
  }
  if (const auto v = option_uint(request.options, "max_pairs")) {
    options.explicit_opts.max_pairs = static_cast<std::size_t>(*v);
  }
  if (const auto v = option_uint(request.options, "random_sequences")) {
    options.explicit_opts.random_sequences = static_cast<unsigned>(*v);
  }
  if (const auto v = option_uint(request.options, "random_length")) {
    options.explicit_opts.random_length = static_cast<unsigned>(*v);
  }
  if (const auto v = option_uint(request.options, "seed")) {
    options.explicit_opts.seed = *v;
  }

  ResourceBudget budget(limits_for(request), CancellationToken());
  const ClsEquivalenceResult r =
      verify_cls_equivalence(a->netlist(), b->netlist(), options, &budget);

  stats->verdict = to_string(r.verdict);
  stats->usage = r.usage;
  stats->governed = true;

  JsonValue::Object out;
  out.emplace_back("design_b_id", JsonValue(b->design_id()));
  out.emplace_back("equivalent", JsonValue(r.equivalent));
  out.emplace_back("exhaustive", JsonValue(r.exhaustive));
  out.emplace_back("pairs_explored", uint_json(r.pairs_explored));
  out.emplace_back("decided_by", JsonValue(std::string(to_string(r.decided_by))));
  out.emplace_back("decided_reason", JsonValue(r.decided_reason));
  out.emplace_back("counterexample",
                   r.counterexample
                       ? JsonValue(sequence_to_string(*r.counterexample))
                       : JsonValue(nullptr));
  return JsonValue(std::move(out));
}

JsonValue Server::handle_simulate(const JobRequest& request,
                                  JobStatsWire* stats,
                                  std::string* design_id) {
  check_option_keys(request.options, {"inputs", "mode", "state"});
  const auto entry = resolve_design(request.design_text, request.design_id,
                                    &stats->cache_hit);
  *design_id = entry->design_id();
  const Netlist& netlist = entry->netlist();

  const auto inputs = option_string(request.options, "inputs");
  if (!inputs || inputs->empty()) {
    bad_option("simulate needs options.inputs "
               "(comma-separated '.'-delimited sequences)");
  }
  const std::string mode =
      option_string(request.options, "mode").value_or("cls");
  if (mode != "cls" && mode != "binary") {
    bad_option("option \"mode\" must be \"cls\" or \"binary\"");
  }

  JsonValue::Array responses;
  if (mode == "cls") {
    if (option_string(request.options, "state")) {
      bad_option("option \"state\" is only valid in binary mode "
                 "(CLS always powers up all-X)");
    }
    for (const std::string& part : split_sequences(*inputs)) {
      ClsSimulator sim(netlist);  // fresh all-X power-up per sequence
      responses.emplace_back(
          sequence_to_string(sim.run(trits_seq_from_string(part))));
    }
  } else {
    Bits state(netlist.latches().size(), 0);
    if (const auto s = option_string(request.options, "state")) {
      state = bits_from_string(*s);
    }
    for (const std::string& part : split_sequences(*inputs)) {
      BinarySimulator sim(netlist);
      sim.set_state(state);
      responses.emplace_back(
          sequence_to_string(sim.run(bits_seq_from_string(part))));
    }
  }

  JsonValue::Object out;
  out.emplace_back("mode", JsonValue(mode));
  out.emplace_back("responses", JsonValue(std::move(responses)));
  return JsonValue(std::move(out));
}

JsonValue Server::stats_result() const {
  const ServeStats s = stats();
  JsonValue::Object out;
  out.emplace_back("jobs_accepted", uint_json(s.jobs_accepted));
  out.emplace_back("jobs_done", uint_json(s.jobs_done));
  out.emplace_back("jobs_failed", uint_json(s.jobs_failed));
  out.emplace_back("inflight", uint_json(s.inflight));
  out.emplace_back("max_inflight", uint_json(s.max_inflight));
  out.emplace_back("threads", uint_json(s.threads));
  out.emplace_back("shutting_down", JsonValue(s.shutting_down));
  JsonValue::Object cache;
  cache.emplace_back("hits", uint_json(s.cache.hits));
  cache.emplace_back("misses", uint_json(s.cache.misses));
  cache.emplace_back("evictions", uint_json(s.cache.evictions));
  cache.emplace_back("entries", uint_json(s.cache.entries));
  cache.emplace_back("bytes", uint_json(s.cache.bytes));
  cache.emplace_back("byte_cap", uint_json(s.cache.byte_cap));
  out.emplace_back("cache", JsonValue(std::move(cache)));
  return JsonValue(std::move(out));
}

JsonValue Server::shutdown_result() {
  begin_shutdown();
  unsigned inflight;
  {
    std::lock_guard<std::mutex> lk(inflight_mutex_);
    inflight = inflight_;
  }
  JsonValue::Object out;
  out.emplace_back("draining", JsonValue(true));
  out.emplace_back("inflight", uint_json(inflight));
  return JsonValue(std::move(out));
}

ServeStats Server::stats() const {
  ServeStats s;
  s.jobs_accepted = jobs_accepted_.load(std::memory_order_relaxed);
  s.jobs_done = jobs_done_.load(std::memory_order_relaxed);
  s.jobs_failed = jobs_failed_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(inflight_mutex_);
    s.inflight = inflight_;
  }
  s.max_inflight = max_inflight_;
  s.threads = pool_.size();
  s.shutting_down = shutting_down();
  s.cache = cache_.stats();
  return s;
}

void Server::begin_shutdown() {
  if (shutting_down_.exchange(true, std::memory_order_acq_rel)) return;
  // Interrupt the accept loop and every blocked connection read; readers
  // observe EOF, stop dispatching, and drain their in-flight jobs.
  std::lock_guard<std::mutex> lk(fds_mutex_);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
}

std::string Server::handle_line(const std::string& line) {
  auto conn = std::make_shared<Connection>();
  std::string response;
  conn->sink = [&response](const std::string& frame) { response = frame; };
  dispatch(line, conn);
  conn->wait_drained();  // synchronizes the pool thread's write
  return response;
}

void Server::serve_stream(std::istream& in, std::ostream& out) {
  auto conn = std::make_shared<Connection>();
  conn->sink = [&out](const std::string& frame) {
    out << frame << '\n';
    out.flush();
  };
  std::string line;
  while (!shutting_down() && std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    dispatch(line, conn);
  }
  conn->wait_drained();
}

void Server::serve_fd(int fd) {
  auto conn = std::make_shared<Connection>();
  conn->sink = [fd](const std::string& frame) {
    std::string out = frame;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
      // MSG_NOSIGNAL: a client that hung up must cost us an error return,
      // not a process-wide SIGPIPE.
      const ssize_t n = ::send(fd, out.data() + off, out.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // client gone; drop the rest of the frame
      off += static_cast<std::size_t>(n);
    }
  };

  std::string buffer;
  char chunk[4096];
  while (!shutting_down()) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, error, or shutdown(SHUT_RD)
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      dispatch(line, conn);
      if (shutting_down()) break;
    }
    if (options_.max_request_bytes != 0 &&
        buffer.size() > options_.max_request_bytes) {
      conn->write(render_error("", ErrorCode::kBadRequest,
                               "unterminated frame exceeds "
                               "max_request_bytes"));
      break;
    }
  }
  conn->wait_drained();
}

void Server::serve_socket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw InvalidArgument("socket path empty or too long: \"" + path + "\"");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw IoError(std::string("socket(): ") + std::strerror(errno));
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw IoError("bind/listen on \"" + path + "\": " + why);
  }
  {
    std::lock_guard<std::mutex> lk(fds_mutex_);
    listen_fd_ = fd;
  }

  std::vector<std::thread> readers;
  for (;;) {
    const int cfd = ::accept(fd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (graceful) or fatal accept error
    }
    if (shutting_down()) {
      ::close(cfd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(fds_mutex_);
      conn_fds_.push_back(cfd);
    }
    readers.emplace_back([this, cfd] {
      serve_fd(cfd);
      {
        std::lock_guard<std::mutex> lk(fds_mutex_);
        conn_fds_.erase(
            std::find(conn_fds_.begin(), conn_fds_.end(), cfd));
      }
      ::close(cfd);
    });
  }

  for (std::thread& t : readers) t.join();
  {
    std::lock_guard<std::mutex> lk(fds_mutex_);
    listen_fd_ = -1;
  }
  ::close(fd);
  ::unlink(path.c_str());
}

}  // namespace rtv::serve
