#pragma once
// The `rtv serve` wire protocol: typed request/response structures and the
// codec between them and the newline-delimited JSON framing. The full
// protocol reference — every schema, the error envelope, shutdown and
// backpressure semantics — lives in docs/serve.md; every JSON example
// there is round-tripped through this codec by tests/test_docs_examples.cpp
// so the spec and the code cannot drift apart.
//
// Layering: this header knows JSON and job shapes, nothing about sockets,
// threads, or caches — serve/server.hpp owns those. That keeps the codec
// unit-testable against raw strings and the docs.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "io/json.hpp"
#include "util/budget.hpp"

namespace rtv::serve {

/// Wire protocol version; every request and response carries it as
/// "rtv_serve". Bumped only on breaking schema changes. Version 2 added
/// backend selection to cls-equivalence requests ("backend") and the
/// "decided_by"/"decided_reason" result fields. Version 3 added overload
/// semantics: the "overloaded" error code with "retry_after_ms" /
/// "expired_in_queue" hints, a per-request "deadline_ms", and the "health"
/// control job type. Requests are still accepted at kMinProtocolVersion
/// since older frames are a strict subset.
inline constexpr int kProtocolVersion = 3;
inline constexpr int kMinProtocolVersion = 1;

/// What a request asks the service to do. The five job types mirror the
/// CLI subcommands of the same names; kStats, kHealth and kShutdown are
/// service-control requests handled without touching a design.
enum class JobType {
  kLint,            ///< structural diagnostics (RTV1xx)
  kValidate,        ///< full retiming validation (Section 4 + Cor 5.3)
  kFaultSim,        ///< batch stuck-at fault simulation
  kClsEquivalence,  ///< CLS equivalence of two designs (Thm 5.1)
  kSimulate,        ///< binary/CLS simulation of input sequences
  kStats,           ///< server statistics snapshot
  kHealth,          ///< lightweight liveness probe, answered inline
  kShutdown,        ///< graceful drain-and-exit
};

const char* to_string(JobType type);
std::optional<JobType> job_type_from_string(std::string_view name);

/// Stable machine-readable error codes of the error envelope. The mapping
/// to CLI exit codes is documented in docs/serve.md ("Error envelope").
enum class ErrorCode {
  kBadRequest,       ///< malformed frame: not JSON, bad version, missing field
  kParseError,       ///< a design payload failed to parse       (CLI exit 3)
  kInvalidArgument,  ///< a documented precondition was violated (CLI exit 4)
  kCapacity,         ///< a capacity limit was exceeded          (CLI exit 5)
  kDesignNotFound,   ///< design_id not (or no longer) in the cache
  kShuttingDown,     ///< request arrived after shutdown began
  kOverloaded,       ///< admission queue full or deadline expired queued
  kInternal,         ///< internal invariant failed              (CLI exit 70)
};

const char* to_string(ErrorCode code);

/// Thrown by the codec and the job handlers for failures that map to a
/// specific wire error code; the server renders it into the error
/// envelope. Other rtv::Error subclasses are mapped by type (see
/// error_code_for_exception in protocol.cpp).
class ProtocolError : public Error {
 public:
  ProtocolError(ErrorCode code, const std::string& what)
      : Error(what), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Per-job resource caps, all optional on the wire. A zero/absent time_ms
/// inherits the server's --default-time-budget-ms; node_limit 0 keeps the
/// library default cap.
struct BudgetSpec {
  std::uint64_t time_ms = 0;
  std::size_t node_limit = 0;
  std::uint64_t step_quota = 0;
};

/// One parsed request frame. Exactly one of design_text/design_id is set
/// for job types that need a design (both empty for kStats/kShutdown);
/// kClsEquivalence additionally carries design_b_text/design_b_id.
/// `options` keeps the per-type "options" object (JSON null when absent)
/// for the handler to interpret.
struct JobRequest {
  std::string id;
  JobType type = JobType::kStats;
  std::optional<std::string> design_text;
  std::optional<std::string> design_id;
  std::optional<std::string> design_b_text;
  std::optional<std::string> design_b_id;
  std::optional<BudgetSpec> budget;
  JsonValue options;
  /// Client latency bound in milliseconds, measured from admission: the
  /// server converts it to an absolute deadline, counts queue wait against
  /// it, and sheds the job ("overloaded", expired_in_queue) rather than run
  /// it after the deadline has passed. 0 = inherit --default-deadline-ms.
  /// Only valid on design job types.
  std::uint64_t deadline_ms = 0;
};

/// Parses one already-JSON-parsed request frame. Throws ProtocolError
/// (kBadRequest) on any schema violation: wrong/missing version, missing
/// id/type, unknown type, a design given both inline and by id, a missing
/// design for a job type that needs one, or ill-typed fields.
JobRequest parse_request(const JsonValue& document);

/// Per-job statistics carried in every successful response ("stats"
/// object). queue_ms counts enqueue -> handler start; run_ms the handler
/// itself; verdict is the job's degradation-ladder label ("proven",
/// "bounded", "exhausted") or "none" for jobs without a governed verdict
/// (lint, simulate, stats, shutdown).
struct JobStatsWire {
  double queue_ms = 0.0;
  double run_ms = 0.0;
  bool cache_hit = false;
  std::string verdict = "none";
  ResourceUsage usage;
  bool governed = false;  ///< usage was measured under a live budget
};

/// Renders a success response frame: the envelope around a per-type
/// `result` object. `design_id` is echoed when the job resolved a design
/// (empty = omitted).
std::string render_response(const std::string& id, JobType type,
                            const std::string& design_id,
                            const JsonValue& result,
                            const JobStatsWire& stats);

/// Optional machine-readable hints attached to an error envelope
/// (protocol v3; today only kOverloaded rejections carry them).
struct ErrorDetail {
  /// Suggested client backoff before retrying, derived from the server's
  /// recent job-duration average and current queue depth.
  std::optional<std::uint64_t> retry_after_ms;
  /// True when the job was admitted but its deadline expired while it sat
  /// in the queue, so it was rejected without running.
  bool expired_in_queue = false;
};

/// Renders an error envelope frame. `id` may be empty when the frame was
/// too malformed to recover one (rendered as JSON null).
std::string render_error(const std::string& id, ErrorCode code,
                         const std::string& message,
                         const ErrorDetail& detail = {});

/// Maps a caught exception to its wire error code (ProtocolError carries
/// its own; ParseError -> kParseError, InvalidArgument -> kInvalidArgument,
/// CapacityError -> kCapacity, anything else -> kInternal).
ErrorCode error_code_for_exception(const std::exception& error);

/// Schema check of one response frame, as published in docs/serve.md:
/// returns an empty string when `document` is a well-formed success or
/// error response, else a description of the first violation. Used by the
/// docs round-trip test and available to client implementations.
std::string validate_response(const JsonValue& document);

}  // namespace rtv::serve
