#pragma once
// Fault-injection harness for the resource-governance layer.
//
// Every ResourceBudget::checkpoint(site) in the process reports here. When
// the harness is armed to trip at the N-th checkpoint, that checkpoint
// behaves exactly as if a resource limit had been blown (the budget flips
// to exhausted with ResourceKind::kInjected), and every later probe of the
// same budget fails fast. The robustness sweep (tests/test_fault_inject.cpp)
// arms N = 1, 2, ... over a full validate+flow+faultsim run and asserts a
// well-formed partial report at every trip point — the executable proof
// that no exhaustion path crashes, leaks, or masquerades as a proof.
//
// Always compiled in (a disarmed trip() is one relaxed atomic load);
// armed either programmatically (arm/disarm) or via the RTV_FAULT_INJECT
// environment variable ("RTV_FAULT_INJECT=N" trips the N-th checkpoint of
// the process; parsed once by the CLI via arm_from_env()).

#include <cstdint>
#include <string>
#include <vector>

namespace rtv::fault_inject {

/// Arms the harness: the `nth` checkpoint after this call (1-based) trips.
/// Resets the checkpoint counter and the seen-site record.
void arm(std::uint64_t nth);

/// Arms from RTV_FAULT_INJECT (positive integer); disarms when the
/// variable is unset, empty, or unparseable.
void arm_from_env();

void disarm();

bool enabled();

/// Checkpoints passed since the last arm().
std::uint64_t checkpoints_passed();

/// Distinct checkpoint site labels recorded since the last arm(),
/// in first-seen order.
std::vector<std::string> sites_seen();

/// Called by ResourceBudget::checkpoint. Returns true when this call is
/// the armed trip point. Thread-safe; a disarmed harness costs one relaxed
/// atomic load.
bool trip(const char* site);

}  // namespace rtv::fault_inject
