#pragma once
// Work-stealing thread pool — the repository's first threading primitive.
//
// Scope is deliberately narrow: data-parallel loops over an index range
// (`parallel_for`). Each participant — the calling thread plus size()-1
// persistent workers — owns a deque of [begin, end) chunks. Owners pop from
// the back of their own deque; a participant that runs dry steals the
// *oldest* chunk from the front of a victim's deque, which keeps contention
// low (owner and thief touch opposite ends) and migrates the largest
// remaining runs of work. The calling thread always participates, so a pool
// of size 1 executes entirely inline through the same code path — threaded
// and serial runs cannot diverge behaviourally.
//
// Guarantees and limits:
//   - The set of chunks and their [begin, end) bounds are deterministic;
//     only the execution order and thread assignment vary between runs.
//   - Exceptions thrown by the body are captured; the job drains and the
//     first captured exception is rethrown on the calling thread.
//   - One job at a time: concurrent parallel_for calls serialize, and
//     calling parallel_for from inside a body deadlocks (unsupported).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rtv {

class ThreadPool {
 public:
  /// Spawns `resolve_threads(threads) - 1` workers (the caller is the
  /// remaining participant).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Participants, including the calling thread.
  unsigned size() const { return static_cast<unsigned>(queues_.size()); }

  /// 0 means "one per hardware thread" (at least 1); any other value is
  /// taken literally.
  static unsigned resolve_threads(unsigned requested);

  /// Splits [0, total) into chunks of at most `grain` indices and runs
  /// `body(begin, end)` over every chunk across the pool, work-stealing
  /// balanced. Blocks until all chunks finish; rethrows the first body
  /// exception.
  void parallel_for(std::size_t total, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  struct Chunk {
    std::size_t begin = 0, end = 0;
  };
  struct Queue {
    std::mutex mutex;
    std::deque<Chunk> chunks;
  };

  void worker_main(unsigned self);
  void participate(unsigned self);
  bool pop_or_steal(unsigned self, Chunk* out);

  std::vector<std::unique_ptr<Queue>> queues_;  ///< one per participant
  std::vector<std::thread> workers_;

  std::mutex job_mutex_;  ///< serializes parallel_for callers

  std::mutex mutex_;  ///< guards the fields below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t remaining_ = 0;  ///< chunks of the current job not yet finished
  unsigned active_ = 0;        ///< workers currently inside participate()
  std::exception_ptr error_;
  bool stopping_ = false;
};

}  // namespace rtv
