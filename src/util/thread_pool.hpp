#pragma once
// Work-stealing thread pool — the repository's first threading primitive.
//
// Two scheduling modes share one set of workers:
//
//   parallel_for — data-parallel loops over an index range. Each
//   participant — the calling thread plus size()-1 persistent workers —
//   owns a deque of [begin, end) chunks. Owners pop from the back of their
//   own deque; a participant that runs dry steals the *oldest* chunk from
//   the front of a victim's deque, which keeps contention low (owner and
//   thief touch opposite ends) and migrates the largest remaining runs of
//   work. The calling thread always participates, so a pool of size 1
//   executes entirely inline through the same code path — threaded and
//   serial runs cannot diverge behaviourally.
//
//   submit — fire-and-forget one-off tasks (the serve daemon's job
//   dispatch). Tasks land round-robin on per-participant task deques and
//   are popped/stolen by the same discipline as chunks. Workers drain
//   tasks whenever no parallel_for job occupies them; the parallel_for
//   caller never runs tasks, so a loop cannot block on an unrelated job.
//
// Guarantees and limits:
//   - The set of chunks and their [begin, end) bounds are deterministic;
//     only the execution order and thread assignment vary between runs.
//   - Exceptions thrown by a parallel_for body are captured; the job
//     drains and the first captured exception is rethrown on the calling
//     thread. Tasks must not throw: an escaped task exception is swallowed
//     (a serve job handler converts every failure into a response).
//   - One parallel_for at a time: concurrent calls serialize, and calling
//     parallel_for from inside a body deadlocks (unsupported). Tasks run
//     concurrently with each other and with a parallel_for job.
//   - Destruction drops tasks still queued (not yet started); callers that
//     need completion track it themselves (see serve::Server's inflight
//     accounting).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rtv {

class ThreadPool {
 public:
  /// Spawns `resolve_threads(threads) - 1` workers (the caller is the
  /// remaining participant).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Participants, including the calling thread.
  unsigned size() const { return static_cast<unsigned>(queues_.size()); }

  /// 0 means "one per hardware thread" (at least 1); any other value is
  /// taken literally.
  static unsigned resolve_threads(unsigned requested);

  /// Splits [0, total) into chunks of at most `grain` indices and runs
  /// `body(begin, end)` over every chunk across the pool, work-stealing
  /// balanced. Blocks until all chunks finish; rethrows the first body
  /// exception.
  void parallel_for(std::size_t total, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Enqueues one fire-and-forget task for an idle worker (round-robin
  /// placement, work-stealing pickup). Returns immediately. On a pool of
  /// size 1 (no workers) the task runs inline before submit returns —
  /// callers get synchronous execution instead of a task that never runs.
  void submit(std::function<void()> task);

  /// Tasks submitted but not yet started (queue-depth introspection for
  /// callers that layer admission control on top, e.g. serve::Server).
  std::size_t pending_tasks() const {
    return tasks_pending_.load(std::memory_order_relaxed);
  }

 private:
  struct Chunk {
    std::size_t begin = 0, end = 0;
  };
  struct Queue {
    std::mutex mutex;
    std::deque<Chunk> chunks;
    std::deque<std::function<void()>> tasks;  ///< submit()-mode items
  };

  void worker_main(unsigned self);
  void participate(unsigned self);
  bool pop_or_steal(unsigned self, Chunk* out);
  bool pop_or_steal_task(unsigned self, std::function<void()>* out);
  void drain_tasks(unsigned self);

  std::vector<std::unique_ptr<Queue>> queues_;  ///< one per participant
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> tasks_pending_{0};
  std::atomic<std::size_t> next_task_queue_{0};  ///< round-robin submit

  std::mutex job_mutex_;  ///< serializes parallel_for callers

  std::mutex mutex_;  ///< guards the fields below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t)>* body_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t remaining_ = 0;  ///< chunks of the current job not yet finished
  unsigned active_ = 0;        ///< workers currently inside participate()
  std::exception_ptr error_;
  bool stopping_ = false;
};

}  // namespace rtv
