#include "util/budget.hpp"

#include <sstream>

#include "util/fault_inject.hpp"

namespace rtv {

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kProven:
      return "proven";
    case Verdict::kBounded:
      return "bounded";
    case Verdict::kExhausted:
      return "exhausted";
  }
  return "?";
}

const char* to_string(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kWallClock:
      return "wall-clock deadline";
    case ResourceKind::kBddNodes:
      return "BDD node cap";
    case ResourceKind::kStatePairs:
      return "state-pair cap";
    case ResourceKind::kSteps:
      return "step quota";
    case ResourceKind::kCancelled:
      return "cancelled";
    case ResourceKind::kInjected:
      return "fault injection";
  }
  return "?";
}

std::string ResourceUsage::summary() const {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << wall_ms << " ms, " << steps << " steps";
  if (peak_bdd_nodes > 0) os << ", " << peak_bdd_nodes << " BDD nodes";
  if (state_pairs > 0) os << ", " << state_pairs << " state pairs";
  if (bdd_gc_runs > 0) {
    os << ", " << bdd_gc_runs << " GC (" << bdd_nodes_reclaimed
       << " reclaimed, " << peak_live_bdd_nodes << " peak live)";
  }
  if (bdd_reorder_runs > 0) os << ", " << bdd_reorder_runs << " reorders";
  if (exhausted) {
    os << "; EXHAUSTED (" << (blown ? to_string(*blown) : "?") << ")";
  }
  return os.str();
}

bool ResourceBudget::checkpoint(const char* site) {
  if (!ok()) return false;
  const std::uint64_t step = steps_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (fault_inject::trip(site)) {
    mark_exhausted(ResourceKind::kInjected);
    return false;
  }
  if (cancel_.cancelled()) {
    mark_exhausted(ResourceKind::kCancelled);
    return false;
  }
  if (limits_.step_quota != 0 && step > limits_.step_quota) {
    mark_exhausted(ResourceKind::kSteps);
    return false;
  }
  if (limits_.time_budget_ms != 0 &&
      elapsed_ms() > static_cast<double>(limits_.time_budget_ms)) {
    mark_exhausted(ResourceKind::kWallClock);
    return false;
  }
  if (deadline_ && std::chrono::steady_clock::now() > *deadline_) {
    mark_exhausted(ResourceKind::kWallClock);
    return false;
  }
  return true;
}

void ResourceBudget::checkpoint_or_throw(const char* site) {
  if (checkpoint(site)) return;
  const auto kind = blown();
  throw ResourceExhausted(
      kind.value_or(ResourceKind::kSteps),
      std::string("resource budget exhausted at ") +
          (site != nullptr ? site : "?") + ": " +
          to_string(kind.value_or(ResourceKind::kSteps)));
}

bool ResourceBudget::note_pairs(std::size_t pairs) {
  std::size_t prev = peak_pairs_.load(std::memory_order_relaxed);
  while (prev < pairs &&
         !peak_pairs_.compare_exchange_weak(prev, pairs,
                                            std::memory_order_relaxed)) {
  }
  if (limits_.pair_limit != 0 && pairs > limits_.pair_limit) {
    mark_exhausted(ResourceKind::kStatePairs);
    return false;
  }
  return ok();
}

void ResourceBudget::note_bdd_nodes(std::size_t nodes) {
  std::size_t prev = peak_bdd_nodes_.load(std::memory_order_relaxed);
  while (prev < nodes &&
         !peak_bdd_nodes_.compare_exchange_weak(prev, nodes,
                                                std::memory_order_relaxed)) {
  }
}

void ResourceBudget::note_bdd_gc(std::uint64_t reclaimed, std::size_t live) {
  bdd_gc_runs_.fetch_add(1, std::memory_order_relaxed);
  bdd_nodes_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);
  std::size_t prev = peak_live_bdd_nodes_.load(std::memory_order_relaxed);
  while (prev < live &&
         !peak_live_bdd_nodes_.compare_exchange_weak(
             prev, live, std::memory_order_relaxed)) {
  }
}

void ResourceBudget::note_bdd_reorder() {
  bdd_reorder_runs_.fetch_add(1, std::memory_order_relaxed);
}

void ResourceBudget::mark_exhausted(ResourceKind kind) {
  int expected = -1;
  blown_.compare_exchange_strong(expected, static_cast<int>(kind),
                                 std::memory_order_acq_rel);
}

std::optional<ResourceKind> ResourceBudget::blown() const {
  const int b = blown_.load(std::memory_order_acquire);
  if (b < 0) return std::nullopt;
  return static_cast<ResourceKind>(b);
}

double ResourceBudget::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

ResourceUsage ResourceBudget::usage() const {
  ResourceUsage u;
  u.wall_ms = elapsed_ms();
  u.steps = steps_.load(std::memory_order_relaxed);
  u.peak_bdd_nodes = peak_bdd_nodes_.load(std::memory_order_relaxed);
  u.state_pairs = peak_pairs_.load(std::memory_order_relaxed);
  u.bdd_gc_runs = bdd_gc_runs_.load(std::memory_order_relaxed);
  u.bdd_nodes_reclaimed =
      bdd_nodes_reclaimed_.load(std::memory_order_relaxed);
  u.bdd_reorder_runs = bdd_reorder_runs_.load(std::memory_order_relaxed);
  u.peak_live_bdd_nodes =
      peak_live_bdd_nodes_.load(std::memory_order_relaxed);
  u.blown = blown();
  u.exhausted = u.blown.has_value();
  return u;
}

}  // namespace rtv
