#pragma once
// Resource governance for long-running verification entry points.
//
// The paper's methodology gate (Section 5 / Cor 5.3) is only usable in a
// synthesis flow if the checker always returns a verdict: a blown node cap
// or a runaway pair-BFS must degrade to a weaker-but-labeled answer, never
// abort the whole run. This header provides the machinery:
//
//   ResourceLimits     caps a caller can impose (wall clock, BDD nodes,
//                      state pairs, abstract step quota).
//   CancellationToken  cooperative cancellation shared across threads.
//   ResourceBudget     the live meter: entry points call checkpoint() at
//                      every unit of work; the first blown limit flips the
//                      budget to exhausted and every later probe fails fast.
//   Verdict            the degradation ladder every governed result is
//                      labeled with: kProven (exhaustive) > kBounded
//                      (completed sampling) > kExhausted (cut short by the
//                      budget). A degraded verdict must never be reported
//                      as a proof.
//   ResourceExhausted  internal control-flow exception thrown by code that
//                      cannot return partial results (BDD allocation, STG
//                      extraction); governed entry points catch it at the
//                      phase boundary and degrade. It never escapes a
//                      governed entry point.
//
// checkpoint() also drives the fault-injection harness (util/fault_inject.hpp):
// when armed, the N-th checkpoint anywhere in the process trips the budget
// as if a limit had been blown, which is how the robustness sweep proves
// every exhaustion path yields a well-formed partial report.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "util/error.hpp"

namespace rtv {

/// The library-wide default BDD node cap, shared by BddManager,
/// SymbolicMachine and SymbolicImplication (previously repeated as a magic
/// `1 << 22` in each header).
inline constexpr std::size_t kDefaultBddNodeLimit = std::size_t{1} << 22;

/// Degradation ladder of every governed verification result.
enum class Verdict {
  kProven,     ///< exhaustive analysis completed: the answer is a theorem
  kBounded,    ///< bounded/randomized analysis completed: evidence, not proof
  kExhausted,  ///< budget blown mid-flight: partial answer over work done
};

const char* to_string(Verdict verdict);

/// Which resource blew first.
enum class ResourceKind {
  kWallClock,   ///< time_budget_ms deadline passed
  kBddNodes,    ///< bdd_node_limit reached
  kStatePairs,  ///< pair_limit reached
  kSteps,       ///< step_quota reached
  kCancelled,   ///< CancellationToken fired
  kInjected,    ///< fault-injection harness tripped this checkpoint
};

const char* to_string(ResourceKind kind);

/// Caps a caller imposes on one governed call. Zero means "no limit" for
/// every field except bdd_node_limit (which always has the library default).
struct ResourceLimits {
  std::uint64_t time_budget_ms = 0;
  std::size_t bdd_node_limit = kDefaultBddNodeLimit;
  std::size_t pair_limit = 0;
  std::uint64_t step_quota = 0;
};

/// Snapshot of what a governed call consumed, reported alongside its
/// verdict so degraded results carry their own evidence.
struct ResourceUsage {
  double wall_ms = 0.0;
  std::uint64_t steps = 0;
  std::size_t peak_bdd_nodes = 0;
  std::size_t state_pairs = 0;
  /// BDD engine reclamation/reordering counters (all zero when the engine
  /// ran in legacy arena mode — GC and sifting off).
  std::uint64_t bdd_gc_runs = 0;
  std::uint64_t bdd_nodes_reclaimed = 0;
  std::uint64_t bdd_reorder_runs = 0;
  std::size_t peak_live_bdd_nodes = 0;  ///< max live set seen at a GC
  bool exhausted = false;
  std::optional<ResourceKind> blown;  ///< set iff exhausted

  std::string summary() const;
};

/// Cooperative cancellation: copies share one flag; request_cancel() makes
/// every governed call holding a copy fail its next checkpoint.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() const noexcept {
    flag_->store(true, std::memory_order_release);
  }
  bool cancelled() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Thrown by budgeted code that has no way to return a partial result
/// (BDD node allocation, STG extraction). Always caught by the governed
/// entry point that owns the budget; user code never sees it escape
/// check_cls_equivalence / validate_retiming / run_synthesis_flow /
/// fault_simulate.
class ResourceExhausted : public Error {
 public:
  ResourceExhausted(ResourceKind kind, const std::string& what)
      : Error(what), kind_(kind) {}
  ResourceKind kind() const { return kind_; }

 private:
  ResourceKind kind_;
};

/// The live meter. One budget governs one logical call (possibly spanning
/// several phases: CLS gate, STG extraction, relation checks share the same
/// wall clock). Thread-safe: fault-engine workers checkpoint concurrently.
/// Non-copyable; pass by pointer (nullptr = ungoverned) or reference.
class ResourceBudget {
 public:
  /// Unlimited budget (still drives fault injection and the wall clock).
  ResourceBudget() : ResourceBudget(ResourceLimits{}) {}

  explicit ResourceBudget(const ResourceLimits& limits,
                          CancellationToken cancel = {})
      : limits_(limits),
        cancel_(std::move(cancel)),
        start_(std::chrono::steady_clock::now()) {}

  ResourceBudget(const ResourceBudget&) = delete;
  ResourceBudget& operator=(const ResourceBudget&) = delete;

  /// Budget additionally bounded by an absolute wall-clock deadline
  /// (`std::nullopt` = none). Unlike time_budget_ms — which is relative to
  /// construction — the deadline is fixed before the budget exists, so time
  /// a job spent queued before its budget was built still counts against
  /// it. checkpoint() fails with kWallClock once the deadline passes.
  static ResourceBudget with_deadline(
      const ResourceLimits& limits, CancellationToken cancel,
      std::optional<std::chrono::steady_clock::time_point> deadline) {
    return ResourceBudget(limits, std::move(cancel), deadline);
  }

  std::optional<std::chrono::steady_clock::time_point> deadline() const {
    return deadline_;
  }

  /// Cooperative probe at one unit of work. Counts a step, then checks (in
  /// order): already exhausted, fault injection, cancellation, step quota,
  /// deadline. Returns true while within budget; after the first failure
  /// every call returns false. `site` names the checkpoint for the
  /// fault-injection harness.
  bool checkpoint(const char* site);

  /// checkpoint() for code that unwinds by exception instead of partial
  /// return. Throws ResourceExhausted when the budget is blown.
  void checkpoint_or_throw(const char* site);

  /// Records the high-water state-pair count; false (and exhausted) when
  /// it exceeds pair_limit.
  bool note_pairs(std::size_t pairs);

  /// Records the high-water BDD node count (cap itself is enforced by
  /// BddManager against limits().bdd_node_limit).
  void note_bdd_nodes(std::size_t nodes);

  /// Records one BDD garbage collection (nodes reclaimed + live survivors)
  /// / one sifting pass. Called by BddManager when a budget is attached so
  /// governed entry points surface the engine's reclamation counters.
  void note_bdd_gc(std::uint64_t reclaimed, std::size_t live);
  void note_bdd_reorder();

  /// Flips the budget to exhausted with the given reason (idempotent: the
  /// first reason wins). Used by BddManager and the injection harness.
  void mark_exhausted(ResourceKind kind);

  bool ok() const { return blown_.load(std::memory_order_acquire) < 0; }
  bool exhausted() const { return !ok(); }
  std::optional<ResourceKind> blown() const;

  double elapsed_ms() const;
  const ResourceLimits& limits() const { return limits_; }
  const CancellationToken& cancel_token() const { return cancel_; }

  /// Usage snapshot (wall clock read at call time).
  ResourceUsage usage() const;

 private:
  ResourceBudget(const ResourceLimits& limits, CancellationToken cancel,
                 std::optional<std::chrono::steady_clock::time_point> deadline)
      : limits_(limits),
        cancel_(std::move(cancel)),
        start_(std::chrono::steady_clock::now()),
        deadline_(deadline) {}

  ResourceLimits limits_;
  CancellationToken cancel_;
  std::chrono::steady_clock::time_point start_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::size_t> peak_bdd_nodes_{0};
  std::atomic<std::size_t> peak_pairs_{0};
  std::atomic<std::uint64_t> bdd_gc_runs_{0};
  std::atomic<std::uint64_t> bdd_nodes_reclaimed_{0};
  std::atomic<std::uint64_t> bdd_reorder_runs_{0};
  std::atomic<std::size_t> peak_live_bdd_nodes_{0};
  std::atomic<int> blown_{-1};  ///< -1 = ok, else static_cast<ResourceKind>
};

}  // namespace rtv
