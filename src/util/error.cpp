#include "util/error.hpp"

#include <sstream>

namespace rtv::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream os;
  os << "internal invariant violated: `" << expr << "` at " << file << ":"
     << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw InternalError(os.str());
}

}  // namespace rtv::detail
