#include "util/thread_pool.hpp"

#include <algorithm>

namespace rtv {

unsigned ThreadPool::resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = resolve_threads(threads);
  queues_.reserve(n);
  for (unsigned i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(n - 1);
  for (unsigned i = 1; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_main(unsigned self) {
  std::uint64_t seen = 0;
  for (;;) {
    bool in_job = false;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      work_cv_.wait(lk, [&] {
        return stopping_ || generation_ != seen ||
               tasks_pending_.load(std::memory_order_acquire) > 0;
      });
      if (stopping_) return;
      if (generation_ != seen) {
        seen = generation_;
        ++active_;
        in_job = true;
      }
    }
    if (in_job) {
      participate(self);
      std::lock_guard<std::mutex> lk(mutex_);
      if (--active_ == 0) done_cv_.notify_all();
    }
    // Whether woken for a job or a task, drain any queued tasks before
    // sleeping again (a task submitted during a job waits for this point).
    drain_tasks(self);
  }
}

bool ThreadPool::pop_or_steal(unsigned self, Chunk* out) {
  {
    Queue& own = *queues_[self];
    std::lock_guard<std::mutex> lk(own.mutex);
    if (!own.chunks.empty()) {
      *out = own.chunks.back();
      own.chunks.pop_back();
      return true;
    }
  }
  const unsigned n = size();
  for (unsigned d = 1; d < n; ++d) {
    Queue& victim = *queues_[(self + d) % n];
    std::lock_guard<std::mutex> lk(victim.mutex);
    if (!victim.chunks.empty()) {
      *out = victim.chunks.front();  // steal the oldest chunk
      victim.chunks.pop_front();
      return true;
    }
  }
  return false;
}

bool ThreadPool::pop_or_steal_task(unsigned self,
                                   std::function<void()>* out) {
  const unsigned n = size();
  for (unsigned d = 0; d < n; ++d) {
    Queue& q = *queues_[(self + d) % n];
    std::lock_guard<std::mutex> lk(q.mutex);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.front());
      q.tasks.pop_front();
      tasks_pending_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  return false;
}

void ThreadPool::drain_tasks(unsigned self) {
  std::function<void()> task;
  while (pop_or_steal_task(self, &task)) {
    try {
      task();
    } catch (...) {
      // Tasks own their error reporting (a serve handler renders every
      // failure into a response); an exception reaching here has nowhere
      // to go on a fire-and-forget path, so it is dropped.
    }
    task = nullptr;
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (size() == 1) {
    // No workers to hand the task to: run it inline so it cannot languish.
    task();
    return;
  }
  const std::size_t slot =
      next_task_queue_.fetch_add(1, std::memory_order_relaxed) % size();
  {
    Queue& q = *queues_[slot];
    std::lock_guard<std::mutex> lk(q.mutex);
    q.tasks.push_back(std::move(task));
  }
  tasks_pending_.fetch_add(1, std::memory_order_release);
  {
    // Fence against the sleep path: a worker between its predicate check
    // (which saw no pending tasks) and blocking still holds mutex_, so
    // taking it here delays the notify until the worker can receive it.
    std::lock_guard<std::mutex> lk(mutex_);
  }
  work_cv_.notify_one();
}

void ThreadPool::participate(unsigned self) {
  // body_ is valid whenever a chunk is held: the job (body_, remaining_,
  // generation_) is installed under mutex_ before any chunk is published,
  // each pop happens-after its push via the per-queue mutex, and
  // parallel_for cannot return (and so the next job cannot install a new
  // body) while any chunk — including one held here — is unfinished.
  Chunk c;
  while (pop_or_steal(self, &c)) {
    try {
      (*body_)(c.begin, c.end);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(mutex_);
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::size_t total, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (total == 0) return;
  if (grain == 0) grain = 1;
  std::lock_guard<std::mutex> serial(job_mutex_);
  {
    // Wait out stragglers still draining the previous job's (empty) queues.
    // Safety against stale wakeups comes from the install-before-publish
    // order below; this wait just keeps active_ accounting per-job.
    std::unique_lock<std::mutex> lk(mutex_);
    done_cv_.wait(lk, [&] { return active_ == 0; });
  }
  const unsigned n = size();
  const std::size_t num_chunks = (total + grain - 1) / grain;
  {
    // Install the job BEFORE publishing any chunk. A straggler from the
    // previous generation that slipped past the active_ == 0 wait above can
    // only ever observe either (a) empty queues — it retires harmlessly,
    // because the caller participates and drains everything — or (b) a chunk
    // of THIS job, whose pop (under the queue mutex that also guarded the
    // push below) happens-after this install, so body_/remaining_ are the
    // new job's. Pushing chunks first would let such a worker run a fresh
    // chunk through the previous, dangling body_ and underflow remaining_.
    std::lock_guard<std::mutex> lk(mutex_);
    body_ = &body;
    error_ = nullptr;
    remaining_ = num_chunks;
    ++generation_;
  }
  for (std::size_t chunk = 0, begin = 0; begin < total;
       ++chunk, begin += grain) {
    const Chunk c{begin, std::min(total, begin + grain)};
    Queue& q = *queues_[chunk % n];
    std::lock_guard<std::mutex> lk(q.mutex);
    q.chunks.push_back(c);
  }
  work_cv_.notify_all();
  participate(0);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(mutex_);
    done_cv_.wait(lk, [&] { return remaining_ == 0; });
    error = error_;
    error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace rtv
