#pragma once
// Small bit-manipulation helpers shared by the simulators and STG engine.

#include <bit>
#include <cstdint>

#include "util/error.hpp"

namespace rtv {

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t words_for_bits(std::size_t bits) {
  return (bits + 63) / 64;
}

/// Extract bit `i` of `word`.
constexpr bool get_bit(std::uint64_t word, unsigned i) {
  return ((word >> i) & 1ULL) != 0;
}

/// Set bit `i` of `word` to `v`.
constexpr std::uint64_t set_bit(std::uint64_t word, unsigned i, bool v) {
  const std::uint64_t mask = 1ULL << i;
  return v ? (word | mask) : (word & ~mask);
}

/// Population count.
constexpr int popcount64(std::uint64_t x) { return std::popcount(x); }

/// 2^n as uint64, checked against overflow.
inline std::uint64_t pow2(unsigned n) {
  RTV_REQUIRE(n < 64, "pow2 exponent must be < 64");
  return 1ULL << n;
}

/// 3^n as uint64, checked against overflow (n <= 40).
inline std::uint64_t pow3(unsigned n) {
  RTV_REQUIRE(n <= 40, "pow3 exponent must be <= 40");
  std::uint64_t r = 1;
  for (unsigned i = 0; i < n; ++i) r *= 3;
  return r;
}

/// 3^n as uint64, saturating at UINT64_MAX instead of overflowing or
/// throwing. Safe for mode-selection comparisons ("is 3^I below this cap?")
/// on designs with arbitrarily many inputs: 3^41 and beyond clamp to
/// UINT64_MAX, so a wide design can never wrap around and masquerade as a
/// small branching factor.
inline std::uint64_t pow3_saturating(unsigned n) {
  if (n > 40) return ~0ULL;  // 3^41 > 2^64
  std::uint64_t r = 1;
  for (unsigned i = 0; i < n; ++i) r *= 3;
  return r;
}

/// Mask with the low `n` bits set (n <= 64).
inline std::uint64_t low_mask(unsigned n) {
  RTV_REQUIRE(n <= 64, "low_mask width must be <= 64");
  return n == 64 ? ~0ULL : (1ULL << n) - 1;
}

}  // namespace rtv
