#pragma once
// Deterministic pseudo-random number generation.
//
// Every randomized experiment in this repository draws from rtv::Rng seeded
// with an explicit value so that all tables and property sweeps are exactly
// reproducible. The generator is xoshiro256** (Blackman/Vigna), seeded
// through SplitMix64 per the authors' recommendation.

#include <cstdint>
#include <vector>

namespace rtv {

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (Lemire-style rejection).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Fair coin.
  bool coin() { return (next() >> 63) != 0; }

  /// Uniform double in [0, 1).
  double uniform();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t size);

 private:
  std::uint64_t s_[4];
};

}  // namespace rtv
