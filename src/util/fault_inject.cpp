#include "util/fault_inject.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <unordered_set>

namespace rtv::fault_inject {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_trip_at{0};
std::atomic<std::uint64_t> g_counter{0};

std::mutex g_sites_mutex;
std::vector<std::string> g_sites;          // first-seen order
std::unordered_set<std::string> g_known;

void record_site(const char* site) {
  const std::string name = site != nullptr ? site : "?";
  std::lock_guard<std::mutex> lock(g_sites_mutex);
  if (g_known.insert(name).second) g_sites.push_back(name);
}

}  // namespace

void arm(std::uint64_t nth) {
  {
    std::lock_guard<std::mutex> lock(g_sites_mutex);
    g_sites.clear();
    g_known.clear();
  }
  g_counter.store(0, std::memory_order_relaxed);
  g_trip_at.store(nth, std::memory_order_relaxed);
  g_enabled.store(nth != 0, std::memory_order_release);
}

void arm_from_env() {
  const char* v = std::getenv("RTV_FAULT_INJECT");
  if (v == nullptr || v[0] == '\0') {
    disarm();
    return;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || n == 0) {
    disarm();
    return;
  }
  arm(n);
}

void disarm() { g_enabled.store(false, std::memory_order_release); }

bool enabled() { return g_enabled.load(std::memory_order_acquire); }

std::uint64_t checkpoints_passed() {
  return g_counter.load(std::memory_order_relaxed);
}

std::vector<std::string> sites_seen() {
  std::lock_guard<std::mutex> lock(g_sites_mutex);
  return g_sites;
}

bool trip(const char* site) {
  if (!g_enabled.load(std::memory_order_relaxed)) return false;
  record_site(site);
  const std::uint64_t n = g_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  return n == g_trip_at.load(std::memory_order_relaxed);
}

}  // namespace rtv::fault_inject
