#include "util/rng.hpp"

#include "util/error.hpp"

namespace rtv {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // xoshiro256** must not start in the all-zero state; SplitMix64 of any
  // seed never yields four zero words in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  RTV_REQUIRE(bound > 0, "Rng::below requires bound > 0");
  // Rejection sampling on the top bits to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  RTV_REQUIRE(lo <= hi, "Rng::range requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::size_t Rng::index(std::size_t size) {
  RTV_REQUIRE(size > 0, "Rng::index requires a non-empty container");
  return static_cast<std::size_t>(below(size));
}

}  // namespace rtv
