#pragma once
// Error handling primitives for the retiming-validity library.
//
// Policy (per C++ Core Guidelines E.2/E.3): programming-contract violations
// and malformed inputs raise exceptions derived from rtv::Error; internal
// invariants use RTV_CHECK which throws rtv::InternalError so that a broken
// invariant in a long experiment run is reported with location context
// instead of aborting the process.

#include <stdexcept>
#include <string>

namespace rtv {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad netlist, bad index, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Input text (netlist file, STG description) failed to parse.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A problem instance exceeds a documented capacity limit (e.g. exhaustive
/// STG extraction over more than kMaxStgLatches latches).
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& what) : Error(what) {}
};

/// A file could not be opened, read, or written (missing input, unwritable
/// output). Distinct from ParseError: the bytes never arrived, as opposed
/// to arriving malformed.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// An internal invariant failed; indicates a bug in this library.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace rtv

/// Invariant check that survives NDEBUG builds. Throws rtv::InternalError.
#define RTV_CHECK(expr)                                                   \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::rtv::detail::check_failed(#expr, __FILE__, __LINE__, "");         \
    }                                                                     \
  } while (false)

/// Invariant check with an explanatory message (streamed into a string).
#define RTV_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::rtv::detail::check_failed(#expr, __FILE__, __LINE__, (msg));      \
    }                                                                     \
  } while (false)

/// Precondition check: throws rtv::InvalidArgument on failure.
#define RTV_REQUIRE(expr, msg)                                            \
  do {                                                                    \
    if (!(expr)) {                                                        \
      throw ::rtv::InvalidArgument(std::string("precondition failed: ") + \
                                   (msg));                                \
    }                                                                     \
  } while (false)
