#include "io/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace rtv {

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw InvalidArgument(std::string("JSON value is not a ") + wanted);
}

/// Recursive-descent parser over a text buffer. Tracks the cursor so parse
/// errors carry the character offset.
class JsonParser {
 public:
  JsonParser(const std::string& text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("JSON parse error at offset " + std::to_string(pos_) +
                     ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_keyword("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_keyword("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_keyword("null")) return JsonValue(nullptr);
        fail("invalid literal");
      default: return JsonValue(parse_number());
    }
  }

  /// RAII depth guard: every nested object/array level passes through here,
  /// so the recursion depth is bounded by max_depth and deeply-nested
  /// adversarial documents fail with ParseError instead of blowing the
  /// stack.
  struct DepthGuard {
    explicit DepthGuard(JsonParser& p) : parser(p) {
      if (++parser.depth_ > parser.limits_.max_depth) {
        parser.fail("document nested deeper than " +
                    std::to_string(parser.limits_.max_depth) + " levels");
      }
    }
    ~DepthGuard() { --parser.depth_; }
    JsonParser& parser;
  };

  JsonValue parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    JsonValue::Object members;
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue(std::move(members));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    JsonValue::Array items;
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue(std::move(items));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code += static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        code += static_cast<unsigned>(c - 'A') + 10;
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: require the paired low surrogate.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail("unpaired surrogate in \\u escape");
      }
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate in \\u escape");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  double parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      const std::size_t first = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      return pos_ > first;
    };
    const std::size_t int_start = pos_;
    if (!digits()) fail("invalid number");
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      fail("leading zeros are not allowed");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("invalid number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) fail("invalid number exponent");
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || end != text_.data() + pos_) {
      fail("number out of range");
    }
    return value;
  }

  const std::string& text_;
  const JsonLimits& limits_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

/// Number rendering for write_json: integers in the double-exact range
/// print without a fraction so ids and counters round-trip byte-identical;
/// everything else uses max_digits10 shortest-unambiguous form.
void append_number(std::string& out, double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v >= -9007199254740992.0 && v <= 9007199254740992.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_json(std::string& out, const JsonValue& value) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    append_number(out, value.as_number());
  } else if (value.is_string()) {
    out += '"';
    out += json_escape(value.as_string());
    out += '"';
  } else if (value.is_array()) {
    out += '[';
    const auto& items = value.as_array();
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i != 0) out += ',';
      append_json(out, items[i]);
    }
    out += ']';
  } else {
    out += '{';
    const auto& members = value.as_object();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i != 0) out += ',';
      out += '"';
      out += json_escape(members[i].first);
      out += "\":";
      append_json(out, members[i].second);
    }
    out += '}';
  }
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) kind_error("bool");
  return std::get<bool>(value_);
}

double JsonValue::as_number() const {
  if (!is_number()) kind_error("number");
  return std::get<double>(value_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) kind_error("string");
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) kind_error("array");
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) kind_error("object");
  return std::get<Object>(value_);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue parse_json(const std::string& text, const JsonLimits& limits) {
  if (limits.max_bytes != 0 && text.size() > limits.max_bytes) {
    throw ParseError("JSON document of " + std::to_string(text.size()) +
                     " bytes exceeds the " +
                     std::to_string(limits.max_bytes) + "-byte limit");
  }
  return JsonParser(text, limits).parse_document();
}

std::string write_json(const JsonValue& value) {
  std::string out;
  append_json(out, value);
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace rtv
