#pragma once
// The .rnl text netlist format: a minimal line-oriented interchange format
// for this library's netlists (round-trip safe, human-diffable).
//
//   rnl 1
//   # comment
//   table <name> <inputs> <outputs>
//   row <minterm-bits> <output-bits>          (one per minterm, LSB first)
//   node <name> <kind> [<arity>|<width>|<table-name>]
//   wire <src-node>.<port> <dst-node>.<pin>
//
// Node declaration order is preserved, so PI/PO/latch vector layouts
// survive a round trip.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace rtv {

/// Serializes a netlist (live nodes only; the result is compact).
std::string write_rnl(const Netlist& netlist);

/// Parses the format written by write_rnl. Throws ParseError with a line
/// number on malformed input; the returned netlist passes check_valid().
/// With validate == false, syntactically well-formed but structurally
/// broken netlists are returned as-is, so `rtv lint` can report every
/// defect instead of the loader throwing on the first one.
Netlist read_rnl(const std::string& text, bool validate = true);

/// File helpers.
void save_rnl(const Netlist& netlist, const std::string& path);
Netlist load_rnl(const std::string& path, bool validate = true);

}  // namespace rtv
