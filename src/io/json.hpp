#pragma once
// Minimal JSON support for the tool-facing formats (retiming plan files,
// `rtv lint --json`, faultsim summaries). A small recursive-descent parser
// into an immutable DOM plus the escaping helper the writers share — no
// external dependency, full RFC 8259 value grammar except \u surrogate
// pairs (accepted, transcoded to UTF-8).

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace rtv {

/// One parsed JSON value. Object member order is preserved.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;
  explicit JsonValue(std::nullptr_t) {}
  explicit JsonValue(bool v) : value_(v) {}
  explicit JsonValue(double v) : value_(v) {}
  explicit JsonValue(std::string v) : value_(std::move(v)) {}
  explicit JsonValue(Array v) : value_(std::move(v)) {}
  explicit JsonValue(Object v) : value_(std::move(v)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; throw InvalidArgument on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* find(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_ = nullptr;
};

/// Caps on a single parsed document, for parsers facing untrusted input
/// (the serve wire protocol reads these from arbitrary clients). Defaults
/// are safe for trusted tool files: a depth far below stack exhaustion and
/// no byte cap.
struct JsonLimits {
  /// Maximum container nesting depth (objects + arrays). The parser is
  /// recursive-descent, so this bounds stack use; exceeding it raises
  /// ParseError, never a stack overflow.
  std::size_t max_depth = 256;
  /// Maximum document size in bytes; 0 means unlimited. Checked before
  /// parsing starts so an oversized payload is rejected in O(1).
  std::size_t max_bytes = 0;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Throws ParseError with a character offset on malformed input, and on
/// documents exceeding `limits`.
JsonValue parse_json(const std::string& text, const JsonLimits& limits = {});

/// Serializes a JsonValue compactly (no whitespace, members in stored
/// order). write_json(parse_json(x)) is a fixed point of the serializer:
/// parsing its output and re-serializing yields the identical string.
std::string write_json(const JsonValue& value);

/// Escapes a string for embedding between double quotes in JSON output.
std::string json_escape(const std::string& s);

}  // namespace rtv
