#include "io/vcd.hpp"

#include <fstream>
#include <sstream>

#include "sim/binary_sim.hpp"
#include "sim/cls_sim.hpp"

namespace rtv {

namespace {

/// VCD identifier codes: printable ASCII starting at '!'.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

struct Channel {
  std::string name;
  std::string id;
  char last = '?';  // emit only on change
};

class VcdBuilder {
 public:
  VcdBuilder(const Netlist& netlist, const std::string& top_name)
      : netlist_(netlist) {
    os_ << "$timescale 1ns $end\n$scope module " << top_name << " $end\n";
    std::size_t index = 0;
    const auto add = [&](const std::vector<NodeId>& ids, const char* prefix) {
      for (const NodeId id : ids) {
        Channel c;
        c.name = std::string(prefix) + netlist.name(id);
        c.id = vcd_id(index++);
        os_ << "$var wire 1 " << c.id << " " << c.name << " $end\n";
        channels_.push_back(std::move(c));
      }
    };
    add(netlist.primary_inputs(), "pi_");
    add(netlist.primary_outputs(), "po_");
    add(netlist.latches(), "q_");
    os_ << "$upscope $end\n$enddefinitions $end\n";
  }

  /// One clock cycle's values, concatenated PI | PO | latch as chars
  /// ('0', '1', 'x').
  void sample(std::size_t cycle, const std::string& values) {
    RTV_CHECK(values.size() == channels_.size());
    os_ << "#" << cycle * 10 << "\n";
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      if (values[i] == channels_[i].last) continue;
      channels_[i].last = values[i];
      os_ << values[i] << channels_[i].id << "\n";
    }
  }

  std::string str(std::size_t final_cycle) {
    os_ << "#" << final_cycle * 10 << "\n";
    return os_.str();
  }

 private:
  const Netlist& netlist_;
  std::ostringstream os_;
  std::vector<Channel> channels_;
};

char bit_char(std::uint8_t b) { return b != 0 ? '1' : '0'; }

}  // namespace

std::string simulate_to_vcd(const Netlist& netlist, const Bits& initial_state,
                            const BitsSeq& inputs,
                            const std::string& top_name) {
  VcdBuilder vcd(netlist, top_name);
  BinarySimulator sim(netlist);
  sim.set_state(initial_state);
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    const Bits state = sim.state();
    const Bits outs = sim.step(inputs[t]);
    std::string row;
    for (const std::uint8_t b : inputs[t]) row.push_back(bit_char(b));
    for (const std::uint8_t b : outs) row.push_back(bit_char(b));
    for (const std::uint8_t b : state) row.push_back(bit_char(b));
    vcd.sample(t, row);
  }
  return vcd.str(inputs.size());
}

std::string cls_simulate_to_vcd(const Netlist& netlist, const TritsSeq& inputs,
                                const std::string& top_name) {
  VcdBuilder vcd(netlist, top_name);
  ClsSimulator sim(netlist);
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    const Trits state = sim.state();
    const Trits outs = sim.step(inputs[t]);
    std::string row;
    const auto push = [&](const Trits& v) {
      for (const Trit tr : v) {
        row.push_back(tr == Trit::kX ? 'x' : to_char(tr));
      }
    };
    push(inputs[t]);
    push(outs);
    push(state);
    vcd.sample(t, row);
  }
  return vcd.str(inputs.size());
}

void save_vcd(const std::string& vcd_text, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw IoError("cannot open '" + path + "' for writing");
  f << vcd_text;
  if (!f) throw IoError("write to '" + path + "' failed");
}

}  // namespace rtv
