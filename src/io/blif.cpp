#include "io/blif.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/bits.hpp"

namespace rtv {

namespace {

[[noreturn]] void blif_fail(std::size_t line, const std::string& what) {
  throw ParseError("blif line " + std::to_string(line) + ": " + what);
}

std::vector<std::string> tokenize(const std::string& raw) {
  std::vector<std::string> tokens;
  std::istringstream is(raw);
  std::string t;
  while (is >> t) tokens.push_back(t);
  return tokens;
}

/// One .names block being accumulated.
struct NamesBlock {
  std::vector<std::string> signals;  // inputs..., output last
  std::vector<std::pair<std::string, char>> cover;  // (input cube, out)
  std::size_t line = 0;
};

/// Expands a cover into a complete single-output truth table.
TruthTable cover_to_table(const NamesBlock& block) {
  const unsigned inputs = static_cast<unsigned>(block.signals.size() - 1);
  if (inputs > kMaxTableInputs) {
    blif_fail(block.line, ".names with too many inputs");
  }
  // BLIF covers are either all on-set (output '1') or all off-set ('0');
  // the function defaults to the complement value elsewhere.
  bool has1 = false, has0 = false;
  for (const auto& [cube, out] : block.cover) {
    (out == '1' ? has1 : has0) = true;
  }
  if (has1 && has0) blif_fail(block.line, "mixed on/off-set cover");
  const bool cover_value = has1 || block.cover.empty();
  const bool default_value = !cover_value;

  TruthTable table(inputs, 1);
  for (std::uint64_t x = 0; x < pow2(inputs); ++x) {
    table.set_row(x, default_value ? 1 : 0);
  }
  for (const auto& [cube, out] : block.cover) {
    (void)out;
    if (cube.size() != inputs) blif_fail(block.line, "cube width mismatch");
    // Expand don't-cares.
    std::vector<unsigned> dashes;
    std::uint64_t base = 0;
    for (unsigned i = 0; i < inputs; ++i) {
      if (cube[i] == '1') {
        base |= (1ULL << i);
      } else if (cube[i] == '-') {
        dashes.push_back(i);
      } else if (cube[i] != '0') {
        blif_fail(block.line, std::string("bad cube character '") + cube[i] + "'");
      }
    }
    for (std::uint64_t c = 0; c < pow2(static_cast<unsigned>(dashes.size()));
         ++c) {
      std::uint64_t x = base;
      for (std::size_t j = 0; j < dashes.size(); ++j) {
        if (get_bit(c, static_cast<unsigned>(j))) x |= (1ULL << dashes[j]);
      }
      table.set_row(x, cover_value ? 1 : 0);
    }
  }
  return table;
}

/// Signal-name bookkeeping during parsing: every named signal becomes the
/// output port of some node; consumers connect to it (implicit fanout,
/// junctionized at the end).
class SignalTable {
 public:
  explicit SignalTable(Netlist& netlist) : netlist_(netlist) {}

  void define(std::size_t line, const std::string& name, PortRef port) {
    if (!ports_.emplace(name, port).second) {
      blif_fail(line, "signal '" + name + "' driven twice");
    }
  }

  PortRef lookup(std::size_t line, const std::string& name) const {
    const auto it = ports_.find(name);
    if (it == ports_.end()) {
      blif_fail(line, "undriven signal '" + name + "'");
    }
    return it->second;
  }

  bool defined(const std::string& name) const {
    return ports_.count(name) != 0;
  }

 private:
  Netlist& netlist_;
  std::unordered_map<std::string, PortRef> ports_;
};

}  // namespace

BlifDesign read_blif(const std::string& text) {
  BlifDesign design;
  Netlist& n = design.netlist;

  // First pass: join continuation lines (trailing '\') and strip comments.
  std::vector<std::pair<std::size_t, std::string>> lines;
  {
    std::istringstream is(text);
    std::string raw;
    std::size_t line_no = 0;
    std::string pending;
    std::size_t pending_line = 0;
    while (std::getline(is, raw)) {
      ++line_no;
      const std::size_t hash = raw.find('#');
      if (hash != std::string::npos) raw.resize(hash);
      const bool continues =
          !raw.empty() && raw.back() == '\\';
      if (continues) raw.pop_back();
      if (pending.empty()) pending_line = line_no;
      pending += raw;
      if (continues) {
        pending += ' ';
        continue;
      }
      if (!pending.empty()) lines.emplace_back(pending_line, pending);
      pending.clear();
    }
    if (!pending.empty()) lines.emplace_back(pending_line, pending);
  }

  SignalTable signals(n);
  std::vector<std::string> input_names, output_names;
  struct LatchDecl {
    std::string in, out;
    std::optional<bool> init;
    NodeId node;
    std::size_t line;
  };
  std::vector<LatchDecl> latches;
  std::vector<NamesBlock> names_blocks;
  bool saw_model = false, saw_end = false;

  NamesBlock* open_block = nullptr;
  for (const auto& [line_no, content] : lines) {
    const auto tokens = tokenize(content);
    if (tokens.empty()) continue;
    const std::string& head = tokens[0];
    if (head[0] != '.') {
      // Cover row of the open .names block.
      if (open_block == nullptr) blif_fail(line_no, "cover row outside .names");
      if (open_block->signals.size() == 1) {
        // Constant: single token '0'/'1'.
        if (tokens.size() != 1 || (tokens[0] != "0" && tokens[0] != "1")) {
          blif_fail(line_no, "bad constant cover");
        }
        open_block->cover.emplace_back("", tokens[0][0]);
      } else {
        if (tokens.size() != 2 || tokens[1].size() != 1) {
          blif_fail(line_no, "cover row needs <cube> <value>");
        }
        open_block->cover.emplace_back(tokens[0], tokens[1][0]);
      }
      continue;
    }
    open_block = nullptr;
    if (head == ".model") {
      if (saw_model) blif_fail(line_no, "multiple .model");
      saw_model = true;
      if (tokens.size() > 1) design.model_name = tokens[1];
    } else if (head == ".inputs") {
      input_names.insert(input_names.end(), tokens.begin() + 1, tokens.end());
    } else if (head == ".outputs") {
      output_names.insert(output_names.end(), tokens.begin() + 1,
                          tokens.end());
    } else if (head == ".latch") {
      if (tokens.size() < 3) blif_fail(line_no, ".latch needs <in> <out>");
      LatchDecl decl;
      decl.in = tokens[1];
      decl.out = tokens[2];
      decl.line = line_no;
      // Optional [<type> <control>] [<init>]: the last token, if it is a
      // single digit, is the init value.
      if (tokens.size() > 3) {
        const std::string& last = tokens.back();
        if (last == "0") decl.init = false;
        if (last == "1") decl.init = true;
        // "2"/"3" and clock specs: reset-free reading, init stays nullopt.
      }
      latches.push_back(std::move(decl));
    } else if (head == ".names") {
      names_blocks.push_back(NamesBlock{
          std::vector<std::string>(tokens.begin() + 1, tokens.end()),
          {},
          line_no});
      if (names_blocks.back().signals.empty()) {
        blif_fail(line_no, ".names needs at least an output");
      }
      open_block = &names_blocks.back();
    } else if (head == ".end") {
      saw_end = true;
    } else {
      blif_fail(line_no, "unsupported directive '" + head + "'");
    }
  }
  if (!saw_model) blif_fail(0, "missing .model");
  (void)saw_end;  // tolerated if absent

  // Create nodes: inputs, latches, then .names cells (as table cells or
  // primitives); wire fanins afterwards so order does not matter.
  for (const std::string& name : input_names) {
    signals.define(0, name, PortRef(n.add_input("pi_" + name), 0));
  }
  for (LatchDecl& decl : latches) {
    decl.node = n.add_latch("lat_" + decl.out);
    signals.define(decl.line, decl.out, PortRef(decl.node, 0));
    design.latch_init.emplace(decl.node.value, decl.init);
  }
  std::vector<std::pair<const NamesBlock*, NodeId>> cells;
  for (const NamesBlock& block : names_blocks) {
    const TruthTable table = cover_to_table(block);
    const NodeId cell =
        n.add_table_cell(n.add_table(table), "fn_" + block.signals.back());
    cells.emplace_back(&block, cell);
    signals.define(block.line, block.signals.back(), PortRef(cell, 0));
  }
  // Wire cell fanins, latch data pins, and primary outputs.
  for (const auto& [block, cell] : cells) {
    for (std::size_t i = 0; i + 1 < block->signals.size(); ++i) {
      n.connect(signals.lookup(block->line, block->signals[i]),
                PinRef(cell, static_cast<std::uint32_t>(i)));
    }
  }
  for (const LatchDecl& decl : latches) {
    n.connect(signals.lookup(decl.line, decl.in), PinRef(decl.node, 0));
  }
  for (const std::string& name : output_names) {
    const NodeId po = n.add_output("po_" + name);
    n.connect(signals.lookup(0, name), PinRef(po, 0));
  }

  n.junctionize();
  try {
    n.check_valid(true);
  } catch (const Error& e) {
    throw ParseError(std::string("blif: ") + e.what());
  }
  return design;
}

std::string write_blif(const Netlist& netlist, const std::string& model_name) {
  const Netlist n = netlist.compacted();
  std::ostringstream os;
  os << ".model " << model_name << "\n";

  // Signal name of every port: node name for port 0, name_pN otherwise.
  const auto signal = [&](PortRef p) {
    std::string s = n.name(p.node);
    if (p.port != 0) s += "_p" + std::to_string(p.port);
    return s;
  };
  // Junctions are transparent in BLIF: resolve through them.
  const auto resolve = [&](PortRef p) {
    while (n.kind(p.node) == CellKind::kJunc) {
      p = n.driver(PinRef(p.node, 0));
    }
    return p;
  };

  os << ".inputs";
  for (const NodeId id : n.primary_inputs()) os << " " << n.name(id);
  os << "\n.outputs";
  for (const NodeId id : n.primary_outputs()) os << " " << n.name(id);
  os << "\n";

  for (const NodeId id : n.latches()) {
    os << ".latch " << signal(resolve(n.driver(PinRef(id, 0)))) << " "
       << n.name(id) << " 3\n";
  }
  // Primary outputs are aliases: emit a buffer cover.
  for (const NodeId id : n.primary_outputs()) {
    os << ".names " << signal(resolve(n.driver(PinRef(id, 0)))) << " "
       << n.name(id) << "\n1 1\n";
  }
  for (const NodeId id : n.live_nodes()) {
    const CellKind k = n.kind(id);
    if (!is_combinational(k) || k == CellKind::kJunc) continue;
    const TruthTable table = n.cell_function(id);
    for (std::uint32_t port = 0; port < n.num_ports(id); ++port) {
      os << ".names";
      for (std::uint32_t pin = 0; pin < n.num_pins(id); ++pin) {
        os << " " << signal(resolve(n.driver(PinRef(id, pin))));
      }
      os << " " << signal(PortRef(id, port)) << "\n";
      for (std::uint64_t x = 0; x < pow2(table.num_inputs()); ++x) {
        if (!table.eval_bit(x, port)) continue;
        for (unsigned i = 0; i < table.num_inputs(); ++i) {
          os << (get_bit(x, i) ? '1' : '0');
        }
        if (table.num_inputs() > 0) os << " ";
        os << "1\n";
      }
    }
  }
  os << ".end\n";
  return os.str();
}

void save_blif(const Netlist& netlist, const std::string& path,
               const std::string& model_name) {
  std::ofstream f(path);
  if (!f) throw IoError("cannot open '" + path + "' for writing");
  f << write_blif(netlist, model_name);
  if (!f) throw IoError("write to '" + path + "' failed");
}

BlifDesign load_blif(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw IoError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return read_blif(buffer.str());
}

}  // namespace rtv
