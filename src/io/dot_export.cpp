#include "io/dot_export.hpp"

#include <sstream>

namespace rtv {

std::string netlist_to_dot(const Netlist& netlist) {
  std::ostringstream os;
  os << "digraph netlist {\n  rankdir=LR;\n";
  for (const NodeId id : netlist.live_nodes()) {
    const Node& n = netlist.node(id);
    const char* shape = "box";
    switch (n.kind) {
      case CellKind::kInput:
      case CellKind::kOutput:
        shape = "plaintext";
        break;
      case CellKind::kLatch:
        shape = "doublecircle";
        break;
      case CellKind::kJunc:
        shape = "diamond";
        break;
      default:
        break;
    }
    os << "  n" << id.value << " [label=\"" << n.name << "\\n"
       << cell_kind_name(n.kind) << "\" shape=" << shape << "];\n";
  }
  for (const NodeId id : netlist.live_nodes()) {
    const Node& n = netlist.node(id);
    for (std::uint32_t port = 0; port < n.num_ports(); ++port) {
      for (const PinRef& sink : n.fanout[port]) {
        os << "  n" << id.value << " -> n" << sink.node.value;
        if (n.num_ports() > 1 || netlist.num_pins(sink.node) > 1) {
          os << " [label=\"" << port << ">" << sink.pin << "\"]";
        }
        os << ";\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

std::string stg_to_dot(const Stg& stg) {
  std::ostringstream os;
  os << "digraph stg {\n";
  for (std::uint64_t s = 0; s < stg.num_states(); ++s) {
    os << "  s" << s << " [shape=circle];\n";
  }
  for (std::uint64_t s = 0; s < stg.num_states(); ++s) {
    for (std::uint64_t a = 0; a < stg.num_inputs(); ++a) {
      os << "  s" << s << " -> s" << stg.next_state(s, a) << " [label=\"" << a
         << "/" << stg.output(s, a) << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace rtv
