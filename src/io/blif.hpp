#pragma once
// Berkeley Logic Interchange Format (BLIF) interop — the netlist format of
// SIS-era tools (the paper's own ecosystem: [SR94]'s retiming ran inside
// SIS on BLIF inputs).
//
// Supported subset:
//   .model/.inputs/.outputs/.end
//   .names  — single-output cover; converted to a table cell (or to the
//             matching primitive gate when the function is one). Covers
//             with '-' (don't care) inputs are expanded.
//   .latch  — `.latch <in> <out> [<type> <control>] [<init>]`; the init
//             value is parsed and returned out-of-band (this library's
//             latches are reset-free by design — Section 1 of the paper).
//   .exdc and unsupported directives raise ParseError.
//
// Writing emits .names covers from each cell's truth table (one .names per
// output for multi-output cells) and reset-free .latch lines with init 3
// ("unknown"), which is exactly the paper's model.

#include <optional>
#include <string>
#include <unordered_map>

#include "netlist/netlist.hpp"
#include "sim/vectors.hpp"

namespace rtv {

struct BlifDesign {
  Netlist netlist;
  std::string model_name;
  /// Parsed `.latch` init values by latch node; 0/1 recorded, 2 ("don't
  /// care") and 3 ("unknown") map to nullopt — the reset-free reading.
  std::unordered_map<std::uint32_t, std::optional<bool>> latch_init;
};

/// Parses the BLIF subset above. Throws ParseError with a line number.
BlifDesign read_blif(const std::string& text);

/// Serializes a netlist as BLIF. Junctions are transparent (BLIF has
/// implicit fanout); table cells become .names covers.
std::string write_blif(const Netlist& netlist,
                       const std::string& model_name = "rtv");

void save_blif(const Netlist& netlist, const std::string& path,
               const std::string& model_name = "rtv");
BlifDesign load_blif(const std::string& path);

}  // namespace rtv
