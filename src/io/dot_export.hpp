#pragma once
// Graphviz export for netlists and STGs (debugging / documentation aid).

#include <string>

#include "netlist/netlist.hpp"
#include "stg/stg.hpp"

namespace rtv {

/// DOT digraph of a netlist: boxes for gates, double circles for latches,
/// diamonds for junctions, plaintext for PIs/POs.
std::string netlist_to_dot(const Netlist& netlist);

/// DOT digraph of an STG: one node per state, edges labeled in/out.
/// Intended for small machines (the paper's Figure 2 style).
std::string stg_to_dot(const Stg& stg);

}  // namespace rtv
