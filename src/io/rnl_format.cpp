#include "io/rnl_format.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/bits.hpp"

namespace rtv {

std::string write_rnl(const Netlist& netlist) {
  // Work on a compacted copy so names and order are dense and stable.
  const Netlist n = netlist.compacted();
  std::ostringstream os;
  os << "rnl 1\n";

  // Tables referenced by live cells.
  std::unordered_map<std::uint32_t, std::string> table_names;
  for (const NodeId id : n.live_nodes()) {
    if (n.kind(id) != CellKind::kTable) continue;
    const TableId t = n.node(id).table;
    if (table_names.count(t.value) != 0) continue;
    const std::string name = "t" + std::to_string(table_names.size());
    table_names.emplace(t.value, name);
    const TruthTable& tt = n.table(t);
    os << "table " << name << " " << tt.num_inputs() << " "
       << tt.num_outputs() << "\n";
    for (std::uint64_t x = 0; x < pow2(tt.num_inputs()); ++x) {
      os << "row ";
      for (unsigned i = 0; i < tt.num_inputs(); ++i) {
        os << (get_bit(x, i) ? '1' : '0');
      }
      if (tt.num_inputs() == 0) os << '-';
      os << " ";
      const std::uint64_t row = tt.eval_row(x);
      for (unsigned j = 0; j < tt.num_outputs(); ++j) {
        os << (get_bit(row, j) ? '1' : '0');
      }
      os << "\n";
    }
  }

  for (const NodeId id : n.live_nodes()) {
    const Node& node = n.node(id);
    os << "node " << node.name << " " << cell_kind_name(node.kind);
    if (is_variadic_gate(node.kind)) {
      os << " " << node.num_pins();
    } else if (node.kind == CellKind::kJunc) {
      os << " " << node.num_ports();
    } else if (node.kind == CellKind::kTable) {
      os << " " << table_names.at(node.table.value);
    }
    os << "\n";
  }
  for (const NodeId id : n.live_nodes()) {
    const Node& node = n.node(id);
    for (std::uint32_t pin = 0; pin < node.num_pins(); ++pin) {
      const PortRef drv = node.fanin[pin];
      if (!drv.valid()) continue;
      os << "wire " << n.name(drv.node) << "." << drv.port << " "
         << node.name << "." << pin << "\n";
    }
  }
  return os.str();
}

namespace {

[[noreturn]] void parse_fail(std::size_t line, const std::string& what) {
  throw ParseError("rnl line " + std::to_string(line) + ": " + what);
}

/// Splits "name.index", validating both halves.
std::pair<std::string, std::uint32_t> split_ref(std::size_t line,
                                                const std::string& token) {
  const std::size_t dot = token.rfind('.');
  if (dot == std::string::npos || dot + 1 >= token.size()) {
    parse_fail(line, "expected <name>.<index>, got '" + token + "'");
  }
  const std::string name = token.substr(0, dot);
  std::uint32_t index = 0;
  for (std::size_t i = dot + 1; i < token.size(); ++i) {
    const char c = token[i];
    if (c < '0' || c > '9') parse_fail(line, "bad index in '" + token + "'");
    index = index * 10 + static_cast<std::uint32_t>(c - '0');
  }
  return {name, index};
}

}  // namespace

Netlist read_rnl(const std::string& text, bool validate) {
  Netlist n;
  std::unordered_map<std::string, NodeId> nodes_by_name;
  std::unordered_map<std::string, TableId> tables_by_name;

  std::istringstream is(text);
  std::string raw;
  std::size_t line_no = 0;
  bool saw_header = false;

  // Pending table being read row by row.
  std::string pending_table_name;
  unsigned pending_inputs = 0, pending_outputs = 0;
  std::vector<std::uint64_t> pending_rows;
  std::uint64_t pending_expected = 0;

  const auto finish_table = [&](std::size_t line) {
    if (pending_table_name.empty()) return;
    if (pending_rows.size() != pending_expected) {
      parse_fail(line, "table '" + pending_table_name + "' has " +
                           std::to_string(pending_rows.size()) + " rows, expected " +
                           std::to_string(pending_expected));
    }
    tables_by_name.emplace(
        pending_table_name,
        n.add_table(TruthTable(pending_inputs, pending_outputs,
                               std::move(pending_rows))));
    pending_table_name.clear();
    pending_rows = {};
  };

  while (std::getline(is, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream ls(raw);
    std::string cmd;
    if (!(ls >> cmd)) continue;

    if (cmd == "rnl") {
      int version = 0;
      if (!(ls >> version) || version != 1) parse_fail(line_no, "bad version");
      saw_header = true;
      continue;
    }
    if (!saw_header) parse_fail(line_no, "missing 'rnl 1' header");

    if (cmd == "table") {
      finish_table(line_no);
      unsigned ins = 0, outs = 0;
      if (!(ls >> pending_table_name >> ins >> outs)) {
        parse_fail(line_no, "table needs <name> <inputs> <outputs>");
      }
      if (tables_by_name.count(pending_table_name) != 0) {
        parse_fail(line_no, "duplicate table name");
      }
      pending_inputs = ins;
      pending_outputs = outs;
      pending_expected = pow2(ins);
      pending_rows.clear();
      pending_rows.reserve(pending_expected);
    } else if (cmd == "row") {
      if (pending_table_name.empty()) parse_fail(line_no, "row outside table");
      std::string in_bits, out_bits;
      if (!(ls >> in_bits >> out_bits)) {
        parse_fail(line_no, "row needs <inputs> <outputs>");
      }
      // Rows must appear in minterm order; the input bits are a checksum.
      const std::uint64_t x = pending_rows.size();
      if (pending_inputs > 0) {
        if (in_bits.size() != pending_inputs) {
          parse_fail(line_no, "row input width mismatch");
        }
        for (unsigned i = 0; i < pending_inputs; ++i) {
          if ((in_bits[i] == '1') != get_bit(x, i)) {
            parse_fail(line_no, "rows out of minterm order");
          }
        }
      }
      if (out_bits.size() != pending_outputs) {
        parse_fail(line_no, "row output width mismatch");
      }
      std::uint64_t row = 0;
      for (unsigned j = 0; j < pending_outputs; ++j) {
        if (out_bits[j] == '1') {
          row |= (1ULL << j);
        } else if (out_bits[j] != '0') {
          parse_fail(line_no, "bad output bit");
        }
      }
      pending_rows.push_back(row);
    } else if (cmd == "node") {
      finish_table(line_no);
      std::string name, kind_name, param;
      if (!(ls >> name >> kind_name)) {
        parse_fail(line_no, "node needs <name> <kind>");
      }
      if (nodes_by_name.count(name) != 0) {
        parse_fail(line_no, "duplicate node name '" + name + "'");
      }
      ls >> param;
      const CellKind kind = cell_kind_from_name(kind_name);
      NodeId id;
      try {
        switch (kind) {
          case CellKind::kInput:
            id = n.add_input(name);
            break;
          case CellKind::kOutput:
            id = n.add_output(name);
            break;
          case CellKind::kConst0:
            id = n.add_const(false, name);
            break;
          case CellKind::kConst1:
            id = n.add_const(true, name);
            break;
          case CellKind::kLatch:
            id = n.add_latch(name);
            break;
          case CellKind::kJunc:
            id = n.add_junc(static_cast<unsigned>(std::stoul(param)), name);
            break;
          case CellKind::kTable: {
            const auto it = tables_by_name.find(param);
            if (it == tables_by_name.end()) {
              parse_fail(line_no, "unknown table '" + param + "'");
            }
            id = n.add_table_cell(it->second, name);
            break;
          }
          default:
            id = n.add_gate(
                kind,
                param.empty() ? 0 : static_cast<unsigned>(std::stoul(param)),
                name);
            break;
        }
      } catch (const ParseError&) {
        throw;
      } catch (const Error& e) {
        parse_fail(line_no, e.what());
      } catch (const std::exception&) {
        parse_fail(line_no, "bad node parameter '" + param + "'");
      }
      nodes_by_name.emplace(name, id);
    } else if (cmd == "wire") {
      finish_table(line_no);
      std::string src, dst;
      if (!(ls >> src >> dst)) parse_fail(line_no, "wire needs <src> <dst>");
      const auto [src_name, port] = split_ref(line_no, src);
      const auto [dst_name, pin] = split_ref(line_no, dst);
      const auto src_it = nodes_by_name.find(src_name);
      const auto dst_it = nodes_by_name.find(dst_name);
      if (src_it == nodes_by_name.end()) {
        parse_fail(line_no, "unknown node '" + src_name + "'");
      }
      if (dst_it == nodes_by_name.end()) {
        parse_fail(line_no, "unknown node '" + dst_name + "'");
      }
      try {
        n.connect(PortRef(src_it->second, port), PinRef(dst_it->second, pin));
      } catch (const Error& e) {
        parse_fail(line_no, e.what());
      }
    } else {
      parse_fail(line_no, "unknown directive '" + cmd + "'");
    }
  }
  finish_table(line_no);
  if (!saw_header) parse_fail(0, "empty input");
  if (validate) {
    try {
      n.check_valid();
    } catch (const Error& e) {
      throw ParseError(std::string("rnl: ") + e.what());
    }
  }
  return n;
}

void save_rnl(const Netlist& netlist, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw IoError("cannot open '" + path + "' for writing");
  f << write_rnl(netlist);
  if (!f) throw IoError("write to '" + path + "' failed");
}

Netlist load_rnl(const std::string& path, bool validate) {
  std::ifstream f(path);
  if (!f) throw IoError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return read_rnl(buffer.str(), validate);
}

}  // namespace rtv
