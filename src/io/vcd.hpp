#pragma once
// Value-change-dump (VCD) trace export: run a simulation and emit a
// waveform viewable in GTKWave & friends. Both two-valued and conservative
// three-valued traces are supported — VCD's 'x' literal renders the CLS's
// unknown values directly, which makes the paper's Section-5 story visible
// on a waveform: retime the design and the CLS trace does not change.

#include <string>

#include "netlist/netlist.hpp"
#include "sim/vectors.hpp"

namespace rtv {

/// Simulates `inputs` from `initial_state` with the two-valued simulator
/// and returns a VCD document tracing PIs, POs and latches (one cycle per
/// timestep, #10 per clock).
std::string simulate_to_vcd(const Netlist& netlist, const Bits& initial_state,
                            const BitsSeq& inputs,
                            const std::string& top_name = "rtv");

/// Same with the CLS from the all-X power-up state; unknown values appear
/// as 'x' in the waveform.
std::string cls_simulate_to_vcd(const Netlist& netlist, const TritsSeq& inputs,
                                const std::string& top_name = "rtv");

void save_vcd(const std::string& vcd_text, const std::string& path);

}  // namespace rtv
