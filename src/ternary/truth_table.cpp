#include "ternary/truth_table.hpp"

#include <sstream>
#include <string>

#include "util/bits.hpp"
#include "util/rng.hpp"

namespace rtv {

TruthTable::TruthTable(unsigned num_inputs, unsigned num_outputs)
    : num_inputs_(num_inputs),
      num_outputs_(num_outputs),
      output_mask_(low_mask(num_outputs)),
      rows_(pow2(num_inputs), 0) {
  RTV_REQUIRE(num_inputs <= kMaxTableInputs, "too many truth-table inputs");
  RTV_REQUIRE(num_outputs >= 1 && num_outputs <= kMaxTableOutputs,
              "truth-table output count out of range");
}

TruthTable::TruthTable(unsigned num_inputs, unsigned num_outputs,
                       std::vector<std::uint64_t> rows)
    : TruthTable(num_inputs, num_outputs) {
  RTV_REQUIRE(rows.size() == pow2(num_inputs),
              "rows.size() must equal 2^num_inputs");
  for (auto& r : rows) r &= output_mask_;
  rows_ = std::move(rows);
}

std::uint64_t TruthTable::eval_row(std::uint64_t x) const {
  RTV_REQUIRE(x < rows_.size(), "truth-table minterm out of range");
  return rows_[x];
}

void TruthTable::set_row(std::uint64_t x, std::uint64_t outputs) {
  RTV_REQUIRE(x < rows_.size(), "truth-table minterm out of range");
  rows_[x] = outputs & output_mask_;
}

bool TruthTable::eval_bit(std::uint64_t x, unsigned output) const {
  RTV_REQUIRE(output < num_outputs_, "truth-table output index out of range");
  return get_bit(eval_row(x), output);
}

std::vector<Trit> TruthTable::eval_ternary(
    const std::vector<Trit>& inputs) const {
  RTV_REQUIRE(inputs.size() == num_inputs_,
              "ternary eval arity mismatch");
  // Partition inputs into definite bits and X positions, then fold the
  // output word over every completion of the X positions. ones/zeros
  // accumulate, per output bit, whether any completion produced a 1 / a 0.
  std::uint64_t base = 0;
  std::vector<unsigned> x_positions;
  for (unsigned i = 0; i < num_inputs_; ++i) {
    if (inputs[i] == Trit::kX) {
      x_positions.push_back(i);
    } else if (inputs[i] == Trit::kOne) {
      base |= (1ULL << i);
    }
  }
  std::uint64_t ones = 0;
  std::uint64_t zeros = 0;
  const std::uint64_t completions = pow2(static_cast<unsigned>(x_positions.size()));
  for (std::uint64_t c = 0; c < completions; ++c) {
    std::uint64_t x = base;
    for (std::size_t j = 0; j < x_positions.size(); ++j) {
      if (get_bit(c, static_cast<unsigned>(j))) x |= (1ULL << x_positions[j]);
    }
    const std::uint64_t out = rows_[x];
    ones |= out;
    zeros |= ~out & output_mask_;
  }
  std::vector<Trit> result(num_outputs_);
  for (unsigned j = 0; j < num_outputs_; ++j) {
    const bool saw1 = get_bit(ones, j);
    const bool saw0 = get_bit(zeros, j);
    result[j] = (saw1 && saw0) ? Trit::kX : to_trit(saw1);
  }
  return result;
}

std::vector<bool> TruthTable::reachable_output_vectors() const {
  RTV_REQUIRE(num_outputs_ <= 24,
              "reachable_output_vectors requires <= 24 outputs");
  std::vector<bool> reachable(pow2(num_outputs_), false);
  for (std::uint64_t row : rows_) reachable[row] = true;
  return reachable;
}

bool TruthTable::is_justifiable() const {
  if (num_outputs_ > 24) {
    // More outputs than 2^num_inputs rows can ever cover.
    if (num_outputs_ > num_inputs_) return false;
    throw CapacityError("is_justifiable: output arity beyond bitmap capacity (" +
                        std::to_string(num_outputs_) + " outputs, cap 24)");
  }
  // Pigeonhole shortcut: 2^n rows cannot cover 2^m vectors when m > n.
  if (num_outputs_ > num_inputs_) return false;
  const auto reachable = reachable_output_vectors();
  for (bool r : reachable) {
    if (!r) return false;
  }
  return true;
}

std::optional<std::uint64_t> TruthTable::justify(std::uint64_t outputs) const {
  outputs &= output_mask_;
  for (std::uint64_t x = 0; x < rows_.size(); ++x) {
    if (rows_[x] == outputs) return x;
  }
  return std::nullopt;
}

bool TruthTable::preserves_all_x() const {
  const std::vector<Trit> all_x(num_inputs_, Trit::kX);
  for (Trit t : eval_ternary(all_x)) {
    if (t != Trit::kX) return false;
  }
  return true;
}

TruthTable TruthTable::const0() { return TruthTable(0, 1, {0}); }

TruthTable TruthTable::const1() { return TruthTable(0, 1, {1}); }

TruthTable TruthTable::buf() { return TruthTable(1, 1, {0, 1}); }

TruthTable TruthTable::inv() { return TruthTable(1, 1, {1, 0}); }

namespace {
TruthTable reduce_gate(unsigned fanin, bool(*fold)(std::uint64_t x, unsigned n),
                       bool invert) {
  RTV_REQUIRE(fanin >= 1, "gate fanin must be >= 1");
  TruthTable t(fanin, 1);
  for (std::uint64_t x = 0; x < pow2(fanin); ++x) {
    const bool v = fold(x, fanin) != invert;
    t.set_row(x, v ? 1 : 0);
  }
  return t;
}
bool fold_and(std::uint64_t x, unsigned n) { return x == low_mask(n); }
bool fold_or(std::uint64_t x, unsigned n) {
  (void)n;
  return x != 0;
}
bool fold_xor(std::uint64_t x, unsigned n) {
  (void)n;
  return (popcount64(x) & 1) != 0;
}
}  // namespace

TruthTable TruthTable::and_gate(unsigned fanin) {
  return reduce_gate(fanin, fold_and, false);
}
TruthTable TruthTable::or_gate(unsigned fanin) {
  return reduce_gate(fanin, fold_or, false);
}
TruthTable TruthTable::nand_gate(unsigned fanin) {
  return reduce_gate(fanin, fold_and, true);
}
TruthTable TruthTable::nor_gate(unsigned fanin) {
  return reduce_gate(fanin, fold_or, true);
}
TruthTable TruthTable::xor_gate(unsigned fanin) {
  return reduce_gate(fanin, fold_xor, false);
}
TruthTable TruthTable::xnor_gate(unsigned fanin) {
  return reduce_gate(fanin, fold_xor, true);
}

TruthTable TruthTable::mux() {
  // Inputs: bit0 = s, bit1 = a, bit2 = b. Output = s ? b : a.
  TruthTable t(3, 1);
  for (std::uint64_t x = 0; x < 8; ++x) {
    const bool s = get_bit(x, 0), a = get_bit(x, 1), b = get_bit(x, 2);
    t.set_row(x, (s ? b : a) ? 1 : 0);
  }
  return t;
}

TruthTable TruthTable::junc(unsigned k) {
  RTV_REQUIRE(k >= 1, "junction width must be >= 1");
  TruthTable t(1, k);
  t.set_row(0, 0);
  t.set_row(1, low_mask(k));
  return t;
}

TruthTable TruthTable::half_adder() {
  // Inputs (a, b); outputs bit0 = sum, bit1 = carry.
  TruthTable t(2, 2);
  for (std::uint64_t x = 0; x < 4; ++x) {
    const unsigned a = get_bit(x, 0), b = get_bit(x, 1);
    const unsigned s = a ^ b, c = a & b;
    t.set_row(x, s | (c << 1));
  }
  return t;
}

TruthTable TruthTable::full_adder() {
  // Inputs (a, b, cin); outputs bit0 = sum, bit1 = cout.
  TruthTable t(3, 2);
  for (std::uint64_t x = 0; x < 8; ++x) {
    const unsigned a = get_bit(x, 0), b = get_bit(x, 1), c = get_bit(x, 2);
    const unsigned total = a + b + c;
    t.set_row(x, (total & 1) | ((total >> 1) << 1));
  }
  return t;
}

TruthTable TruthTable::demux2() {
  // Inputs (d, s); outputs (d & !s, d & s).
  TruthTable t(2, 2);
  for (std::uint64_t x = 0; x < 4; ++x) {
    const bool d = get_bit(x, 0), s = get_bit(x, 1);
    const unsigned o0 = (d && !s) ? 1 : 0, o1 = (d && s) ? 1 : 0;
    t.set_row(x, o0 | (o1 << 1));
  }
  return t;
}

TruthTable TruthTable::random(unsigned num_inputs, unsigned num_outputs,
                              Rng& rng) {
  TruthTable t(num_inputs, num_outputs);
  for (std::uint64_t x = 0; x < pow2(num_inputs); ++x) {
    t.set_row(x, rng.next() & low_mask(num_outputs));
  }
  return t;
}

std::string TruthTable::to_string() const {
  std::ostringstream os;
  os << num_inputs_ << " -> " << num_outputs_ << "\n";
  for (std::uint64_t x = 0; x < rows_.size(); ++x) {
    for (unsigned i = 0; i < num_inputs_; ++i) os << (get_bit(x, i) ? '1' : '0');
    os << " | ";
    for (unsigned j = 0; j < num_outputs_; ++j)
      os << (get_bit(rows_[x], j) ? '1' : '0');
    os << "\n";
  }
  return os.str();
}

}  // namespace rtv
