#pragma once
// Three-valued logic values and the standard ternary extensions of the
// primitive gate functions.
//
// The paper's conservative three-valued logic simulator (CLS, Section 5)
// performs *local* propagation of X: each gate output is computed from the
// gate's own input values alone, losing any correlation between distinct X
// inputs (e.g. X AND NOT(X) evaluates to X, not 0). The per-gate functions
// below are the exact ternary extensions of each Boolean gate — for a single
// gate, "local propagation" and "exact over all completions" coincide; the
// conservatism of the CLS arises from composing them across the netlist.
//
// Reference three-valued simulation semantics: [Eic65], [JMV69].

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace rtv {

/// A three-valued logic value: 0, 1, or unknown (X).
enum class Trit : std::uint8_t {
  kZero = 0,
  kOne = 1,
  kX = 2,
};

constexpr Trit kT0 = Trit::kZero;
constexpr Trit kT1 = Trit::kOne;
constexpr Trit kTX = Trit::kX;

/// True iff `t` is a definite Boolean value (0 or 1).
constexpr bool is_definite(Trit t) { return t != Trit::kX; }

/// Lift a Boolean to a Trit.
constexpr Trit to_trit(bool b) { return b ? Trit::kOne : Trit::kZero; }

/// Extract the Boolean value of a definite Trit. Precondition: is_definite.
inline bool to_bool(Trit t) {
  RTV_REQUIRE(is_definite(t), "to_bool on X");
  return t == Trit::kOne;
}

/// Information order: X is below both 0 and 1; 0 and 1 are incomparable.
/// Returns true iff `a` is less-or-equally informative than `b` would be
/// inconsistent; this predicate instead answers: could `b` be a refinement
/// of `a`? (a == X, or a == b.)
constexpr bool refines(Trit a, Trit b) { return a == Trit::kX || a == b; }

// ---------------------------------------------------------------------------
// Primitive ternary gate functions (exact per-gate extensions).
// ---------------------------------------------------------------------------

constexpr Trit not3(Trit a) {
  return a == Trit::kX ? Trit::kX : (a == Trit::kZero ? Trit::kOne : Trit::kZero);
}

constexpr Trit and3(Trit a, Trit b) {
  if (a == Trit::kZero || b == Trit::kZero) return Trit::kZero;
  if (a == Trit::kOne && b == Trit::kOne) return Trit::kOne;
  return Trit::kX;
}

constexpr Trit or3(Trit a, Trit b) {
  if (a == Trit::kOne || b == Trit::kOne) return Trit::kOne;
  if (a == Trit::kZero && b == Trit::kZero) return Trit::kZero;
  return Trit::kX;
}

constexpr Trit xor3(Trit a, Trit b) {
  if (a == Trit::kX || b == Trit::kX) return Trit::kX;
  return to_trit((a == Trit::kOne) != (b == Trit::kOne));
}

constexpr Trit nand3(Trit a, Trit b) { return not3(and3(a, b)); }
constexpr Trit nor3(Trit a, Trit b) { return not3(or3(a, b)); }
constexpr Trit xnor3(Trit a, Trit b) { return not3(xor3(a, b)); }

/// Ternary 2:1 multiplexer, out = s ? b : a. Exact per-gate: when the select
/// is X but both data inputs agree on a definite value, that value is the
/// output under every completion.
constexpr Trit mux3(Trit s, Trit a, Trit b) {
  if (s == Trit::kZero) return a;
  if (s == Trit::kOne) return b;
  return (a == b && a != Trit::kX) ? a : Trit::kX;
}

// ---------------------------------------------------------------------------
// Formatting / parsing.
// ---------------------------------------------------------------------------

/// '0', '1', or 'X'.
char to_char(Trit t);

/// Parses '0', '1', 'x', or 'X'. Throws ParseError otherwise.
Trit trit_from_char(char c);

/// Renders a vector of trits as a compact string, e.g. "0X1".
std::string to_string(const std::vector<Trit>& v);

/// Renders a sequence of per-cycle vectors joined with '.', e.g. "0.X.X.X".
std::string sequence_to_string(const std::vector<std::vector<Trit>>& seq);

/// Parses a compact trit string, e.g. "0X1" -> {0, X, 1}.
std::vector<Trit> trits_from_string(const std::string& s);

std::ostream& operator<<(std::ostream& os, Trit t);

}  // namespace rtv
