#include "ternary/trit.hpp"

#include <ostream>

namespace rtv {

char to_char(Trit t) {
  switch (t) {
    case Trit::kZero:
      return '0';
    case Trit::kOne:
      return '1';
    case Trit::kX:
      return 'X';
  }
  throw InternalError("corrupt Trit value");
}

Trit trit_from_char(char c) {
  switch (c) {
    case '0':
      return Trit::kZero;
    case '1':
      return Trit::kOne;
    case 'x':
    case 'X':
      return Trit::kX;
    default:
      throw ParseError(std::string("invalid trit character: '") + c + "'");
  }
}

std::string to_string(const std::vector<Trit>& v) {
  std::string s;
  s.reserve(v.size());
  for (Trit t : v) s.push_back(to_char(t));
  return s;
}

std::string sequence_to_string(const std::vector<std::vector<Trit>>& seq) {
  std::string s;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i != 0) s.push_back('.');
    s += to_string(seq[i]);
  }
  return s;
}

std::vector<Trit> trits_from_string(const std::string& s) {
  std::vector<Trit> v;
  v.reserve(s.size());
  for (char c : s) v.push_back(trit_from_char(c));
  return v;
}

std::ostream& operator<<(std::ostream& os, Trit t) { return os << to_char(t); }

}  // namespace rtv
