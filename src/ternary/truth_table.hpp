#pragma once
// Multi-output truth tables: the semantic object behind every combinational
// cell in the library, and the carrier of the paper's central notion of
// *justifiability* (Section 3.2).
//
// A cell F with n inputs and m outputs is *justifiable* iff its output
// function is surjective onto 2^m — every output vector y in 2^m is F(x) for
// some input x. Forward retiming across a non-justifiable element can
// manufacture latch states that no input could have produced, which is
// exactly the mechanism by which retiming violates safe replacement.
//
// The fanout junction JUNC_k (1 input copied to k outputs) is the canonical
// non-justifiable cell for k >= 2: only 00..0 and 11..1 are reachable.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ternary/trit.hpp"
#include "util/error.hpp"

namespace rtv {

/// Maximum inputs of a table cell (rows stored densely: 2^n entries).
inline constexpr unsigned kMaxTableInputs = 16;
/// Maximum outputs of a table cell (one bit per output in a 64-bit row).
inline constexpr unsigned kMaxTableOutputs = 32;

/// A completely-specified multi-output Boolean function.
class TruthTable {
 public:
  /// Constructs the constant-0 function with the given arity (all rows 0).
  TruthTable(unsigned num_inputs, unsigned num_outputs);

  /// Constructs from explicit rows: rows[x] bit j = output j on minterm x.
  /// rows.size() must be 2^num_inputs.
  TruthTable(unsigned num_inputs, unsigned num_outputs,
             std::vector<std::uint64_t> rows);

  unsigned num_inputs() const { return num_inputs_; }
  unsigned num_outputs() const { return num_outputs_; }

  /// Full output word for input minterm x (bit j = output j).
  std::uint64_t eval_row(std::uint64_t x) const;

  /// Sets the full output word for minterm x.
  void set_row(std::uint64_t x, std::uint64_t outputs);

  /// Single-output evaluation.
  bool eval_bit(std::uint64_t x, unsigned output) const;

  /// Exact per-cell ternary evaluation: output j is 0 (resp. 1) iff it is 0
  /// (resp. 1) under every Boolean completion of the X inputs, else X.
  /// This is the "local propagation" step of the paper's CLS.
  std::vector<Trit> eval_ternary(const std::vector<Trit>& inputs) const;

  /// True iff every output vector in 2^m is produced by some input vector —
  /// the paper's justifiability condition (Section 3.2).
  bool is_justifiable() const;

  /// A minterm x with F(x) == outputs, if one exists (the justification
  /// step of backward retiming with known initial states, cf. [TB93]).
  std::optional<std::uint64_t> justify(std::uint64_t outputs) const;

  /// The set of reachable output vectors, as a bitmap over 2^m
  /// (requires num_outputs <= 24).
  std::vector<bool> reachable_output_vectors() const;

  /// True iff all-X inputs yield all-X outputs. Section 5 of the paper
  /// assumes every combinational element satisfies this (constants do not);
  /// it is required for Corollary 5.3's all-X initial states to be related.
  bool preserves_all_x() const;

  /// Pointwise equality of functions.
  bool operator==(const TruthTable& other) const = default;

  // ---- Named constructors for the standard cell library -------------------

  static TruthTable const0();
  static TruthTable const1();
  static TruthTable buf();
  static TruthTable inv();
  static TruthTable and_gate(unsigned fanin);
  static TruthTable or_gate(unsigned fanin);
  static TruthTable nand_gate(unsigned fanin);
  static TruthTable nor_gate(unsigned fanin);
  static TruthTable xor_gate(unsigned fanin);
  static TruthTable xnor_gate(unsigned fanin);
  /// 2:1 mux: inputs (s, a, b), output = s ? b : a.
  static TruthTable mux();
  /// Fanout junction: 1 input, k identical outputs (non-justifiable, k >= 2).
  static TruthTable junc(unsigned k);
  /// Half adder: inputs (a, b); outputs (sum, carry). Non-justifiable:
  /// sum = carry = 1 is unreachable. Used as a realistic non-junction
  /// non-justifiable multi-output cell in experiments.
  static TruthTable half_adder();
  /// Full adder: inputs (a, b, cin); outputs (sum, cout). Justifiable.
  static TruthTable full_adder();
  /// 1->2 demux with enable semantics: inputs (d, s); outputs
  /// (d & !s, d & s). Non-justifiable (11 unreachable).
  static TruthTable demux2();

  /// Random completely-specified table (for property tests).
  static TruthTable random(unsigned num_inputs, unsigned num_outputs,
                           class Rng& rng);

  /// Human-readable dump (one row per minterm).
  std::string to_string() const;

 private:
  unsigned num_inputs_;
  unsigned num_outputs_;
  std::uint64_t output_mask_;
  std::vector<std::uint64_t> rows_;
};

}  // namespace rtv
