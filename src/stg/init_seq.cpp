// Initializing (synchronizing) sequences: an input sequence initializes a
// design iff it drives every power-up state to one single state. Figure 2 of
// the paper shows design D initialized by the length-1 sequence "0" while
// the retimed design C is not — find_initializing_sequence makes that
// observation executable.

#include <deque>
#include <unordered_set>

#include "stg/stg.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace rtv {

namespace {

using StateSet = std::vector<std::uint64_t>;

struct SetHash {
  std::size_t operator()(const StateSet& v) const {
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::uint64_t w : v) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

std::size_t set_count(const StateSet& set) {
  std::size_t n = 0;
  for (const std::uint64_t w : set) n += static_cast<std::size_t>(popcount64(w));
  return n;
}

StateSet image(const Stg& stg, const StateSet& set, std::uint64_t input) {
  StateSet next(set.size(), 0);
  for (std::uint64_t s = 0; s < stg.num_states(); ++s) {
    if (!get_bit(set[s / 64], s % 64)) continue;
    const std::uint32_t t = stg.next_state(s, input);
    next[t / 64] |= (1ULL << (t % 64));
  }
  return next;
}

StateSet full_set(const Stg& stg) {
  StateSet set(words_for_bits(stg.num_states()), 0);
  for (std::uint64_t s = 0; s < stg.num_states(); ++s) {
    set[s / 64] |= (1ULL << (s % 64));
  }
  return set;
}

}  // namespace

bool initializes(const Stg& stg, const std::vector<std::uint64_t>& inputs) {
  StateSet set = full_set(stg);
  for (const std::uint64_t a : inputs) set = image(stg, set, a);
  return set_count(set) == 1;
}

bool find_initializing_sequence(const Stg& stg, unsigned max_len,
                                std::vector<std::uint64_t>* sequence) {
  struct Entry {
    StateSet set;
    std::vector<std::uint64_t> path;
  };
  std::unordered_set<StateSet, SetHash> visited;
  std::deque<Entry> queue;
  StateSet start = full_set(stg);
  if (set_count(start) == 1) {
    if (sequence != nullptr) sequence->clear();
    return true;
  }
  visited.insert(start);
  queue.push_back({std::move(start), {}});
  while (!queue.empty()) {
    Entry entry = std::move(queue.front());
    queue.pop_front();
    if (entry.path.size() >= max_len) continue;
    for (std::uint64_t a = 0; a < stg.num_inputs(); ++a) {
      StateSet next = image(stg, entry.set, a);
      if (set_count(next) == 1) {
        if (sequence != nullptr) {
          *sequence = entry.path;
          sequence->push_back(a);
        }
        return true;
      }
      if (visited.insert(next).second) {
        Entry e;
        e.path = entry.path;
        e.path.push_back(a);
        e.set = std::move(next);
        queue.push_back(std::move(e));
      }
    }
  }
  return false;
}

}  // namespace rtv
