#pragma once
// State transition graphs (STGs) of synchronous netlists.
//
// An Stg is a completely-specified Mealy machine: `num_states` states,
// `num_inputs` input symbols (one per primary-input vector), and a packed
// Boolean output word per (state, input). Extracted exhaustively from a
// netlist — by the paper's model a circuit with n latches defines a
// completely-specified machine over all 2^n power-up states — or built
// directly for tests and quotient constructions.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/vectors.hpp"
#include "util/budget.hpp"

namespace rtv {

/// Default cap on num_states * num_inputs during extraction (2^24 entries).
inline constexpr std::uint64_t kDefaultStgEntryCap = std::uint64_t{1} << 24;

class Stg {
 public:
  /// Builds an STG from explicit tables. next.size() == out.size() ==
  /// num_states * num_inputs, laid out [state * num_inputs + input].
  Stg(std::uint64_t num_states, std::uint64_t num_inputs,
      unsigned num_output_bits, std::vector<std::uint32_t> next,
      std::vector<std::uint64_t> out);

  /// Exhaustive extraction: state ids are packed latch vectors (so state s
  /// corresponds to unpack_bits(s, L)), input symbols are packed PI vectors.
  ///
  /// Extraction cannot produce a partial machine, so with a budget attached
  /// it throws ResourceExhausted when the budget blows mid-extraction —
  /// governed entry points (validate_retiming, run_flow) catch that at the
  /// phase boundary and degrade.
  static Stg extract(const Netlist& netlist,
                     std::uint64_t entry_cap = kDefaultStgEntryCap,
                     ResourceBudget* budget = nullptr);

  std::uint64_t num_states() const { return num_states_; }
  std::uint64_t num_inputs() const { return num_inputs_; }
  unsigned num_output_bits() const { return num_output_bits_; }

  std::uint32_t next_state(std::uint64_t state, std::uint64_t input) const {
    return next_[index(state, input)];
  }
  std::uint64_t output(std::uint64_t state, std::uint64_t input) const {
    return out_[index(state, input)];
  }

  /// Runs the machine from `state` on a packed input sequence; returns the
  /// packed outputs per cycle and leaves the final state in `state`.
  std::vector<std::uint64_t> run(std::uint32_t& state,
                                 const std::vector<std::uint64_t>& inputs) const;

  /// Same arity (inputs and output bits)?
  bool compatible_with(const Stg& other) const;

  /// Disjoint union: states of `a` first, then states of `b` offset by
  /// a.num_states(). Requires compatible machines.
  static Stg disjoint_union(const Stg& a, const Stg& b);

  /// Restriction to a subset of states, which must be closed under the
  /// transition function. `keep[s]` selects states; `old_to_new` (optional)
  /// receives the id remapping.
  Stg restrict(const std::vector<bool>& keep,
               std::vector<std::uint32_t>* old_to_new = nullptr) const;

  /// Human-readable transition listing (small machines only).
  std::string to_string() const;

 private:
  std::size_t index(std::uint64_t state, std::uint64_t input) const;

  std::uint64_t num_states_;
  std::uint64_t num_inputs_;
  unsigned num_output_bits_;
  std::vector<std::uint32_t> next_;
  std::vector<std::uint64_t> out_;
};

// ---- minimize.cpp ----------------------------------------------------------

/// Partition of states into equivalence classes (Mealy equivalence: equal
/// output and equivalent successor for every input). Returns class ids,
/// dense in [0, num_classes). Budgeted variants here and below throw
/// ResourceExhausted on a blown budget (pass nullptr for ungoverned runs).
std::vector<std::uint32_t> equivalence_classes(const Stg& stg,
                                               ResourceBudget* budget = nullptr);

/// Number of classes in a dense class-id vector.
std::uint32_t num_classes(const std::vector<std::uint32_t>& classes);

/// State-minimized quotient machine. `classes` must come from
/// equivalence_classes(stg).
Stg quotient(const Stg& stg, const std::vector<std::uint32_t>& classes);

// ---- scc.cpp ---------------------------------------------------------------

struct SccResult {
  std::vector<std::uint32_t> component_of;  ///< per state
  std::uint32_t num_components = 0;
  /// Terminal (sink) SCCs of the condensation: no edge leaves the component.
  std::vector<bool> is_terminal;
};

/// Tarjan SCC over the edges {s -> next(s, a) : all inputs a}.
SccResult strongly_connected_components(const Stg& stg);

/// Pixley's essential resettability (SHE [Pix92]): the state-minimized
/// machine has exactly one terminal SCC.
bool essentially_resettable(const Stg& stg);

// ---- replaceability.cpp ----------------------------------------------------

/// State-machine implication C ⊑ D: every state of C is Mealy-equivalent to
/// some state of D. Requires compatible machines.
bool implies(const Stg& c, const Stg& d, ResourceBudget* budget = nullptr);

/// Safe replacement C ≼ D [PSAB94]: for every state s1 of C and every input
/// sequence, some state s0 of D produces the same outputs on that sequence
/// (s0 may depend on the sequence). Decided by a subset construction over
/// (C-state, set of still-consistent D-states).
bool safe_replacement(const Stg& c, const Stg& d,
                      ResourceBudget* budget = nullptr);

/// Witness for a safe-replacement violation: a C start state and an input
/// sequence no D state can match. Empty optional if C ≼ D holds.
struct SafeReplacementViolation {
  std::uint32_t c_start = 0;
  std::vector<std::uint64_t> inputs;  ///< packed input symbols
};
bool find_safe_replacement_violation(const Stg& c, const Stg& d,
                                     SafeReplacementViolation* witness,
                                     ResourceBudget* budget = nullptr);

// ---- delayed.cpp -----------------------------------------------------------

/// States still possible after `cycles` arbitrary-input clock cycles from an
/// arbitrary power-up state (the paper's delayed design D^n, Section 3.4).
std::vector<bool> states_after_delay(const Stg& stg, unsigned cycles);

/// The delayed design D^n as a machine (restriction to states_after_delay).
Stg delayed_design(const Stg& stg, unsigned cycles);

/// Smallest n <= max_cycles with delayed_design(c, n) ⊑ d, or -1 if none.
int min_delay_for_implication(const Stg& c, const Stg& d, unsigned max_cycles,
                              ResourceBudget* budget = nullptr);

/// Smallest n <= max_cycles with delayed_design(c, n) ≼ d, or -1 if none.
int min_delay_for_safe_replacement(const Stg& c, const Stg& d,
                                   unsigned max_cycles,
                                   ResourceBudget* budget = nullptr);

// ---- init_seq.cpp ----------------------------------------------------------

/// Does the packed input sequence drive every power-up state to one single
/// state (i.e., is it an initializing/synchronizing sequence)?
bool initializes(const Stg& stg, const std::vector<std::uint64_t>& inputs);

/// Breadth-first search for a shortest initializing sequence of length
/// <= max_len over the subset lattice. Returns false if none exists within
/// the bound. (Exponential worst case; intended for small machines.)
bool find_initializing_sequence(const Stg& stg, unsigned max_len,
                                std::vector<std::uint64_t>* sequence);

}  // namespace rtv
