// Mealy-machine state minimization by iterative partition refinement.
//
// Initial partition: states grouped by their full output row (outputs for
// every input symbol). Refinement: states grouped by (current class,
// successor class per input) until the partition is stable. O(n^2 * |I|)
// worst case with hashing-based splits — ample for the exhaustively
// extracted machines this library handles.

#include <unordered_map>

#include "stg/stg.hpp"
#include "util/error.hpp"

namespace rtv {

namespace {

// FNV-1a over a vector of 64-bit words.
struct VecHash {
  std::size_t operator()(const std::vector<std::uint64_t>& v) const {
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::uint64_t w : v) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

std::vector<std::uint32_t> equivalence_classes(const Stg& stg,
                                               ResourceBudget* budget) {
  const std::uint64_t n = stg.num_states();
  const std::uint64_t ni = stg.num_inputs();
  std::vector<std::uint32_t> cls(n, 0);

  // Initial split by output rows.
  {
    std::unordered_map<std::vector<std::uint64_t>, std::uint32_t, VecHash> ids;
    std::vector<std::uint64_t> sig(ni);
    for (std::uint64_t s = 0; s < n; ++s) {
      for (std::uint64_t a = 0; a < ni; ++a) sig[a] = stg.output(s, a);
      const auto [it, inserted] =
          ids.emplace(sig, static_cast<std::uint32_t>(ids.size()));
      cls[s] = it->second;
    }
  }

  // Refine until stable.
  for (;;) {
    if (budget != nullptr) budget->checkpoint_or_throw("stg/refine-iter");
    std::unordered_map<std::vector<std::uint64_t>, std::uint32_t, VecHash> ids;
    std::vector<std::uint32_t> next_cls(n);
    std::vector<std::uint64_t> sig(ni + 1);
    for (std::uint64_t s = 0; s < n; ++s) {
      sig[0] = cls[s];
      for (std::uint64_t a = 0; a < ni; ++a) {
        sig[a + 1] = cls[stg.next_state(s, a)];
      }
      const auto [it, inserted] =
          ids.emplace(sig, static_cast<std::uint32_t>(ids.size()));
      next_cls[s] = it->second;
    }
    bool changed = false;
    for (std::uint64_t s = 0; s < n; ++s) {
      if (next_cls[s] != cls[s]) {
        changed = true;
        break;
      }
    }
    // Class counts can only grow; identical counts with a relabeling still
    // mean a stable partition, so compare counts rather than raw labels.
    if (!changed || ids.size() == num_classes(cls)) {
      // Renumber densely in first-occurrence order for determinism.
      std::unordered_map<std::uint32_t, std::uint32_t> renumber;
      for (std::uint64_t s = 0; s < n; ++s) {
        const auto [it, ins] = renumber.emplace(
            next_cls[s], static_cast<std::uint32_t>(renumber.size()));
        next_cls[s] = it->second;
      }
      return next_cls;
    }
    cls = std::move(next_cls);
  }
}

std::uint32_t num_classes(const std::vector<std::uint32_t>& classes) {
  std::uint32_t max_id = 0;
  for (const std::uint32_t c : classes) max_id = std::max(max_id, c);
  return classes.empty() ? 0 : max_id + 1;
}

Stg quotient(const Stg& stg, const std::vector<std::uint32_t>& classes) {
  RTV_REQUIRE(classes.size() == stg.num_states(), "class vector size mismatch");
  const std::uint32_t k = num_classes(classes);
  const std::uint64_t ni = stg.num_inputs();
  std::vector<std::uint32_t> next(static_cast<std::size_t>(k) * ni, 0);
  std::vector<std::uint64_t> out(next.size(), 0);
  std::vector<bool> seen(k, false);
  for (std::uint64_t s = 0; s < stg.num_states(); ++s) {
    const std::uint32_t c = classes[s];
    if (seen[c]) continue;  // any representative gives the same rows
    seen[c] = true;
    for (std::uint64_t a = 0; a < ni; ++a) {
      next[c * ni + a] = classes[stg.next_state(s, a)];
      out[c * ni + a] = stg.output(s, a);
    }
  }
  return Stg(k, ni, stg.num_output_bits(), std::move(next), std::move(out));
}

}  // namespace rtv
