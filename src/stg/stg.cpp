#include "stg/stg.hpp"

#include <sstream>

#include "sim/binary_sim.hpp"
#include "util/bits.hpp"

namespace rtv {

Stg::Stg(std::uint64_t num_states, std::uint64_t num_inputs,
         unsigned num_output_bits, std::vector<std::uint32_t> next,
         std::vector<std::uint64_t> out)
    : num_states_(num_states),
      num_inputs_(num_inputs),
      num_output_bits_(num_output_bits),
      next_(std::move(next)),
      out_(std::move(out)) {
  RTV_REQUIRE(num_states_ >= 1, "STG needs at least one state");
  RTV_REQUIRE(num_inputs_ >= 1, "STG needs at least one input symbol");
  RTV_REQUIRE(num_output_bits_ <= 64, "at most 64 output bits");
  RTV_REQUIRE(next_.size() == num_states_ * num_inputs_,
              "next table size mismatch");
  RTV_REQUIRE(out_.size() == next_.size(), "output table size mismatch");
  for (const std::uint32_t t : next_) {
    RTV_REQUIRE(t < num_states_, "transition target out of range");
  }
}

std::size_t Stg::index(std::uint64_t state, std::uint64_t input) const {
  RTV_REQUIRE(state < num_states_ && input < num_inputs_,
              "STG lookup out of range");
  return static_cast<std::size_t>(state * num_inputs_ + input);
}

Stg Stg::extract(const Netlist& netlist, std::uint64_t entry_cap,
                 ResourceBudget* budget) {
  const unsigned latches = static_cast<unsigned>(netlist.latches().size());
  const unsigned pis = static_cast<unsigned>(netlist.primary_inputs().size());
  RTV_REQUIRE(latches <= 32, "STG extraction supports at most 32 latches");
  RTV_REQUIRE(pis <= 20, "STG extraction supports at most 20 inputs");
  const std::uint64_t num_states = pow2(latches);
  const std::uint64_t num_inputs = pow2(pis);
  if (num_states * num_inputs > entry_cap) {
    throw CapacityError("STG extraction: 2^(latches+inputs) exceeds cap (" +
                        std::to_string(num_states * num_inputs) +
                        " entries, cap " + std::to_string(entry_cap) + ")");
  }
  BinarySimulator sim(netlist);
  std::vector<std::uint32_t> next(num_states * num_inputs);
  std::vector<std::uint64_t> out(num_states * num_inputs);
  for (std::uint64_t s = 0; s < num_states; ++s) {
    if (budget != nullptr) budget->checkpoint_or_throw("stg/extract-state");
    for (std::uint64_t a = 0; a < num_inputs; ++a) {
      std::uint64_t o = 0, ns = 0;
      sim.eval_packed(s, a, o, ns);
      next[s * num_inputs + a] = static_cast<std::uint32_t>(ns);
      out[s * num_inputs + a] = o;
    }
  }
  return Stg(num_states, num_inputs,
             static_cast<unsigned>(netlist.primary_outputs().size()),
             std::move(next), std::move(out));
}

std::vector<std::uint64_t> Stg::run(
    std::uint32_t& state, const std::vector<std::uint64_t>& inputs) const {
  std::vector<std::uint64_t> outputs;
  outputs.reserve(inputs.size());
  for (const std::uint64_t a : inputs) {
    outputs.push_back(output(state, a));
    state = next_state(state, a);
  }
  return outputs;
}

bool Stg::compatible_with(const Stg& other) const {
  return num_inputs_ == other.num_inputs_ &&
         num_output_bits_ == other.num_output_bits_;
}

Stg Stg::disjoint_union(const Stg& a, const Stg& b) {
  RTV_REQUIRE(a.compatible_with(b), "disjoint_union on incompatible machines");
  const std::uint64_t states = a.num_states_ + b.num_states_;
  std::vector<std::uint32_t> next;
  std::vector<std::uint64_t> out;
  next.reserve(states * a.num_inputs_);
  out.reserve(states * a.num_inputs_);
  next.insert(next.end(), a.next_.begin(), a.next_.end());
  out.insert(out.end(), a.out_.begin(), a.out_.end());
  const std::uint32_t offset = static_cast<std::uint32_t>(a.num_states_);
  for (const std::uint32_t t : b.next_) next.push_back(t + offset);
  out.insert(out.end(), b.out_.begin(), b.out_.end());
  return Stg(states, a.num_inputs_, a.num_output_bits_, std::move(next),
             std::move(out));
}

Stg Stg::restrict(const std::vector<bool>& keep,
                  std::vector<std::uint32_t>* old_to_new) const {
  RTV_REQUIRE(keep.size() == num_states_, "keep mask size mismatch");
  constexpr std::uint32_t kUnmapped = 0xffffffffu;
  std::vector<std::uint32_t> map(num_states_, kUnmapped);
  std::uint32_t count = 0;
  for (std::uint64_t s = 0; s < num_states_; ++s) {
    if (keep[s]) map[s] = count++;
  }
  RTV_REQUIRE(count >= 1, "restriction must keep at least one state");
  std::vector<std::uint32_t> next(static_cast<std::size_t>(count) * num_inputs_);
  std::vector<std::uint64_t> out(next.size());
  for (std::uint64_t s = 0; s < num_states_; ++s) {
    if (!keep[s]) continue;
    for (std::uint64_t a = 0; a < num_inputs_; ++a) {
      const std::uint32_t t = next_[index(s, a)];
      RTV_REQUIRE(keep[t], "restriction set is not closed under transitions");
      next[map[s] * num_inputs_ + a] = map[t];
      out[map[s] * num_inputs_ + a] = out_[index(s, a)];
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return Stg(count, num_inputs_, num_output_bits_, std::move(next),
             std::move(out));
}

std::string Stg::to_string() const {
  std::ostringstream os;
  os << "stg: " << num_states_ << " states, " << num_inputs_
     << " input symbols, " << num_output_bits_ << " output bits\n";
  for (std::uint64_t s = 0; s < num_states_; ++s) {
    for (std::uint64_t a = 0; a < num_inputs_; ++a) {
      os << "  s" << s << " --" << a << "/" << output(s, a) << "--> s"
         << next_state(s, a) << "\n";
    }
  }
  return os.str();
}

}  // namespace rtv
