// Delayed designs (paper Section 3.4): D^n is D restricted to the states
// still possible after n clock cycles of arbitrary inputs from an arbitrary
// power-up state. D^n discards transient behaviour only; its state set is
// the n-fold image of the full state set under the transition relation.

#include "stg/stg.hpp"
#include "util/error.hpp"

namespace rtv {

std::vector<bool> states_after_delay(const Stg& stg, unsigned cycles) {
  std::vector<bool> current(stg.num_states(), true);
  for (unsigned k = 0; k < cycles; ++k) {
    std::vector<bool> image(stg.num_states(), false);
    bool changed = false;
    for (std::uint64_t s = 0; s < stg.num_states(); ++s) {
      if (!current[s]) continue;
      for (std::uint64_t a = 0; a < stg.num_inputs(); ++a) {
        image[stg.next_state(s, a)] = true;
      }
    }
    for (std::uint64_t s = 0; s < stg.num_states(); ++s) {
      if (current[s] != image[s]) {
        changed = true;
        break;
      }
    }
    current = std::move(image);
    if (!changed) break;  // image reached a fixpoint; further delay is a no-op
  }
  return current;
}

Stg delayed_design(const Stg& stg, unsigned cycles) {
  // Image_0 = all states, Image_{k+1} = T(Image_k). The chain is monotone
  // decreasing (Image_1 ⊆ Image_0, and T preserves inclusion), so Image_n is
  // closed under transitions: next(s, a) ∈ Image_{n+1} ⊆ Image_n.
  return stg.restrict(states_after_delay(stg, cycles));
}

int min_delay_for_implication(const Stg& c, const Stg& d, unsigned max_cycles,
                              ResourceBudget* budget) {
  for (unsigned n = 0; n <= max_cycles; ++n) {
    if (budget != nullptr) budget->checkpoint_or_throw("stg/delay-step");
    if (implies(delayed_design(c, n), d, budget)) return static_cast<int>(n);
  }
  return -1;
}

int min_delay_for_safe_replacement(const Stg& c, const Stg& d,
                                   unsigned max_cycles,
                                   ResourceBudget* budget) {
  for (unsigned n = 0; n <= max_cycles; ++n) {
    if (budget != nullptr) budget->checkpoint_or_throw("stg/delay-step");
    if (safe_replacement(delayed_design(c, n), d, budget)) {
      return static_cast<int>(n);
    }
  }
  return -1;
}

}  // namespace rtv
