// Tarjan's strongly-connected-components algorithm (iterative) over STG
// transition edges, plus Pixley's essential-resettability test [Pix92]:
// collapse equivalent states, then require a unique terminal SCC — the
// machine's steady-state behaviour under random power-up.

#include <algorithm>

#include "stg/stg.hpp"
#include "util/error.hpp"

namespace rtv {

SccResult strongly_connected_components(const Stg& stg) {
  const std::uint64_t n = stg.num_states();
  const std::uint64_t ni = stg.num_inputs();
  constexpr std::uint32_t kUnvisited = 0xffffffffu;

  SccResult result;
  result.component_of.assign(n, kUnvisited);

  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> stack;
  std::uint32_t next_index = 0;

  struct Frame {
    std::uint32_t v;
    std::uint64_t edge;  // next input symbol to follow
  };
  std::vector<Frame> call_stack;

  for (std::uint64_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({static_cast<std::uint32_t>(root), 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(static_cast<std::uint32_t>(root));
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      if (f.edge < ni) {
        const std::uint32_t w = stg.next_state(f.v, f.edge);
        ++f.edge;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
        continue;
      }
      // All edges of f.v explored: close the frame.
      const std::uint32_t v = f.v;
      call_stack.pop_back();
      if (!call_stack.empty()) {
        lowlink[call_stack.back().v] =
            std::min(lowlink[call_stack.back().v], lowlink[v]);
      }
      if (lowlink[v] == index[v]) {
        const std::uint32_t comp = result.num_components++;
        for (;;) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          result.component_of[w] = comp;
          if (w == v) break;
        }
      }
    }
  }

  // Terminal components: no edge leaves the component.
  result.is_terminal.assign(result.num_components, true);
  for (std::uint64_t s = 0; s < n; ++s) {
    for (std::uint64_t a = 0; a < ni; ++a) {
      const std::uint32_t t = stg.next_state(s, a);
      if (result.component_of[s] != result.component_of[t]) {
        result.is_terminal[result.component_of[s]] = false;
      }
    }
  }
  return result;
}

bool essentially_resettable(const Stg& stg) {
  const Stg minimized = quotient(stg, equivalence_classes(stg));
  const SccResult scc = strongly_connected_components(minimized);
  std::uint32_t terminals = 0;
  for (const bool t : scc.is_terminal) {
    if (t) ++terminals;
  }
  RTV_CHECK_MSG(terminals >= 1, "finite graph must have a terminal SCC");
  return terminals == 1;
}

}  // namespace rtv
