// Replaceability relations between designs (paper Section 3.3).
//
// implies (C ⊑ D): classical state-machine implication — every C state is
// Mealy-equivalent to some D state. Decided by refining the disjoint union
// of the two machines and checking each C class contains a D state.
//
// safe_replacement (C ≼ D) [PSAB94]: for any C state s1 and any input
// sequence, some D state matches s1's outputs on that sequence; the D state
// may depend on the sequence. Because "matches on π·a" implies "matches on
// π", the set of still-consistent D states shrinks monotonically along a
// run, so C ≼ D is decidable by a subset construction over pairs
// (current C state, set of consistent current D states): a violation is
// reachable iff some pair with an empty set is.

#include <deque>
#include <unordered_set>

#include "stg/stg.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace rtv {

bool implies(const Stg& c, const Stg& d, ResourceBudget* budget) {
  RTV_REQUIRE(c.compatible_with(d), "implies on incompatible machines");
  const Stg u = Stg::disjoint_union(c, d);
  const std::vector<std::uint32_t> cls = equivalence_classes(u, budget);
  const std::uint32_t k = num_classes(cls);
  std::vector<bool> has_d_state(k, false);
  for (std::uint64_t s = 0; s < d.num_states(); ++s) {
    has_d_state[cls[c.num_states() + s]] = true;
  }
  for (std::uint64_t s = 0; s < c.num_states(); ++s) {
    if (!has_d_state[cls[s]]) return false;
  }
  return true;
}

namespace {

/// A (C state, D state set) pair in the subset construction.
struct PairKey {
  std::uint32_t c_state;
  std::vector<std::uint64_t> d_set;  // bitset over D states

  bool operator==(const PairKey& other) const = default;
};

struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const {
    std::uint64_t h = 1469598103934665603ULL ^ k.c_state;
    for (const std::uint64_t w : k.d_set) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

bool set_empty(const std::vector<std::uint64_t>& set) {
  for (const std::uint64_t w : set) {
    if (w != 0) return false;
  }
  return true;
}

}  // namespace

bool find_safe_replacement_violation(const Stg& c, const Stg& d,
                                     SafeReplacementViolation* witness,
                                     ResourceBudget* budget) {
  RTV_REQUIRE(c.compatible_with(d), "safe_replacement on incompatible machines");
  const std::uint64_t nd = d.num_states();
  const std::size_t set_words = words_for_bits(nd);

  std::vector<std::uint64_t> full(set_words, 0);
  for (std::uint64_t s = 0; s < nd; ++s) {
    full[s / 64] |= (1ULL << (s % 64));
  }

  struct QueueEntry {
    PairKey key;
    std::uint32_t c_start;
    std::vector<std::uint64_t> inputs;  // path from the start (for witness)
  };
  std::unordered_set<PairKey, PairKeyHash> visited;
  std::deque<QueueEntry> queue;
  const bool want_witness = witness != nullptr;

  for (std::uint64_t s1 = 0; s1 < c.num_states(); ++s1) {
    PairKey key{static_cast<std::uint32_t>(s1), full};
    if (visited.insert(key).second) {
      queue.push_back({std::move(key), static_cast<std::uint32_t>(s1), {}});
    }
  }

  while (!queue.empty()) {
    if (budget != nullptr) budget->checkpoint_or_throw("stg/subset-pair");
    QueueEntry entry = std::move(queue.front());
    queue.pop_front();
    for (std::uint64_t a = 0; a < c.num_inputs(); ++a) {
      const std::uint64_t c_out = c.output(entry.key.c_state, a);
      std::vector<std::uint64_t> next_set(set_words, 0);
      for (std::uint64_t s0 = 0; s0 < nd; ++s0) {
        if (!get_bit(entry.key.d_set[s0 / 64], s0 % 64)) continue;
        if (d.output(s0, a) != c_out) continue;
        const std::uint32_t t = d.next_state(s0, a);
        next_set[t / 64] |= (1ULL << (t % 64));
      }
      if (set_empty(next_set)) {
        if (want_witness) {
          witness->c_start = entry.c_start;
          witness->inputs = entry.inputs;
          witness->inputs.push_back(a);
        }
        return true;
      }
      PairKey next_key{c.next_state(entry.key.c_state, a), std::move(next_set)};
      if (visited.insert(next_key).second) {
        QueueEntry next_entry;
        next_entry.c_start = entry.c_start;
        if (want_witness) {
          next_entry.inputs = entry.inputs;
          next_entry.inputs.push_back(a);
        }
        next_entry.key = std::move(next_key);
        queue.push_back(std::move(next_entry));
      }
    }
  }
  return false;
}

bool safe_replacement(const Stg& c, const Stg& d, ResourceBudget* budget) {
  return !find_safe_replacement_violation(c, d, nullptr, budget);
}

}  // namespace rtv
