#include "fault/tpg.hpp"

#include <sstream>

namespace rtv {

std::string TestSet::summary() const {
  std::ostringstream os;
  os << tests.size() << " tests, " << num_detected << "/" << faults.size()
     << " faults detected (" << static_cast<int>(coverage * 100.0 + 0.5)
     << "%)";
  return os.str();
}

namespace {

BitsSeq random_candidate(unsigned num_inputs, const TpgOptions& options,
                         Rng& rng) {
  const unsigned length = static_cast<unsigned>(
      rng.range(options.min_length, options.max_length));
  BitsSeq seq;
  if (rng.chance(options.constant_probability)) {
    Bits in(num_inputs);
    for (auto& v : in) v = rng.coin();
    seq.assign(length, in);
  } else {
    for (unsigned t = 0; t < length; ++t) {
      Bits in(num_inputs);
      for (auto& v : in) v = rng.coin();
      seq.push_back(in);
    }
  }
  return seq;
}

void finalize(TestSet& set) {
  set.num_detected = 0;
  for (const bool d : set.detected) set.num_detected += d;
  set.coverage = set.faults.empty()
                     ? 0.0
                     : static_cast<double>(set.num_detected) /
                           static_cast<double>(set.faults.size());
}

}  // namespace

TestSet generate_tests(const Netlist& netlist, const TpgOptions& options) {
  TestSet set;
  set.faults = collapse_faults(netlist);
  set.detected.assign(set.faults.size(), false);
  set.detected_by.assign(set.faults.size(), -1);

  Rng rng(options.seed);
  const unsigned inputs =
      static_cast<unsigned>(netlist.primary_inputs().size());
  for (unsigned c = 0; c < options.max_candidates; ++c) {
    if (set.num_detected == set.faults.size()) break;
    const BitsSeq candidate = random_candidate(inputs, options, rng);
    // Fault dropping: grade only the still-undetected faults.
    bool kept = false;
    for (std::size_t i = 0; i < set.faults.size(); ++i) {
      if (set.detected[i]) continue;
      if (!test_detects(netlist, set.faults[i], candidate)) continue;
      if (!kept) {
        set.tests.push_back(candidate);
        kept = true;
      }
      set.detected[i] = true;
      set.detected_by[i] = static_cast<int>(set.tests.size()) - 1;
      ++set.num_detected;
    }
  }
  finalize(set);
  return set;
}

TestSet grade_tests(const Netlist& netlist, const std::vector<Fault>& faults,
                    const std::vector<BitsSeq>& tests,
                    unsigned delay_cycles) {
  TestSet set;
  set.faults = faults;
  set.detected.assign(faults.size(), false);
  set.detected_by.assign(faults.size(), -1);
  set.tests = tests;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    // Skip faults whose site died in the graded design (e.g. swept logic).
    if (faults[i].site.node.value >= netlist.num_slots() ||
        netlist.is_dead(faults[i].site.node) ||
        netlist.sinks(faults[i].site).empty()) {
      continue;
    }
    for (std::size_t t = 0; t < tests.size(); ++t) {
      const bool hit =
          delay_cycles == 0
              ? test_detects(netlist, faults[i], tests[t])
              : test_detects_delayed(netlist, faults[i], tests[t],
                                     delay_cycles);
      if (hit) {
        set.detected[i] = true;
        set.detected_by[i] = static_cast<int>(t);
        break;
      }
    }
  }
  finalize(set);
  return set;
}

}  // namespace rtv
