#include "fault/test_eval.hpp"

#include "sim/binary_sim.hpp"
#include "sim/cls_sim.hpp"
#include "sim/exact_sim.hpp"
#include "sim/packed_sim.hpp"
#include "util/bits.hpp"

namespace rtv {

TritsSeq exact_response(const Netlist& netlist, const BitsSeq& test) {
  ExactTernarySimulator sim(netlist);
  return sim.run(test);
}

namespace {

/// All states possible after `cycles` arbitrary-input steps from any
/// power-up state (packed), by repeated image computation.
std::vector<std::uint64_t> delayed_state_set(const Netlist& netlist,
                                             unsigned cycles) {
  const unsigned latches = static_cast<unsigned>(netlist.latches().size());
  const unsigned pis = static_cast<unsigned>(netlist.primary_inputs().size());
  RTV_REQUIRE(latches <= 20, "delayed_state_set supports <= 20 latches");
  RTV_REQUIRE(pis <= 16, "delayed_state_set supports <= 16 inputs");
  BinarySimulator sim(netlist);
  std::vector<bool> current(pow2(latches), true);
  for (unsigned k = 0; k < cycles; ++k) {
    std::vector<bool> image(current.size(), false);
    for (std::uint64_t s = 0; s < current.size(); ++s) {
      if (!current[s]) continue;
      for (std::uint64_t a = 0; a < pow2(pis); ++a) {
        std::uint64_t out = 0, ns = 0;
        sim.eval_packed(s, a, out, ns);
        image[ns] = true;
      }
    }
    if (image == current) break;
    current = std::move(image);
  }
  std::vector<std::uint64_t> states;
  for (std::uint64_t s = 0; s < current.size(); ++s) {
    if (current[s]) states.push_back(s);
  }
  return states;
}

}  // namespace

TritsSeq exact_response_delayed(const Netlist& netlist, const BitsSeq& test,
                                unsigned delay_cycles) {
  ExactTernarySimulator sim(netlist);
  sim.reset_from_states(delayed_state_set(netlist, delay_cycles));
  return sim.run(test);
}

TritsSeq cls_response(const Netlist& netlist, const BitsSeq& test) {
  ClsSimulator sim(netlist);
  return sim.run(test);
}

std::vector<TritsSeq> cls_response_batch(const Netlist& netlist,
                                         const std::vector<BitsSeq>& tests) {
  return packed_cls_run(netlist, tests);
}

bool responses_distinguish(const TritsSeq& good, const TritsSeq& faulty) {
  RTV_REQUIRE(good.size() == faulty.size(), "response length mismatch");
  for (std::size_t t = 0; t < good.size(); ++t) {
    RTV_REQUIRE(good[t].size() == faulty[t].size(), "response width mismatch");
    for (std::size_t o = 0; o < good[t].size(); ++o) {
      if (is_definite(good[t][o]) && is_definite(faulty[t][o]) &&
          good[t][o] != faulty[t][o]) {
        return true;
      }
    }
  }
  return false;
}

bool test_detects(const Netlist& netlist, const Fault& fault,
                  const BitsSeq& test) {
  return responses_distinguish(exact_response(netlist, test),
                               exact_response(inject_fault(netlist, fault), test));
}

bool test_detects_delayed(const Netlist& netlist, const Fault& fault,
                          const BitsSeq& test, unsigned delay_cycles) {
  return responses_distinguish(
      exact_response_delayed(netlist, test, delay_cycles),
      exact_response_delayed(inject_fault(netlist, fault), test,
                             delay_cycles));
}

bool cls_test_detects(const Netlist& netlist, const Fault& fault,
                      const BitsSeq& test) {
  return responses_distinguish(
      cls_response(netlist, test),
      cls_response(inject_fault(netlist, fault), test));
}

}  // namespace rtv
