#include "fault/fault_sim.hpp"

#include "fault/engine.hpp"
#include "sim/packed_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "util/bits.hpp"

namespace rtv {

const char* to_string(FaultSimMode mode) {
  switch (mode) {
    case FaultSimMode::kExact:
      return "exact";
    case FaultSimMode::kSampled:
      return "sampled";
    case FaultSimMode::kCls:
      return "cls";
  }
  return "?";
}

std::optional<FaultSimMode> fault_sim_mode_from_string(std::string_view name) {
  if (name == "exact") return FaultSimMode::kExact;
  if (name == "sampled") return FaultSimMode::kSampled;
  if (name == "cls") return FaultSimMode::kCls;
  return std::nullopt;
}

FaultSimResult fault_simulate(const Netlist& netlist,
                              const std::vector<Fault>& faults,
                              const std::vector<BitsSeq>& tests,
                              const FaultSimOptions& options) {
  FaultSimEngine engine(netlist, tests, options);
  return engine.run(faults);
}

bool sampled_test_detects(const Netlist& netlist, const Fault& fault,
                          const BitsSeq& test, unsigned lanes, Rng& rng) {
  const Netlist faulty = inject_fault(netlist, fault);
  ParallelBinarySimulator good(netlist, lanes);
  ParallelBinarySimulator bad(faulty, lanes);
  // The faulty copy appends nodes but never removes or reorders latches, so
  // latch index i refers to the same latch in both designs: give each lane
  // the same random power-up state in both.
  RTV_CHECK(good.num_latches() == bad.num_latches());
  for (unsigned l = 0; l < good.num_latches(); ++l) {
    for (unsigned lane = 0; lane < lanes; ++lane) {
      const bool v = rng.coin();
      good.set_state_bit(l, lane, v);
      bad.set_state_bit(l, lane, v);
    }
  }
  const unsigned words = good.words();
  for (const Bits& in : test) {
    good.step_broadcast(in);
    bad.step_broadcast(in);
    for (unsigned o = 0; o < good.num_outputs(); ++o) {
      // Definite difference over the sample: all good lanes agree on v,
      // all faulty lanes agree on !v. Check lane-wise agreement via the
      // packed words (tail lanes beyond `lanes` are masked).
      bool good_all0 = true, good_all1 = true, bad_all0 = true,
           bad_all1 = true;
      const auto* gw = good.output_words(o);
      const auto* bw = bad.output_words(o);
      for (unsigned w = 0; w < words; ++w) {
        const std::uint64_t mask =
            (w + 1 == words && lanes % 64 != 0) ? low_mask(lanes % 64) : ~0ULL;
        good_all0 &= (gw[w] & mask) == 0;
        good_all1 &= (gw[w] & mask) == mask;
        bad_all0 &= (bw[w] & mask) == 0;
        bad_all1 &= (bw[w] & mask) == mask;
      }
      if ((good_all0 && bad_all1) || (good_all1 && bad_all0)) return true;
    }
  }
  return false;
}

namespace {

/// Flat-storage form of responses_distinguish: a definite 0/1 disagreement
/// at any (cycle, output) of the lane.
bool lane_distinguishes(const PackedResponses& good, const PackedResponses& bad,
                        unsigned lane) {
  const Trit* g = good.lane_data(lane);
  const Trit* b = bad.lane_data(lane);
  const std::size_t n = good.lane_size(lane);
  for (std::size_t k = 0; k < n; ++k) {
    if (is_definite(g[k]) && is_definite(b[k]) && g[k] != b[k]) return true;
  }
  return false;
}

}  // namespace

FaultSimResult cls_fault_simulate(const Netlist& netlist,
                                  const std::vector<Fault>& faults,
                                  const std::vector<BitsSeq>& tests) {
  // Reference implementation: one full packed pass over the whole test set
  // per fault. The engine (fault/engine.hpp) is cross-checked against this.
  FaultSimResult result;
  result.detected.assign(faults.size(), false);
  result.detecting_test.assign(faults.size(), -1);
  const PackedResponses good = packed_cls_responses(netlist, tests);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const PackedResponses bad =
        packed_cls_responses(inject_fault(netlist, faults[i]), tests);
    for (unsigned t = 0; t < good.num_lanes(); ++t) {
      if (lane_distinguishes(good, bad, t)) {
        result.detected[i] = true;
        result.detecting_test[i] = static_cast<int>(t);
        ++result.num_detected;
        break;
      }
    }
  }
  result.tests_run = faults.size() * tests.size();
  result.coverage = faults.empty()
                        ? 0.0
                        : static_cast<double>(result.num_detected) /
                              static_cast<double>(faults.size());
  return result;
}

}  // namespace rtv
