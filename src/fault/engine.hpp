#pragma once
// Multi-threaded batch fault-simulation engine — the machinery behind
// fault_simulate, shared by all three detection modes.
//
// Design (one sentence per moving part):
//
//   Shared good responses.  The fault-free circuit's responses to the whole
//   test set are computed once in the constructor and read concurrently by
//   every worker: word-major packed CLS responses (kCls), exact ternary
//   responses per test (kExact), or per-(test, cycle, output) sample
//   agreement flags plus reproducible per-test power-up seeds (kSampled).
//
//   Work-stealing partition.  run() splits the fault list one fault per
//   chunk across a util/thread_pool.hpp pool; stealing rebalances the
//   wildly uneven per-fault cost (early exits vs full passes).
//
//   Chunked iteration + early exit.  In kCls mode a worker walks the test
//   set one packed 64-test word at a time (sim/packed_sim.hpp's
//   pack_cycle_inputs), compares each cycle's faulty output word against
//   the shared good word with three bitwise ops, and abandons the fault at
//   the first detecting word — usually word 0 after a few cycles. kExact
//   and kSampled walk tests in order and stop at the first detecting test.
//
//   Fault dropping.  Every verdict is published in a shared atomic table
//   keyed by fault identity (site, polarity); a worker that picks up a
//   fault whose verdict is already published — a duplicate list entry, or
//   work another worker raced to completion — adopts it instead of
//   resimulating. Because a verdict is a pure function of (netlist, fault,
//   tests, mode options), adoption can never change the result.
//
// Determinism: detected / detecting_test / num_detected / coverage are
// identical for every `threads` value and for drop_detected on or off.

#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/netlist.hpp"
#include "sim/packed_sim.hpp"
#include "sim/vectors.hpp"

namespace rtv {

class FaultSimEngine {
 public:
  /// Prepares the shared good-circuit responses for `tests` under
  /// `options.mode`. The netlist must outlive the engine.
  FaultSimEngine(const Netlist& netlist, std::vector<BitsSeq> tests,
                 const FaultSimOptions& options);
  ~FaultSimEngine();

  FaultSimEngine(const FaultSimEngine&) = delete;
  FaultSimEngine& operator=(const FaultSimEngine&) = delete;

  const FaultSimOptions& options() const { return options_; }
  std::size_t num_tests() const { return tests_.size(); }

  /// Detection verdict of every fault in `faults` against the prepared
  /// test set. Reusable: one engine can run several fault lists against
  /// the same shared good responses.
  FaultSimResult run(const std::vector<Fault>& faults) const;

 private:
  struct SharedGood;  // per-mode read-only good-circuit responses
  class Worker;       // per-thread scratch state (faulty-circuit simulators)

  const Netlist& netlist_;
  std::vector<BitsSeq> tests_;
  FaultSimOptions options_;
  std::unique_ptr<SharedGood> good_;
};

}  // namespace rtv
