#pragma once
// Single stuck-at faults on gate-level netlists (paper Section 2.2, and the
// [MERM94] claim the paper refutes).
//
// In junction-normal form every net is the wire from one output port to its
// single sink pin, so a fault site is identified by the driving PortRef.
// Injection rewires the net's sinks to a constant cell, leaving the driver
// dangling (classic stuck-at semantics: the fault is on the wire, the
// driving gate still computes).

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace rtv {

struct Fault {
  PortRef site;       ///< driving port of the faulted net
  bool stuck_value;   ///< stuck-at-1 if true, stuck-at-0 if false

  bool operator==(const Fault&) const = default;
};

/// Human-readable "AND1.0 s-a-1" form (node name + port + value).
std::string describe(const Netlist& netlist, const Fault& fault);

/// All single stuck-at faults: both polarities on every live output port
/// that has at least one sink.
std::vector<Fault> enumerate_faults(const Netlist& netlist);

/// Structural fault collapsing: drops faults that are trivially equivalent
/// to a fault on the far side of a buffer or junction input (the dominated
/// site remains). Keeps inverter-chain faults (polarity bookkeeping is
/// cheap but obscures reports). Returns a subset of enumerate_faults().
std::vector<Fault> collapse_faults(const Netlist& netlist);

/// Returns a copy of `netlist` with the fault injected.
Netlist inject_fault(const Netlist& netlist, const Fault& fault);

/// Finds the fault site by node name + port (testing convenience).
Fault fault_on(const Netlist& netlist, const std::string& node_name,
               std::uint32_t port, bool stuck_value);

}  // namespace rtv
