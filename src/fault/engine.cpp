#include "fault/engine.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <limits>
#include <unordered_map>

#include "fault/test_eval.hpp"
#include "sim/parallel_sim.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace rtv {

namespace {

/// Verdict-table sentinel: fault not decided yet. Decided verdicts are the
/// witness test index (>= 0) or -1 for undetected.
constexpr int kUndecided = std::numeric_limits<int>::min();

/// Per-test power-up seed for kSampled: a pure function of (sample_seed,
/// test index), so every worker — and every thread count — reconstructs the
/// same power-up sample for the same test.
std::uint64_t test_seed(std::uint64_t sample_seed, std::size_t test_index) {
  std::uint64_t s =
      sample_seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(test_index) + 1);
  return splitmix64(s);
}

/// Identity of a fault for the shared verdict table: duplicate fault-list
/// entries hash to the same slot, so one worker's verdict settles them all.
struct FaultKey {
  std::uint32_t node = 0;
  std::uint32_t port = 0;
  bool stuck = false;

  bool operator==(const FaultKey&) const = default;
};

struct FaultKeyHash {
  std::size_t operator()(const FaultKey& k) const {
    std::uint64_t s = (static_cast<std::uint64_t>(k.node) << 33) ^
                      (static_cast<std::uint64_t>(k.port) << 1) ^
                      static_cast<std::uint64_t>(k.stuck);
    return static_cast<std::size_t>(splitmix64(s));
  }
};

/// Adopts another worker's verdict mid-fault when dropping is on.
int adopted_verdict(const std::atomic<int>* verdict) {
  return verdict == nullptr ? kUndecided
                            : verdict->load(std::memory_order_acquire);
}

}  // namespace

struct FaultSimEngine::SharedGood {
  // kCls: ternary form of the test set plus word-major good responses.
  std::vector<TritsSeq> lifted;
  PackedResponseWords cls;
  // kExact: exact ternary good response per test.
  std::vector<TritsSeq> exact;
  // kSampled: per (test, cycle, output) agreement byte of the good sample —
  // bit 0: all lanes read 0, bit 1: all lanes read 1.
  unsigned sample_lanes = 0;
  std::vector<std::uint8_t> sample_flags;
  std::vector<std::size_t> sample_offsets;  ///< per-test start into flags
};

FaultSimEngine::FaultSimEngine(const Netlist& netlist,
                               std::vector<BitsSeq> tests,
                               const FaultSimOptions& options)
    : netlist_(netlist),
      tests_(std::move(tests)),
      options_(options),
      good_(std::make_unique<SharedGood>()) {
  // Witness verdicts are ints (index >= 0, -1 undetected, INT_MIN sentinel);
  // bound the test set so the static_casts in the witness walkers cannot
  // narrow into wrong or sentinel values.
  RTV_REQUIRE(
      tests_.size() <=
          static_cast<std::size_t>(std::numeric_limits<int>::max()),
      "fault simulation supports at most INT_MAX tests");
  switch (options_.mode) {
    case FaultSimMode::kCls: {
      good_->lifted.reserve(tests_.size());
      for (const BitsSeq& test : tests_) good_->lifted.push_back(to_trits(test));
      good_->cls = packed_cls_response_words(netlist_, good_->lifted);
      break;
    }
    case FaultSimMode::kExact: {
      good_->exact.reserve(tests_.size());
      for (const BitsSeq& test : tests_) {
        good_->exact.push_back(exact_response(netlist_, test));
      }
      break;
    }
    case FaultSimMode::kSampled: {
      const unsigned lanes = std::max(1u, options_.sample_lanes);
      good_->sample_lanes = lanes;
      ParallelBinarySimulator sim(netlist_, lanes);
      const unsigned outputs = sim.num_outputs();
      const unsigned words = sim.words();
      std::size_t total = 0;
      good_->sample_offsets.resize(tests_.size());
      for (std::size_t ti = 0; ti < tests_.size(); ++ti) {
        good_->sample_offsets[ti] = total;
        total += tests_[ti].size() * outputs;
      }
      good_->sample_flags.assign(total, 0);
      for (std::size_t ti = 0; ti < tests_.size(); ++ti) {
        Rng rng(test_seed(options_.sample_seed, ti));
        for (unsigned l = 0; l < sim.num_latches(); ++l) {
          for (unsigned lane = 0; lane < lanes; ++lane) {
            sim.set_state_bit(l, lane, rng.coin());
          }
        }
        std::uint8_t* flags = good_->sample_flags.data() + good_->sample_offsets[ti];
        for (const Bits& in : tests_[ti]) {
          sim.step_broadcast(in);
          for (unsigned o = 0; o < outputs; ++o) {
            bool all0 = true, all1 = true;
            const auto* ow = sim.output_words(o);
            for (unsigned w = 0; w < words; ++w) {
              const std::uint64_t mask = (w + 1 == words && lanes % 64 != 0)
                                             ? low_mask(lanes % 64)
                                             : ~0ULL;
              all0 &= (ow[w] & mask) == 0;
              all1 &= (ow[w] & mask) == mask;
            }
            flags[o] = static_cast<std::uint8_t>((all0 ? 1 : 0) | (all1 ? 2 : 0));
          }
          flags += outputs;
        }
      }
      break;
    }
  }
}

FaultSimEngine::~FaultSimEngine() = default;

namespace {

/// kCls verdict: walk the test set one packed 64-test word at a time,
/// compare every cycle's faulty output word against the shared good word,
/// and exit on the first detecting word. Witness rule (deterministic):
/// earliest chunk, then earliest cycle, then output order, then lowest
/// lane — not necessarily the globally first detecting test.
int cls_witness(const Netlist& netlist, const std::vector<TritsSeq>& lifted,
                const PackedResponseWords& good, const Fault& fault,
                const std::atomic<int>* verdict, std::size_t* evals,
                ResourceBudget* budget) {
  const std::size_t total = lifted.size();
  if (total == 0) return -1;
  const Netlist faulty = inject_fault(netlist, fault);
  const unsigned lanes = static_cast<unsigned>(std::min<std::size_t>(64, total));
  PackedTernarySimulator sim(faulty, lanes);
  PackedTrits cycle_inputs(sim.num_inputs(), lanes);
  const unsigned outputs = sim.num_outputs();
  for (std::size_t chunk = 0; chunk * 64 < total; ++chunk) {
    if (!budget->checkpoint("fault/cls-chunk")) return kUndecided;
    if (chunk > 0) {
      const int v = adopted_verdict(verdict);
      if (v != kUndecided) return v;
    }
    const std::size_t begin = chunk * 64;
    const unsigned count =
        static_cast<unsigned>(std::min<std::size_t>(64, total - begin));
    std::size_t max_len = 0;
    for (unsigned b = 0; b < count; ++b) {
      max_len = std::max(max_len, lifted[begin + b].size());
    }
    *evals += count;
    sim.reset_to_all_x();
    for (std::size_t t = 0; t < max_len; ++t) {
      pack_cycle_inputs(lifted, begin, count, t, Trit::kX, &cycle_inputs);
      sim.step_packed(cycle_inputs);
      std::uint64_t active = 0;
      for (unsigned b = 0; b < count; ++b) {
        active |= static_cast<std::uint64_t>(t < lifted[begin + b].size()) << b;
      }
      if (active == 0) continue;
      for (unsigned o = 0; o < outputs; ++o) {
        const TritWord f = sim.output_words(o)[0];
        const TritWord g = good.at(t, o, static_cast<unsigned>(chunk));
        const std::uint64_t det = (f.ones ^ g.ones) & ~f.unk & ~g.unk & active;
        if (det != 0) {
          return static_cast<int>(begin) + std::countr_zero(det);
        }
      }
    }
  }
  return -1;
}

/// kExact verdict: first test (in test order) whose exact faulty response
/// definitely differs from the shared good response.
int exact_witness(const Netlist& netlist, const std::vector<BitsSeq>& tests,
                  const std::vector<TritsSeq>& good, const Fault& fault,
                  const std::atomic<int>* verdict, std::size_t* evals,
                  ResourceBudget* budget) {
  const Netlist faulty = inject_fault(netlist, fault);
  for (std::size_t ti = 0; ti < tests.size(); ++ti) {
    if (!budget->checkpoint("fault/exact-test")) return kUndecided;
    if (ti > 0) {
      const int v = adopted_verdict(verdict);
      if (v != kUndecided) return v;
    }
    ++*evals;
    if (responses_distinguish(good[ti], exact_response(faulty, tests[ti]))) {
      return static_cast<int>(ti);
    }
  }
  return -1;
}

/// kSampled verdict: first test whose faulty sample (re-seeded from the
/// same per-test power-up draws as the good pass) definitely disagrees with
/// the stored good agreement flags at some (cycle, output).
int sampled_witness(const Netlist& netlist, const std::vector<BitsSeq>& tests,
                    unsigned lanes, const std::uint8_t* flags,
                    const std::size_t* offsets, std::uint64_t sample_seed,
                    const Fault& fault, const std::atomic<int>* verdict,
                    std::size_t* evals, ResourceBudget* budget) {
  const Netlist faulty = inject_fault(netlist, fault);
  ParallelBinarySimulator bad(faulty, lanes);
  const unsigned outputs = bad.num_outputs();
  const unsigned words = bad.words();
  for (std::size_t ti = 0; ti < tests.size(); ++ti) {
    if (!budget->checkpoint("fault/sampled-test")) return kUndecided;
    if (ti > 0) {
      const int v = adopted_verdict(verdict);
      if (v != kUndecided) return v;
    }
    ++*evals;
    Rng rng(test_seed(sample_seed, ti));
    for (unsigned l = 0; l < bad.num_latches(); ++l) {
      for (unsigned lane = 0; lane < lanes; ++lane) {
        bad.set_state_bit(l, lane, rng.coin());
      }
    }
    const std::uint8_t* tf = flags + offsets[ti];
    for (const Bits& in : tests[ti]) {
      bad.step_broadcast(in);
      for (unsigned o = 0; o < outputs; ++o) {
        const std::uint8_t gf = tf[o];
        if (gf == 0) continue;  // good sample not constant here
        bool all0 = true, all1 = true;
        const auto* ow = bad.output_words(o);
        for (unsigned w = 0; w < words; ++w) {
          const std::uint64_t mask = (w + 1 == words && lanes % 64 != 0)
                                         ? low_mask(lanes % 64)
                                         : ~0ULL;
          all0 &= (ow[w] & mask) == 0;
          all1 &= (ow[w] & mask) == mask;
        }
        if (((gf & 1) && all1) || ((gf & 2) && all0)) {
          return static_cast<int>(ti);
        }
      }
      tf += outputs;
    }
  }
  return -1;
}

}  // namespace

FaultSimResult FaultSimEngine::run(const std::vector<Fault>& faults) const {
  const auto t0 = std::chrono::steady_clock::now();
  // One budget per run: workers probe it cooperatively (its counters are
  // atomics, so concurrent checkpoints are safe) and wind down together
  // once any limit blows. Exhaustion never throws out of the pool — an
  // aborted fault simply stays undecided.
  ResourceBudget budget(options_.budget, options_.cancel);
  FaultSimResult result;
  result.detected.assign(faults.size(), false);
  result.detecting_test.assign(faults.size(), -1);
  if (!faults.empty()) {
    // Map list entries to unique verdict slots (duplicates share a slot).
    std::vector<std::size_t> slot(faults.size());
    std::unordered_map<FaultKey, std::size_t, FaultKeyHash> ids;
    ids.reserve(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const FaultKey key{faults[i].site.node.value, faults[i].site.port,
                         faults[i].stuck_value};
      slot[i] = ids.try_emplace(key, ids.size()).first->second;
    }
    std::vector<std::atomic<int>> verdicts(ids.size());
    for (auto& v : verdicts) v.store(kUndecided, std::memory_order_relaxed);

    // Witnesses land in a plain int array: one element per fault, so
    // concurrent writes never share an object (vector<bool> would).
    std::vector<int> witness(faults.size(), -1);
    std::atomic<std::size_t> evals{0};
    std::atomic<std::size_t> dropped{0};

    const auto compute = [&](const Fault& fault, const std::atomic<int>* v,
                             std::size_t* local_evals) -> int {
      switch (options_.mode) {
        case FaultSimMode::kCls:
          return cls_witness(netlist_, good_->lifted, good_->cls, fault, v,
                             local_evals, &budget);
        case FaultSimMode::kExact:
          return exact_witness(netlist_, tests_, good_->exact, fault, v,
                               local_evals, &budget);
        case FaultSimMode::kSampled:
          return sampled_witness(netlist_, tests_, good_->sample_lanes,
                                 good_->sample_flags.data(),
                                 good_->sample_offsets.data(),
                                 options_.sample_seed, fault, v, local_evals,
                                 &budget);
      }
      return -1;
    };

    ThreadPool pool(options_.threads);
    pool.parallel_for(
        faults.size(), 1, [&](std::size_t begin, std::size_t end) {
          std::size_t local_evals = 0;
          std::size_t local_dropped = 0;
          for (std::size_t i = begin; i < end; ++i) {
            std::atomic<int>& v = verdicts[slot[i]];
            int w = v.load(std::memory_order_acquire);
            if (options_.drop_detected && w != kUndecided) {
              ++local_dropped;  // settled from the shared verdict table
            } else if (!budget.checkpoint("fault/fault")) {
              w = kUndecided;  // budget blown: leave this fault undecided
            } else {
              w = compute(faults[i],
                          options_.drop_detected ? &v : nullptr, &local_evals);
              // Verdicts are pure functions of (netlist, fault, tests,
              // options), so racing stores write the same value. A
              // budget-aborted walk returns kUndecided and must NOT be
              // published — another worker adopting it would corrupt its
              // own verdict.
              if (w != kUndecided) v.store(w, std::memory_order_release);
            }
            witness[i] = w;
          }
          evals.fetch_add(local_evals, std::memory_order_relaxed);
          dropped.fetch_add(local_dropped, std::memory_order_relaxed);
        });

    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (witness[i] == kUndecided) {
        ++result.faults_skipped;
        continue;  // detecting_test stays -1, detected stays false
      }
      result.detecting_test[i] = witness[i];
      if (witness[i] >= 0) {
        result.detected[i] = true;
        ++result.num_detected;
      }
    }
    result.complete = result.faults_skipped == 0;
    result.tests_run = evals.load();
    result.faults_dropped = dropped.load();
    result.coverage = static_cast<double>(result.num_detected) /
                      static_cast<double>(faults.size());
  }
  result.usage = budget.usage();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace rtv
