#include "fault/fault.hpp"

#include <sstream>

namespace rtv {

std::string describe(const Netlist& netlist, const Fault& fault) {
  std::ostringstream os;
  os << netlist.name(fault.site.node) << "." << fault.site.port << " s-a-"
     << (fault.stuck_value ? 1 : 0);
  return os.str();
}

std::vector<Fault> enumerate_faults(const Netlist& netlist) {
  std::vector<Fault> faults;
  for (std::uint32_t i = 0; i < netlist.num_slots(); ++i) {
    const NodeId id(i);
    if (netlist.is_dead(id)) continue;
    for (std::uint32_t p = 0; p < netlist.num_ports(id); ++p) {
      const PortRef port(id, p);
      if (netlist.sinks(port).empty()) continue;
      faults.push_back(Fault{port, false});
      faults.push_back(Fault{port, true});
    }
  }
  return faults;
}

std::vector<Fault> collapse_faults(const Netlist& netlist) {
  std::vector<Fault> kept;
  for (const Fault& f : enumerate_faults(netlist)) {
    const CellKind k = netlist.kind(f.site.node);
    // A fault on a buffer's output is equivalent to the same fault on its
    // input net; a fault on a junction's input net dominates nothing we
    // keep (branch faults are distinct), but the junction *output* fault of
    // a width-1 junction equals its input fault.
    if (k == CellKind::kBuf) continue;
    if (k == CellKind::kJunc && netlist.num_ports(f.site.node) == 1) continue;
    kept.push_back(f);
  }
  return kept;
}

Netlist inject_fault(const Netlist& netlist, const Fault& fault) {
  Netlist out = netlist;
  const std::vector<PinRef> sinks = out.sinks(fault.site);
  RTV_REQUIRE(!sinks.empty(), "fault site drives nothing");
  const NodeId constant = out.add_const(fault.stuck_value, "fault");
  for (const PinRef& sink : sinks) {
    out.disconnect(sink);
    out.connect(PortRef(constant, 0), sink);
  }
  return out;
}

Fault fault_on(const Netlist& netlist, const std::string& node_name,
               std::uint32_t port, bool stuck_value) {
  const NodeId id = netlist.find_by_name(node_name);
  RTV_REQUIRE(id.valid(), "fault_on: no node named '" + node_name + "'");
  return Fault{PortRef(id, port), stuck_value};
}

}  // namespace rtv
