#pragma once
// Batch fault simulation: detection status of a fault list under a test
// set. Three detection modes (exact, sampled, CLS) share one multi-threaded
// engine (fault/engine.hpp) with per-fault early exit and fault dropping;
// this header is the public API.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "fault/fault.hpp"
#include "fault/test_eval.hpp"
#include "sim/vectors.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"

namespace rtv {

/// How a (fault, test) pair is decided. The three modes bracket definite
/// detection from both sides:
///   kSampled over-approximates it (fewer power-up states can only make a
///   definite disagreement easier), kCls under-approximates it (CLS
///   detection implies exact detection, paper Section 5), and kExact is the
///   ground truth in between.
enum class FaultSimMode {
  /// Exact ternary responses over all power-up states. Ground truth;
  /// requires few latches.
  kExact,
  /// Bit-parallel binary simulation of `sample_lanes` random shared
  /// power-up states per test. Scales to large designs; over-approximates.
  kSampled,
  /// Conservative three-valued simulation from the all-X state, 64 tests
  /// per machine word. Scales best; under-approximates.
  kCls,
};

const char* to_string(FaultSimMode mode);

/// Parses "exact" / "sampled" / "cls".
std::optional<FaultSimMode> fault_sim_mode_from_string(std::string_view name);

struct FaultSimOptions {
  FaultSimMode mode = FaultSimMode::kExact;
  /// kSampled only: random power-up states simulated bit-parallel per test.
  unsigned sample_lanes = 256;
  /// kSampled only: seed of the per-test power-up draws (each test's sample
  /// is derived from (sample_seed, test index), never from thread timing).
  std::uint64_t sample_seed = 1;
  /// Engine worker threads; 0 means one per hardware thread. The result is
  /// identical for every value — threading only changes wall time.
  unsigned threads = 1;
  /// Publish every fault verdict in a shared table and skip fault-list
  /// entries whose verdict is already known (duplicate entries, and work
  /// raced to completion by another worker). Never changes the result,
  /// only the work performed.
  bool drop_detected = true;
  /// Resource governance for the run (wall-clock deadline, step quota;
  /// zeroes mean unlimited). On exhaustion the engine stops starting new
  /// work, leaves the remaining faults undecided and returns a partial
  /// result with complete == false — it never throws mid-run.
  ResourceLimits budget;
  /// Cooperative cancellation: request_cancel() from any thread makes every
  /// worker wind down at its next checkpoint.
  CancellationToken cancel;
};

struct FaultSimResult {
  std::vector<bool> detected;  ///< per fault
  /// Per fault: index into `tests` of the engine's detection witness, or -1
  /// if undetected. kExact/kSampled report the first detecting test in test
  /// order; kCls reports the lowest-index test of the earliest 64-test word
  /// at the earliest detecting cycle (deterministic, but not necessarily
  /// the globally first detecting test).
  std::vector<int> detecting_test;
  std::size_t num_detected = 0;
  double coverage = 0.0;  ///< num_detected / faults.size()

  // Run statistics, computed by the engine in one place and reported by the
  // CLI and benchmarks. wall_seconds (and, when duplicate faults race,
  // tests_run / faults_dropped) depend on scheduling; the detection fields
  // above never do.
  double wall_seconds = 0.0;
  std::size_t tests_run = 0;       ///< (fault, test) evaluations started
  std::size_t faults_dropped = 0;  ///< entries settled from the shared table

  /// False when the resource budget (or a cancellation) stopped the run
  /// before every fault was decided. Undecided faults count as undetected
  /// in `detected`/`coverage` — check `complete` before treating coverage
  /// as a measurement rather than a lower bound.
  bool complete = true;
  std::size_t faults_skipped = 0;  ///< entries left undecided on exhaustion
  ResourceUsage usage;             ///< all-zero when run ungoverned
};

/// Runs every test in `tests` against every fault; a fault counts detected
/// if any test detects it under `options.mode`.
FaultSimResult fault_simulate(const Netlist& netlist,
                              const std::vector<Fault>& faults,
                              const std::vector<BitsSeq>& tests,
                              const FaultSimOptions& options = {});

/// Sampled detection of one fault by one test: simulates good and faulty
/// designs from `lanes` random shared power-up states; the fault counts
/// detected if at some cycle an output is constant v over all good lanes
/// and constant !v over all faulty lanes.
bool sampled_test_detects(const Netlist& netlist, const Fault& fault,
                          const BitsSeq& test, unsigned lanes, Rng& rng);

/// Reference CLS batch fault simulation: one full packed pass over the
/// whole test set per fault — no early exit, no dropping, single-threaded.
/// Kept as the baseline the engine is cross-checked and benchmarked
/// against; use fault_simulate(mode = kCls) for real workloads.
FaultSimResult cls_fault_simulate(const Netlist& netlist,
                                  const std::vector<Fault>& faults,
                                  const std::vector<BitsSeq>& tests);

}  // namespace rtv
