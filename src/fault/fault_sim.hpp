#pragma once
// Batch fault simulation: detection status of a fault list under a test
// set, exact (all power-up states, small designs) or sampled (bit-parallel
// over random power-up states, scales to large designs).

#include <vector>

#include "fault/fault.hpp"
#include "fault/test_eval.hpp"
#include "sim/vectors.hpp"
#include "util/rng.hpp"

namespace rtv {

struct FaultSimOptions {
  /// Exact mode enumerates all power-up states (requires few latches);
  /// sampled mode simulates `sample_lanes` random power-up states
  /// bit-parallel and reports detection over the sample — an
  /// over-approximation of definite detection, useful for coverage trends.
  bool exact = true;
  unsigned sample_lanes = 256;
  std::uint64_t sample_seed = 1;
  /// When set, detection is decided by conservative three-valued simulation
  /// from the all-X state instead (CLS detection implies exact detection —
  /// an under-approximation), evaluated 64 tests per word through the
  /// packed ternary engine. Overrides `exact`/sampling.
  bool cls = false;
};

struct FaultSimResult {
  std::vector<bool> detected;    ///< per fault
  std::size_t num_detected = 0;
  double coverage = 0.0;         ///< num_detected / faults.size()
};

/// Runs every test in `tests` against every fault; a fault counts detected
/// if any test detects it.
FaultSimResult fault_simulate(const Netlist& netlist,
                              const std::vector<Fault>& faults,
                              const std::vector<BitsSeq>& tests,
                              const FaultSimOptions& options = {});

/// Sampled detection of one fault by one test: simulates good and faulty
/// designs from `lanes` random shared power-up states; the fault counts
/// detected if at some cycle an output is constant v over all good lanes
/// and constant !v over all faulty lanes.
bool sampled_test_detects(const Netlist& netlist, const Fault& fault,
                          const BitsSeq& test, unsigned lanes, Rng& rng);

/// CLS-based batch fault simulation: conservative (under-approximate)
/// detection, but the whole test set runs 64 tests per machine word —
/// good-design responses are computed once, then one packed run per fault.
FaultSimResult cls_fault_simulate(const Netlist& netlist,
                                  const std::vector<Fault>& faults,
                                  const std::vector<BitsSeq>& tests);

}  // namespace rtv
