#pragma once
// Sequential test-pattern generation under unknown power-up state — the
// DFT workflow of the paper's Section 2.2 context ([MERM94]). Random-search
// ATPG with fault dropping: propose candidate sequences, keep each one that
// definitely detects (exact three-valued criterion) at least one
// yet-undetected fault, stop when coverage stalls.
//
// The generated test set is exactly the artifact Theorem 4.6 speaks about:
// tests computed on D remain valid on the k-cycle-delayed retimed design.

#include <vector>

#include "fault/fault.hpp"
#include "fault/test_eval.hpp"
#include "netlist/netlist.hpp"
#include "sim/vectors.hpp"
#include "util/rng.hpp"

namespace rtv {

struct TpgOptions {
  unsigned max_candidates = 400;   ///< candidate sequences to try
  unsigned min_length = 2;         ///< candidate length range
  unsigned max_length = 8;
  /// Probability a candidate holds one random vector constant (good at
  /// flushing pipelines) instead of using fresh random vectors per cycle.
  double constant_probability = 0.5;
  std::uint64_t seed = 1;
};

struct TestSet {
  std::vector<BitsSeq> tests;             ///< the kept sequences
  std::vector<Fault> faults;              ///< the collapsed fault list
  std::vector<bool> detected;             ///< per fault
  std::vector<int> detected_by;           ///< fault -> test index (or -1)
  std::size_t num_detected = 0;
  double coverage = 0.0;

  std::string summary() const;
};

/// Generates a compact test set for all collapsed stuck-at faults of the
/// design. Deterministic for a given option seed.
TestSet generate_tests(const Netlist& netlist, const TpgOptions& options = {});

/// Re-grades an existing test set against a (possibly retimed) design whose
/// combinational NodeIds are compatible with the fault list, with
/// `delay_cycles` warm-up cycles before each test (Thm 4.6's C^k).
TestSet grade_tests(const Netlist& netlist, const std::vector<Fault>& faults,
                    const std::vector<BitsSeq>& tests, unsigned delay_cycles);

}  // namespace rtv
