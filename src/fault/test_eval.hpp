#pragma once
// Sequential test evaluation under unknown power-up state.
//
// A test sequence *detects* a fault iff at some cycle some output is a
// definite value in the fault-free design from EVERY power-up state and the
// complementary definite value in the faulty design from every power-up
// state — i.e. the exact three-valued responses differ 0-vs-1 at some
// position (the criterion behind the paper's Section 2.2 example).
//
// The CLS variant replaces the exact responses with conservative
// three-valued simulation from the all-X state; CLS detection implies exact
// detection but not conversely.

#include "fault/fault.hpp"
#include "netlist/netlist.hpp"
#include "sim/vectors.hpp"

namespace rtv {

/// Exact three-valued response of a design to a binary test sequence,
/// starting from all power-up states.
TritsSeq exact_response(const Netlist& netlist, const BitsSeq& test);

/// Exact response starting from the states possible after `delay_cycles`
/// arbitrary-input cycles (the C^n of Section 3.4). Requires the number of
/// primary inputs to be small enough to enumerate (<= 16).
TritsSeq exact_response_delayed(const Netlist& netlist, const BitsSeq& test,
                                unsigned delay_cycles);

/// CLS response from the all-X state.
TritsSeq cls_response(const Netlist& netlist, const BitsSeq& test);

/// CLS responses of a whole test set at once, 64 tests per machine word
/// (the packed ternary engine). Entry i equals cls_response(netlist,
/// tests[i]); use this form whenever a test set is evaluated in bulk.
std::vector<TritsSeq> cls_response_batch(const Netlist& netlist,
                                         const std::vector<BitsSeq>& tests);

/// True iff the two responses definitely differ at some (cycle, output).
bool responses_distinguish(const TritsSeq& good, const TritsSeq& faulty);

/// Exact detection of a fault by a test.
bool test_detects(const Netlist& netlist, const Fault& fault,
                  const BitsSeq& test);

/// Exact detection when the design has been clocked `delay_cycles` cycles
/// with arbitrary inputs before the test is applied (Theorem 4.6's C^k).
bool test_detects_delayed(const Netlist& netlist, const Fault& fault,
                          const BitsSeq& test, unsigned delay_cycles);

/// CLS-based detection (conservative).
bool cls_test_detects(const Netlist& netlist, const Fault& fault,
                      const BitsSeq& test);

}  // namespace rtv
