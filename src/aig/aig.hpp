#pragma once
// And-Inverter Graph IR — the structural substrate of the SAT equivalence
// backend (ROADMAP: "Second backend: AIG + SAT-based equivalence").
//
// Every combinational function is expressed with two-input AND nodes and
// edge inversions; sequential behaviour with latches whose next-state is an
// AIG literal and whose initial value is a constant. Construction maintains
// two invariants the downstream CNF unroller relies on:
//
//  * structural hashing — land() returns the existing node for a repeated
//    (fanin, fanin) pair, so syntactically equal subcircuits share one node;
//  * constant propagation — ANDs with constant or complementary fanins fold
//    to a constant or a fanin at build time and never allocate a node.
//
// Literal encoding follows the AIGER convention: lit = 2*var + negated,
// var 0 is the constant, so kFalse = 0 and kTrue = 1. AND fanin variables
// are always created before the AND itself, so iterating variables in index
// order is a topological order.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace rtv {

class Aig {
 public:
  using Lit = std::uint32_t;
  using Var = std::uint32_t;

  static constexpr Lit kFalse = 0;
  static constexpr Lit kTrue = 1;

  static constexpr Lit make_lit(Var var, bool negated) {
    return 2 * var + (negated ? 1u : 0u);
  }
  static constexpr Var lit_var(Lit lit) { return lit >> 1; }
  static constexpr bool lit_negated(Lit lit) { return (lit & 1u) != 0; }
  static constexpr Lit lit_not(Lit lit) { return lit ^ 1u; }

  enum class NodeKind : std::uint8_t { kConst, kInput, kLatch, kAnd };

  Aig();

  // ---- construction --------------------------------------------------------

  /// Fresh primary input; returns its (positive) literal.
  Lit add_input();

  /// Fresh latch with the given power-up constant; returns the (positive)
  /// literal of its current-state output. Wire the next-state function
  /// later with set_latch_next — every latch must be wired before use.
  Lit add_latch(bool init);
  void set_latch_next(std::size_t latch_index, Lit next);

  /// Registers `f` as primary output; returns the output index.
  std::size_t add_output(Lit f);

  /// Structural-hashed, constant-folded two-input AND.
  Lit land(Lit a, Lit b);

  Lit lor(Lit a, Lit b) { return lit_not(land(lit_not(a), lit_not(b))); }
  Lit lxor(Lit a, Lit b);
  Lit lxnor(Lit a, Lit b) { return lit_not(lxor(a, b)); }
  /// 2:1 mux with the netlist's kMux pin order (s, a, b): s ? b : a.
  Lit lmux(Lit s, Lit a, Lit b);
  /// Balanced conjunction / disjunction reductions.
  Lit land_many(const std::vector<Lit>& lits);
  Lit lor_many(const std::vector<Lit>& lits);

  // ---- queries -------------------------------------------------------------

  std::size_t num_vars() const { return kinds_.size(); }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_latches() const { return latches_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  std::size_t num_ands() const { return num_ands_; }

  NodeKind kind(Var var) const { return kinds_.at(var); }
  bool is_and(Var var) const { return kinds_.at(var) == NodeKind::kAnd; }
  /// Fanins of an AND variable (as literals).
  Lit fanin0(Var var) const;
  Lit fanin1(Var var) const;

  Var input_var(std::size_t i) const { return inputs_.at(i); }
  Var latch_var(std::size_t i) const { return latches_.at(i); }
  bool latch_init(std::size_t i) const { return latch_init_.at(i) != 0; }
  Lit latch_next(std::size_t i) const;
  Lit output(std::size_t o) const { return outputs_.at(o); }

 private:
  struct Fanins {
    Lit f0 = kFalse;
    Lit f1 = kFalse;
  };

  std::vector<NodeKind> kinds_;       // per var
  std::vector<Fanins> fanins_;        // per var (meaningful for kAnd)
  std::vector<Var> inputs_;           // input index -> var
  std::vector<Var> latches_;          // latch index -> var
  std::vector<std::uint8_t> latch_init_;
  std::vector<Lit> latch_next_;       // kNoNext until wired
  std::vector<Lit> outputs_;
  std::unordered_map<std::uint64_t, Var> strash_;
  std::size_t num_ands_ = 0;

  static constexpr Lit kNoNext = 0xffffffffu;

  Var new_var(NodeKind kind);
};

}  // namespace rtv
