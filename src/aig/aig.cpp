#include "aig/aig.hpp"

namespace rtv {

Aig::Aig() {
  new_var(NodeKind::kConst);  // var 0: lit 0 = false, lit 1 = true
}

Aig::Var Aig::new_var(NodeKind kind) {
  const Var var = static_cast<Var>(kinds_.size());
  kinds_.push_back(kind);
  fanins_.emplace_back();
  return var;
}

Aig::Lit Aig::add_input() {
  const Var var = new_var(NodeKind::kInput);
  inputs_.push_back(var);
  return make_lit(var, false);
}

Aig::Lit Aig::add_latch(bool init) {
  const Var var = new_var(NodeKind::kLatch);
  latches_.push_back(var);
  latch_init_.push_back(init ? 1 : 0);
  latch_next_.push_back(kNoNext);
  return make_lit(var, false);
}

void Aig::set_latch_next(std::size_t latch_index, Lit next) {
  RTV_REQUIRE(latch_index < latches_.size(), "latch index out of range");
  RTV_REQUIRE(lit_var(next) < kinds_.size(), "next literal out of range");
  latch_next_.at(latch_index) = next;
}

Aig::Lit Aig::latch_next(std::size_t i) const {
  const Lit next = latch_next_.at(i);
  RTV_REQUIRE(next != kNoNext, "latch next-state never wired");
  return next;
}

std::size_t Aig::add_output(Lit f) {
  RTV_REQUIRE(lit_var(f) < kinds_.size(), "output literal out of range");
  outputs_.push_back(f);
  return outputs_.size() - 1;
}

Aig::Lit Aig::fanin0(Var var) const {
  RTV_REQUIRE(is_and(var), "fanin0 of a non-AND variable");
  return fanins_.at(var).f0;
}

Aig::Lit Aig::fanin1(Var var) const {
  RTV_REQUIRE(is_and(var), "fanin1 of a non-AND variable");
  return fanins_.at(var).f1;
}

Aig::Lit Aig::land(Lit a, Lit b) {
  RTV_REQUIRE(lit_var(a) < kinds_.size() && lit_var(b) < kinds_.size(),
              "AND fanin literal out of range");
  // Constant propagation and trivial-sharing rules.
  if (a == kFalse || b == kFalse) return kFalse;
  if (a == kTrue) return b;
  if (b == kTrue) return a;
  if (a == b) return a;
  if (a == lit_not(b)) return kFalse;
  // Canonical fanin order for the structural hash.
  if (a > b) std::swap(a, b);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
  if (auto it = strash_.find(key); it != strash_.end()) {
    return make_lit(it->second, false);
  }
  const Var var = new_var(NodeKind::kAnd);
  fanins_.back() = Fanins{a, b};
  strash_.emplace(key, var);
  ++num_ands_;
  return make_lit(var, false);
}

Aig::Lit Aig::lxor(Lit a, Lit b) {
  // a ^ b = !(!(a & !b) & !(!a & b))
  return lit_not(land(lit_not(land(a, lit_not(b))), lit_not(land(lit_not(a), b))));
}

Aig::Lit Aig::lmux(Lit s, Lit a, Lit b) {
  // s ? b : a = !(!(s & b) & !(!s & a))
  return lit_not(land(lit_not(land(s, b)), lit_not(land(lit_not(s), a))));
}

Aig::Lit Aig::land_many(const std::vector<Lit>& lits) {
  if (lits.empty()) return kTrue;
  std::vector<Lit> level = lits;
  while (level.size() > 1) {
    std::vector<Lit> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(land(level[i], level[i + 1]));
    }
    if (level.size() % 2 != 0) next.push_back(level.back());
    level = std::move(next);
  }
  return level.front();
}

Aig::Lit Aig::lor_many(const std::vector<Lit>& lits) {
  if (lits.empty()) return kFalse;
  std::vector<Lit> negated;
  negated.reserve(lits.size());
  for (Lit l : lits) negated.push_back(lit_not(l));
  return lit_not(land_many(negated));
}

}  // namespace rtv
