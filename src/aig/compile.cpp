#include "aig/compile.hpp"

#include <unordered_map>

#include "util/bits.hpp"

namespace rtv {

namespace {

std::uint64_t port_key(PortRef p) {
  return (static_cast<std::uint64_t>(p.node.value) << 32) | p.port;
}

class Compiler {
 public:
  Compiler(const Netlist& src, const Bits& init, ResourceBudget* budget)
      : src_(src), init_(init), budget_(budget) {}

  Aig run();

 private:
  Aig::Lit lit_of(PortRef p) const {
    auto it = lits_.find(port_key(p));
    RTV_REQUIRE(it != lits_.end(), "compiler visited a node before its driver");
    return it->second;
  }

  void compile_node(NodeId id);
  void compile_table(NodeId id, const std::vector<Aig::Lit>& ins);

  const Netlist& src_;
  const Bits& init_;
  ResourceBudget* budget_;
  Aig aig_;
  std::unordered_map<std::uint64_t, Aig::Lit> lits_;
};

void Compiler::compile_table(NodeId id, const std::vector<Aig::Lit>& ins) {
  const TruthTable& table = src_.table(src_.node(id).table);
  const unsigned n = table.num_inputs();
  const unsigned m = table.num_outputs();
  const std::uint64_t rows = pow2(n);
  std::vector<std::vector<Aig::Lit>> products(m);
  std::vector<Aig::Lit> factors;
  for (std::uint64_t x = 0; x < rows; ++x) {
    if (budget_ != nullptr && (x & 255u) == 255u) {
      budget_->checkpoint_or_throw("aig/table-minterm");
    }
    const std::uint64_t row = table.eval_row(x);
    if (row == 0) continue;
    factors.clear();
    for (unsigned i = 0; i < n; ++i) {
      factors.push_back(get_bit(x, i) ? ins[i] : Aig::lit_not(ins[i]));
    }
    const Aig::Lit minterm = aig_.land_many(factors);
    for (unsigned j = 0; j < m; ++j) {
      if (get_bit(row, j)) products[j].push_back(minterm);
    }
  }
  for (unsigned j = 0; j < m; ++j) {
    lits_[port_key(PortRef(id, j))] = aig_.lor_many(products[j]);
  }
}

void Compiler::compile_node(NodeId id) {
  const Node& node = src_.node(id);
  // Sources and sinks are handled by run(); in particular a latch's fanin
  // (its next-state driver) is not compiled yet when the latch appears at
  // the head of the topological order, so bail before touching literals.
  if (node.kind == CellKind::kInput || node.kind == CellKind::kLatch ||
      node.kind == CellKind::kOutput) {
    return;
  }
  std::vector<Aig::Lit> ins;
  ins.reserve(node.fanin.size());
  for (const PortRef& p : node.fanin) ins.push_back(lit_of(p));

  const auto set0 = [&](Aig::Lit l) { lits_[port_key(PortRef(id, 0))] = l; };

  switch (node.kind) {
    case CellKind::kInput:
    case CellKind::kLatch:
    case CellKind::kOutput:
      return;  // unreachable (handled above)
    case CellKind::kConst0:
      set0(Aig::kFalse);
      return;
    case CellKind::kConst1:
      set0(Aig::kTrue);
      return;
    case CellKind::kBuf:
      set0(ins[0]);
      return;
    case CellKind::kNot:
      set0(Aig::lit_not(ins[0]));
      return;
    case CellKind::kAnd:
      set0(aig_.land_many(ins));
      return;
    case CellKind::kNand:
      set0(Aig::lit_not(aig_.land_many(ins)));
      return;
    case CellKind::kOr:
      set0(aig_.lor_many(ins));
      return;
    case CellKind::kNor:
      set0(Aig::lit_not(aig_.lor_many(ins)));
      return;
    case CellKind::kXor:
    case CellKind::kXnor: {
      Aig::Lit acc = Aig::kFalse;
      for (Aig::Lit l : ins) acc = aig_.lxor(acc, l);
      set0(node.kind == CellKind::kXor ? acc : Aig::lit_not(acc));
      return;
    }
    case CellKind::kMux:
      set0(aig_.lmux(ins[0], ins[1], ins[2]));
      return;
    case CellKind::kJunc:
      for (std::uint32_t p = 0; p < node.num_ports(); ++p) {
        lits_[port_key(PortRef(id, p))] = ins[0];
      }
      return;
    case CellKind::kTable:
      compile_table(id, ins);
      return;
  }
  RTV_CHECK_MSG(false, "compile_node: unhandled cell kind");
}

Aig Compiler::run() {
  RTV_REQUIRE(init_.size() == src_.latches().size(),
              "initial state size mismatch");

  for (const NodeId id : src_.primary_inputs()) {
    lits_[port_key(PortRef(id, 0))] = aig_.add_input();
  }
  const auto& latches = src_.latches();
  for (std::size_t i = 0; i < latches.size(); ++i) {
    lits_[port_key(PortRef(latches[i], 0))] = aig_.add_latch(init_[i] != 0);
  }
  for (const NodeId id : combinational_topo_order(src_)) {
    compile_node(id);
  }
  for (std::size_t i = 0; i < latches.size(); ++i) {
    aig_.set_latch_next(i, lit_of(src_.node(latches[i]).fanin[0]));
  }
  for (const NodeId id : src_.primary_outputs()) {
    aig_.add_output(lit_of(src_.node(id).fanin[0]));
  }
  return std::move(aig_);
}

}  // namespace

Aig aig_from_netlist(const Netlist& netlist, const Bits& init,
                     ResourceBudget* budget) {
  return Compiler(netlist, init, budget).run();
}

}  // namespace rtv
