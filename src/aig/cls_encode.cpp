#include "aig/cls_encode.hpp"

#include <unordered_map>

#include "util/bits.hpp"

namespace rtv {

Bits ClsEncoding::all_x_state() const {
  Bits state(2 * original_latches, 0);
  for (std::size_t i = 0; i < original_latches; ++i) state[2 * i + 1] = 1;
  return state;
}

Bits encode_trits(const Trits& trits) {
  Bits bits;
  bits.reserve(2 * trits.size());
  for (Trit t : trits) {
    bits.push_back(t == Trit::kOne ? 1 : 0);
    bits.push_back(t == Trit::kX ? 1 : 0);
  }
  return bits;
}

Trits decode_trits(const Bits& bits) {
  RTV_REQUIRE(bits.size() % 2 == 0, "dual-rail vector must have even size");
  Trits trits;
  trits.reserve(bits.size() / 2);
  for (std::size_t i = 0; i < bits.size(); i += 2) {
    if (bits[i + 1] != 0) {
      trits.push_back(Trit::kX);  // (1,1) decodes as X too (masked input)
    } else {
      trits.push_back(bits[i] != 0 ? Trit::kOne : Trit::kZero);
    }
  }
  return trits;
}

namespace {

/// The (d, u) rails of one original signal.
struct Rail {
  PortRef d;
  PortRef u;
};

class Encoder {
 public:
  explicit Encoder(const Netlist& src) : src_(src) {}

  ClsEncoding run();

 private:
  PortRef mk_const(bool value) {
    PortRef& cached = value ? const1_ : const0_;
    if (!cached.valid()) {
      cached = PortRef(out_.add_const(value), 0);
    }
    return cached;
  }

  PortRef mk_not(PortRef a) {
    const NodeId g = out_.add_gate(CellKind::kNot);
    out_.connect(a, PinRef(g, 0));
    return PortRef(g, 0);
  }

  PortRef mk_gate(CellKind kind, const std::vector<PortRef>& ins) {
    RTV_REQUIRE(!ins.empty(), "variadic gate needs at least one fanin");
    if (ins.size() == 1 &&
        (kind == CellKind::kAnd || kind == CellKind::kOr)) {
      return ins[0];
    }
    const NodeId g =
        out_.add_gate(kind, static_cast<unsigned>(ins.size()));
    for (std::uint32_t i = 0; i < ins.size(); ++i) {
      out_.connect(ins[i], PinRef(g, i));
    }
    return PortRef(g, 0);
  }

  PortRef mk_and2(PortRef a, PortRef b) { return mk_gate(CellKind::kAnd, {a, b}); }
  PortRef mk_or2(PortRef a, PortRef b) { return mk_gate(CellKind::kOr, {a, b}); }
  PortRef mk_nor2(PortRef a, PortRef b) { return mk_gate(CellKind::kNor, {a, b}); }

  /// can-be-0 of a normalized rail: !d.
  PortRef can0(const Rail& r) { return mk_not(r.d); }
  /// can-be-1 of a normalized rail: d | u.
  PortRef can1(const Rail& r) { return mk_or2(r.d, r.u); }
  /// Definitely-0 of a normalized rail: !(d | u).
  PortRef is_zero(const Rail& r) { return mk_nor2(r.d, r.u); }

  Rail rail_of(PortRef src_port) const {
    auto it = rails_.find(key(src_port));
    RTV_REQUIRE(it != rails_.end(), "encoder visited a node before its driver");
    return it->second;
  }

  void set_rail(PortRef src_port, Rail rail) {
    rails_[key(src_port)] = rail;
  }

  static std::uint64_t key(PortRef p) {
    return (static_cast<std::uint64_t>(p.node.value) << 32) | p.port;
  }

  void encode_node(NodeId id);
  Rail encode_variadic(CellKind kind, const std::vector<Rail>& ins);
  Rail encode_mux(const Rail& s, const Rail& a, const Rail& b);
  std::vector<Rail> encode_table(const TruthTable& table,
                                 const std::vector<Rail>& ins);

  const Netlist& src_;
  Netlist out_;
  PortRef const0_;
  PortRef const1_;
  std::unordered_map<std::uint64_t, Rail> rails_;
  std::vector<NodeId> d_latch_;  // per original latch
  std::vector<NodeId> u_latch_;
};

Rail Encoder::encode_variadic(CellKind kind, const std::vector<Rail>& ins) {
  std::vector<PortRef> ds, c1s, zeros;
  ds.reserve(ins.size());
  for (const Rail& r : ins) ds.push_back(r.d);

  switch (kind) {
    case CellKind::kAnd:
    case CellKind::kNand: {
      for (const Rail& r : ins) zeros.push_back(is_zero(r));
      const PortRef all_one = mk_gate(CellKind::kAnd, ds);
      const PortRef any_zero = mk_gate(CellKind::kOr, zeros);
      const PortRef u = mk_nor2(any_zero, all_one);
      if (kind == CellKind::kAnd) return Rail{all_one, u};
      return Rail{any_zero, u};
    }
    case CellKind::kOr:
    case CellKind::kNor: {
      for (const Rail& r : ins) zeros.push_back(is_zero(r));
      const PortRef any_one = mk_gate(CellKind::kOr, ds);
      const PortRef all_zero = mk_gate(CellKind::kAnd, zeros);
      const PortRef u = mk_nor2(any_one, all_zero);
      if (kind == CellKind::kOr) return Rail{any_one, u};
      return Rail{all_zero, u};
    }
    case CellKind::kXor:
    case CellKind::kXnor: {
      std::vector<PortRef> us;
      for (const Rail& r : ins) us.push_back(r.u);
      const PortRef any_x = mk_gate(CellKind::kOr, us);
      const PortRef parity = mk_gate(
          kind == CellKind::kXor ? CellKind::kXor : CellKind::kXnor, ds);
      const PortRef d = mk_and2(parity, mk_not(any_x));
      return Rail{d, any_x};
    }
    default:
      RTV_CHECK_MSG(false, "encode_variadic: unexpected cell kind");
      return Rail{};
  }
}

Rail Encoder::encode_mux(const Rail& s, const Rail& a, const Rail& b) {
  const PortRef s0 = can0(s), s1 = can1(s);
  const PortRef can_one =
      mk_or2(mk_and2(s0, can1(a)), mk_and2(s1, can1(b)));
  const PortRef can_zero =
      mk_or2(mk_and2(s0, can0(a)), mk_and2(s1, can0(b)));
  const PortRef d = mk_and2(can_one, mk_not(can_zero));
  const PortRef u = mk_and2(can_one, can_zero);
  return Rail{d, u};
}

std::vector<Rail> Encoder::encode_table(const TruthTable& table,
                                        const std::vector<Rail>& ins) {
  const unsigned n = table.num_inputs();
  const unsigned m = table.num_outputs();
  RTV_REQUIRE(ins.size() == n, "table arity mismatch");

  // Per-input compatibility rails, shared across all minterms.
  std::vector<PortRef> in_can0, in_can1;
  in_can0.reserve(n);
  in_can1.reserve(n);
  for (const Rail& r : ins) {
    in_can0.push_back(can0(r));
    in_can1.push_back(can1(r));
  }

  const std::uint64_t rows = pow2(n);
  std::vector<std::vector<PortRef>> one_products(m), zero_products(m);
  for (std::uint64_t x = 0; x < rows; ++x) {
    std::vector<PortRef> factors;
    factors.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      factors.push_back(get_bit(x, i) ? in_can1[i] : in_can0[i]);
    }
    const PortRef compat =
        factors.empty() ? mk_const(true) : mk_gate(CellKind::kAnd, factors);
    const std::uint64_t row = table.eval_row(x);
    for (unsigned j = 0; j < m; ++j) {
      (get_bit(row, j) ? one_products[j] : zero_products[j]).push_back(compat);
    }
  }

  std::vector<Rail> rails;
  rails.reserve(m);
  for (unsigned j = 0; j < m; ++j) {
    const PortRef can_one = one_products[j].empty()
                                ? mk_const(false)
                                : mk_gate(CellKind::kOr, one_products[j]);
    const PortRef can_zero = zero_products[j].empty()
                                 ? mk_const(false)
                                 : mk_gate(CellKind::kOr, zero_products[j]);
    const PortRef d = mk_and2(can_one, mk_not(can_zero));
    const PortRef u = mk_and2(can_one, can_zero);
    rails.push_back(Rail{d, u});
  }
  return rails;
}

void Encoder::encode_node(NodeId id) {
  const Node& node = src_.node(id);
  // Sources and sinks are handled by run(); in particular a latch's fanin
  // (its next-state driver) is not encoded yet when the latch appears at
  // the head of the topological order, so bail before touching rails.
  if (node.kind == CellKind::kInput || node.kind == CellKind::kLatch ||
      node.kind == CellKind::kOutput) {
    return;
  }
  std::vector<Rail> ins;
  ins.reserve(node.fanin.size());
  for (const PortRef& p : node.fanin) ins.push_back(rail_of(p));

  switch (node.kind) {
    case CellKind::kInput:
    case CellKind::kLatch:
    case CellKind::kOutput:
      return;  // unreachable (handled above)
    case CellKind::kConst0:
      set_rail(PortRef(id, 0), Rail{mk_const(false), mk_const(false)});
      return;
    case CellKind::kConst1:
      set_rail(PortRef(id, 0), Rail{mk_const(true), mk_const(false)});
      return;
    case CellKind::kBuf:
      set_rail(PortRef(id, 0), ins[0]);
      return;
    case CellKind::kNot:
      set_rail(PortRef(id, 0), Rail{is_zero(ins[0]), ins[0].u});
      return;
    case CellKind::kAnd:
    case CellKind::kNand:
    case CellKind::kOr:
    case CellKind::kNor:
    case CellKind::kXor:
    case CellKind::kXnor:
      set_rail(PortRef(id, 0), encode_variadic(node.kind, ins));
      return;
    case CellKind::kMux:
      set_rail(PortRef(id, 0), encode_mux(ins[0], ins[1], ins[2]));
      return;
    case CellKind::kJunc:
      for (std::uint32_t p = 0; p < node.num_ports(); ++p) {
        set_rail(PortRef(id, p), ins[0]);
      }
      return;
    case CellKind::kTable: {
      const std::vector<Rail> outs =
          encode_table(src_.table(node.table), ins);
      for (std::uint32_t p = 0; p < node.num_ports(); ++p) {
        set_rail(PortRef(id, p), outs[p]);
      }
      return;
    }
  }
  RTV_CHECK_MSG(false, "encode_node: unhandled cell kind");
}

ClsEncoding Encoder::run() {
  // Primary inputs, in order: raw d rail masked with !u so the spare (1,1)
  // pattern behaves exactly like X.
  for (const NodeId id : src_.primary_inputs()) {
    const std::string& name = src_.name(id);
    const NodeId d_raw = out_.add_input(name.empty() ? "" : name + ".d");
    const NodeId u_in = out_.add_input(name.empty() ? "" : name + ".u");
    const PortRef u(u_in, 0);
    const PortRef d_masked = mk_and2(PortRef(d_raw, 0), mk_not(u));
    set_rail(PortRef(id, 0), Rail{d_masked, u});
  }

  // Latches, in order, so encoded latch 2i/2i+1 are the rails of latch i.
  for (const NodeId id : src_.latches()) {
    const std::string& name = src_.name(id);
    const NodeId d = out_.add_latch(name.empty() ? "" : name + ".d");
    const NodeId u = out_.add_latch(name.empty() ? "" : name + ".u");
    d_latch_.push_back(d);
    u_latch_.push_back(u);
    set_rail(PortRef(id, 0), Rail{PortRef(d, 0), PortRef(u, 0)});
  }

  // Combinational cells after all of their drivers.
  for (const NodeId id : combinational_topo_order(src_)) {
    encode_node(id);
  }

  // Latch next-state rails.
  const auto& latches = src_.latches();
  for (std::size_t i = 0; i < latches.size(); ++i) {
    const Rail next = rail_of(src_.node(latches[i]).fanin[0]);
    out_.connect(next.d, PinRef(d_latch_[i], 0));
    out_.connect(next.u, PinRef(u_latch_[i], 0));
  }

  // Primary outputs, in order.
  for (const NodeId id : src_.primary_outputs()) {
    const Rail r = rail_of(src_.node(id).fanin[0]);
    const std::string& name = src_.name(id);
    const NodeId d = out_.add_output(name.empty() ? "" : name + ".d");
    const NodeId u = out_.add_output(name.empty() ? "" : name + ".u");
    out_.connect(r.d, PinRef(d, 0));
    out_.connect(r.u, PinRef(u, 0));
  }

  ClsEncoding result;
  result.original_inputs = src_.primary_inputs().size();
  result.original_outputs = src_.primary_outputs().size();
  result.original_latches = latches.size();
  result.netlist = std::move(out_);
  return result;
}

}  // namespace

ClsEncoding cls_encode(const Netlist& netlist) {
  return Encoder(netlist).run();
}

}  // namespace rtv
