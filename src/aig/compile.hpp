#pragma once
// Netlist -> AIG compiler (binary interpretation). Every combinational cell
// maps onto structural-hashed AND/invert logic — generic kTable cells
// expand over their minterms as a sum of products — and latches become AIG
// state boundaries carrying an explicit power-up constant. Feed it a
// dual-rail encoded netlist (aig/cls_encode.hpp) to obtain the unrolled-
// miter substrate of the SAT CLS-equivalence backend.

#include "aig/aig.hpp"
#include "netlist/netlist.hpp"
#include "sim/vectors.hpp"
#include "util/budget.hpp"

namespace rtv {

/// Compiles `netlist` under the plain binary semantics. `init` gives the
/// power-up constant of each latch (same order as netlist.latches()).
/// AIG inputs/latches/outputs are indexed in the netlist's PI/latch/PO
/// order. With a budget attached, table-cell minterm expansion probes it
/// and throws ResourceExhausted when blown.
Aig aig_from_netlist(const Netlist& netlist, const Bits& init,
                     ResourceBudget* budget = nullptr);

}  // namespace rtv
