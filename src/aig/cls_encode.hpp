#pragma once
// Dual-rail ternary encoding: compiles the CLS (conservative three-valued)
// semantics of a netlist into a plain *binary* netlist, two wires per
// original signal — the bridge that lets binary engines (SAT over AIGs,
// BDD reachability) answer the paper's Section 5 CLS-equivalence queries.
//
// Each trit t is encoded as a (d, u) pair with the same plane convention as
// the packed simulator's TritWord: 0 -> (0,0), 1 -> (1,0), X -> (0,1). The
// encoding is kept *normalized* ((1,1) never appears on an internal wire):
// gate outputs are normalized by construction, and primary-input d rails
// are masked with !u, so the spare (d,u) = (1,1) input pattern behaves
// exactly like X in every encoded design. Two designs are therefore
// CLS-equivalent iff their encodings are sequentially equivalent as binary
// machines from the all-X initial state ((d,u) = (0,1) per latch pair) —
// over ALL 2^(2I) binary input patterns, no input constraint needed.
//
// Every gate is encoded with its exact per-cell ternary extension (output
// definite iff it is the same Boolean under every completion of X inputs),
// matching ClsSimulator / TruthTable::eval_ternary bit for bit; kTable
// cells expand over their minterms: can_be_1 = OR over 1-minterms of the
// input-compatibility products, can_be_0 likewise, d = can1 & !can0,
// u = can1 & can0.

#include "netlist/netlist.hpp"
#include "sim/vectors.hpp"

namespace rtv {

struct ClsEncoding {
  /// Binary netlist with 2x the PIs/POs/latches of the original, in rail
  /// order: original index i maps to encoded index 2i (d rail) and 2i+1
  /// (u rail), for primary_inputs(), primary_outputs() and latches() alike.
  Netlist netlist;
  std::size_t original_inputs = 0;
  std::size_t original_outputs = 0;
  std::size_t original_latches = 0;

  /// The encoded all-X power-up state: (d, u) = (0, 1) for every pair.
  Bits all_x_state() const;
};

/// Encodes the CLS semantics of `netlist` as a binary netlist (see file
/// comment). The input may use implicit fanout or junctions; the result
/// uses implicit fanout and passes check_valid(false).
ClsEncoding cls_encode(const Netlist& netlist);

/// Trit vector -> dual-rail bit vector (result is twice as long).
Bits encode_trits(const Trits& trits);
/// Dual-rail bit vector -> trit vector; (1,1) decodes as X (the masked
/// semantics every encoded design gives that input pattern).
Trits decode_trits(const Bits& bits);

}  // namespace rtv
