#include "gen/iscas.hpp"

namespace rtv {

Netlist iscas_s27() {
  // Netlist from the standard s27.bench:
  //   G14 = NOT(G0)        G17 = NOT(G11)
  //   G8  = AND(G14, G6)   G15 = OR(G12, G8)   G16 = OR(G3, G8)
  //   G9  = NAND(G16, G15) G10 = NOR(G14, G11) G11 = NOR(G5, G9)
  //   G12 = NOR(G1, G7)    G13 = NAND(G2, G12)
  //   G5 = DFF(G10), G6 = DFF(G11), G7 = DFF(G13)
  Netlist n;
  const NodeId g0 = n.add_input("G0");
  const NodeId g1 = n.add_input("G1");
  const NodeId g2 = n.add_input("G2");
  const NodeId g3 = n.add_input("G3");
  const NodeId g17_po = n.add_output("G17");

  const NodeId g5 = n.add_latch("G5");
  const NodeId g6 = n.add_latch("G6");
  const NodeId g7 = n.add_latch("G7");

  const NodeId g14 = n.add_gate(CellKind::kNot, 0, "G14");
  const NodeId g17 = n.add_gate(CellKind::kNot, 0, "G17n");
  const NodeId g8 = n.add_gate(CellKind::kAnd, 2, "G8");
  const NodeId g15 = n.add_gate(CellKind::kOr, 2, "G15");
  const NodeId g16 = n.add_gate(CellKind::kOr, 2, "G16");
  const NodeId g9 = n.add_gate(CellKind::kNand, 2, "G9");
  const NodeId g10 = n.add_gate(CellKind::kNor, 2, "G10");
  const NodeId g11 = n.add_gate(CellKind::kNor, 2, "G11");
  const NodeId g12 = n.add_gate(CellKind::kNor, 2, "G12");
  const NodeId g13 = n.add_gate(CellKind::kNand, 2, "G13");

  n.connect(g0, g14);
  n.connect(g11, g17);
  n.connect(g14, g8, 0);
  n.connect(g6, g8, 1);
  n.connect(g12, g15, 0);
  n.connect(g8, g15, 1);
  n.connect(g3, g16, 0);
  n.connect(g8, g16, 1);
  n.connect(g16, g9, 0);
  n.connect(g15, g9, 1);
  n.connect(g14, g10, 0);
  n.connect(g11, g10, 1);
  n.connect(g5, g11, 0);
  n.connect(g9, g11, 1);
  n.connect(g1, g12, 0);
  n.connect(g7, g12, 1);
  n.connect(g2, g13, 0);
  n.connect(g12, g13, 1);

  n.connect(g10, g5);
  n.connect(g11, g6);
  n.connect(g13, g7);
  n.connect(PortRef(g17, 0), PinRef(g17_po, 0));

  n.junctionize();
  n.check_valid(/*require_junction_normal=*/true);
  return n;
}

}  // namespace rtv
