#pragma once
// The example circuits of the paper, reconstructed from the text and
// Table 1 (the figures are lost in the source scan; the reconstruction is
// pinned down by the table and the prose, see DESIGN.md / EXPERIMENTS.md).
//
// Design D (Figure 1, left): one latch holding s, primary input x,
// primary output o:
//
//     o = x AND s                        ("AND_o")
//     v = NOT(s) AND (s OR x)            ("AND gate-1", feeding the latch)
//
// The latch output s reaches its three uses through a junction tree:
// J1 = JUNC2(s) -> {j1, j2};  J2 = JUNC2(j1) -> {AND_o, OR};  j2 -> NOT.
// Binary: v == 0 whenever x == 0 (indeed NOT(s) AND s == 0), so input 0
// resets D; but a CLS sees v = X AND X = X — the complement correlation the
// CLS forgets is exactly what the forward junction move destroys.
//
// Design C (Figure 1, right) retimes the latch forward across J1: the wire
// v feeds J1 directly and each branch gets its own latch (l1 feeding J2,
// l2 feeding NOT). From power-up state (l1, l2) = (1, 0), C emits
// 0·1·0·1 on input 0·1·1·1 — behaviour D cannot exhibit (Table 1).
//
// Figure 3 reuses the same pair ("see the STG for C in Figure 2"): the
// stuck-at-1 fault is on the AND gate-1 output net v. Test 0·1 detects it
// in D (fault-free 0·0 from every power-up state, faulty 0·1) but not in C;
// prepending one arbitrary cycle (0·0·1 or 1·0·1) restores detection in C
// on the 3rd cycle, as Theorem 4.6 predicts.

#include "netlist/netlist.hpp"

namespace rtv {

/// Figure 1 design D (1 latch). Junction-normal, fully connected.
Netlist figure1_original();

/// Figure 1 design C: D with the latch retimed forward across junction J1
/// (2 latches).
Netlist figure1_retimed();

/// Name of the net carrying v (output port 0 of this node) on which
/// Figure 3's stuck-at-1 fault sits, in both designs.
inline constexpr const char* kFigure3FaultGate = "AND1";

}  // namespace rtv
