#pragma once
// Hand-encoded ISCAS-89 benchmark s27 — the smallest of the standard
// sequential benchmark suite that 1990s retiming/test papers (including
// [MERM94], whose theorem Section 2.2 refutes) evaluated on. Useful as a
// realistic non-generated workload with reconvergent fanout and a mix of
// gate types.

#include "netlist/netlist.hpp"

namespace rtv {

/// s27: 4 PIs (G0..G3), 1 PO (G17), 3 latches (G5, G6, G7), 10 gates.
/// Junction-normal, fully connected, check_valid(true) clean.
Netlist iscas_s27();

}  // namespace rtv
