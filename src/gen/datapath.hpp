#pragma once
// Datapath workload generators: balanced pipelines built with a depth-
// tracking helper, an array multiplier (the introduction's "pipelined
// 32-bit multiplier with 4 pipeline stages" motivating example), and a
// controller+datapath design where only the controller is reset — the
// design style the paper argues synthesis must support.

#include <vector>

#include "netlist/netlist.hpp"

namespace rtv {

/// Builds combinational logic while tracking each signal's pipeline depth
/// (number of register stages it has passed). Combining signals of unequal
/// depth automatically pads the shallower ones with latches, so every
/// generated pipeline is balanced by construction.
class PipelineBuilder {
 public:
  explicit PipelineBuilder(Netlist& netlist) : n_(&netlist) {}

  struct Signal {
    PortRef port;
    unsigned depth = 0;
  };

  Signal input(const std::string& name);
  Signal constant(bool value);
  /// n-ary gate over signals; pads all operands to the deepest depth.
  Signal gate(CellKind kind, const std::vector<Signal>& operands);
  /// Adds `stages` extra registers to a signal.
  Signal delay(Signal s, unsigned stages);
  /// Pads to exactly `depth` (>= s.depth).
  Signal pad_to(Signal s, unsigned depth);
  /// Connects the signal (padded to `depth` if given) to a fresh PO.
  void output(const std::string& name, Signal s);

  /// Max depth over all signals produced so far.
  unsigned max_depth() const { return max_depth_; }

  /// Full-adder from gates: returns {sum, carry}.
  std::pair<Signal, Signal> full_add(Signal a, Signal b, Signal c);

 private:
  Netlist* n_;
  unsigned max_depth_ = 0;
};

/// Pipelined ripple-carry adder: 2*bits data inputs, bits+1 outputs,
/// `stages` pipeline stages (stages-1 register boundaries on the carry
/// chain, with operand/result skew registers keeping all paths balanced).
Netlist pipelined_adder(unsigned bits, unsigned stages);

/// Pipelined array multiplier: bits x bits -> 2*bits, one carry-save row
/// per multiplier bit, a register boundary every `rows_per_stage` rows.
Netlist pipelined_multiplier(unsigned bits, unsigned rows_per_stage);

/// Controller + datapath in the style of the paper's introduction: a small
/// one-hot controller with a synchronous reset input (reset modeled by
/// gates around plain latches) steering an accumulator datapath whose
/// latches have no reset at all. PIs: rst, data[width]; PO: msb of the
/// accumulator plus a 'valid' flag from the controller.
Netlist controller_datapath(unsigned width);

}  // namespace rtv
