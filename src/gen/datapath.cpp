#include "gen/datapath.hpp"

#include <string>

#include "util/error.hpp"

namespace rtv {

PipelineBuilder::Signal PipelineBuilder::input(const std::string& name) {
  return Signal{PortRef(n_->add_input(name), 0), 0};
}

PipelineBuilder::Signal PipelineBuilder::constant(bool value) {
  return Signal{PortRef(n_->add_const(value), 0), 0};
}

PipelineBuilder::Signal PipelineBuilder::pad_to(Signal s, unsigned depth) {
  RTV_REQUIRE(depth >= s.depth, "pad_to cannot reduce depth");
  return delay(s, depth - s.depth);
}

PipelineBuilder::Signal PipelineBuilder::delay(Signal s, unsigned stages) {
  for (unsigned i = 0; i < stages; ++i) {
    const NodeId latch = n_->add_latch();
    n_->connect(s.port, PinRef(latch, 0));
    s.port = PortRef(latch, 0);
    ++s.depth;
  }
  max_depth_ = std::max(max_depth_, s.depth);
  return s;
}

PipelineBuilder::Signal PipelineBuilder::gate(
    CellKind kind, const std::vector<Signal>& operands) {
  RTV_REQUIRE(!operands.empty(), "gate needs operands");
  unsigned depth = 0;
  for (const Signal& s : operands) depth = std::max(depth, s.depth);
  const NodeId g =
      n_->add_gate(kind, static_cast<unsigned>(operands.size()));
  for (std::uint32_t i = 0; i < operands.size(); ++i) {
    const Signal padded = pad_to(operands[i], depth);
    n_->connect(padded.port, PinRef(g, i));
  }
  max_depth_ = std::max(max_depth_, depth);
  return Signal{PortRef(g, 0), depth};
}

void PipelineBuilder::output(const std::string& name, Signal s) {
  const NodeId po = n_->add_output(name);
  n_->connect(s.port, PinRef(po, 0));
}

std::pair<PipelineBuilder::Signal, PipelineBuilder::Signal>
PipelineBuilder::full_add(Signal a, Signal b, Signal c) {
  const Signal sum = gate(CellKind::kXor, {a, b, c});
  const Signal ab = gate(CellKind::kAnd, {a, b});
  const Signal ac = gate(CellKind::kAnd, {a, c});
  const Signal bc = gate(CellKind::kAnd, {b, c});
  const Signal carry = gate(CellKind::kOr, {ab, ac, bc});
  return {sum, carry};
}

Netlist pipelined_adder(unsigned bits, unsigned stages) {
  RTV_REQUIRE(bits >= 1 && stages >= 1, "bad adder shape");
  RTV_REQUIRE(stages <= bits, "more stages than bits");
  Netlist n;
  PipelineBuilder pb(n);
  std::vector<PipelineBuilder::Signal> a(bits), b(bits), sum(bits + 1);
  for (unsigned i = 0; i < bits; ++i) a[i] = pb.input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) b[i] = pb.input("b" + std::to_string(i));

  const unsigned bits_per_stage = (bits + stages - 1) / stages;
  PipelineBuilder::Signal carry = pb.constant(false);
  for (unsigned i = 0; i < bits; ++i) {
    auto [s, c] = pb.full_add(a[i], b[i], carry);
    sum[i] = s;
    carry = c;
    // Register boundary at the end of each stage (except after the last
    // bit, where outputs get their balancing pads below).
    if ((i + 1) % bits_per_stage == 0 && i + 1 < bits) {
      carry = pb.delay(carry, 1);
    }
  }
  sum[bits] = carry;

  const unsigned final_depth = pb.max_depth();
  for (unsigned i = 0; i <= bits; ++i) {
    pb.output("s" + std::to_string(i), pb.pad_to(sum[i], final_depth));
  }
  n.junctionize();
  n.check_valid(/*require_junction_normal=*/true);
  return n;
}

Netlist pipelined_multiplier(unsigned bits, unsigned rows_per_stage) {
  RTV_REQUIRE(bits >= 2, "multiplier needs at least 2 bits");
  RTV_REQUIRE(rows_per_stage >= 1, "rows_per_stage must be >= 1");
  Netlist n;
  PipelineBuilder pb(n);
  using Signal = PipelineBuilder::Signal;
  std::vector<Signal> a(bits), b(bits);
  for (unsigned i = 0; i < bits; ++i) a[i] = pb.input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) b[i] = pb.input("b" + std::to_string(i));

  // Per-column operand lists (Wallace-style): dump each row's partial
  // products into their weight columns, inserting a register boundary
  // after every rows_per_stage rows (operand skew for later rows is
  // handled automatically by the depth-tracking builder).
  std::vector<std::vector<Signal>> cols(2 * bits + 2);
  for (unsigned row = 0; row < bits; ++row) {
    for (unsigned col = 0; col < bits; ++col) {
      cols[row + col].push_back(pb.gate(CellKind::kAnd, {a[col], b[row]}));
    }
    if ((row + 1) % rows_per_stage == 0 && row + 1 < bits) {
      for (auto& column : cols) {
        for (Signal& s : column) s = pb.delay(s, 1);
      }
    }
  }
  // Reduce every column to at most two operands with full adders; carries
  // feed the next column (processed afterwards, so ascending order works).
  for (unsigned i = 0; i + 1 < cols.size(); ++i) {
    while (cols[i].size() > 2) {
      const Signal x = cols[i].back();
      cols[i].pop_back();
      const Signal y = cols[i].back();
      cols[i].pop_back();
      const Signal z = cols[i].back();
      cols[i].pop_back();
      auto [s, c] = pb.full_add(x, y, z);
      cols[i].push_back(s);
      cols[i + 1].push_back(c);
    }
  }
  // Final carry-propagate adder across the reduced columns.
  Signal carry = pb.constant(false);
  std::vector<Signal> sums(cols.size());
  for (unsigned i = 0; i < cols.size(); ++i) {
    const Signal x = cols[i].empty() ? pb.constant(false) : cols[i][0];
    const Signal y = cols[i].size() < 2 ? pb.constant(false) : cols[i][1];
    auto [s, c] = pb.full_add(x, y, carry);
    sums[i] = s;
    carry = c;
  }
  const unsigned final_depth = pb.max_depth();
  for (unsigned i = 0; i < 2 * bits; ++i) {
    pb.output("p" + std::to_string(i), pb.pad_to(sums[i], final_depth));
  }
  // Everything above bit 2*bits-1 is logically 0 but must not dangle.
  Signal overflow = carry;
  for (unsigned i = 2 * bits; i < cols.size(); ++i) {
    overflow = pb.gate(CellKind::kOr, {overflow, sums[i]});
  }
  pb.output("cout", pb.pad_to(overflow, final_depth));
  n.junctionize();
  n.check_valid(/*require_junction_normal=*/true);
  return n;
}

Netlist controller_datapath(unsigned width) {
  RTV_REQUIRE(width >= 1, "datapath width must be >= 1");
  Netlist n;
  const NodeId rst = n.add_input("rst");
  std::vector<NodeId> data(width);
  for (unsigned i = 0; i < width; ++i) {
    data[i] = n.add_input("d" + std::to_string(i));
  }
  const NodeId valid_po = n.add_output("valid");
  const NodeId msb_po = n.add_output("acc_msb");

  // Controller: a single phase latch with synchronous reset modeled by
  // gates (latch <- NOT(rst) AND 1 after reset; here: phase' = NOT(rst)).
  // While rst is high the controller emits clr = 1, which clears the
  // accumulator on the next cycle — so the datapath needs no reset pins.
  const NodeId phase = n.add_latch("phase");
  const NodeId nrst = n.add_gate(CellKind::kNot, 0, "nrst");
  n.connect(PortRef(rst, 0), PinRef(nrst, 0));
  n.connect(PortRef(nrst, 0), PinRef(phase, 0));
  // clr = rst (clear while reset asserted); valid = phase.
  n.connect(PortRef(phase, 0), PinRef(valid_po, 0));

  // Datapath: acc' = clr ? 0 : acc XOR data (a toggling accumulator keeps
  // the gate count linear while remaining sequentially interesting).
  NodeId prev_or;  // OR over accumulated bits feeds the MSB output mix
  for (unsigned i = 0; i < width; ++i) {
    const NodeId acc = n.add_latch("acc" + std::to_string(i));
    const NodeId x = n.add_gate(CellKind::kXor, 2, "mix" + std::to_string(i));
    const NodeId gate_clr =
        n.add_gate(CellKind::kAnd, 2, "clr" + std::to_string(i));
    const NodeId ninv =
        n.add_gate(CellKind::kNot, 0, "nclr" + std::to_string(i));
    n.connect(PortRef(acc, 0), PinRef(x, 0));
    n.connect(PortRef(data[i], 0), PinRef(x, 1));
    n.connect(PortRef(rst, 0), PinRef(ninv, 0));
    n.connect(PortRef(ninv, 0), PinRef(gate_clr, 0));
    n.connect(PortRef(x, 0), PinRef(gate_clr, 1));
    n.connect(PortRef(gate_clr, 0), PinRef(acc, 0));
    if (i == 0) {
      prev_or = acc;
    } else {
      const NodeId o = n.add_gate(CellKind::kOr, 2, "red" + std::to_string(i));
      n.connect(PortRef(prev_or, 0), PinRef(o, 0));
      n.connect(PortRef(acc, 0), PinRef(o, 1));
      prev_or = o;
    }
  }
  n.connect(PortRef(prev_or, 0), PinRef(msb_po, 0));
  n.junctionize();
  n.check_valid(/*require_junction_normal=*/true);
  return n;
}

}  // namespace rtv
