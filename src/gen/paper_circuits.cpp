#include "gen/paper_circuits.hpp"

namespace rtv {

namespace {

/// Everything except the latch placement is shared between D and C.
struct FigureParts {
  Netlist n;
  NodeId x, o, jx, and_o, or1, not1, and1, j1, j2;
};

FigureParts figure_skeleton() {
  FigureParts p;
  Netlist& n = p.n;
  p.x = n.add_input("x");
  p.o = n.add_output("o");
  p.jx = n.add_junc(2, "JX");
  p.and_o = n.add_gate(CellKind::kAnd, 2, "AND_o");
  p.or1 = n.add_gate(CellKind::kOr, 2, "OR1");
  p.not1 = n.add_gate(CellKind::kNot, 0, "NOT1");
  p.and1 = n.add_gate(CellKind::kAnd, 2, "AND1");
  p.j1 = n.add_junc(2, "J1");
  p.j2 = n.add_junc(2, "J2");

  // x fans out to AND_o and OR1 through JX.
  n.connect(PortRef(p.x, 0), PinRef(p.jx, 0));
  n.connect(PortRef(p.jx, 0), PinRef(p.and_o, 1));
  n.connect(PortRef(p.jx, 1), PinRef(p.or1, 1));
  // J2 distributes the first J1 branch to AND_o and OR1.
  n.connect(PortRef(p.j2, 0), PinRef(p.and_o, 0));
  n.connect(PortRef(p.j2, 1), PinRef(p.or1, 0));
  // AND gate-1: v = NOT(second J1 branch) AND (OR1 out).
  n.connect(PortRef(p.not1, 0), PinRef(p.and1, 0));
  n.connect(PortRef(p.or1, 0), PinRef(p.and1, 1));
  // Primary output.
  n.connect(PortRef(p.and_o, 0), PinRef(p.o, 0));
  return p;
}

}  // namespace

Netlist figure1_original() {
  FigureParts p = figure_skeleton();
  Netlist& n = p.n;
  // v -> latch -> J1; J1 branches feed J2 and NOT1.
  const NodeId latch = n.add_latch("L");
  n.connect(PortRef(p.and1, 0), PinRef(latch, 0));
  n.connect(PortRef(latch, 0), PinRef(p.j1, 0));
  n.connect(PortRef(p.j1, 0), PinRef(p.j2, 0));
  n.connect(PortRef(p.j1, 1), PinRef(p.not1, 0));
  n.check_valid(/*require_junction_normal=*/true);
  return n;
}

Netlist figure1_retimed() {
  FigureParts p = figure_skeleton();
  Netlist& n = p.n;
  // v -> J1; each branch gets its own latch (forward move across J1).
  const NodeId l1 = n.add_latch("L1");
  const NodeId l2 = n.add_latch("L2");
  n.connect(PortRef(p.and1, 0), PinRef(p.j1, 0));
  n.connect(PortRef(p.j1, 0), PinRef(l1, 0));
  n.connect(PortRef(p.j1, 1), PinRef(l2, 0));
  n.connect(PortRef(l1, 0), PinRef(p.j2, 0));
  n.connect(PortRef(l2, 0), PinRef(p.not1, 0));
  n.check_valid(/*require_junction_normal=*/true);
  return n;
}

}  // namespace rtv
