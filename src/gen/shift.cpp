#include "gen/shift.hpp"

#include <string>

#include "util/error.hpp"

namespace rtv {

Netlist shift_register(unsigned length) {
  RTV_REQUIRE(length >= 1, "shift register needs at least one latch");
  Netlist n;
  const NodeId in = n.add_input("si");
  const NodeId out = n.add_output("so");
  PortRef prev(in, 0);
  for (unsigned i = 0; i < length; ++i) {
    const NodeId latch = n.add_latch("r" + std::to_string(i));
    n.connect(prev, PinRef(latch, 0));
    prev = PortRef(latch, 0);
  }
  n.connect(prev, PinRef(out, 0));
  n.check_valid(/*require_junction_normal=*/true);
  return n;
}

Netlist lfsr(unsigned length, const std::vector<unsigned>& taps) {
  RTV_REQUIRE(length >= 1, "LFSR needs at least one latch");
  RTV_REQUIRE(!taps.empty(), "LFSR needs at least one tap");
  for (const unsigned t : taps) {
    RTV_REQUIRE(t < length, "tap index out of range");
  }
  Netlist n;
  const NodeId in = n.add_input("si");
  const NodeId out = n.add_output("so");
  const NodeId fb =
      n.add_gate(CellKind::kXor, static_cast<unsigned>(taps.size()) + 1, "fb");
  n.connect(PortRef(in, 0), PinRef(fb, 0));

  std::vector<NodeId> latches;
  PortRef prev(fb, 0);
  for (unsigned i = 0; i < length; ++i) {
    const NodeId latch = n.add_latch("r" + std::to_string(i));
    n.connect(prev, PinRef(latch, 0));
    latches.push_back(latch);
    prev = PortRef(latch, 0);
  }
  // Tap connections (implicit fanout on tapped latches; junctionized below).
  for (std::uint32_t i = 0; i < taps.size(); ++i) {
    n.connect(PortRef(latches[taps[i]], 0), PinRef(fb, i + 1));
  }
  n.connect(PortRef(latches.back(), 0), PinRef(out, 0));
  n.junctionize();
  n.check_valid(/*require_junction_normal=*/true);
  return n;
}

Netlist twisted_ring(unsigned length) {
  RTV_REQUIRE(length >= 1, "twisted ring needs at least one latch");
  Netlist n;
  const NodeId in = n.add_input("si");
  const NodeId out = n.add_output("so");
  const NodeId inv = n.add_gate(CellKind::kNot, 0, "inv");
  const NodeId fb = n.add_gate(CellKind::kXor, 2, "fb");
  n.connect(PortRef(in, 0), PinRef(fb, 0));
  n.connect(PortRef(inv, 0), PinRef(fb, 1));

  PortRef prev(fb, 0);
  NodeId last;
  for (unsigned i = 0; i < length; ++i) {
    last = n.add_latch("r" + std::to_string(i));
    n.connect(prev, PinRef(last, 0));
    prev = PortRef(last, 0);
  }
  n.connect(PortRef(last, 0), PinRef(inv, 0));
  n.connect(PortRef(last, 0), PinRef(out, 0));
  n.junctionize();
  n.check_valid(/*require_junction_normal=*/true);
  return n;
}

}  // namespace rtv
