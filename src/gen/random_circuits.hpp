#pragma once
// Seeded random sequential netlists for property tests and benchmarks.

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace rtv {

struct RandomCircuitOptions {
  unsigned num_inputs = 3;
  unsigned num_outputs = 2;
  unsigned num_gates = 16;
  unsigned num_latches = 4;
  unsigned max_fanin = 3;
  /// Probability that a generated cell is a random multi-output table cell
  /// (2-3 inputs, 1-2 outputs) instead of a primitive gate. Table cells may
  /// be non-justifiable, exercising the unsafe-move paths.
  double table_probability = 0.0;
  /// Probability that a latch is inserted directly after a gate output,
  /// seeding latches throughout the circuit rather than only at the ends.
  double latch_after_gate_probability = 0.25;
};

/// Generates a junction-normal, fully connected random netlist: gates draw
/// operands from already-created ports (so the combinational graph is
/// acyclic), latches draw their data inputs from anywhere, unconsumed ports
/// are capped with extra primary outputs. Deterministic for a given
/// (options, rng state).
Netlist random_netlist(const RandomCircuitOptions& options, Rng& rng);

}  // namespace rtv
