#pragma once
// Small classic sequential structures used as workloads: shift registers,
// LFSRs and twisted rings. All generators return junction-normal, fully
// connected netlists that pass Netlist::check_valid(true).

#include <vector>

#include "netlist/netlist.hpp"

namespace rtv {

/// Serial-in/serial-out shift register with `length` latches.
Netlist shift_register(unsigned length);

/// Fibonacci LFSR with `length` latches. The feedback is
/// XOR(taps..., serial input); output is the last latch.
/// Tap indices are latch positions in [0, length).
Netlist lfsr(unsigned length, const std::vector<unsigned>& taps);

/// Twisted ring (Johnson-style): first latch gets NOT(last) XOR input;
/// output is the last latch.
Netlist twisted_ring(unsigned length);

}  // namespace rtv
