#include "gen/random_circuits.hpp"

#include <string>

#include "util/error.hpp"

namespace rtv {

namespace {

CellKind pick_gate_kind(unsigned fanin, Rng& rng) {
  if (fanin == 1) {
    return rng.coin() ? CellKind::kNot : CellKind::kBuf;
  }
  static constexpr CellKind kKinds[] = {CellKind::kAnd,  CellKind::kOr,
                                        CellKind::kNand, CellKind::kNor,
                                        CellKind::kXor,  CellKind::kXnor};
  return kKinds[rng.index(std::size(kKinds))];
}

}  // namespace

Netlist random_netlist(const RandomCircuitOptions& options, Rng& rng) {
  RTV_REQUIRE(options.num_inputs >= 1, "need at least one primary input");
  RTV_REQUIRE(options.num_gates >= 1, "need at least one gate");
  RTV_REQUIRE(options.max_fanin >= 1, "max_fanin must be >= 1");

  Netlist n;
  // Ports whose values are available as gate operands (everything created
  // so far), and the subset not yet consumed by any pin.
  std::vector<PortRef> pool;
  const auto offer = [&](NodeId id) {
    for (std::uint32_t p = 0; p < n.num_ports(id); ++p) {
      pool.push_back(PortRef(id, p));
    }
  };

  for (unsigned i = 0; i < options.num_inputs; ++i) {
    offer(n.add_input("pi" + std::to_string(i)));
  }
  // Latches first: their outputs join the pool so gates can depend on
  // state; their data inputs are wired at the end (any port is legal — a
  // latch breaks combinational cycles by definition).
  std::vector<NodeId> latches;
  for (unsigned i = 0; i < options.num_latches; ++i) {
    const NodeId latch = n.add_latch("l" + std::to_string(i));
    latches.push_back(latch);
    offer(latch);
  }

  for (unsigned g = 0; g < options.num_gates; ++g) {
    NodeId id;
    if (rng.chance(options.table_probability)) {
      const unsigned ins = 2 + static_cast<unsigned>(rng.below(2));   // 2..3
      const unsigned outs = 1 + static_cast<unsigned>(rng.below(2));  // 1..2
      const TableId t = n.add_table(TruthTable::random(ins, outs, rng));
      id = n.add_table_cell(t, "t" + std::to_string(g));
    } else {
      const unsigned fanin =
          1 + static_cast<unsigned>(rng.below(options.max_fanin));
      id = n.add_gate(pick_gate_kind(fanin, rng), fanin,
                      "g" + std::to_string(g));
    }
    for (std::uint32_t pin = 0; pin < n.num_pins(id); ++pin) {
      n.connect(pool[rng.index(pool.size())], PinRef(id, pin));
    }
    if (rng.chance(options.latch_after_gate_probability)) {
      // Latch bank directly on this cell's outputs: the latch output joins
      // the pool instead of the raw port, seeding registers mid-cone.
      for (std::uint32_t p = 0; p < n.num_ports(id); ++p) {
        const NodeId latch = n.add_latch();
        latches.push_back(latch);
        n.connect(PortRef(id, p), PinRef(latch, 0));
        pool.push_back(PortRef(latch, 0));
      }
    } else {
      offer(id);
    }
  }

  // Wire the leading latches' data inputs from anywhere in the pool.
  for (unsigned i = 0; i < options.num_latches; ++i) {
    n.connect(pool[rng.index(pool.size())], PinRef(latches[i], 0));
  }

  // Primary outputs sample the pool.
  for (unsigned i = 0; i < options.num_outputs; ++i) {
    const NodeId po = n.add_output("po" + std::to_string(i));
    n.connect(pool[rng.index(pool.size())], PinRef(po, 0));
  }

  // Cap every still-dangling port with an extra PO so the netlist is fully
  // connected (a requirement of the retiming move engine).
  for (const PortRef& port : pool) {
    if (n.sinks(port).empty()) {
      const NodeId po = n.add_output("cap_" + std::to_string(port.node.value) +
                                     "_" + std::to_string(port.port));
      n.connect(port, PinRef(po, 0));
    }
  }

  n.junctionize();
  n.check_valid(/*require_junction_normal=*/true);
  return n;
}

}  // namespace rtv
