#include "core/verify.hpp"

#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

#include "analysis/dataflow.hpp"

namespace rtv {

namespace {

/// The static fast path: a whole-design proof from the ternary dataflow
/// fixpoint, attempted before any state-space engine. Returns nullopt when
/// the fixpoint cannot decide — which says nothing about the designs, so
/// the caller falls through to the selected backend.
std::optional<ClsEquivalenceResult> try_static_proof(const Netlist& a,
                                                     const Netlist& b,
                                                     ResourceBudget* budget) {
  // The fixpoint is cheap but not free: it answers to the same budget as
  // every engine, so a blown/cancelled budget skips straight to the
  // selected backend, which degrades honestly.
  if (budget != nullptr && !budget->checkpoint("verify/static")) {
    return std::nullopt;
  }
  const std::optional<std::string> proof = static_cls_equivalence_proof(a, b);
  if (!proof) return std::nullopt;
  ClsEquivalenceResult result;
  result.equivalent = true;
  result.exhaustive = true;
  result.verdict = Verdict::kProven;
  result.decided_by = EquivalenceBackend::kStatic;
  result.decided_reason = *proof;
  if (budget != nullptr) result.usage = budget->usage();
  return result;
}

/// A found counterexample must actually distinguish the designs under the
/// concrete CLS simulators; anything else is an engine bug, surfaced as an
/// InternalError (never a degradation).
void validate_counterexample(const Netlist& a, const Netlist& b,
                             const ClsEquivalenceResult& result) {
  if (!result.counterexample) return;
  if (cls_outputs_match(a, b, *result.counterexample)) {
    throw InternalError(
        std::string("equivalence backend '") + to_string(result.decided_by) +
        "' returned a counterexample that does not distinguish the designs: " +
        sequence_to_string(*result.counterexample));
  }
}

ClsEquivalenceResult from_bdd(const BddClsOutcome& outcome,
                              ResourceBudget* budget) {
  ClsEquivalenceResult result;
  result.equivalent = outcome.equivalent;
  result.verdict = outcome.verdict;
  result.exhaustive = outcome.verdict == Verdict::kProven;
  result.counterexample = outcome.counterexample;
  result.decided_by = EquivalenceBackend::kBdd;
  result.decided_reason = outcome.note;
  if (budget != nullptr) result.usage = budget->usage();
  return result;
}

ClsEquivalenceResult from_sat(const SatClsOutcome& outcome,
                              ResourceBudget* budget) {
  ClsEquivalenceResult result;
  result.equivalent = outcome.equivalent;
  result.verdict = outcome.verdict;
  result.exhaustive = outcome.verdict == Verdict::kProven;
  result.counterexample = outcome.counterexample;
  result.decided_by = EquivalenceBackend::kSat;
  result.decided_reason = outcome.note;
  if (budget != nullptr) result.usage = budget->usage();
  return result;
}

/// Limits for one portfolio engine: the caller's caps minus what the parent
/// budget has already consumed (each engine gets its own budget object and
/// cancellation token, so one engine blowing its slice never flips the
/// sibling's budget).
ResourceLimits slice_limits(ResourceBudget* parent) {
  if (parent == nullptr) return ResourceLimits{};
  ResourceLimits limits = parent->limits();
  if (limits.time_budget_ms != 0) {
    const double remaining =
        static_cast<double>(limits.time_budget_ms) - parent->elapsed_ms();
    limits.time_budget_ms =
        remaining > 1.0 ? static_cast<std::uint64_t>(remaining) : 1;
  }
  if (limits.step_quota != 0) {
    const std::uint64_t used = parent->usage().steps;
    limits.step_quota = used < limits.step_quota ? limits.step_quota - used : 1;
  }
  return limits;
}

ClsEquivalenceResult run_portfolio(const Netlist& a, const Netlist& b,
                                   const VerifyOptions& options,
                                   ResourceBudget* budget) {
  CancellationToken bdd_cancel, sat_cancel;
  ResourceLimits bdd_limits = slice_limits(budget);
  bdd_limits.bdd_node_limit = options.bdd.node_limit < bdd_limits.bdd_node_limit
                                  ? options.bdd.node_limit
                                  : bdd_limits.bdd_node_limit;
  ResourceBudget bdd_budget(bdd_limits, bdd_cancel);
  ResourceBudget sat_budget(slice_limits(budget), sat_cancel);

  std::mutex mutex;
  std::condition_variable cv;
  bool done[2] = {false, false};
  int first_conclusive = -1;  // 0 = bdd, 1 = sat
  BddClsOutcome bdd_outcome;
  SatClsOutcome sat_outcome;
  std::exception_ptr errors[2];

  const auto finish_engine = [&](int which, bool conclusive) {
    std::lock_guard<std::mutex> lock(mutex);
    done[which] = true;
    if (conclusive && first_conclusive < 0) {
      first_conclusive = which;
      // The race is decided: stop the sibling.
      (which == 0 ? sat_cancel : bdd_cancel).request_cancel();
    }
    cv.notify_all();
  };

  std::thread bdd_thread([&] {
    bool conclusive = false;
    try {
      bdd_outcome = bdd_cls_equivalence(a, b, options.bdd, &bdd_budget);
      conclusive = bdd_outcome.verdict == Verdict::kProven;
    } catch (...) {
      errors[0] = std::current_exception();
    }
    finish_engine(0, conclusive);
  });
  std::thread sat_thread([&] {
    bool conclusive = false;
    try {
      sat_outcome = sat_cls_equivalence(a, b, options.sat, &sat_budget);
      conclusive = sat_outcome.verdict == Verdict::kProven;
    } catch (...) {
      errors[1] = std::current_exception();
    }
    finish_engine(1, conclusive);
  });

  {
    // Babysit the race: relay a blown parent budget (deadline, cancellation,
    // injected fault) to both engines so the portfolio honours its caller's
    // caps even while both engines are mid-flight.
    std::unique_lock<std::mutex> lock(mutex);
    bool parent_blown = false;
    while (!(done[0] && done[1])) {
      cv.wait_for(lock, std::chrono::milliseconds(10));
      if (!parent_blown && budget != nullptr &&
          !budget->checkpoint("portfolio/wait")) {
        parent_blown = true;
        bdd_cancel.request_cancel();
        sat_cancel.request_cancel();
      }
    }
  }
  bdd_thread.join();
  sat_thread.join();

  if (errors[0]) std::rethrow_exception(errors[0]);
  if (errors[1]) std::rethrow_exception(errors[1]);

  const bool bdd_conclusive = bdd_outcome.verdict == Verdict::kProven;
  const bool sat_conclusive = sat_outcome.verdict == Verdict::kProven;

  if (options.portfolio.cross_check && bdd_conclusive && sat_conclusive &&
      bdd_outcome.equivalent != sat_outcome.equivalent) {
    std::ostringstream os;
    os << "portfolio cross-check failed: BDD and SAT backends disagree on a "
          "conclusive verdict (bdd: "
       << (bdd_outcome.equivalent ? "equivalent" : "distinguishable") << " — "
       << bdd_outcome.note << "; sat: "
       << (sat_outcome.equivalent ? "equivalent" : "distinguishable") << " — "
       << sat_outcome.note << ")";
    throw BackendDisagreement(os.str());
  }

  // Merged usage across both slices (the engines ran concurrently, so the
  // wall clock is the max, not the sum).
  const ResourceUsage bdd_usage = bdd_budget.usage();
  const ResourceUsage sat_usage = sat_budget.usage();
  ResourceUsage merged;
  merged.wall_ms = std::max(bdd_usage.wall_ms, sat_usage.wall_ms);
  merged.steps = bdd_usage.steps + sat_usage.steps;
  merged.peak_bdd_nodes =
      std::max(bdd_usage.peak_bdd_nodes, sat_usage.peak_bdd_nodes);
  merged.bdd_gc_runs = bdd_usage.bdd_gc_runs + sat_usage.bdd_gc_runs;
  merged.bdd_nodes_reclaimed =
      bdd_usage.bdd_nodes_reclaimed + sat_usage.bdd_nodes_reclaimed;
  merged.bdd_reorder_runs =
      bdd_usage.bdd_reorder_runs + sat_usage.bdd_reorder_runs;
  merged.peak_live_bdd_nodes =
      std::max(bdd_usage.peak_live_bdd_nodes, sat_usage.peak_live_bdd_nodes);

  ClsEquivalenceResult result;
  if (bdd_conclusive || sat_conclusive) {
    const int winner =
        first_conclusive >= 0 ? first_conclusive : (bdd_conclusive ? 0 : 1);
    result = winner == 0 ? from_bdd(bdd_outcome, nullptr)
                         : from_sat(sat_outcome, nullptr);
    result.decided_reason = "portfolio: " + result.decided_reason +
                            (bdd_conclusive && sat_conclusive
                                 ? " [cross-checked: engines agree]"
                                 : "");
  } else if (sat_outcome.verdict == Verdict::kBounded) {
    result = from_sat(sat_outcome, nullptr);
    result.decided_reason = "portfolio: no engine concluded; best evidence "
                            "from sat (" +
                            sat_outcome.note + ")";
  } else if (bdd_outcome.verdict == Verdict::kBounded) {
    result = from_bdd(bdd_outcome, nullptr);
    result.decided_reason = "portfolio: no engine concluded; best evidence "
                            "from bdd (" +
                            bdd_outcome.note + ")";
  } else {
    result = from_sat(sat_outcome, nullptr);
    result.decided_reason = "portfolio: both engines exhausted (bdd: " +
                            bdd_outcome.note + "; sat: " + sat_outcome.note +
                            ")";
    merged.exhausted = true;
    merged.blown = sat_usage.blown ? sat_usage.blown : bdd_usage.blown;
  }
  result.usage = budget != nullptr ? budget->usage() : merged;
  return result;
}

}  // namespace

ClsEquivalenceResult verify_cls_equivalence(const Netlist& a, const Netlist& b,
                                            const VerifyOptions& options,
                                            ResourceBudget* budget) {
  RTV_REQUIRE(a.primary_inputs().size() == b.primary_inputs().size(),
              "designs differ in primary input count");
  RTV_REQUIRE(a.primary_outputs().size() == b.primary_outputs().size(),
              "designs differ in primary output count");

  // Static fast path: a fixpoint proof needs no state-space search, so it
  // short-circuits before any backend is even constructed. The fixpoint
  // over-approximates, so an inconclusive attempt proves nothing and falls
  // through; only the explicit kStatic backend reports it (honestly, as
  // kExhausted — "could not decide", never a fake verdict).
  if (options.allow_static_proof ||
      options.backend == EquivalenceBackend::kStatic) {
    if (std::optional<ClsEquivalenceResult> static_result =
            try_static_proof(a, b, budget)) {
      return *static_result;
    }
    if (options.backend == EquivalenceBackend::kStatic) {
      ClsEquivalenceResult result;
      result.equivalent = false;
      result.exhaustive = false;
      result.verdict = Verdict::kExhausted;
      result.decided_by = EquivalenceBackend::kStatic;
      result.decided_reason =
          "static fixpoint proof inconclusive: some paired primary output "
          "has a non-singleton or differing value set (select an engine "
          "backend to decide)";
      if (budget != nullptr) result.usage = budget->usage();
      return result;
    }
  }

  ClsEquivalenceResult result;
  switch (options.backend) {
    case EquivalenceBackend::kExplicit:
      result = check_cls_equivalence(a, b, options.explicit_opts, budget);
      break;
    case EquivalenceBackend::kBdd:
      result = from_bdd(bdd_cls_equivalence(a, b, options.bdd, budget), budget);
      break;
    case EquivalenceBackend::kSat:
      result = from_sat(sat_cls_equivalence(a, b, options.sat, budget), budget);
      break;
    case EquivalenceBackend::kPortfolio:
      result = run_portfolio(a, b, options, budget);
      break;
    case EquivalenceBackend::kStatic:
      break;  // handled above; unreachable
  }
  validate_counterexample(a, b, result);
  return result;
}

}  // namespace rtv
