#include "core/redundancy.hpp"

namespace rtv {

namespace {

bool is_cls_redundant(const Netlist& netlist, const Fault& fault,
                      const RedundancyOptions& options,
                      ResourceBudget* budget) {
  const Netlist faulty = inject_fault(netlist, fault);
  const ClsEquivalenceResult r =
      verify_cls_equivalence(netlist, faulty, options.verify, budget);
  // A budget-curtailed check proves nothing — never tie on its say-so.
  if (r.verdict == Verdict::kExhausted) return false;
  if (!r.equivalent) return false;
  return r.exhaustive || !options.require_exhaustive;
}

}  // namespace

std::vector<Fault> cls_redundant_faults(const Netlist& netlist,
                                        const RedundancyOptions& options,
                                        ResourceBudget* budget) {
  std::vector<Fault> redundant;
  for (const Fault& f : collapse_faults(netlist)) {
    if (budget != nullptr && !budget->checkpoint("redundancy/fault")) break;
    if (is_cls_redundant(netlist, f, options, budget)) redundant.push_back(f);
  }
  return redundant;
}

RedundancyRemovalResult remove_cls_redundancies(
    const Netlist& netlist, const RedundancyOptions& options,
    std::size_t max_rounds, ResourceBudget* budget) {
  RedundancyRemovalResult result;
  result.gates_before = netlist.num_gates();
  Netlist current = netlist;

  for (std::size_t round = 0; round < max_rounds && result.complete; ++round) {
    bool tied = false;
    for (const Fault& f : collapse_faults(current)) {
      if (budget != nullptr && !budget->checkpoint("redundancy/fault")) {
        result.complete = false;
        break;
      }
      // Skip fault sites on constants (tying them is a no-op churn).
      const CellKind k = current.kind(f.site.node);
      if (k == CellKind::kConst0 || k == CellKind::kConst1) continue;
      if (!is_cls_redundant(current, f, options, budget)) continue;
      Netlist next = inject_fault(current, f);
      next.propagate_constants();
      result.nodes_swept += next.sweep_unobservable();
      result.faults_tied += 1;
      current = next.compacted();
      tied = true;
      break;  // re-enumerate faults on the updated design
    }
    if (!tied) break;
  }

  // Safety net: the optimized design must be CLS-equivalent to the input.
  // (Under an exhausted budget this degrades to a partial check; the
  // construction itself only ever tied faults with completed proofs.)
  const ClsEquivalenceResult verdict =
      verify_cls_equivalence(netlist, current, options.verify, budget);
  RTV_CHECK_MSG(verdict.equivalent,
                "redundancy removal changed CLS-observable behaviour");

  result.gates_after = current.num_gates();
  result.optimized = std::move(current);
  return result;
}

}  // namespace rtv
