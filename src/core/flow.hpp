#pragma once
// The synthesis methodology of the paper's conclusion, as a driver: apply
// sequential optimizations (constant propagation, dead-logic sweep,
// retiming, optional CLS-redundancy removal) and gate the result on the
// Section-5 invariant — the optimized design must be indistinguishable
// from the input by a conservative three-valued simulator started all-X.
// "Because, in practice, all current design methodologies rely on this
// type of three-valued simulation, we conclude that retiming of designs
// without set and reset signals fits into a synthesis methodology."

#include <string>

#include "core/safety.hpp"
#include "core/verify.hpp"
#include "netlist/netlist.hpp"

namespace rtv {

struct FlowOptions {
  enum class Objective {
    kMinArea,             ///< fewest registers, period unconstrained
    kMinPeriod,           ///< fastest clock
    kMinAreaAtMinPeriod,  ///< [SR94]: fewest registers at the optimal clock
    kNone,                ///< cleanup passes only, no retiming
  };
  Objective objective = Objective::kMinArea;
  /// Restrict the retiming to moves that preserve safe replacement
  /// (Cor 4.4): the optimized design is then a drop-in replacement for ANY
  /// environment, not only CLS-based methodologies. Currently honored by
  /// the kMinArea objective (lag >= 0 on non-justifiable elements).
  bool safe_replacement_only = false;
  /// Run the structural lint (analysis/lint.hpp) on the input design and
  /// refuse to start when it reports errors — the coded diagnostics name
  /// every defect instead of the first one check_valid would throw on.
  bool lint_input = true;
  bool constant_propagation = true;
  bool sweep_unobservable = true;
  /// CLS-preserving redundancy removal (expensive: per-fault equivalence
  /// proofs); only sensible for small designs.
  bool redundancy_removal = false;
  /// The CLS equivalence gate: backend selection plus every engine's
  /// sub-options (core/verify.hpp). The explicit engine stays the default.
  VerifyOptions verify;
  /// Resource governance: one budget built from these limits spans every
  /// phase of the flow (cleanup, retiming, redundancy removal, CLS gate).
  ResourceLimits budget;
  CancellationToken cancel;
};

struct FlowReport {
  Netlist optimized;
  SafetyReport safety;          ///< Section-4 classification of the retiming
  ClsEquivalenceResult cls;     ///< the methodology gate (must be equivalent)
  int period_before = 0;
  int period_after = 0;
  std::size_t registers_before = 0;
  std::size_t registers_after = 0;
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  /// kExhausted whenever the budget blew anywhere in the flow (the report
  /// is partial), otherwise the CLS gate's verdict.
  Verdict verdict = Verdict::kProven;
  ResourceUsage usage;
  /// Redundancy removal was requested but curtailed by the budget.
  bool redundancy_curtailed = false;

  /// True iff the flow is safe to ship under the paper's criterion. A
  /// budget-exhausted CLS gate is NOT acceptance — a degraded check must
  /// never masquerade as the methodology invariant holding.
  bool accepted() const {
    return cls.equivalent && cls.verdict != Verdict::kExhausted;
  }
  std::string summary() const;
};

/// Runs the flow; never mutates the input. Throws only on structural
/// errors — an optimization that broke the CLS invariant is reported via
/// accepted() == false (and would falsify Theorem 5.1 if the only
/// transformations were retiming moves).
FlowReport run_synthesis_flow(const Netlist& design,
                              const FlowOptions& options = {});

}  // namespace rtv
