#include "core/flow.hpp"

#include <sstream>

#include "analysis/lint.hpp"
#include "core/redundancy.hpp"
#include "retime/graph.hpp"
#include "retime/min_area.hpp"
#include "retime/min_period.hpp"
#include "retime/sequencer.hpp"

namespace rtv {

std::string FlowReport::summary() const {
  std::ostringstream os;
  os << "period " << period_before << " -> " << period_after
     << ", registers " << registers_before << " -> " << registers_after
     << ", gates " << gates_before << " -> " << gates_after << "\n";
  os << "retiming safety: " << safety.summary() << "\n";
  os << "CLS gate:        " << cls.summary() << "\n";
  os << "resources:       " << to_string(verdict) << " (" << usage.summary()
     << ")\n";
  if (accepted()) {
    os << "ACCEPTED (three-valued methodology invariant holds)";
  } else if (cls.verdict == Verdict::kExhausted) {
    os << "UNDECIDED (budget exhausted before the CLS gate finished)";
  } else {
    os << "REJECTED (CLS-visible change!)";
  }
  return os.str();
}

FlowReport run_synthesis_flow(const Netlist& design,
                              const FlowOptions& options) {
  if (options.lint_input) {
    LintOptions lint_options;
    // The flow junctionizes and sweeps unobservable logic itself, so only
    // hard structural defects should block it; semantic findings are
    // advisory and never errors, so skip the fixpoint here.
    lint_options.warn_unreachable = false;
    lint_options.semantic = false;
    const LintResult lint = run_lint(design, lint_options);
    RTV_REQUIRE(!lint.has_errors(),
                "input design fails structural lint:\n" + render_text(lint));
  }

  ResourceBudget budget(options.budget, options.cancel);
  FlowReport report;
  report.gates_before = design.num_gates();
  report.registers_before = design.num_latches();

  Netlist work = design;
  work.junctionize();

  budget.checkpoint("flow/cleanup");
  if (options.constant_propagation) work.propagate_constants();
  if (options.sweep_unobservable) work.sweep_unobservable();
  work.trim_dangling();  // restore every-port-driven for the move engine
  work = work.compacted();

  budget.checkpoint("flow/retime");
  {
    const RetimeGraph g0 = RetimeGraph::from_netlist(work);
    report.period_before = g0.clock_period();

    std::vector<int> lag(g0.num_vertices(), 0);
    switch (options.objective) {
      case FlowOptions::Objective::kMinArea:
        lag = options.safe_replacement_only
                  ? min_area_retime_safe(g0, work).lag
                  : min_area_retime(g0).lag;
        break;
      case FlowOptions::Objective::kMinPeriod:
        lag = min_period_retime_feas(g0).lag;
        break;
      case FlowOptions::Objective::kMinAreaAtMinPeriod: {
        const int target = min_period_retime_feas(g0).period;
        const auto r = min_area_retime_with_period(g0, target);
        RTV_CHECK_MSG(r.has_value(), "own optimal period must be feasible");
        lag = r->lag;
        break;
      }
      case FlowOptions::Objective::kNone:
        break;
    }
    SequencedRetiming seq;
    report.safety = analyze_lag_retiming(work, g0, lag, &seq);
    work = std::move(seq.retimed);
  }

  if (options.redundancy_removal && budget.checkpoint("flow/redundancy")) {
    RedundancyOptions ropt;
    ropt.verify = options.verify;
    RedundancyRemovalResult rr =
        remove_cls_redundancies(work, ropt, 64, &budget);
    report.redundancy_curtailed = !rr.complete;
    work = std::move(rr.optimized);
  } else {
    report.redundancy_curtailed = options.redundancy_removal;
  }
  work = work.compacted();

  report.period_after = RetimeGraph::from_netlist(work).clock_period();
  report.registers_after = work.num_latches();
  report.gates_after = work.num_gates();
  budget.checkpoint("flow/cls-gate");
  report.cls = verify_cls_equivalence(design, work, options.verify, &budget);
  report.optimized = std::move(work);
  report.verdict = budget.exhausted() ? Verdict::kExhausted : report.cls.verdict;
  report.usage = budget.usage();
  return report;
}

}  // namespace rtv
