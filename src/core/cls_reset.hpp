#pragma once
// CLS reset analysis — the last sentence of Corollary 5.3: "If π resets D0
// then it also resets Dn and vice-versa."
//
// A ternary input sequence π *CLS-resets* a design when, starting from the
// all-X state, every latch holds a definite value after π (the design
// "appears initialized" to the three-valued simulator — the notion real
// methodologies act on, per Section 5: "if simulation says the circuit
// doesn't work, then the designer must assume the circuit doesn't work").
//
// Because retiming preserves CLS-observable behaviour but not latch
// identity, "resets" is compared through the *outputs*: a design is
// CLS-reset exactly when its ternary state has converged to a single
// definite state, after which all outputs are definite for all definite
// inputs. The searcher works on latch definiteness directly.

#include <optional>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/vectors.hpp"

namespace rtv {

/// Does π drive the CLS from all-X to a fully definite latch state?
bool cls_resets(const Netlist& netlist, const TritsSeq& sequence);

struct ClsResetSearch {
  /// BFS bound on the sequence length.
  unsigned max_length = 16;
  /// Cap on distinct ternary states explored.
  std::size_t max_states = 100000;
  /// Restrict the search to definite (0/1) inputs — the common DFT setting.
  bool definite_inputs_only = true;
};

/// Breadth-first search for a shortest CLS-reset sequence. Returns nullopt
/// when none exists within the bounds.
std::optional<TritsSeq> find_cls_reset_sequence(
    const Netlist& netlist, const ClsResetSearch& options = {});

}  // namespace rtv
