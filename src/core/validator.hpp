#pragma once
// End-to-end retiming validation: the executable form of the paper.
//
// Given an original design and a retiming (lag assignment), the validator
//   1. sequences the retiming into classified atomic moves (Section 3.2),
//   2. derives the static safety verdict (Cor 4.4 / Thm 4.5),
//   3. checks CLS equivalence from all-X (Cor 5.3 — must always hold),
//   4. when the designs are small enough, extracts both STGs and decides
//      the exact relations: C ⊑ D, C ≼ D, and the minimal n with C^n ⊑ D,
//      cross-checking the static bounds against ground truth.

#include <optional>
#include <string>
#include <vector>

#include "core/safety.hpp"
#include "core/verify.hpp"
#include "netlist/netlist.hpp"
#include "retime/graph.hpp"

namespace rtv {

struct ValidationOptions {
  /// The CLS equivalence gate: backend selection plus every engine's
  /// sub-options (core/verify.hpp). The explicit engine stays the default.
  VerifyOptions verify;
  /// Exact STG analysis runs only when both designs fit these caps.
  unsigned max_stg_latches = 14;
  unsigned max_stg_inputs = 8;
  /// Horizon for the minimal-delay search (Thm 4.5 cross-check).
  unsigned max_delay_search = 16;
  /// Resource governance. One ResourceBudget built from these limits spans
  /// the whole validation (CLS + STG phases share the wall clock). The
  /// defaults leave everything unlimited except the standard BDD node cap.
  ResourceLimits budget;
  /// Cooperative cancellation: request_cancel() from any thread makes the
  /// validation degrade at its next checkpoint.
  CancellationToken cancel;
};

struct RetimingValidation {
  SafetyReport safety;
  ClsEquivalenceResult cls;
  Netlist retimed;

  bool stg_checked = false;
  bool implication = false;          ///< C ⊑ D (exact)
  bool safe_replacement = false;     ///< C ≼ D (exact)
  int min_delay_implication = -1;    ///< least n with C^n ⊑ D (exact)
  /// STG phase was within caps but aborted by the resource budget.
  bool stg_budget_exhausted = false;

  /// True iff every exact result is consistent with the paper's theorems
  /// (set by validate_retiming; a false value would falsify the paper).
  bool theorems_hold = true;

  /// Overall label for this validation: kExhausted whenever the budget
  /// blew anywhere (the report is partial), otherwise the CLS verdict.
  /// A degraded validation never reports verdict kProven.
  Verdict verdict = Verdict::kProven;
  /// Resource consumption of the whole validation.
  ResourceUsage usage;

  std::string summary() const;
};

/// graph must be RetimeGraph::from_netlist(original); lag must be legal.
RetimingValidation validate_retiming(const Netlist& original,
                                     const RetimeGraph& graph,
                                     const std::vector<int>& lag,
                                     const ValidationOptions& options = {});

}  // namespace rtv
