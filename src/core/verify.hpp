#pragma once
// Backend-agnostic CLS-equivalence verification — the unified entry point
// in front of the explicit pair-BFS engine (core/cls_equiv.hpp), the BDD
// symbolic-reachability backend (bdd/cls_bdd.hpp) and the AIG/SAT backend
// (sat/equiv.hpp). One VerifyOptions selects the backend and carries every
// engine's sub-options; every result is a ClsEquivalenceResult stamped with
// which backend decided (decided_by) and why (decided_reason).
//
// Portfolio mode races the BDD and SAT backends concurrently on the same
// query, each under its own slice of the caller's budget (so one engine
// exhausting its slice can never poison the other), cancels the loser as
// soon as either produces a conclusive (kProven) answer, and — whenever
// both engines conclude — cross-checks their verdicts: a disagreement
// between two independent engines is a BackendDisagreement hard error,
// surfaced loudly and never silently resolved. Counterexamples from every
// backend are replay-validated against the concrete CLS simulators before
// being returned.

#include "bdd/cls_bdd.hpp"
#include "core/cls_equiv.hpp"
#include "sat/equiv.hpp"

namespace rtv {

struct PortfolioOptions {
  /// When both engines reach conclusive verdicts, require them to agree
  /// (throwing BackendDisagreement otherwise). Disabling this is only
  /// meant for harness tests of the cross-check machinery itself.
  bool cross_check = true;
};

/// The consolidated option set of every equivalence backend. Engines read
/// only their own sub-struct; `backend` picks who answers.
struct VerifyOptions {
  EquivalenceBackend backend = EquivalenceBackend::kExplicit;
  /// Explicit engine (pair BFS / packed random sampling) knobs.
  ClsEquivOptions explicit_opts;
  BddEquivOptions bdd;
  SatEquivOptions sat;
  PortfolioOptions portfolio;
  /// Try the ternary dataflow fixpoint (analysis/dataflow.hpp) before
  /// dispatching to the selected engine: when every paired primary output
  /// carries the same singleton fixpoint set, equivalence is proven with no
  /// state-space search and the result is stamped decided_by = kStatic.
  /// The fixpoint can only prove, never disprove, so an inconclusive
  /// attempt just falls through to the selected backend.
  bool allow_static_proof = true;
};

/// Two independent engines returned contradictory conclusive verdicts on
/// the same query — a bug in one of them, never a degradation. Subclasses
/// InternalError so the CLI / serve layers map it onto their
/// internal-error envelopes (exit code 70 / "internal" error code).
class BackendDisagreement : public InternalError {
 public:
  explicit BackendDisagreement(const std::string& what)
      : InternalError(what) {}
};

/// Dispatching twin of check_cls_equivalence: answers the same query with
/// the backend selected in `options`. Requires equal PI and PO counts.
/// With a budget attached every backend degrades down the Verdict ladder
/// instead of throwing on exhaustion. Throws BackendDisagreement (portfolio
/// cross-check failure) or InternalError (a backend returned an invalid
/// counterexample) — both are engine bugs, not degradations.
ClsEquivalenceResult verify_cls_equivalence(const Netlist& a, const Netlist& b,
                                            const VerifyOptions& options = {},
                                            ResourceBudget* budget = nullptr);

}  // namespace rtv
