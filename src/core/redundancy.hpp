#pragma once
// CLS-preserving redundancy removal — the paper's proposed future work
// (Conclusions: "...other optimization algorithms which seek only to
// preserve this invariant [equivalent output from a conservative
// three-valued simulator] and not the invariant of safe replaceability"),
// in the spirit of Cheng's reset-free redundancy removal [Che93].
//
// A stuck-at fault is *CLS-redundant* when the faulty design is
// CLS-equivalent to the fault-free design from the all-X state: no ternary
// input sequence makes a conservative three-valued simulator see a
// difference. Tying the faulted net to the constant is then a legal
// optimization under the paper's Section-5 correctness yardstick — even
// when a two-valued simulator from some power-up state could tell the
// difference.

#include <vector>

#include "core/verify.hpp"
#include "fault/fault.hpp"
#include "netlist/netlist.hpp"

namespace rtv {

struct RedundancyOptions {
  /// Per-fault equivalence proofs run through this backend selection
  /// (core/verify.hpp); the explicit engine stays the default.
  VerifyOptions verify;
  /// Only faults whose equivalence was proven exhaustively count as
  /// redundant when true; bounded-mode "equivalent" results are skipped
  /// (they are evidence, not proof).
  bool require_exhaustive = true;
};

/// All collapsed stuck-at faults that are CLS-redundant. With a budget, a
/// blown limit ends the scan early (faults not yet examined are simply not
/// reported; a budget-curtailed equivalence check never counts as proof).
std::vector<Fault> cls_redundant_faults(const Netlist& netlist,
                                        const RedundancyOptions& options = {},
                                        ResourceBudget* budget = nullptr);

struct RedundancyRemovalResult {
  Netlist optimized;
  std::size_t faults_tied = 0;          ///< redundant nets tied to constants
  std::size_t nodes_swept = 0;          ///< dead logic removed afterwards
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  /// False when the resource budget stopped the removal early. The
  /// optimized design is still CLS-equivalent by construction — it just
  /// may retain redundancies that were never examined.
  bool complete = true;
};

/// Greedy removal: repeatedly tie one CLS-redundant net to its constant and
/// sweep unobservable logic, until no redundancy remains (or `max_rounds`).
/// The result is CLS-equivalent to the input by construction; the final
/// designs are re-verified with check_cls_equivalence.
RedundancyRemovalResult remove_cls_redundancies(
    const Netlist& netlist, const RedundancyOptions& options = {},
    std::size_t max_rounds = 64, ResourceBudget* budget = nullptr);

}  // namespace rtv
