#include "core/safety.hpp"

#include <sstream>

namespace rtv {

std::string SafetyReport::summary() const {
  std::ostringstream os;
  os << stats.summary() << " => ";
  if (safe_replacement_guaranteed) {
    os << "safe replacement (C ⊑ D, Cor 4.4)";
  } else {
    os << "delayed replacement C^" << delay_bound << " ⊑ D (Thm 4.5)";
  }
  return os.str();
}

namespace {

SafetyReport report_from_stats(const MoveSequenceStats& stats) {
  SafetyReport report;
  report.stats = stats;
  report.safe_replacement_guaranteed = stats.preserves_safe_replacement();
  report.delay_bound = stats.max_forward_per_non_justifiable;
  return report;
}

}  // namespace

SafetyReport analyze_lag_retiming(const Netlist& netlist,
                                  const RetimeGraph& graph,
                                  const std::vector<int>& lag,
                                  SequencedRetiming* sequenced) {
  SequencedRetiming seq = sequence_retiming(netlist, graph, lag);
  const SafetyReport report = report_from_stats(seq.stats);
  if (sequenced != nullptr) *sequenced = std::move(seq);
  return report;
}

SafetyReport analyze_move_sequence(const Netlist& netlist,
                                   const std::vector<RetimingMove>& moves,
                                   Netlist* retimed) {
  Netlist work = netlist;
  MoveSequenceStats stats;
  std::vector<std::uint32_t> forward_counts(netlist.num_slots(), 0);
  for (const RetimingMove& move : moves) {
    const MoveClass cls = apply_move(work, move);
    accumulate_move(move, cls, forward_counts, stats);
  }
  if (retimed != nullptr) *retimed = std::move(work);
  return report_from_stats(stats);
}

}  // namespace rtv
