#include "core/safety.hpp"

#include <sstream>

#include "analysis/dataflow.hpp"
#include "analysis/plan.hpp"

namespace rtv {

std::string SafetyReport::summary() const {
  std::ostringstream os;
  os << stats.summary() << " => ";
  if (safe_replacement_guaranteed) {
    os << "safe replacement (C ⊑ D, Cor 4.4)";
  } else {
    os << "delayed replacement C^" << delay_bound << " ⊑ D (Thm 4.5)";
  }
  if (statically_verified) os << " [statically verified]";
  if (cls_certified_safe) {
    os << " [unsafe moves CLS-certified by ternary fixpoint]";
  }
  return os.str();
}

namespace {

SafetyReport report_from_stats(const MoveSequenceStats& stats) {
  SafetyReport report;
  report.stats = stats;
  report.safe_replacement_guaranteed = stats.preserves_safe_replacement();
  report.delay_bound = stats.max_forward_per_non_justifiable;
  return report;
}

/// Replays `moves` statically against the *original* netlist and checks the
/// census agrees with what applying them produced. A disagreement means
/// either the sequencer or the static analyzer is wrong — an internal
/// error, not a user mistake. Returns whether verification ran (the static
/// analyzer declines netlists that fail its replay preconditions).
bool cross_check_static(const Netlist& netlist,
                        const std::vector<RetimingMove>& moves,
                        const MoveSequenceStats& applied) {
  const PlanAnalysis plan = analyze_plan(netlist, moves);
  if (!plan.analyzable) return false;
  RTV_CHECK_MSG(plan.feasible,
                "static plan replay disagrees: a move applied by apply_move "
                "was reported as not enabled");
  RTV_CHECK_MSG(plan.stats == applied,
                "static plan census disagrees with the applied sequence");
  return true;
}

/// Above this moves × slots product the per-move fixpoint replay of
/// certify_plan_moves would dominate the analysis; the report then simply
/// carries no certificate (cls_certified_safe stays false, which claims
/// nothing).
constexpr std::size_t kClsCertifyBudget = 4'000'000;

/// True iff every unsafe-class move of the sequence holds an individual
/// certificate from the ternary dataflow fixpoint. Move classification is
/// position-independent, so each move is classified against the original
/// netlist while certify_plan_moves replays positions internally.
bool cls_certify(const Netlist& netlist,
                 const std::vector<RetimingMove>& moves,
                 const MoveSequenceStats& stats) {
  if (stats.forward_across_non_justifiable == 0) return false;
  if (moves.size() * netlist.num_slots() > kClsCertifyBudget) return false;
  const std::vector<MoveCertificate> certificates =
      certify_plan_moves(netlist, moves);
  for (std::size_t i = 0; i < moves.size(); ++i) {
    if (classify_move(netlist, moves[i]).preserves_safe_replacement()) {
      continue;
    }
    if (!certificates[i].certified) return false;
  }
  return true;
}

}  // namespace

SafetyReport analyze_lag_retiming(const Netlist& netlist,
                                  const RetimeGraph& graph,
                                  const std::vector<int>& lag,
                                  SequencedRetiming* sequenced) {
  SequencedRetiming seq = sequence_retiming(netlist, graph, lag);
  SafetyReport report = report_from_stats(seq.stats);
  report.statically_verified = cross_check_static(netlist, seq.moves,
                                                  seq.stats);
  report.cls_certified_safe = cls_certify(netlist, seq.moves, seq.stats);
  if (sequenced != nullptr) *sequenced = std::move(seq);
  return report;
}

SafetyReport analyze_move_sequence(const Netlist& netlist,
                                   const std::vector<RetimingMove>& moves,
                                   Netlist* retimed) {
  Netlist work = netlist;
  MoveSequenceStats stats;
  std::vector<std::uint32_t> forward_counts(netlist.num_slots(), 0);
  for (const RetimingMove& move : moves) {
    const MoveClass cls = apply_move(work, move);
    accumulate_move(move, cls, forward_counts, stats);
  }
  SafetyReport report = report_from_stats(stats);
  report.statically_verified = cross_check_static(netlist, moves, stats);
  report.cls_certified_safe = cls_certify(netlist, moves, stats);
  if (retimed != nullptr) *retimed = std::move(work);
  return report;
}

}  // namespace rtv
