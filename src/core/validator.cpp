#include "core/validator.hpp"

#include <sstream>

#include "stg/stg.hpp"

namespace rtv {

std::string RetimingValidation::summary() const {
  std::ostringstream os;
  os << "safety:   " << safety.summary() << "\n";
  os << "cls:      " << cls.summary() << "\n";
  if (stg_checked) {
    os << "stg:      C " << (implication ? "⊑" : "⋢") << " D, C "
       << (safe_replacement ? "≼" : "⋠") << " D, min delay n with C^n ⊑ D: "
       << min_delay_implication << "\n";
    os << "theorems: " << (theorems_hold ? "consistent" : "VIOLATED") << "\n";
  } else if (stg_budget_exhausted) {
    os << "stg:      skipped (resource budget exhausted)\n";
  } else {
    os << "stg:      skipped (design beyond exact-analysis caps)\n";
  }
  os << "verdict:  " << to_string(verdict) << " (" << usage.summary() << ")\n";
  return os.str();
}

RetimingValidation validate_retiming(const Netlist& original,
                                     const RetimeGraph& graph,
                                     const std::vector<int>& lag,
                                     const ValidationOptions& options) {
  ResourceBudget budget(options.budget, options.cancel);
  RetimingValidation v;
  SequencedRetiming seq;
  v.safety = analyze_lag_retiming(original, graph, lag, &seq);
  v.retimed = std::move(seq.retimed);
  v.cls = verify_cls_equivalence(original, v.retimed, options.verify, &budget);

  // Corollary 5.3 is unconditional (given the all-X-preserving library);
  // a CLS mismatch falsifies the paper (or this implementation). A found
  // counterexample is definitive even in degraded modes; an exhausted
  // partial report never claims inequivalence, so this stays sound.
  if (original.all_cells_preserve_all_x() &&
      v.retimed.all_cells_preserve_all_x() && !v.cls.equivalent) {
    v.theorems_hold = false;
  }

  const auto fits = [&](const Netlist& n) {
    return n.latches().size() <= options.max_stg_latches &&
           n.primary_inputs().size() <= options.max_stg_inputs;
  };
  if (fits(original) && fits(v.retimed)) {
    if (budget.exhausted()) {
      v.stg_budget_exhausted = true;
    } else {
      try {
        // Compute everything into locals and commit at the end: an
        // exhaustion mid-phase must not leave half-true exact flags.
        const Stg d = Stg::extract(original, kDefaultStgEntryCap, &budget);
        const Stg c = Stg::extract(v.retimed, kDefaultStgEntryCap, &budget);
        const bool implication = implies(c, d, &budget);
        const bool safe_repl = safe_replacement(c, d, &budget);
        const int min_delay =
            min_delay_for_implication(c, d, options.max_delay_search, &budget);
        v.stg_checked = true;
        v.implication = implication;
        v.safe_replacement = safe_repl;
        v.min_delay_implication = min_delay;

        // Cross-check the static guarantees against exact ground truth.
        if (v.safety.safe_replacement_guaranteed &&
            !(v.implication && v.safe_replacement)) {
          v.theorems_hold = false;  // Prop 4.1 / Cor 4.4 violated
        }
        if (v.min_delay_implication < 0 ||
            static_cast<std::size_t>(v.min_delay_implication) >
                v.safety.delay_bound) {
          v.theorems_hold = false;  // Thm 4.5 violated
        }
        if (v.implication && !v.safe_replacement) {
          v.theorems_hold = false;  // Prop 3.1 violated
        }
      } catch (const ResourceExhausted&) {
        v.stg_budget_exhausted = true;
      }
    }
  }
  v.verdict = budget.exhausted() ? Verdict::kExhausted : v.cls.verdict;
  v.usage = budget.usage();
  return v;
}

}  // namespace rtv
