#include "core/cls_equiv.hpp"

#include <bit>
#include <deque>
#include <sstream>
#include <unordered_set>

#include "sim/cls_sim.hpp"
#include "sim/packed_sim.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace rtv {

const char* to_string(EquivalenceBackend backend) {
  switch (backend) {
    case EquivalenceBackend::kExplicit:
      return "explicit";
    case EquivalenceBackend::kBdd:
      return "bdd";
    case EquivalenceBackend::kSat:
      return "sat";
    case EquivalenceBackend::kPortfolio:
      return "portfolio";
    case EquivalenceBackend::kStatic:
      return "static";
  }
  return "?";
}

std::optional<EquivalenceBackend> equivalence_backend_from_string(
    std::string_view name) {
  if (name == "explicit") return EquivalenceBackend::kExplicit;
  if (name == "bdd") return EquivalenceBackend::kBdd;
  if (name == "sat") return EquivalenceBackend::kSat;
  if (name == "portfolio") return EquivalenceBackend::kPortfolio;
  if (name == "static") return EquivalenceBackend::kStatic;
  return std::nullopt;
}

std::string ClsEquivalenceResult::summary() const {
  std::ostringstream os;
  os << (equivalent ? "CLS-equivalent" : "CLS-DISTINGUISHABLE") << " ("
     << (exhaustive ? "exhaustive proof" : "bounded check") << ", "
     << pairs_explored << " state pairs";
  if (verdict == Verdict::kExhausted) os << ", budget exhausted";
  os << ")";
  if (counterexample) {
    os << " counterexample inputs: " << sequence_to_string(*counterexample);
  }
  return os.str();
}

bool cls_outputs_match(const Netlist& a, const Netlist& b,
                       const TritsSeq& inputs) {
  ClsSimulator sa(a), sb(b);
  for (const Trits& in : inputs) {
    if (sa.step(in) != sb.step(in)) return false;
  }
  return true;
}

namespace {

struct PairKey {
  std::uint64_t a;
  std::uint64_t b;
  bool operator==(const PairKey&) const = default;
};

struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const {
    std::uint64_t h = k.a * 0x9e3779b97f4a7c15ULL;
    h ^= k.b + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// Enumerates all ternary vectors of the given width (3^width of them).
Trits nth_ternary_vector(std::uint64_t index, unsigned width) {
  return unpack_trits(index, width);
}

/// Partial kExhausted report: `equivalent` records only that no difference
/// was seen before the budget blew; never a proof, never a counterexample.
ClsEquivalenceResult exhausted_report(ResourceBudget* budget,
                                      std::size_t pairs_explored) {
  ClsEquivalenceResult result;
  result.equivalent = true;
  result.exhaustive = false;
  result.verdict = Verdict::kExhausted;
  result.pairs_explored = pairs_explored;
  result.usage = budget->usage();
  return result;
}

/// Bounded mode, 64 random sequences per machine word: every sequence is a
/// lane of the packed ternary engine, both designs step in lockstep, and
/// the output planes are compared wholesale each cycle.
ClsEquivalenceResult bounded_check(const Netlist& a, const Netlist& b,
                                   const ClsEquivOptions& options,
                                   ResourceBudget* budget) {
  ClsEquivalenceResult result;
  result.exhaustive = false;
  result.verdict = Verdict::kBounded;
  Rng rng(options.seed);
  const unsigned width = static_cast<unsigned>(a.primary_inputs().size());
  const unsigned outputs = static_cast<unsigned>(a.primary_outputs().size());
  const unsigned lanes = options.random_sequences;
  if (lanes == 0 || options.random_length == 0) {
    result.equivalent = true;
    return result;
  }

  std::vector<TritsSeq> sequences(lanes);
  for (unsigned s = 0; s < lanes; ++s) {
    sequences[s].reserve(options.random_length);
    for (unsigned t = 0; t < options.random_length; ++t) {
      Trits in(width);
      for (Trit& v : in) v = static_cast<Trit>(rng.below(3));
      sequences[s].push_back(std::move(in));
    }
  }

  PackedTernarySimulator sa(a, lanes), sb(b, lanes);
  PackedTrits cycle_inputs(width, lanes);
  const unsigned words = sa.words();
  for (unsigned t = 0; t < options.random_length; ++t) {
    if (budget != nullptr && !budget->checkpoint("cls/bounded-cycle")) {
      result.equivalent = true;  // nothing distinguished up to cycle t
      result.verdict = Verdict::kExhausted;
      result.usage = budget->usage();
      return result;
    }
    for (unsigned lane = 0; lane < lanes; ++lane) {
      cycle_inputs.set_lane(lane, sequences[lane][t]);
    }
    sa.step_packed(cycle_inputs);
    sb.step_packed(cycle_inputs);
    result.pairs_explored += lanes;
    for (unsigned o = 0; o < outputs; ++o) {
      const TritWord* wa = sa.output_words(o);
      const TritWord* wb = sb.output_words(o);
      for (unsigned w = 0; w < words; ++w) {
        const std::uint64_t mask = (w + 1 == words && lanes % 64 != 0)
                                       ? low_mask(lanes % 64)
                                       : ~0ULL;
        const std::uint64_t diff =
            ((wa[w].ones ^ wb[w].ones) | (wa[w].unk ^ wb[w].unk)) & mask;
        if (diff == 0) continue;
        const unsigned lane =
            64 * w + static_cast<unsigned>(std::countr_zero(diff));
        result.equivalent = false;
        result.counterexample =
            TritsSeq(sequences[lane].begin(), sequences[lane].begin() + t + 1);
        if (budget != nullptr) result.usage = budget->usage();
        return result;
      }
    }
  }
  result.equivalent = true;
  if (budget != nullptr) result.usage = budget->usage();
  return result;
}

ClsEquivalenceResult explicit_engine(const Netlist& a, const Netlist& b,
                                     const ClsEquivOptions& options,
                                     ResourceBudget* budget) {
  RTV_REQUIRE(a.primary_inputs().size() == b.primary_inputs().size(),
              "designs differ in primary input count");
  RTV_REQUIRE(a.primary_outputs().size() == b.primary_outputs().size(),
              "designs differ in primary output count");

  const unsigned width = static_cast<unsigned>(a.primary_inputs().size());
  const unsigned la = static_cast<unsigned>(a.latches().size());
  const unsigned lb = static_cast<unsigned>(b.latches().size());
  // pow3_saturating clamps to UINT64_MAX past 3^40, so a wide-input design
  // can never wrap around the comparison and get routed into the
  // exhaustive enumeration it could not possibly finish.
  const std::uint64_t branching = pow3_saturating(width);
  const bool can_exhaust = width <= 12 && la <= 40 && lb <= 40 &&
                           branching <= options.max_branching;
  if (!can_exhaust) return bounded_check(a, b, options, budget);

  ClsSimulator sa(a), sb(b);

  struct Entry {
    Trits state_a;
    Trits state_b;
    TritsSeq path;
  };
  std::unordered_set<PairKey, PairKeyHash> visited;
  std::deque<Entry> queue;

  Entry start{Trits(la, Trit::kX), Trits(lb, Trit::kX), {}};
  visited.insert(PairKey{pack_trits(start.state_a), pack_trits(start.state_b)});
  queue.push_back(std::move(start));

  ClsEquivalenceResult result;
  Trits out_a, out_b, next_a, next_b;
  while (!queue.empty()) {
    if (budget != nullptr && !budget->checkpoint("cls/bfs-pair")) {
      return exhausted_report(budget, visited.size());
    }
    const Entry entry = std::move(queue.front());
    queue.pop_front();
    for (std::uint64_t i = 0; i < branching; ++i) {
      // Wide-input designs spend most of their time in this inner loop, so
      // probe the budget between pair checkpoints too.
      if (budget != nullptr && (i & 1023u) == 1023u &&
          !budget->checkpoint("cls/bfs-input")) {
        return exhausted_report(budget, visited.size());
      }
      const Trits in = nth_ternary_vector(i, width);
      sa.eval(entry.state_a, in, out_a, next_a);
      sb.eval(entry.state_b, in, out_b, next_b);
      if (out_a != out_b) {
        result.equivalent = false;
        result.exhaustive = true;
        result.verdict = Verdict::kProven;
        result.pairs_explored = visited.size();
        TritsSeq cex = entry.path;
        cex.push_back(in);
        result.counterexample = std::move(cex);
        if (budget != nullptr) result.usage = budget->usage();
        return result;
      }
      const PairKey key{pack_trits(next_a), pack_trits(next_b)};
      if (visited.contains(key)) continue;
      if (visited.size() >= options.max_pairs) {
        // State space too large after all; fall back to sampling.
        return bounded_check(a, b, options, budget);
      }
      visited.insert(key);
      if (budget != nullptr && !budget->note_pairs(visited.size())) {
        // Budget pair cap (unlike the options.max_pairs heuristic above)
        // marks the whole budget exhausted, so degrade straight to the
        // partial report — bounded mode would be starved too.
        return exhausted_report(budget, visited.size());
      }
      Entry next{next_a, next_b, entry.path};
      next.path.push_back(in);
      queue.push_back(std::move(next));
    }
  }
  result.equivalent = true;
  result.exhaustive = true;
  result.verdict = Verdict::kProven;
  result.pairs_explored = visited.size();
  if (budget != nullptr) result.usage = budget->usage();
  return result;
}

}  // namespace

ClsEquivalenceResult check_cls_equivalence(const Netlist& a, const Netlist& b,
                                           const ClsEquivOptions& options,
                                           ResourceBudget* budget) {
  ClsEquivalenceResult result = explicit_engine(a, b, options, budget);
  result.decided_by = EquivalenceBackend::kExplicit;
  std::ostringstream os;
  switch (result.verdict) {
    case Verdict::kProven:
      if (result.counterexample) {
        os << "pair BFS found a counterexample after " << result.pairs_explored
           << " state pairs";
      } else {
        os << "pair-reachability BFS completed (" << result.pairs_explored
           << " state pairs)";
      }
      break;
    case Verdict::kBounded:
      if (result.counterexample) {
        os << "random sampling found a counterexample";
      } else {
        os << "random sampling completed without a difference";
      }
      break;
    case Verdict::kExhausted:
      os << "budget exhausted mid-search";
      break;
  }
  result.decided_reason = os.str();
  return result;
}

}  // namespace rtv
