#pragma once
// Test-set preservation under retiming (paper Section 2.2 and Theorem 4.6).
//
// Section 2.2 refutes [MERM94]: a sequence testing a stuck-at fault in D
// need not test the same fault in a retimed C. Theorem 4.6 repairs the
// claim: with at most k forward moves, the test still works on the
// k-cycle-delayed design C^k — i.e., applied after k arbitrary warm-up
// cycles.
//
// Fault sites are (node, port) pairs on combinational cells; the sequencer
// keeps combinational NodeIds stable between D and C, so the same Fault
// value addresses the same physical net in both designs.

#include <string>

#include "fault/fault.hpp"
#include "fault/test_eval.hpp"
#include "netlist/netlist.hpp"
#include "sim/vectors.hpp"

namespace rtv {

struct TestPreservationResult {
  bool detects_in_original = false;
  bool detects_in_retimed = false;          ///< same test, no warm-up
  bool detects_in_retimed_delayed = false;  ///< after `delay_used` cycles
  unsigned delay_used = 0;

  /// Theorem 4.6 verdict: if the test detects in D, it must detect in C^k.
  bool theorem_holds() const {
    return !detects_in_original || detects_in_retimed_delayed;
  }
  std::string summary() const;
};

/// Checks preservation of one (fault, test) pair across a retiming with
/// Thm 4.5/4.6 bound k = `delay`. The fault must sit on a combinational
/// node alive in both designs.
TestPreservationResult check_test_preservation(const Netlist& original,
                                               const Netlist& retimed,
                                               const Fault& fault,
                                               const BitsSeq& test,
                                               unsigned delay);

}  // namespace rtv
