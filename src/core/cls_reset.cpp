#include "core/cls_reset.hpp"

#include <deque>
#include <unordered_set>

#include "sim/cls_sim.hpp"
#include "util/bits.hpp"

namespace rtv {

bool cls_resets(const Netlist& netlist, const TritsSeq& sequence) {
  ClsSimulator sim(netlist);
  for (const Trits& in : sequence) sim.step(in);
  return sim.is_fully_initialized();
}

std::optional<TritsSeq> find_cls_reset_sequence(
    const Netlist& netlist, const ClsResetSearch& options) {
  const unsigned latches = static_cast<unsigned>(netlist.latches().size());
  const unsigned inputs =
      static_cast<unsigned>(netlist.primary_inputs().size());
  RTV_REQUIRE(latches <= 40, "find_cls_reset_sequence supports <= 40 latches");
  RTV_REQUIRE(inputs <= 12, "find_cls_reset_sequence supports <= 12 inputs");

  ClsSimulator sim(netlist);
  const std::uint64_t branching =
      options.definite_inputs_only ? pow2(inputs) : pow3(inputs);
  const auto nth_input = [&](std::uint64_t i) {
    if (!options.definite_inputs_only) return unpack_trits(i, inputs);
    return to_trits(unpack_bits(i, inputs));
  };
  const auto fully_definite = [](const Trits& state) {
    for (const Trit t : state) {
      if (!is_definite(t)) return false;
    }
    return true;
  };

  struct Entry {
    Trits state;
    TritsSeq path;
  };
  std::unordered_set<std::uint64_t> visited;
  std::deque<Entry> queue;
  Entry start{Trits(latches, Trit::kX), {}};
  if (fully_definite(start.state)) return TritsSeq{};
  visited.insert(pack_trits(start.state));
  queue.push_back(std::move(start));

  Trits out, next;
  while (!queue.empty()) {
    Entry entry = std::move(queue.front());
    queue.pop_front();
    if (entry.path.size() >= options.max_length) continue;
    for (std::uint64_t i = 0; i < branching; ++i) {
      const Trits in = nth_input(i);
      sim.eval(entry.state, in, out, next);
      if (fully_definite(next)) {
        TritsSeq found = entry.path;
        found.push_back(in);
        return found;
      }
      const std::uint64_t key = pack_trits(next);
      if (visited.contains(key)) continue;
      if (visited.size() >= options.max_states) return std::nullopt;
      visited.insert(key);
      Entry e{next, entry.path};
      e.path.push_back(in);
      queue.push_back(std::move(e));
    }
  }
  return std::nullopt;
}

}  // namespace rtv
