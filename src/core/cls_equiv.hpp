#pragma once
// Conservative-three-valued-simulation equivalence (paper Section 5).
//
// Corollary 5.3: retiming never changes the CLS-observable behaviour from
// the all-X power-up state. This checker decides, for two concrete designs,
// whether any ternary input sequence can make their CLS outputs differ:
//
//  * exhaustive mode — BFS over *pairs* of ternary states reachable from
//    (all-X, all-X), trying all 3^I ternary input vectors at each pair and
//    asserting output equality. The reachable pair set is finite, so a
//    completed search is a proof of CLS equivalence for this pair of
//    designs (the executable form of the paper's relation R argument).
//
//  * bounded mode — randomized ternary input sequences, for designs whose
//    input count or state space makes the BFS infeasible.

#include <optional>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"
#include "sim/vectors.hpp"
#include "util/budget.hpp"

namespace rtv {

/// The engine families that can answer a CLS-equivalence query (see
/// core/verify.hpp for the dispatching entry point and docs/backends.md for
/// the engine matrix):
///  * kExplicit  — ternary state-pair BFS / packed random sampling (this
///                 file; the original engine);
///  * kBdd       — symbolic reachability over the dual-rail encoded miter
///                 (bdd/cls_bdd.hpp);
///  * kSat       — CDCL BMC + k-induction over the unrolled miter AIG
///                 (sat/equiv.hpp);
///  * kPortfolio — BDD and SAT raced on the same query with verdict
///                 cross-checking;
///  * kStatic    — the ternary dataflow fixpoint (analysis/dataflow.hpp):
///                 a whole-design abstract-interpretation proof with no
///                 state-space search at all. Can prove equivalence but
///                 never disprove it; queries it cannot decide come back
///                 kExhausted when it is selected explicitly. The
///                 dispatcher also tries it first as a fast path for every
///                 other backend (VerifyOptions::allow_static_proof).
enum class EquivalenceBackend : std::uint8_t {
  kExplicit,
  kBdd,
  kSat,
  kPortfolio,
  kStatic,
};

const char* to_string(EquivalenceBackend backend);
/// Parses "explicit" | "bdd" | "sat" | "portfolio" | "static"; nullopt
/// otherwise.
std::optional<EquivalenceBackend> equivalence_backend_from_string(
    std::string_view name);

struct ClsEquivOptions {
  /// Exhaustive BFS is used when 3^num_inputs <= max_branching and both
  /// designs have <= 40 latches; otherwise bounded random checking.
  std::uint64_t max_branching = 20000;
  /// Cap on distinct reachable state pairs before falling back to bounded
  /// mode mid-search.
  std::size_t max_pairs = 200000;
  /// Bounded mode: number of random sequences and their length.
  unsigned random_sequences = 200;
  unsigned random_length = 32;
  std::uint64_t seed = 12345;
};

struct ClsEquivalenceResult {
  bool equivalent = false;
  /// True when the full pair-reachability BFS completed: `equivalent` is
  /// then a theorem about all ternary input sequences, not a sample.
  bool exhaustive = false;
  /// How far down the degradation ladder the check got:
  ///  * kProven    — the pair BFS completed (equivalent is a theorem, or a
  ///                 concrete counterexample was found during it);
  ///  * kBounded   — randomized bounded checking ran to completion (a found
  ///                 counterexample is still definitive; "equivalent" is
  ///                 only sampled evidence);
  ///  * kExhausted — the resource budget blew mid-search: `equivalent`
  ///                 means only "no difference observed before the budget
  ///                 ran out" and must not be treated as a result.
  /// Invariant: exhaustive == (verdict == Verdict::kProven).
  Verdict verdict = Verdict::kBounded;
  /// Distinguishing ternary input sequence when !equivalent.
  std::optional<TritsSeq> counterexample;
  std::size_t pairs_explored = 0;
  /// Resource consumption snapshot (all-zero when run without a budget).
  ResourceUsage usage;
  /// Which engine produced this verdict (kExplicit for the legacy entry
  /// point; the dispatcher in core/verify.hpp stamps the winning engine,
  /// which for portfolio runs is whichever backend concluded first).
  EquivalenceBackend decided_by = EquivalenceBackend::kExplicit;
  /// One-line human-readable account of why that engine decided (e.g.
  /// "k-induction closed at k=2", "reachability fixpoint after 4 images").
  std::string decided_reason;

  std::string summary() const;
};

/// Requires equal PI and PO counts. Both CLS runs start from all-X.
///
/// With a budget attached the search is cooperatively governed and never
/// throws on exhaustion: blowing the pair cap, step quota, deadline or a
/// cancellation degrades down the ladder (exhaustive BFS -> bounded random
/// checking -> partial kExhausted report) and labels the verdict honestly.
///
/// DEPRECATED shim: this is the explicit engine only, kept for source
/// compatibility. New code should call verify_cls_equivalence
/// (core/verify.hpp), which dispatches over every backend — it behaves
/// identically to this function when VerifyOptions::backend is kExplicit
/// (the default).
ClsEquivalenceResult check_cls_equivalence(const Netlist& a, const Netlist& b,
                                           const ClsEquivOptions& options = {},
                                           ResourceBudget* budget = nullptr);

/// Replays a ternary input sequence on both designs; true iff CLS outputs
/// match cycle by cycle (sanity utility for counterexamples).
bool cls_outputs_match(const Netlist& a, const Netlist& b,
                       const TritsSeq& inputs);

}  // namespace rtv
