#include "core/test_preserve.hpp"

#include <sstream>

namespace rtv {

std::string TestPreservationResult::summary() const {
  std::ostringstream os;
  os << "original: " << (detects_in_original ? "detected" : "missed")
     << ", retimed: " << (detects_in_retimed ? "detected" : "missed")
     << ", retimed after " << delay_used
     << " cycle(s): " << (detects_in_retimed_delayed ? "detected" : "missed")
     << " => Thm 4.6 " << (theorem_holds() ? "holds" : "VIOLATED");
  return os.str();
}

TestPreservationResult check_test_preservation(const Netlist& original,
                                               const Netlist& retimed,
                                               const Fault& fault,
                                               const BitsSeq& test,
                                               unsigned delay) {
  RTV_REQUIRE(
      fault.site.node.value < original.num_slots() &&
          !original.is_dead(fault.site.node) &&
          is_combinational(original.kind(fault.site.node)),
      "fault must sit on a combinational cell of the original design");
  RTV_REQUIRE(
      fault.site.node.value < retimed.num_slots() &&
          !retimed.is_dead(fault.site.node) &&
          retimed.kind(fault.site.node) == original.kind(fault.site.node),
      "fault site does not exist in the retimed design (ids must be stable)");

  TestPreservationResult r;
  r.delay_used = delay;
  r.detects_in_original = test_detects(original, fault, test);
  r.detects_in_retimed = test_detects(retimed, fault, test);
  r.detects_in_retimed_delayed =
      delay == 0 ? r.detects_in_retimed
                 : test_detects_delayed(retimed, fault, test, delay);
  return r;
}

}  // namespace rtv
