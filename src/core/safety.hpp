#pragma once
// Retiming safety analysis (paper Section 4).
//
// Classifies a retiming — given either as a lag assignment or as an explicit
// move sequence — into the paper's taxonomy and derives the guarantees:
//   * no forward move across a non-justifiable element  =>  C ⊑ D, hence
//     C ≼ D (Prop 4.1 + Cor 4.4): drop-in safe replacement.
//   * otherwise, with at most k forward moves across any single
//     non-justifiable element: C^k ⊑ D (Thm 4.5) — safe after k settle
//     cycles; and test sets for D remain test sets for C^k (Thm 4.6).

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "retime/graph.hpp"
#include "retime/moves.hpp"
#include "retime/sequencer.hpp"

namespace rtv {

struct SafetyReport {
  MoveSequenceStats stats;
  /// Cor 4.4: every environment sees identical behaviour (C ≼ D).
  bool safe_replacement_guaranteed = false;
  /// Thm 4.5 bound: C^k ⊑ D. Zero when safe_replacement_guaranteed.
  std::size_t delay_bound = 0;
  /// The static plan analyzer (analysis/plan.hpp) replayed the sequence
  /// without mutating the design and produced the same stats — the reported
  /// delay_bound is then an independently derived certificate, not just a
  /// by-product of applying the moves.
  bool statically_verified = false;
  /// Every move that breaks safe replacement in the Section-4 taxonomy was
  /// individually certified harmless by the ternary dataflow fixpoint
  /// (analysis/dataflow.hpp, RTV305): this concrete sequence preserves
  /// every CLS trace even though its move classes alone cannot guarantee
  /// it. False means only "no certificate" — certification is skipped for
  /// sequences with no unsafe moves (nothing to certify) and for very
  /// large moves×netlist products (the fixpoint replay would dominate).
  bool cls_certified_safe = false;

  std::string summary() const;
};

/// Analyzes a lag assignment by sequencing it into atomic moves; also
/// returns the retimed netlist via `sequenced` if non-null.
SafetyReport analyze_lag_retiming(const Netlist& netlist,
                                  const RetimeGraph& graph,
                                  const std::vector<int>& lag,
                                  SequencedRetiming* sequenced = nullptr);

/// Analyzes an explicit move sequence, applying it to a copy of the
/// netlist; the result is written to `retimed` if non-null.
SafetyReport analyze_move_sequence(const Netlist& netlist,
                                   const std::vector<RetimingMove>& moves,
                                   Netlist* retimed = nullptr);

}  // namespace rtv
