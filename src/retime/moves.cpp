#include "retime/moves.hpp"

#include <sstream>

namespace rtv {

const char* to_string(MoveDirection direction) {
  return direction == MoveDirection::kForward ? "forward" : "backward";
}

MoveDirection move_direction_from_string(const std::string& text) {
  if (text == "forward") return MoveDirection::kForward;
  if (text == "backward") return MoveDirection::kBackward;
  throw ParseError("unknown move direction '" + text +
                   "' (expected \"forward\" or \"backward\")");
}

MoveClass classify_move(const Netlist& netlist, const RetimingMove& move) {
  return MoveClass{move.direction, netlist.is_justifiable(move.element)};
}

namespace {

/// The element's ports must each drive exactly one pin for a move to have a
/// well-defined effect (the paper's junction-normal form).
bool ports_single_sink(const Netlist& netlist, NodeId element) {
  for (std::uint32_t p = 0; p < netlist.num_ports(element); ++p) {
    if (netlist.sinks(PortRef(element, p)).size() != 1) return false;
  }
  return true;
}

/// A latch is movable across an element only when the latch's own port
/// feeds exactly one pin (true in junction-normal form).
bool latch_on_pin(const Netlist& netlist, NodeId element, std::uint32_t pin,
                  NodeId* latch_out) {
  const PortRef drv = netlist.driver(PinRef(element, pin));
  if (!drv.valid() || netlist.kind(drv.node) != CellKind::kLatch) return false;
  if (netlist.sinks(drv).size() != 1) return false;
  if (latch_out != nullptr) *latch_out = drv.node;
  return true;
}

bool latch_on_port(const Netlist& netlist, NodeId element, std::uint32_t port,
                   NodeId* latch_out) {
  const auto& sinks = netlist.sinks(PortRef(element, port));
  if (sinks.size() != 1) return false;
  const NodeId sink = sinks[0].node;
  if (netlist.kind(sink) != CellKind::kLatch) return false;
  if (latch_out != nullptr) *latch_out = sink;
  return true;
}

}  // namespace

bool can_apply(const Netlist& netlist, const RetimingMove& move) {
  const NodeId e = move.element;
  if (!e.valid() || e.value >= netlist.num_slots() || netlist.is_dead(e)) {
    return false;
  }
  if (!is_combinational(netlist.kind(e))) return false;
  if (!ports_single_sink(netlist, e)) return false;
  if (move.direction == MoveDirection::kForward) {
    for (std::uint32_t pin = 0; pin < netlist.num_pins(e); ++pin) {
      if (!latch_on_pin(netlist, e, pin, nullptr)) return false;
    }
  } else {
    if (netlist.num_ports(e) == 0) return false;
    for (std::uint32_t port = 0; port < netlist.num_ports(e); ++port) {
      if (!latch_on_port(netlist, e, port, nullptr)) return false;
    }
  }
  return true;
}

MoveClass apply_move(Netlist& netlist, const RetimingMove& move) {
  RTV_REQUIRE(can_apply(netlist, move), "retiming move is not enabled");
  const NodeId e = move.element;
  const MoveClass cls = classify_move(netlist, move);
  if (move.direction == MoveDirection::kForward) {
    // Remove one latch from each input wire...
    for (std::uint32_t pin = 0; pin < netlist.num_pins(e); ++pin) {
      NodeId latch;
      RTV_CHECK(latch_on_pin(netlist, e, pin, &latch));
      netlist.bypass_and_remove(latch);
    }
    // ...and place one latch on each output wire.
    for (std::uint32_t port = 0; port < netlist.num_ports(e); ++port) {
      const PortRef p(e, port);
      netlist.insert_on_wire(p, netlist.sole_sink(p), CellKind::kLatch);
    }
  } else {
    for (std::uint32_t port = 0; port < netlist.num_ports(e); ++port) {
      NodeId latch;
      RTV_CHECK(latch_on_port(netlist, e, port, &latch));
      netlist.bypass_and_remove(latch);
    }
    for (std::uint32_t pin = 0; pin < netlist.num_pins(e); ++pin) {
      const PinRef p(e, pin);
      netlist.insert_on_wire(netlist.driver(p), p, CellKind::kLatch);
    }
  }
  return cls;
}

std::vector<RetimingMove> enabled_moves(const Netlist& netlist) {
  std::vector<RetimingMove> moves;
  for (std::uint32_t i = 0; i < netlist.num_slots(); ++i) {
    const NodeId id(i);
    if (netlist.is_dead(id) || !is_combinational(netlist.kind(id))) continue;
    for (const MoveDirection dir :
         {MoveDirection::kForward, MoveDirection::kBackward}) {
      const RetimingMove m{id, dir};
      if (can_apply(netlist, m)) moves.push_back(m);
    }
  }
  return moves;
}

std::string MoveSequenceStats::summary() const {
  std::ostringstream os;
  os << total_moves << " moves (" << forward_moves << " fwd, "
     << backward_moves << " bwd), " << forward_across_non_justifiable
     << " fwd across non-justifiable, k = "
     << max_forward_per_non_justifiable;
  return os.str();
}

}  // namespace rtv
