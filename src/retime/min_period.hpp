#pragma once
// Minimum clock-period retiming [LS83], two independent algorithms:
//
//  * OPT: binary search over the candidate periods (the distinct D(u,v)
//    values), testing feasibility with Bellman–Ford on the difference-
//    constraint system  lag(u) - lag(v) <= w(e)  and, for pairs with
//    D(u,v) > c,  lag(u) - lag(v) <= W(u,v) - 1. Exact; needs W/D matrices.
//
//  * FEAS-style incremental: matrix-free lazy constraint generation in the
//    spirit of [LS83]'s FEAS and [SR94]'s engineering — solve the legality
//    difference constraints by Bellman–Ford, then repeatedly cut off the
//    current solution with one path constraint per late vertex
//    (lag(u) - lag(v) <= w(p) - 1 along its critical path) until the target
//    period is met. O(V^2) memory never materializes; the min period is
//    found by integer binary search (vertex delays are integers).
//
// Both return a legal lag assignment realizing the optimum; tests cross-
// check them against each other.

#include <optional>
#include <vector>

#include "retime/graph.hpp"
#include "retime/wd.hpp"

namespace rtv {

struct RetimingSolution {
  int period = 0;
  std::vector<int> lag;
};

/// Bellman–Ford feasibility for target period c using precomputed W/D.
/// Returns a legal lag assignment achieving period <= c, or nullopt.
std::optional<std::vector<int>> feasible_retiming_opt(const RetimeGraph& graph,
                                                      const WdMatrices& wd,
                                                      int period);

/// FEAS feasibility for target period c. Returns a legal lag assignment
/// achieving period <= c, or nullopt.
std::optional<std::vector<int>> feasible_retiming_feas(
    const RetimeGraph& graph, int period);

/// Exact min-period retiming via OPT (W/D + binary search over candidates).
RetimingSolution min_period_retime_opt(const RetimeGraph& graph);

/// Min-period retiming via FEAS + integer binary search.
RetimingSolution min_period_retime_feas(const RetimeGraph& graph);

}  // namespace rtv
