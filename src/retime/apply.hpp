#pragma once
// Applying a lag assignment to a netlist: rebuilds the circuit with
// w_r(e) = w(e) + lag(to) - lag(from) latches on every wire chain.

#include <vector>

#include "netlist/netlist.hpp"
#include "retime/graph.hpp"

namespace rtv {

/// Produces the retimed netlist for a legal lag assignment on
/// RetimeGraph::from_netlist(netlist). The combinational structure is
/// preserved node-for-node (names kept); only latch positions change.
/// Throws InvalidArgument if the retiming is illegal.
Netlist apply_retiming(const Netlist& netlist, const RetimeGraph& graph,
                       const std::vector<int>& lag);

}  // namespace rtv
