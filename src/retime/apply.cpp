#include "retime/apply.hpp"

namespace rtv {

Netlist apply_retiming(const Netlist& netlist, const RetimeGraph& graph,
                       const std::vector<int>& lag) {
  RTV_REQUIRE(graph.legal_retiming(lag), "apply_retiming: illegal retiming");

  // Copy every non-latch node; wires (graph edges) are re-made with the
  // retimed latch counts.
  Netlist out;
  std::vector<NodeId> map(netlist.num_slots());
  for (std::uint32_t i = 0; i < netlist.num_slots(); ++i) {
    const NodeId id(i);
    if (netlist.is_dead(id)) continue;
    const Node& n = netlist.node(id);
    switch (n.kind) {
      case CellKind::kLatch:
        break;  // re-created per edge below
      case CellKind::kInput:
        map[i] = out.add_input(n.name);
        break;
      case CellKind::kOutput:
        map[i] = out.add_output(n.name);
        break;
      case CellKind::kConst0:
        map[i] = out.add_const(false, n.name);
        break;
      case CellKind::kConst1:
        map[i] = out.add_const(true, n.name);
        break;
      case CellKind::kJunc:
        map[i] = out.add_junc(n.num_ports(), n.name);
        break;
      case CellKind::kTable:
        map[i] = out.add_table_cell(out.add_table(netlist.table(n.table)),
                                    n.name);
        break;
      default:
        map[i] = out.add_gate(n.kind, n.num_pins(), n.name);
        break;
    }
  }

  for (std::size_t i = 0; i < graph.num_edges(); ++i) {
    const RetimeGraph::Edge& e = graph.edge(i);
    const int latches = graph.retimed_weight(i, lag);
    PortRef from(map[e.src_port.node.value], e.src_port.port);
    const PinRef to(map[e.dst_pin.node.value], e.dst_pin.pin);
    for (int k = 0; k < latches; ++k) {
      const NodeId latch = out.add_latch();
      out.connect(from, PinRef(latch, 0));
      from = PortRef(latch, 0);
    }
    out.connect(from, to);
  }
  return out;
}

}  // namespace rtv
