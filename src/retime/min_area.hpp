#pragma once
// Minimum-area (minimum register count) retiming, optionally under a clock-
// period constraint — the optimization [SR94] made practical at 50k-gate
// scale and the transformation whose *validity* the paper examines.
//
// LP formulation: registers after retiming = sum_e w(e) + sum_v a_v lag(v)
// with a_v = indeg(v) - outdeg(v), subject to the legality constraints
// lag(u) - lag(v) <= w(e) and, when a period c is given, the [LS83] period
// constraints lag(u) - lag(v) <= W(u,v) - 1 for all D(u,v) > c. The LP dual
// is a transshipment problem solved with MinCostFlow; optimal lags are the
// negated node potentials.
//
// Register-count model: one register per wire chain unit (edge weight sum).
// [SR94]'s fanout-sharing refinement (registers on sibling fanout edges
// share) is intentionally out of scope; see DESIGN.md.

#include <optional>
#include <vector>

#include "retime/graph.hpp"

namespace rtv {

struct MinAreaResult {
  std::vector<int> lag;
  std::int64_t registers_before = 0;
  std::int64_t registers_after = 0;
};

/// Unconstrained minimum-register retiming.
MinAreaResult min_area_retime(const RetimeGraph& graph);

/// Minimum-register retiming subject to clock period <= period. Returns
/// nullopt if the period is infeasible. Computes W/D matrices (quadratic);
/// intended for small/medium graphs.
std::optional<MinAreaResult> min_area_retime_with_period(
    const RetimeGraph& graph, int period);

/// The paper's Section-1 recommendation as an optimizer: minimum-register
/// retiming restricted to transformations that preserve safe replacement
/// (Cor 4.4). Realized by the extra constraints lag(v) >= 0 for every
/// non-justifiable element v — the move sequencer changes each vertex's lag
/// monotonically, so a non-negative lag means no forward move ever crosses
/// it. The optimum can be worse than the unconstrained one; it is never
/// better. `netlist` must be the graph's origin (for justifiability).
MinAreaResult min_area_retime_safe(const RetimeGraph& graph,
                                   const Netlist& netlist);

}  // namespace rtv
