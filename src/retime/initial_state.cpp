#include "retime/initial_state.hpp"

#include <unordered_map>

#include "util/bits.hpp"

namespace rtv {

std::optional<MoveClass> apply_move_with_state(Netlist& netlist,
                                               const RetimingMove& move,
                                               Bits& state) {
  RTV_REQUIRE(state.size() == netlist.latches().size(),
              "state vector size mismatch");
  RTV_REQUIRE(can_apply(netlist, move), "retiming move is not enabled");
  const NodeId e = move.element;
  const TruthTable function = netlist.cell_function(e);

  // Values by latch node (stable across the structural edit).
  std::unordered_map<std::uint32_t, std::uint8_t> value;
  for (std::size_t i = 0; i < netlist.latches().size(); ++i) {
    value[netlist.latches()[i].value] = state[i];
  }

  std::uint64_t transformed = 0;
  if (move.direction == MoveDirection::kForward) {
    // Consumed latches hold the element's input minterm x; the produced
    // latches hold F(x).
    std::uint64_t x = 0;
    for (std::uint32_t pin = 0; pin < netlist.num_pins(e); ++pin) {
      const NodeId latch = netlist.driver(PinRef(e, pin)).node;
      if (value.at(latch.value) != 0) x |= (1ULL << pin);
    }
    transformed = function.eval_row(x);
  } else {
    // Produced latches must justify the consumed output vector y.
    std::uint64_t y = 0;
    for (std::uint32_t port = 0; port < netlist.num_ports(e); ++port) {
      const NodeId latch = netlist.sole_sink(PortRef(e, port)).node;
      if (value.at(latch.value) != 0) y |= (1ULL << port);
    }
    const auto x = function.justify(y);
    if (!x) return std::nullopt;  // netlist and state left untouched
    transformed = *x;
  }

  const MoveClass cls = apply_move(netlist, move);

  if (move.direction == MoveDirection::kForward) {
    for (std::uint32_t port = 0; port < netlist.num_ports(e); ++port) {
      const NodeId latch = netlist.sole_sink(PortRef(e, port)).node;
      RTV_CHECK(netlist.kind(latch) == CellKind::kLatch);
      value[latch.value] = get_bit(transformed, port) ? 1 : 0;
    }
  } else {
    for (std::uint32_t pin = 0; pin < netlist.num_pins(e); ++pin) {
      const NodeId latch = netlist.driver(PinRef(e, pin)).node;
      RTV_CHECK(netlist.kind(latch) == CellKind::kLatch);
      value[latch.value] = get_bit(transformed, pin) ? 1 : 0;
    }
  }

  state.resize(netlist.latches().size());
  for (std::size_t i = 0; i < netlist.latches().size(); ++i) {
    state[i] = value.at(netlist.latches()[i].value);
  }
  return cls;
}

std::optional<Bits> retime_initial_state(Netlist& netlist,
                                         const std::vector<RetimingMove>& moves,
                                         Bits state) {
  for (const RetimingMove& move : moves) {
    if (!apply_move_with_state(netlist, move, state)) return std::nullopt;
  }
  return state;
}

}  // namespace rtv
