#include "retime/wd.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace rtv {

std::vector<int> WdMatrices::candidate_periods() const {
  std::vector<int> values;
  values.reserve(d.size());
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (reachable(u, v)) values.push_back(D(u, v));
    }
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

WdMatrices compute_wd(const RetimeGraph& graph, std::uint32_t vertex_cap) {
  const std::uint32_t n = graph.num_vertices();
  if (n > vertex_cap) {
    throw CapacityError("compute_wd: graph exceeds the vertex cap (" +
                        std::to_string(n) + " vertices, cap " +
                        std::to_string(vertex_cap) + ")");
  }
  WdMatrices m;
  m.n = n;
  m.w.assign(static_cast<std::size_t>(n) * n, WdMatrices::kUnreachable);
  m.d.assign(static_cast<std::size_t>(n) * n, 0);

  const auto relax = [&](std::uint32_t u, std::uint32_t v, int w, int d) {
    auto& wr = m.w[static_cast<std::size_t>(u) * n + v];
    auto& dr = m.d[static_cast<std::size_t>(u) * n + v];
    // Lexicographic: minimize registers, then maximize delay.
    if (w < wr || (w == wr && d > dr)) {
      wr = w;
      dr = d;
    }
  };

  for (std::uint32_t v = 0; v < n; ++v) relax(v, v, 0, graph.delay(v));
  for (const RetimeGraph::Edge& e : graph.edges()) {
    relax(e.from, e.to, e.weight, graph.delay(e.from) + graph.delay(e.to));
  }
  for (std::uint32_t k = 0; k < n; ++k) {
    for (std::uint32_t u = 0; u < n; ++u) {
      const int wuk = m.W(u, k);
      if (wuk >= WdMatrices::kUnreachable) continue;
      const int duk = m.D(u, k);
      for (std::uint32_t v = 0; v < n; ++v) {
        const int wkv = m.W(k, v);
        if (wkv >= WdMatrices::kUnreachable) continue;
        relax(u, v, wuk + wkv, duk + m.D(k, v) - graph.delay(k));
      }
    }
  }
  return m;
}

}  // namespace rtv
