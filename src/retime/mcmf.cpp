#include "retime/mcmf.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace rtv {

namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
}

MinCostFlow::MinCostFlow(std::uint32_t num_nodes)
    : n_(num_nodes), graph_(num_nodes), potential_(num_nodes, 0) {}

std::uint32_t MinCostFlow::add_arc(std::uint32_t from, std::uint32_t to,
                                   std::int64_t capacity, std::int64_t cost) {
  RTV_REQUIRE(from < n_ && to < n_, "arc endpoint out of range");
  RTV_REQUIRE(capacity >= 0, "negative capacity");
  if (cost < 0) has_negative_cost_ = true;
  const std::uint32_t id = static_cast<std::uint32_t>(arc_location_.size());
  arc_location_.emplace_back(from, static_cast<std::uint32_t>(graph_[from].size()));
  original_capacity_.push_back(capacity);
  graph_[from].push_back(
      Arc{to, static_cast<std::uint32_t>(graph_[to].size()), capacity, cost});
  graph_[to].push_back(
      Arc{from, static_cast<std::uint32_t>(graph_[from].size() - 1), 0, -cost});
  return id;
}

void MinCostFlow::bellman_ford_potentials(std::uint32_t source) {
  std::vector<std::int64_t> dist(n_, kInf);
  dist[source] = 0;
  for (std::uint32_t round = 0; round + 1 < std::max<std::uint32_t>(n_, 2);
       ++round) {
    bool changed = false;
    for (std::uint32_t u = 0; u < n_; ++u) {
      if (dist[u] >= kInf) continue;
      for (const Arc& a : graph_[u]) {
        if (a.capacity > 0 && dist[u] + a.cost < dist[a.to]) {
          dist[a.to] = dist[u] + a.cost;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  for (std::uint32_t v = 0; v < n_; ++v) {
    potential_[v] = dist[v] >= kInf ? 0 : dist[v];
  }
}

bool MinCostFlow::dijkstra(std::uint32_t source, std::uint32_t sink,
                           std::vector<std::uint32_t>& prev_node,
                           std::vector<std::uint32_t>& prev_arc) {
  std::vector<std::int64_t> dist(n_, kInf);
  prev_node.assign(n_, 0xffffffffu);
  prev_arc.assign(n_, 0);
  using Item = std::pair<std::int64_t, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    for (std::uint32_t i = 0; i < graph_[u].size(); ++i) {
      const Arc& a = graph_[u][i];
      if (a.capacity <= 0) continue;
      const std::int64_t reduced = a.cost + potential_[u] - potential_[a.to];
      RTV_CHECK_MSG(reduced >= 0, "negative reduced cost in Dijkstra");
      if (dist[u] + reduced < dist[a.to]) {
        dist[a.to] = dist[u] + reduced;
        prev_node[a.to] = u;
        prev_arc[a.to] = i;
        heap.emplace(dist[a.to], a.to);
      }
    }
  }
  if (dist[sink] >= kInf) return false;
  // Clamping to dist[sink] keeps reduced costs non-negative on every
  // residual arc, including arcs leaving nodes the search did not reach —
  // required because min-area retiming reads the final potentials as the
  // LP dual solution.
  for (std::uint32_t v = 0; v < n_; ++v) {
    potential_[v] += std::min(dist[v], dist[sink]);
  }
  return true;
}

MinCostFlow::Result MinCostFlow::solve(std::uint32_t source,
                                       std::uint32_t sink,
                                       std::int64_t max_flow) {
  RTV_REQUIRE(source < n_ && sink < n_ && source != sink,
              "bad source/sink");
  if (has_negative_cost_) bellman_ford_potentials(source);

  Result result;
  std::vector<std::uint32_t> prev_node, prev_arc;
  while (result.flow < max_flow) {
    if (!dijkstra(source, sink, prev_node, prev_arc)) break;
    // Bottleneck along the augmenting path.
    std::int64_t push = max_flow - result.flow;
    for (std::uint32_t v = sink; v != source; v = prev_node[v]) {
      RTV_CHECK(prev_node[v] != 0xffffffffu);
      push = std::min(push, graph_[prev_node[v]][prev_arc[v]].capacity);
    }
    for (std::uint32_t v = sink; v != source; v = prev_node[v]) {
      Arc& a = graph_[prev_node[v]][prev_arc[v]];
      a.capacity -= push;
      graph_[v][a.rev].capacity += push;
      result.cost += push * a.cost;
    }
    result.flow += push;
  }
  return result;
}

std::int64_t MinCostFlow::flow_on(std::uint32_t id) const {
  RTV_REQUIRE(id < arc_location_.size(), "arc id out of range");
  const auto [node, idx] = arc_location_[id];
  return original_capacity_[id] - graph_[node][idx].capacity;
}

}  // namespace rtv
