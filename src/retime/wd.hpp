#pragma once
// The Leiserson–Saxe W and D matrices [LS83].
//
// W(u,v) = minimum register count over all u->v paths; D(u,v) = maximum
// total vertex delay over the minimum-register u->v paths (endpoints
// included). Computed with Floyd–Warshall on the lexicographic weight
// (w, -d): O(V^3) time, O(V^2) memory — intended for the exact OPT-style
// min-period algorithm on small/medium graphs (the FEAS path in
// min_period.hpp needs no matrices and scales much further).

#include <cstdint>
#include <limits>
#include <vector>

#include "retime/graph.hpp"

namespace rtv {

struct WdMatrices {
  std::uint32_t n = 0;
  /// kUnreachable in W marks "no path".
  static constexpr int kUnreachable = std::numeric_limits<int>::max() / 4;
  std::vector<int> w;  ///< n*n, row-major: w[u*n+v]
  std::vector<int> d;  ///< n*n

  int W(std::uint32_t u, std::uint32_t v) const { return w[u * n + v]; }
  int D(std::uint32_t u, std::uint32_t v) const { return d[u * n + v]; }
  bool reachable(std::uint32_t u, std::uint32_t v) const {
    return W(u, v) < kUnreachable;
  }

  /// Sorted distinct finite D values — the candidate clock periods for the
  /// binary search in min-period retiming.
  std::vector<int> candidate_periods() const;
};

/// Computes W and D. Caps at vertex_cap vertices (quadratic memory).
WdMatrices compute_wd(const RetimeGraph& graph,
                      std::uint32_t vertex_cap = 4096);

}  // namespace rtv
