#include "retime/min_area.hpp"

#include <algorithm>

#include "retime/mcmf.hpp"
#include "retime/min_period.hpp"
#include "retime/wd.hpp"
#include "util/error.hpp"

namespace rtv {

namespace {

/// A difference constraint lag(u) - lag(v) <= bound.
struct Constraint {
  std::uint32_t u;
  std::uint32_t v;
  int bound;
};

/// Solves min sum_v a_v lag(v) subject to difference constraints via the
/// dual transshipment problem. a sums to zero (it is a degree imbalance),
/// so the objective is shift-invariant and we can anchor the host afterward.
std::vector<int> solve_dual(std::uint32_t n, const std::vector<int>& a,
                            const std::vector<Constraint>& constraints) {
  // Dual: find flow y >= 0 on constraint arcs u->v with cost = bound,
  // conservation inflow(v) - outflow(v) = a_v. Realized as max-flow from a
  // super-source to a super-sink; the all-ones flow on the original edge
  // constraints shows a feasible flow saturating all supplies exists.
  const std::uint32_t kSource = n;
  const std::uint32_t kSink = n + 1;
  MinCostFlow flow(n + 2);

  std::int64_t total_supply = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::int64_t supply = -a[v];  // outflow - inflow must equal -a_v
    if (supply > 0) {
      flow.add_arc(kSource, v, supply, 0);
      total_supply += supply;
    } else if (supply < 0) {
      flow.add_arc(v, kSink, -supply, 0);
    }
  }
  // Constraint arcs: capacity total_supply + 1 so they are never saturated
  // and the reduced-cost inequality pi[v] - pi[u] <= bound holds for all of
  // them at optimality.
  for (const Constraint& c : constraints) {
    flow.add_arc(c.u, c.v, total_supply + 1, c.bound);
  }

  const auto result = flow.solve(kSource, kSink, total_supply);
  RTV_CHECK_MSG(result.flow == total_supply,
                "min-area dual flow infeasible (constraint system broken)");

  const auto& pi = flow.potentials();
  std::vector<int> lag(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    lag[v] = static_cast<int>(-pi[v]);
  }
  return lag;
}

std::vector<Constraint> legality_constraints(const RetimeGraph& graph) {
  std::vector<Constraint> cs;
  cs.reserve(graph.num_edges() + 2);
  for (const RetimeGraph::Edge& e : graph.edges()) {
    cs.push_back({e.from, e.to, e.weight});
  }
  // Couple the two host sides (lag equal, normalized to 0 afterwards).
  cs.push_back({RetimeGraph::kHostSource, RetimeGraph::kHostSink, 0});
  cs.push_back({RetimeGraph::kHostSink, RetimeGraph::kHostSource, 0});
  return cs;
}

MinAreaResult finish(const RetimeGraph& graph, std::vector<int> lag) {
  // Anchor the host at lag 0 (objective and constraints are shift-invariant).
  const int shift = lag[RetimeGraph::kHostSource];
  for (int& v : lag) v -= shift;
  RTV_CHECK_MSG(graph.legal_retiming(lag),
                "min-area produced an illegal retiming");
  MinAreaResult result;
  result.registers_before = graph.total_weight();
  // Note: under a period constraint the optimum can exceed the original
  // register count (lag = 0 may be period-infeasible), so no <= assertion.
  result.registers_after = graph.retimed_total_weight(lag);
  result.lag = std::move(lag);
  return result;
}

}  // namespace

MinAreaResult min_area_retime(const RetimeGraph& graph) {
  return finish(graph, solve_dual(graph.num_vertices(),
                                  graph.degree_imbalance(),
                                  legality_constraints(graph)));
}

MinAreaResult min_area_retime_safe(const RetimeGraph& graph,
                                   const Netlist& netlist) {
  std::vector<Constraint> cs = legality_constraints(graph);
  for (std::uint32_t v = 2; v < graph.num_vertices(); ++v) {
    const NodeId origin = graph.vertex_origin(v);
    if (!netlist.is_justifiable(origin)) {
      // lag(host) - lag(v) <= 0, i.e. lag(v) >= 0: backward moves only.
      cs.push_back({RetimeGraph::kHostSource, v, 0});
    }
  }
  return finish(graph,
                solve_dual(graph.num_vertices(), graph.degree_imbalance(), cs));
}

std::optional<MinAreaResult> min_area_retime_with_period(
    const RetimeGraph& graph, int period) {
  const WdMatrices wd = compute_wd(graph);
  // Infeasible periods would make the dual unbounded; detect them first.
  if (!feasible_retiming_opt(graph, wd, period)) return std::nullopt;

  std::vector<Constraint> cs = legality_constraints(graph);
  const std::uint32_t n = graph.num_vertices();
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (u != v && wd.reachable(u, v) && wd.D(u, v) > period) {
        cs.push_back({u, v, wd.W(u, v) - 1});
      }
    }
  }
  MinAreaResult result =
      finish(graph, solve_dual(n, graph.degree_imbalance(), cs));
  RTV_CHECK_MSG(graph.clock_period(result.lag) <= period,
                "period constraint violated by min-area solution");
  return result;
}

}  // namespace rtv
