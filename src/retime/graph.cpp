#include "retime/graph.hpp"

#include <algorithm>
#include <sstream>

namespace rtv {

int vertex_delay(const Netlist& netlist, NodeId node, DelayModel model) {
  if (model == DelayModel::kZero) return 0;
  switch (netlist.kind(node)) {
    case CellKind::kBuf:
    case CellKind::kJunc:
    case CellKind::kConst0:
    case CellKind::kConst1:
      return 0;
    default:
      return 1;
  }
}

RetimeGraph RetimeGraph::from_netlist(const Netlist& netlist,
                                      DelayModel model) {
  RetimeGraph g;
  g.vertex_of_slot_.assign(netlist.num_slots(), 0);

  // Vertices 0/1 are the host source/sink (delay 0).
  g.delay_.push_back(0);
  g.origin_.push_back(NodeId());
  g.delay_.push_back(0);
  g.origin_.push_back(NodeId());
  for (std::uint32_t i = 0; i < netlist.num_slots(); ++i) {
    const NodeId id(i);
    if (netlist.is_dead(id) || !is_combinational(netlist.kind(id))) continue;
    g.vertex_of_slot_[i] = static_cast<std::uint32_t>(g.delay_.size());
    g.delay_.push_back(vertex_delay(netlist, id, model));
    g.origin_.push_back(id);
  }

  // One edge per wire chain ending at a combinational pin or a PO pin.
  // Walking backwards from the pin through the latch chain yields the
  // weight and the true source (combinational port, or PI -> host).
  const auto trace = [&](PinRef pin) -> Edge {
    Edge e;
    e.dst_pin = pin;
    e.to = is_combinational(netlist.kind(pin.node))
               ? g.vertex_of_slot_[pin.node.value]
               : kHostSink;  // primary output
    int latches = 0;
    PortRef drv = netlist.driver(pin);
    RTV_REQUIRE(drv.valid(), "retiming graph requires fully connected pins");
    while (netlist.kind(drv.node) == CellKind::kLatch) {
      ++latches;
      drv = netlist.driver(PinRef(drv.node, 0));
      RTV_REQUIRE(drv.valid(), "latch with unconnected data pin");
    }
    e.weight = latches;
    e.src_port = drv;
    e.from = is_combinational(netlist.kind(drv.node))
                 ? g.vertex_of_slot_[drv.node.value]
                 : kHostSource;  // primary input
    return e;
  };

  for (std::uint32_t i = 0; i < netlist.num_slots(); ++i) {
    const NodeId id(i);
    if (netlist.is_dead(id)) continue;
    const CellKind k = netlist.kind(id);
    if (k == CellKind::kLatch) continue;  // interior of a chain
    if (is_combinational(k) || k == CellKind::kOutput) {
      for (std::uint32_t pin = 0; pin < netlist.num_pins(id); ++pin) {
        g.edges_.push_back(trace(PinRef(id, pin)));
      }
    }
  }

  g.out_.assign(g.num_vertices(), {});
  g.in_.assign(g.num_vertices(), {});
  for (std::uint32_t i = 0; i < g.edges_.size(); ++i) {
    g.out_[g.edges_[i].from].push_back(i);
    g.in_[g.edges_[i].to].push_back(i);
  }
  return g;
}

std::uint32_t RetimeGraph::vertex_of(NodeId node) const {
  RTV_REQUIRE(node.valid() && node.value < vertex_of_slot_.size(),
              "node out of range");
  const std::uint32_t v = vertex_of_slot_[node.value];
  RTV_REQUIRE(v >= 2 && origin_[v] == node,
              "node has no retiming-graph vertex");
  return v;
}

std::int64_t RetimeGraph::total_weight() const {
  std::int64_t total = 0;
  for (const Edge& e : edges_) total += e.weight;
  return total;
}

int RetimeGraph::retimed_weight(std::size_t i,
                                const std::vector<int>& lag) const {
  const Edge& e = edges_[i];
  return e.weight + lag[e.to] - lag[e.from];
}

bool RetimeGraph::legal_retiming(const std::vector<int>& lag) const {
  RTV_REQUIRE(lag.size() == num_vertices(), "lag vector size mismatch");
  if (lag[kHostSource] != 0 || lag[kHostSink] != 0) return false;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (retimed_weight(i, lag) < 0) return false;
  }
  return true;
}

std::int64_t RetimeGraph::retimed_total_weight(
    const std::vector<int>& lag) const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    total += retimed_weight(i, lag);
  }
  return total;
}

int RetimeGraph::clock_period(const std::vector<int>& lag) const {
  const bool use_lag = !lag.empty();
  if (use_lag) {
    RTV_REQUIRE(lag.size() == num_vertices(), "lag vector size mismatch");
  }
  const auto weight = [&](std::size_t i) {
    return use_lag ? retimed_weight(i, lag) : edges_[i].weight;
  };

  // Longest path over the zero-weight subgraph via Kahn ordering; every
  // cycle carries a register, so this subgraph is acyclic.
  const std::uint32_t n = num_vertices();
  std::vector<std::uint32_t> indegree(n, 0);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const int w = weight(i);
    RTV_REQUIRE(w >= 0, "clock_period on an illegal retiming");
    if (w == 0) ++indegree[edges_[i].to];
  }
  std::vector<std::uint32_t> ready;
  std::vector<int> arrival(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    arrival[v] = delay_[v];
    if (indegree[v] == 0) ready.push_back(v);
  }
  int period = 0;
  std::size_t emitted = 0;
  while (!ready.empty()) {
    const std::uint32_t u = ready.back();
    ready.pop_back();
    ++emitted;
    period = std::max(period, arrival[u]);
    for (const std::uint32_t i : out_[u]) {
      if (weight(i) != 0) continue;
      const std::uint32_t v = edges_[i].to;
      arrival[v] = std::max(arrival[v], arrival[u] + delay_[v]);
      if (--indegree[v] == 0) ready.push_back(v);
    }
  }
  RTV_CHECK_MSG(emitted == n, "zero-weight subgraph has a cycle");
  return period;
}

void RetimeGraph::check_valid() const {
  const std::uint32_t n = num_vertices();
  RTV_REQUIRE(n >= 2 && !origin_[kHostSource].valid() &&
                  !origin_[kHostSink].valid(),
              "vertices 0/1 must be the host sides");
  for (const Edge& e : edges_) {
    RTV_REQUIRE(e.from < n && e.to < n, "edge endpoint out of range");
    RTV_REQUIRE(e.weight >= 0, "negative edge weight");
  }
  // Every cycle carries a register <=> the zero-weight subgraph is acyclic;
  // clock_period() checks exactly that.
  (void)clock_period();
}

std::string RetimeGraph::summary() const {
  std::ostringstream os;
  os << "retime graph: " << num_vertices() << " vertices, " << num_edges()
     << " edges, " << total_weight() << " registers, period "
     << clock_period();
  return os.str();
}

std::vector<int> RetimeGraph::degree_imbalance() const {
  std::vector<int> a(num_vertices(), 0);
  for (const Edge& e : edges_) {
    a[e.to] += 1;
    a[e.from] -= 1;
  }
  return a;
}

}  // namespace rtv
