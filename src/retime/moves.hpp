#pragma once
// Atomic retiming moves on junction-normal netlists (paper Section 3.2,
// Figure 6) and their safety classification (Section 4).
//
// A *forward* move across a combinational element removes one latch from
// each of its input wires and places one latch on each of its output wires;
// a *backward* move is the reverse. The four move kinds of Section 4 are
// {forward, backward} × {justifiable, non-justifiable element}; the only
// unsafe kind — the one that can violate safe replacement — is a forward
// move across a non-justifiable element (Prop 4.1/4.2).

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace rtv {

enum class MoveDirection : std::uint8_t { kForward, kBackward };

const char* to_string(MoveDirection direction);

/// Inverse of to_string ("forward"/"backward"); throws ParseError on
/// anything else. Used by the JSON retiming-plan format.
MoveDirection move_direction_from_string(const std::string& text);

/// One atomic retiming move: direction + the combinational element moved
/// across.
struct RetimingMove {
  NodeId element;
  MoveDirection direction = MoveDirection::kForward;

  constexpr bool operator==(const RetimingMove&) const = default;
};

/// Section 4's four-way move classification.
struct MoveClass {
  MoveDirection direction = MoveDirection::kForward;
  bool justifiable = true;

  /// True for every kind except forward-across-non-justifiable
  /// (Prop 4.1: these preserve C ⊑ D, hence safe replacement).
  bool preserves_safe_replacement() const {
    return direction == MoveDirection::kBackward || justifiable;
  }
};

/// Classifies a move on a given netlist (queries element justifiability).
MoveClass classify_move(const Netlist& netlist, const RetimingMove& move);

/// Structural enabledness. Forward: every input pin of the element is driven
/// by a latch; backward: every output port of the element feeds a latch.
/// Both require the netlist to be junction-normal around the element and
/// every element port to have exactly one sink.
bool can_apply(const Netlist& netlist, const RetimingMove& move);

/// Applies an atomic move in place. Throws InvalidArgument if !can_apply.
/// Returns the classification of the applied move.
MoveClass apply_move(Netlist& netlist, const RetimingMove& move);

/// All currently enabled moves (both directions, every combinational
/// element). Deterministic order.
std::vector<RetimingMove> enabled_moves(const Netlist& netlist);

/// Statistics of an applied move sequence, feeding Theorem 4.5/4.6.
struct MoveSequenceStats {
  std::size_t total_moves = 0;
  std::size_t forward_moves = 0;
  std::size_t backward_moves = 0;
  std::size_t forward_across_non_justifiable = 0;
  /// max over elements of (forward moves across that non-justifiable
  /// element) — the k of Theorem 4.5: C^k ⊑ D.
  std::size_t max_forward_per_non_justifiable = 0;

  /// True iff the whole sequence preserves safe replacement (Cor 4.4).
  bool preserves_safe_replacement() const {
    return forward_across_non_justifiable == 0;
  }
  bool operator==(const MoveSequenceStats&) const = default;
  std::string summary() const;
};

}  // namespace rtv
