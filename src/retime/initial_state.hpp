#pragma once
// Carrying a known initial state through a retiming.
//
// The paper's model deliberately needs no initial states — that is the
// whole point — but it cites Touati & Brayton [TB93] for the complementary
// problem: if the designer DOES know an initial state s0 of D, what state
// should the retimed C start in? Atomic moves answer it locally:
//
//   * a forward move across F consumes the latches on F's inputs (holding
//     x) and produces latches on its outputs — their values are F(x),
//     computed deterministically;
//   * a backward move consumes the latches on F's outputs (holding y) and
//     must *justify* them: find any x with F(x) = y. For justifiable
//     elements some x always exists; for non-justifiable elements (or
//     unreachable y) the justification can fail — exactly the asymmetry
//     the paper's Section 4 classification captures.
//
// Failure of justification does not mean the retiming is wrong; it means
// no equivalent initial state exists for this s0 (the [TB93] problem is
// genuinely partial).

#include <optional>

#include "netlist/netlist.hpp"
#include "retime/moves.hpp"
#include "sim/vectors.hpp"

namespace rtv {

/// Applies one atomic move while transforming a latch-state vector
/// (layout: Netlist::latches() order, kept consistent as latches are
/// destroyed/created). Returns nullopt — and leaves netlist and state
/// untouched — when a backward move's justification fails.
std::optional<MoveClass> apply_move_with_state(Netlist& netlist,
                                               const RetimingMove& move,
                                               Bits& state);

/// Transforms an initial state of `netlist` through a whole move sequence;
/// returns the retimed netlist's state, or nullopt if some backward move
/// cannot be justified. `netlist` is advanced to the retimed design on
/// success and left in a partially-moved state on failure (pass a copy).
std::optional<Bits> retime_initial_state(Netlist& netlist,
                                         const std::vector<RetimingMove>& moves,
                                         Bits state);

}  // namespace rtv
