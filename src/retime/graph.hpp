#pragma once
// The Leiserson–Saxe retiming graph (paper Section 3.1, [LS83]).
//
// Vertices are the combinational cells of a netlist plus the distinguished
// `host` vertex (index 0) that absorbs primary inputs and outputs; each
// netlist wire chain (output port — latch* — input pin) becomes a directed
// edge whose weight is the number of latches on the chain. As the paper's
// Figure 4 demonstrates, this model cannot express where latches sit
// relative to a fanout junction — two observably different netlists can map
// to the same graph — which is exactly why the move-level model in
// retime/moves.hpp exists. With junctions represented as JUNC *vertices*
// (our default netlist normal form) the ambiguity disappears.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace rtv {

/// Vertex propagation-delay model d(v) >= 0 (integer delays keep the
/// min-period search exact).
enum class DelayModel {
  kUnit,       ///< every gate/table cell 1; buf/junc/const 0; host 0
  kZero,       ///< all zero (pure register-count experiments)
};

int vertex_delay(const Netlist& netlist, NodeId node, DelayModel model);

class RetimeGraph {
 public:
  /// The host is split into a source side (feeding primary inputs) and a
  /// sink side (absorbing primary outputs), both with lag fixed at 0. This
  /// is equivalent to Leiserson–Saxe's single zero-lag host vertex but keeps
  /// the zero-weight subgraph acyclic when the circuit has combinational
  /// input-to-output paths.
  static constexpr std::uint32_t kHostSource = 0;
  static constexpr std::uint32_t kHostSink = 1;

  struct Edge {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    int weight = 0;        ///< latch count on the wire chain
    PortRef src_port;      ///< origin netlist port (PI port or cell port)
    PinRef dst_pin;        ///< origin netlist pin (PO pin or cell pin)
  };

  /// Builds the graph of a netlist. Every input pin must be connected.
  static RetimeGraph from_netlist(const Netlist& netlist,
                                  DelayModel model = DelayModel::kUnit);

  std::uint32_t num_vertices() const { return static_cast<std::uint32_t>(delay_.size()); }
  std::size_t num_edges() const { return edges_.size(); }
  const Edge& edge(std::size_t i) const { return edges_[i]; }
  const std::vector<Edge>& edges() const { return edges_; }
  int delay(std::uint32_t v) const { return delay_[v]; }

  /// Netlist node behind a vertex (invalid for kHost).
  NodeId vertex_origin(std::uint32_t v) const { return origin_[v]; }
  /// Vertex of a netlist combinational node.
  std::uint32_t vertex_of(NodeId node) const;

  /// Out-edge / in-edge indices per vertex.
  const std::vector<std::uint32_t>& out_edges(std::uint32_t v) const {
    return out_[v];
  }
  const std::vector<std::uint32_t>& in_edges(std::uint32_t v) const {
    return in_[v];
  }

  /// Total latches (sum of edge weights).
  std::int64_t total_weight() const;

  /// A retiming (lag assignment, lag[kHost] == 0) is legal iff every
  /// retimed weight w_r(e) = w(e) + lag(to) - lag(from) is non-negative.
  bool legal_retiming(const std::vector<int>& lag) const;

  /// Retimed weight of edge i under a lag assignment.
  int retimed_weight(std::size_t i, const std::vector<int>& lag) const;

  /// Sum of retimed weights (register count after retiming).
  std::int64_t retimed_total_weight(const std::vector<int>& lag) const;

  /// Clock period: maximum combinational path delay, i.e. the longest
  /// vertex-delay sum along paths of zero-weight edges (plus each vertex's
  /// own delay). `lag` optional: empty means current weights.
  int clock_period(const std::vector<int>& lag = {}) const;

  /// Structural sanity: graph vertex/edge cross-links consistent and every
  /// directed cycle carries at least one register.
  void check_valid() const;

  std::string summary() const;

  /// Degree imbalance a_v = indeg(v) - outdeg(v); the register-count
  /// objective of min-area retiming is sum_v a_v * lag(v) + const.
  std::vector<int> degree_imbalance() const;

 private:
  friend struct RetimeGraphBuilder;

  std::vector<int> delay_;
  std::vector<NodeId> origin_;
  std::vector<std::uint32_t> vertex_of_slot_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::uint32_t>> out_;
  std::vector<std::vector<std::uint32_t>> in_;
};

}  // namespace rtv
