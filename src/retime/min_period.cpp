#include "retime/min_period.hpp"

#include <algorithm>
#include <array>
#include <deque>

#include "util/error.hpp"

namespace rtv {

namespace {

/// Solves the difference constraints {lag(u) - lag(v) <= bound} by
/// queue-based Bellman–Ford (SPFA) from a virtual source connected to all
/// vertices with length 0. Returns nullopt on a negative cycle
/// (infeasible). Constraints are given as (u, v, bound).
std::optional<std::vector<int>> solve_difference_constraints(
    std::uint32_t n, const std::vector<std::array<int, 3>>& constraints) {
  // Edge v -> u with length bound for constraint lag(u) <= lag(v) + bound.
  std::vector<std::vector<std::pair<std::uint32_t, int>>> adj(n);
  for (const auto& [u, v, bound] : constraints) {
    adj[v].emplace_back(static_cast<std::uint32_t>(u), bound);
  }
  std::vector<int> dist(n, 0);
  std::vector<bool> queued(n, true);
  std::vector<std::uint32_t> relax_count(n, 0);
  std::deque<std::uint32_t> queue;
  for (std::uint32_t v = 0; v < n; ++v) queue.push_back(v);
  while (!queue.empty()) {
    const std::uint32_t v = queue.front();
    queue.pop_front();
    queued[v] = false;
    for (const auto& [u, bound] : adj[v]) {
      if (dist[v] + bound < dist[u]) {
        dist[u] = dist[v] + bound;
        if (++relax_count[u] > n) return std::nullopt;  // negative cycle
        if (!queued[u]) {
          queued[u] = true;
          queue.push_back(u);
        }
      }
    }
  }
  return dist;
}

/// Normalizes a solution so both host sides have lag 0, verifying that the
/// two host lags agree (they always do: each host side only appears in
/// constraints with bound >= 0 against itself).
std::optional<std::vector<int>> normalize_host(const RetimeGraph& graph,
                                               std::vector<int> lag) {
  const int shift = lag[RetimeGraph::kHostSource];
  for (int& v : lag) v -= shift;
  if (lag[RetimeGraph::kHostSink] != 0) {
    // Re-anchor the sink side: add the constraint by clamping — if the
    // system permits sink lag != source lag, shifting cannot fix both, so
    // solve again with an explicit equality via two inequalities.
    return std::nullopt;
  }
  if (!graph.legal_retiming(lag)) return std::nullopt;
  return lag;
}

std::vector<std::array<int, 3>> base_constraints(const RetimeGraph& graph) {
  std::vector<std::array<int, 3>> cs;
  cs.reserve(graph.num_edges() + 2);
  for (const RetimeGraph::Edge& e : graph.edges()) {
    cs.push_back({static_cast<int>(e.from), static_cast<int>(e.to), e.weight});
  }
  // Tie the two host sides together: lag(src) == lag(snk).
  cs.push_back({static_cast<int>(RetimeGraph::kHostSource),
                static_cast<int>(RetimeGraph::kHostSink), 0});
  cs.push_back({static_cast<int>(RetimeGraph::kHostSink),
                static_cast<int>(RetimeGraph::kHostSource), 0});
  return cs;
}

}  // namespace

std::optional<std::vector<int>> feasible_retiming_opt(const RetimeGraph& graph,
                                                      const WdMatrices& wd,
                                                      int period) {
  const std::uint32_t n = graph.num_vertices();
  std::vector<std::array<int, 3>> cs = base_constraints(graph);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = 0; v < n; ++v) {
      if (wd.reachable(u, v) && wd.D(u, v) > period) {
        cs.push_back(
            {static_cast<int>(u), static_cast<int>(v), wd.W(u, v) - 1});
      }
    }
  }
  auto lag = solve_difference_constraints(n, cs);
  if (!lag) return std::nullopt;
  auto normalized = normalize_host(graph, std::move(*lag));
  if (!normalized) return std::nullopt;
  if (graph.clock_period(*normalized) > period) return std::nullopt;
  return normalized;
}

std::optional<std::vector<int>> feasible_retiming_feas(
    const RetimeGraph& graph, int period) {
  // Incremental (matrix-free) feasibility by lazy constraint generation:
  // solve the legality difference constraints, then, while the retimed
  // circuit is too slow, walk each late vertex's critical path p (all
  // retimed weights 0) back to its start u and add the valid cut
  //     lag(u) - lag(v) <= w(p) - 1
  // (w(p) = original registers on p = lag(u) - lag(v) under the current
  // violating solution, so the cut always separates it). Every constraint
  // is implied by the exact period constraints lag(u) - lag(v) <= W(u,v)-1,
  // so the method is sound; each round strictly cuts off the current
  // solution, and the constraint space is finite, so it is complete. This
  // trades the O(V^2) W/D memory of OPT for a few Bellman-Ford passes —
  // the same engineering trade [SR94] advocates.
  const std::uint32_t n = graph.num_vertices();
  for (std::uint32_t v = 0; v < n; ++v) {
    if (graph.delay(v) > period) return std::nullopt;
  }
  std::vector<std::array<int, 3>> cs = base_constraints(graph);

  // Arrival computation with critical-path predecessors.
  std::vector<int> arrival(n);
  std::vector<std::int64_t> path_weight(n);  // original registers on path
  std::vector<std::uint32_t> pred(n);

  // Every round adds one cut per late vertex, so convergence is typically
  // bounded by the retimed pipeline depth; the cap below is a generous
  // backstop (hitting it conservatively reports "infeasible", which the
  // OPT cross-check tests would flag if it ever mattered in practice).
  const std::size_t max_rounds =
      std::min<std::size_t>(4 * static_cast<std::size_t>(n) + 16, 512);
  for (std::size_t round = 0; round < max_rounds; ++round) {
    auto solved = solve_difference_constraints(n, cs);
    if (!solved) return std::nullopt;
    auto lag = normalize_host(graph, std::move(*solved));
    if (!lag) return std::nullopt;

    std::vector<std::uint32_t> indegree(n, 0);
    for (std::size_t i = 0; i < graph.num_edges(); ++i) {
      if (graph.retimed_weight(i, *lag) == 0) ++indegree[graph.edge(i).to];
    }
    std::vector<std::uint32_t> ready;
    constexpr std::uint32_t kNoPred = 0xffffffffu;
    for (std::uint32_t v = 0; v < n; ++v) {
      arrival[v] = graph.delay(v);
      path_weight[v] = 0;
      pred[v] = kNoPred;
      if (indegree[v] == 0) ready.push_back(v);
    }
    std::size_t emitted = 0;
    while (!ready.empty()) {
      const std::uint32_t u = ready.back();
      ready.pop_back();
      ++emitted;
      for (const std::uint32_t i : graph.out_edges(u)) {
        if (graph.retimed_weight(i, *lag) != 0) continue;
        const std::uint32_t v = graph.edge(i).to;
        if (arrival[u] + graph.delay(v) > arrival[v]) {
          arrival[v] = arrival[u] + graph.delay(v);
          path_weight[v] = path_weight[u] + graph.edge(i).weight;
          pred[v] = u;
        }
        if (--indegree[v] == 0) ready.push_back(v);
      }
    }
    RTV_CHECK_MSG(emitted == n, "zero-weight subgraph has a cycle");

    bool any_late = false;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (arrival[v] <= period) continue;
      any_late = true;
      // Walk to the start of v's critical path.
      std::uint32_t u = v;
      while (pred[u] != kNoPred) u = pred[u];
      RTV_CHECK_MSG(u != v, "single-vertex path exceeding the period");
      cs.push_back({static_cast<int>(u), static_cast<int>(v),
                    static_cast<int>(path_weight[v]) - 1});
    }
    if (!any_late) return lag;
  }
  // Constraint generation failed to converge within the round budget;
  // conservatively report infeasible (never observed in tests, which
  // cross-check against the exact OPT algorithm).
  return std::nullopt;
}

RetimingSolution min_period_retime_opt(const RetimeGraph& graph) {
  const WdMatrices wd = compute_wd(graph);
  const std::vector<int> candidates = wd.candidate_periods();
  RTV_CHECK(!candidates.empty());

  // Find the smallest feasible candidate by binary search (feasibility is
  // monotone in the period).
  std::size_t lo = 0, hi = candidates.size() - 1;
  // The current period is always feasible (lag = 0), so a feasible candidate
  // exists; start hi at the current period's position.
  const int current = graph.clock_period();
  hi = static_cast<std::size_t>(
      std::lower_bound(candidates.begin(), candidates.end(), current) -
      candidates.begin());
  RTV_CHECK(hi < candidates.size());
  std::optional<std::vector<int>> best =
      feasible_retiming_opt(graph, wd, candidates[hi]);
  RTV_CHECK_MSG(best.has_value(), "current period must be feasible");
  std::size_t best_idx = hi;
  while (lo < best_idx) {
    const std::size_t mid = (lo + best_idx) / 2;
    auto lag = feasible_retiming_opt(graph, wd, candidates[mid]);
    if (lag) {
      best = std::move(lag);
      best_idx = mid;
    } else {
      lo = mid + 1;
    }
  }
  return RetimingSolution{graph.clock_period(*best), std::move(*best)};
}

RetimingSolution min_period_retime_feas(const RetimeGraph& graph) {
  int hi = graph.clock_period();
  int lo = 0;
  for (std::uint32_t v = 0; v < graph.num_vertices(); ++v) {
    lo = std::max(lo, graph.delay(v));
  }
  std::optional<std::vector<int>> best = feasible_retiming_feas(graph, hi);
  RTV_CHECK_MSG(best.has_value(), "current period must be feasible");
  int best_period = hi;
  while (lo < best_period) {
    const int mid = lo + (best_period - lo) / 2;
    auto lag = feasible_retiming_feas(graph, mid);
    if (lag) {
      best = std::move(lag);
      best_period = mid;
    } else {
      lo = mid + 1;
    }
  }
  return RetimingSolution{graph.clock_period(*best), std::move(*best)};
}

}  // namespace rtv
