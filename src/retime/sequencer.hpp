#pragma once
// Decomposing a lag assignment into the paper's atomic retiming moves.
//
// The paper reasons about retiming as a *sequence of atomic moves* (Section
// 3.2), because safety depends on which moves occur — specifically on
// forward moves across non-justifiable elements (Theorem 4.5's k). The
// sequencer realizes any legal Leiserson–Saxe lag assignment as such a
// sequence, applying it move-by-move to a working copy of the netlist and
// classifying every move. Greedy scheduling is stall-free: from any legal
// intermediate state with pending lag, some pending unit move is enabled
// (take a vertex with extremal pending lag that is minimal in the acyclic
// zero-weight subgraph among its peers).

#include <vector>

#include "netlist/netlist.hpp"
#include "retime/graph.hpp"
#include "retime/moves.hpp"

namespace rtv {

struct SequencedRetiming {
  /// The fully retimed netlist. Combinational NodeIds are stable: they are
  /// the same slots as in the input netlist (only latches are created and
  /// destroyed), so `moves[i].element` is meaningful in both.
  Netlist retimed;
  std::vector<RetimingMove> moves;  ///< applied order
  std::vector<MoveClass> classes;   ///< classification per move
  MoveSequenceStats stats;
};

/// Applies `lag` (legal for `graph` = RetimeGraph::from_netlist(netlist)) as
/// a sequence of atomic moves. Requires a junction-normal netlist whose
/// ports all have exactly one sink.
SequencedRetiming sequence_retiming(const Netlist& netlist,
                                    const RetimeGraph& graph,
                                    const std::vector<int>& lag);

/// Folds one classified move into running statistics. `forward_counts` must
/// be sized by netlist slot count and zero-initialized; it accumulates
/// forward moves per non-justifiable element.
void accumulate_move(const RetimingMove& move, const MoveClass& cls,
                     std::vector<std::uint32_t>& forward_counts,
                     MoveSequenceStats& stats);

}  // namespace rtv
